// Package mntp is the public facade of the MNTP reproduction: a Go
// implementation of "MNTP: Enhancing Time Synchronization for Mobile
// Devices" (Mani, Durairajan, Barford, Sommers — ACM IMC 2016),
// together with every substrate its evaluation depends on.
//
// The facade re-exports the main entry points; the implementation
// lives in the internal packages (see DESIGN.md for the map):
//
//   - Client / Params / Event: the MNTP algorithm (internal/core);
//   - SNTPClient: the RFC 4330-style baseline (internal/sntp);
//   - NTPClient: a full reference NTP client with filtering,
//     intersection selection and a PLL discipline (internal/ntpclient);
//   - Testbed: the paper's laboratory testbed in deterministic
//     virtual-time simulation (internal/testbed);
//   - Tuner types: the §5.3 trace-driven parameter tuner
//     (internal/tuner).
//
// A one-hour head-to-head on a stressed wireless channel:
//
//	tb := mntp.NewTestbed(mntp.TestbedConfig{
//		Seed: 42, Access: mntp.Wireless, Monitor: true, NTPCorrection: true,
//	})
//	series := tb.RunMNTP(mntp.DefaultParams(mntp.PoolName), time.Hour, false)
//	fmt.Println(series.Summary())
package mntp

import (
	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/discipline"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/ntpclient"
	"mntp/internal/ntpnet"
	"mntp/internal/sntp"
	"mntp/internal/sources"
	"mntp/internal/testbed"
	"mntp/internal/tuner"
)

// MNTP core (the paper's contribution).
type (
	// Client runs Algorithm 1 over any transport and hint provider.
	Client = core.Client
	// Params are MNTP's tunables (warm-up/regular cadence, reset
	// period, channel thresholds, ablation switches).
	Params = core.Params
	// Event is one observable algorithm step.
	Event = core.Event
	// EventKind classifies events (accepted/rejected/deferred/…).
	EventKind = core.EventKind
	// Filter is the trend-line offset filter, usable standalone.
	Filter = core.Filter
)

// Event kinds.
const (
	EventAccepted       = core.EventAccepted
	EventRejected       = core.EventRejected
	EventDeferred       = core.EventDeferred
	EventQueryFailed    = core.EventQueryFailed
	EventFalseTicker    = core.EventFalseTicker
	EventDriftCorrected = core.EventDriftCorrected
	EventKoD            = core.EventKoD
	EventDropped        = core.EventDropped
	EventAdjustError    = core.EventAdjustError
	EventHoldover       = core.EventHoldover
	EventPanicStep      = core.EventPanicStep
	EventResumed        = core.EventResumed
	EventNetworkChanged = core.EventNetworkChanged
)

// NewClient creates an MNTP client. See core.New.
var NewClient = core.New

// DefaultParams returns the paper's baseline configuration against
// the given pool.
var DefaultParams = core.DefaultParams

// Guarded clock discipline (step/panic thresholds, holdover).
type (
	// Discipline is the single gate every clock correction passes
	// through: step-vs-slew, panic refusal, the shared ±500 ppm
	// frequency clamp, holdover and suspend detection.
	Discipline = discipline.Discipline
	// DisciplineConfig are the gate's thresholds.
	DisciplineConfig = discipline.Config
	// DisciplineState is the gate's sync state (cold/sync/holdover).
	DisciplineState = discipline.State
	// DisciplineStatus is an observable snapshot of the gate.
	DisciplineStatus = discipline.Status
	// DisciplineResult reports what one correction attempt did.
	DisciplineResult = discipline.Result
)

// Discipline states and the shared frequency bound.
const (
	DisciplineCold     = discipline.StateCold
	DisciplineSync     = discipline.StateSync
	DisciplineHoldover = discipline.StateHoldover
	// MaxFreqPPM is the plausibility bound on frequency corrections
	// (±500 ppm), shared by the discipline, the drift file and the
	// full NTP client.
	MaxFreqPPM = discipline.MaxFreqPPM
)

// NewDiscipline creates a standalone discipline gate over an adjuster.
var NewDiscipline = discipline.New

// Wireless hints.
type (
	// Hints is one RSSI/noise reading.
	Hints = hints.Hints
	// HintProvider supplies channel hints.
	HintProvider = hints.Provider
	// Thresholds are the favorable-channel gates.
	Thresholds = hints.Thresholds
)

// DefaultThresholds returns the paper's §4.2 baseline thresholds.
var DefaultThresholds = hints.Default

// Baselines.
type (
	// SNTPClient is the simple client the paper compares against.
	SNTPClient = sntp.Client
	// SNTPConfig parameterizes it.
	SNTPConfig = sntp.Config
	// NTPClient is the full reference NTP client.
	NTPClient = ntpclient.Client
	// NTPConfig parameterizes it.
	NTPConfig = ntpclient.Config
)

// NewSNTPClient creates an SNTP client; AndroidSNTPConfig and
// WindowsMobileSNTPConfig mirror the vendor behaviours of §2.
var (
	NewSNTPClient           = sntp.New
	AndroidSNTPConfig       = sntp.AndroidConfig
	WindowsMobileSNTPConfig = sntp.WindowsMobileConfig
	NewNTPClient            = ntpclient.New
)

// Multi-source pool (upstream health, fan-out, selection).
type (
	// SourcePool owns a set of upstream servers with per-source health
	// scoring, concurrent fan-out and Marzullo selection.
	SourcePool = sources.Pool
	// SourcePoolConfig parameterizes a pool.
	SourcePoolConfig = sources.Config
	// SourceStatus is an observable snapshot of one source.
	SourceStatus = sources.SourceStatus
)

// NewSourcePool creates a pool; FormatPoolStatus renders a status
// snapshot as a table.
var (
	NewSourcePool    = sources.New
	FormatPoolStatus = sources.FormatStatus
)

// Transport and measurement.
type (
	// Transport is one NTP request/response exchange; satisfied by
	// the simulated network and the UDP client.
	Transport = exchange.Transport
	// Sample is one four-timestamp measurement.
	Sample = exchange.Sample
	// UDPClient is the real-socket transport.
	UDPClient = ntpnet.Client
	// UDPServer serves NTP over real sockets.
	UDPServer = ntpnet.Server
	// SystemClock reads the host clock.
	SystemClock = clock.System
)

// Measure performs one exchange and computes offset/delay.
var Measure = exchange.Measure

// NewUDPServer creates a UDP NTP server.
var NewUDPServer = ntpnet.NewServer

// Simulation testbed.
type (
	// Testbed is the paper's Figure 3 topology in simulation.
	Testbed = testbed.Testbed
	// TestbedConfig selects access type, monitor and corrections.
	TestbedConfig = testbed.Config
	// Series is a protocol run's recorded output.
	Series = testbed.Series
	// AccessKind selects the TN's access network.
	AccessKind = testbed.Access
)

// Access kinds and the simulated pool name.
const (
	Wireless = testbed.Wireless
	Wired    = testbed.Wired
	Cellular = testbed.Cellular
	PoolName = testbed.PoolName
)

// NewTestbed builds a testbed.
var NewTestbed = testbed.New

// Tuner (§5.3).
type (
	// Trace is a recorded offsets+hints log.
	Trace = tuner.Trace
	// TunerResult is one emulated configuration's outcome.
	TunerResult = tuner.Result
	// TunerConfig is a minute-based parameter combination.
	TunerConfig = tuner.Config
)

// Tuner entry points.
var (
	CollectTrace  = tuner.Collect
	EmulateTrace  = tuner.Emulate
	SearchConfigs = tuner.Search
	Table2Configs = tuner.Table2Configs
)

// Self-tuning (§7 future work).
type (
	// SelfTuner adapts MNTP's cadence parameters between cycles.
	SelfTuner = core.SelfTuner
	// CycleStats is the feedback a tuner adjusts on.
	CycleStats = core.CycleStats
)

// NewSelfTuner creates a self-tuner targeting the given RMSE (ms).
var NewSelfTuner = core.NewSelfTuner
