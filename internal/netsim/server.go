package netsim

import (
	"fmt"
	"math/rand"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// Server is a simulated NTP stratum server. Its clock determines the
// timestamps it serves; a server whose clock error is large relative
// to its peers acts as the "false ticker" MNTP's warm-up phase must
// reject (§4.2).
type Server struct {
	Name      string
	Clock     clock.Clock
	Stratum   uint8
	RefID     [4]byte
	Leap      ntppkt.Leap
	RootDelay time.Duration
	RootDisp  time.Duration
	// ProcMin/ProcMax bound the uniform server processing time between
	// receive (T2) and transmit (T3).
	ProcMin, ProcMax time.Duration
	rng              *rand.Rand
}

// NewServer creates a simulated server with the given clock and
// stratum.
func NewServer(name string, clk clock.Clock, stratum uint8, seed int64) *Server {
	var refid [4]byte
	copy(refid[:], name)
	return &Server{
		Name:    name,
		Clock:   clk,
		Stratum: stratum,
		RefID:   refid,
		Leap:    ntppkt.LeapNone,
		ProcMin: 20 * time.Microsecond,
		ProcMax: 200 * time.Microsecond,
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// ProcessingDelay samples the server-side hold time for one request.
func (s *Server) ProcessingDelay() time.Duration {
	if s.ProcMax <= s.ProcMin {
		return s.ProcMin
	}
	return s.ProcMin + time.Duration(s.rng.Int63n(int64(s.ProcMax-s.ProcMin)))
}

// Respond builds the server reply to req. recv and xmit are the
// server-clock readings at packet arrival and departure (T2, T3).
func (s *Server) Respond(req *ntppkt.Packet, recv, xmit time.Time) *ntppkt.Packet {
	return &ntppkt.Packet{
		Leap:      s.Leap,
		Version:   req.Version,
		Mode:      ntppkt.ModeServer,
		Stratum:   s.Stratum,
		Poll:      req.Poll,
		Precision: -23,
		RootDelay: ntptime.DurationToShort(s.RootDelay),
		RootDisp:  ntptime.DurationToShort(s.RootDisp),
		RefID:     s.RefID,
		RefTime:   ntptime.FromTime(recv.Add(-30 * time.Second)),
		Origin:    req.Transmit,
		Receive:   ntptime.FromTime(recv),
		Transmit:  ntptime.FromTime(xmit),
	}
}

// Pool is a collection of servers reachable under one name, modelling
// 0.pool.ntp.org: every lookup of the pool name yields a (seeded)
// random member, so consecutive requests go to different references —
// "every SNTP request to the pool server is randomly assigned to a new
// NTP time reference" (§3.2).
type Pool struct {
	Name    string
	Members []*Server
	rng     *rand.Rand
}

// NewPool creates a pool with the given members.
func NewPool(name string, members []*Server, seed int64) *Pool {
	return &Pool{Name: name, Members: members, rng: rand.New(rand.NewSource(seed))}
}

// Pick returns a random member.
func (p *Pool) Pick() *Server {
	return p.Members[p.rng.Intn(len(p.Members))]
}

// Network wires names to servers/pools and paths, and implements the
// simulated Exchange. A Network belongs to one client host: the paths
// are the client's paths.
type Network struct {
	sched   *Scheduler
	servers map[string]*Server
	pools   map[string]*Pool
	paths   map[string]PathModel
	defPath PathModel
	// Timeout is how long a client waits before declaring a request
	// lost. The default matches common SNTP client settings.
	Timeout time.Duration
	// Stats counters, observable by the harness.
	Sent, Lost int
}

// NewNetwork creates an empty network over the scheduler.
func NewNetwork(sched *Scheduler) *Network {
	return &Network{
		sched:   sched,
		servers: make(map[string]*Server),
		pools:   make(map[string]*Pool),
		paths:   make(map[string]PathModel),
		Timeout: 2 * time.Second,
	}
}

// AddServer registers a server, optionally with a dedicated path. A
// nil path uses the network default.
func (n *Network) AddServer(s *Server, path PathModel) {
	n.servers[s.Name] = s
	if path != nil {
		n.paths[s.Name] = path
	}
}

// AddPool registers a pool name resolving to its members. Members must
// also be added as servers (AddServer) to receive paths.
func (n *Network) AddPool(p *Pool) {
	n.pools[p.Name] = p
	for _, m := range p.Members {
		if _, ok := n.servers[m.Name]; !ok {
			n.servers[m.Name] = m
		}
	}
}

// SetDefaultPath sets the path used for servers without a dedicated
// one — typically the shared access link (the wireless hop).
func (n *Network) SetDefaultPath(p PathModel) { n.defPath = p }

// Resolve maps a name to a concrete server, picking a pool member if
// the name is a pool.
func (n *Network) Resolve(name string) (*Server, error) {
	if p, ok := n.pools[name]; ok {
		return p.Pick(), nil
	}
	if s, ok := n.servers[name]; ok {
		return s, nil
	}
	return nil, fmt.Errorf("netsim: unknown server %q", name)
}

func (n *Network) pathFor(server string) PathModel {
	if p, ok := n.paths[server]; ok {
		return p
	}
	return n.defPath
}

// ErrTimeout is returned when a request or response is lost and the
// client timeout elapses.
type ErrTimeout struct{ Server string }

func (e *ErrTimeout) Error() string {
	return fmt.Sprintf("netsim: request to %s timed out", e.Server)
}

// Transport is the simulated client transport. It binds a Proc (whose
// virtual time advances during exchanges) and the client's clock
// (which stamps T4). It implements the exchange.Transport interface.
type Transport struct {
	Net   *Network
	Proc  *Proc
	Clock clock.Clock
}

// Exchange sends req to the named server (or pool) and blocks the
// process for the full round trip. It returns the reply and the
// client-clock receive time T4. Lost packets surface as *ErrTimeout
// after Network.Timeout of virtual time.
func (t *Transport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	n := t.Net
	srv, err := n.Resolve(server)
	if err != nil {
		return nil, time.Time{}, err
	}
	path := n.pathFor(srv.Name)
	if path == nil {
		return nil, time.Time{}, fmt.Errorf("netsim: no path to %q", srv.Name)
	}
	n.Sent++

	up, upLost := path.SampleOneWay(t.Proc.Now(), Uplink)
	if upLost {
		n.Lost++
		t.Proc.Sleep(n.Timeout)
		return nil, time.Time{}, &ErrTimeout{Server: srv.Name}
	}
	t.Proc.Sleep(up)

	// Server receives now; T2 and T3 per the server clock.
	recv := srv.Clock.Now()
	proc := srv.ProcessingDelay()
	t.Proc.Sleep(proc)
	xmit := srv.Clock.Now()
	resp := srv.Respond(req, recv, xmit)

	down, downLost := path.SampleOneWay(t.Proc.Now(), Downlink)
	if downLost || up+proc+down > n.Timeout {
		// Lost on the way back, or the reply would arrive after the
		// client stopped waiting — either way the client times out.
		n.Lost++
		elapsed := up + proc
		if rem := n.Timeout - elapsed; rem > 0 {
			t.Proc.Sleep(rem)
		}
		return nil, time.Time{}, &ErrTimeout{Server: srv.Name}
	}
	t.Proc.Sleep(down)
	return resp, t.Clock.Now(), nil
}

// Ping measures a round trip to the named server without NTP
// semantics; the monitor node's feedback loop uses it. It returns the
// RTT and false, or 0 and true when the probe (either direction) was
// lost.
func (t *Transport) Ping(server string) (time.Duration, bool) {
	n := t.Net
	srv, err := n.Resolve(server)
	if err != nil {
		return 0, true
	}
	path := n.pathFor(srv.Name)
	up, upLost := path.SampleOneWay(t.Proc.Now(), Uplink)
	if upLost {
		t.Proc.Sleep(n.Timeout)
		return 0, true
	}
	down, downLost := path.SampleOneWay(t.Proc.Now()+up, Downlink)
	if downLost {
		t.Proc.Sleep(n.Timeout)
		return 0, true
	}
	rtt := up + down
	t.Proc.Sleep(rtt)
	return rtt, false
}
