package netsim

import (
	"testing"
	"testing/quick"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(epoch)
	var order []int
	s.At(2*time.Second, func() { order = append(order, 2) })
	s.At(time.Second, func() { order = append(order, 1) })
	s.At(2*time.Second, func() { order = append(order, 3) }) // same time: FIFO
	s.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 2*time.Second {
		t.Errorf("final time = %v", s.Now())
	}
}

func TestSchedulerNestedScheduling(t *testing.T) {
	s := NewScheduler(epoch)
	var fired []time.Duration
	s.At(time.Second, func() {
		s.After(3*time.Second, func() { fired = append(fired, s.Now()) })
	})
	s.Run()
	if len(fired) != 1 || fired[0] != 4*time.Second {
		t.Errorf("fired = %v", fired)
	}
}

func TestSchedulerPastEventRunsNow(t *testing.T) {
	s := NewScheduler(epoch)
	s.At(5*time.Second, func() {
		s.At(time.Second, func() { // in the past
			if s.Now() != 5*time.Second {
				t.Errorf("past event ran at %v", s.Now())
			}
		})
	})
	s.Run()
}

func TestRunUntil(t *testing.T) {
	s := NewScheduler(epoch)
	ran := 0
	s.At(time.Second, func() { ran++ })
	s.At(10*time.Second, func() { ran++ })
	s.RunUntil(5 * time.Second)
	if ran != 1 {
		t.Errorf("ran = %d, want 1", ran)
	}
	if s.Now() != 5*time.Second {
		t.Errorf("now = %v, want 5s", s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
}

func TestEvery(t *testing.T) {
	s := NewScheduler(epoch)
	count := 0
	s.Every(time.Second, 2*time.Second, func() bool {
		count++
		return count < 4
	})
	s.Run()
	if count != 4 {
		t.Errorf("count = %d", count)
	}
	if s.Now() != 7*time.Second { // 1, 3, 5, 7
		t.Errorf("end time = %v", s.Now())
	}
}

func TestProcSleepAdvancesVirtualTime(t *testing.T) {
	s := NewScheduler(epoch)
	var at1, at2 time.Duration
	s.Go(func(p *Proc) {
		at1 = p.Now()
		p.Sleep(90 * time.Minute)
		at2 = p.Now()
	})
	s.Run()
	if at1 != 0 || at2 != 90*time.Minute {
		t.Errorf("proc times = %v, %v", at1, at2)
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := NewScheduler(epoch)
		var log []string
		s.Go(func(p *Proc) {
			for i := 0; i < 3; i++ {
				log = append(log, "a")
				p.Sleep(2 * time.Second)
			}
		})
		s.Go(func(p *Proc) {
			p.Sleep(time.Second)
			for i := 0; i < 3; i++ {
				log = append(log, "b")
				p.Sleep(2 * time.Second)
			}
		})
		s.Run()
		return log
	}
	first := run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(first) != len(want) {
		t.Fatalf("log = %v", first)
	}
	for i := range want {
		if first[i] != want[i] {
			t.Fatalf("log = %v, want %v", first, want)
		}
	}
	second := run()
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("interleaving not deterministic")
		}
	}
}

func TestProcStop(t *testing.T) {
	s := NewScheduler(epoch)
	iters := 0
	var p1 *Proc
	s.Go(func(p *Proc) {
		p1 = p
		for {
			iters++
			p.Sleep(time.Second)
		}
	})
	s.At(5500*time.Millisecond, func() { p1.Stop() })
	s.Run()
	if iters != 6 { // t=0,1,2,3,4,5 then stop takes effect at next sleep
		t.Errorf("iterations = %d, want 6", iters)
	}
}

func TestWiredPathProperties(t *testing.T) {
	p := NewWiredPath(20*time.Millisecond, 2*time.Millisecond, 4*time.Millisecond, 0, 1)
	var upSum, downSum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		up, lost := p.SampleOneWay(0, Uplink)
		if lost {
			t.Fatal("lossless path lost a packet")
		}
		down, _ := p.SampleOneWay(0, Downlink)
		if up < 22*time.Millisecond {
			t.Fatalf("uplink %v below base+asym/2", up)
		}
		if down < 18*time.Millisecond {
			t.Fatalf("downlink %v below base-asym/2", down)
		}
		upSum += up
		downSum += down
	}
	meanUp := upSum / n
	meanDown := downSum / n
	if d := meanUp - meanDown; d < 3*time.Millisecond || d > 5*time.Millisecond {
		t.Errorf("asymmetry = %v, want ~4ms", d)
	}
}

func TestWiredPathLoss(t *testing.T) {
	p := NewWiredPath(time.Millisecond, 0, 0, 0.25, 2)
	lost := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if _, l := p.SampleOneWay(0, Uplink); l {
			lost++
		}
	}
	frac := float64(lost) / n
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("loss fraction = %v, want ~0.25", frac)
	}
}

func TestCompositePath(t *testing.T) {
	a := FuncPath(func(time.Duration, Direction) (time.Duration, bool) { return 5 * time.Millisecond, false })
	b := FuncPath(func(time.Duration, Direction) (time.Duration, bool) { return 7 * time.Millisecond, false })
	c := &CompositePath{Segments: []PathModel{a, b}}
	d, lost := c.SampleOneWay(0, Uplink)
	if lost || d != 12*time.Millisecond {
		t.Errorf("composite = %v lost=%v", d, lost)
	}
	lossy := FuncPath(func(time.Duration, Direction) (time.Duration, bool) { return 0, true })
	c2 := &CompositePath{Segments: []PathModel{a, lossy}}
	if _, lost := c2.SampleOneWay(0, Uplink); !lost {
		t.Error("composite should propagate loss")
	}
}

// buildNet wires a scheduler, a perfect server and a client clock with
// a known offset, connected by a symmetric path.
func buildNet(t *testing.T, clientOffset time.Duration, path PathModel) (*Scheduler, *Network, *clock.Sim) {
	t.Helper()
	s := NewScheduler(epoch)
	truth := clock.NewTrue(epoch, s.Now)
	srv := NewServer("ref0", truth, 1, 10)
	srv.ProcMin, srv.ProcMax = 0, 0
	n := NewNetwork(s)
	n.AddServer(srv, path)
	cl := clock.NewSim(clock.Config{InitialOffset: clientOffset, Seed: 5}, epoch, s.Now)
	return s, n, cl
}

func TestExchangeComputesKnownOffset(t *testing.T) {
	sym := FuncPath(func(time.Duration, Direction) (time.Duration, bool) {
		return 25 * time.Millisecond, false
	})
	s, n, cl := buildNet(t, 140*time.Millisecond, sym)

	var offset, delay time.Duration
	s.Go(func(p *Proc) {
		tr := &Transport{Net: n, Proc: p, Clock: cl}
		t1 := cl.Now()
		req := ntppkt.NewSNTPClient(ntppkt.Version4, ntptime.FromTime(t1))
		resp, t4, err := tr.Exchange("ref0", req)
		if err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		t1ts, t4ts := ntptime.FromTime(t1), ntptime.FromTime(t4)
		offset = (resp.Receive.Sub(t1ts) + resp.Transmit.Sub(t4ts)) / 2
		delay = t4ts.Sub(t1ts) - resp.Transmit.Sub(resp.Receive)
	})
	s.Run()

	// Client is 140 ms fast; symmetric path → measured offset ≈ −140 ms.
	if d := offset + 140*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset = %v, want ~-140ms", offset)
	}
	if d := delay - 50*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("delay = %v, want ~50ms", delay)
	}
}

func TestExchangeAsymmetryBiasesOffset(t *testing.T) {
	// Uplink 100 ms, downlink 20 ms: T2−T1 = 100 ms, T3−T4 = −20 ms,
	// so measured offset = (up−down)/2 = +40 ms despite a perfect clock.
	asym := FuncPath(func(_ time.Duration, dir Direction) (time.Duration, bool) {
		if dir == Uplink {
			return 100 * time.Millisecond, false
		}
		return 20 * time.Millisecond, false
	})
	s, n, cl := buildNet(t, 0, asym)
	var offset time.Duration
	s.Go(func(p *Proc) {
		tr := &Transport{Net: n, Proc: p, Clock: cl}
		t1 := cl.Now()
		req := ntppkt.NewSNTPClient(ntppkt.Version4, ntptime.FromTime(t1))
		resp, t4, err := tr.Exchange("ref0", req)
		if err != nil {
			t.Errorf("exchange: %v", err)
			return
		}
		t1ts, t4ts := ntptime.FromTime(t1), ntptime.FromTime(t4)
		offset = (resp.Receive.Sub(t1ts) + resp.Transmit.Sub(t4ts)) / 2
	})
	s.Run()
	if d := offset - 40*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset = %v, want ~+40ms (asymmetry bias)", offset)
	}
}

func TestExchangeTimeoutOnLoss(t *testing.T) {
	lossy := FuncPath(func(time.Duration, Direction) (time.Duration, bool) { return 0, true })
	s, n, cl := buildNet(t, 0, lossy)
	n.Timeout = 3 * time.Second
	var errGot error
	var elapsed time.Duration
	s.Go(func(p *Proc) {
		tr := &Transport{Net: n, Proc: p, Clock: cl}
		start := p.Now()
		req := ntppkt.NewSNTPClient(ntppkt.Version4, ntptime.FromTime(cl.Now()))
		_, _, errGot = tr.Exchange("ref0", req)
		elapsed = p.Now() - start
	})
	s.Run()
	if errGot == nil {
		t.Fatal("lossy exchange succeeded")
	}
	if _, ok := errGot.(*ErrTimeout); !ok {
		t.Errorf("err type = %T", errGot)
	}
	if elapsed != 3*time.Second {
		t.Errorf("timeout elapsed %v, want 3s", elapsed)
	}
	if n.Lost != 1 || n.Sent != 1 {
		t.Errorf("counters sent=%d lost=%d", n.Sent, n.Lost)
	}
}

func TestPoolRandomAssignment(t *testing.T) {
	s := NewScheduler(epoch)
	truth := clock.NewTrue(epoch, s.Now)
	members := []*Server{
		NewServer("p0", truth, 2, 1),
		NewServer("p1", truth, 2, 2),
		NewServer("p2", truth, 2, 3),
	}
	pool := NewPool("pool.example", members, 99)
	n := NewNetwork(s)
	n.AddPool(pool)
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		srv, err := n.Resolve("pool.example")
		if err != nil {
			t.Fatal(err)
		}
		seen[srv.Name] = true
	}
	if len(seen) != 3 {
		t.Errorf("pool members seen = %v, want all 3", seen)
	}
}

func TestResolveUnknown(t *testing.T) {
	n := NewNetwork(NewScheduler(epoch))
	if _, err := n.Resolve("nope"); err == nil {
		t.Error("unknown server resolved")
	}
}

func TestServerRespondEchoesOrigin(t *testing.T) {
	s := NewScheduler(epoch)
	truth := clock.NewTrue(epoch, s.Now)
	srv := NewServer("ref0", truth, 1, 1)
	tx := ntptime.FromTime(epoch.Add(time.Second))
	req := ntppkt.NewSNTPClient(ntppkt.Version4, tx)
	resp := srv.Respond(req, epoch.Add(2*time.Second), epoch.Add(2*time.Second))
	if resp.Origin != tx {
		t.Error("origin not echoed")
	}
	if resp.Mode != ntppkt.ModeServer || resp.Stratum != 1 {
		t.Errorf("resp header = %v", resp)
	}
	if err := resp.ValidateServerReply(tx); err != nil {
		t.Errorf("self-validation failed: %v", err)
	}
}

func TestPingRTTAndLoss(t *testing.T) {
	sym := FuncPath(func(time.Duration, Direction) (time.Duration, bool) {
		return 30 * time.Millisecond, false
	})
	s, n, cl := buildNet(t, 0, sym)
	var rtt time.Duration
	var lost bool
	s.Go(func(p *Proc) {
		tr := &Transport{Net: n, Proc: p, Clock: cl}
		rtt, lost = tr.Ping("ref0")
	})
	s.Run()
	if lost || rtt != 60*time.Millisecond {
		t.Errorf("ping rtt=%v lost=%v", rtt, lost)
	}
}

// Property: virtual time never decreases across an arbitrary schedule
// of events, and every event fires at or after its requested time
// (clamped to schedule time).
func TestQuickTimeMonotone(t *testing.T) {
	f := func(delays []uint16) bool {
		s := NewScheduler(epoch)
		var fired []time.Duration
		for _, d := range delays {
			at := time.Duration(d) * time.Millisecond
			s.At(at, func() { fired = append(fired, s.Now()) })
		}
		s.Run()
		prev := time.Duration(-1)
		for _, ts := range fired {
			if ts < prev {
				return false
			}
			prev = ts
		}
		return len(fired) == len(delays)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Every fires ceil exactly at start + k*interval while the
// callback returns true.
func TestEveryFiringTimes(t *testing.T) {
	s := NewScheduler(epoch)
	var at []time.Duration
	s.Every(3*time.Second, 7*time.Second, func() bool {
		at = append(at, s.Now())
		return len(at) < 5
	})
	s.Run()
	for i, ts := range at {
		want := 3*time.Second + time.Duration(i)*7*time.Second
		if ts != want {
			t.Errorf("firing %d at %v, want %v", i, ts, want)
		}
	}
}
