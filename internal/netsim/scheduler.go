// Package netsim is the discrete-event network simulation substrate of
// the MNTP reproduction. It provides a virtual-time scheduler with
// deterministic ordering, cooperative blocking processes (so protocol
// client code is written in ordinary sequential style and runs
// unchanged over real transports), simulated NTP servers and pools,
// and composable one-way-delay path models.
//
// Virtual time makes the paper's multi-hour experiments run in
// milliseconds and — unlike the live testbed the paper used, which
// could not repeat experiments exactly (§3.2) — bit-identical under a
// fixed seed.
package netsim

import (
	"container/heap"
	"time"
)

// Scheduler is a single-threaded discrete-event scheduler. Virtual
// time starts at zero and only advances when Run consumes events.
// Events at equal times fire in scheduling order.
type Scheduler struct {
	now    time.Duration
	events eventHeap
	seq    uint64
	epoch  time.Time
}

// NewScheduler creates a scheduler whose virtual time zero corresponds
// to the given wall-clock epoch.
func NewScheduler(epoch time.Time) *Scheduler {
	return &Scheduler{epoch: epoch}
}

// Now returns the current virtual time (elapsed since start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Epoch returns the wall-clock anchor of virtual time zero.
func (s *Scheduler) Epoch() time.Time { return s.epoch }

// WallNow returns the wall-clock rendering of the current virtual
// time. This is the simulation's true time.
func (s *Scheduler) WallNow() time.Time { return s.epoch.Add(s.now) }

// At schedules fn to run at virtual time t. Times in the past run at
// the current time (never before).
func (s *Scheduler) At(t time.Duration, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d from now.
func (s *Scheduler) After(d time.Duration, fn func()) { s.At(s.now+d, fn) }

// Every schedules fn to run periodically starting at start and then
// every interval, until fn returns false.
func (s *Scheduler) Every(start, interval time.Duration, fn func() bool) {
	var tick func()
	tick = func() {
		if fn() {
			s.After(interval, tick)
		}
	}
	s.At(start, tick)
}

// Step runs the next event, if any, and reports whether one ran.
func (s *Scheduler) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	ev := heap.Pop(&s.events).(*event)
	s.now = ev.at
	ev.fn()
	return true
}

// Run consumes events until none remain.
func (s *Scheduler) Run() {
	for s.Step() {
	}
}

// RunUntil consumes events with timestamps ≤ t, then sets the virtual
// time to t.
func (s *Scheduler) RunUntil(t time.Duration) {
	for s.events.Len() > 0 && s.events[0].at <= t {
		s.Step()
	}
	if s.now < t {
		s.now = t
	}
}

// Pending returns the number of scheduled events.
func (s *Scheduler) Pending() int { return s.events.Len() }

type event struct {
	at  time.Duration
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Proc is a cooperative blocking process: a goroutine that runs
// protocol code in ordinary sequential style, suspending on Sleep
// while virtual time advances. Exactly one goroutine (a Proc or the
// scheduler) executes at any moment, so simulations remain
// deterministic.
type Proc struct {
	s      *Scheduler
	resume chan struct{}
	parked chan struct{}
	stop   bool
}

// Go starts fn as a process at the current virtual time. Run (or
// RunUntil past the start time) must be called for it to execute.
func (s *Scheduler) Go(fn func(p *Proc)) {
	p := &Proc{
		s:      s,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	s.After(0, func() {
		go func() {
			defer func() {
				// Convert a procStopped unwind into a clean exit;
				// other panics propagate. recover must be called
				// directly in the deferred function.
				if r := recover(); r != nil {
					if _, ok := r.(procStopped); !ok {
						panic(r)
					}
				}
				p.parked <- struct{}{} // final park: process exited
			}()
			fn(p)
		}()
		<-p.parked
	})
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d time.Duration) {
	if p.stop {
		// A stopped process must unwind; sleeping forever would
		// deadlock the scheduler. Panic unwinds to Go's wrapper.
		panic(procStopped{})
	}
	p.s.After(d, func() {
		p.resume <- struct{}{}
		<-p.parked
	})
	p.parked <- struct{}{}
	<-p.resume
	if p.stop {
		// Stopped while sleeping: unwind instead of returning into
		// the protocol loop.
		panic(procStopped{})
	}
}

// Now returns the current virtual time.
func (p *Proc) Now() time.Duration { return p.s.Now() }

// WallNow returns the wall-clock rendering of virtual now.
func (p *Proc) WallNow() time.Time { return p.s.WallNow() }

// Scheduler returns the owning scheduler.
func (p *Proc) Scheduler() *Scheduler { return p.s }

// Stop marks the process as stopped; its next Sleep unwinds the
// goroutine. Protocol loops structured as "for { work; Sleep }"
// terminate cleanly.
func (p *Proc) Stop() { p.stop = true }

// Stopped reports whether Stop was called.
func (p *Proc) Stopped() bool { return p.stop }

type procStopped struct{}
