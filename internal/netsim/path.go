package netsim

import (
	"math/rand"
	"time"
)

// Direction distinguishes the two directions of a path. One-way
// delays are sampled independently per direction; their asymmetry is
// exactly what corrupts SNTP offset estimates (offset error =
// (uplink − downlink)/2).
type Direction int

const (
	// Uplink is client → server.
	Uplink Direction = iota
	// Downlink is server → client.
	Downlink
)

// PathModel produces per-packet one-way delays and losses. now is the
// virtual time the packet enters the path. Implementations must be
// deterministic given their seed and the sequence of calls.
type PathModel interface {
	SampleOneWay(now time.Duration, dir Direction) (delay time.Duration, lost bool)
}

// WiredPath models the paper's wired-network control scenario: a
// stable path with a fixed base delay, light exponential jitter and
// negligible loss. The paper finds SNTP offsets on such paths are
// "always close to 0ms" when the clock is disciplined (§3.2).
type WiredPath struct {
	Base     time.Duration // one-way propagation + transmission
	JitterMu time.Duration // mean of exponential jitter
	// Asym shifts the two directions: uplink gets Base+Asym/2,
	// downlink Base−Asym/2. Small constant asymmetry bounds the best
	// achievable accuracy, per the paper's citation of [21].
	Asym     time.Duration
	LossProb float64
	rng      *rand.Rand
}

// NewWiredPath creates a wired path model with the given seed.
func NewWiredPath(base, jitterMu, asym time.Duration, lossProb float64, seed int64) *WiredPath {
	return &WiredPath{
		Base: base, JitterMu: jitterMu, Asym: asym, LossProb: lossProb,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// SampleOneWay implements PathModel.
func (w *WiredPath) SampleOneWay(_ time.Duration, dir Direction) (time.Duration, bool) {
	if w.LossProb > 0 && w.rng.Float64() < w.LossProb {
		return 0, true
	}
	d := w.Base
	if dir == Uplink {
		d += w.Asym / 2
	} else {
		d -= w.Asym / 2
	}
	if w.JitterMu > 0 {
		d += time.Duration(w.rng.ExpFloat64() * float64(w.JitterMu))
	}
	if d < 0 {
		d = 0
	}
	return d, false
}

// CompositePath chains path segments: delays add, losses OR. The
// standard testbed topology composes the wireless access hop with a
// wired backbone segment to the chosen pool server.
type CompositePath struct {
	Segments []PathModel
}

// SampleOneWay implements PathModel.
func (c *CompositePath) SampleOneWay(now time.Duration, dir Direction) (time.Duration, bool) {
	var total time.Duration
	for _, seg := range c.Segments {
		d, lost := seg.SampleOneWay(now, dir)
		if lost {
			return 0, true
		}
		total += d
	}
	return total, false
}

// FuncPath adapts a function to PathModel; tests use it to script
// exact delay sequences.
type FuncPath func(now time.Duration, dir Direction) (time.Duration, bool)

// SampleOneWay implements PathModel.
func (f FuncPath) SampleOneWay(now time.Duration, dir Direction) (time.Duration, bool) {
	return f(now, dir)
}
