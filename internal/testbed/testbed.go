// Package testbed reproduces the laboratory testbed of §3.2 and §5
// (Figure 3) in simulation: a wireless access point (WAP) with
// programmable transmit power, a target node (TN) whose clock is under
// study, and a monitor node (MN) that injects cross traffic and
// commands the WAP based on ping feedback — the paper's "scriptable
// tool" for creating variable and lossy channel conditions.
//
// The package offers one scenario driver per experimental condition of
// the paper (wired/wireless/cellular × with/without NTP clock
// correction × SNTP/MNTP), each returning the offset time series the
// figures plot.
package testbed

import (
	"time"

	"mntp/internal/cellular"
	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/ntpclient"
	"mntp/internal/sntp"
	"mntp/internal/stats"
	"mntp/internal/sysclock"
	"mntp/internal/wireless"
)

// Epoch is the wall-clock anchor of all testbed simulations: the first
// day of IMC 2016.
var Epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// Access selects the TN's access network.
type Access int

const (
	// Wireless connects the TN through the simulated 802.11 channel.
	Wireless Access = iota
	// Wired connects the TN through a stable wired path.
	Wired
	// Cellular connects the TN through the 4G model (§3.3).
	Cellular
)

// Config parameterizes a testbed instance.
type Config struct {
	Seed   int64
	Access Access
	// Monitor enables the MN's interference loop (ignored for Wired
	// and Cellular access, matching the paper's §3.3 setup "without
	// MN and download traffic").
	Monitor bool
	// NTPCorrection runs the full NTP client disciplining the TN
	// clock throughout the experiment.
	NTPCorrection bool
	// GPSCorrection disciplines the TN clock against true time
	// directly, emulating the §3.3 GPS baseline (SmartTimeSync): the
	// clock is stepped to within GPS accuracy every fix interval.
	// Unlike NTPCorrection it does not traverse the network path, so
	// it does not absorb path asymmetry into the clock.
	GPSCorrection bool
	// ClockConfig overrides the TN oscillator (zero value selects
	// clock.DefaultConfig(Seed)).
	ClockConfig *clock.Config
	// PoolSize is the number of pool members (default 4).
	PoolSize int
	// CellularProfile overrides the 4G profile (zero value selects
	// cellular.LTE2016()).
	CellularProfile *cellular.Profile
	// RTSCTS enables the 802.11 RTS/CTS handshake on the wireless
	// channel (the paper ran with it disabled, §3.2).
	RTSCTS bool
}

// PoolName is the pool address testbed clients query, standing in for
// 0.pool.ntp.org.
const PoolName = "0.pool.sim"

// Testbed is a constructed simulation instance.
type Testbed struct {
	Cfg     Config
	Sched   *netsim.Scheduler
	Net     *netsim.Network
	Channel *wireless.Channel // nil for wired/cellular access
	TNClock *clock.Sim
	Hints   hints.Provider
	// Members are the individual pool servers (addressable directly).
	Members []*netsim.Server
}

// New builds the Figure 3 topology.
func New(cfg Config) *Testbed {
	if cfg.PoolSize == 0 {
		cfg.PoolSize = 4
	}
	sched := netsim.NewScheduler(Epoch)
	truth := clock.NewTrue(Epoch, sched.Now)
	net := netsim.NewNetwork(sched)

	tb := &Testbed{Cfg: cfg, Sched: sched, Net: net}

	// Access segment shared by all servers.
	var access netsim.PathModel
	switch cfg.Access {
	case Wireless:
		tb.Channel = wireless.NewChannel(wireless.Params{Seed: cfg.Seed, RTSCTS: cfg.RTSCTS}, sched.Now)
		access = tb.Channel
		tb.Hints = tb.Channel
	case Wired:
		access = netsim.NewWiredPath(2*time.Millisecond, 500*time.Microsecond, 0, 0.0005, cfg.Seed^0x11)
		tb.Hints = hints.AlwaysFavorable
	case Cellular:
		prof := cellular.LTE2016()
		if cfg.CellularProfile != nil {
			prof = *cfg.CellularProfile
		}
		access = cellular.NewPath(prof, cfg.Seed^0x22)
		// Cellular hints are favorable: MNTP's 802.11 gates do not
		// apply; the §3.3 experiment measures SNTP only.
		tb.Hints = hints.AlwaysFavorable
	}

	// Pool members: true-time servers behind per-server wired
	// backbone segments of varying base delay, like pool.ntp.org
	// members scattered across the Internet.
	for i := 0; i < cfg.PoolSize; i++ {
		srv := netsim.NewServer(poolMemberName(i), truth, 2, cfg.Seed*37+int64(i))
		backbone := netsim.NewWiredPath(
			time.Duration(6+5*i)*time.Millisecond, 1500*time.Microsecond,
			time.Duration(i-cfg.PoolSize/2)*time.Millisecond, // mild per-path asymmetry
			0.001, cfg.Seed*91+int64(i))
		net.AddServer(srv, &netsim.CompositePath{Segments: []netsim.PathModel{access, backbone}})
		tb.Members = append(tb.Members, srv)
	}
	net.AddPool(netsim.NewPool(PoolName, tb.Members, cfg.Seed+7))

	// TN clock. The default skew is raised above the generic crystal
	// default: the paper's free-running laptop accumulated offsets of
	// several hundred ms within the experiment hours (Figures 8/12),
	// implying an effective drift of tens of ppm.
	ccfg := clock.DefaultConfig(cfg.Seed ^ 0x5a5a)
	ccfg.SkewPPM = 30
	if cfg.ClockConfig != nil {
		ccfg = *cfg.ClockConfig
	}
	tb.TNClock = clock.NewSim(ccfg, Epoch, sched.Now)

	return tb
}

func poolMemberName(i int) string {
	return "member" + string(rune('0'+i)) + ".pool.sim"
}

// startMonitor launches the monitor node's feedback loop (§3.2): ping
// probes from the TN measure channel health; losses make the MN back
// off (fewer downloads, more WAP power); a stable channel makes it
// attack (more downloads, less power), keeping conditions "variable
// and lossy at random intervals".
func (tb *Testbed) startMonitor(duration time.Duration) {
	if tb.Channel == nil || !tb.Cfg.Monitor {
		return
	}
	ch := tb.Channel
	// Download injector: a Proc that starts downloads at a rate the
	// controller tunes.
	rate := 0.5 // downloads per minute
	tb.Sched.Go(func(p *netsim.Proc) {
		rng := newRng(tb.Cfg.Seed ^ 0x700)
		for p.Now() < duration {
			wait := time.Duration(rng.ExpFloat64() / rate * float64(time.Minute))
			if wait > 5*time.Minute {
				wait = 5 * time.Minute
			}
			if wait < 2*time.Second {
				wait = 2 * time.Second
			}
			p.Sleep(wait)
			if p.Now() >= duration {
				return
			}
			ch.AddLoad(0.55)
			dl := time.Duration(20+rng.Intn(60)) * time.Second
			tb.Sched.After(dl, func() { ch.AddLoad(-0.55) })
		}
	})
	// Controller: ping-based feedback every 15 s.
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		for p.Now() < duration {
			losses := 0
			var rttSum time.Duration
			const probes = 4
			for i := 0; i < probes; i++ {
				rtt, lost := tr.Ping(poolMemberName(0))
				if lost {
					losses++
				} else {
					rttSum += rtt
				}
			}
			lossy := losses > 0 || (probes-losses > 0 && rttSum/time.Duration(probes-losses) > 120*time.Millisecond)
			if lossy {
				// Back off: calm the channel.
				ch.SetTxPower(ch.TxPower() + 5)
				rate *= 0.6
				if rate < 0.2 {
					rate = 0.2
				}
			} else {
				// Stable: destabilize it.
				ch.SetTxPower(ch.TxPower() - 4)
				rate *= 1.5
				if rate > 4 {
					rate = 4
				}
			}
			p.Sleep(15 * time.Second)
		}
	})
}

// startGPS launches the GPS-fix loop: every 30 s the TN clock is
// stepped to true time ± a few ms of GPS/app accuracy.
func (tb *Testbed) startGPS(duration time.Duration) {
	if !tb.Cfg.GPSCorrection {
		return
	}
	rng := newRng(tb.Cfg.Seed ^ 0x6a6a)
	tb.Sched.Every(time.Second, 30*time.Second, func() bool {
		err := tb.TNClock.TrueOffset()
		fixNoise := time.Duration((rng.Float64()*6 - 3) * float64(time.Millisecond))
		tb.TNClock.Step(-err + fixNoise)
		return tb.Sched.Now() < duration
	})
}

// startNTP launches the full NTP client disciplining the TN clock.
func (tb *Testbed) startNTP(duration time.Duration) {
	if !tb.Cfg.NTPCorrection {
		return
	}
	servers := make([]string, 0, len(tb.Members))
	for _, m := range tb.Members {
		servers = append(servers, m.Name)
	}
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		// Warm-start the frequency like ntpd's drift file: the paper's
		// TN ran its OS NTP daemon long before the experiments, so its
		// oscillator error was already mostly compensated. The drift
		// file is imperfect; leave a ~10% residual.
		c := ntpclient.New(tb.TNClock, tr, ntpclient.Config{
			Servers: servers, MaxPoll: 128 * time.Second,
			InitialFreq: -tb.TNClock.RawFreqError() * 0.9,
		})
		for p.Now() < duration {
			u, _ := c.Poll()
			p.Sleep(u.Poll)
		}
	})
}

// Point is one reported offset with its oracle context.
type Point struct {
	Elapsed    time.Duration
	Offset     time.Duration // offset reported by the protocol
	TrueOffset time.Duration // TN clock's true error at that moment
	// Error is the measurement error: reported offset minus the ideal
	// report (−TrueOffset).
	Error time.Duration
	// Accepted/Rejected classify MNTP points; SNTP points are always
	// Accepted.
	Accepted bool
	// Predicted is MNTP's trend prediction at that instant (PredOK).
	Predicted time.Duration
	PredOK    bool
	Hints     hints.Hints
}

// Series is a protocol run's output.
type Series struct {
	Name     string
	Points   []Point
	Requests int
	Deferred int
	Failed   int
	// Events is the raw MNTP event stream (nil for SNTP runs).
	Events []core.Event
}

// Reported returns the reported offsets in milliseconds (accepted
// points only — what the paper plots as the protocol's offsets).
func (s *Series) Reported() []float64 {
	var out []float64
	for _, p := range s.Points {
		if p.Accepted {
			out = append(out, p.Offset.Seconds()*1000)
		}
	}
	return out
}

// AbsReported returns |reported| in milliseconds for accepted points.
func (s *Series) AbsReported() []float64 {
	out := s.Reported()
	for i, v := range out {
		if v < 0 {
			out[i] = -v
		}
	}
	return out
}

// AbsError returns |measurement error| in milliseconds for accepted
// points.
func (s *Series) AbsError() []float64 {
	var out []float64
	for _, p := range s.Points {
		if p.Accepted {
			e := p.Error.Seconds() * 1000
			if e < 0 {
				e = -e
			}
			out = append(out, e)
		}
	}
	return out
}

// CorrectedResiduals returns, for accepted MNTP points with a valid
// prediction, the offset minus the trend prediction in milliseconds —
// the "clock corrected drift values" of Figure 12.
func (s *Series) CorrectedResiduals() []float64 {
	var out []float64
	for _, p := range s.Points {
		if p.Accepted && p.PredOK {
			out = append(out, (p.Offset-p.Predicted).Seconds()*1000)
		}
	}
	return out
}

// Summary returns summary statistics of the absolute reported offsets.
func (s *Series) Summary() stats.Summary { return stats.Summarize(s.AbsReported()) }

// RunSNTP runs an SNTP client querying the pool every interval for the
// configured duration, recording every reported offset. The returned
// series is the raw material of Figures 4, 5, 6, 8, 9, 10 and 12.
func (tb *Testbed) RunSNTP(interval, duration time.Duration) *Series {
	s := &Series{Name: "sntp"}
	tb.startMonitor(duration)
	tb.startNTP(duration)
	tb.startGPS(duration)
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		cl := sntp.New(tb.TNClock, tr, p, sntp.Config{Server: PoolName})
		for p.Now() < duration {
			s.Requests++
			sample, err := cl.Query()
			if err != nil {
				s.Failed++
			} else {
				trueOff := tb.TNClock.TrueOffset()
				s.Points = append(s.Points, Point{
					Elapsed:    p.Now(),
					Offset:     sample.Offset,
					TrueOffset: trueOff,
					Error:      sample.Offset + trueOff,
					Accepted:   true,
					Hints:      tb.Hints.Hints(),
				})
			}
			p.Sleep(interval)
		}
	})
	tb.Sched.Run()
	return s
}

// RunMNTP runs an MNTP client with the given parameters, recording
// every event. updateClock enables the regular phase's clock updates
// and drift correction (the paper's §5.1 baselines disable them for
// head-to-head comparison).
func (tb *Testbed) RunMNTP(params core.Params, duration time.Duration, updateClock bool) *Series {
	s := &Series{Name: "mntp"}
	if params.RegularServer == "" {
		params.RegularServer = PoolName
	}
	if params.WarmupServers == nil {
		params.WarmupServers = []string{PoolName, PoolName, PoolName}
	}
	if !updateClock {
		params.DisableClockUpdates = true
		params.DisableDriftCorrection = true
	}
	tb.startMonitor(duration)
	tb.startNTP(duration)
	tb.startGPS(duration)
	tb.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		var adj sysclock.Adjuster
		if updateClock {
			adj = sysclock.SimAdjuster{Clock: tb.TNClock}
		}
		c := core.New(tb.TNClock, adj, tr, tb.Hints, p, params)
		c.OnEvent = func(e core.Event) {
			s.Events = append(s.Events, e)
			switch e.Kind {
			case core.EventAccepted, core.EventRejected:
				trueOff := tb.TNClock.TrueOffset()
				s.Points = append(s.Points, Point{
					Elapsed:    e.Elapsed,
					Offset:     e.Offset,
					TrueOffset: trueOff,
					Error:      e.Offset + trueOff,
					Accepted:   e.Kind == core.EventAccepted,
					Predicted:  e.Predicted,
					PredOK:     e.PredOK,
					Hints:      e.Hints,
				})
			case core.EventDeferred:
				s.Deferred++
			case core.EventQueryFailed:
				s.Failed++
			}
			s.Requests = e.Requests
		}
		c.Run(duration)
	})
	tb.Sched.Run()
	return s
}
