package testbed

import "math/rand"

// newRng returns a seeded RNG; a helper so every stochastic component
// of the testbed derives determinism from the scenario seed.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
