package testbed

import (
	"testing"
	"time"

	"mntp/internal/core"
	"mntp/internal/stats"
)

func TestWiredSNTPWithCorrectionIsTight(t *testing.T) {
	// Figure 4-left, wired leg: offsets "always close to 0ms".
	tb := New(Config{Seed: 1, Access: Wired, NTPCorrection: true})
	s := tb.RunSNTP(5*time.Second, time.Hour)
	if len(s.Points) < 500 {
		t.Fatalf("points = %d", len(s.Points))
	}
	sum := stats.Summarize(s.AbsReported())
	if sum.Mean > 10 {
		t.Errorf("wired+NTP mean |offset| = %.1fms, want < 10ms", sum.Mean)
	}
	if sum.Max > 60 {
		t.Errorf("wired+NTP max |offset| = %.1fms, want < 60ms", sum.Max)
	}
}

func TestWiredSNTPWithoutCorrectionDriftsSteadily(t *testing.T) {
	// Figure 4-right, wired leg: "the drift is steady".
	tb := New(Config{Seed: 2, Access: Wired})
	s := tb.RunSNTP(5*time.Second, time.Hour)
	// The reported offset tracks the (negated) true clock error
	// closely on a wired path: measurement error stays small even as
	// offsets grow.
	errs := s.AbsError()
	if m := stats.Quantile(errs, 0.95); m > 10 {
		t.Errorf("wired p95 measurement error = %.1fms", m)
	}
	// And the drift accumulates visibly over the hour (18 ppm ≈ 65 ms).
	last := s.Points[len(s.Points)-1]
	if last.TrueOffset < 30*time.Millisecond {
		t.Errorf("final true offset = %v, want visible drift", last.TrueOffset)
	}
}

func TestWirelessSNTPWorseThanWired(t *testing.T) {
	// The core §3.2 finding: wireless offsets are far more variable
	// than wired under identical clock hardware.
	wired := New(Config{Seed: 3, Access: Wired, NTPCorrection: true}).
		RunSNTP(5*time.Second, time.Hour)
	wireless := New(Config{Seed: 3, Access: Wireless, Monitor: true, NTPCorrection: true}).
		RunSNTP(5*time.Second, time.Hour)

	wiredSum := stats.Summarize(wired.AbsReported())
	wlSum := stats.Summarize(wireless.AbsReported())
	if wlSum.Mean < 2*wiredSum.Mean {
		t.Errorf("wireless mean %.1fms not ≫ wired %.1fms", wlSum.Mean, wiredSum.Mean)
	}
	if wlSum.Std < 2*wiredSum.Std {
		t.Errorf("wireless std %.1fms not ≫ wired %.1fms", wlSum.Std, wiredSum.Std)
	}
	if wlSum.Max < 100 {
		t.Errorf("wireless max %.1fms lacks the paper's spikes", wlSum.Max)
	}
}

func TestCellularSNTPMatchesFigure5Envelope(t *testing.T) {
	// Figure 5: 3 h on 4G, offsets mean ≈ 192 ms, σ ≈ 55 ms,
	// max ≈ 840 ms. Match loosely: mean 120–280 ms, max > 400 ms.
	tb := New(Config{Seed: 4, Access: Cellular, GPSCorrection: true})
	s := tb.RunSNTP(5*time.Second, 3*time.Hour)
	sum := stats.Summarize(s.AbsReported())
	if sum.Mean < 120 || sum.Mean > 280 {
		t.Errorf("cellular mean |offset| = %.1fms, want 120–280ms", sum.Mean)
	}
	if sum.Max < 400 {
		t.Errorf("cellular max |offset| = %.1fms, want > 400ms", sum.Max)
	}
}

func TestMNTPBaselineExperimentShape(t *testing.T) {
	// Figure 6 conditions: wireless, NTP correction on, 5 s requests,
	// 1 h, no warm-up/regular split effects (tight cadence), drift
	// correction off. MNTP accepted offsets must stay within ~30 ms
	// while SNTP (same conditions) shows spikes several times larger.
	params := core.DefaultParams(PoolName)
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = 2 * time.Hour

	mntp := New(Config{Seed: 5, Access: Wireless, Monitor: true, NTPCorrection: true}).
		RunMNTP(params, time.Hour, false)
	sntp := New(Config{Seed: 5, Access: Wireless, Monitor: true, NTPCorrection: true}).
		RunSNTP(5*time.Second, time.Hour)

	mMax := stats.MaxAbs(mntp.Reported())
	sMax := stats.MaxAbs(sntp.Reported())
	if mMax > 35 {
		t.Errorf("MNTP max |offset| = %.1fms, want ≤ 35ms", mMax)
	}
	if sMax < 2.5*mMax {
		t.Errorf("SNTP max %.1fms not ≫ MNTP max %.1fms", sMax, mMax)
	}
	if mntp.Deferred == 0 {
		t.Error("MNTP never deferred on a stressed channel")
	}
	rejectedCount := 0
	for _, p := range mntp.Points {
		if !p.Accepted {
			rejectedCount++
		}
	}
	if rejectedCount == 0 {
		t.Error("MNTP filter rejected nothing")
	}
}

func TestMNTPLongRunCorrectedResiduals(t *testing.T) {
	// Figure 12 conditions: 4 h, wireless, no NTP correction, clock
	// free-running. MNTP's corrected drift values stay under ~20 ms.
	params := core.DefaultParams(PoolName)
	params.WarmupPeriod = 30 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = 5 * time.Hour

	tb := New(Config{Seed: 6, Access: Wireless, Monitor: true})
	s := tb.RunMNTP(params, 4*time.Hour, false)

	resid := s.CorrectedResiduals()
	if len(resid) < 100 {
		t.Fatalf("corrected residuals = %d", len(resid))
	}
	if m := stats.MaxAbs(resid); m > 25 {
		t.Errorf("max corrected residual = %.1fms, want ≤ 25ms", m)
	}
	// Meanwhile the raw true offset drifted far beyond that.
	last := s.Points[len(s.Points)-1]
	if last.TrueOffset.Abs() < 100*time.Millisecond {
		t.Errorf("clock only drifted %v in 4h; scenario too tame", last.TrueOffset)
	}
}

func TestSeriesAccessors(t *testing.T) {
	s := &Series{Points: []Point{
		{Offset: -30 * time.Millisecond, Accepted: true, Predicted: -28 * time.Millisecond, PredOK: true},
		{Offset: 500 * time.Millisecond, Accepted: false},
		{Offset: 10 * time.Millisecond, Accepted: true},
	}}
	if got := s.Reported(); len(got) != 2 || got[0] != -30 {
		t.Errorf("Reported = %v", got)
	}
	if got := s.AbsReported(); got[0] != 30 || got[1] != 10 {
		t.Errorf("AbsReported = %v", got)
	}
	if got := s.CorrectedResiduals(); len(got) != 1 || got[0] != -2 {
		t.Errorf("CorrectedResiduals = %v", got)
	}
}

func TestMonitorKeepsChannelVariable(t *testing.T) {
	// With the MN active, the channel must alternate between favorable
	// and unfavorable regimes over an hour.
	tb := New(Config{Seed: 7, Access: Wireless, Monitor: true})
	tb.startMonitor(time.Hour)
	favorable, unfavorable := 0, 0
	tb.Sched.Every(time.Second, 10*time.Second, func() bool {
		st := tb.Channel.StateNow()
		if st.RSSI > -75 && st.Noise < -70 && st.RSSI-st.Noise >= 20 {
			favorable++
		} else {
			unfavorable++
		}
		return tb.Sched.Now() < time.Hour
	})
	tb.Sched.Run()
	total := favorable + unfavorable
	if favorable < total/10 {
		t.Errorf("favorable %d/%d: channel never calm", favorable, total)
	}
	if unfavorable < total/10 {
		t.Errorf("unfavorable %d/%d: channel never stressed", unfavorable, total)
	}
}
