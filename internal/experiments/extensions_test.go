package experiments

import "testing"

func TestExtensionEnergyOrdering(t *testing.T) {
	o := ExtensionEnergy(quick())
	ratio := findMetric(t, o, "mntp vs sntp-5s energy ratio").Measured
	if ratio <= 0 || ratio >= 0.9 {
		t.Errorf("MNTP/SNTP-5s energy ratio = %.3f, want well below 1", ratio)
	}
	mntp := findMetric(t, o, "mntp daily energy (3G)").Measured
	if mntp <= 0 {
		t.Error("no MNTP energy recorded")
	}
}

func TestExtensionNITZHierarchy(t *testing.T) {
	o := ExtensionNITZ(quick())
	nitzW := findMetric(t, o, "nitz worst error").Measured
	mntpW := findMetric(t, o, "mntp worst error").Measured
	// NITZ is seconds-coarse; MNTP sub-100ms: at least 5x apart.
	if nitzW < 5*mntpW {
		t.Errorf("NITZ worst %.0fms not ≫ MNTP worst %.0fms", nitzW, mntpW)
	}
	if mntpW > 600 {
		t.Errorf("MNTP worst error on cellular = %.0fms, implausibly high", mntpW)
	}
}

func TestExtensionSelfTuneImprovesRMSEOrSavesRequests(t *testing.T) {
	o := ExtensionSelfTune(quick())
	fixed := findMetric(t, o, "fixed RMSE").Measured
	tuned := findMetric(t, o, "self-tuned RMSE").Measured
	if tuned > fixed*1.2 {
		t.Errorf("self-tuned RMSE %.2f worse than fixed %.2f", tuned, fixed)
	}
}

func TestExtensionRTSCTS(t *testing.T) {
	o := ExtensionRTSCTS(quick())
	if findMetric(t, o, "RTS/CTS worsens mean").Measured != 1 {
		t.Error("RTS/CTS did not worsen SNTP, contradicting the §3.2 expectation")
	}
}

func TestExtensionNTPComparison(t *testing.T) {
	o := ExtensionNTPComparison(quick())
	sntp := findMetric(t, o, "sntp worst clock error").Measured
	ntp := findMetric(t, o, "ntp worst clock error").Measured
	mntp := findMetric(t, o, "mntp worst clock error").Measured
	// MNTP must beat raw SNTP stepping and be no worse than full NTP
	// (which itself can stray on a shared stressed hop — the paper's
	// Figure 4 observation).
	if mntp >= sntp {
		t.Errorf("MNTP worst %.1fms not below SNTP %.1fms", mntp, sntp)
	}
	if mntp > ntp*1.1 {
		t.Errorf("MNTP worst %.1fms worse than full NTP %.1fms", mntp, ntp)
	}
	if mntp > 120 {
		t.Errorf("MNTP worst clock error %.1fms implausibly high", mntp)
	}
}
