package experiments

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
	"time"

	"mntp/internal/ipasn"
	"mntp/internal/ntplog"
	"mntp/internal/report"
	"mntp/internal/stats"
	"mntp/internal/testbed"
	"mntp/internal/tuner"
)

// generateDataset produces and analyzes the 19-server synthetic
// dataset in memory, returning per-server reports keyed by ID.
func generateDataset(opt Options) (map[string]*ntplog.Report, *ipasn.Registry, error) {
	reg := ipasn.NewRegistry()
	reports := make(map[string]*ntplog.Report)
	for _, prof := range ntplog.Table1Profiles() {
		var buf bytes.Buffer
		if _, _, err := ntplog.Generate(&buf, prof, reg, ntplog.GenConfig{
			Scale: opt.LogScale, Seed: opt.Seed,
		}); err != nil {
			return nil, nil, fmt.Errorf("generate %s: %w", prof.ID, err)
		}
		rep, err := ntplog.Analyze(&buf, reg, ntplog.AnalyzeConfig{})
		if err != nil {
			return nil, nil, fmt.Errorf("analyze %s: %w", prof.ID, err)
		}
		reports[prof.ID] = rep
	}
	return reports, reg, nil
}

// Table1 regenerates the client-statistics table from the synthetic
// pcap dataset (scaled; the implied full-scale counts use 1/scale).
func Table1(opt Options) Outcome {
	opt.applyDefaults()
	reports, _, err := generateDataset(opt)
	if err != nil {
		return Outcome{ID: "table1", Title: "NTP log client statistics", Text: "error: " + err.Error()}
	}

	t := report.NewTable("Server", "UniqueClients", "Stratum", "IPVersion",
		"Measurements", "ImpliedFullClients")
	var totalClients, totalMeas int
	for _, prof := range ntplog.Table1Profiles() {
		rep := reports[prof.ID]
		row := rep.Table1Row(prof.ID)
		t.AddRow(row.ServerID, row.UniqueClients, int(row.Stratum), row.IPVersion,
			row.TotalMeasurements, int(float64(row.UniqueClients)/opt.LogScale))
		totalClients += row.UniqueClients
		totalMeas += row.TotalMeasurements
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Table 1 (synthetic dataset at scale %.5f):\n\n", opt.LogScale)
	b.WriteString(t.String())

	out := Outcome{ID: "table1", Title: "Summary of client statistics in NTP logs", Text: b.String()}
	out.metric("servers", float64(len(reports)), 19, "count")
	out.metric("scaled clients", float64(totalClients), 0, "count")
	out.metric("scaled measurements", float64(totalMeas), 0, "count")
	// Structural check: MW2 has the largest client population in
	// Table 1; the reproduction must preserve the ordering.
	largest := ""
	largestN := -1
	for id, rep := range reports {
		if rep.UniqueClients() > largestN {
			largest, largestN = id, rep.UniqueClients()
		}
	}
	out.metric("largest server is MW2", boolMetric(largest == "MW2"), 1, "bool")
	return out
}

// figure1Servers are the three servers the paper shows (the rest
// "exhibited similar characteristics").
var figure1Servers = []string{"AG1", "JW2", "SU1"}

// Figure1 reproduces the min-OWD comparison and CDFs per provider.
func Figure1(opt Options) Outcome {
	opt.applyDefaults()
	reports, _, err := generateDataset(opt)
	if err != nil {
		return Outcome{ID: "figure1", Title: "Min OWD per provider", Text: "error: " + err.Error()}
	}

	var b strings.Builder
	categoryMedians := map[ipasn.Category][]float64{}
	for _, id := range figure1Servers {
		rep := reports[id]
		t := report.NewTable("Provider", "Category", "Clients", "MedianMinOWD", "P25", "P75")
		var boxes []report.BoxRow
		var cdfSeries []report.Series
		markers := "cimb"
		for _, agg := range rep.ByProvider() {
			if len(agg.MinOWDs) == 0 {
				continue
			}
			sum := agg.Summary()
			t.AddRow(agg.Provider.Name, agg.Provider.Category.String(),
				agg.Clients, sum.Median, sum.P25, sum.P75)
			boxes = append(boxes, report.BoxRow{
				Label: agg.Provider.Name,
				Min:   sum.Min, P25: sum.P25, Median: sum.Median,
				P75: sum.P75, Max: sum.Max,
			})
			categoryMedians[agg.Provider.Category] = append(
				categoryMedians[agg.Provider.Category], sum.Median)
			// One CDF per category exemplar for readability.
			if agg.Provider.Rank == 1 || agg.Provider.Rank == 4 ||
				agg.Provider.Rank == 10 || agg.Provider.Rank == 22 {
				c := stats.NewCDF(agg.MinOWDs)
				xs, ps := c.Points(40)
				cdfSeries = append(cdfSeries, report.Series{
					Name:   agg.Provider.Name,
					Marker: rune(markers[len(cdfSeries)%len(markers)]),
					X:      xs, Y: ps,
				})
			}
		}
		fmt.Fprintf(&b, "Server %s — min OWD per provider:\n\n%s\n", id, t.String())
		b.WriteString(report.BoxPlot(
			fmt.Sprintf("Server %s: min OWD box plot per provider (Figure 1 left)", id),
			"ms", boxes, 64))
		b.WriteString("\n")
		b.WriteString(report.CDFPlot(
			fmt.Sprintf("Server %s: CDF of min OWDs (category exemplars)", id), "ms", cdfSeries))
		b.WriteString("\n")
	}

	out := Outcome{ID: "figure1", Title: "Min OWDs of clients per service provider", Text: b.String()}
	out.metric("cloud median min-OWD", stats.Mean(categoryMedians[ipasn.Cloud]), 40, "ms")
	out.metric("isp median min-OWD", stats.Mean(categoryMedians[ipasn.ISP]), 50, "ms")
	out.metric("broadband median min-OWD", stats.Mean(categoryMedians[ipasn.Broadband]), 250, "ms")
	out.metric("mobile median min-OWD", stats.Mean(categoryMedians[ipasn.Mobile]), 550, "ms")
	return out
}

// Figure2 reproduces the SNTP-vs-NTP protocol shares.
func Figure2(opt Options) Outcome {
	opt.applyDefaults()
	reports, _, err := generateDataset(opt)
	if err != nil {
		return Outcome{ID: "figure2", Title: "SNTP vs NTP shares", Text: "error: " + err.Error()}
	}

	var b strings.Builder
	t := report.NewTable("Server", "SNTP%", "NTP%")
	var publicShares, ispShares []float64
	for _, prof := range ntplog.Table1Profiles() {
		share := reports[prof.ID].ProtocolShare() * 100
		t.AddRow(prof.ID, share, 100-share)
		if prof.ISPSpecific {
			ispShares = append(ispShares, share)
		} else {
			publicShares = append(publicShares, share)
		}
	}
	fmt.Fprintf(&b, "Figure 2 (left): protocol share per server:\n\n%s\n", t.String())

	// Per-provider shares (Figure 2 right shows SU1; at reduced scale
	// per-provider populations on a single small server are too thin,
	// so aggregate over all public servers — the paper notes the
	// result is consistent across servers).
	perProvider := map[int]*struct{ clients, sntp int }{}
	order := []int{}
	for _, prof := range ntplog.Table1Profiles() {
		if prof.ISPSpecific {
			continue
		}
		for _, agg := range reports[prof.ID].ByProvider() {
			e := perProvider[agg.Provider.Rank]
			if e == nil {
				e = &struct{ clients, sntp int }{}
				perProvider[agg.Provider.Rank] = e
				order = append(order, agg.Provider.Rank)
			}
			e.clients += agg.Clients
			e.sntp += agg.SNTP
		}
	}
	sort.Ints(order)
	reg := ipasn.NewRegistry()
	t2 := report.NewTable("Provider", "Category", "Clients", "SNTP%")
	var mobileShares []float64
	for _, rank := range order {
		e := perProvider[rank]
		p, _ := reg.ByRank(rank)
		share := 0.0
		if e.clients > 0 {
			share = float64(e.sntp) / float64(e.clients) * 100
		}
		t2.AddRow(p.Name, p.Category.String(), e.clients, share)
		if p.Category == ipasn.Mobile && e.clients >= 10 {
			mobileShares = append(mobileShares, share)
		}
	}
	fmt.Fprintf(&b, "Figure 2 (right): provider shares (public servers):\n\n%s", t2.String())

	out := Outcome{ID: "figure2", Title: "SNTP vs NTP protocol usage", Text: b.String()}
	out.metric("public servers mean SNTP share", stats.Mean(publicShares), 0, "%")
	out.metric("ISP-specific servers mean SNTP share", stats.Mean(ispShares), 0, "%")
	out.metric("mobile providers mean SNTP share", stats.Mean(mobileShares), 95, "%")
	return out
}

// tunerTrace collects the §5.3 logging trace (4 h at 5 s, free
// clock, stressed channel).
func tunerTrace(opt Options) *tuner.Trace {
	_, _, long := opt.durations()
	tb := testbed.New(testbed.Config{Seed: opt.Seed + 53, Access: testbed.Wireless, Monitor: true})
	sources := []string{testbed.PoolName, testbed.PoolName, testbed.PoolName}
	return tuner.Collect(tb, sources, 5*time.Second, long)
}

// Table2 evaluates the six sample configurations on a collected
// trace.
func Table2(opt Options) Outcome {
	opt.applyDefaults()
	tr := tunerTrace(opt)

	t := report.NewTable("Config", "warmupPeriod(min)", "warmupWaitTime(min)",
		"regularWaitTime(min)", "resetPeriod(min)", "RMSE(ms)", "Requests")
	paperRMSE := []float64{13.08, 11.66, 11.09, 10.86, 9.27, 8.9}
	paperReqs := []float64{239, 316, 387, 534, 1210, 2913}
	out := Outcome{ID: "table2", Title: "MNTP tuner sample configurations"}
	var firstRMSE, lastRMSE float64
	var firstReq, lastReq int
	for i, cfg := range tuner.Table2Configs() {
		res := tuner.Emulate(tr, cfg.Params())
		t.AddRow(cfg.Name, cfg.WarmupMin, cfg.WarmupWaitMin, cfg.RegularWaitMin,
			cfg.ResetMin, res.RMSE, res.Requests)
		out.metric(fmt.Sprintf("config %s RMSE", cfg.Name), res.RMSE, paperRMSE[i], "ms")
		out.metric(fmt.Sprintf("config %s requests", cfg.Name), float64(res.Requests), paperReqs[i], "count")
		if i == 0 {
			firstRMSE, firstReq = res.RMSE, res.Requests
		}
		lastRMSE, lastReq = res.RMSE, res.Requests
	}
	out.Text = "Table 2 (trace-driven on the collected log):\n\n" + t.String()
	out.metric("RMSE improves config1->6", boolMetric(lastRMSE <= firstRMSE), 1, "bool")
	out.metric("requests grow config1->6", boolMetric(lastReq > firstReq), 1, "bool")
	return out
}

// Figure11 plots the achievable corrected offsets per configuration.
func Figure11(opt Options) Outcome {
	opt.applyDefaults()
	tr := tunerTrace(opt)

	p := report.NewPlot("Figure 11: RMSE per tuner configuration", "configuration #", "RMSE (ms)")
	var xs, ys []float64
	for i, cfg := range tuner.Table2Configs() {
		res := tuner.Emulate(tr, cfg.Params())
		xs = append(xs, float64(i+1))
		ys = append(ys, res.RMSE)
	}
	p.Add(report.Series{Name: "rmse", Marker: '#', X: xs, Y: ys})

	out := Outcome{ID: "figure11", Title: "Achievable clock offsets per configuration", Text: p.String()}
	out.metric("best config RMSE", stats.Min(ys), 8.9, "ms")
	out.metric("worst config RMSE", stats.Max(ys), 13.08, "ms")
	return out
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// All runs every experiment.
func All(opt Options) []Outcome {
	outs := []Outcome{
		Table1(opt), Figure1(opt), Figure2(opt), Figure3(opt),
		Figure4(opt), Figure5(opt), Figure6(opt), Figure7(opt),
		Figure8(opt), Figure9(opt), Figure10(opt), Figure11(opt),
		Figure12(opt), Table2(opt),
	}
	sortOutcomes(outs)
	return outs
}
