package experiments

import (
	"strings"
	"testing"
)

// quick returns fast options for tests.
func quick() Options { return Options{Seed: 2016, Quick: true} }

func findMetric(t *testing.T, o Outcome, name string) Metric {
	t.Helper()
	for _, m := range o.Metrics {
		if m.Name == name {
			return m
		}
	}
	t.Fatalf("%s: metric %q missing (have %v)", o.ID, name, o.Metrics)
	return Metric{}
}

func TestTable1(t *testing.T) {
	o := Table1(quick())
	if !strings.Contains(o.Text, "AG1") || !strings.Contains(o.Text, "SU1") {
		t.Error("table missing servers")
	}
	if got := findMetric(t, o, "servers").Measured; got != 19 {
		t.Errorf("servers = %v", got)
	}
	if findMetric(t, o, "largest server is MW2").Measured != 1 {
		t.Error("client-count ordering lost (MW2 must be largest)")
	}
	if findMetric(t, o, "scaled measurements").Measured <= 0 {
		t.Error("no measurements")
	}
}

func TestFigure1CategoryOrdering(t *testing.T) {
	o := Figure1(quick())
	cloud := findMetric(t, o, "cloud median min-OWD").Measured
	isp := findMetric(t, o, "isp median min-OWD").Measured
	bb := findMetric(t, o, "broadband median min-OWD").Measured
	mobile := findMetric(t, o, "mobile median min-OWD").Measured
	if !(cloud < isp && isp < bb && bb < mobile) {
		t.Errorf("category medians not ordered: %v %v %v %v", cloud, isp, bb, mobile)
	}
	if mobile < 300 {
		t.Errorf("mobile median = %.0f, want ≳ 400", mobile)
	}
}

func TestFigure2Shares(t *testing.T) {
	o := Figure2(quick())
	mobile := findMetric(t, o, "mobile providers mean SNTP share").Measured
	if mobile < 85 {
		t.Errorf("mobile SNTP share = %.1f%%, want ≥ 85%%", mobile)
	}
	pub := findMetric(t, o, "public servers mean SNTP share").Measured
	isp := findMetric(t, o, "ISP-specific servers mean SNTP share").Measured
	if pub < 50 {
		t.Errorf("public SNTP share = %.1f%%, want majority", pub)
	}
	if isp > 50 {
		t.Errorf("ISP-specific SNTP share = %.1f%%, want minority", isp)
	}
}

func TestFigure3(t *testing.T) {
	o := Figure3(quick())
	if !strings.Contains(o.Text, "WAP") || !strings.Contains(o.Text, "MN") {
		t.Error("topology description incomplete")
	}
}

func TestFigure4Shape(t *testing.T) {
	o := Figure4(quick())
	wlMean := findMetric(t, o, "wireless+NTP mean |offset|").Measured
	wdMean := findMetric(t, o, "wired+NTP mean |offset|").Measured
	if wlMean < 2*wdMean {
		t.Errorf("wireless mean %.1f not ≫ wired %.1f", wlMean, wdMean)
	}
	// The with-vs-without-correction gap is driven by drift
	// accumulation over the paper's full hour; at quick scale only a
	// weak sanity bound holds (different seeds, ~20 ms of drift).
	free := findMetric(t, o, "wireless free mean |offset|").Measured
	if free < wlMean/2 {
		t.Errorf("free-running mean %.1f implausibly below corrected %.1f", free, wlMean)
	}
}

func TestFigure5Shape(t *testing.T) {
	o := Figure5(quick())
	mean := findMetric(t, o, "mean |offset|").Measured
	if mean < 100 || mean > 320 {
		t.Errorf("cellular mean = %.1f, want in the paper's regime (~192)", mean)
	}
	if max := findMetric(t, o, "max").Measured; max < 400 {
		t.Errorf("cellular max = %.1f, want > 400", max)
	}
}

func TestFigure6Headline(t *testing.T) {
	o := Figure6(quick())
	s := findMetric(t, o, "SNTP max |offset|").Measured
	m := findMetric(t, o, "MNTP max |offset|").Measured
	imp := findMetric(t, o, "improvement factor").Measured
	if m > 35 {
		t.Errorf("MNTP max = %.1fms, want ≤ 35 (paper: 23)", m)
	}
	if s < 100 {
		t.Errorf("SNTP max = %.1fms, want ≫ 100 (paper: 292)", s)
	}
	if imp < 3 {
		t.Errorf("improvement = %.1fx, want ≥ 3 (paper: 12)", imp)
	}
}

func TestFigure7HasSelections(t *testing.T) {
	o := Figure7(quick())
	if findMetric(t, o, "rejected offsets").Measured == 0 {
		t.Error("no rejections recorded")
	}
	if findMetric(t, o, "deferred requests").Measured == 0 {
		t.Error("no deferrals recorded")
	}
}

func TestFigure8Shape(t *testing.T) {
	o := Figure8(quick())
	m := findMetric(t, o, "MNTP max |corrected residual|").Measured
	s := findMetric(t, o, "SNTP max |offset|").Measured
	if m > 30 {
		t.Errorf("MNTP corrected residual max = %.1f, want ≤ 30 (paper: 24)", m)
	}
	if s < 3*m {
		t.Errorf("SNTP max %.1f not ≫ MNTP %.1f", s, m)
	}
}

func TestFigure9And10(t *testing.T) {
	o9 := Figure9(quick())
	m := findMetric(t, o9, "MNTP(wireless) max |offset|").Measured
	if m > 35 {
		t.Errorf("fig9 MNTP max = %.1f", m)
	}
	o10 := Figure10(quick())
	r := findMetric(t, o10, "MNTP(wireless) max |corrected residual|").Measured
	if r > 35 {
		t.Errorf("fig10 MNTP residual max = %.1f", r)
	}
}

func TestFigure12LongRun(t *testing.T) {
	o := Figure12(quick())
	s := findMetric(t, o, "SNTP max |offset|").Measured
	m := findMetric(t, o, "MNTP max |corrected residual|").Measured
	if m > 30 {
		t.Errorf("long-run MNTP residual = %.1f, want ≤ 30 (paper: <20)", m)
	}
	if s < 2*m {
		t.Errorf("long-run SNTP %.1f not ≫ MNTP %.1f", s, m)
	}
}

func TestTable2Tradeoff(t *testing.T) {
	o := Table2(quick())
	if findMetric(t, o, "RMSE improves config1->6").Measured != 1 {
		t.Error("RMSE did not improve from config 1 to 6")
	}
	if findMetric(t, o, "requests grow config1->6").Measured != 1 {
		t.Error("requests did not grow from config 1 to 6")
	}
	c1 := findMetric(t, o, "config 1 RMSE").Measured
	if c1 <= 0 || c1 > 40 {
		t.Errorf("config 1 RMSE = %.2f, out of plausible range", c1)
	}
}

func TestFigure11(t *testing.T) {
	o := Figure11(quick())
	best := findMetric(t, o, "best config RMSE").Measured
	worst := findMetric(t, o, "worst config RMSE").Measured
	if best > worst {
		t.Errorf("best %.2f > worst %.2f", best, worst)
	}
}

func TestMetricsTableRendering(t *testing.T) {
	o := Figure3(quick())
	tbl := o.MetricsTable()
	if !strings.Contains(tbl, "metric") || !strings.Contains(tbl, "pool members") {
		t.Errorf("metrics table:\n%s", tbl)
	}
}
