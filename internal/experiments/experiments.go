// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the relevant scenario,
// executes it in virtual time, and returns an Outcome bundling the
// rendered text (tables/ASCII plots), the key measured metrics, and
// the paper's reported targets for side-by-side comparison in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"mntp/internal/core"
	"mntp/internal/report"
	"mntp/internal/stats"
	"mntp/internal/testbed"
)

// Options tune experiment scale.
type Options struct {
	// Seed drives all randomness (default 2016).
	Seed int64
	// Quick shrinks durations/scales so benchmarks and CI runs finish
	// fast; the full settings match the paper's experiment durations.
	Quick bool
	// LogScale overrides the §3.1 trace scale (default 1/2000 full,
	// 1/20000 quick).
	LogScale float64
}

func (o *Options) applyDefaults() {
	if o.Seed == 0 {
		o.Seed = 2016
	}
	if o.LogScale == 0 {
		if o.Quick {
			o.LogScale = 1.0 / 20000
		} else {
			o.LogScale = 1.0 / 2000
		}
	}
}

// Metric pairs a measured value with the paper's reported target.
type Metric struct {
	Name     string
	Measured float64
	Paper    float64 // 0 when the paper gives no number
	Unit     string
}

// Outcome is one experiment's result.
type Outcome struct {
	ID      string
	Title   string
	Text    string
	Metrics []Metric
}

// metric appends a metric.
func (o *Outcome) metric(name string, measured, paper float64, unit string) {
	o.Metrics = append(o.Metrics, Metric{Name: name, Measured: measured, Paper: paper, Unit: unit})
}

// MetricsTable renders the paper-vs-measured comparison.
func (o *Outcome) MetricsTable() string {
	t := report.NewTable("metric", "measured", "paper", "unit")
	for _, m := range o.Metrics {
		paper := "-"
		if m.Paper != 0 {
			paper = fmt.Sprintf("%.2f", m.Paper)
		}
		t.AddRow(m.Name, m.Measured, paper, m.Unit)
	}
	return t.String()
}

// durations returns (baseline 1 h, cellular 3 h, long 4 h) or the
// quick equivalents.
func (o Options) durations() (base, cell, long time.Duration) {
	if o.Quick {
		return 20 * time.Minute, 30 * time.Minute, 60 * time.Minute
	}
	return time.Hour, 3 * time.Hour, 4 * time.Hour
}

// baselineMNTPParams returns the §5.1 head-to-head configuration:
// requests every 5 s, drift correction off (applied by the caller via
// updateClock=false).
func baselineMNTPParams(base time.Duration) core.Params {
	p := core.DefaultParams(testbed.PoolName)
	p.DisablePollJitter = true // paper-figure reproduction: exact cadence
	p.WarmupPeriod = base / 6
	p.WarmupWaitTime = 5 * time.Second
	p.RegularWaitTime = 5 * time.Second
	p.ResetPeriod = 2 * base
	return p
}

// seriesPlot renders offset series against elapsed minutes.
func seriesPlot(title string, series ...*testbed.Series) string {
	p := report.NewPlot(title, "minutes", "reported offset (ms)")
	markers := []rune{'+', 'o', 'x', '#'}
	for i, s := range series {
		var xs, ys []float64
		var rx, ry []float64
		for _, pt := range s.Points {
			x := pt.Elapsed.Minutes()
			y := pt.Offset.Seconds() * 1000
			if pt.Accepted {
				xs = append(xs, x)
				ys = append(ys, y)
			} else {
				rx = append(rx, x)
				ry = append(ry, y)
			}
		}
		p.Add(report.Series{Name: s.Name, Marker: markers[i%len(markers)], X: xs, Y: ys})
		if len(rx) > 0 {
			p.Add(report.Series{Name: s.Name + "-rejected", Marker: 'r', X: rx, Y: ry})
		}
	}
	return p.String()
}

// Figure3 documents the testbed topology by constructing it and
// describing the realized components — the closest executable
// equivalent of the paper's architecture diagram.
func Figure3(opt Options) Outcome {
	opt.applyDefaults()
	tb := testbed.New(testbed.Config{Seed: opt.Seed, Access: testbed.Wireless, Monitor: true})
	var b strings.Builder
	fmt.Fprintf(&b, "Testbed topology (Figure 3):\n")
	fmt.Fprintf(&b, "  WAP: simulated 802.11 channel, tx power %.0f dBm (programmable 0-20)\n",
		tb.Channel.TxPower())
	fmt.Fprintf(&b, "  TN:  oscillator clock, wireless last hop\n")
	fmt.Fprintf(&b, "  MN:  ping-feedback interference controller (cross traffic + power)\n")
	fmt.Fprintf(&b, "  Pool %q with %d members behind wired backbone segments:\n",
		testbed.PoolName, len(tb.Members))
	for _, m := range tb.Members {
		fmt.Fprintf(&b, "    %s (stratum %d)\n", m.Name, m.Stratum)
	}
	out := Outcome{ID: "figure3", Title: "Testbed architecture", Text: b.String()}
	out.metric("pool members", float64(len(tb.Members)), 0, "count")
	return out
}

// Figure4 runs SNTP in the four §3.2 conditions: wired/wireless ×
// with/without NTP clock correction.
func Figure4(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	run := func(access testbed.Access, ntp bool, seedOff int64) *testbed.Series {
		tb := testbed.New(testbed.Config{
			Seed: opt.Seed + seedOff, Access: access,
			Monitor: access == testbed.Wireless, NTPCorrection: ntp,
		})
		s := tb.RunSNTP(5*time.Second, base)
		if access == testbed.Wireless {
			s.Name = "wireless"
		} else {
			s.Name = "wired"
		}
		return s
	}

	wiredNTP := run(testbed.Wired, true, 1)
	wirelessNTP := run(testbed.Wireless, true, 1)
	wiredFree := run(testbed.Wired, false, 2)
	wirelessFree := run(testbed.Wireless, false, 2)

	var b strings.Builder
	b.WriteString(seriesPlot("Figure 4 (left): SNTP offsets with NTP clock correction", wiredNTP, wirelessNTP))
	b.WriteString("\n")
	b.WriteString(seriesPlot("Figure 4 (right): SNTP offsets without NTP clock correction", wiredFree, wirelessFree))

	out := Outcome{ID: "figure4", Title: "SNTP wired vs wireless, with/without NTP correction", Text: b.String()}
	wn := stats.Summarize(wirelessNTP.AbsReported())
	wf := stats.Summarize(wirelessFree.AbsReported())
	wd := stats.Summarize(wiredNTP.AbsReported())
	out.metric("wireless+NTP mean |offset|", wn.Mean, 31, "ms")
	out.metric("wireless+NTP std", wn.Std, 47, "ms")
	out.metric("wireless+NTP max", wn.Max, 600, "ms")
	out.metric("wireless free mean |offset|", wf.Mean, 118, "ms")
	out.metric("wireless free std", wf.Std, 133, "ms")
	out.metric("wired+NTP mean |offset|", wd.Mean, 4, "ms")
	out.metric("wired+NTP std", wd.Std, 7, "ms")
	return out
}

// Figure5 runs SNTP on the cellular path for the §3.3 duration.
func Figure5(opt Options) Outcome {
	opt.applyDefaults()
	_, cell, _ := opt.durations()
	tb := testbed.New(testbed.Config{Seed: opt.Seed + 5, Access: testbed.Cellular, GPSCorrection: true})
	s := tb.RunSNTP(5*time.Second, cell)
	s.Name = "sntp-4g"

	out := Outcome{
		ID: "figure5", Title: "SNTP offsets on a 4G network",
		Text: seriesPlot("Figure 5: SNTP clock offsets on 4G", s),
	}
	sum := stats.Summarize(s.AbsReported())
	out.metric("mean |offset|", sum.Mean, 192, "ms")
	out.metric("std", sum.Std, 55, "ms")
	out.metric("max", sum.Max, 840, "ms")
	return out
}

// figure6Runs executes the paired SNTP/MNTP baseline comparison under
// the given correction setting and returns both series.
func figure6Runs(opt Options, ntpCorrection bool, seedOff int64) (sntp, mntp *testbed.Series) {
	base, _, _ := opt.durations()
	cfgS := testbed.Config{Seed: opt.Seed + seedOff, Access: testbed.Wireless,
		Monitor: true, NTPCorrection: ntpCorrection}
	sntp = testbed.New(cfgS).RunSNTP(5*time.Second, base)
	mntp = testbed.New(cfgS).RunMNTP(baselineMNTPParams(base), base, false)
	return sntp, mntp
}

// Figure6 is the headline baseline: SNTP vs MNTP, wireless, with NTP
// clock correction.
func Figure6(opt Options) Outcome {
	opt.applyDefaults()
	sntp, mntp := figure6Runs(opt, true, 6)
	out := Outcome{
		ID: "figure6", Title: "SNTP vs MNTP on wireless with NTP clock correction",
		Text: seriesPlot("Figure 6: SNTP vs MNTP offsets (wireless, NTP-corrected clock)", sntp, mntp),
	}
	sMax := stats.MaxAbs(sntp.Reported())
	mMax := stats.MaxAbs(mntp.Reported())
	out.metric("SNTP max |offset|", sMax, 292, "ms")
	out.metric("MNTP max |offset|", mMax, 23, "ms")
	improvement := 0.0
	if mMax > 0 {
		improvement = sMax / mMax
	}
	out.metric("improvement factor", improvement, 12, "x")
	return out
}

// Figure7 records the signals-and-selection view of the Figure 6 MNTP
// run: RSSI/noise traces plus accepted and rejected offsets.
func Figure7(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	tb := testbed.New(testbed.Config{Seed: opt.Seed + 6, Access: testbed.Wireless,
		Monitor: true, NTPCorrection: true})
	s := tb.RunMNTP(baselineMNTPParams(base), base, false)

	sig := report.NewPlot("Figure 7: signals (RSSI '.', noise 'n') and selection", "minutes", "dBm")
	var rx, ry, nx, ny []float64
	for _, e := range s.Events {
		x := e.Elapsed.Minutes()
		rx = append(rx, x)
		ry = append(ry, e.Hints.RSSI)
		nx = append(nx, x)
		ny = append(ny, e.Hints.Noise)
	}
	sig.Add(report.Series{Name: "rssi", Marker: '.', X: rx, Y: ry})
	sig.Add(report.Series{Name: "noise", Marker: 'n', X: nx, Y: ny})

	var b strings.Builder
	b.WriteString(sig.String())
	b.WriteString("\n")
	b.WriteString(seriesPlot("Figure 7 (offsets): accepted vs rejected", s))

	out := Outcome{ID: "figure7", Title: "Signals and selection plot", Text: b.String()}
	accepted, rejected := 0, 0
	for _, p := range s.Points {
		if p.Accepted {
			accepted++
		} else {
			rejected++
		}
	}
	out.metric("accepted offsets", float64(accepted), 0, "count")
	out.metric("rejected offsets", float64(rejected), 0, "count")
	out.metric("deferred requests", float64(s.Deferred), 0, "count")
	return out
}

// Figure8 repeats Figure 6 without NTP clock correction.
func Figure8(opt Options) Outcome {
	opt.applyDefaults()
	sntp, mntp := figure6Runs(opt, false, 8)
	out := Outcome{
		ID: "figure8", Title: "SNTP vs MNTP on wireless without NTP clock correction",
		Text: seriesPlot("Figure 8: SNTP vs MNTP offsets (free-running clock)", sntp, mntp),
	}
	sMax := stats.MaxAbs(sntp.Reported())
	// Without correction MNTP's quality metric is the corrected
	// residual around its drift trend line (the paper: "within 4.5ms
	// of the reference clock", max offset 24 ms).
	resid := mntp.CorrectedResiduals()
	mMax := stats.MaxAbs(resid)
	out.metric("SNTP max |offset|", sMax, 450, "ms")
	out.metric("MNTP max |corrected residual|", mMax, 24, "ms")
	out.metric("MNTP mean |corrected residual|", stats.Mean(absAll(resid)), 4.5, "ms")
	if mMax > 0 {
		out.metric("improvement factor", sMax/mMax, 17, "x")
	}
	return out
}

// Figure9 compares SNTP on a wired network against MNTP on wireless,
// both with NTP correction.
func Figure9(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	sntp := testbed.New(testbed.Config{Seed: opt.Seed + 9, Access: testbed.Wired, NTPCorrection: true}).
		RunSNTP(5*time.Second, base)
	sntp.Name = "sntp-wired"
	mntp := testbed.New(testbed.Config{Seed: opt.Seed + 9, Access: testbed.Wireless,
		Monitor: true, NTPCorrection: true}).
		RunMNTP(baselineMNTPParams(base), base, false)
	mntp.Name = "mntp-wireless"

	out := Outcome{
		ID: "figure9", Title: "SNTP (wired) vs MNTP (wireless), NTP-corrected",
		Text: seriesPlot("Figure 9: wired SNTP vs wireless MNTP offsets", sntp, mntp),
	}
	out.metric("SNTP(wired) max |offset|", stats.MaxAbs(sntp.Reported()), 50, "ms")
	out.metric("MNTP(wireless) max |offset|", stats.MaxAbs(mntp.Reported()), 20, "ms")
	return out
}

// Figure10 repeats Figure 9 without NTP clock correction.
func Figure10(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	sntp := testbed.New(testbed.Config{Seed: opt.Seed + 10, Access: testbed.Wired}).
		RunSNTP(5*time.Second, base)
	sntp.Name = "sntp-wired"
	mntp := testbed.New(testbed.Config{Seed: opt.Seed + 10, Access: testbed.Wireless, Monitor: true}).
		RunMNTP(baselineMNTPParams(base), base, false)
	mntp.Name = "mntp-wireless"

	out := Outcome{
		ID: "figure10", Title: "SNTP (wired) vs MNTP (wireless), free-running clocks",
		Text: seriesPlot("Figure 10: wired SNTP vs wireless MNTP, no correction", sntp, mntp),
	}
	// Both clocks drift; compare measurement quality via errors and
	// corrected residuals.
	out.metric("SNTP(wired) max |meas error|", stats.MaxAbs(sntp.AbsError()), 50, "ms")
	out.metric("MNTP(wireless) max |corrected residual|",
		stats.MaxAbs(mntp.CorrectedResiduals()), 20, "ms")
	return out
}

// Figure12 is the 4-hour long run: SNTP vs MNTP, free-running clock.
func Figure12(opt Options) Outcome {
	opt.applyDefaults()
	_, _, long := opt.durations()
	cfg := testbed.Config{Seed: opt.Seed + 12, Access: testbed.Wireless, Monitor: true}
	sntp := testbed.New(cfg).RunSNTP(5*time.Second, long)
	params := baselineMNTPParams(long)
	params.WarmupPeriod = long / 8
	params.ResetPeriod = 2 * long
	mntp := testbed.New(cfg).RunMNTP(params, long, false)

	out := Outcome{
		ID: "figure12", Title: "4-hour SNTP vs MNTP, free-running clock",
		Text: seriesPlot("Figure 12: long-run SNTP vs MNTP offsets", sntp, mntp),
	}
	out.metric("SNTP max |offset|", stats.MaxAbs(sntp.Reported()), 392, "ms")
	out.metric("MNTP max |corrected residual|",
		stats.MaxAbs(mntp.CorrectedResiduals()), 20, "ms")
	out.metric("MNTP requests", float64(mntp.Requests), 0, "count")
	return out
}

func absAll(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		if x < 0 {
			x = -x
		}
		out[i] = x
	}
	return out
}

// sortOutcomes orders outcomes by ID for stable rendering.
func sortOutcomes(os []Outcome) {
	sort.Slice(os, func(i, j int) bool { return os[i].ID < os[j].ID })
}
