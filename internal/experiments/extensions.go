package experiments

import (
	"fmt"
	"strings"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/energy"
	"mntp/internal/netsim"
	"mntp/internal/nitz"
	"mntp/internal/ntpclient"
	"mntp/internal/report"
	"mntp/internal/sntp"
	"mntp/internal/stats"
	"mntp/internal/sysclock"
	"mntp/internal/testbed"
)

// This file contains the extension experiments beyond the paper's
// published evaluation, each discharging something the paper names:
//
//   - ExtensionEnergy: the §7 "battery performance" benchmarking of
//     MNTP vs SNTP vs NTP, using the radio energy model the §3.4
//     argument rests on;
//   - ExtensionNITZ: quantifies the §2 claim that NITZ is "a weaker
//     mechanism" by comparing device clock error under NITZ-only,
//     Android fallback, and MNTP;
//   - ExtensionSelfTune: the §7 "self-tuning of parameter settings";
//   - ExtensionRTSCTS: validates the §3.2 expectation that SNTP
//     performs worse with RTS/CTS enabled.

// ExtensionEnergy compares the daily radio energy of synchronization
// policies on 3G and WiFi radio models.
func ExtensionEnergy(opt Options) Outcome {
	opt.applyDefaults()
	dur := 12 * time.Hour
	if opt.Quick {
		dur = 3 * time.Hour
	}

	type policy struct {
		name string
		run  func(tb *testbed.Testbed, meter *energy.Meter)
	}
	policies := []policy{
		{"sntp-android-daily", func(tb *testbed.Testbed, meter *energy.Meter) {
			tb.Sched.Go(func(p *netsim.Proc) {
				inner := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
				tr := &energy.MeteredTransport{Inner: inner, Meter: meter, Now: p.Now}
				cl := sntp.New(tb.TNClock, tr, p, sntp.AndroidConfig(testbed.PoolName))
				for p.Now() < dur {
					cl.Query()
					p.Sleep(24 * time.Hour)
				}
			})
		}},
		{"ntp-adaptive", func(tb *testbed.Testbed, meter *energy.Meter) {
			servers := make([]string, 0, len(tb.Members))
			for _, m := range tb.Members {
				servers = append(servers, m.Name)
			}
			tb.Sched.Go(func(p *netsim.Proc) {
				inner := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
				tr := &energy.MeteredTransport{Inner: inner, Meter: meter, Now: p.Now}
				c := ntpclient.New(tb.TNClock, tr, ntpclient.Config{Servers: servers})
				for p.Now() < dur {
					u, _ := c.Poll()
					p.Sleep(u.Poll)
				}
			})
		}},
		{"mntp-config2", func(tb *testbed.Testbed, meter *energy.Meter) {
			tb.Sched.Go(func(p *netsim.Proc) {
				inner := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
				tr := &energy.MeteredTransport{Inner: inner, Meter: meter, Now: p.Now}
				params := core.DefaultParams(testbed.PoolName)
				params.DisablePollJitter = true // paper-figure reproduction: exact cadence
				params.DisableClockUpdates = true
				c := core.New(tb.TNClock, nil, tr, tb.Hints, p, params)
				c.Run(dur)
			})
		}},
		{"sntp-every-5s", func(tb *testbed.Testbed, meter *energy.Meter) {
			tb.Sched.Go(func(p *netsim.Proc) {
				inner := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
				tr := &energy.MeteredTransport{Inner: inner, Meter: meter, Now: p.Now}
				cl := sntp.New(tb.TNClock, tr, p, sntp.Config{Server: testbed.PoolName})
				for p.Now() < dur {
					cl.Query()
					p.Sleep(5 * time.Second)
				}
			})
		}},
	}

	t := report.NewTable("Policy", "Exchanges", "RadioWakeups(3G)",
		"Energy/day 3G (J)", "Energy/day WiFi (J)")
	out := Outcome{ID: "ext-energy", Title: "Daily radio energy per synchronization policy (extension)"}
	daily := map[string]float64{}
	for _, pol := range policies {
		tb := testbed.New(testbed.Config{Seed: opt.Seed + 70, Access: testbed.Wireless, Monitor: true})
		m3g := energy.NewMeter(energy.ThreeG())
		pol.run(tb, m3g)
		tb.Sched.Run()
		// Re-score the same activity under the WiFi model.
		mwifi := energy.NewMeter(energy.WiFi())
		replayMeter(m3g, mwifi)

		e3g := float64(energy.PerDay(m3g.Energy(), dur))
		ewifi := float64(energy.PerDay(mwifi.Energy(), dur))
		t.AddRow(pol.name, m3g.Events(), m3g.Bursts(), e3g, ewifi)
		daily[pol.name] = e3g
	}
	out.Text = t.String() + "\nThe §3.4 argument quantified: MNTP's paced requests cost a fraction\n" +
		"of naive periodic SNTP, and WiFi's short tail makes any schedule cheap.\n"
	out.metric("mntp vs sntp-5s energy ratio",
		ratio(daily["mntp-config2"], daily["sntp-every-5s"]), 0, "fraction")
	out.metric("mntp daily energy (3G)", daily["mntp-config2"], 0, "J")
	out.metric("ntp daily energy (3G)", daily["ntp-adaptive"], 0, "J")
	return out
}

// replayMeter copies the activity of one meter into another (the
// spans are not exported; re-record through the public API).
func replayMeter(from, to *energy.Meter) {
	for _, s := range from.Spans() {
		to.Activity(s.Start, s.End-s.Start)
	}
}

func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// ExtensionNITZ compares device clock error over two days under
// NITZ-only updates, the Android fallback (daily SNTP, cellular
// path), and MNTP — quantifying §2's "weaker mechanism" claim.
func ExtensionNITZ(opt Options) Outcome {
	opt.applyDefaults()
	// Virtual time is cheap: run the full two days even in quick mode,
	// because the Android/NITZ 5 s update threshold is only ever
	// crossed once a 40 ppm clock has drifted for many hours — the
	// phenomenon under study.
	dur := 48 * time.Hour
	clockCfg := clock.Config{SkewPPM: 40, Seed: opt.Seed ^ 0x99}

	// worstError runs a policy on a fresh cellular testbed and
	// samples the true clock error every 10 minutes.
	worstError := func(policy func(tb *testbed.Testbed)) (worstMs, meanMs float64) {
		tb := testbed.New(testbed.Config{
			Seed: opt.Seed + 80, Access: testbed.Cellular, ClockConfig: &clockCfg,
		})
		policy(tb)
		var acc stats.Online
		tb.Sched.Every(10*time.Minute, 10*time.Minute, func() bool {
			off := tb.TNClock.TrueOffset().Seconds() * 1000
			if off < 0 {
				off = -off
			}
			acc.Add(off)
			return tb.Sched.Now() < dur
		})
		tb.Sched.Run()
		return acc.Max(), acc.Mean()
	}

	nitzWorst, nitzMean := worstError(func(tb *testbed.Testbed) {
		truth := clock.NewTrue(testbed.Epoch, tb.Sched.Now)
		m := nitz.NewManager(tb.TNClock, nil, nitz.ManagerConfig{NITZAvailable: true})
		src := nitz.NewSource(tb.Sched, truth, nitz.SourceConfig{
			MeanBoundaryInterval: 5 * time.Hour, Seed: opt.Seed + 81,
		})
		src.Run(dur, m.OnNITZ)
	})

	androidWorst, androidMean := worstError(func(tb *testbed.Testbed) {
		tb.Sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
			cl := sntp.New(tb.TNClock, tr, p, sntp.AndroidConfig(testbed.PoolName))
			m := nitz.NewManager(tb.TNClock, cl, nitz.ManagerConfig{NITZAvailable: false})
			m.RunFallback(p, dur)
		})
	})

	mntpWorst, mntpMean := worstError(func(tb *testbed.Testbed) {
		tb.Sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
			params := core.DefaultParams(testbed.PoolName)
			params.DisablePollJitter = true // paper-figure reproduction: exact cadence
			c := core.New(tb.TNClock, sysclock.SimAdjuster{Clock: tb.TNClock}, tr, tb.Hints, p, params)
			c.Run(dur)
		})
	})

	t := report.NewTable("Policy", "Mean |error| (ms)", "Worst |error| (ms)")
	t.AddRow("nitz-only", nitzMean, nitzWorst)
	t.AddRow("android-sntp-daily", androidMean, androidWorst)
	t.AddRow("mntp", mntpMean, mntpWorst)

	out := Outcome{ID: "ext-nitz", Title: "NITZ vs Android fallback vs MNTP (extension)",
		Text: t.String()}
	out.metric("nitz worst error", nitzWorst, 0, "ms")
	out.metric("android worst error", androidWorst, 0, "ms")
	out.metric("mntp worst error", mntpWorst, 0, "ms")
	return out
}

// ExtensionSelfTune compares a fixed sparse configuration against the
// same configuration under the self-tuner.
func ExtensionSelfTune(opt Options) Outcome {
	opt.applyDefaults()
	dur := 12 * time.Hour
	if opt.Quick {
		dur = 4 * time.Hour
	}

	run := func(tuner core.Tuner) (rmse float64, requests int) {
		tb := testbed.New(testbed.Config{
			Seed: opt.Seed + 90, Access: testbed.Wireless, Monitor: true,
		})
		params := core.DefaultParams(testbed.PoolName)
		params.DisablePollJitter = true // paper-figure reproduction: exact cadence
		params.WarmupPeriod = 20 * time.Minute
		params.WarmupWaitTime = 90 * time.Second // sparse start
		params.RegularWaitTime = 20 * time.Minute
		params.ResetPeriod = 2 * time.Hour
		params.DisableClockUpdates = true
		params.DisableDriftCorrection = true

		var resids []float64
		var reqs int
		tb.Sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
			c := core.New(tb.TNClock, nil, tr, tb.Hints, p, params)
			c.Tuner = tuner
			c.OnEvent = func(e core.Event) {
				if e.Kind == core.EventAccepted && e.PredOK {
					resids = append(resids, (e.Offset-e.Predicted).Seconds()*1000)
				}
				reqs = e.Requests
			}
			c.Run(dur)
		})
		tb.Sched.Run()
		return stats.RMSE(resids, 0), reqs
	}

	fixedRMSE, fixedReq := run(nil)
	tunedRMSE, tunedReq := run(core.NewSelfTuner(3))

	t := report.NewTable("Configuration", "RMSE (ms)", "Requests")
	t.AddRow("fixed (sparse)", fixedRMSE, fixedReq)
	t.AddRow("self-tuned (target 3ms)", tunedRMSE, tunedReq)

	out := Outcome{ID: "ext-selftune", Title: "Self-tuning of MNTP parameters (extension)",
		Text: t.String()}
	out.metric("fixed RMSE", fixedRMSE, 0, "ms")
	out.metric("self-tuned RMSE", tunedRMSE, 0, "ms")
	out.metric("self-tuned requests", float64(tunedReq), 0, "count")
	return out
}

// ExtensionRTSCTS validates the §3.2 expectation: "we would expect
// the performance of SNTP to be even worse with this feature
// enabled."
func ExtensionRTSCTS(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	run := func(rtscts bool) stats.Summary {
		tb := testbed.New(testbed.Config{
			Seed: opt.Seed + 95, Access: testbed.Wireless,
			Monitor: true, NTPCorrection: true, RTSCTS: rtscts,
		})
		return stats.Summarize(tb.RunSNTP(5*time.Second, base).AbsReported())
	}
	off := run(false)
	on := run(true)

	var b strings.Builder
	t := report.NewTable("RTS/CTS", "Mean |offset| (ms)", "Std", "P95", "Max")
	t.AddRow("disabled (paper setting)", off.Mean, off.Std, off.P95, off.Max)
	t.AddRow("enabled", on.Mean, on.Std, on.P95, on.Max)
	fmt.Fprintf(&b, "%s\nThe paper disabled RTS/CTS and predicted SNTP would fare worse with\nit on; the handshake's variable reservation delays confirm it.\n", t.String())

	out := Outcome{ID: "ext-rtscts", Title: "SNTP with RTS/CTS enabled (extension)", Text: b.String()}
	out.metric("mean without RTS/CTS", off.Mean, 0, "ms")
	out.metric("mean with RTS/CTS", on.Mean, 0, "ms")
	out.metric("RTS/CTS worsens mean", boolMetric(on.Mean > off.Mean), 1, "bool")
	return out
}

// Extensions runs every extension experiment.
func Extensions(opt Options) []Outcome {
	return []Outcome{
		ExtensionEnergy(opt), ExtensionNITZ(opt),
		ExtensionSelfTune(opt), ExtensionRTSCTS(opt),
		ExtensionNTPComparison(opt),
	}
}

// ExtensionNTPComparison benchmarks MNTP against full NTP and plain
// SNTP with all three *disciplining the clock* on the same stressed
// wireless channel — the comparison the paper explicitly deferred
// ("we do not compare against NTP ... but plan to do so in future
// work", §1 fn. 2 and §7). The score is the true clock error, which
// the simulation can read exactly.
func ExtensionNTPComparison(opt Options) Outcome {
	opt.applyDefaults()
	base, _, _ := opt.durations()
	dur := 4 * base

	type outcome struct {
		worst, mean float64
		requests    int
	}
	sample := func(tb *testbed.Testbed, reqs func() int) outcome {
		var acc stats.Online
		tb.Sched.Every(10*time.Minute, time.Minute, func() bool {
			off := tb.TNClock.TrueOffset().Seconds() * 1000
			if off < 0 {
				off = -off
			}
			acc.Add(off)
			return tb.Sched.Now() < dur
		})
		tb.Sched.Run()
		return outcome{worst: acc.Max(), mean: acc.Mean(), requests: reqs()}
	}
	newTB := func() *testbed.Testbed {
		return testbed.New(testbed.Config{
			Seed: opt.Seed + 99, Access: testbed.Wireless, Monitor: true,
		})
	}

	// SNTP disciplining directly (every accepted offset steps the
	// clock), 64 s cadence.
	var sntpReqs int
	tbS := newTB()
	tbS.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tbS.Net, Proc: p, Clock: tbS.TNClock}
		cl := sntp.New(tbS.TNClock, tr, p, sntp.Config{Server: testbed.PoolName})
		for p.Now() < dur {
			if _, _, err := cl.SyncOnce(); err == nil {
				sntpReqs++
			}
			p.Sleep(64 * time.Second)
		}
	})
	resS := sample(tbS, func() int { return sntpReqs })

	// Full NTP.
	tbN := newTB()
	var ntpPolls int
	servers := []string{}
	for _, m := range tbN.Members {
		servers = append(servers, m.Name)
	}
	tbN.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tbN.Net, Proc: p, Clock: tbN.TNClock}
		c := ntpclient.New(tbN.TNClock, tr, ntpclient.Config{
			Servers: servers, MaxPoll: 256 * time.Second,
		})
		for p.Now() < dur {
			u, _ := c.Poll()
			ntpPolls += len(servers)
			p.Sleep(u.Poll)
		}
	})
	resN := sample(tbN, func() int { return ntpPolls })

	// MNTP with clock updates and drift correction on.
	tbM := newTB()
	var mntpClient *core.Client
	tbM.Sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: tbM.Net, Proc: p, Clock: tbM.TNClock}
		params := core.DefaultParams(testbed.PoolName)
		params.DisablePollJitter = true // paper-figure reproduction: exact cadence
		params.WarmupPeriod = base / 4
		params.WarmupWaitTime = 10 * time.Second
		params.RegularWaitTime = 2 * time.Minute
		params.ResetPeriod = 2 * dur
		mntpClient = core.New(tbM.TNClock, sysclock.SimAdjuster{Clock: tbM.TNClock},
			tr, tbM.Hints, p, params)
		mntpClient.Run(dur)
	})
	resM := sample(tbM, func() int { return mntpClient.Requests() })

	t := report.NewTable("Protocol", "Mean |clock error| (ms)", "Worst (ms)", "Requests")
	t.AddRow("sntp (64s, direct steps)", resS.mean, resS.worst, resS.requests)
	t.AddRow("ntp (full, adaptive)", resN.mean, resN.worst, resN.requests)
	t.AddRow("mntp (updates+drift)", resM.mean, resM.worst, resM.requests)

	out := Outcome{ID: "ext-ntpcomp",
		Title: "Disciplined-clock accuracy: SNTP vs NTP vs MNTP (extension)",
		Text: t.String() + "\nNote: full NTP can stray on a stressed *shared* wireless hop — every\n" +
			"peer's samples carry the same access-link bias, which Marzullo\n" +
			"selection cannot reject. The paper observed exactly this (Figure 4:\n" +
			"NTP-corrected offsets as bad as 600 ms during lossy conditions);\n" +
			"MNTP's channel gating sidesteps it.\n"}
	out.metric("sntp worst clock error", resS.worst, 0, "ms")
	out.metric("ntp worst clock error", resN.worst, 0, "ms")
	out.metric("mntp worst clock error", resM.worst, 0, "ms")
	out.metric("mntp requests", float64(resM.requests), 0, "count")
	out.metric("ntp requests", float64(resN.requests), 0, "count")
	return out
}
