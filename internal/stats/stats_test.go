package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || StdDev(nil) != 0 {
		t.Error("empty moments should be zero")
	}
	if Median(nil) != 0 || RMSE(nil, 5) != 0 || MaxAbs(nil) != 0 {
		t.Error("empty median/rmse/maxabs should be zero")
	}
	m, s := MeanStd(nil)
	if m != 0 || s != 0 {
		t.Error("empty MeanStd should be zero")
	}
	if got := Summarize(nil); got.N != 0 {
		t.Error("empty summary should be zero")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 || Max(xs) != 5 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if MaxAbs([]float64{-7, 3}) != 7 {
		t.Error("MaxAbs failed")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0.25); got != 17.5 {
		t.Errorf("q25 = %v, want 17.5 (type-7)", got)
	}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	got := Quantiles(xs, 0.5, 1)
	if got[0] != 25 || got[1] != 40 {
		t.Errorf("Quantiles = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Quantile mutated its input")
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{3, -4}, 0); !almost(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
	if got := RMSE([]float64{5, 5, 5}, 5); got != 0 {
		t.Errorf("RMSE at ref = %v", got)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.P(cse.x); got != cse.want {
			t.Errorf("P(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
	if got := c.InverseP(0.5); got != 2 {
		t.Errorf("InverseP(0.5) = %v, want 2", got)
	}
	if got := c.InverseP(1); got != 3 {
		t.Errorf("InverseP(1) = %v, want 3", got)
	}
	xs, ps := c.Points(2)
	if len(xs) != 2 || len(ps) != 2 || ps[1] != 1 {
		t.Errorf("Points = %v %v", xs, ps)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var o Online
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 7
		o.Add(xs[i])
	}
	if !almost(o.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v vs batch %v", o.Mean(), Mean(xs))
	}
	if !almost(o.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online var %v vs batch %v", o.Variance(), Variance(xs))
	}
	if o.Min() != Min(xs) || o.Max() != Max(xs) || o.N() != len(xs) {
		t.Error("online min/max/n mismatch")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Errorf("summary = %+v", s)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 9.9, 10, 100} {
		h.Add(x)
	}
	if h.Total() != 7 {
		t.Errorf("total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // -1, 0, 1.9
		t.Errorf("bin0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[4] != 3 { // 9.9, 10 (clamped), 100 (clamped)
		t.Errorf("bin4 = %d, want 3", h.Counts[4])
	}
}

// Property: variance is non-negative and invariant to shifting.
func TestQuickVarianceShiftInvariant(t *testing.T) {
	f := func(raw []float64, shiftRaw int16) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		v := Variance(xs)
		if v < 0 {
			return false
		}
		shift := float64(shiftRaw)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		return almost(Variance(shifted), v, 1e-3*(1+v))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the CDF is monotone non-decreasing.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(sample []float64, a, b float64) bool {
		clean := make([]float64, 0, len(sample))
		for _, x := range sample {
			if !math.IsNaN(x) {
				clean = append(clean, x)
			}
		}
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		c := NewCDF(clean)
		if a > b {
			a, b = b, a
		}
		return c.P(a) <= c.P(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantiles are monotone in q and bounded by min/max.
func TestQuickQuantileMonotone(t *testing.T) {
	f := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q1 = math.Abs(math.Mod(q1, 1))
		q2 = math.Abs(math.Mod(q2, 1))
		if math.IsNaN(q1) || math.IsNaN(q2) {
			return true
		}
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		v1, v2 := Quantile(xs, q1), Quantile(xs, q2)
		return v1 <= v2 && v1 >= Min(xs) && v2 <= Max(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestHistogramNaNInfGuards pins the numerical-robustness fix: NaN
// samples are dropped instead of converting to a platform-dependent
// bin index, ±Inf clamp to the edge bins.
func TestHistogramNaNInfGuards(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(math.NaN())
	if h.Total() != 0 {
		t.Errorf("NaN sample counted: %v", h.Counts)
	}
	h.Add(math.Inf(1))
	if h.Counts[4] != 1 {
		t.Errorf("+Inf not clamped to last bin: %v", h.Counts)
	}
	h.Add(math.Inf(-1))
	if h.Counts[0] != 1 {
		t.Errorf("-Inf not clamped to first bin: %v", h.Counts)
	}
	h.Add(3)
	if h.Counts[1] != 1 || h.Total() != 3 {
		t.Errorf("finite sample misbinned: %v", h.Counts)
	}
	// Degenerate zero-width range: x==Lo gives pos=NaN; must not panic
	// or count.
	d := NewHistogram(5, 5, 3)
	d.Add(5)
	d.Add(7) // +Inf pos clamps to the last bin
	if d.Counts[2] != 1 || d.Total() != 1 {
		t.Errorf("degenerate-range histogram: %v", d.Counts)
	}
}

// TestQuantileDropsNaN: NaN samples must not shift the order
// statistics (sort.Float64s parks NaNs at the front).
func TestQuantileDropsNaN(t *testing.T) {
	clean := []float64{1, 2, 3, 4, 5}
	dirty := []float64{math.NaN(), 1, 2, math.NaN(), 3, 4, 5}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 1} {
		if got, want := Quantile(dirty, q), Quantile(clean, q); got != want {
			t.Errorf("Quantile(dirty, %v) = %v, want %v", q, got, want)
		}
	}
	if got := Quantile([]float64{math.NaN(), math.NaN()}, 0.5); got != 0 {
		t.Errorf("all-NaN quantile = %v, want 0", got)
	}
	qs := Quantiles(dirty, 0.5, 0.9)
	if qs[0] != Quantile(clean, 0.5) || qs[1] != Quantile(clean, 0.9) {
		t.Errorf("Quantiles with NaNs = %v", qs)
	}
	// ±Inf stay as extreme order statistics.
	if got := Quantile([]float64{math.Inf(1), 1, 2}, 1); !math.IsInf(got, 1) {
		t.Errorf("max quantile with +Inf = %v", got)
	}
	// NaN q degrades to the median instead of an unspecified index.
	if got := Quantile(clean, math.NaN()); got != 3 {
		t.Errorf("NaN-q quantile = %v, want median 3", got)
	}
}
