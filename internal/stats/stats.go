// Package stats provides the small statistical toolkit used throughout
// the MNTP reproduction: summary statistics, quantiles, empirical CDFs,
// RMSE against a reference, an online (Welford) accumulator, and fixed
// histograms. All functions are allocation-conscious and operate on
// float64 slices; time series code converts durations to milliseconds
// at the boundary.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divides by n), or 0
// for an empty slice. The MNTP filter uses population variance,
// matching numpy's default used by the paper's Python prototype.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanStd returns mean and population standard deviation in one pass.
func MeanStd(xs []float64) (mean, std float64) {
	n := len(xs)
	if n == 0 {
		return 0, 0
	}
	var acc Online
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Mean(), acc.StdDev()
}

// Min returns the minimum of xs. It panics on an empty slice: callers
// establish non-emptiness (the log analyzer needs min OWD per client
// and filters empty clients out first).
func Min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, panicking on an empty slice.
func Max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MaxAbs returns the maximum absolute value in xs, or 0 when empty.
func MaxAbs(xs []float64) float64 {
	var m float64
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// Median returns the median of xs (average of the middle two for even
// n), or 0 for an empty slice. xs is not modified.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-th quantile of xs (0 ≤ q ≤ 1) using linear
// interpolation between order statistics (type-7, the numpy default).
// NaN samples are dropped — a degenerate zero-delay exchange can
// produce one, and sort.Float64s would otherwise park it at the front
// and shift every order statistic. ±Inf are kept as legitimate
// extreme order statistics. Returns 0 for an empty (or all-NaN)
// slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	sorted := sortedFinite(xs)
	if len(sorted) == 0 {
		return 0
	}
	return quantileSorted(sorted, q)
}

// Quantiles computes multiple quantiles from a single sort of xs,
// with the same NaN handling as Quantile. xs is not modified.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	sorted := sortedFinite(xs)
	if len(sorted) == 0 {
		return out
	}
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

// sortedFinite returns a sorted copy of xs with NaNs dropped.
func sortedFinite(xs []float64) []float64 {
	sorted := make([]float64, 0, len(xs))
	for _, x := range xs {
		if !math.IsNaN(x) {
			sorted = append(sorted, x)
		}
	}
	sort.Float64s(sorted)
	return sorted
}

// quantileSorted interpolates an order statistic from a sorted,
// NaN-free, non-empty sample. A NaN q is treated as the median rather
// than producing a platform-dependent index.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if math.IsNaN(q) {
		q = 0.5
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns the root mean squared error of xs against a constant
// reference value ref. The MNTP tuner (§5.3) uses ref = 0: the RMSE of
// reported offsets with respect to a perfectly synchronized clock.
func RMSE(xs []float64, ref float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		d := x - ref
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// CDF is an empirical cumulative distribution function.
type CDF struct {
	xs []float64 // sorted sample
}

// NewCDF builds an empirical CDF from the sample. The input is copied.
func NewCDF(sample []float64) *CDF {
	xs := make([]float64, len(sample))
	copy(xs, sample)
	sort.Float64s(xs)
	return &CDF{xs: xs}
}

// P returns the empirical probability P[X ≤ x].
func (c *CDF) P(x float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.xs, x)
	// Advance past equal values so the CDF is right-continuous.
	for i < len(c.xs) && c.xs[i] == x {
		i++
	}
	return float64(i) / float64(len(c.xs))
}

// InverseP returns the smallest sample value x with P[X ≤ x] ≥ p.
func (c *CDF) InverseP(p float64) float64 {
	if len(c.xs) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(c.xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(c.xs) {
		i = len(c.xs) - 1
	}
	return c.xs[i]
}

// Points returns up to n (x, P[X≤x]) points suitable for plotting. For
// n ≥ len(sample) every sample point is returned.
func (c *CDF) Points(n int) (xs, ps []float64) {
	total := len(c.xs)
	if total == 0 || n <= 0 {
		return nil, nil
	}
	if n > total {
		n = total
	}
	xs = make([]float64, n)
	ps = make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i+1)*total/n - 1
		xs[i] = c.xs[j]
		ps[i] = float64(j+1) / float64(total)
	}
	return xs, ps
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.xs) }

// Online is a running accumulator of count, mean and variance using
// Welford's algorithm, plus min/max. The zero value is ready to use.
type Online struct {
	n        int
	mean, m2 float64
	min, max float64
}

// Add incorporates x.
func (o *Online) Add(x float64) {
	o.n++
	if o.n == 1 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// N returns the number of samples added.
func (o *Online) N() int { return o.n }

// Mean returns the running mean (0 when empty).
func (o *Online) Mean() float64 { return o.mean }

// Variance returns the running population variance.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// StdDev returns the running population standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// Min returns the smallest sample added (0 when empty).
func (o *Online) Min() float64 { return o.min }

// Max returns the largest sample added (0 when empty).
func (o *Online) Max() float64 { return o.max }

// Summary bundles the usual five-number-plus summary of a sample.
type Summary struct {
	N                int
	Mean, Std        float64
	Min, Max         float64
	P25, Median, P75 float64
	P90, P95, P99    float64
}

// Summarize computes a Summary of xs. An empty sample yields the zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	mean, std := MeanStd(xs)
	qs := Quantiles(xs, 0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1)
	return Summary{
		N: len(xs), Mean: mean, Std: std,
		Min: qs[0], P25: qs[1], Median: qs[2], P75: qs[3],
		P90: qs[4], P95: qs[5], P99: qs[6], Max: qs[7],
	}
}

// Histogram counts samples into equal-width bins over [lo, hi). Values
// outside the range land in the first/last bin.
type Histogram struct {
	Lo, Hi float64
	Counts []int
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add counts x into its bin. A NaN sample is dropped (the previous
// straight float→int conversion of a NaN is platform-dependent in Go:
// the result is unspecified, so the count could land in any bin);
// ±Inf clamp to the first/last bin like any other out-of-range value.
func (h *Histogram) Add(x float64) {
	n := len(h.Counts)
	if n == 0 || math.IsNaN(x) {
		return
	}
	pos := float64(n) * (x - h.Lo) / (h.Hi - h.Lo)
	var i int
	switch {
	case math.IsNaN(pos): // degenerate Lo==Hi range with x==Lo
		return
	case pos < 0: // includes -Inf
		i = 0
	case pos >= float64(n): // includes +Inf
		i = n - 1
	default:
		i = int(pos)
	}
	h.Counts[i]++
}

// Total returns the number of samples added.
func (h *Histogram) Total() int {
	var t int
	for _, c := range h.Counts {
		t += c
	}
	return t
}
