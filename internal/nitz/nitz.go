// Package nitz models the Network Identity and Time Zone mechanism
// the paper describes in §2: a carrier-delivered time signal that
// mobile devices receive "in a one-off fashion ... dependent on the
// device crossing a network boundary". NITZ time is coarse (second
// granularity, plus delivery latency) and arrives unpredictably, which
// is why the paper calls it "a weaker mechanism to obtain time
// information".
//
// The package provides the simulated carrier signal source and an
// Android-style time manager reproducing the platform behaviour the
// paper extracted from the codebase: prefer NITZ when available, fall
// back to a daily SNTP poll, and update the system clock only when
// the estimate differs by more than 5000 ms.
package nitz

import (
	"math/rand"
	"time"

	"mntp/internal/clock"
	"mntp/internal/netsim"
	"mntp/internal/sntp"
)

// Signal is one NITZ delivery.
type Signal struct {
	// Time is the carrier's time indication at delivery.
	Time time.Time
	// At is the virtual time of delivery.
	At time.Duration
}

// SourceConfig parameterizes the simulated carrier signal.
type SourceConfig struct {
	// MeanBoundaryInterval is the mean time between network-boundary
	// crossings (Poisson arrivals; default 4 h — a commuting device).
	MeanBoundaryInterval time.Duration
	// Quantum is the granularity of the carrier's time indication
	// (default 1 s; NITZ carries whole seconds).
	Quantum time.Duration
	// CarrierError is the maximum absolute error of the carrier's own
	// clock (uniform; default 1 s — carrier NITZ servers are loosely
	// synchronized).
	CarrierError time.Duration
	// DeliveryDelay is the maximum signalling latency between the
	// boundary event and delivery to the device (uniform; default
	// 2 s).
	DeliveryDelay time.Duration
	Seed          int64
}

func (c *SourceConfig) applyDefaults() {
	if c.MeanBoundaryInterval == 0 {
		c.MeanBoundaryInterval = 4 * time.Hour
	}
	if c.Quantum == 0 {
		c.Quantum = time.Second
	}
	if c.CarrierError == 0 {
		c.CarrierError = time.Second
	}
	if c.DeliveryDelay == 0 {
		c.DeliveryDelay = 2 * time.Second
	}
}

// Source delivers NITZ signals on a scheduler.
type Source struct {
	cfg   SourceConfig
	sched *netsim.Scheduler
	truth clock.Clock
	rng   *rand.Rand
}

// NewSource creates a signal source over the scheduler; truth is the
// reference the carrier's clock approximates.
func NewSource(sched *netsim.Scheduler, truth clock.Clock, cfg SourceConfig) *Source {
	cfg.applyDefaults()
	return &Source{cfg: cfg, sched: sched, truth: truth, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Run schedules boundary crossings until the given virtual time,
// invoking deliver for each signal.
func (s *Source) Run(until time.Duration, deliver func(Signal)) {
	var next func()
	next = func() {
		wait := time.Duration(s.rng.ExpFloat64() * float64(s.cfg.MeanBoundaryInterval))
		if wait < time.Minute {
			wait = time.Minute
		}
		s.sched.After(wait, func() {
			if s.sched.Now() >= until {
				return
			}
			// Carrier indication: truth + carrier error, quantized,
			// delivered after signalling latency.
			indicated := s.truth.Now().
				Add(time.Duration((s.rng.Float64()*2 - 1) * float64(s.cfg.CarrierError))).
				Truncate(s.cfg.Quantum)
			delay := time.Duration(s.rng.Float64() * float64(s.cfg.DeliveryDelay))
			s.sched.After(delay, func() {
				if s.sched.Now() >= until {
					return
				}
				deliver(Signal{Time: indicated, At: s.sched.Now()})
			})
			next()
		})
	}
	next()
}

// ManagerConfig parameterizes the Android-style time manager.
type ManagerConfig struct {
	// NITZAvailable selects whether the carrier provides NITZ; when
	// false the manager falls back to SNTP polling ("Android SNTP
	// implementations poll once a day if data from NITZ are
	// unavailable", §2).
	NITZAvailable bool
	// SNTPPollInterval is the fallback cadence (default 24 h).
	SNTPPollInterval time.Duration
	// UpdateThreshold suppresses updates smaller than this (default
	// 5000 ms, the Android behaviour).
	UpdateThreshold time.Duration
}

func (c *ManagerConfig) applyDefaults() {
	if c.SNTPPollInterval == 0 {
		c.SNTPPollInterval = 24 * time.Hour
	}
	if c.UpdateThreshold == 0 {
		c.UpdateThreshold = 5000 * time.Millisecond
	}
}

// Manager reproduces the Android system time policy.
type Manager struct {
	Clock clock.Adjustable
	SNTP  *sntp.Client // used only when NITZ is unavailable
	Cfg   ManagerConfig

	// Updates counts applied clock updates; NITZSignals counts
	// received signals.
	Updates, NITZSignals int
}

// NewManager creates a manager; snptClient may be nil when
// NITZAvailable is true.
func NewManager(clk clock.Adjustable, sntpClient *sntp.Client, cfg ManagerConfig) *Manager {
	cfg.applyDefaults()
	if sntpClient != nil {
		sntpClient.Config.UpdateThreshold = cfg.UpdateThreshold
	}
	return &Manager{Clock: clk, SNTP: sntpClient, Cfg: cfg}
}

// OnNITZ handles one carrier signal: the clock is set to the
// indicated time when the difference exceeds the update threshold.
func (m *Manager) OnNITZ(sig Signal) {
	m.NITZSignals++
	if !m.Cfg.NITZAvailable {
		return
	}
	diff := sig.Time.Sub(m.Clock.Now())
	if diff > -m.Cfg.UpdateThreshold && diff < m.Cfg.UpdateThreshold {
		return
	}
	m.Clock.Step(diff)
	m.Updates++
}

// RunFallback runs the daily SNTP fallback loop for the given
// duration (no-op when NITZ is available or no client is configured).
// sl is the waiting abstraction (netsim.Proc in simulation).
func (m *Manager) RunFallback(sl sntp.Sleeper, duration time.Duration) {
	if m.Cfg.NITZAvailable || m.SNTP == nil {
		return
	}
	for elapsed := time.Duration(0); elapsed < duration; elapsed += m.Cfg.SNTPPollInterval {
		if _, updated, err := m.SNTP.SyncOnce(); err == nil && updated {
			m.Updates++
		}
		sl.Sleep(m.Cfg.SNTPPollInterval)
	}
}
