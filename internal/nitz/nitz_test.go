package nitz

import (
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/netsim"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

func TestSourceDeliversSignals(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	truth := clock.NewTrue(epoch, sched.Now)
	src := NewSource(sched, truth, SourceConfig{
		MeanBoundaryInterval: 2 * time.Hour, Seed: 1,
	})
	var signals []Signal
	src.Run(24*time.Hour, func(s Signal) { signals = append(signals, s) })
	sched.RunUntil(24 * time.Hour)

	if len(signals) < 4 || len(signals) > 40 {
		t.Fatalf("signals in 24h = %d, want a handful (mean interval 2h)", len(signals))
	}
	for i, s := range signals {
		// The indication must be within carrier error + quantum +
		// delivery delay of true time at delivery.
		truthAt := epoch.Add(s.At)
		diff := s.Time.Sub(truthAt)
		if diff < -5*time.Second || diff > 5*time.Second {
			t.Errorf("signal %d error %v exceeds NITZ coarseness envelope", i, diff)
		}
		// Quantized to whole seconds.
		if s.Time.Nanosecond() != 0 {
			t.Errorf("signal %d not quantized: %v", i, s.Time)
		}
		if i > 0 && s.At < signals[i-1].At {
			t.Error("signals out of order")
		}
	}
}

func TestSourceDeterministic(t *testing.T) {
	run := func() []time.Duration {
		sched := netsim.NewScheduler(epoch)
		truth := clock.NewTrue(epoch, sched.Now)
		src := NewSource(sched, truth, SourceConfig{Seed: 5})
		var at []time.Duration
		src.Run(48*time.Hour, func(s Signal) { at = append(at, s.At) })
		sched.RunUntil(48 * time.Hour)
		return at
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("delivery times differ between identical runs")
		}
	}
}

func TestManagerAppliesLargeNITZ(t *testing.T) {
	mt := time.Duration(0)
	clk := clock.NewSim(clock.Config{InitialOffset: -8 * time.Second, Seed: 1},
		epoch, func() time.Duration { return mt })
	m := NewManager(clk, nil, ManagerConfig{NITZAvailable: true})
	m.OnNITZ(Signal{Time: epoch, At: 0}) // truth says epoch; clock is 8 s behind
	if m.Updates != 1 {
		t.Fatalf("updates = %d", m.Updates)
	}
	if off := clk.TrueOffset(); off < -time.Second || off > time.Second {
		t.Errorf("post-NITZ offset = %v, want within NITZ coarseness", off)
	}
}

func TestManagerIgnoresSmallDifference(t *testing.T) {
	mt := time.Duration(0)
	clk := clock.NewSim(clock.Config{InitialOffset: 2 * time.Second, Seed: 1},
		epoch, func() time.Duration { return mt })
	m := NewManager(clk, nil, ManagerConfig{NITZAvailable: true})
	m.OnNITZ(Signal{Time: epoch, At: 0})
	if m.Updates != 0 {
		t.Error("sub-threshold NITZ applied")
	}
	if off := clk.TrueOffset(); off != 2*time.Second {
		t.Errorf("clock changed: %v", off)
	}
}

func TestManagerUnavailableNITZIgnored(t *testing.T) {
	mt := time.Duration(0)
	clk := clock.NewSim(clock.Config{InitialOffset: time.Minute, Seed: 1},
		epoch, func() time.Duration { return mt })
	m := NewManager(clk, nil, ManagerConfig{NITZAvailable: false})
	m.OnNITZ(Signal{Time: epoch, At: 0})
	if m.Updates != 0 {
		t.Error("NITZ applied despite unavailability")
	}
	if m.NITZSignals != 1 {
		t.Error("signal not counted")
	}
}

// End-to-end: a device with NITZ-only time over a week keeps errors
// bounded by the NITZ coarseness (seconds) but far above what even
// plain SNTP achieves — the paper's point that NITZ is weaker.
func TestNITZOnlyDeviceStaysCoarselySynchronized(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	truth := clock.NewTrue(epoch, sched.Now)
	// A badly drifting phone: 60 ppm ≈ 5.2 s/day.
	clk := clock.NewSim(clock.Config{SkewPPM: 60, Seed: 2}, epoch, sched.Now)
	m := NewManager(clk, nil, ManagerConfig{NITZAvailable: true})
	src := NewSource(sched, truth, SourceConfig{MeanBoundaryInterval: 3 * time.Hour, Seed: 3})
	src.Run(7*24*time.Hour, m.OnNITZ)

	var worst time.Duration
	sched.Every(time.Hour, time.Hour, func() bool {
		off := clk.TrueOffset()
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
		return sched.Now() < 7*24*time.Hour
	})
	sched.RunUntil(7 * 24 * time.Hour)

	if m.Updates == 0 {
		t.Fatal("no NITZ updates in a week")
	}
	// Bounded by drift-between-signals + threshold + coarseness:
	// should stay under ~10 s but well above 100 ms.
	if worst > 10*time.Second {
		t.Errorf("worst error %v: NITZ failed to bound drift", worst)
	}
	if worst < 100*time.Millisecond {
		t.Errorf("worst error %v: implausibly tight for NITZ", worst)
	}
}
