//go:build race

package loadgen

// raceEnabled gates the high-rate capacity tests: under the race
// detector every atomic and map op costs an order of magnitude more,
// so offered-rate floors calibrated for production binaries are
// meaningless and the tests skip themselves.
const raceEnabled = true
