package loadgen

import (
	"encoding/json"
	"net"
	"strings"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
)

// --- Reply classifier.

// TestClassifyReply pins the kiss-code classification that keeps the
// report's "loss" honest: RATE kisses are deliberate refusals (rate
// limits and overload sheds), other kisses are their own bucket, and
// only genuinely unanswered requests count as lost.
func TestClassifyReply(t *testing.T) {
	served := &ntppkt.Packet{Mode: ntppkt.ModeServer, Stratum: 2}
	rate := &ntppkt.Packet{Mode: ntppkt.ModeServer, Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate}
	deny := &ntppkt.Packet{Mode: ntppkt.ModeServer, Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissDeny}
	rstr := &ntppkt.Packet{Mode: ntppkt.ModeServer, Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRstr}
	// A client-mode stratum-0 packet is not a kiss-of-death.
	notKoD := &ntppkt.Packet{Mode: ntppkt.ModeClient, Stratum: 0, RefID: ntppkt.KissRate}

	cases := []struct {
		name string
		pkt  *ntppkt.Packet
		want ReplyClass
		code string
	}{
		{"served", served, ReplyServed, ""},
		{"rate", rate, ReplyKoDRate, "RATE"},
		{"deny", deny, ReplyKoDOther, "DENY"},
		{"rstr", rstr, ReplyKoDOther, "RSTR"},
		{"client mode not KoD", notKoD, ReplyServed, ""},
	}
	for _, c := range cases {
		class, code := ClassifyReply(c.pkt)
		if class != c.want || code != c.code {
			t.Errorf("%s: ClassifyReply = (%v, %q), want (%v, %q)", c.name, class, code, c.want, c.code)
		}
	}
}

// TestKoDClassificationReachesReport: counting three RATE and one
// DENY reply must surface in KoD, KoDRate and the per-code map, so
// deliberate sheds never masquerade as loss in the JSON.
func TestKoDClassificationReachesReport(t *testing.T) {
	e := &engine{cfg: Config{Target: "t", Rate: 1, Duration: time.Second, Senders: 1},
		timeout: time.Second, kodCodes: make(map[string]uint64)}
	for i := 0; i < 3; i++ {
		e.countKoD(ReplyKoDRate, "RATE")
	}
	e.countKoD(ReplyKoDOther, "DENY")
	r := e.report(time.Second)
	if r.KoD != 4 || r.KoDRate != 3 {
		t.Errorf("KoD=%d KoDRate=%d, want 4 and 3", r.KoD, r.KoDRate)
	}
	if r.KoDCodes["RATE"] != 3 || r.KoDCodes["DENY"] != 1 {
		t.Errorf("KoDCodes = %v, want RATE:3 DENY:1", r.KoDCodes)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"kod_rate":3`) {
		t.Errorf("JSON lacks kod_rate: %s", out)
	}
}

// --- Recorder.

func TestBucketIndexBoundRoundTrip(t *testing.T) {
	// Every value must land in a bucket whose bound is ≥ the value,
	// with bounded relative error (one sub-bucket ≈ 1/16).
	values := []uint64{0, 1, 15, 16, 17, 31, 32, 100, 1000, 12345,
		1 << 20, 1<<20 + 1, 987654321, 1 << 40, 1<<62 + 12345}
	for _, u := range values {
		i := bucketIndex(u)
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", u, i)
		}
		b := bucketBound(i)
		if b < u {
			t.Errorf("bound(%d)=%d below value %d", i, b, u)
		}
		if u >= subBuckets && float64(b-u) > float64(u)/subBuckets+1 {
			t.Errorf("bound(%d)=%d too far above value %d", i, b, u)
		}
		// Bound must be the largest value of its own bucket.
		if bucketIndex(b) != i {
			t.Errorf("bound %d of bucket %d maps to bucket %d", b, i, bucketIndex(b))
		}
		if bucketIndex(b+1) == i {
			t.Errorf("bound+1 %d still maps to bucket %d", b+1, i)
		}
	}
}

func TestRecorderQuantiles(t *testing.T) {
	var r recorder
	// 1000 samples: 990 at ~1ms, 10 at ~100ms.
	for i := 0; i < 990; i++ {
		r.record(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		r.record(100 * time.Millisecond)
	}
	h := r.snapshot()
	if h.count != 1000 {
		t.Fatalf("count = %d", h.count)
	}
	p50, ok := h.quantile(0.50)
	if !ok || p50 < time.Millisecond || p50 > time.Millisecond+time.Millisecond/8 {
		t.Errorf("p50 = %v, %v", p50, ok)
	}
	if p99, _ := h.quantile(0.99); p99 > 2*time.Millisecond {
		t.Errorf("p99 = %v, want ~1ms (990/1000 at 1ms)", p99)
	}
	if p999, _ := h.quantile(0.999); p999 < 100*time.Millisecond || p999 > 110*time.Millisecond {
		t.Errorf("p99.9 = %v, want ~100ms", p999)
	}
	if m := h.mean(); m < time.Millisecond || m > 3*time.Millisecond {
		t.Errorf("mean = %v", m)
	}
	if time.Duration(h.max) < 100*time.Millisecond {
		t.Errorf("max = %v", time.Duration(h.max))
	}
	// Empty distribution.
	var empty recorder
	if _, ok := empty.snapshot().quantile(0.5); ok {
		t.Error("empty recorder produced a quantile")
	}
	// Interval subtraction: remove the first snapshot's counts.
	r2 := r.snapshot()
	r.record(time.Second)
	d := r.snapshot().sub(r2)
	if d.count != 1 {
		t.Fatalf("interval count = %d", d.count)
	}
	if q, _ := d.quantile(0.5); q < time.Second || q > time.Second+time.Second/8 {
		t.Errorf("interval p50 = %v, want ~1s", q)
	}
}

// --- Engine.

func startServer(t testing.TB, mutate func(*ntpnet.Server)) (*ntpnet.Server, string) {
	t.Helper()
	srv := ntpnet.NewServer(clock.System{}, 2)
	if mutate != nil {
		mutate(srv)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{},
		{Target: "127.0.0.1:123"},
		{Target: "127.0.0.1:123", Rate: 100},
		{Target: "127.0.0.1:123", Rate: 100, Duration: time.Second, Arrival: "bursty"},
		{Target: "127.0.0.1:123", Rate: 100, Duration: time.Second, Population: maxPopulation + 1},
		{Target: "nonsense address", Rate: 100, Duration: time.Second},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("Run(%+v) accepted an invalid config", cfg)
		}
	}
}

func TestRunAgainstServer(t *testing.T) {
	srv, addr := startServer(t, nil)
	rep, err := Run(Config{
		Target: addr, Rate: 2000, Duration: 300 * time.Millisecond,
		Senders: 2, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond,
		SnapshotEvery: 100 * time.Millisecond, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(2000 * 0.3)
	if rep.Sent < want*7/10 || rep.Sent > want*13/10 {
		t.Errorf("sent = %d, want ~%d", rep.Sent, want)
	}
	if rep.Received == 0 {
		t.Fatal("no replies received")
	}
	if frac := float64(rep.Received) / float64(rep.Sent); frac < 0.9 {
		t.Errorf("only %.0f%% of requests answered on loopback", 100*frac)
	}
	if rep.Latency.Count != rep.Received {
		t.Errorf("latency count %d != received %d", rep.Latency.Count, rep.Received)
	}
	if rep.Latency.P50Us <= 0 || rep.Latency.P99Us < rep.Latency.P50Us {
		t.Errorf("quantiles p50=%.0f p99=%.0f", rep.Latency.P50Us, rep.Latency.P99Us)
	}
	if rep.Sent != rep.Received+rep.KoD+rep.Lost {
		t.Errorf("accounting: sent=%d != received=%d + kod=%d + lost=%d",
			rep.Sent, rep.Received, rep.KoD, rep.Lost)
	}
	if len(rep.Intervals) == 0 {
		t.Error("no interval snapshots")
	}
	if got := srv.Served(); got != int(rep.Received) {
		t.Errorf("server served %d, client received %d", got, rep.Received)
	}
	// The JSON report must carry p99 and loss for the trajectory.
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{`"p99_us"`, `"lost"`, `"loss_fraction"`, `"achieved_send_rate"`, `"kod"`} {
		if !strings.Contains(string(js), field) {
			t.Errorf("JSON report missing %s: %s", field, js)
		}
	}
}

// TestInterruptEmitsPartialReport: an interrupt mid-send-phase stops
// the run early and returns the partial counters with Truncated set —
// the behavior cmd/ntpload wires to SIGINT/SIGTERM so an aborted
// capacity run is not a total loss.
func TestInterruptEmitsPartialReport(t *testing.T) {
	_, addr := startServer(t, nil)
	interrupt := make(chan struct{})
	go func() {
		time.Sleep(200 * time.Millisecond)
		close(interrupt)
	}()
	begin := time.Now()
	rep, err := Run(Config{
		Target: addr, Rate: 1000, Duration: 30 * time.Second,
		Senders: 2, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond,
		Seed: 7, Interrupt: interrupt,
	})
	elapsed := time.Since(begin)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Error("report not marked truncated")
	}
	if elapsed > 5*time.Second {
		t.Errorf("run took %v after a 200ms interrupt — senders did not stop", elapsed)
	}
	if rep.Sent == 0 || rep.Received == 0 {
		t.Errorf("partial report empty: sent=%d received=%d", rep.Sent, rep.Received)
	}
	if rep.DurationSec >= 30 {
		t.Errorf("duration_sec = %.1f, want the truncated elapsed time", rep.DurationSec)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"truncated":true`) {
		t.Errorf("JSON report missing truncated flag: %s", js)
	}
}

func TestOpenLoopKeepsSendingToDeadTarget(t *testing.T) {
	// A blackhole endpoint: bound but never read. A closed-loop
	// generator would stall after the first in-flight window; the
	// open-loop engine must keep offering the configured rate and
	// report every request lost.
	hole, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer hole.Close()
	rep, err := Run(Config{
		Target: hole.LocalAddr().String(), Rate: 2000, Duration: 250 * time.Millisecond,
		Senders: 2, Arrival: ArrivalFixed, Timeout: 100 * time.Millisecond, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(2000 * 0.25)
	if rep.Sent < want*7/10 {
		t.Errorf("sent = %d, want ~%d: generator backed off against a dead target", rep.Sent, want)
	}
	if rep.Received != 0 {
		t.Errorf("received %d replies from a blackhole", rep.Received)
	}
	if rep.Lost != rep.Sent {
		t.Errorf("lost = %d, want all %d", rep.Lost, rep.Sent)
	}
	if rep.LossFraction != 1 {
		t.Errorf("loss fraction = %v, want 1", rep.LossFraction)
	}
}

func TestSpoofPopulationExercisesRateLimitTable(t *testing.T) {
	const population = 32
	srv, addr := startServer(t, func(s *ntpnet.Server) {
		s.RateLimit = 3
		s.RateWindow = time.Minute
	})
	rep, err := Run(Config{
		Target: addr, Rate: 4000, Duration: 250 * time.Millisecond,
		Senders: 4, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond,
		Population: population, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PopulationBound < population {
		t.Skipf("platform bound only %d/%d spoofed sources", rep.PopulationBound, population)
	}
	// ~1000 requests over 32 sources at limit 3/min: almost all KoD.
	if rep.KoD == 0 {
		t.Fatal("no KoD replies recorded against a rate-limiting server")
	}
	if rep.Received == 0 {
		t.Error("no served replies (limit is 3 per source)")
	}
	// The server must have seen the whole simulated population as
	// distinct clients.
	if got := srv.RateTableSize(); got != population {
		t.Errorf("rate table tracked %d clients, want %d", got, population)
	}
	if limited := srv.RateLimited(); limited != int(rep.KoD) {
		t.Errorf("server limited %d, client counted %d KoD", limited, rep.KoD)
	}
}

// TestCapacity50k is the subsystem's acceptance floor: against an
// in-process server on loopback, the generator must sustain an
// offered rate of ≥50k requests/second (ISSUE 3). Offered-rate
// floors are calibrated for production binaries, so the test skips
// under the race detector; -short skips it too.
func TestCapacity50k(t *testing.T) {
	if raceEnabled {
		t.Skip("capacity floor not meaningful under the race detector")
	}
	if testing.Short() {
		t.Skip("capacity run skipped in -short mode")
	}
	_, addr := startServer(t, nil)
	const offered = 64000
	rep, err := Run(Config{
		Target: addr, Rate: offered, Duration: time.Second,
		Senders: 4, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond,
		SnapshotEvery: 250 * time.Millisecond, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("capacity: %s", rep)
	if rep.AchievedSendRate < 50000 {
		t.Errorf("achieved send rate %.0f/s, want ≥50000/s (offered %d)",
			rep.AchievedSendRate, offered)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"p99_us"`) || !strings.Contains(string(js), `"lost"`) {
		t.Errorf("capacity JSON missing p99/loss: %s", js)
	}
}
