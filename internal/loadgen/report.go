package loadgen

import (
	"fmt"
	"time"
)

// Report is the outcome of one load-generation run, shaped for JSON
// (cmd/ntpload emits it verbatim, feeding capacity trajectories).
// Loss semantics: Lost = requests with no reply within Timeout
// (expired) plus replies that arrived past their deadline
// (LateReplies); kiss-of-death answers are counted in KoD, not in
// Lost, since the server did answer — it just refused time.
type Report struct {
	Target          string  `json:"target"`
	Arrival         Arrival `json:"arrival"`
	Senders         int     `json:"senders"`
	Population      int     `json:"population,omitempty"`
	PopulationBound int     `json:"population_bound,omitempty"`
	OfferedRate     float64 `json:"offered_rate"`
	DurationSec     float64 `json:"duration_sec"`
	TimeoutSec      float64 `json:"timeout_sec"`

	// Truncated marks a run whose send phase was interrupted
	// (SIGINT/SIGTERM via Config.Interrupt): the counters and
	// quantiles are genuine but cover less than Duration.
	Truncated bool `json:"truncated,omitempty"`

	Sent     uint64 `json:"sent"`
	Received uint64 `json:"received"`
	KoD      uint64 `json:"kod"`
	// KoDRate counts RATE kisses — the server's deliberate refusals
	// (rate limiting or overload shedding), as opposed to true loss.
	// KoDCodes breaks every kiss-of-death down by its code.
	KoDRate uint64 `json:"kod_rate,omitempty"`
	// KoDNTS counts NTS NAK kisses — verification failures the server
	// answered explicitly, distinct from RATE/other KoD because they
	// signal a key or cookie problem rather than load.
	KoDNTS   uint64            `json:"kod_nts,omitempty"`
	KoDCodes map[string]uint64 `json:"kod_codes,omitempty"`
	// NTSSessions is how many KE sessions the run pre-established (0
	// for a plain run); NTSAuthFail counts replies that matched a
	// request but failed AEAD verification and were discarded.
	NTSSessions int    `json:"nts_sessions,omitempty"`
	NTSAuthFail uint64 `json:"nts_auth_fail,omitempty"`
	// NTSProtectErrors counts requests the generator could not
	// protect (exhausted jar with reuse off, RNG failure) and never
	// sent.
	NTSProtectErrors uint64 `json:"nts_protect_errors,omitempty"`
	Lost             uint64 `json:"lost"`
	LateReplies      uint64 `json:"late_replies"`
	Stray            uint64 `json:"stray"`
	SendErrors       uint64 `json:"send_errors"`
	RecvErrors       uint64 `json:"recv_errors"`

	// AchievedSendRate is what the generator actually put on the
	// wire per second of send phase; an open-loop run keeps it at
	// OfferedRate unless the generator itself runs out of CPU.
	AchievedSendRate float64 `json:"achieved_send_rate"`
	ReceivedRate     float64 `json:"received_rate"`
	LossFraction     float64 `json:"loss_fraction"`

	Latency   LatencySummary `json:"latency"`
	Intervals []Interval     `json:"intervals,omitempty"`
}

// LatencySummary is the request→reply latency distribution of served
// (non-KoD, in-deadline) replies, in microseconds.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"mean_us"`
	P50Us  float64 `json:"p50_us"`
	P90Us  float64 `json:"p90_us"`
	P99Us  float64 `json:"p99_us"`
	P999Us float64 `json:"p999_us"`
	MaxUs  float64 `json:"max_us"`
}

// Interval is one periodic snapshot row: counters are deltas over
// the interval, quantiles are of the interval's replies.
type Interval struct {
	ElapsedSec float64 `json:"elapsed_sec"`
	Sent       uint64  `json:"sent"`
	Received   uint64  `json:"received"`
	KoD        uint64  `json:"kod"`
	Lost       uint64  `json:"lost"`
	SendRate   float64 `json:"send_rate"`
	P50Us      float64 `json:"p50_us"`
	P99Us      float64 `json:"p99_us"`
}

func us(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }

func (e *engine) report(sendDur time.Duration) *Report {
	r := &Report{
		Target:           e.cfg.Target,
		Arrival:          e.cfg.Arrival,
		Senders:          e.cfg.Senders,
		Population:       e.cfg.Population,
		PopulationBound:  e.populationBound,
		OfferedRate:      e.cfg.Rate,
		DurationSec:      sendDur.Seconds(),
		TimeoutSec:       e.timeout.Seconds(),
		Sent:             e.sent.Load(),
		Received:         e.received.Load(),
		KoD:              e.kod.Load(),
		KoDRate:          e.kodRate.Load(),
		KoDNTS:           e.kodNTS.Load(),
		NTSSessions:      e.ntsSessions,
		NTSAuthFail:      e.ntsAuthFail.Load(),
		NTSProtectErrors: e.ntsProtErrs.Load(),
		LateReplies:      e.late.Load(),
		Stray:            e.stray.Load(),
		SendErrors:       e.sendErrs.Load(),
		RecvErrors:       e.recvErrs.Load(),
	}
	r.Lost = e.expired.Load() + e.late.Load()
	e.kodMu.Lock()
	if len(e.kodCodes) > 0 {
		r.KoDCodes = make(map[string]uint64, len(e.kodCodes))
		for code, n := range e.kodCodes {
			r.KoDCodes[code] = n
		}
	}
	e.kodMu.Unlock()
	if sendDur > 0 {
		r.AchievedSendRate = float64(r.Sent) / sendDur.Seconds()
		r.ReceivedRate = float64(r.Received) / sendDur.Seconds()
	}
	if r.Sent > 0 {
		r.LossFraction = float64(r.Lost) / float64(r.Sent)
	}
	h := e.rec.snapshot()
	r.Latency.Count = h.count
	r.Latency.MeanUs = us(h.mean())
	r.Latency.MaxUs = us(time.Duration(h.max))
	for _, q := range []struct {
		q   float64
		dst *float64
	}{{0.50, &r.Latency.P50Us}, {0.90, &r.Latency.P90Us}, {0.99, &r.Latency.P99Us}, {0.999, &r.Latency.P999Us}} {
		if v, ok := h.quantile(q.q); ok {
			*q.dst = us(v)
		}
	}
	e.intervalMu.Lock()
	r.Intervals = e.intervals
	e.intervalMu.Unlock()
	return r
}

// String renders the one-line human summary cmd/ntpload prints to
// stderr alongside the JSON.
func (r *Report) String() string {
	s := fmt.Sprintf(
		"offered %.0f/s achieved %.0f/s over %.2fs: sent=%d received=%d kod=%d (rate=%d) lost=%d (%.2f%%) p50=%.0fµs p99=%.0fµs max=%.0fµs",
		r.OfferedRate, r.AchievedSendRate, r.DurationSec,
		r.Sent, r.Received, r.KoD, r.KoDRate, r.Lost, 100*r.LossFraction,
		r.Latency.P50Us, r.Latency.P99Us, r.Latency.MaxUs)
	if r.NTSSessions > 0 {
		s += fmt.Sprintf(" nts: sessions=%d nak=%d auth-fail=%d protect-err=%d",
			r.NTSSessions, r.KoDNTS, r.NTSAuthFail, r.NTSProtectErrors)
	}
	if r.Truncated {
		s += " [truncated]"
	}
	return s
}
