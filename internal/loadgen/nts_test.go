package loadgen

import (
	"crypto/tls"
	"crypto/x509"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
	"mntp/internal/nts"
	"mntp/internal/ntske"
)

// TestClassifyReplyNTSNak pins that NTS NAK kisses land in their own
// bucket, never mixed into RATE or other KoD: a NAK means the server
// refused authentication, not load, and a capacity run must tell the
// two apart.
func TestClassifyReplyNTSNak(t *testing.T) {
	nak := &ntppkt.Packet{Mode: ntppkt.ModeServer, Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissNTSN}
	class, code := ClassifyReply(nak)
	if class != ReplyKoDNTS || code != "NTSN" {
		t.Fatalf("ClassifyReply(NTSN) = (%v, %q), want (%v, %q)", class, code, ReplyKoDNTS, "NTSN")
	}

	e := &engine{cfg: Config{Target: "t", Rate: 1, Duration: time.Second, Senders: 1},
		timeout: time.Second, kodCodes: make(map[string]uint64)}
	e.countKoD(ReplyKoDNTS, "NTSN")
	e.countKoD(ReplyKoDRate, "RATE")
	r := e.report(time.Second)
	if r.KoD != 2 || r.KoDNTS != 1 || r.KoDRate != 1 {
		t.Errorf("KoD=%d KoDNTS=%d KoDRate=%d, want 2/1/1", r.KoD, r.KoDNTS, r.KoDRate)
	}
	out, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"kod_nts":1`) {
		t.Errorf("JSON lacks kod_nts: %s", out)
	}
}

// startNTSLoadStack brings up a UDP server verifying against ntpRing
// and an NTS-KE server minting cookies from keRing. Splitting the two
// rings lets a test hand clients cookies the NTP server cannot open.
func startNTSLoadStack(t *testing.T, ntpRing, keRing *nts.KeyRing) (ntpAddr, keAddr string, clientTLS *tls.Config) {
	t.Helper()
	srv, addr := startServer(t, func(s *ntpnet.Server) { s.NTS = ntpRing })
	_ = srv

	cert, certPEM, err := ntske.SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatalf("SelfSigned: %v", err)
	}
	ke := &ntske.Server{
		Ring:      keRing,
		TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}},
		NTPHost:   "127.0.0.1",
	}
	keBound, err := ke.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("KE Listen: %v", err)
	}
	t.Cleanup(func() { ke.Close() })

	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("AppendCertsFromPEM failed")
	}
	return addr, keBound.String(), &tls.Config{RootCAs: pool}
}

// TestRunNTSAgainstServer: an authenticated load run on loopback.
// Every request carries NTS extension fields, every reply verifies,
// and the server's own counters agree that the traffic was NTS.
func TestRunNTSAgainstServer(t *testing.T) {
	ring, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	ntpAddr, keAddr, clientTLS := startNTSLoadStack(t, ring, ring)

	rep, err := Run(Config{
		Target: ntpAddr, Rate: 1000, Duration: 300 * time.Millisecond,
		Senders: 2, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond, Seed: 11,
		NTS: &NTSConfig{KEAddr: keAddr, TLSConfig: clientTLS, Sessions: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NTSSessions != 2 {
		t.Errorf("NTSSessions = %d, want 2", rep.NTSSessions)
	}
	if rep.Received == 0 {
		t.Fatal("no authenticated replies received")
	}
	if frac := float64(rep.Received) / float64(rep.Sent); frac < 0.9 {
		t.Errorf("only %.0f%% of authenticated requests answered on loopback", 100*frac)
	}
	if rep.KoDNTS != 0 || rep.NTSAuthFail != 0 || rep.NTSProtectErrors != 0 {
		t.Errorf("clean run reported kod_nts=%d auth_fail=%d protect_err=%d, want all 0",
			rep.KoDNTS, rep.NTSAuthFail, rep.NTSProtectErrors)
	}
	js, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"nts_sessions":2`) {
		t.Errorf("JSON report missing nts_sessions: %s", js)
	}
}

// TestRunNTSStaleCookiesClassifiedAsNAK: the KE server mints cookies
// from a ring the NTP server has never seen, so every request is
// refused with NTS NAK — and the report must say exactly that: zero
// served, zero lost-as-loss confusion, all replies in kod_nts.
func TestRunNTSStaleCookiesClassifiedAsNAK(t *testing.T) {
	ntpRing, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	keRing, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	ntpAddr, keAddr, clientTLS := startNTSLoadStack(t, ntpRing, keRing)

	rep, err := Run(Config{
		Target: ntpAddr, Rate: 500, Duration: 200 * time.Millisecond,
		Senders: 2, Arrival: ArrivalFixed, Timeout: 500 * time.Millisecond, Seed: 13,
		NTS: &NTSConfig{KEAddr: keAddr, TLSConfig: clientTLS, Sessions: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Received != 0 {
		t.Errorf("received %d verified replies with cookies the server cannot open", rep.Received)
	}
	if rep.KoDNTS == 0 {
		t.Fatal("no NTS NAKs counted — unopenable cookies must be refused explicitly")
	}
	if rep.KoDNTS != rep.KoD {
		t.Errorf("KoDNTS=%d KoD=%d: NAKs leaked into other KoD buckets", rep.KoDNTS, rep.KoD)
	}
	if rep.KoDCodes["NTSN"] != rep.KoDNTS {
		t.Errorf("KoDCodes=%v, want NTSN:%d", rep.KoDCodes, rep.KoDNTS)
	}
}

// TestRunNTSKEFailure: an unreachable KE server must fail the run up
// front, not silently degrade to plain traffic.
func TestRunNTSKEFailure(t *testing.T) {
	ring, err := nts.NewKeyRing(1)
	if err != nil {
		t.Fatal(err)
	}
	ntpAddr, _, _ := startNTSLoadStack(t, ring, ring)
	_, err = Run(Config{
		Target: ntpAddr, Rate: 100, Duration: 100 * time.Millisecond,
		Senders: 1, Timeout: 200 * time.Millisecond,
		NTS: &NTSConfig{KEAddr: "127.0.0.1:1", KETimeout: 500 * time.Millisecond},
	})
	if err == nil {
		t.Fatal("Run succeeded with an unreachable NTS-KE server")
	}
}
