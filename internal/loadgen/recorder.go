package loadgen

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// The latency recorder is an HDR-histogram-style log-bucketed
// counter array: values (nanoseconds) are bucketed by their power of
// two, with subBuckets linear sub-buckets inside each doubling, so
// the relative quantile error is bounded by 1/subBuckets (~6%)
// across the full range — microsecond loopback replies and
// multi-second stalls land in one fixed-size, allocation-free,
// atomically updated array. Recording is wait-free (one atomic add
// per bucket plus min/max CAS), so 50k+ recordings per second from
// concurrent receivers cost no lock.
const (
	subBits    = 4
	subBuckets = 1 << subBits // 16 linear sub-buckets per doubling
	// numBuckets covers every uint64 nanosecond value: bits.Len64
	// tops out at 64, so the largest exponent is 64-(subBits+1)=59
	// and the largest index is subBuckets*60+15.
	numBuckets = subBuckets*(64-subBits) + subBuckets
)

// bucketIndex maps a nanosecond value to its histogram bucket.
func bucketIndex(u uint64) int {
	if u < subBuckets {
		return int(u)
	}
	exp := bits.Len64(u) - (subBits + 1)
	return subBuckets*exp + int(u>>uint(exp))
}

// bucketBound returns the largest value mapping to bucket i — the
// value a quantile lookup reports for the bucket.
func bucketBound(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	exp := i/subBuckets - 1
	sub := uint64(i%subBuckets + subBuckets)
	return (sub+1)<<uint(exp) - 1
}

// recorder accumulates a latency distribution. The zero value is
// ready to use; all methods are safe for concurrent use.
type recorder struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	max     atomic.Int64
	buckets [numBuckets]atomic.Uint64
}

func (r *recorder) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.buckets[bucketIndex(uint64(d))].Add(1)
	r.count.Add(1)
	r.sum.Add(int64(d))
	for {
		m := r.max.Load()
		if int64(d) <= m || r.max.CompareAndSwap(m, int64(d)) {
			break
		}
	}
}

// histSnapshot is a point-in-time copy of the distribution. Counts
// are read bucket-atomically; the set is not one transaction, which
// is fine for reporting.
type histSnapshot struct {
	count   uint64
	sum     int64
	max     int64
	buckets [numBuckets]uint64
}

func (r *recorder) snapshot() histSnapshot {
	var h histSnapshot
	h.count = r.count.Load()
	h.sum = r.sum.Load()
	h.max = r.max.Load()
	for i := range r.buckets {
		h.buckets[i] = r.buckets[i].Load()
	}
	return h
}

// sub returns the interval distribution h−prev (bucket-wise). max is
// carried from h: a cumulative maximum cannot be un-merged, so
// interval rows report the max seen so far.
func (h histSnapshot) sub(prev histSnapshot) histSnapshot {
	out := h
	out.count -= prev.count
	out.sum -= prev.sum
	for i := range out.buckets {
		out.buckets[i] -= prev.buckets[i]
	}
	return out
}

// quantile returns the q-th (0 ≤ q ≤ 1) latency quantile as the
// upper bound of the bucket holding it, and false when the
// distribution is empty.
func (h histSnapshot) quantile(q float64) (time.Duration, bool) {
	if h.count == 0 {
		return 0, false
	}
	target := uint64(q * float64(h.count))
	if target == 0 {
		target = 1
	}
	if target > h.count {
		target = h.count
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i]
		if cum >= target {
			return time.Duration(bucketBound(i)), true
		}
	}
	return time.Duration(h.max), true
}

func (h histSnapshot) mean() time.Duration {
	if h.count == 0 {
		return 0
	}
	return time.Duration(h.sum / int64(h.count))
}

// Recorder is the exported face of the HDR-style latency recorder, so
// other subsystems (the population engine's accuracy/traffic
// histograms) can reuse the wait-free log-bucketed implementation
// without duplicating it. The zero value is ready to use; all methods
// are safe for concurrent use.
type Recorder struct {
	r recorder
}

// Record adds one duration observation (negative values clamp to 0).
func (p *Recorder) Record(d time.Duration) { p.r.record(d) }

// Count returns the number of recorded observations.
func (p *Recorder) Count() uint64 { return p.r.count.Load() }

// Mean returns the mean of all observations (0 when empty).
func (p *Recorder) Mean() time.Duration { return p.r.snapshot().mean() }

// Max returns the largest observation seen.
func (p *Recorder) Max() time.Duration { return time.Duration(p.r.max.Load()) }

// Quantile returns the q-th (0 ≤ q ≤ 1) quantile as the upper bound
// of the bucket holding it, and false when the recorder is empty.
func (p *Recorder) Quantile(q float64) (time.Duration, bool) {
	return p.r.snapshot().quantile(q)
}
