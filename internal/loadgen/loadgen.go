// Package loadgen is an open-loop NTP load generator and capacity
// meter for the real-UDP serving path.
//
// Open-loop means arrivals are scheduled by the generator's own
// arrival process (Poisson or fixed-interval), never by the server's
// responses: when the server slows down, a closed-loop generator
// silently backs off and hides the capacity cliff, while an open-loop
// one keeps offering load and exposes it as queueing delay and loss —
// the standard methodology for tail-latency measurement. Requests
// are tracked against a per-request reply deadline; replies are
// matched by their echoed transmit timestamp (tagged with a sequence
// counter so every outstanding request has a unique key), latencies
// land in an HDR-style log-bucketed recorder, and kiss-of-death
// replies are counted separately from served time. A simulated
// spoofed-source population (distinct 127/8 source addresses, where
// the platform allows binding them) exercises a server's per-client
// rate-limit table the way a real scattered client population would.
//
// Run drives a complete measurement and returns a Report with
// offered vs achieved rate, loss, KoD counts, latency quantiles
// (p50/p90/p99/p99.9) and periodic interval snapshots; cmd/ntpload
// is the command-line front end.
package loadgen

import (
	"crypto/tls"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
	"mntp/internal/ntske"
)

// Arrival selects the inter-request arrival process of each sender.
type Arrival string

const (
	// ArrivalPoisson draws exponential inter-arrival times: bursty,
	// memoryless traffic like an aggregate of independent clients.
	ArrivalPoisson Arrival = "poisson"
	// ArrivalFixed paces requests at a constant interval.
	ArrivalFixed Arrival = "fixed"
)

// maxPopulation bounds the simulated source population: each source
// is one bound socket with a receiver goroutine.
const maxPopulation = 4096

// Config parameterizes one load-generation run.
type Config struct {
	// Target is the server address (host:port). Required.
	Target string
	// Rate is the offered request rate in requests/second across all
	// senders. Required.
	Rate float64
	// Duration is the send phase length. Required. (The run then
	// lingers up to Timeout collecting in-flight replies.)
	Duration time.Duration
	// Senders is the number of sender goroutines (default 4). Each
	// paces an independent arrival stream at Rate/Senders.
	Senders int
	// Arrival is the arrival process (default ArrivalPoisson).
	Arrival Arrival
	// Timeout is the per-request reply deadline (default 1s); a
	// request unanswered within it counts as lost.
	Timeout time.Duration
	// Population, if positive, simulates a spoofed-source client
	// population: requests are spread across max(Population, Senders)
	// sockets bound to distinct 127/8 addresses, so a rate-limiting
	// server sees that many distinct clients. Loopback targets only;
	// where the platform refuses the bind, sockets fall back to the
	// default source address (Report.PopulationBound tells how many
	// distinct addresses were actually bound).
	Population int
	// SnapshotEvery, if positive, appends an interval row (rates,
	// loss, interval quantiles) to the report every such period.
	SnapshotEvery time.Duration
	// Version is the NTP version of the requests (default 4).
	Version uint8
	// Seed drives the arrival randomness (senders are decorrelated
	// deterministically from it).
	Seed int64
	// NTS, if non-nil, authenticates the generated load: sessions are
	// pre-established over NTS-KE before the send phase, every
	// request carries NTS extension fields (per-request AEAD), and
	// replies are verified. NTS NAKs and verification failures are
	// classified distinctly in the report.
	NTS *NTSConfig
	// Interrupt, if non-nil, aborts the send phase when it becomes
	// readable (typically closed on SIGINT/SIGTERM): senders stop at
	// their next arrival, the linger phase is skipped, and Run returns
	// a partial report with Truncated set — an interrupted capacity
	// run keeps the measurements it paid for.
	Interrupt <-chan struct{}
}

// NTSConfig parameterizes authenticated load generation.
type NTSConfig struct {
	// KEAddr is the NTS-KE server (host:port, port defaulting to
	// 4460). The NTP target remains Config.Target: capacity runs aim
	// load at a known socket, so the generator deliberately ignores
	// the KE server's NTP address negotiation.
	KEAddr string
	// TLSConfig is used for the KE dials (nil: system roots).
	TLSConfig *tls.Config
	// Sessions is how many independent KE sessions to establish,
	// assigned to source sockets round-robin (default Senders). Each
	// session holds its own cookie jar and keys.
	Sessions int
	// KETimeout bounds each key establishment (default 5s).
	KETimeout time.Duration
}

// ctrMask is the slice of transmit-timestamp fraction bits replaced
// by the request sequence counter: 2^20 in-flight tags at ~244 µs
// timestamp granularity cost, making every outstanding request's
// echoed origin unique.
const ctrMask = 0xFFFFF

// pacingSlack is the shortest wait worth sleeping for; anything
// closer is sent immediately (overdue arrivals go back-to-back), so
// timer granularity turns into small bursts instead of lost offered
// load — the open-loop schedule is kept on average.
const pacingSlack = 500 * time.Microsecond

// sock is one source socket: a connected UDP socket plus the table
// of its in-flight requests, keyed by tagged transmit timestamp.
type sock struct {
	conn *net.UDPConn
	// sess protects this socket's requests when NTS mode is on;
	// sessions are shared round-robin across sockets (nts.Session is
	// concurrency-safe).
	sess *nts.Session

	mu      sync.Mutex
	pending map[uint64]pendingReq // tagged transmit -> request state
}

// pendingReq is one in-flight request: when it went out and, in NTS
// mode, the state needed to verify its reply.
type pendingReq struct {
	sent time.Time
	st   *nts.RequestState
}

type engine struct {
	cfg     Config
	timeout time.Duration
	socks   []*sock
	start   time.Time

	ctr         atomic.Uint64
	sent        atomic.Uint64
	received    atomic.Uint64
	kod         atomic.Uint64
	kodRate     atomic.Uint64
	kodNTS      atomic.Uint64
	ntsAuthFail atomic.Uint64
	ntsProtErrs atomic.Uint64
	expired     atomic.Uint64
	late        atomic.Uint64
	stray       atomic.Uint64
	sendErrs    atomic.Uint64
	recvErrs    atomic.Uint64
	rec         recorder

	ntsSessions int

	closing atomic.Bool
	stop    chan struct{} // stops reaper + snapshotter
	sendWG  sync.WaitGroup
	recvWG  sync.WaitGroup
	auxWG   sync.WaitGroup

	intervalMu sync.Mutex
	intervals  []Interval

	kodMu    sync.Mutex
	kodCodes map[string]uint64

	populationBound int
}

// ReplyClass tells what a matched, in-deadline reply actually was:
// genuine served time, a deliberate RATE refusal (a rate limit or an
// overload shed), or another kiss-of-death. Classifying keeps "loss"
// meaning what it should — no answer at all — instead of lumping a
// server's explicit refusals in with drops.
type ReplyClass int

const (
	// ReplyServed is a mode-4/5 reply carrying time.
	ReplyServed ReplyClass = iota
	// ReplyKoDRate is a RATE kiss-of-death: the server answered but
	// deliberately refused time (rate limiting or load shedding).
	ReplyKoDRate
	// ReplyKoDNTS is an NTS NAK: the server saw NTS fields it could
	// not authenticate and told the client to re-run key exchange.
	// Distinct from RATE/other because it signals a key/cookie
	// problem, not load.
	ReplyKoDNTS
	// ReplyKoDOther is any other kiss-of-death (DENY, RSTR, ...).
	ReplyKoDOther
)

// ClassifyReply classifies a decoded server reply by its kiss code.
// The string is the kiss code for the KoD classes, "" for served
// time.
func ClassifyReply(p *ntppkt.Packet) (ReplyClass, string) {
	code, ok := p.KissCode()
	if !ok {
		return ReplyServed, ""
	}
	switch code {
	case "RATE":
		return ReplyKoDRate, code
	case "NTSN":
		return ReplyKoDNTS, code
	}
	return ReplyKoDOther, code
}

// countKoD tallies one kiss-of-death reply by class and code.
func (e *engine) countKoD(class ReplyClass, code string) {
	e.kod.Add(1)
	switch class {
	case ReplyKoDRate:
		e.kodRate.Add(1)
	case ReplyKoDNTS:
		e.kodNTS.Add(1)
	}
	e.kodMu.Lock()
	e.kodCodes[code]++
	e.kodMu.Unlock()
}

// Run executes one load-generation run and returns its report.
func Run(cfg Config) (*Report, error) {
	e, err := newEngine(cfg)
	if err != nil {
		return nil, err
	}
	defer e.close()

	for _, sk := range e.socks {
		e.recvWG.Add(1)
		go e.receive(sk)
	}
	e.auxWG.Add(1)
	go e.reap()
	if e.cfg.SnapshotEvery > 0 {
		e.auxWG.Add(1)
		go e.snapshotIntervals()
	}

	e.start = time.Now()
	for i := 0; i < e.cfg.Senders; i++ {
		e.sendWG.Add(1)
		go e.send(i)
	}
	e.sendWG.Wait()
	sendDur := time.Since(e.start)
	truncated := e.interrupted()

	if !truncated {
		// Linger for in-flight replies: until every request is resolved
		// or the last one's deadline has passed. An interrupted run
		// skips this — the operator wants the report now.
		drainDeadline := time.Now().Add(e.timeout + 50*time.Millisecond)
		for time.Now().Before(drainDeadline) && e.pendingTotal() > 0 {
			time.Sleep(10 * time.Millisecond)
		}
	}

	close(e.stop)
	e.close() // unblocks receivers
	e.recvWG.Wait()
	e.auxWG.Wait()

	// Whatever is still unresolved is lost.
	for _, sk := range e.socks {
		sk.mu.Lock()
		e.expired.Add(uint64(len(sk.pending)))
		sk.pending = nil
		sk.mu.Unlock()
	}
	rep := e.report(sendDur)
	rep.Truncated = truncated
	return rep, nil
}

// interrupted reports whether the Interrupt channel has fired.
func (e *engine) interrupted() bool {
	if e.cfg.Interrupt == nil {
		return false
	}
	select {
	case <-e.cfg.Interrupt:
		return true
	default:
		return false
	}
}

func newEngine(cfg Config) (*engine, error) {
	if cfg.Target == "" {
		return nil, errors.New("loadgen: Target required")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: Rate %v must be positive", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: Duration %v must be positive", cfg.Duration)
	}
	if cfg.Senders <= 0 {
		cfg.Senders = 4
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = time.Second
	}
	switch cfg.Arrival {
	case "":
		cfg.Arrival = ArrivalPoisson
	case ArrivalPoisson, ArrivalFixed:
	default:
		return nil, fmt.Errorf("loadgen: unknown arrival process %q", cfg.Arrival)
	}
	if cfg.Version == 0 {
		cfg.Version = ntppkt.Version4
	}
	if cfg.Population > maxPopulation {
		return nil, fmt.Errorf("loadgen: Population %d exceeds %d", cfg.Population, maxPopulation)
	}
	raddr, err := net.ResolveUDPAddr("udp", cfg.Target)
	if err != nil {
		return nil, fmt.Errorf("loadgen: resolve %q: %w", cfg.Target, err)
	}

	e := &engine{cfg: cfg, timeout: cfg.Timeout, stop: make(chan struct{}), kodCodes: make(map[string]uint64)}
	nsocks := cfg.Senders
	if cfg.Population > nsocks {
		nsocks = cfg.Population
	}
	// Size pending for the worst honest case: everything in one
	// deadline window unanswered.
	pendingCap := int(cfg.Rate*cfg.Timeout.Seconds())/nsocks + 16
	for i := 0; i < nsocks; i++ {
		var laddr *net.UDPAddr
		if cfg.Population > 0 {
			laddr = &net.UDPAddr{IP: spoofIP(i)}
		}
		conn, err := net.DialUDP("udp", laddr, raddr)
		if err != nil && laddr != nil {
			// Platform refuses 127/8 aliases: plain source address.
			conn, err = net.DialUDP("udp", nil, raddr)
		} else if laddr != nil && err == nil {
			e.populationBound++
		}
		if err != nil {
			e.close()
			return nil, fmt.Errorf("loadgen: dial %q: %w", cfg.Target, err)
		}
		// A deep receive buffer so reply bursts are not dropped on
		// our own doorstep; silently capped by the kernel limit.
		conn.SetReadBuffer(1 << 20)
		e.socks = append(e.socks, &sock{
			conn:    conn,
			pending: make(map[uint64]pendingReq, pendingCap),
		})
	}
	if cfg.NTS != nil {
		if err := e.establishNTS(); err != nil {
			e.close()
			return nil, err
		}
	}
	return e, nil
}

// establishNTS pre-establishes the KE sessions and assigns them to
// the source sockets round-robin. Sessions reuse their last cookie
// when the jar runs dry: an open-loop generator cannot let re-supply
// gate its schedule (shed replies burn cookies without replacing
// them), and linkability is irrelevant to a load test.
func (e *engine) establishNTS() error {
	n := e.cfg.NTS.Sessions
	if n <= 0 {
		n = e.cfg.Senders
	}
	if n > len(e.socks) {
		n = len(e.socks)
	}
	timeout := e.cfg.NTS.KETimeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	sessions := make([]*nts.Session, n)
	for i := range sessions {
		sess, err := ntske.KeyExchange(e.cfg.NTS.KEAddr, e.cfg.NTS.TLSConfig, timeout)
		if err != nil {
			return fmt.Errorf("loadgen: NTS-KE session %d: %w", i, err)
		}
		sess.ReuseWhenDry = true
		sessions[i] = sess
	}
	for i, sk := range e.socks {
		sk.sess = sessions[i%n]
	}
	e.ntsSessions = n
	return nil
}

// spoofIP returns the i-th simulated source address, inside 127/8 so
// the host accepts the bind without configuration (Linux routes the
// whole block to loopback).
func spoofIP(i int) net.IP {
	n := i + 1
	return net.IPv4(127, byte(66+(n>>16)), byte(n>>8), byte(n))
}

func (e *engine) close() {
	e.closing.Store(true)
	for _, sk := range e.socks {
		sk.conn.Close()
	}
}

func (e *engine) pendingTotal() int {
	n := 0
	for _, sk := range e.socks {
		sk.mu.Lock()
		n += len(sk.pending)
		sk.mu.Unlock()
	}
	return n
}

// send is one sender goroutine: an independent open-loop arrival
// stream at Rate/Senders over its own partition of the sockets
// (sender i owns sockets i, i+Senders, …, so senders never contend
// on a pending-table lock).
func (e *engine) send(id int) {
	defer e.sendWG.Done()
	rng := rand.New(rand.NewSource(e.cfg.Seed + int64(id)*7919))
	mean := time.Duration(float64(time.Second) * float64(e.cfg.Senders) / e.cfg.Rate)
	if mean <= 0 {
		mean = 1
	}
	poisson := e.cfg.Arrival == ArrivalPoisson

	var socks []*sock
	for i := id; i < len(e.socks); i += e.cfg.Senders {
		socks = append(socks, e.socks[i])
	}
	if len(socks) == 0 {
		return
	}
	req := ntppkt.Packet{Leap: ntppkt.LeapNotSync, Version: e.cfg.Version, Mode: ntppkt.ModeClient}
	buf := make([]byte, 0, 2048)

	end := e.start.Add(e.cfg.Duration)
	// Desynchronized first arrivals, so senders don't start in phase.
	next := e.start.Add(time.Duration(rng.Int63n(int64(mean) + 1)))
	si := 0
	for next.Before(end) {
		if wait := next.Sub(time.Now()); wait > pacingSlack {
			// Interruptible pacing: a SIGINT mid-sleep stops the
			// sender at this arrival instead of after it.
			if e.cfg.Interrupt != nil {
				t := time.NewTimer(wait)
				select {
				case <-e.cfg.Interrupt:
					t.Stop()
					return
				case <-t.C:
				}
			} else {
				time.Sleep(wait)
			}
			continue
		}
		if e.interrupted() {
			return
		}
		// Due (or overdue — then requests go back-to-back until the
		// schedule is caught up; open loop never drops offered load).
		sk := socks[si]
		si++
		if si == len(socks) {
			si = 0
		}
		buf = e.sendOne(sk, &req, buf)
		if poisson {
			next = next.Add(time.Duration(rng.ExpFloat64() * float64(mean)))
		} else {
			next = next.Add(mean)
		}
	}
}

func (e *engine) sendOne(sk *sock, req *ntppkt.Packet, buf []byte) []byte {
	ctr := e.ctr.Add(1)
	sent := time.Now()
	ts := ntptime.FromTime(sent)
	ts = ts&^ctrMask | ntptime.Timestamp(ctr&ctrMask)
	req.Transmit = ts
	var st *nts.RequestState
	if sk.sess != nil {
		// Per-request AEAD: fresh unique ID, a cookie from the jar
		// and the authenticator over the final header image.
		req.Ext = req.Ext[:0]
		var err error
		if st, err = sk.sess.ProtectRequest(req); err != nil {
			e.ntsProtErrs.Add(1)
			return buf
		}
	}
	buf = req.Encode(buf[:0])
	key := uint64(ts)
	sk.mu.Lock()
	sk.pending[key] = pendingReq{sent: sent, st: st}
	sk.mu.Unlock()
	if _, err := sk.conn.Write(buf); err != nil {
		e.sendErrs.Add(1)
		sk.mu.Lock()
		delete(sk.pending, key)
		sk.mu.Unlock()
		return buf
	}
	e.sent.Add(1)
	return buf
}

// receive matches replies on one socket against its pending table by
// the echoed origin timestamp.
func (e *engine) receive(sk *sock) {
	defer e.recvWG.Done()
	buf := make([]byte, 2048) // room for NTS replies, not just headers
	var p ntppkt.Packet
	for {
		n, err := sk.conn.Read(buf)
		if err != nil {
			if e.closing.Load() {
				return
			}
			// Transient (e.g. ICMP-induced ECONNREFUSED on a connected
			// socket): count it and keep receiving.
			e.recvErrs.Add(1)
			time.Sleep(time.Millisecond)
			continue
		}
		t := time.Now()
		if p.DecodeInto(buf[:n]) != nil ||
			(p.Mode != ntppkt.ModeServer && p.Mode != ntppkt.ModeBroadcast) {
			e.stray.Add(1)
			continue
		}
		key := uint64(p.Origin)
		sk.mu.Lock()
		pr, ok := sk.pending[key]
		if ok {
			delete(sk.pending, key)
		}
		sk.mu.Unlock()
		if !ok {
			e.stray.Add(1) // duplicate, expired-and-reaped, or spoofed
			continue
		}
		d := t.Sub(pr.sent)
		if d > e.timeout {
			e.late.Add(1) // reply exists but missed its deadline: lost
			continue
		}
		if class, code := ClassifyReply(&p); class != ReplyServed {
			e.countKoD(class, code)
			continue
		}
		if sk.sess != nil && pr.st != nil {
			// Verify the authenticator (and harvest re-supplied
			// cookies); an unverifiable reply is not served time.
			if err := sk.sess.VerifyReply(&p, pr.st); err != nil {
				e.ntsAuthFail.Add(1)
				continue
			}
		}
		e.received.Add(1)
		e.rec.record(d)
	}
}

// reap expires requests whose deadline passed without a reply.
func (e *engine) reap() {
	defer e.auxWG.Done()
	period := e.timeout / 2
	if period > 100*time.Millisecond {
		period = 100 * time.Millisecond
	}
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-e.stop:
			return
		case now := <-tick.C:
			for _, sk := range e.socks {
				sk.mu.Lock()
				for key, pr := range sk.pending {
					if now.Sub(pr.sent) > e.timeout {
						delete(sk.pending, key)
						e.expired.Add(1)
					}
				}
				sk.mu.Unlock()
			}
		}
	}
}

// snapshotIntervals appends one interval row per SnapshotEvery.
func (e *engine) snapshotIntervals() {
	defer e.auxWG.Done()
	tick := time.NewTicker(e.cfg.SnapshotEvery)
	defer tick.Stop()
	var prevSent, prevRecv, prevKoD, prevLost uint64
	prevHist := e.rec.snapshot()
	for {
		select {
		case <-e.stop:
			return
		case <-tick.C:
			sent, recv := e.sent.Load(), e.received.Load()
			kod := e.kod.Load()
			lost := e.expired.Load() + e.late.Load()
			hist := e.rec.snapshot()
			dHist := hist.sub(prevHist)
			iv := Interval{
				ElapsedSec: time.Since(e.start).Seconds(),
				Sent:       sent - prevSent,
				Received:   recv - prevRecv,
				KoD:        kod - prevKoD,
				Lost:       lost - prevLost,
				SendRate:   float64(sent-prevSent) / e.cfg.SnapshotEvery.Seconds(),
			}
			if p, ok := dHist.quantile(0.50); ok {
				iv.P50Us = us(p)
			}
			if p, ok := dHist.quantile(0.99); ok {
				iv.P99Us = us(p)
			}
			prevSent, prevRecv, prevKoD, prevLost = sent, recv, kod, lost
			prevHist = hist
			e.intervalMu.Lock()
			e.intervals = append(e.intervals, iv)
			e.intervalMu.Unlock()
		}
	}
}
