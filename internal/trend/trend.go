// Package trend implements the least-squares trend line machinery that
// MNTP (§4.2 of the paper) fits to recorded clock offsets: a first
// degree polynomial fit over (elapsed time, offset) samples, the slope
// of which estimates the clock drift, plus the residual statistics the
// MNTP filter uses to accept or reject newly reported offsets.
//
// Fitting is incremental: adding a sample updates running sums so the
// line is refit in O(1), matching the paper's §5.3 refinement of
// re-estimating the drift with every new accepted sample.
package trend

import (
	"errors"
	"math"
)

// ErrInsufficient is returned when a fit is requested with fewer than
// two samples (a line is undetermined).
var ErrInsufficient = errors.New("trend: need at least two samples to fit a line")

// Line is a fitted first-degree polynomial y = Intercept + Slope·x.
type Line struct {
	Slope     float64 // drift estimate: offset seconds per elapsed second
	Intercept float64
}

// At evaluates the line at x — extending the trend line to estimate
// where the next offset sample should fall.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// Fitter accumulates (x, y) samples and maintains the least-squares
// line over them. The zero value is an empty fitter ready for use.
type Fitter struct {
	n                int
	sx, sy, sxx, sxy float64
	syy              float64
}

// Add incorporates the sample (x, y) and refits.
func (f *Fitter) Add(x, y float64) {
	f.n++
	f.sx += x
	f.sy += y
	f.sxx += x * x
	f.sxy += x * y
	f.syy += y * y
}

// N returns the number of samples added.
func (f *Fitter) N() int { return f.n }

// Line returns the current least-squares line. With fewer than two
// samples, or with all x values identical, it returns ErrInsufficient.
func (f *Fitter) Line() (Line, error) {
	if f.n < 2 {
		return Line{}, ErrInsufficient
	}
	n := float64(f.n)
	det := n*f.sxx - f.sx*f.sx
	if det == 0 || math.Abs(det) < 1e-18*math.Max(1, f.sxx*n) {
		return Line{}, ErrInsufficient
	}
	slope := (n*f.sxy - f.sx*f.sy) / det
	intercept := (f.sy - slope*f.sx) / n
	return Line{Slope: slope, Intercept: intercept}, nil
}

// ResidualVariance returns the unbiased residual variance of the fit,
// s² = Σ(yᵢ−ŷᵢ)²/(n−2). It requires at least three samples.
func (f *Fitter) ResidualVariance() (float64, error) {
	if f.n < 3 {
		return 0, ErrInsufficient
	}
	line, err := f.Line()
	if err != nil {
		return 0, err
	}
	sse := f.syy - line.Intercept*f.sy - line.Slope*f.sxy
	if sse < 0 {
		sse = 0 // numerical guard
	}
	return sse / float64(f.n-2), nil
}

// PredictVariance returns the variance of a *new* observation's
// deviation from the fitted line at x — the prediction-interval
// variance s²·(1 + 1/n + (x−x̄)²/Sxx). It grows with extrapolation
// distance, so a gate built on it widens appropriately when the next
// sample is far beyond the fitted data (the failure mode §5.3 of the
// paper diagnosed in its first filter version).
func (f *Fitter) PredictVariance(x float64) (float64, error) {
	s2, err := f.ResidualVariance()
	if err != nil {
		return 0, err
	}
	n := float64(f.n)
	sxxC := f.sxx - f.sx*f.sx/n
	if sxxC <= 0 {
		return 0, ErrInsufficient
	}
	xbar := f.sx / n
	return s2 * (1 + 1/n + (x-xbar)*(x-xbar)/sxxC), nil
}

// SlopeVariance returns the sampling variance of the fitted slope,
// Var(b) = s²/Sxx — how trustworthy the drift estimate is. Requires
// at least three samples.
func (f *Fitter) SlopeVariance() (float64, error) {
	s2, err := f.ResidualVariance()
	if err != nil {
		return 0, err
	}
	n := float64(f.n)
	sxxC := f.sxx - f.sx*f.sx/n
	if sxxC <= 0 {
		return 0, ErrInsufficient
	}
	return s2 / sxxC, nil
}

// SubtractLine re-expresses every accumulated sample with the linear
// function a + b·x subtracted from its y value: y_i ← y_i − (a + b·x_i).
// MNTP uses this when it physically corrects the clock — a step of s
// subtracts the constant s, and a frequency trim of f applied at
// elapsed time x0 subtracts f·(x − x0) — so the recorded history stays
// expressed against the *corrected* clock and the filter's predictions
// remain valid (see DESIGN.md).
func (f *Fitter) SubtractLine(a, b float64) {
	// The sums transform in closed form; syy is kept consistent too.
	n := float64(f.n)
	newSyy := f.syy - 2*a*f.sy - 2*b*f.sxy + n*a*a + 2*a*b*f.sx + b*b*f.sxx
	f.sxy = f.sxy - a*f.sx - b*f.sxx
	f.sy = f.sy - n*a - b*f.sx
	f.syy = newSyy
}

// Fit computes the least-squares line for the given samples in one
// call. xs and ys must have equal length ≥ 2.
func Fit(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, errors.New("trend: mismatched sample lengths")
	}
	var f Fitter
	for i := range xs {
		f.Add(xs[i], ys[i])
	}
	return f.Line()
}

// ResidualTracker maintains the squared prediction errors of accepted
// samples against the evolving trend line, providing the mean ± one
// standard deviation gate of the MNTP filter.
//
// The paper (§4.2): "we find the squared error of each of the reported
// offset with respect to the fitted trend line and then extend the
// trend line to get an estimate of where the next sample should be …
// If the square of that error is one standard deviation above or below
// the mean, then we reject the reported offset."
//
// Implemented as an upper gate (see DESIGN.md note 2): a squared error
// more than one standard deviation above the running mean of squared
// errors is rejected. An absolute floor keeps the gate open while the
// residual history is still degenerate (e.g. the first few samples sit
// exactly on the line, giving zero variance).
type ResidualTracker struct {
	sq    []float64 // squared errors of accepted samples
	floor float64   // minimum gate width in squared units
	cap   int       // sliding-window length, 0 = unbounded
}

// NewResidualTracker creates a tracker. floor is the minimum tolerated
// squared error (in the same squared units as the offsets); window, if
// positive, bounds the history to the most recent accepted samples.
func NewResidualTracker(floor float64, window int) *ResidualTracker {
	return &ResidualTracker{floor: floor, cap: window}
}

// Accept records the squared error of a sample that passed the gate.
func (r *ResidualTracker) Accept(sqErr float64) {
	r.sq = append(r.sq, sqErr)
	if r.cap > 0 && len(r.sq) > r.cap {
		r.sq = r.sq[len(r.sq)-r.cap:]
	}
}

// N returns the number of recorded residuals.
func (r *ResidualTracker) N() int { return len(r.sq) }

// Gate returns the current rejection threshold for squared errors:
// mean + 1·stddev of the recorded squared errors, but never below the
// configured floor.
func (r *ResidualTracker) Gate() float64 {
	if len(r.sq) == 0 {
		return r.floor
	}
	var mean float64
	for _, s := range r.sq {
		mean += s
	}
	mean /= float64(len(r.sq))
	var v float64
	for _, s := range r.sq {
		d := s - mean
		v += d * d
	}
	v /= float64(len(r.sq))
	gate := mean + math.Sqrt(v)
	if gate < r.floor {
		gate = r.floor
	}
	return gate
}

// Admits reports whether a sample with the given squared prediction
// error passes the current gate.
func (r *ResidualTracker) Admits(sqErr float64) bool {
	return sqErr <= r.Gate()
}
