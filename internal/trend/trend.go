// Package trend implements the least-squares trend line machinery that
// MNTP (§4.2 of the paper) fits to recorded clock offsets: a first
// degree polynomial fit over (elapsed time, offset) samples, the slope
// of which estimates the clock drift, plus the residual statistics the
// MNTP filter uses to accept or reject newly reported offsets.
//
// Fitting is incremental: adding a sample updates running sums so the
// line is refit in O(1), matching the paper's §5.3 refinement of
// re-estimating the drift with every new accepted sample.
package trend

import (
	"errors"
	"math"
)

// ErrInsufficient is returned when a fit is requested with fewer than
// two samples (a line is undetermined).
var ErrInsufficient = errors.New("trend: need at least two samples to fit a line")

// Line is a fitted first-degree polynomial y = Intercept + Slope·x.
type Line struct {
	Slope     float64 // drift estimate: offset seconds per elapsed second
	Intercept float64
}

// At evaluates the line at x — extending the trend line to estimate
// where the next offset sample should fall.
func (l Line) At(x float64) float64 { return l.Intercept + l.Slope*x }

// Fitter accumulates (x, y) samples and maintains the least-squares
// line over them. The zero value is an empty fitter ready for use.
//
// Internally the fit is kept as centered (Welford-style) co-moments —
// running means plus Σ(x−x̄)², Σ(x−x̄)(y−ȳ) and Σ(y−ȳ)². The previous
// raw-sum formulation (n·Σx² − (Σx)²) cancels catastrophically when
// the x values are elapsed seconds hours into an uptime; the centered
// update is immune to the x origin (see the regression test fitting
// identical data at x offsets of 0 and 1e6 s).
type Fitter struct {
	n             int
	mx, my        float64 // running means of x and y
	sxx, sxy, syy float64 // centered co-moments about the means
}

// Add incorporates the sample (x, y) and refits.
func (f *Fitter) Add(x, y float64) {
	f.n++
	n := float64(f.n)
	dx := x - f.mx
	dy := y - f.my
	f.mx += dx / n
	f.my += dy / n
	// dx uses the pre-update mean and (x−mx) the post-update mean:
	// their product telescopes to Σ(x−x̄)² exactly (Welford).
	f.sxx += dx * (x - f.mx)
	f.sxy += dx * (y - f.my)
	f.syy += dy * (y - f.my)
}

// N returns the number of samples added.
func (f *Fitter) N() int { return f.n }

// Line returns the current least-squares line. With fewer than two
// samples, or with all x values identical, it returns ErrInsufficient.
func (f *Fitter) Line() (Line, error) {
	if f.n < 2 {
		return Line{}, ErrInsufficient
	}
	// All-identical x leaves the centered Sxx at exactly 0 (every dx
	// against the running mean is 0); no relative-epsilon dance needed.
	if f.sxx <= 0 {
		return Line{}, ErrInsufficient
	}
	slope := f.sxy / f.sxx
	intercept := f.my - slope*f.mx
	return Line{Slope: slope, Intercept: intercept}, nil
}

// ResidualVariance returns the unbiased residual variance of the fit,
// s² = Σ(yᵢ−ŷᵢ)²/(n−2). It requires at least three samples.
func (f *Fitter) ResidualVariance() (float64, error) {
	if f.n < 3 {
		return 0, ErrInsufficient
	}
	if f.sxx <= 0 {
		return 0, ErrInsufficient
	}
	sse := f.syy - f.sxy*f.sxy/f.sxx
	if sse < 0 {
		sse = 0 // numerical guard
	}
	return sse / float64(f.n-2), nil
}

// PredictVariance returns the variance of a *new* observation's
// deviation from the fitted line at x — the prediction-interval
// variance s²·(1 + 1/n + (x−x̄)²/Sxx). It grows with extrapolation
// distance, so a gate built on it widens appropriately when the next
// sample is far beyond the fitted data (the failure mode §5.3 of the
// paper diagnosed in its first filter version).
func (f *Fitter) PredictVariance(x float64) (float64, error) {
	s2, err := f.ResidualVariance()
	if err != nil {
		return 0, err
	}
	n := float64(f.n)
	return s2 * (1 + 1/n + (x-f.mx)*(x-f.mx)/f.sxx), nil
}

// SlopeVariance returns the sampling variance of the fitted slope,
// Var(b) = s²/Sxx — how trustworthy the drift estimate is. Requires
// at least three samples.
func (f *Fitter) SlopeVariance() (float64, error) {
	s2, err := f.ResidualVariance()
	if err != nil {
		return 0, err
	}
	return s2 / f.sxx, nil
}

// SubtractLine re-expresses every accumulated sample with the linear
// function a + b·x subtracted from its y value: y_i ← y_i − (a + b·x_i).
// MNTP uses this when it physically corrects the clock — a step of s
// subtracts the constant s, and a frequency trim of f applied at
// elapsed time x0 subtracts f·(x − x0) — so the recorded history stays
// expressed against the *corrected* clock and the filter's predictions
// remain valid (see DESIGN.md).
func (f *Fitter) SubtractLine(a, b float64) {
	// In centered form the transform is local: the constant a only
	// shifts the y mean, and the slope b rotates the centered
	// co-moments (ỹᵢ ← ỹᵢ − b·x̃ᵢ).
	f.my -= a + b*f.mx
	f.syy += -2*b*f.sxy + b*b*f.sxx
	f.sxy -= b * f.sxx
	if f.syy < 0 {
		f.syy = 0 // numerical guard
	}
}

// Fit computes the least-squares line for the given samples in one
// call. xs and ys must have equal length ≥ 2.
func Fit(xs, ys []float64) (Line, error) {
	if len(xs) != len(ys) {
		return Line{}, errors.New("trend: mismatched sample lengths")
	}
	var f Fitter
	for i := range xs {
		f.Add(xs[i], ys[i])
	}
	return f.Line()
}

// ResidualTracker maintains the squared prediction errors of accepted
// samples against the evolving trend line, providing the mean ± one
// standard deviation gate of the MNTP filter.
//
// The paper (§4.2): "we find the squared error of each of the reported
// offset with respect to the fitted trend line and then extend the
// trend line to get an estimate of where the next sample should be …
// If the square of that error is one standard deviation above or below
// the mean, then we reject the reported offset."
//
// Implemented as an upper gate (see DESIGN.md note 2): a squared error
// more than one standard deviation above the running mean of squared
// errors is rejected. An absolute floor keeps the gate open while the
// residual history is still degenerate (e.g. the first few samples sit
// exactly on the line, giving zero variance).
type ResidualTracker struct {
	sq    []float64 // squared errors of accepted samples
	floor float64   // minimum gate width in squared units
	cap   int       // sliding-window length, 0 = unbounded
}

// NewResidualTracker creates a tracker. floor is the minimum tolerated
// squared error (in the same squared units as the offsets); window, if
// positive, bounds the history to the most recent accepted samples.
func NewResidualTracker(floor float64, window int) *ResidualTracker {
	return &ResidualTracker{floor: floor, cap: window}
}

// Accept records the squared error of a sample that passed the gate.
func (r *ResidualTracker) Accept(sqErr float64) {
	r.sq = append(r.sq, sqErr)
	if r.cap > 0 && len(r.sq) > r.cap {
		r.sq = r.sq[len(r.sq)-r.cap:]
	}
}

// N returns the number of recorded residuals.
func (r *ResidualTracker) N() int { return len(r.sq) }

// Gate returns the current rejection threshold for squared errors:
// mean + 1·stddev of the recorded squared errors, but never below the
// configured floor.
func (r *ResidualTracker) Gate() float64 {
	if len(r.sq) == 0 {
		return r.floor
	}
	var mean float64
	for _, s := range r.sq {
		mean += s
	}
	mean /= float64(len(r.sq))
	var v float64
	for _, s := range r.sq {
		d := s - mean
		v += d * d
	}
	v /= float64(len(r.sq))
	gate := mean + math.Sqrt(v)
	if gate < r.floor {
		gate = r.floor
	}
	return gate
}

// Admits reports whether a sample with the given squared prediction
// error passes the current gate.
func (r *ResidualTracker) Admits(sqErr float64) bool {
	return sqErr <= r.Gate()
}
