package trend

import (
	"fmt"
	"sort"
)

// Estimator is the common interface behind MNTP's trend fitting: an
// incremental fit of y = intercept + slope·x over (elapsed, offset)
// samples, plus the variance queries the filter's gate and the drift
// corrector need. Three implementations exist — the paper's
// least-squares Fitter, the robust TheilSen (median of pairwise
// slopes) and LAD (least absolute deviations via IRLS) — and the
// chaos harness bakes them off against each other (see DESIGN.md).
// The interface is also the seam future estimators (e.g. a Kalman
// filter, the ROADMAP's next step) plug into.
type Estimator interface {
	// Add incorporates the sample (x, y) and refits.
	Add(x, y float64)
	// N returns the number of samples currently contributing to the
	// fit (for windowed estimators, the window occupancy).
	N() int
	// Line returns the current fitted line, or ErrInsufficient when
	// the samples do not determine one.
	Line() (Line, error)
	// ResidualVariance estimates the variance of a sample's deviation
	// from the fitted line (robust estimators return a robust analog,
	// the squared normalized MAD). Requires at least three samples.
	ResidualVariance() (float64, error)
	// PredictVariance returns the prediction-interval variance for a
	// new observation at x: s²·(1 + 1/n + (x−x̄)²/Sxx).
	PredictVariance(x float64) (float64, error)
	// SlopeVariance returns the sampling variance of the fitted slope.
	SlopeVariance() (float64, error)
	// SubtractLine re-expresses every retained sample with a + b·x
	// subtracted from its y value (clock steps and frequency trims).
	SubtractLine(a, b float64)
}

// Kind names an Estimator implementation; it is what flows through
// configuration (core.Params.Estimator, the -estimator flag, the
// tuner's search space).
type Kind string

const (
	// KindLeastSquares is the paper's §4.2 estimator: an unbounded
	// incremental least-squares fit (Fitter).
	KindLeastSquares Kind = "lsq"
	// KindTheilSen is the chrony-style robust estimator: the median
	// of pairwise slopes over a bounded window, with error-driven
	// sample dropping to damp its oscillation failure mode.
	KindTheilSen Kind = "theilsen"
	// KindLAD is least-absolute-deviations regression over the same
	// bounded window, solved by iteratively reweighted least squares.
	KindLAD Kind = "lad"
)

// Kinds returns every implemented estimator, in bake-off order.
func Kinds() []Kind { return []Kind{KindLeastSquares, KindTheilSen, KindLAD} }

// ParseKind resolves a user-supplied estimator name (accepting the
// common spelling variants) to a Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "", "lsq", "ls", "least-squares", "leastsquares":
		return KindLeastSquares, nil
	case "theilsen", "theil-sen", "ts":
		return KindTheilSen, nil
	case "lad", "l1":
		return KindLAD, nil
	}
	return "", fmt.Errorf("trend: unknown estimator %q (want lsq, theilsen or lad)", s)
}

// DefaultWindow is the sample window robust estimators fit over when
// the configuration leaves it zero. 32 samples keep the Theil-Sen
// pair enumeration cheap (≤ 496 pairs) while spanning several minutes
// of history at MNTP cadences.
const DefaultWindow = 32

// NewEstimator constructs an estimator of the given kind. window
// bounds the sample history of the robust estimators (≤ 0 selects
// DefaultWindow; least squares is unbounded and ignores it).
// scaleFloor is the smallest residual scale (in y units) the robust
// estimators will reason with: it floors the outlier-dropping
// threshold and the IRLS reweighting denominator so a perfectly
// linear history does not make every subsequent sample look like an
// outlier. An empty or unknown kind falls back to least squares —
// flag-level validation belongs to ParseKind.
func NewEstimator(kind Kind, window int, scaleFloor float64) Estimator {
	if window <= 0 {
		window = DefaultWindow
	}
	if scaleFloor < 0 {
		scaleFloor = 0
	}
	switch kind {
	case KindTheilSen:
		return NewTheilSen(window, scaleFloor)
	case KindLAD:
		return NewLAD(window, scaleFloor)
	default:
		return &Fitter{}
	}
}

// samples is the bounded (x, y) history shared by the windowed robust
// estimators: append-at-end, drop-oldest-on-overflow.
type samples struct {
	xs, ys []float64
	max    int
}

func newSamples(max int) samples {
	return samples{xs: make([]float64, 0, max), ys: make([]float64, 0, max), max: max}
}

func (s *samples) add(x, y float64) {
	if len(s.xs) >= s.max {
		s.dropOldest(1)
	}
	s.xs = append(s.xs, x)
	s.ys = append(s.ys, y)
}

// dropOldest discards the k oldest samples.
func (s *samples) dropOldest(k int) {
	if k <= 0 {
		return
	}
	if k >= len(s.xs) {
		s.xs = s.xs[:0]
		s.ys = s.ys[:0]
		return
	}
	n := copy(s.xs, s.xs[k:])
	s.xs = s.xs[:n]
	n = copy(s.ys, s.ys[k:])
	s.ys = s.ys[:n]
}

func (s *samples) n() int { return len(s.xs) }

func (s *samples) subtractLine(a, b float64) {
	for i := range s.ys {
		s.ys[i] -= a + b*s.xs[i]
	}
}

// xMoments returns the mean and centered sum of squares of the stored
// x values (for prediction-interval and slope variances).
func (s *samples) xMoments() (mean, sxx float64) {
	n := float64(len(s.xs))
	if n == 0 {
		return 0, 0
	}
	for _, x := range s.xs {
		mean += x
	}
	mean /= n
	for _, x := range s.xs {
		d := x - mean
		sxx += d * d
	}
	return mean, sxx
}

// residualScale2 returns the squared robust residual scale of the
// line over the stored samples: (1.4826·median|rᵢ|)², the normalized
// MAD that estimates σ² consistently under Gaussian noise while
// ignoring outliers. floor bounds it from below (in y units).
func (s *samples) residualScale2(l Line, floor float64) float64 {
	abs := make([]float64, len(s.xs))
	for i := range s.xs {
		abs[i] = s.ys[i] - l.At(s.xs[i])
		if abs[i] < 0 {
			abs[i] = -abs[i]
		}
	}
	scale := 1.4826 * median(abs)
	if scale < floor {
		scale = floor
	}
	return scale * scale
}

// median returns the median of xs, sorting in place. Zero when empty.
func median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	sort.Float64s(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

var _ Estimator = (*Fitter)(nil)
