// Least-absolute-deviations (L1) trend estimation over a bounded
// window, solved by iteratively reweighted least squares (IRLS):
// minimizing Σ|rᵢ| is a weighted least-squares problem with weights
// wᵢ = 1/|rᵢ|, so the fit alternates between solving the weighted
// normal equations and recomputing the weights from the residuals.
// Like Theil-Sen, the L1 objective caps any one sample's influence at
// its sign — the asymmetric-delay spike that drags an L2 fit by its
// squared residual moves an L1 fit hardly at all — but it degrades
// more gracefully when nearly half the window is contaminated.

package trend

import "math"

// IRLS parameters: the iteration stops when the slope and intercept
// both move by less than ladTol (relative), or after ladMaxIter
// rounds — IRLS for L1 converges linearly, and a trend refit runs on
// every accepted sample, so a handful of iterations suffices.
const (
	ladMaxIter = 12
	ladTol     = 1e-9
)

// LAD is a windowed least-absolute-deviations estimator implementing
// Estimator.
type LAD struct {
	win        samples
	scaleFloor float64

	dirty   bool
	line    Line
	lineErr error
	scale2  float64
}

// NewLAD creates a LAD estimator over a window of at most `window`
// samples. scaleFloor (y units) bounds the IRLS reweighting
// denominator — without it a sample the fit interpolates exactly
// would receive infinite weight — and floors the reported residual
// scale; see NewEstimator.
func NewLAD(window int, scaleFloor float64) *LAD {
	return &LAD{win: newSamples(window), scaleFloor: scaleFloor, dirty: true}
}

// Add incorporates the sample (x, y) and invalidates the cached fit.
func (l *LAD) Add(x, y float64) {
	l.win.add(x, y)
	l.dirty = true
}

// N returns the window occupancy.
func (l *LAD) N() int { return l.win.n() }

// Line returns the current LAD line.
func (l *LAD) Line() (Line, error) { return l.fit() }

func (l *LAD) fit() (Line, error) {
	if !l.dirty {
		return l.line, l.lineErr
	}
	l.dirty = false
	n := l.win.n()
	xs, ys := l.win.xs, l.win.ys
	if n < 2 {
		l.line, l.lineErr = Line{}, ErrInsufficient
		return l.line, l.lineErr
	}

	// Start from the unweighted least-squares fit.
	cur, ok := weightedLS(xs, ys, nil)
	if !ok {
		l.line, l.lineErr = Line{}, ErrInsufficient
		return l.line, l.lineErr
	}
	// delta floors |rᵢ| in the weights; tie it to the configured
	// scale floor so "exactly on the line" means "within the noise
	// floor", not "within float64 epsilon".
	delta := l.scaleFloor
	if delta <= 0 {
		delta = 1e-12
	}
	w := make([]float64, n)
	for iter := 0; iter < ladMaxIter; iter++ {
		for i := range w {
			r := ys[i] - cur.At(xs[i])
			if r < 0 {
				r = -r
			}
			if r < delta {
				r = delta
			}
			w[i] = 1 / r
		}
		next, ok := weightedLS(xs, ys, w)
		if !ok {
			break // degenerate reweighting; keep the last good fit
		}
		ds := math.Abs(next.Slope - cur.Slope)
		di := math.Abs(next.Intercept - cur.Intercept)
		cur = next
		if ds <= ladTol*(1+math.Abs(cur.Slope)) && di <= ladTol*(1+math.Abs(cur.Intercept)) {
			break
		}
	}
	l.line, l.lineErr = cur, nil
	l.scale2 = l.win.residualScale2(cur, l.scaleFloor)
	return l.line, nil
}

// weightedLS solves the weighted least-squares line in centered form
// (the same cancellation-free formulation as Fitter). A nil weight
// slice means uniform weights. ok is false when the weighted x spread
// is degenerate.
func weightedLS(xs, ys, w []float64) (Line, bool) {
	var sw, swx, swy float64
	for i := range xs {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		sw += wi
		swx += wi * xs[i]
		swy += wi * ys[i]
	}
	if sw <= 0 {
		return Line{}, false
	}
	xbar, ybar := swx/sw, swy/sw
	var sxx, sxy float64
	for i := range xs {
		wi := 1.0
		if w != nil {
			wi = w[i]
		}
		dx := xs[i] - xbar
		sxx += wi * dx * dx
		sxy += wi * dx * (ys[i] - ybar)
	}
	if sxx <= 0 {
		return Line{}, false
	}
	slope := sxy / sxx
	return Line{Slope: slope, Intercept: ybar - slope*xbar}, true
}

// ResidualVariance returns the squared normalized MAD of the fit's
// residuals. Requires at least three samples.
func (l *LAD) ResidualVariance() (float64, error) {
	if l.win.n() < 3 {
		return 0, ErrInsufficient
	}
	if _, err := l.fit(); err != nil {
		return 0, err
	}
	return l.scale2, nil
}

// PredictVariance returns the prediction-interval variance at x with
// the robust s².
func (l *LAD) PredictVariance(x float64) (float64, error) {
	s2, err := l.ResidualVariance()
	if err != nil {
		return 0, err
	}
	xbar, sxx := l.win.xMoments()
	if sxx <= 0 {
		return 0, ErrInsufficient
	}
	n := float64(l.win.n())
	return s2 * (1 + 1/n + (x-xbar)*(x-xbar)/sxx), nil
}

// SlopeVariance returns the robust analog of the slope's sampling
// variance, s²/Sxx.
func (l *LAD) SlopeVariance() (float64, error) {
	s2, err := l.ResidualVariance()
	if err != nil {
		return 0, err
	}
	_, sxx := l.win.xMoments()
	if sxx <= 0 {
		return 0, ErrInsufficient
	}
	return s2 / sxx, nil
}

// SubtractLine re-expresses the retained samples against a corrected
// clock: yᵢ ← yᵢ − (a + b·xᵢ).
func (l *LAD) SubtractLine(a, b float64) {
	l.win.subtractLine(a, b)
	l.dirty = true
}

var _ Estimator = (*LAD)(nil)
