package trend

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFitExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 7
	}
	l, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Slope, 2.5, 1e-12) || !almost(l.Intercept, -7, 1e-12) {
		t.Errorf("line = %+v, want slope 2.5 intercept -7", l)
	}
	if !almost(l.At(10), 18, 1e-12) {
		t.Errorf("At(10) = %v, want 18", l.At(10))
	}
}

func TestFitterIncrementalMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var f Fitter
	xs := make([]float64, 200)
	ys := make([]float64, 200)
	for i := range xs {
		xs[i] = float64(i) * 5
		ys[i] = 0.0001*xs[i] + 0.003 + rng.NormFloat64()*0.002
		f.Add(xs[i], ys[i])
	}
	batch, err := Fit(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	inc, err := f.Line()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(batch.Slope, inc.Slope, 1e-12) || !almost(batch.Intercept, inc.Intercept, 1e-9) {
		t.Errorf("incremental %+v vs batch %+v", inc, batch)
	}
}

func TestFitInsufficient(t *testing.T) {
	var f Fitter
	if _, err := f.Line(); err != ErrInsufficient {
		t.Errorf("empty fitter err = %v", err)
	}
	f.Add(1, 1)
	if _, err := f.Line(); err != ErrInsufficient {
		t.Errorf("one-sample fitter err = %v", err)
	}
	// All x identical: vertical line, undetermined.
	var g Fitter
	g.Add(3, 1)
	g.Add(3, 2)
	g.Add(3, 3)
	if _, err := g.Line(); err != ErrInsufficient {
		t.Errorf("degenerate-x fitter err = %v", err)
	}
}

func TestFitMismatchedLengths(t *testing.T) {
	if _, err := Fit([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestFitRecoverKnownDrift(t *testing.T) {
	// A clock drifting at 12 ppm sampled every 5 s with ±1 ms jitter:
	// the fitted slope must recover the drift within 2 ppm.
	rng := rand.New(rand.NewSource(7))
	const drift = 12e-6
	var f Fitter
	for i := 0; i < 720; i++ {
		x := float64(i) * 5
		y := drift*x + 0.010 + rng.NormFloat64()*0.001
		f.Add(x, y)
	}
	l, err := f.Line()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Slope, drift, 2e-6) {
		t.Errorf("recovered drift %v, want %v±2ppm", l.Slope, drift)
	}
}

func TestResidualTrackerGate(t *testing.T) {
	r := NewResidualTracker(1e-6, 0)
	// Before any residuals, the gate is the floor.
	if got := r.Gate(); got != 1e-6 {
		t.Errorf("initial gate = %v", got)
	}
	if !r.Admits(1e-7) {
		t.Error("sub-floor error rejected at start")
	}
	// Record uniform small residuals: gate stays near them (plus floor).
	for i := 0; i < 20; i++ {
		r.Accept(4e-6)
	}
	// mean 4e-6, std 0 -> gate 4e-6.
	if got := r.Gate(); !almost(got, 4e-6, 1e-12) {
		t.Errorf("uniform gate = %v, want 4e-6", got)
	}
	if r.Admits(1e-3) {
		t.Error("large outlier admitted")
	}
	if !r.Admits(4e-6) {
		t.Error("typical residual rejected")
	}
}

func TestResidualTrackerWindow(t *testing.T) {
	r := NewResidualTracker(0, 3)
	for i := 1; i <= 10; i++ {
		r.Accept(float64(i))
	}
	if r.N() != 3 {
		t.Errorf("window length = %d, want 3", r.N())
	}
	// Window holds {8,9,10}: mean 9, std sqrt(2/3).
	want := 9 + math.Sqrt(2.0/3.0)
	if got := r.Gate(); !almost(got, want, 1e-12) {
		t.Errorf("windowed gate = %v, want %v", got, want)
	}
}

// Property: the least-squares line passes through the centroid.
func TestQuickLineThroughCentroid(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		var fit Fitter
		var sx, sy float64
		n := 0
		for i := 0; i+1 < len(raw); i += 2 {
			x, y := raw[i], raw[i+1]
			if math.IsNaN(x) || math.IsNaN(y) || math.IsInf(x, 0) || math.IsInf(y, 0) ||
				math.Abs(x) > 1e6 || math.Abs(y) > 1e6 {
				continue
			}
			fit.Add(x, y)
			sx += x
			sy += y
			n++
		}
		l, err := fit.Line()
		if err != nil {
			return true // degenerate inputs are allowed to fail
		}
		cx, cy := sx/float64(n), sy/float64(n)
		return almost(l.At(cx), cy, 1e-6*(1+math.Abs(cy)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: fitting y = a + b·x exactly recovers a and b for any
// reasonable a, b and at least two distinct xs.
func TestQuickExactRecovery(t *testing.T) {
	f := func(aRaw, bRaw int16, n uint8) bool {
		a := float64(aRaw) / 100
		b := float64(bRaw) / 1000
		m := int(n%20) + 2
		var fit Fitter
		for i := 0; i < m; i++ {
			x := float64(i)
			fit.Add(x, a+b*x)
		}
		l, err := fit.Line()
		if err != nil {
			return false
		}
		return almost(l.Slope, b, 1e-9) && almost(l.Intercept, a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the gate never drops below the floor.
func TestQuickGateFloor(t *testing.T) {
	f := func(res []float64, floorRaw uint16) bool {
		floor := float64(floorRaw) / 1e6
		r := NewResidualTracker(floor, 0)
		for _, s := range res {
			if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
				continue
			}
			r.Accept(s)
		}
		return r.Gate() >= floor
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubtractLineMatchesExplicit(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	var f Fitter
	for i := range xs {
		xs[i] = float64(i) * 3
		ys[i] = 0.5*xs[i] + 2 + rng.NormFloat64()
		f.Add(xs[i], ys[i])
	}
	const a, b = 1.5, 0.2
	f.SubtractLine(a, b)
	var g Fitter
	for i := range xs {
		g.Add(xs[i], ys[i]-(a+b*xs[i]))
	}
	lf, err1 := f.Line()
	lg, err2 := g.Line()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !almost(lf.Slope, lg.Slope, 1e-9) || !almost(lf.Intercept, lg.Intercept, 1e-9) {
		t.Errorf("SubtractLine %+v vs explicit %+v", lf, lg)
	}
}

func TestSubtractLineFlattensOwnFit(t *testing.T) {
	var f Fitter
	for i := 0; i < 20; i++ {
		x := float64(i)
		f.Add(x, 3*x+7)
	}
	l, _ := f.Line()
	f.SubtractLine(l.Intercept, l.Slope)
	l2, err := f.Line()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l2.Slope, 0, 1e-9) || !almost(l2.Intercept, 0, 1e-9) {
		t.Errorf("after subtracting own fit: %+v, want zero line", l2)
	}
}
