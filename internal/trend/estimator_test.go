package trend

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// TestFitterTranslationInvariance is the regression test for the
// centered-update bugfix: identical data fitted at x origins 0 and
// 1e6 s (hours of uptime expressed as elapsed seconds) must produce
// the same slope and residual variance. The previous raw-sum
// formulation lost ~all significant digits of n·Σx² − (Σx)² at the
// shifted origin.
func TestFitterTranslationInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 300
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * 5
		ys[i] = 30e-6*xs[i] + 0.004 + rng.NormFloat64()*0.002
	}
	var at0, at1e6 Fitter
	const shift = 1e6
	for i := range xs {
		at0.Add(xs[i], ys[i])
		at1e6.Add(xs[i]+shift, ys[i])
	}
	l0, err0 := at0.Line()
	l1, err1 := at1e6.Line()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	if !almost(l0.Slope, l1.Slope, 1e-9) {
		t.Errorf("slope at origin 0 = %v, at origin 1e6 = %v (diff %g)",
			l0.Slope, l1.Slope, math.Abs(l0.Slope-l1.Slope))
	}
	v0, err0 := at0.ResidualVariance()
	v1, err1 := at1e6.ResidualVariance()
	if err0 != nil || err1 != nil {
		t.Fatal(err0, err1)
	}
	if !almost(v0, v1, 1e-9) {
		t.Errorf("residual variance at origin 0 = %v, at origin 1e6 = %v", v0, v1)
	}
	// The predicted line must agree at corresponding points.
	if !almost(l0.At(1500), l1.At(1500+shift), 1e-9) {
		t.Errorf("prediction at x=1500: %v vs %v", l0.At(1500), l1.At(1500+shift))
	}
	pv0, _ := at0.PredictVariance(1500)
	pv1, _ := at1e6.PredictVariance(1500 + shift)
	if !almost(pv0, pv1, 1e-9) {
		t.Errorf("prediction variance: %v vs %v", pv0, pv1)
	}
}

func TestParseKind(t *testing.T) {
	for in, want := range map[string]Kind{
		"":          KindLeastSquares,
		"lsq":       KindLeastSquares,
		"theilsen":  KindTheilSen,
		"theil-sen": KindTheilSen,
		"lad":       KindLAD,
		"l1":        KindLAD,
	} {
		got, err := ParseKind(in)
		if err != nil || got != want {
			t.Errorf("ParseKind(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseKind("kalman"); err == nil {
		t.Error("unknown kind accepted")
	}
}

// everyEstimator runs the subtest under each implementation.
func everyEstimator(t *testing.T, f func(t *testing.T, kind Kind, est Estimator)) {
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			f(t, kind, NewEstimator(kind, 64, 1e-4))
		})
	}
}

// TestEstimatorsRecoverCleanLine: on outlier-free noisy data every
// estimator recovers the generating slope and intercept.
func TestEstimatorsRecoverCleanLine(t *testing.T) {
	everyEstimator(t, func(t *testing.T, kind Kind, est Estimator) {
		rng := rand.New(rand.NewSource(5))
		const slope, intercept = 40e-6, 0.012
		for i := 0; i < 60; i++ {
			x := float64(i) * 10
			est.Add(x, slope*x+intercept+rng.NormFloat64()*0.001)
		}
		l, err := est.Line()
		if err != nil {
			t.Fatal(err)
		}
		if !almost(l.Slope, slope, 10e-6) {
			t.Errorf("slope = %v, want %v±10ppm", l.Slope, slope)
		}
		if !almost(l.Intercept, intercept, 0.002) {
			t.Errorf("intercept = %v, want %v", l.Intercept, intercept)
		}
		if _, err := est.ResidualVariance(); err != nil {
			t.Errorf("ResidualVariance: %v", err)
		}
		if pv, err := est.PredictVariance(600); err != nil || pv <= 0 {
			t.Errorf("PredictVariance = %v, %v", pv, err)
		}
		if sv, err := est.SlopeVariance(); err != nil || sv <= 0 {
			t.Errorf("SlopeVariance = %v, %v", sv, err)
		}
	})
}

// TestEstimatorsInsufficient: degenerate inputs report ErrInsufficient
// uniformly.
func TestEstimatorsInsufficient(t *testing.T) {
	everyEstimator(t, func(t *testing.T, kind Kind, est Estimator) {
		if _, err := est.Line(); err != ErrInsufficient {
			t.Errorf("empty Line err = %v", err)
		}
		est.Add(3, 1)
		if _, err := est.Line(); err != ErrInsufficient {
			t.Errorf("one-sample Line err = %v", err)
		}
		est.Add(3, 2)
		est.Add(3, 3)
		if _, err := est.Line(); err != ErrInsufficient {
			t.Errorf("identical-x Line err = %v", err)
		}
		if _, err := est.PredictVariance(5); err != ErrInsufficient {
			t.Errorf("identical-x PredictVariance err = %v", err)
		}
	})
}

// TestRobustEstimatorsShrugOffOutliers: a least-squares fit is visibly
// dragged by a 20% contamination of +200 ms asymmetric-delay spikes;
// Theil-Sen and LAD must stay within a few ppm of the true drift.
func TestRobustEstimatorsShrugOffOutliers(t *testing.T) {
	const slope = 20e-6
	feed := func(est Estimator) {
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 50; i++ {
			x := float64(i) * 10
			y := slope*x + rng.NormFloat64()*0.0005
			if i%5 == 4 {
				y -= 0.200 // asymmetric uplink spike biases the offset low
			}
			est.Add(x, y)
		}
	}
	var ls Fitter
	feed(&ls)
	lsLine, err := ls.Line()
	if err != nil {
		t.Fatal(err)
	}
	lsErr := math.Abs(lsLine.Slope - slope)

	for _, kind := range []Kind{KindTheilSen, KindLAD} {
		est := NewEstimator(kind, 64, 1e-4)
		feed(est)
		l, err := est.Line()
		if err != nil {
			t.Fatal(kind, err)
		}
		robErr := math.Abs(l.Slope - slope)
		if robErr > 5e-6 {
			t.Errorf("%s slope = %v, want %v±5ppm under contamination", kind, l.Slope, slope)
		}
		if robErr*2 > lsErr {
			t.Errorf("%s slope error %v not clearly better than least-squares %v", kind, robErr, lsErr)
		}
	}
}

// TestEstimatorsSubtractLine: SubtractLine must re-express history for
// every implementation the way an explicit rebuild would.
func TestEstimatorsSubtractLine(t *testing.T) {
	everyEstimator(t, func(t *testing.T, kind Kind, est Estimator) {
		rng := rand.New(rand.NewSource(23))
		xs := make([]float64, 40)
		ys := make([]float64, 40)
		for i := range xs {
			xs[i] = float64(i) * 7
			ys[i] = 0.3*xs[i] + 2 + rng.NormFloat64()*0.1
			est.Add(xs[i], ys[i])
		}
		const a, b = 1.25, 0.05
		est.SubtractLine(a, b)
		ref := NewEstimator(kind, 64, 1e-4)
		for i := range xs {
			ref.Add(xs[i], ys[i]-(a+b*xs[i]))
		}
		got, err1 := est.Line()
		want, err2 := ref.Line()
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !almost(got.Slope, want.Slope, 1e-9) || !almost(got.Intercept, want.Intercept, 1e-8) {
			t.Errorf("SubtractLine %+v vs rebuilt %+v", got, want)
		}
	})
}

// TestTheilSenWindowBound: the window drops the oldest samples.
func TestTheilSenWindowBound(t *testing.T) {
	est := NewTheilSen(8, 0)
	for i := 0; i < 20; i++ {
		est.Add(float64(i), float64(i)*2)
	}
	if est.N() != 8 {
		t.Errorf("window occupancy = %d, want 8", est.N())
	}
	l, err := est.Line()
	if err != nil || !almost(l.Slope, 2, 1e-12) {
		t.Errorf("windowed fit = %+v, %v", l, err)
	}
}

// TestTheilSenRegimeChangeDropsStale: after a step change in the data
// the error-driven dropping must re-anchor the fit on the new regime
// within a few samples, instead of oscillating while the stale
// majority ages out one sample at a time.
func TestTheilSenRegimeChangeDropsStale(t *testing.T) {
	est := NewTheilSen(32, 1e-4)
	rng := rand.New(rand.NewSource(31))
	x := 0.0
	for i := 0; i < 32; i++ { // old regime: flat at 0
		est.Add(x, rng.NormFloat64()*0.0002)
		x += 10
	}
	before := est.N()
	for i := 0; i < dropStreak; i++ { // new regime: flat at 50 ms
		est.Add(x, 0.050+rng.NormFloat64()*0.0002)
		x += 10
	}
	if est.N() >= before+dropStreak {
		t.Fatalf("no samples dropped after %d-outlier streak (N=%d)", dropStreak, est.N())
	}
	// A few more new-regime samples: the fit must now track 50 ms.
	for i := 0; i < 8; i++ {
		est.Add(x, 0.050+rng.NormFloat64()*0.0002)
		x += 10
	}
	l, err := est.Line()
	if err != nil {
		t.Fatal(err)
	}
	if got := l.At(x); math.Abs(got-0.050) > 0.010 {
		t.Errorf("post-regime-change prediction = %v, want ~0.050", got)
	}
}

// TestLADExactOnCleanLine: on perfectly linear data the IRLS must
// return the exact line (the LS initialization already solves it).
func TestLADExactOnCleanLine(t *testing.T) {
	est := NewLAD(32, 1e-6)
	for i := 0; i < 10; i++ {
		x := float64(i)
		est.Add(x, 3*x-1)
	}
	l, err := est.Line()
	if err != nil {
		t.Fatal(err)
	}
	if !almost(l.Slope, 3, 1e-9) || !almost(l.Intercept, -1, 1e-9) {
		t.Errorf("LAD on exact line = %+v", l)
	}
}

// TestNewEstimatorDefaults: the factory falls back to least squares
// on empty/unknown kinds and applies the default window.
func TestNewEstimatorDefaults(t *testing.T) {
	if _, ok := NewEstimator("", 0, 0).(*Fitter); !ok {
		t.Error("empty kind did not fall back to Fitter")
	}
	if _, ok := NewEstimator("nonsense", 0, 0).(*Fitter); !ok {
		t.Error("unknown kind did not fall back to Fitter")
	}
	ts, ok := NewEstimator(KindTheilSen, 0, 0).(*TheilSen)
	if !ok {
		t.Fatal("KindTheilSen did not build a TheilSen")
	}
	if ts.win.max != DefaultWindow {
		t.Errorf("default window = %d, want %d", ts.win.max, DefaultWindow)
	}
	if _, ok := NewEstimator(KindLAD, 16, 0).(*LAD); !ok {
		t.Error("KindLAD did not build a LAD")
	}
}

// BenchmarkEstimatorAddFit is the package-local microbenchmark of a
// steady-state Add+Line round (the root-level BenchmarkEstimatorFit
// sweeps window sizes for the CI smoke leg).
func BenchmarkEstimatorAddFit(b *testing.B) {
	for _, kind := range Kinds() {
		b.Run(fmt.Sprintf("%s", kind), func(b *testing.B) {
			est := NewEstimator(kind, 32, 1e-4)
			rng := rand.New(rand.NewSource(1))
			x := 0.0
			for i := 0; i < 32; i++ {
				est.Add(x, 1e-5*x+rng.NormFloat64()*0.001)
				x += 10
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				est.Add(x, 1e-5*x+rng.NormFloat64()*0.001)
				x += 10
				if _, err := est.Line(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
