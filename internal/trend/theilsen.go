// Theil-Sen trend estimation: the slope is the median of the slopes
// of all sample pairs, the intercept the median of the per-sample
// intercepts under that slope. A single asymmetric-delay outlier —
// the failure mode that drags a least-squares fit — moves at most
// (n−1) of the n·(n−1)/2 pairwise slopes, so the median barely moves:
// the estimator has a 29.3% breakdown point.
//
// The known failure mode of a *windowed* Theil-Sen (documented for
// chrony's regression machinery) is oscillation after a regime
// change: when the window straddles a clock step or frequency change,
// the median slope is anchored by the stale majority, every new
// sample looks like an outlier against it, and the fit swings as the
// stale samples age out one per round. The countermeasure implemented
// here is error-driven sample dropping: when several consecutive new
// samples land far outside the fit's robust residual scale, the
// oldest half of the window is discarded so the fit re-anchors on
// recent data at once instead of oscillating through the churn.

package trend

// Dropping parameters: a sample more than dropK robust standard
// deviations off the fit is an outlier; dropStreak consecutive
// outliers are treated as a regime change rather than noise.
const (
	dropK      = 4.0
	dropStreak = 3
)

// TheilSen is a windowed Theil-Sen estimator implementing Estimator.
type TheilSen struct {
	win        samples
	scaleFloor float64

	badStreak int

	// Cached fit, recomputed lazily after mutations.
	dirty   bool
	line    Line
	lineErr error
	scale2  float64 // robust residual variance of the cached fit

	slopes []float64 // scratch for pairwise slopes
}

// NewTheilSen creates a Theil-Sen estimator over a window of at most
// `window` samples. scaleFloor (y units) floors the residual scale
// used by the outlier-dropping rule — see NewEstimator.
func NewTheilSen(window int, scaleFloor float64) *TheilSen {
	return &TheilSen{
		win:        newSamples(window),
		scaleFloor: scaleFloor,
		dirty:      true,
		slopes:     make([]float64, 0, window*(window-1)/2),
	}
}

// Add incorporates the sample, applying the error-driven dropping
// rule first: a streak of dropStreak samples beyond dropK robust
// standard deviations of the current fit discards the oldest half of
// the window (the stale regime) before the new sample lands.
func (t *TheilSen) Add(x, y float64) {
	if line, err := t.fit(); err == nil {
		s2 := t.scale2
		if s2 > 0 {
			r := y - line.At(x)
			if r*r > dropK*dropK*s2 {
				t.badStreak++
				if t.badStreak >= dropStreak {
					t.win.dropOldest(t.win.n() / 2)
					t.badStreak = 0
				}
			} else {
				t.badStreak = 0
			}
		}
	}
	t.win.add(x, y)
	t.dirty = true
}

// N returns the window occupancy.
func (t *TheilSen) N() int { return t.win.n() }

// Line returns the current Theil-Sen line.
func (t *TheilSen) Line() (Line, error) { return t.fit() }

// fit returns the cached line, recomputing it when stale.
func (t *TheilSen) fit() (Line, error) {
	if !t.dirty {
		return t.line, t.lineErr
	}
	t.dirty = false
	n := t.win.n()
	if n < 2 {
		t.line, t.lineErr = Line{}, ErrInsufficient
		return t.line, t.lineErr
	}
	t.slopes = t.slopes[:0]
	xs, ys := t.win.xs, t.win.ys
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if dx := xs[j] - xs[i]; dx != 0 {
				t.slopes = append(t.slopes, (ys[j]-ys[i])/dx)
			}
		}
	}
	if len(t.slopes) == 0 {
		// All x identical: vertical data, undetermined.
		t.line, t.lineErr = Line{}, ErrInsufficient
		return t.line, t.lineErr
	}
	slope := median(t.slopes)
	// Intercept: median of yᵢ − slope·xᵢ, reusing the scratch slice.
	ints := t.slopes[:0]
	for i := 0; i < n; i++ {
		ints = append(ints, ys[i]-slope*xs[i])
	}
	t.line = Line{Slope: slope, Intercept: median(ints)}
	t.lineErr = nil
	t.scale2 = t.win.residualScale2(t.line, t.scaleFloor)
	return t.line, nil
}

// ResidualVariance returns the squared normalized MAD of the fit's
// residuals — the robust analog of least squares' s². Requires at
// least three samples.
func (t *TheilSen) ResidualVariance() (float64, error) {
	if t.win.n() < 3 {
		return 0, ErrInsufficient
	}
	if _, err := t.fit(); err != nil {
		return 0, err
	}
	return t.scale2, nil
}

// PredictVariance returns the prediction-interval variance at x,
// s²·(1 + 1/n + (x−x̄)²/Sxx), with the robust s².
func (t *TheilSen) PredictVariance(x float64) (float64, error) {
	s2, err := t.ResidualVariance()
	if err != nil {
		return 0, err
	}
	xbar, sxx := t.win.xMoments()
	if sxx <= 0 {
		return 0, ErrInsufficient
	}
	n := float64(t.win.n())
	return s2 * (1 + 1/n + (x-xbar)*(x-xbar)/sxx), nil
}

// SlopeVariance returns the robust analog of the slope's sampling
// variance, s²/Sxx.
func (t *TheilSen) SlopeVariance() (float64, error) {
	s2, err := t.ResidualVariance()
	if err != nil {
		return 0, err
	}
	_, sxx := t.win.xMoments()
	if sxx <= 0 {
		return 0, ErrInsufficient
	}
	return s2 / sxx, nil
}

// SubtractLine re-expresses the retained samples against a corrected
// clock: yᵢ ← yᵢ − (a + b·xᵢ).
func (t *TheilSen) SubtractLine(a, b float64) {
	t.win.subtractLine(a, b)
	t.dirty = true
}

var _ Estimator = (*TheilSen)(nil)
