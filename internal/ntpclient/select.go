package ntpclient

import (
	"time"

	"mntp/internal/exchange"
	"mntp/internal/sources"
)

// Candidate is one peer's filtered estimate entering selection.
type Candidate struct {
	Server string
	Sample exchange.Sample
	Jitter time.Duration
}

// correctness interval bounds.
func (c Candidate) lo() float64 {
	return c.Sample.Offset.Seconds() - rootDistance(c.Sample).Seconds()
}
func (c Candidate) hi() float64 {
	return c.Sample.Offset.Seconds() + rootDistance(c.Sample).Seconds()
}
func (c Candidate) mid() float64 { return c.Sample.Offset.Seconds() }

// Select runs the intersection (Marzullo-derived) algorithm of RFC
// 5905 §11.2.1 over the candidates' correctness intervals and returns
// the truechimers. Candidates outside the intersection are
// falsetickers. An empty result means no majority clique exists. The
// algorithm itself lives in internal/sources (the standalone
// selection layer shared with the source pool); this adapter builds
// the intervals from root distance.
func Select(cands []Candidate) []Candidate {
	ivals := make([]sources.Interval, len(cands))
	for i, c := range cands {
		ivals[i] = sources.Interval{Lo: c.lo(), Mid: c.mid(), Hi: c.hi()}
	}
	keep := sources.Marzullo(ivals)
	if keep == nil {
		return nil
	}
	survivors := make([]Candidate, len(keep))
	for k, i := range keep {
		survivors[k] = cands[i]
	}
	return survivors
}

// minClusterSurvivors is NMIN: cluster pruning stops at this many
// survivors.
const minClusterSurvivors = 3

// Cluster prunes the survivor list by select jitter per RFC 5905
// §11.2.2, delegating to the shared pruning in internal/sources:
// pruning stops once the spread between survivors is within the noise
// of the best peer.
func Cluster(surv []Candidate) []Candidate {
	mids := make([]float64, len(surv))
	jits := make([]float64, len(surv))
	for i, c := range surv {
		mids[i] = c.mid()
		jits[i] = c.Jitter.Seconds()
	}
	keep := sources.ClusterPrune(mids, jits, minClusterSurvivors)
	out := make([]Candidate, len(keep))
	for k, i := range keep {
		out[k] = surv[i]
	}
	return out
}

// Combine computes the final offset estimate as the weighted average
// of the survivors' offsets, weighted by inverse root distance (RFC
// 5905 §11.2.3).
func Combine(surv []Candidate) (time.Duration, bool) {
	if len(surv) == 0 {
		return 0, false
	}
	var num, den float64
	for _, c := range surv {
		w := 1 / rootDistance(c.Sample).Seconds()
		num += w * c.Sample.Offset.Seconds()
		den += w
	}
	return time.Duration(num / den * float64(time.Second)), true
}
