package ntpclient

import (
	"math"
	"sort"
	"time"

	"mntp/internal/exchange"
)

// Candidate is one peer's filtered estimate entering selection.
type Candidate struct {
	Server string
	Sample exchange.Sample
	Jitter time.Duration
}

// correctness interval bounds.
func (c Candidate) lo() float64 {
	return c.Sample.Offset.Seconds() - rootDistance(c.Sample).Seconds()
}
func (c Candidate) hi() float64 {
	return c.Sample.Offset.Seconds() + rootDistance(c.Sample).Seconds()
}
func (c Candidate) mid() float64 { return c.Sample.Offset.Seconds() }

// Select runs the intersection (Marzullo-derived) algorithm of RFC
// 5905 §11.2.1: it finds the largest set of candidates whose
// correctness intervals share an intersection containing a majority
// of midpoints, and returns those truechimers. Candidates outside the
// intersection are falsetickers. An empty result means no majority
// clique exists.
func Select(cands []Candidate) []Candidate {
	m := len(cands)
	if m == 0 {
		return nil
	}
	if m == 1 {
		return []Candidate{cands[0]}
	}

	type edge struct {
		val float64
		typ int // +1 = lower bound, 0 = midpoint, -1 = upper bound
	}
	edges := make([]edge, 0, 3*m)
	for _, c := range cands {
		edges = append(edges,
			edge{c.lo(), +1}, edge{c.mid(), 0}, edge{c.hi(), -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].val != edges[j].val {
			return edges[i].val < edges[j].val
		}
		// Lower bounds first, then midpoints, then upper bounds, so
		// touching intervals count as overlapping.
		return edges[i].typ > edges[j].typ
	})

	var low, high float64
	found := false
	for allow := 0; 2*allow < m; allow++ {
		// Scan up for the low endpoint: the point where at least
		// m−allow intervals are simultaneously active.
		chime := 0
		low, high = math.Inf(1), math.Inf(-1)
		for _, e := range edges {
			chime += e.typ
			if chime >= m-allow {
				low = e.val
				break
			}
		}
		// Scan down for the high endpoint.
		chime = 0
		for i := len(edges) - 1; i >= 0; i-- {
			chime -= edges[i].typ
			if chime >= m-allow {
				high = edges[i].val
				break
			}
		}
		if low <= high {
			// Require that no more than allow midpoints fall outside
			// [low, high] (the falseticker budget).
			outside := 0
			for _, c := range cands {
				if c.mid() < low || c.mid() > high {
					outside++
				}
			}
			if outside <= allow {
				found = true
				break
			}
		}
	}
	if !found {
		return nil
	}

	var survivors []Candidate
	for _, c := range cands {
		if c.hi() >= low && c.lo() <= high {
			survivors = append(survivors, c)
		}
	}
	return survivors
}

// minClusterSurvivors is NMIN: cluster pruning stops at this many
// survivors.
const minClusterSurvivors = 3

// Cluster prunes the survivor list by select jitter: while more than
// minClusterSurvivors remain, the candidate whose offset is most
// distant from the others (largest RMS distance) is discarded if its
// select jitter exceeds the smallest peer jitter — i.e. pruning stops
// once the spread between survivors is within the noise of the best
// peer, per RFC 5905 §11.2.2.
func Cluster(surv []Candidate) []Candidate {
	out := make([]Candidate, len(surv))
	copy(out, surv)
	for len(out) > minClusterSurvivors {
		worst, worstJit := -1, -1.0
		minPeerJit := math.Inf(1)
		for i, c := range out {
			var sum float64
			for j, d := range out {
				if i == j {
					continue
				}
				diff := (c.Sample.Offset - d.Sample.Offset).Seconds()
				sum += diff * diff
			}
			selJit := math.Sqrt(sum / float64(len(out)-1))
			if selJit > worstJit {
				worstJit, worst = selJit, i
			}
			if pj := c.Jitter.Seconds(); pj < minPeerJit {
				minPeerJit = pj
			}
		}
		if worstJit <= minPeerJit {
			break
		}
		out = append(out[:worst], out[worst+1:]...)
	}
	return out
}

// Combine computes the final offset estimate as the weighted average
// of the survivors' offsets, weighted by inverse root distance (RFC
// 5905 §11.2.3).
func Combine(surv []Candidate) (time.Duration, bool) {
	if len(surv) == 0 {
		return 0, false
	}
	var num, den float64
	for _, c := range surv {
		w := 1 / rootDistance(c.Sample).Seconds()
		num += w * c.Sample.Offset.Seconds()
		den += w
	}
	return time.Duration(num / den * float64(time.Second)), true
}
