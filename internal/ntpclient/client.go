package ntpclient

import (
	"errors"
	"math/rand"
	"time"

	"mntp/internal/clock"
	"mntp/internal/discipline"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/sources"
	"mntp/internal/sysclock"
	"mntp/internal/trend"
)

// Config parameterizes the full NTP client.
type Config struct {
	// Servers are the references to poll (ntpd typically uses 3–4).
	Servers []string
	// MinPoll and MaxPoll bound the adaptive poll interval
	// (defaults 16 s and 1024 s).
	MinPoll, MaxPoll time.Duration
	// StepThreshold is the offset magnitude beyond which the clock is
	// stepped rather than slewed (default 128 ms, ntpd's STEPT).
	StepThreshold time.Duration
	// PanicThreshold refuses offsets beyond it once the clock has
	// been disciplined (default 1000 s, ntpd's PANICT — but instead
	// of exiting like ntpd, the round reports Update.Panicked and
	// the clock is left alone; negative disables the gate).
	PanicThreshold time.Duration
	// FreqClamp bounds the absolute frequency correction
	// (default 500 ppm, ntpd's maximum, shared with
	// internal/discipline and internal/driftfile).
	FreqClamp float64
	// InitialFreq seeds the frequency correction (seconds per
	// second), like ntpd's drift file: a host that has run NTP before
	// starts with its oscillator error mostly pre-compensated.
	InitialFreq float64
	// DriftEstimator selects the trend estimator behind
	// DriftEstimate, the client's observability-only residual-drift
	// readout (empty means least squares; see internal/trend).
	DriftEstimator trend.Kind
	// DriftWindow bounds the drift estimator's sample history
	// (default trend.DefaultWindow for the robust estimators).
	DriftWindow int
	// PollJitter randomizes Update.Poll by ± this fraction (default
	// 0.1) so a fleet of clients sharing a cold-start instant cannot
	// phase-lock on the pool (ntpd's poll randomization serves the
	// same purpose). PollInterval() stays exact — the jitter is
	// applied to each round's returned wait, not to the adaptive
	// interval state.
	PollJitter float64
	// DisablePollJitter pins Update.Poll to the exact adaptive
	// interval, for determinism-sensitive tests.
	DisablePollJitter bool
	// JitterSeed seeds the poll-jitter randomness (0 = fixed default).
	JitterSeed int64
}

func (c *Config) applyDefaults() {
	if c.MinPoll == 0 {
		c.MinPoll = 16 * time.Second
	}
	if c.MaxPoll == 0 {
		c.MaxPoll = 1024 * time.Second
	}
	if c.StepThreshold == 0 {
		c.StepThreshold = 128 * time.Millisecond
	}
	if c.PanicThreshold == 0 {
		c.PanicThreshold = 1000 * time.Second
	}
	if c.FreqClamp == 0 {
		c.FreqClamp = discipline.MaxFreq
	}
	if c.PollJitter == 0 {
		c.PollJitter = 0.1
	}
	if c.PollJitter > 0.5 {
		c.PollJitter = 0.5
	}
}

// Update is the outcome of one poll round.
type Update struct {
	// Offset is the combined clock offset estimate.
	Offset time.Duration
	// Survivors and Falsetickers count the selection outcome.
	Survivors, Falsetickers int
	// Applied reports whether the discipline adjusted the clock.
	Applied bool
	// Stepped reports whether the adjustment was a step (vs slew).
	Stepped bool
	// Panicked reports that the offset exceeded the panic threshold
	// and the discipline refused to apply it.
	Panicked bool
	// Poll is the interval until the next round.
	Poll time.Duration
}

// ErrNoConsensus is returned when selection finds no majority clique
// of agreeing servers.
var ErrNoConsensus = errors.New("ntpclient: no server consensus")

// Client is a full NTP client disciplining an adjustable clock.
type Client struct {
	Clock     clock.Adjustable
	Transport exchange.Transport
	Config    Config

	peers map[string]*peerFilter
	// pool tracks per-server health: the reachability register,
	// smoothed delay/jitter, kiss-of-death hold-downs (replacing the
	// old fixed demobilization map) and falseticker demotions from
	// selection. The client performs its own exchanges — the pool is
	// fed through its Report methods.
	pool *sources.Pool
	// disc gates every clock correction: step-vs-slew (slew gain 1/2
	// emulates the old half-offset nudge), the panic threshold and
	// the shared frequency clamp.
	disc *discipline.Discipline
	// discipline state
	freq     float64 // accumulated frequency correction (s/s)
	pollExp  int     // current poll interval = MinPoll << pollExp
	lastTime time.Time
	haveLast bool
	// drift fits combined offsets against elapsed time for the
	// DriftEstimate readout: residual drift the PLL has not yet
	// absorbed. Observability only — it never gates a correction.
	drift      trend.Estimator
	driftEpoch time.Time
	haveDrift  bool
	// jrng draws the per-round poll jitter (seeded, so simulations
	// stay reproducible).
	jrng *rand.Rand
}

// driftScaleFloor is the drift estimator's residual scale floor in
// seconds (1 ms — below typical wired-path jitter, so the robust
// estimators never mistake clean history for an all-outlier window).
const driftScaleFloor = 1e-3

// New creates a client with defaults applied.
func New(clk clock.Adjustable, tr exchange.Transport, cfg Config) *Client {
	cfg.applyDefaults()
	c := &Client{
		Clock: clk, Transport: tr, Config: cfg,
		peers: make(map[string]*peerFilter),
		pool: sources.New(clk, nil, sources.Config{
			Servers:     cfg.Servers,
			FullNTP:     true,
			KoDBaseHold: demobilizePeriod,
		}),
	}
	jseed := cfg.JitterSeed
	if jseed == 0 {
		jseed = 0x6e747063
	}
	c.jrng = rand.New(rand.NewSource(jseed))
	c.drift = trend.NewEstimator(cfg.DriftEstimator, cfg.DriftWindow, driftScaleFloor)
	c.disc = discipline.New(sysclock.SimAdjuster{Clock: clk}, discipline.Config{
		StepThreshold:  cfg.StepThreshold,
		PanicThreshold: cfg.PanicThreshold,
		SlewGain:       0.5,
		FreqClamp:      cfg.FreqClamp,
	})
	if cfg.InitialFreq != 0 {
		// Through the gate, so a corrupt drift-file value is clamped
		// to the shared ±500 ppm bound before touching the clock.
		c.freq, _ = c.disc.SetFreq(cfg.InitialFreq)
	}
	for _, s := range cfg.Servers {
		c.peers[s] = &peerFilter{}
	}
	return c
}

// PollInterval returns the current adaptive poll interval.
func (c *Client) PollInterval() time.Duration {
	iv := c.Config.MinPoll << uint(c.pollExp)
	if iv > c.Config.MaxPoll {
		iv = c.Config.MaxPoll
	}
	return iv
}

// nextPoll returns the adaptive interval randomized by ±PollJitter —
// the wait Update.Poll reports, de-phasing fleets of clients.
func (c *Client) nextPoll() time.Duration {
	iv := c.PollInterval()
	j := c.Config.PollJitter
	if c.Config.DisablePollJitter || j <= 0 {
		return iv
	}
	span := time.Duration(float64(iv) * j)
	if span <= 0 {
		return iv
	}
	return iv - span + time.Duration(c.jrng.Int63n(int64(2*span)+1))
}

// demobilizePeriod is the base hold-down for a server answering with
// kiss-of-death (RFC 5905 requires demobilization); repeated KoDs
// extend it exponentially via the source pool.
const demobilizePeriod = 1 * time.Hour

// Poll performs one round: query every server the pool deems
// eligible, filter, select, cluster, combine and discipline the
// clock. Individual server failures are tolerated and recorded in
// the pool's health state; a kiss-of-death reply puts the peer into
// exponential hold-down. The round fails only if no server answers
// or selection finds no consensus.
func (c *Client) Poll() (Update, error) {
	var cands []Candidate
	for _, server := range c.pool.EligibleNames() {
		s, err := exchange.Measure(c.Clock, c.Transport, server, ntppkt.Version4, false)
		if err != nil {
			c.pool.ReportError(server, err)
			continue
		}
		c.pool.ReportSample(server, s)
		pf := c.peers[server]
		pf.add(s)
		best, jitter, ok := pf.best()
		if !ok {
			continue
		}
		best = agedSample(best, c.Clock.Now())
		cands = append(cands, Candidate{Server: server, Sample: best, Jitter: jitter})
	}
	if len(cands) == 0 {
		return Update{Poll: c.nextPoll()}, errors.New("ntpclient: all servers unreachable")
	}

	surv := Select(cands)
	if len(surv) == 0 {
		return Update{Poll: c.nextPoll()}, ErrNoConsensus
	}
	c.markSelection(cands, surv)
	surv = Cluster(surv)
	offset, _ := Combine(surv)

	u := Update{
		Offset:       offset,
		Survivors:    len(surv),
		Falsetickers: len(cands) - len(surv),
	}
	c.discipline(offset, &u)
	c.adaptPoll(offset, surv)
	u.Poll = c.nextPoll()
	return u, nil
}

// markSelection feeds the selection outcome back into the pool's
// health state: survivors decay their falseticker demotion, flagged
// candidates accumulate it (and sink in the ranking).
func (c *Client) markSelection(cands, surv []Candidate) {
	inSurv := make(map[string]bool, len(surv))
	survNames := make([]string, 0, len(surv))
	for _, s := range surv {
		inSurv[s.Server] = true
		survNames = append(survNames, s.Server)
	}
	var falseNames []string
	for _, cd := range cands {
		if !inSurv[cd.Server] {
			falseNames = append(falseNames, cd.Server)
		}
	}
	c.pool.MarkResult(survNames, falseNames)
}

// PoolStatus returns a health snapshot of every configured server
// (reach register, smoothed delay/jitter, KoD hold-down, falseticker
// demotion) for observability.
func (c *Client) PoolStatus() []sources.SourceStatus {
	return c.pool.Status()
}

// discipline applies the offset to the clock through the discipline
// gate: a step beyond the step threshold, a refusal beyond the panic
// threshold, otherwise a phase nudge (half the offset, via the gate's
// slew gain) plus an integral frequency correction (a first-order
// PLL).
func (c *Client) discipline(offset time.Duration, u *Update) {
	now := c.Clock.Now()
	res := c.disc.Apply(offset, now)
	switch res.Action {
	case discipline.ActionPanic:
		// An implausible jump after the clock has been disciplined:
		// refuse it and keep the filter history — if it is real, it
		// will persist and the caller can decide to restart.
		u.Panicked = true
		return
	case discipline.ActionStepped:
		// A step invalidates phase history and every sample in the
		// peer filters (their offsets were measured against the
		// pre-step clock); ntpd likewise clears its registers.
		c.haveLast = false
		c.drift = trend.NewEstimator(c.Config.DriftEstimator, c.Config.DriftWindow, driftScaleFloor)
		c.haveDrift = false
		for _, pf := range c.peers {
			*pf = peerFilter{}
		}
		u.Applied, u.Stepped = true, true
		return
	}
	// Record the measured offset for the drift readout before the
	// correction lands, then re-express the history against the
	// adjusted clock (same bookkeeping as the peer filters below).
	if !c.haveDrift {
		c.driftEpoch = now
		c.haveDrift = true
	}
	c.drift.Add(now.Sub(c.driftEpoch).Seconds(), offset.Seconds())
	c.drift.SubtractLine(res.Applied.Seconds(), 0)
	// Slewed: half the measured offset was applied immediately (the
	// remainder is absorbed by subsequent rounds, emulating ntpd's
	// gradual slew without sub-second simulation ticks). The filter
	// registers are re-expressed against the adjusted clock so the
	// same error is never corrected twice.
	for _, pf := range c.peers {
		pf.shiftOffsets(res.Applied)
	}
	// Frequency: PLL integral term, freq += θ·μ/(4·τ²) with the time
	// constant τ floored at 64 s so measurement noise at short poll
	// intervals does not random-walk the frequency (RFC 5905 §11.3).
	// The gate clamps the accumulated value to the shared ±500 ppm.
	if c.haveLast {
		dt := now.Sub(c.lastTime).Seconds()
		if dt > 0 {
			tc := dt
			if tc < 64 {
				tc = 64
			}
			prev := c.freq
			c.freq += offset.Seconds() * dt / (4 * tc * tc)
			c.freq, _ = c.disc.SetFreq(c.freq)
			// A frequency trim of df at elapsed x0 removes df·(x − x0)
			// from future measured offsets; re-express the drift
			// history the same way so its slope stays the residual.
			if df := c.freq - prev; df != 0 {
				x0 := now.Sub(c.driftEpoch).Seconds()
				c.drift.SubtractLine(-df*x0, df)
			}
		}
	}
	c.lastTime = now
	c.haveLast = true
	u.Applied = true
}

// adaptPoll widens the poll interval while the loop is quiet and
// narrows it when offsets grow relative to the survivors' jitter.
func (c *Client) adaptPoll(offset time.Duration, surv []Candidate) {
	var maxJitter time.Duration
	for _, s := range surv {
		if s.Jitter > maxJitter {
			maxJitter = s.Jitter
		}
	}
	if maxJitter < time.Millisecond {
		maxJitter = time.Millisecond
	}
	abs := offset
	if abs < 0 {
		abs = -abs
	}
	maxExp := 0
	for iv := c.Config.MinPoll; iv < c.Config.MaxPoll; iv <<= 1 {
		maxExp++
	}
	if abs < 4*maxJitter {
		if c.pollExp < maxExp {
			c.pollExp++
		}
	} else if c.pollExp > 0 {
		c.pollExp--
	}
}

// FreqCorrection returns the accumulated frequency correction (for
// observability in experiments).
func (c *Client) FreqCorrection() float64 { return c.freq }

// DriftEstimate returns the residual drift (seconds of offset per
// second of elapsed time) the configured trend estimator sees in the
// combined offsets the discipline has not yet absorbed, and whether
// enough post-step history exists to fit it. Observability only.
func (c *Client) DriftEstimate() (float64, bool) {
	line, err := c.drift.Line()
	if err != nil {
		return 0, false
	}
	return line.Slope, true
}

// Sleeper is the waiting abstraction (satisfied by netsim.Proc and
// sntp.WallSleeper).
type Sleeper interface {
	Sleep(d time.Duration)
}

// Run polls in a loop until the sleeper's process is stopped (in
// simulation) or forever (wall time), disciplining the clock each
// round. onRound, if non-nil, observes every update.
func (c *Client) Run(sl Sleeper, onRound func(Update, error)) {
	for {
		u, err := c.Poll()
		if onRound != nil {
			onRound(u, err)
		}
		sl.Sleep(u.Poll)
	}
}
