package ntpclient

import (
	"testing"
	"time"

	"mntp/internal/exchange"
)

// cand builds a Candidate with the given offset and root-distance
// contributions (delay only; root fields zero).
func cand(server string, offsetMs, delayMs float64) Candidate {
	return Candidate{
		Server: server,
		Sample: exchange.Sample{
			Server: server,
			Offset: time.Duration(offsetMs * float64(time.Millisecond)),
			Delay:  time.Duration(delayMs * float64(time.Millisecond)),
		},
		Jitter: time.Millisecond,
	}
}

func names(cs []Candidate) map[string]bool {
	m := make(map[string]bool, len(cs))
	for _, c := range cs {
		m[c.Server] = true
	}
	return m
}

func TestSelectEmptyAndSingle(t *testing.T) {
	if got := Select(nil); got != nil {
		t.Errorf("empty select = %v", got)
	}
	one := []Candidate{cand("a", 5, 10)}
	if got := Select(one); len(got) != 1 || got[0].Server != "a" {
		t.Errorf("single select = %v", got)
	}
}

func TestSelectRejectsFalseTicker(t *testing.T) {
	// Three servers agree near 0; one is 500 ms off with a tight
	// interval: a classic falseticker.
	cands := []Candidate{
		cand("good1", 1, 20),
		cand("good2", -2, 24),
		cand("good3", 3, 30),
		cand("false", 500, 10),
	}
	surv := Select(cands)
	got := names(surv)
	if !got["good1"] || !got["good2"] || !got["good3"] {
		t.Errorf("good servers pruned: %v", got)
	}
	if got["false"] {
		t.Error("falseticker survived selection")
	}
}

func TestSelectAllAgreeing(t *testing.T) {
	cands := []Candidate{
		cand("a", 1, 20), cand("b", 2, 20), cand("c", 0, 20),
	}
	if surv := Select(cands); len(surv) != 3 {
		t.Errorf("survivors = %d, want 3", len(surv))
	}
}

func TestSelectNoConsensus(t *testing.T) {
	// Two servers, disjoint tight intervals, mutually exclusive: no
	// majority clique of size 2; with m=2 only allow=0 is tried.
	cands := []Candidate{
		cand("a", 0, 2),
		cand("b", 1000, 2),
	}
	if surv := Select(cands); surv != nil {
		t.Errorf("disjoint pair produced survivors: %v", names(surv))
	}
}

func TestSelectMajorityOfFive(t *testing.T) {
	cands := []Candidate{
		cand("g1", 0, 30), cand("g2", 5, 30), cand("g3", -5, 30),
		cand("f1", 800, 6), cand("f2", -900, 6),
	}
	surv := Select(cands)
	got := names(surv)
	if len(surv) != 3 || !got["g1"] || !got["g2"] || !got["g3"] {
		t.Errorf("survivors = %v, want the three agreeing servers", got)
	}
}

func TestClusterPrunesOutlier(t *testing.T) {
	// Four survivors; one offset is much farther from the rest than
	// the peers' own jitter → pruned to NMIN.
	surv := []Candidate{
		cand("a", 0, 20), cand("b", 1, 20), cand("c", -1, 20), cand("d", 40, 20),
	}
	out := Cluster(surv)
	if len(out) != 3 {
		t.Fatalf("clustered to %d, want 3", len(out))
	}
	if names(out)["d"] {
		t.Error("outlier survived clustering")
	}
}

func TestClusterKeepsTightGroup(t *testing.T) {
	// All offsets within peer jitter: nothing pruned even above NMIN.
	surv := []Candidate{
		{Server: "a", Sample: exchange.Sample{Offset: 0, Delay: 20 * time.Millisecond}, Jitter: 10 * time.Millisecond},
		{Server: "b", Sample: exchange.Sample{Offset: time.Millisecond, Delay: 20 * time.Millisecond}, Jitter: 10 * time.Millisecond},
		{Server: "c", Sample: exchange.Sample{Offset: -time.Millisecond, Delay: 20 * time.Millisecond}, Jitter: 10 * time.Millisecond},
		{Server: "d", Sample: exchange.Sample{Offset: 2 * time.Millisecond, Delay: 20 * time.Millisecond}, Jitter: 10 * time.Millisecond},
	}
	if out := Cluster(surv); len(out) != 4 {
		t.Errorf("tight group pruned to %d", len(out))
	}
}

func TestCombineWeightsByRootDistance(t *testing.T) {
	// A low-distance (good) server should dominate the combination.
	surv := []Candidate{
		cand("good", 0, 2),     // root distance ~1 ms (floored)
		cand("poor", 100, 400), // root distance 200 ms
	}
	off, ok := Combine(surv)
	if !ok {
		t.Fatal("combine failed")
	}
	if off > 10*time.Millisecond {
		t.Errorf("combined offset %v dominated by poor server", off)
	}
}

func TestCombineEmpty(t *testing.T) {
	if _, ok := Combine(nil); ok {
		t.Error("combine of nothing succeeded")
	}
}

func TestPeerFilterPicksMinDelay(t *testing.T) {
	var f peerFilter
	f.add(exchange.Sample{Offset: 100 * time.Millisecond, Delay: 80 * time.Millisecond})
	f.add(exchange.Sample{Offset: 5 * time.Millisecond, Delay: 12 * time.Millisecond})
	f.add(exchange.Sample{Offset: 60 * time.Millisecond, Delay: 45 * time.Millisecond})
	best, jitter, ok := f.best()
	if !ok {
		t.Fatal("empty best")
	}
	if best.Delay != 12*time.Millisecond {
		t.Errorf("best delay = %v", best.Delay)
	}
	if jitter == 0 {
		t.Error("jitter should be non-zero for spread offsets")
	}
}

func TestPeerFilterShiftRegisterEvicts(t *testing.T) {
	var f peerFilter
	// Fill with 8 high-delay samples, then push a low-delay one; then
	// push 8 more high-delay samples to evict it.
	for i := 0; i < filterStages; i++ {
		f.add(exchange.Sample{Offset: 0, Delay: 100 * time.Millisecond})
	}
	f.add(exchange.Sample{Offset: 0, Delay: time.Millisecond})
	if best, _, _ := f.best(); best.Delay != time.Millisecond {
		t.Fatalf("low-delay sample not selected: %v", best.Delay)
	}
	for i := 0; i < filterStages; i++ {
		f.add(exchange.Sample{Offset: 0, Delay: 50 * time.Millisecond})
	}
	if best, _, _ := f.best(); best.Delay != 50*time.Millisecond {
		t.Errorf("evicted sample still selected: %v", best.Delay)
	}
	if f.len() != filterStages {
		t.Errorf("register length = %d", f.len())
	}
}

func TestPeerFilterEmpty(t *testing.T) {
	var f peerFilter
	if _, _, ok := f.best(); ok {
		t.Error("empty filter returned a sample")
	}
}

func TestRootDistanceFloor(t *testing.T) {
	if d := rootDistance(exchange.Sample{}); d < time.Millisecond {
		t.Errorf("root distance %v below MINDISP floor", d)
	}
	s := exchange.Sample{Delay: 100 * time.Millisecond, RootDelay: 20 * time.Millisecond, RootDisp: 5 * time.Millisecond}
	if got, want := rootDistance(s), 65*time.Millisecond; got != want {
		t.Errorf("root distance = %v, want %v", got, want)
	}
}
