package ntpclient

import (
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/netsim"
	"mntp/internal/ntppkt"
	"mntp/internal/trend"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// buildPoolNet wires a scheduler, n good servers (true clocks) and
// optionally one false ticker, over wired paths.
func buildPoolNet(sched *netsim.Scheduler, goodServers int, falseTickerErr time.Duration) (*netsim.Network, []string) {
	truth := clock.NewTrue(epoch, sched.Now)
	net := netsim.NewNetwork(sched)
	var names []string
	for i := 0; i < goodServers; i++ {
		name := "good" + string(rune('0'+i))
		srv := netsim.NewServer(name, truth, 2, int64(10+i))
		net.AddServer(srv, netsim.NewWiredPath(
			time.Duration(10+3*i)*time.Millisecond, 2*time.Millisecond, 0, 0.001, int64(20+i)))
		names = append(names, name)
	}
	if falseTickerErr != 0 {
		bad := netsim.NewServer("falseticker", &clock.Fixed{Base: truth, Error: falseTickerErr}, 2, 30)
		net.AddServer(bad, netsim.NewWiredPath(8*time.Millisecond, time.Millisecond, 0, 0, 31))
		names = append(names, "falseticker")
	}
	return net, names
}

func TestPollStepsLargeOffset(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 3, 0)
	clk := clock.NewSim(clock.Config{InitialOffset: 2 * time.Second, Seed: 1}, epoch, sched.Now)

	var u Update
	var err error
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: names})
		u, err = c.Poll()
	})
	sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !u.Stepped {
		t.Error("2s offset should step")
	}
	if got := clk.TrueOffset(); got < -20*time.Millisecond || got > 20*time.Millisecond {
		t.Errorf("clock error after step = %v", got)
	}
}

func TestPollIdentifiesFalseticker(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 3, 700*time.Millisecond)
	clk := clock.NewSim(clock.Config{Seed: 2}, epoch, sched.Now)

	var u Update
	var err error
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: names})
		u, err = c.Poll()
	})
	sched.Run()
	if err != nil {
		t.Fatal(err)
	}
	if u.Falsetickers != 1 {
		t.Errorf("falsetickers = %d, want 1", u.Falsetickers)
	}
	// The combined offset must not be dragged toward the falseticker.
	if u.Offset > 50*time.Millisecond || u.Offset < -50*time.Millisecond {
		t.Errorf("combined offset = %v", u.Offset)
	}
}

func TestDisciplineHoldsDriftingClock(t *testing.T) {
	// A 25 ppm clock disciplined for 2 h of virtual time must stay
	// within ~15 ms of true time after convergence (the paper's
	// "with NTP clock correction" baseline behaviour).
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 4, 0)
	clk := clock.NewSim(clock.Config{
		InitialOffset: 300 * time.Millisecond, SkewPPM: 25, Seed: 3,
	}, epoch, sched.Now)

	var worstLate time.Duration
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: names, MaxPoll: 128 * time.Second})
		for p.Now() < 2*time.Hour {
			u, err := c.Poll()
			if err != nil {
				t.Errorf("poll at %v: %v", p.Now(), err)
				return
			}
			if p.Now() > 30*time.Minute {
				off := clk.TrueOffset()
				if off < 0 {
					off = -off
				}
				if off > worstLate {
					worstLate = off
				}
			}
			p.Sleep(u.Poll)
		}
	})
	sched.Run()
	if worstLate > 15*time.Millisecond {
		t.Errorf("worst post-convergence error = %v, want ≤ 15ms", worstLate)
	}
}

func TestPollAdaptsInterval(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 3, 0)
	clk := clock.NewSim(clock.Config{Seed: 4}, epoch, sched.Now)

	var first, later time.Duration
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: names, MaxPoll: 256 * time.Second})
		first = c.PollInterval()
		for i := 0; i < 10; i++ {
			u, err := c.Poll()
			if err != nil {
				t.Errorf("poll: %v", err)
				return
			}
			p.Sleep(u.Poll)
		}
		later = c.PollInterval()
	})
	sched.Run()
	if later <= first {
		t.Errorf("poll interval did not widen: first %v, later %v", first, later)
	}
}

func TestPollAllUnreachable(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net := netsim.NewNetwork(sched)
	lossy := netsim.FuncPath(func(time.Duration, netsim.Direction) (time.Duration, bool) { return 0, true })
	truth := clock.NewTrue(epoch, sched.Now)
	net.AddServer(netsim.NewServer("dead", truth, 2, 1), lossy)
	clk := clock.NewSim(clock.Config{Seed: 5}, epoch, sched.Now)

	var err error
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: []string{"dead"}})
		_, err = c.Poll()
	})
	sched.Run()
	if err == nil {
		t.Error("unreachable pool should error")
	}
}

// kodTransport returns KoD for one named server, success elsewhere.
type kodTransport struct {
	inner    exchange.Transport
	kodFor   string
	kodCalls int
}

func (k *kodTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	if server == k.kodFor {
		k.kodCalls++
		resp := &ntppkt.Packet{
			Leap: ntppkt.LeapNotSync, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate, Origin: req.Transmit,
		}
		return resp, time.Time{}, nil
	}
	return k.inner.Exchange(server, req)
}

func TestKoDDemobilizesPeer(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 3, 0)
	clk := clock.NewSim(clock.Config{Seed: 6}, epoch, sched.Now)

	sched.Go(func(p *netsim.Proc) {
		inner := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		kt := &kodTransport{inner: inner, kodFor: names[0]}
		// Cap the poll interval so all ten polls fall inside one
		// demobilization period.
		c := New(clk, kt, Config{Servers: names, MaxPoll: 64 * time.Second})
		for i := 0; i < 10; i++ {
			if _, err := c.Poll(); err != nil {
				t.Errorf("poll %d: %v", i, err)
				return
			}
			p.Sleep(c.PollInterval())
		}
		// The KoD server must have been queried exactly once within
		// the demobilization period.
		if kt.kodCalls != 1 {
			t.Errorf("KoD server queried %d times, want 1 (demobilized)", kt.kodCalls)
		}
	})
	sched.Run()
}

func TestPollPanicRefusesImplausibleJump(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 3, 0)
	clk := clock.NewSim(clock.Config{Seed: 8}, epoch, sched.Now)

	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
		c := New(clk, tr, Config{Servers: names, PanicThreshold: 10 * time.Second})
		// First poll synchronizes and arms the panic gate.
		if _, err := c.Poll(); err != nil {
			t.Error(err)
			return
		}
		p.Sleep(30 * time.Second)
		// Something yanks the local clock an hour off. Once the +1h
		// offset works through the peer filters' 8-sample registers
		// (stale pre-step samples win the min-delay pick for a few
		// rounds), it exceeds the panic threshold and the discipline
		// must refuse it rather than "correct" by stepping.
		clk.Step(-time.Hour)
		var sawPanic bool
		for i := 0; i < 12; i++ {
			u, err := c.Poll()
			if err != nil {
				continue // stale/fresh sample mixes can lose consensus
			}
			if u.Panicked {
				if u.Applied {
					t.Errorf("poll %d: update %+v both panicked and applied", i, u)
				}
				sawPanic = true
			}
			p.Sleep(16 * time.Second)
		}
		if !sawPanic {
			t.Error("1h jump never tripped the panic gate")
		}
		off := clk.TrueOffset()
		if off > -59*time.Minute {
			t.Errorf("clock moved despite panic: true offset %v", off)
		}
	})
	sched.Run()
}

func TestInitialFreqClampedThroughSharedBound(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	net, names := buildPoolNet(sched, 1, 0)
	_ = net
	clk := clock.NewSim(clock.Config{Seed: 9}, epoch, sched.Now)
	// A corrupt drift file claims 9000 ppm; the shared clamp caps it.
	c := New(clk, nil, Config{Servers: names, InitialFreq: 9000e-6})
	if f := c.FreqCorrection(); f != 500e-6 {
		t.Fatalf("initial freq = %v, want clamped 500ppm", f)
	}
}

func TestDriftEstimateTracksResidualSkew(t *testing.T) {
	// The observability drift readout must produce a finite estimate
	// once the clock is being slewed, under every estimator kind, and
	// must reset across a step (the first poll here steps the 300 ms
	// initial offset away).
	for _, kind := range trend.Kinds() {
		sched := netsim.NewScheduler(epoch)
		net, names := buildPoolNet(sched, 3, 0)
		clk := clock.NewSim(clock.Config{
			InitialOffset: 300 * time.Millisecond, SkewPPM: 25, Seed: 4,
		}, epoch, sched.Now)

		var gotEstimate bool
		var est float64
		sched.Go(func(p *netsim.Proc) {
			tr := &netsim.Transport{Net: net, Proc: p, Clock: clk}
			c := New(clk, tr, Config{
				Servers: names, MaxPoll: 64 * time.Second,
				DriftEstimator: kind,
			})
			for p.Now() < 30*time.Minute {
				u, err := c.Poll()
				if err != nil {
					t.Errorf("%s: poll at %v: %v", kind, p.Now(), err)
					return
				}
				if u.Stepped {
					if _, ok := c.DriftEstimate(); ok {
						t.Errorf("%s: drift estimate survived a step", kind)
					}
				}
				if d, ok := c.DriftEstimate(); ok {
					gotEstimate = true
					est = d
				}
				p.Sleep(u.Poll)
			}
		})
		sched.Run()
		if !gotEstimate {
			t.Fatalf("%s: no drift estimate after 30 min of polling", kind)
		}
		// The PLL absorbs most of the 25 ppm skew; the residual readout
		// must stay bounded by the raw skew (sanity, not accuracy).
		if est < -100e-6 || est > 100e-6 {
			t.Errorf("%s: residual drift = %v ppm, want |d| ≤ 100 ppm", kind, est*1e6)
		}
	}
}
