// Package ntpclient implements a full NTP reference client in the
// spirit of ntpd: a per-peer clock filter (8-stage shift register,
// minimum-delay selection), Marzullo/intersection selection of
// truechimers, cluster pruning by select jitter, weighted combining,
// and a PLL-style clock discipline with adaptive polling.
//
// The paper's baseline scenarios ("with NTP clock correction") use
// this client to discipline the target node's clock, and §7 names a
// reference NTP implementation for benchmarking MNTP as future work —
// which this package discharges.
package ntpclient

import (
	"math"
	"time"

	"mntp/internal/exchange"
)

// filterStages is the depth of the per-peer clock filter shift
// register (RFC 5905 uses 8).
const filterStages = 8

// peerFilter is the per-peer clock filter: it retains the last
// filterStages samples and selects the one with minimum delay, on the
// principle that low-delay samples suffer the least queueing-induced
// asymmetry.
type peerFilter struct {
	reg  [filterStages]exchange.Sample
	used int
	next int
}

// add inserts a sample into the shift register.
func (f *peerFilter) add(s exchange.Sample) {
	f.reg[f.next] = s
	f.next = (f.next + 1) % filterStages
	if f.used < filterStages {
		f.used++
	}
}

// len returns the number of retained samples.
func (f *peerFilter) len() int { return f.used }

// shiftOffsets subtracts x from every retained sample's offset. When
// the local clock is adjusted by x, samples measured against the
// pre-adjustment clock are re-expressed against the new one, so the
// register never re-reports an error that has already been corrected.
func (f *peerFilter) shiftOffsets(x time.Duration) {
	for i := 0; i < f.used; i++ {
		f.reg[i].Offset -= x
	}
}

// best returns the minimum-delay sample among the register and the
// filter jitter: the RMS of the offset differences between the other
// samples and the best one. ok is false when the register is empty.
func (f *peerFilter) best() (s exchange.Sample, jitter time.Duration, ok bool) {
	if f.used == 0 {
		return exchange.Sample{}, 0, false
	}
	bi := 0
	for i := 1; i < f.used; i++ {
		if f.reg[i].Delay < f.reg[bi].Delay {
			bi = i
		}
	}
	best := f.reg[bi]
	var sum float64
	n := 0
	for i := 0; i < f.used; i++ {
		if i == bi {
			continue
		}
		d := (f.reg[i].Offset - best.Offset).Seconds()
		sum += d * d
		n++
	}
	if n > 0 {
		jitter = time.Duration(math.Sqrt(sum/float64(n)) * float64(time.Second))
	}
	return best, jitter, true
}

// phi is the assumed maximum frequency tolerance (RFC 5905 PHI,
// 15 ppm): a sample's dispersion grows by phi per second of age, so
// stale filter samples carry appropriately widened correctness
// intervals.
const phi = 15e-6

// agedSample returns s with its root dispersion widened by phi times
// the sample's age at the given reference time.
func agedSample(s exchange.Sample, now time.Time) exchange.Sample {
	if age := now.Sub(s.When); age > 0 {
		s.RootDisp += time.Duration(phi * float64(age))
	}
	return s
}

// rootDistance is the synchronization distance of a filtered sample:
// half the total round-trip delay to the primary source plus the
// accumulated dispersion. It bounds the sample's absolute error and
// provides the correctness interval for selection.
func rootDistance(s exchange.Sample) time.Duration {
	d := (s.Delay+s.RootDelay)/2 + s.RootDisp
	if min := 1 * time.Millisecond; d < min {
		d = min // MINDISP guards degenerate zero-width intervals
	}
	return d
}
