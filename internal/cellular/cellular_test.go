package cellular

import (
	"testing"
	"time"

	"mntp/internal/netsim"
	"mntp/internal/stats"
)

func TestUplinkSlowerThanDownlink(t *testing.T) {
	p := NewPath(LTE2016(), 1)
	var up, down stats.Online
	now := time.Duration(0)
	for i := 0; i < 3000; i++ {
		now += 5 * time.Second
		if d, lost := p.SampleOneWay(now, netsim.Uplink); !lost {
			up.Add(d.Seconds())
		}
		if d, lost := p.SampleOneWay(now, netsim.Downlink); !lost {
			down.Add(d.Seconds())
		}
	}
	if up.Mean() <= down.Mean()+0.1 {
		t.Errorf("uplink mean %.3fs not ≫ downlink %.3fs", up.Mean(), down.Mean())
	}
	// The implied SNTP offset bias (up−down)/2 should be near the
	// paper's Figure 5 mean of ~192 ms.
	bias := (up.Mean() - down.Mean()) / 2
	if bias < 0.10 || bias > 0.30 {
		t.Errorf("offset bias = %.3fs, want 0.10–0.30s", bias)
	}
}

func TestRRCPromotionAfterIdle(t *testing.T) {
	prof := LTE2016()
	prof.Sigma = 0 // deterministic base delay
	prof.UplinkGrantMean = 1
	prof.LossProb = 0
	p := NewPath(prof, 2)

	// Continuous activity at 5 s spacing (below the 10 s idle
	// timeout): no promotion after the first packet.
	now := time.Duration(0)
	p.SampleOneWay(now, netsim.Uplink) // first packet promotes
	now += 5 * time.Second
	active, _ := p.SampleOneWay(now, netsim.Uplink)

	// After a 60 s gap the radio idles; the next packet promotes.
	now += 60 * time.Second
	promoted, _ := p.SampleOneWay(now, netsim.Uplink)

	if promoted < active+prof.PromotionMin {
		t.Errorf("post-idle delay %v not ≥ active %v + promotion %v",
			promoted, active, prof.PromotionMin)
	}
}

func TestDownlinkNeverPromotes(t *testing.T) {
	prof := LTE2016()
	prof.Sigma = 0
	prof.LossProb = 0
	p := NewPath(prof, 3)
	d, _ := p.SampleOneWay(0, netsim.Downlink)
	if d != prof.BaseOWDMedian {
		t.Errorf("downlink = %v, want exactly base %v", d, prof.BaseOWDMedian)
	}
}

func TestLoss(t *testing.T) {
	prof := LTE2016()
	prof.LossProb = 0.3
	p := NewPath(prof, 4)
	lost := 0
	const n = 3000
	for i := 0; i < n; i++ {
		if _, l := p.SampleOneWay(time.Duration(i)*time.Second, netsim.Downlink); l {
			lost++
		}
	}
	if frac := float64(lost) / n; frac < 0.25 || frac > 0.35 {
		t.Errorf("loss = %v, want ~0.3", frac)
	}
}

func TestMobileProviderProfilesOrdered(t *testing.T) {
	// Higher rank → higher latency, matching the linear trend of
	// SP 22–25 in Figure 1.
	meanOWD := func(rank int) float64 {
		p := NewPath(MobileProviderProfile(rank), int64(10+rank))
		var acc stats.Online
		for i := 0; i < 2000; i++ {
			if d, lost := p.SampleOneWay(time.Duration(i)*7*time.Second, netsim.Downlink); !lost {
				acc.Add(d.Seconds())
			}
		}
		return acc.Mean()
	}
	prev := meanOWD(0)
	for rank := 1; rank < 4; rank++ {
		cur := meanOWD(rank)
		if cur <= prev {
			t.Errorf("rank %d mean OWD %.3fs not above rank %d (%.3fs)", rank, cur, rank-1, prev)
		}
		prev = cur
	}
}

func TestHeavyTailProducesExtremes(t *testing.T) {
	p := NewPath(LTE2016(), 5)
	var maxUp time.Duration
	now := time.Duration(0)
	for i := 0; i < 2160; i++ { // 3 h at 5 s, like the §3.3 run
		now += 5 * time.Second
		if d, lost := p.SampleOneWay(now, netsim.Uplink); !lost && d > maxUp {
			maxUp = d
		}
	}
	// Figure 5 reports offsets as high as 840 ms → uplink OWDs beyond
	// ~1.2 s must occur at least once in 3 h.
	if maxUp < 1200*time.Millisecond {
		t.Errorf("max uplink OWD = %v, want > 1.2s", maxUp)
	}
}
