// Package cellular models the 4G path of the paper's §3.3 experiment
// (a Galaxy S4 on a live LTE network) and the mobile-provider latency
// profiles of the §3.1 log study (providers SP 22–25, with median
// minimum OWDs around 550 ms and large interquartile ranges).
//
// The model captures the LTE mechanisms that dominate user-plane
// latency for sparse UDP traffic like SNTP:
//
//   - an RRC state machine: after an inactivity timeout the radio
//     falls back to idle, and the next packet pays a connection
//     promotion delay of a few hundred milliseconds;
//   - scheduling-grant asymmetry: uplink transmissions wait for grants,
//     so the uplink OWD systematically exceeds the downlink OWD — the
//     asymmetry that biases SNTP offsets (mean ≈ 192 ms in Figure 5);
//   - heavy-tailed base delay: lognormal OWD with provider-profile
//     parameters.
package cellular

import (
	"math"
	"math/rand"
	"time"

	"mntp/internal/netsim"
)

// Profile parameterizes one cellular provider path.
type Profile struct {
	// BaseOWDMedian is the median one-way delay in the connected
	// state, downlink direction.
	BaseOWDMedian time.Duration
	// Sigma is the lognormal shape parameter (log-scale standard
	// deviation) of the base delay.
	Sigma float64
	// UplinkGrantBase is the fixed part of the uplink scheduling-grant
	// wait; UplinkGrantMean is the mean of the exponential part on
	// top of it.
	UplinkGrantBase time.Duration
	UplinkGrantMean time.Duration
	// HandoverProb is the per-uplink-packet probability of a
	// handover/reconnection event adding HandoverMin..HandoverMax of
	// delay (the source of the paper's ~840 ms extremes).
	HandoverProb             float64
	HandoverMin, HandoverMax time.Duration
	// PromotionMin/PromotionMax bound the idle→connected promotion
	// delay paid by the first packet after idle.
	PromotionMin, PromotionMax time.Duration
	// IdleTimeout is the inactivity period after which the RRC state
	// drops back to idle.
	IdleTimeout time.Duration
	// LossProb is the residual end-to-end loss probability.
	LossProb float64
}

// LTE2016 is the §3.3 experiment profile: a mid-tier US LTE network of
// 2016. Calibrated so an SNTP client polling every 5 s sees offsets
// with mean ≈ 190 ms, σ ≈ 55 ms and occasional ~800 ms extremes.
func LTE2016() Profile {
	return Profile{
		BaseOWDMedian:   55 * time.Millisecond,
		Sigma:           0.35,
		UplinkGrantBase: 250 * time.Millisecond,
		UplinkGrantMean: 90 * time.Millisecond,
		PromotionMin:    260 * time.Millisecond,
		PromotionMax:    600 * time.Millisecond,
		IdleTimeout:     10 * time.Second,
		LossProb:        0.015,
		HandoverProb:    0.006,
		HandoverMin:     500 * time.Millisecond,
		HandoverMax:     1400 * time.Millisecond,
	}
}

// MobileProviderProfile returns a §3.1 mobile-provider profile (SP
// 22–25) whose minimum OWD distribution matches the paper's reported
// medians around 400–600 ms with wide IQRs. rank 0 is the
// lowest-latency mobile provider.
func MobileProviderProfile(rank int) Profile {
	base := 170 + 60*time.Duration(rank)
	return Profile{
		BaseOWDMedian:   base * time.Millisecond,
		Sigma:           0.8,
		UplinkGrantMean: (120 + 40*time.Duration(rank)) * time.Millisecond,
		PromotionMin:    200 * time.Millisecond,
		PromotionMax:    700 * time.Millisecond,
		IdleTimeout:     10 * time.Second,
		LossProb:        0.02,
	}
}

// Path is a cellular path model implementing netsim.PathModel.
type Path struct {
	prof Profile
	rng  *rand.Rand
	// lastActivity tracks RRC state: a packet arriving more than
	// IdleTimeout after the previous one pays the promotion delay.
	lastActivity time.Duration
	everActive   bool
}

// NewPath creates a cellular path with the given profile and seed.
func NewPath(prof Profile, seed int64) *Path {
	return &Path{prof: prof, rng: rand.New(rand.NewSource(seed))}
}

// SampleOneWay implements netsim.PathModel.
func (p *Path) SampleOneWay(now time.Duration, dir netsim.Direction) (time.Duration, bool) {
	if p.prof.LossProb > 0 && p.rng.Float64() < p.prof.LossProb {
		return 0, true
	}

	// Lognormal base delay around the profile median.
	mu := math.Log(p.prof.BaseOWDMedian.Seconds())
	d := time.Duration(math.Exp(mu+p.prof.Sigma*p.rng.NormFloat64()) * float64(time.Second))

	// RRC promotion applies to uplink packets after inactivity (the
	// client initiates; by the time the response comes back the radio
	// is connected).
	if dir == netsim.Uplink {
		if p.everActive && now-p.lastActivity > p.prof.IdleTimeout {
			span := p.prof.PromotionMax - p.prof.PromotionMin
			promo := p.prof.PromotionMin
			if span > 0 {
				promo += time.Duration(p.rng.Int63n(int64(span)))
			}
			d += promo
		} else if !p.everActive {
			// First packet ever also promotes.
			d += p.prof.PromotionMin
		}
		// Scheduling-grant wait: fixed part plus exponential tail.
		d += p.prof.UplinkGrantBase
		d += time.Duration(p.rng.ExpFloat64() * float64(p.prof.UplinkGrantMean))
		// Occasional handover/reconnection spike.
		if p.prof.HandoverProb > 0 && p.rng.Float64() < p.prof.HandoverProb {
			span := p.prof.HandoverMax - p.prof.HandoverMin
			d += p.prof.HandoverMin
			if span > 0 {
				d += time.Duration(p.rng.Int63n(int64(span)))
			}
		}
		p.lastActivity = now
		p.everActive = true
	}
	return d, false
}

var _ netsim.PathModel = (*Path)(nil)
