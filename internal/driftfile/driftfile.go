// Package driftfile persists frequency estimates between runs, the
// way ntpd's driftfile does: a host that has synchronized before
// starts its next session with the oscillator error already mostly
// compensated, instead of re-learning it over the first hour. MNTP's
// drift estimate and the full NTP client's frequency correction both
// benefit; cmd/mntp persists the estimate on exit.
//
// The format is ntpd-compatible: a single line holding the frequency
// in parts per million, e.g. "-17.346\n". The plausibility bound is
// discipline.MaxFreqPPM, shared with the clock discipline's clamp, so
// a value that loads cleanly here is always applicable there.
package driftfile

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"mntp/internal/discipline"
)

// Load reads a drift file and returns the stored frequency correction
// in seconds per second. A missing file returns (0, false, nil):
// first run, nothing learned yet.
func Load(path string) (correction float64, ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("driftfile: read %s: %w", path, err)
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, false, fmt.Errorf("driftfile: %s is empty", path)
	}
	ppm, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false, fmt.Errorf("driftfile: parse %s: %w", path, err)
	}
	if ppm < -discipline.MaxFreqPPM || ppm > discipline.MaxFreqPPM {
		// The discipline clamps at ±500 ppm; anything beyond is
		// corruption.
		return 0, false, fmt.Errorf("driftfile: implausible frequency %v ppm", ppm)
	}
	return ppm * 1e-6, true, nil
}

// Store writes the frequency correction (seconds per second)
// atomically and durably: a unique temp file in the target directory
// (concurrent writers never collide on a fixed name), fsynced before
// the rename so a post-rename crash cannot surface an empty file, then
// renamed over the target.
func Store(path string, correction float64) error {
	ppm := correction * 1e6
	if ppm < -discipline.MaxFreqPPM || ppm > discipline.MaxFreqPPM {
		return fmt.Errorf("driftfile: refusing to store implausible frequency %v ppm", ppm)
	}
	content := strconv.FormatFloat(ppm, 'f', 3, 64) + "\n"

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("driftfile: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.WriteString(content); err != nil {
		return cleanup(fmt.Errorf("driftfile: write %s: %w", tmp, err))
	}
	if err := f.Chmod(0o644); err != nil {
		return cleanup(fmt.Errorf("driftfile: chmod %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("driftfile: fsync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftfile: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftfile: rename: %w", err)
	}
	return nil
}
