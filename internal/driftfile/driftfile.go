// Package driftfile persists frequency estimates between runs, the
// way ntpd's driftfile does: a host that has synchronized before
// starts its next session with the oscillator error already mostly
// compensated, instead of re-learning it over the first hour. MNTP's
// drift estimate and the full NTP client's frequency correction both
// benefit; cmd/mntp persists the estimate on exit.
//
// The format is ntpd-compatible: a single line holding the frequency
// in parts per million, e.g. "-17.346\n".
package driftfile

import (
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Load reads a drift file and returns the stored frequency correction
// in seconds per second. A missing file returns (0, false, nil):
// first run, nothing learned yet.
func Load(path string) (correction float64, ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, fmt.Errorf("driftfile: read %s: %w", path, err)
	}
	fields := strings.Fields(string(data))
	if len(fields) == 0 {
		return 0, false, fmt.Errorf("driftfile: %s is empty", path)
	}
	ppm, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return 0, false, fmt.Errorf("driftfile: parse %s: %w", path, err)
	}
	if ppm < -500 || ppm > 500 {
		// ntpd clamps at ±500 ppm; anything beyond is corruption.
		return 0, false, fmt.Errorf("driftfile: implausible frequency %v ppm", ppm)
	}
	return ppm * 1e-6, true, nil
}

// Store writes the frequency correction (seconds per second)
// atomically: write-to-temp then rename, so a crash never leaves a
// torn file.
func Store(path string, correction float64) error {
	ppm := correction * 1e6
	if ppm < -500 || ppm > 500 {
		return fmt.Errorf("driftfile: refusing to store implausible frequency %v ppm", ppm)
	}
	tmp := path + ".tmp"
	content := strconv.FormatFloat(ppm, 'f', 3, 64) + "\n"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return fmt.Errorf("driftfile: write %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("driftfile: rename: %w", err)
	}
	return nil
}
