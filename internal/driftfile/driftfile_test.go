package driftfile

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "drift")
	if err := Store(path, -17.346e-6); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Load(path)
	if err != nil || !ok {
		t.Fatalf("load: %v ok=%v", err, ok)
	}
	if d := got + 17.346e-6; d < -1e-9 || d > 1e-9 {
		t.Errorf("loaded %v, want -17.346ppm", got*1e6)
	}
}

func TestMissingFileIsFirstRun(t *testing.T) {
	_, ok, err := Load(filepath.Join(t.TempDir(), "absent"))
	if err != nil || ok {
		t.Errorf("missing file: ok=%v err=%v", ok, err)
	}
}

func TestNtpdFormatCompatible(t *testing.T) {
	// ntpd writes e.g. "-17.346" possibly with trailing data.
	path := filepath.Join(t.TempDir(), "drift")
	if err := os.WriteFile(path, []byte("-17.346\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, ok, err := Load(path)
	if err != nil || !ok || got > 0 {
		t.Fatalf("ntpd format: got=%v ok=%v err=%v", got, ok, err)
	}
}

func TestCorruptFiles(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty":       "",
		"garbage":     "not-a-number\n",
		"implausible": "9000\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		os.WriteFile(path, []byte(content), 0o644)
		if _, _, err := Load(path); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestStoreRejectsImplausible(t *testing.T) {
	if err := Store(filepath.Join(t.TempDir(), "d"), 1e-3); err == nil {
		t.Error("1000ppm stored")
	}
}

func TestStoreAtomicNoTempLeft(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drift")
	if err := Store(path, 10e-6); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Errorf("directory has %d entries, want 1", len(entries))
	}
}

// Property: any plausible correction round-trips within the stored
// precision (0.001 ppm).
func TestQuickRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drift")
	f := func(raw int32) bool {
		ppm := float64(raw%500000) / 1000 // ±500 ppm in millippm steps
		if err := Store(path, ppm*1e-6); err != nil {
			return false
		}
		got, ok, err := Load(path)
		if err != nil || !ok {
			return false
		}
		diff := got*1e6 - ppm
		return diff > -0.001 && diff < 0.001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestStoreConcurrentWriters hammers Store from many goroutines: with
// unique temp names (instead of the old fixed ".tmp") no writer can
// rename another's half-written file, so the result is always exactly
// one file holding one of the written values.
func TestStoreConcurrentWriters(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drift")
	const writers = 16
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Store(path, float64(i)*1e-6); err != nil {
				t.Errorf("writer %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		var names []string
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("dir holds %v, want only the drift file", names)
	}
	got, ok, err := Load(path)
	if err != nil || !ok {
		t.Fatalf("Load after concurrent stores: %v %v", ok, err)
	}
	if got < 0 || got > float64(writers)*1e-6 {
		t.Errorf("loaded %v outside the written range", got)
	}
}
