package ntptime

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestFromTimeKnownValues(t *testing.T) {
	// The Unix epoch is exactly 2208988800 s after the NTP epoch.
	ts := FromTime(time.Unix(0, 0))
	if got := ts.Seconds(); got != unixToNTPOffset {
		t.Errorf("epoch seconds = %d, want %d", got, unixToNTPOffset)
	}
	if got := ts.Fraction(); got != 0 {
		t.Errorf("epoch fraction = %d, want 0", got)
	}

	// Half a second is fraction 2^31.
	ts = FromTime(time.Unix(0, 500_000_000))
	if got := ts.Fraction(); got != 1<<31 {
		t.Errorf("half-second fraction = %#x, want %#x", got, uint32(1<<31))
	}
}

func TestTimestampRoundTripEra0(t *testing.T) {
	cases := []time.Time{
		time.Date(1970, 1, 1, 0, 0, 0, 0, time.UTC),
		time.Date(2016, 11, 14, 9, 30, 15, 123456789, time.UTC),
		time.Date(2026, 7, 6, 12, 0, 0, 999999999, time.UTC),
		time.Date(1999, 12, 31, 23, 59, 59, 1, time.UTC),
	}
	for _, want := range cases {
		got := FromTime(want).TimeEra0()
		if d := got.Sub(want); d < -time.Nanosecond || d > time.Nanosecond {
			t.Errorf("round trip %v -> %v (err %v)", want, got, d)
		}
	}
}

func TestTimeWithPivotCrossesEra(t *testing.T) {
	// A date past the 2036 era rollover must round-trip when the pivot
	// is nearby, even though the wire format wrapped.
	want := time.Date(2040, 6, 1, 0, 0, 0, 0, time.UTC)
	ts := FromTime(want)
	got := ts.Time(time.Date(2039, 1, 1, 0, 0, 0, 0, time.UTC))
	if !got.Equal(want) {
		t.Errorf("era-1 round trip: got %v, want %v", got, want)
	}
	// And a 2016 date with a 2016 pivot stays in era 0.
	want = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)
	got = FromTime(want).Time(time.Date(2016, 1, 1, 0, 0, 0, 0, time.UTC))
	if !got.Equal(want) {
		t.Errorf("era-0 round trip: got %v, want %v", got, want)
	}
}

func TestSubSignsAndMagnitude(t *testing.T) {
	base := time.Date(2016, 11, 14, 10, 0, 0, 0, time.UTC)
	a := FromTime(base)
	b := FromTime(base.Add(1500 * time.Millisecond))
	if d := b.Sub(a); d != 1500*time.Millisecond {
		t.Errorf("b-a = %v, want 1.5s", d)
	}
	if d := a.Sub(b); d != -1500*time.Millisecond {
		t.Errorf("a-b = %v, want -1.5s", d)
	}
}

func TestSubAcrossEraWrap(t *testing.T) {
	// Timestamps that straddle the era boundary still subtract to a
	// small signed difference.
	var nearEnd Timestamp = Timestamp(math.MaxUint64 - (1<<32)/2) // ~0.5s before wrap
	nearStart := nearEnd.Add(time.Second)
	if d := nearStart.Sub(nearEnd); d != time.Second {
		t.Errorf("wrap sub = %v, want 1s", d)
	}
}

func TestAddSubInverse(t *testing.T) {
	ts := FromTime(time.Date(2016, 3, 1, 2, 3, 4, 5678, time.UTC))
	for _, d := range []time.Duration{0, time.Nanosecond, time.Millisecond,
		-37 * time.Millisecond, 90 * time.Minute, -4 * time.Hour} {
		got := ts.Add(d).Sub(ts)
		if diff := got - d; diff < -2 || diff > 2 {
			t.Errorf("Add(%v) then Sub = %v (err %dns)", d, got, diff)
		}
	}
}

func TestShortFormat(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want Short
	}{
		{0, 0},
		{time.Second, 1 << 16},
		{500 * time.Millisecond, 1 << 15},
		{-time.Second, 0}, // negative saturates to zero
	}
	for _, c := range cases {
		if got := DurationToShort(c.d); got != c.want {
			t.Errorf("DurationToShort(%v) = %#x, want %#x", c.d, got, c.want)
		}
	}
	if got := Short(1 << 16).Duration(); got != time.Second {
		t.Errorf("Short(1s).Duration() = %v", got)
	}
	if got := Short(1 << 16).Seconds(); got != 1.0 {
		t.Errorf("Short(1s).Seconds() = %v", got)
	}
}

func TestShortSaturation(t *testing.T) {
	if got := DurationToShort(20 * time.Hour); got != Short(math.MaxUint32) {
		t.Errorf("oversized duration = %#x, want saturation", got)
	}
}

// Property: converting any in-era-0 time to a Timestamp and back is
// accurate to within one nanosecond.
func TestQuickRoundTrip(t *testing.T) {
	f := func(unixSec uint32, nanos uint32) bool {
		// Era 0 ends at Unix second 2^32 − 2208988800 ≈ 2085978496
		// (year 2036); keep the domain inside it.
		want := time.Unix(int64(unixSec%2_085_978_496), int64(nanos%1_000_000_000)).UTC()
		got := FromTime(want).TimeEra0()
		d := got.Sub(want)
		return d >= -time.Nanosecond && d <= time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Sub is antisymmetric to within one nanosecond (floor
// rounding of the 2^-32 s fraction can differ by one unit between the
// two directions).
func TestQuickSubAntisymmetric(t *testing.T) {
	f := func(a, b uint64) bool {
		ta, tb := Timestamp(a), Timestamp(b)
		sum := ta.Sub(tb) + tb.Sub(ta)
		return sum >= -time.Nanosecond && sum <= time.Nanosecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Short round trip through Duration is accurate to half a
// short-format unit (~7.6 µs).
func TestQuickShortRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		s := Short(v)
		back := DurationToShort(s.Duration())
		diff := int64(back) - int64(s)
		return diff >= -1 && diff <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsZero(t *testing.T) {
	if !Timestamp(0).IsZero() {
		t.Error("zero timestamp should be zero")
	}
	if FromTime(time.Now()).IsZero() {
		t.Error("current time should not be zero")
	}
}
