// Package ntptime implements the NTP on-wire time formats of RFC 5905:
// the 64-bit timestamp format (32.32 fixed point seconds since the NTP
// era epoch, 1900-01-01T00:00:00Z) and the 32-bit short format (16.16
// fixed point) used for root delay and root dispersion.
//
// The package converts between these formats, time.Time and
// time.Duration, handling the NTP era pivot so that dates well past the
// era-0 rollover in 2036 round-trip correctly.
package ntptime

import (
	"math"
	"time"
)

// Timestamp is the NTP 64-bit timestamp format: the upper 32 bits count
// seconds since the NTP epoch and the lower 32 bits are the binary
// fraction of a second (resolution 2^-32 s ≈ 233 ps).
type Timestamp uint64

// Short is the NTP 32-bit short format: 16 bits of seconds and 16 bits
// of fraction (resolution 2^-16 s ≈ 15.3 µs). It is used for root delay
// and root dispersion.
type Short uint32

// ntpEpoch is the NTP era-0 epoch.
var ntpEpoch = time.Date(1900, time.January, 1, 0, 0, 0, 0, time.UTC)

// eraSeconds is the number of seconds in one NTP era.
const eraSeconds = int64(1) << 32

const (
	fracScale      = 1 << 32 // scale of the 64-bit timestamp fraction
	shortFracScale = 1 << 16 // scale of the short-format fraction
	nanosPerSec    = int64(time.Second)
)

// Seconds returns the integral seconds field of the timestamp.
func (t Timestamp) Seconds() uint32 { return uint32(t >> 32) }

// Fraction returns the fractional seconds field of the timestamp.
func (t Timestamp) Fraction() uint32 { return uint32(t) }

// IsZero reports whether the timestamp is the special "unset" value.
// RFC 5905 reserves the all-zeros timestamp to mean "unknown".
func (t Timestamp) IsZero() bool { return t == 0 }

// FromTime converts a time.Time to an NTP timestamp. The era is folded:
// the returned value is the time's position within its NTP era, which is
// how timestamps appear on the wire.
func FromTime(t time.Time) Timestamp {
	secs := t.Unix() + unixToNTPOffset
	nanos := int64(t.Nanosecond())
	// Round the fraction to the nearest representable 2^-32 s unit.
	frac := (nanos<<32 + nanosPerSec/2) / nanosPerSec
	if frac >= fracScale {
		frac -= fracScale
		secs++
	}
	return Timestamp(uint64(uint32(secs))<<32 | uint64(uint32(frac)))
}

// unixToNTPOffset is the number of seconds between the NTP epoch
// (1900-01-01) and the Unix epoch (1970-01-01): 70 years including 17
// leap days.
const unixToNTPOffset = 2208988800

// Time converts an NTP timestamp to a time.Time, resolving the era
// ambiguity against the supplied pivot: the result is the instant that
// corresponds to the timestamp's within-era position in the era that
// places it within ±68 years of the pivot.
func (t Timestamp) Time(pivot time.Time) time.Time {
	secInEra := int64(t.Seconds())
	nanos := (int64(t.Fraction())*nanosPerSec + fracScale/2) >> 32
	pivotNTP := pivot.Unix() + unixToNTPOffset
	era := (pivotNTP - secInEra + eraSeconds/2) / eraSeconds
	ntpSec := era*eraSeconds + secInEra
	return time.Unix(ntpSec-unixToNTPOffset, nanos).UTC()
}

// TimeEra0 converts the timestamp assuming NTP era 0 (valid for dates
// between 1900 and 2036). Most test fixtures and the 2016-era traces in
// this repository fall in era 0.
func (t Timestamp) TimeEra0() time.Time {
	nanos := (int64(t.Fraction())*nanosPerSec + fracScale/2) >> 32
	return time.Unix(int64(t.Seconds())-unixToNTPOffset, nanos).UTC()
}

// Sub returns the signed duration t−u interpreted in the shortest
// direction around the era circle. This is how offsets are computed from
// wire timestamps without resolving eras first: the two timestamps are
// assumed to be within ±68 years of each other.
func (t Timestamp) Sub(u Timestamp) time.Duration {
	d := int64(t) - int64(u) // wraps correctly modulo 2^64
	// d is in units of 2^-32 seconds. Convert to nanoseconds with
	// rounding while avoiding overflow: split into seconds and fraction.
	sec := d >> 32
	frac := d - sec<<32
	return time.Duration(sec*nanosPerSec + (frac*nanosPerSec)>>32)
}

// Add returns the timestamp advanced by d. Negative durations move the
// timestamp backwards. The result wraps modulo one era, matching wire
// semantics.
func (t Timestamp) Add(d time.Duration) Timestamp {
	n := int64(d)
	sec := n / nanosPerSec
	nanos := n % nanosPerSec
	frac := (nanos << 32) / nanosPerSec
	return Timestamp(uint64(int64(t) + sec<<32 + frac))
}

// DurationToShort converts a duration to the 16.16 short format,
// saturating at the format's bounds [0, 65536). Negative durations
// saturate to zero: root delay and dispersion are non-negative.
func DurationToShort(d time.Duration) Short {
	if d < 0 {
		return 0
	}
	sec := int64(d) / nanosPerSec
	if sec >= shortFracScale {
		return Short(math.MaxUint32)
	}
	nanos := int64(d) % nanosPerSec
	frac := (nanos<<16 + nanosPerSec/2) / nanosPerSec
	v := sec<<16 + frac
	if v > math.MaxUint32 {
		v = math.MaxUint32
	}
	return Short(v)
}

// Duration converts the short format to a time.Duration.
func (s Short) Duration() time.Duration {
	sec := int64(s >> 16)
	frac := int64(s & 0xffff)
	return time.Duration(sec*nanosPerSec + (frac*nanosPerSec+shortFracScale/2)>>16)
}

// Seconds returns the short-format value in floating-point seconds.
func (s Short) Seconds() float64 { return float64(s) / shortFracScale }
