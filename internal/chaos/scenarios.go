package chaos

import (
	"fmt"
	"time"

	"mntp/internal/core"
)

// convergence is the acceptance bound of the ISSUE: once a fault has
// cleared, the client must bring the clock back within this error
// before the scenario ends (all scenarios finish inside one reset
// period).
const convergence = 25 * time.Millisecond

// Scenarios returns the named fault scripts. Each runs the full MNTP
// client — warm-up, regular phase, trend filter, hint gating, source
// pool, guarded discipline — against one choreographed failure.
func Scenarios() []Scenario {
	return []Scenario{
		totalBlackout(),
		kodStorm(),
		falsetickerMajority(),
		suspendJump(),
		asymSpike(),
		wirelessDegradation(),
		roam(),
	}
}

// totalBlackout kills every path for 20 minutes mid-regular-phase.
// The discipline must enter holdover (keeping the learned frequency,
// so the clock drifts far less than its raw 30 ppm), and exit on the
// first accepted sample once the network returns, re-converging
// within the same cycle.
func totalBlackout() Scenario {
	return Scenario{
		Name: "total-blackout",
		Seed: 101,
		Script: func(w *World) {
			w.Sched.After(20*time.Minute, func() {
				for _, g := range w.Gates {
					g.SetDown(true)
				}
			})
			w.Sched.After(40*time.Minute, func() {
				for _, g := range w.Gates {
					g.SetDown(false)
				}
			})
		},
		Verify: func(r *Report) []string {
			var v []string
			if r.Count(core.EventHoldover) == 0 {
				v = append(v, "blackout never produced EventHoldover")
			}
			if n := r.AcceptedAfter(41 * time.Minute); n == 0 {
				v = append(v, "no sample accepted after the network returned")
			}
			// Holdover must free-run on the learned frequency: over the
			// 20 min outage the clock may not wander anywhere near the
			// 36 ms its raw 30 ppm skew would accumulate.
			drift := r.MaxAbsOffset(20*time.Minute, 40*time.Minute)
			if drift > convergence {
				v = append(v, fmt.Sprintf("holdover drift reached %v, want ≤ %v (raw skew would give 36ms)", drift, convergence))
			}
			if r.FinalState != "sync" {
				v = append(v, fmt.Sprintf("final discipline state %q, want sync", r.FinalState))
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// kodStorm makes the transport answer 90% of exchanges with RATE
// kiss-of-death packets for 12 minutes. Every source lands in
// exponential hold-down; the client must ride it out without panicking
// and resume once the hold-downs (10 min base) expire after the storm.
func kodStorm() Scenario {
	return Scenario{
		Name: "kod-storm",
		Seed: 202,
		Script: func(w *World) {
			w.Sched.After(20*time.Minute, func() { w.Fault.KoDProb = 0.9 })
			w.Sched.After(32*time.Minute, func() { w.Fault.KoDProb = 0 })
		},
		Verify: func(r *Report) []string {
			var v []string
			if r.Count(core.EventKoD) == 0 {
				v = append(v, "storm never surfaced an EventKoD")
			}
			if n := r.AcceptedAfter(45 * time.Minute); n == 0 {
				v = append(v, "no sample accepted after hold-downs expired")
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// falsetickerMajority turns three of the four servers into agreeing
// liars (+30 s) after the client has synchronized, with the trend
// filter disabled so the lie reaches the discipline undiluted. The
// panic gate is the last line of defense: it must refuse every liar
// offset, and the clock must never follow them.
func falsetickerMajority() Scenario {
	return Scenario{
		Name: "falseticker-majority",
		Seed: 303,
		Tune: func(p *core.Params) { p.DisableFilter = true },
		Script: func(w *World) {
			w.Sched.After(25*time.Minute, func() {
				for _, l := range w.Liars[:3] {
					l.SetError(30 * time.Second)
				}
			})
		},
		Verify: func(r *Report) []string {
			var v []string
			if r.Count(core.EventPanicStep) == 0 {
				v = append(v, "liar majority never tripped the panic gate")
			}
			// The clock must never be yanked toward the +30 s lie; with
			// the learned frequency still applied it stays near true
			// time even while most rounds are refused.
			if worst := r.MaxAbsOffset(25*time.Minute, r.Scenario.Duration); worst > time.Second {
				v = append(v, fmt.Sprintf("clock followed the liars: worst offset %v", worst))
			}
			return v
		},
	}
}

// suspendJump steps the wall clock +90 s while virtual monotonic time
// keeps flowing — a suspend/resume. The client must detect the
// divergence, discard in-flight samples, re-enter warm-up, and then
// legitimately step the clock back (the discipline is cold after the
// resume, so the big recovery step is allowed — and only then).
func suspendJump() Scenario {
	return Scenario{
		Name: "suspend-jump",
		Seed: 404,
		Script: func(w *World) {
			w.Sched.After(25*time.Minute, func() { w.Clk.Step(90 * time.Second) })
		},
		AllowLargeSteps: []Window{{From: 25 * time.Minute, To: 45 * time.Minute}},
		Verify: func(r *Report) []string {
			var v []string
			if r.Count(core.EventResumed) == 0 {
				v = append(v, "90s wall-vs-mono divergence never detected")
			}
			resumedAt, _ := r.FirstAt(core.EventResumed)
			warmupAfter := false
			for _, e := range r.Events {
				if e.Kind == core.EventAccepted && e.Phase == core.PhaseWarmup && e.Elapsed > resumedAt {
					warmupAfter = true
					break
				}
			}
			if !warmupAfter {
				v = append(v, "no fresh warm-up after the detected resume")
			}
			for _, e := range r.Events {
				if e.Kind == core.EventPanicStep && e.Elapsed > resumedAt {
					v = append(v, "recovery step after resume was panic-refused (desync not applied)")
					break
				}
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// asymSpike adds 400 ms of uplink-only delay for 10 minutes — the
// classic asymmetric path that biases measured offsets by −200 ms.
// The delay gate and trend filter must keep the biased samples off the
// clock: the true offset stays converged straight through the spike.
func asymSpike() Scenario {
	return Scenario{
		Name: "asym-spike",
		Seed: 505,
		Script: func(w *World) {
			w.Sched.After(25*time.Minute, func() {
				for _, g := range w.Gates {
					g.SetExtra(400*time.Millisecond, 0)
				}
			})
			w.Sched.After(35*time.Minute, func() {
				for _, g := range w.Gates {
					g.SetExtra(0, 0)
				}
			})
		},
		Verify: func(r *Report) []string {
			var v []string
			// Converged before the spike, and never knocked off by it:
			// a 200 ms bias accepted even once would show up here.
			if worst := r.MaxAbsOffset(20*time.Minute, r.Scenario.Duration); worst > 30*time.Millisecond {
				v = append(v, fmt.Sprintf("asymmetry moved the clock: worst offset %v", worst))
			}
			rejectedDuring := 0
			for _, e := range r.Events {
				if e.Kind == core.EventRejected && e.Elapsed >= 25*time.Minute && e.Elapsed < 36*time.Minute {
					rejectedDuring++
				}
			}
			if rejectedDuring == 0 {
				v = append(v, "no biased sample was rejected during the spike (gates inert?)")
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// wirelessDegradation saturates the channel (heavy cross traffic,
// transmit power cut to 2 dBm) for 15 minutes. MNTP's hint gating
// should defer requests rather than consume garbage; the clock rides
// through on its corrected frequency and re-converges afterwards.
func wirelessDegradation() Scenario {
	return Scenario{
		Name: "wireless-degradation",
		Seed: 606,
		Script: func(w *World) {
			w.Sched.After(20*time.Minute, func() {
				w.Channel.AddLoad(0.85)
				w.Channel.SetTxPower(2)
			})
			w.Sched.After(35*time.Minute, func() {
				w.Channel.AddLoad(-0.85)
				w.Channel.SetTxPower(20)
			})
		},
		Verify: func(r *Report) []string {
			var v []string
			deferred := 0
			for _, e := range r.Events {
				if e.Kind == core.EventDeferred && e.Elapsed >= 20*time.Minute && e.Elapsed < 36*time.Minute {
					deferred++
				}
			}
			if deferred == 0 {
				v = append(v, "degraded channel never deferred a request: gating inert")
			}
			if n := r.AcceptedAfter(36 * time.Minute); n == 0 {
				v = append(v, "no sample accepted after the channel recovered")
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// roam models switching networks: a 20 s outage, then a new path with
// different delays, announced through the NetworkChanged hook. The
// pool's path health resets, the client re-probes on a jittered
// backoff, and samples keep flowing on the new path.
func roam() Scenario {
	return Scenario{
		Name: "roam",
		Seed: 707,
		Script: func(w *World) {
			w.Sched.After(25*time.Minute, func() {
				for _, g := range w.Gates {
					g.SetDown(true)
				}
			})
			w.Sched.After(25*time.Minute+20*time.Second, func() {
				for i, g := range w.Gates {
					g.SetDown(false)
					// The new network reaches the same pool through
					// different (symmetric) backbone delays.
					g.SetExtra(time.Duration(15+5*i)*time.Millisecond, time.Duration(15+5*i)*time.Millisecond)
				}
				w.Client.NetworkChanged()
			})
		},
		Verify: func(r *Report) []string {
			var v []string
			if r.Count(core.EventNetworkChanged) == 0 {
				v = append(v, "NetworkChanged never surfaced as an event")
			}
			if n := r.AcceptedAfter(27 * time.Minute); n == 0 {
				v = append(v, "no sample accepted on the new network")
			}
			return append(v, verifyConverged(r)...)
		},
	}
}

// verifyConverged is the shared tail check: the run ends with the
// clock inside the convergence bound.
func verifyConverged(r *Report) []string {
	off := r.Final
	if off < 0 {
		off = -off
	}
	if off > convergence {
		return []string{fmt.Sprintf("final clock error %v, want ≤ %v", r.Final, convergence)}
	}
	return nil
}
