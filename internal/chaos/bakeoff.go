package chaos

import (
	"fmt"
	"strings"
	"time"

	"mntp/internal/trend"
)

// BakeOffCell is one scenario × estimator outcome.
type BakeOffCell struct {
	Scenario  string
	Estimator trend.Kind
	// Final is the absolute true clock offset when the run ended —
	// the per-scenario accuracy the bake-off compares.
	Final time.Duration
	// Violations are the scenario's acceptance failures (empty = pass).
	Violations []string
}

// BakeOff runs every named scenario under each estimator kind and
// returns the grid, scenarios in Scenarios() order and estimators in
// trend.Kinds() order within each scenario.
func BakeOff() []BakeOffCell {
	var out []BakeOffCell
	for _, sc := range Scenarios() {
		for _, kind := range trend.Kinds() {
			sc := sc
			sc.Estimator = kind
			r := Run(sc)
			final := r.Final
			if final < 0 {
				final = -final
			}
			out = append(out, BakeOffCell{
				Scenario:   sc.Name,
				Estimator:  kind,
				Final:      final,
				Violations: r.Violations(),
			})
		}
	}
	return out
}

// BakeOffTable renders the grid as a GitHub-flavored markdown table:
// one row per scenario, one final-|offset| column per estimator, best
// estimator bolded, with a trailing pass/fail marker per cell.
func BakeOffTable(cells []BakeOffCell) string {
	kinds := trend.Kinds()
	byScenario := make(map[string]map[trend.Kind]BakeOffCell)
	var order []string
	for _, c := range cells {
		m, ok := byScenario[c.Scenario]
		if !ok {
			m = make(map[trend.Kind]BakeOffCell)
			byScenario[c.Scenario] = m
			order = append(order, c.Scenario)
		}
		m[c.Estimator] = c
	}

	var b strings.Builder
	b.WriteString("| scenario |")
	for _, k := range kinds {
		fmt.Fprintf(&b, " %s |", k)
	}
	b.WriteString("\n|---|")
	b.WriteString(strings.Repeat("---|", len(kinds)))
	b.WriteString("\n")
	for _, name := range order {
		row := byScenario[name]
		// Find the best (smallest) final offset among passing cells.
		best := trend.Kind("")
		for _, k := range kinds {
			c, ok := row[k]
			if !ok || len(c.Violations) > 0 {
				continue
			}
			if best == "" || c.Final < row[best].Final {
				best = k
			}
		}
		fmt.Fprintf(&b, "| %s |", name)
		for _, k := range kinds {
			c, ok := row[k]
			if !ok {
				b.WriteString(" — |")
				continue
			}
			cell := fmtOffset(c.Final)
			if len(c.Violations) > 0 {
				cell += " ✗"
			} else if k == best {
				cell = "**" + cell + "** ✓"
			} else {
				cell += " ✓"
			}
			fmt.Fprintf(&b, " %s |", cell)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fmtOffset renders a final offset with stable precision so the table
// is diffable across runs (microsecond resolution, ms units).
func fmtOffset(d time.Duration) string {
	return fmt.Sprintf("%.3f ms", float64(d)/float64(time.Millisecond))
}
