package chaos

import (
	"testing"
	"time"

	"mntp/internal/netsim"
	"mntp/internal/trend"
)

// TestScenarios runs every named chaos scenario under each trend
// estimator (the ISSUE's bake-off: least squares, Theil-Sen, LAD) and
// enforces both the universal invariant (no step beyond the panic
// threshold after warm-up, outside explicitly allowed recovery
// windows) and each scenario's own acceptance checks — including the
// ≤ 25 ms re-convergence bound — for every combination. Virtual time
// keeps the whole 7×3 grid cheap enough for CI under -race.
func TestScenarios(t *testing.T) {
	for _, kind := range trend.Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			for _, sc := range Scenarios() {
				sc := sc
				sc.Estimator = kind
				t.Run(sc.Name, func(t *testing.T) {
					t.Parallel()
					r := Run(sc)
					for _, v := range r.Violations() {
						t.Error(v)
					}
					if t.Failed() {
						t.Logf("final offset %v, state %s, events %v, %d steps",
							r.Final, r.FinalState, r.Counts, len(r.Steps))
					}
				})
			}
		})
	}
}

// TestGateImpairments pins the Gate's semantics in isolation.
func TestGateImpairments(t *testing.T) {
	inner := netsim.FuncPath(func(time.Duration, netsim.Direction) (time.Duration, bool) {
		return 10 * time.Millisecond, false
	})
	g := NewGate(inner, 1)

	if d, lost := g.SampleOneWay(0, netsim.Uplink); lost || d != 10*time.Millisecond {
		t.Fatalf("transparent gate: %v %v", d, lost)
	}
	g.SetDown(true)
	if _, lost := g.SampleOneWay(0, netsim.Uplink); !lost {
		t.Fatal("down gate must lose packets")
	}
	g.SetDown(false)
	g.SetExtra(40*time.Millisecond, 5*time.Millisecond)
	if d, _ := g.SampleOneWay(0, netsim.Uplink); d != 50*time.Millisecond {
		t.Fatalf("uplink extra: %v", d)
	}
	if d, _ := g.SampleOneWay(0, netsim.Downlink); d != 15*time.Millisecond {
		t.Fatalf("downlink extra: %v", d)
	}
	g.SetExtra(0, 0)
	g.SetLoss(1)
	if _, lost := g.SampleOneWay(0, netsim.Uplink); !lost {
		t.Fatal("loss=1 gate must lose packets")
	}
}
