package chaos

import (
	"time"

	"mntp/internal/population"
)

// Population promotions: the chaos harness' single-client fault
// windows (blackout, falseticker) replayed over a population.Engine,
// using the engine's control hooks (At / SetOutage / SetUpstreamErr)
// the way single-client scenarios use the Gate and LiarClock. The
// one-client harness answers "does this client survive the fault?";
// these answer the fleet question — does anyone starve, and does the
// fault move the population?

func populationUpstreams() []population.Upstream {
	return []population.Upstream{
		{Name: "s0", Err: 1 * time.Millisecond, Stratum: 2},
		{Name: "s1", Err: -2 * time.Millisecond, Stratum: 2},
		{Name: "s2", Err: 2 * time.Millisecond, Stratum: 2},
		{Name: "s3", Err: -1 * time.Millisecond, Stratum: 3},
	}
}

// PopulationBlackout promotes the blackout scenario: a total network
// outage over w hits every one of n clients, and after restoration
// the whole fleet must be served and re-converged by the horizon.
func PopulationBlackout(n int, seed int64, w Window, horizon time.Duration) (*population.Report, error) {
	e, err := population.New(population.Config{
		N:           n,
		Seed:        seed,
		Mode:        population.ModeSim,
		Upstreams:   populationUpstreams(),
		PollBase:    64 * time.Second,
		PollJitter:  0.1,
		StartSpread: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	e.At(w.From, func() { e.SetOutage(true) })
	e.At(w.To, func() { e.SetOutage(false) })
	if err := e.Run(horizon); err != nil {
		return nil, err
	}

	r := &population.Report{Scenario: "chaos-blackout", N: n, Seed: seed, Mode: "sim"}
	if e.Totals().Fails == 0 {
		r.Violate("blackout window produced no failed polls (harness broken)")
	}
	if got := e.ServedClients(); got < n {
		r.Violate("%d of %d clients never served after the blackout lifted", n-got, n)
	}
	if st := e.Stats(0); st.Median > 20*time.Millisecond {
		r.Violate("population median %v after recovery, want ≤ 20ms", st.Median)
	}
	r.Finish(e, horizon)
	return r, nil
}

// PopulationFalsetickerFlip promotes the falseticker scenario: an
// honest upstream turns into a 400ms liar for the window w, dragging
// the clients locked to it, then recants. Mid-window the lie must
// show in the population tail; by the horizon the fleet must have
// re-converged and the median must never have moved.
func PopulationFalsetickerFlip(n int, seed int64, w Window, horizon time.Duration) (*population.Report, error) {
	const liarErr = 400 * time.Millisecond
	e, err := population.New(population.Config{
		N:           n,
		Seed:        seed,
		Mode:        population.ModeSim,
		Upstreams:   populationUpstreams(),
		PollBase:    64 * time.Second,
		PollJitter:  0.1,
		StartSpread: 30 * time.Second,
	})
	if err != nil {
		return nil, err
	}
	var mid population.OffsetStats
	e.At(w.From, func() { e.SetUpstreamErr(0, liarErr) })
	e.At(w.To-time.Second, func() { mid = e.Stats(100 * time.Millisecond) })
	e.At(w.To, func() { e.SetUpstreamErr(0, 1*time.Millisecond) })
	if err := e.Run(horizon); err != nil {
		return nil, err
	}

	r := &population.Report{Scenario: "chaos-falseticker-flip", N: n, Seed: seed, Mode: "sim"}
	if mid.FracAbove < 0.02 {
		r.Violate("mid-window only %.1f%% of clients beyond 100ms: the flipped server captured nobody (harness broken)", 100*mid.FracAbove)
	}
	if mid.Median > 25*time.Millisecond {
		r.Violate("mid-window population median %v > 25ms: one liar moved the median", mid.Median)
	}
	st := e.Stats(100 * time.Millisecond)
	if st.Median > 20*time.Millisecond {
		r.Violate("population median %v after the flip-back, want ≤ 20ms", st.Median)
	}
	if st.FracAbove > 0.01 {
		r.Violate("%.1f%% of clients still beyond 100ms after the flip-back", 100*st.FracAbove)
	}
	r.Finish(e, horizon)
	return r, nil
}
