package chaos

import (
	"testing"
	"time"
)

// TestPopulationBlackout promotes the single-client blackout scenario
// to a 2k-client fleet: everyone loses the network for 3 poll rounds
// and everyone must be served and re-converged by the horizon.
func TestPopulationBlackout(t *testing.T) {
	r, err := PopulationBlackout(2000, 9,
		Window{From: 5 * 64 * time.Second, To: 8 * 64 * time.Second},
		14*64*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("population blackout violations: %v", r.Violations)
	}
	if r.Fails == 0 {
		t.Fatal("report lost the failure count")
	}
}

// TestPopulationFalsetickerFlip promotes the falseticker scenario: an
// honest upstream lies by 400ms for 3 rounds; its captives show in
// the population tail mid-window, the median never moves, and the
// fleet re-converges after the flip-back.
func TestPopulationFalsetickerFlip(t *testing.T) {
	r, err := PopulationFalsetickerFlip(4000, 9,
		Window{From: 5 * 64 * time.Second, To: 8 * 64 * time.Second},
		14*64*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Pass {
		t.Fatalf("population falseticker-flip violations: %v", r.Violations)
	}
}
