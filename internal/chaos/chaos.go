// Package chaos is a scenario harness for the guarded clock
// discipline: it scripts faults — total blackouts, kiss-of-death
// storms, falseticker majorities, suspend jumps, asymmetric-delay
// spikes, wireless degradation and network roams — against the full
// MNTP client over the discrete-event testbed, and reports what the
// discipline did about them.
//
// The harness composes pieces that already exist elsewhere in the
// repository rather than re-modelling them: netsim supplies virtual
// time and per-server paths, wireless.Channel the 802.11 access hop,
// ntpnet.FaultTransport the transport-level fault injection (KoD
// storms, duplication, corruption), and internal/core the client under
// test. What chaos adds is the choreography — when each fault starts
// and stops — plus the instrumentation to assert the ISSUE's
// invariants: after warm-up the clock is never stepped beyond the
// panic threshold (except where a scenario explicitly allows it, e.g.
// the legitimate recovery step after a detected suspend), and the
// client re-converges within a bounded error once the fault clears.
package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/ntpnet"
	"mntp/internal/sysclock"
	"mntp/internal/trend"
	"mntp/internal/wireless"
)

// epoch matches the rest of the testbed: the paper's trace collection
// started 2016-11-14.
var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// Gate wraps a path segment with scriptable impairments: a hard
// down switch (packets vanish), extra per-direction delay (asymmetry
// spikes, path changes after a roam) and additional loss. Scenarios
// flip these from scheduler callbacks mid-run; the mutex makes that
// safe regardless of which goroutine the scheduler dispatches on.
type Gate struct {
	mu    sync.Mutex
	inner netsim.PathModel
	rng   *rand.Rand

	down      bool
	extraUp   time.Duration
	extraDown time.Duration
	loss      float64
}

// NewGate wraps inner with an initially transparent gate.
func NewGate(inner netsim.PathModel, seed int64) *Gate {
	return &Gate{inner: inner, rng: rand.New(rand.NewSource(seed))}
}

// SetDown switches the hard outage on or off.
func (g *Gate) SetDown(down bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.down = down
}

// SetExtra sets additional one-way delay per direction. Unequal
// values create exactly the path asymmetry that corrupts NTP offsets
// (error = (up − down)/2).
func (g *Gate) SetExtra(up, down time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.extraUp, g.extraDown = up, down
}

// SetLoss sets additional packet loss probability.
func (g *Gate) SetLoss(p float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.loss = p
}

// SampleOneWay implements netsim.PathModel.
func (g *Gate) SampleOneWay(now time.Duration, dir netsim.Direction) (time.Duration, bool) {
	g.mu.Lock()
	down, loss := g.down, g.loss
	extra := g.extraUp
	if dir == netsim.Downlink {
		extra = g.extraDown
	}
	lost := loss > 0 && g.rng.Float64() < loss
	g.mu.Unlock()
	if down || lost {
		return 0, true
	}
	d, lostInner := g.inner.SampleOneWay(now, dir)
	if lostInner {
		return 0, true
	}
	return d + extra, false
}

// LiarClock is a server clock whose error is scriptable at runtime —
// a falseticker that can start truthful and begin lying mid-scenario,
// after the client has synchronized and armed its panic gate.
type LiarClock struct {
	mu   sync.Mutex
	base clock.Clock
	err  time.Duration
}

// Now returns the base time shifted by the current error.
func (l *LiarClock) Now() time.Time {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.base.Now().Add(l.err)
}

// SetError sets the lie.
func (l *LiarClock) SetError(d time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.err = d
}

// StepRec records one clock step the discipline applied.
type StepRec struct {
	At     time.Duration // virtual time of the step
	Amount time.Duration
}

// StepRecorder wraps an adjuster and records every applied step, so
// reports can prove "no step beyond the panic threshold after
// warm-up" from what actually hit the clock, not from events alone.
type StepRecorder struct {
	Inner sysclock.Adjuster
	Now   func() time.Duration

	mu    sync.Mutex
	steps []StepRec
}

// Step implements sysclock.Adjuster.
func (r *StepRecorder) Step(d time.Duration) error {
	if err := r.Inner.Step(d); err != nil {
		return err
	}
	r.mu.Lock()
	r.steps = append(r.steps, StepRec{At: r.Now(), Amount: d})
	r.mu.Unlock()
	return nil
}

// AdjustFreq implements sysclock.Adjuster.
func (r *StepRecorder) AdjustFreq(f float64) error { return r.Inner.AdjustFreq(f) }

// Steps returns a copy of the recorded steps.
func (r *StepRecorder) Steps() []StepRec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]StepRec, len(r.steps))
	copy(out, r.steps)
	return out
}

// World is the assembled testbed a scenario script manipulates. The
// fields populated at construction (Sched, Channel, Net, Clk, Gates,
// Liars) are valid immediately; Client, Fault and Steps come to life
// when the client process starts at virtual t=0, so scripts must only
// dereference them inside scheduled callbacks (which fire later).
type World struct {
	Sched   *netsim.Scheduler
	Channel *wireless.Channel
	Net     *netsim.Network
	Clk     *clock.Sim
	Gates   []*Gate      // per-server wired-backbone gates
	Liars   []*LiarClock // per-server scriptable clocks (error 0 = truthful)
	Fault   *ntpnet.FaultTransport
	Steps   *StepRecorder
	Client  *core.Client
}

// numServers is the pool size: four references, like a typical
// 0..3.pool.ntp.org configuration.
const numServers = 4

// newWorld assembles the testbed: four servers with scriptable clocks,
// each reached through the shared wireless hop plus a gated wired
// backbone, pooled under the name "pool"; and a drifting client clock.
func newWorld(seed int64, clkCfg clock.Config) *World {
	sched := netsim.NewScheduler(epoch)
	truth := clock.NewTrue(epoch, sched.Now)
	ch := wireless.NewChannel(wireless.Params{Seed: seed}, sched.Now)
	net := netsim.NewNetwork(sched)

	w := &World{Sched: sched, Channel: ch, Net: net}
	var members []*netsim.Server
	for i := 0; i < numServers; i++ {
		liar := &LiarClock{base: truth}
		w.Liars = append(w.Liars, liar)
		srv := netsim.NewServer(fmt.Sprintf("ref%d", i), liar, 2, seed*10+int64(i))
		members = append(members, srv)
		gate := NewGate(
			netsim.NewWiredPath(time.Duration(8+4*i)*time.Millisecond, time.Millisecond, 0, 0, seed*100+int64(i)),
			seed*1000+int64(i))
		w.Gates = append(w.Gates, gate)
		net.AddServer(srv, &netsim.CompositePath{Segments: []netsim.PathModel{ch, gate}})
	}
	net.AddPool(netsim.NewPool("pool", members, seed+1000))
	w.Clk = clock.NewSim(clkCfg, epoch, sched.Now)
	return w
}

// BaseParams is the client configuration every scenario starts from:
// a compressed MNTP schedule (8 min warm-up at 10 s cadence, 30 s
// regular rounds, 2 h reset) so faults and recoveries fit in ~1 h of
// virtual time, with the guarded-discipline knobs tight enough to
// exercise: steps beyond 100 ms, panic refusals beyond 2 s, holdover
// after 3 dry rounds for at most 45 min, and 10 min KoD hold-downs so
// a storm's aftermath clears within the scenario.
func BaseParams() core.Params {
	p := core.DefaultParams("pool")
	p.WarmupPeriod = 8 * time.Minute
	p.WarmupWaitTime = 10 * time.Second
	p.RegularWaitTime = 30 * time.Second
	p.ResetPeriod = 2 * time.Hour
	p.StepThreshold = 100 * time.Millisecond
	p.PanicThreshold = 2 * time.Second
	p.HoldoverMax = 45 * time.Minute
	p.HoldoverAfter = 3
	p.KoDHoldDown = 10 * time.Minute
	p.FailoverTries = 2
	return p
}

// Window is a virtual-time interval.
type Window struct {
	From, To time.Duration
}

// contains reports whether t falls inside the window.
func (w Window) contains(t time.Duration) bool { return t >= w.From && t < w.To }

// Scenario is one scripted fault sequence plus its acceptance checks.
type Scenario struct {
	// Name identifies the scenario in reports and test output.
	Name string
	// Seed drives all randomness (paths, channel, fault transport).
	Seed int64
	// Duration is total virtual run time (default 75 min).
	Duration time.Duration
	// Clock configures the client oscillator (default: 30 ppm skew,
	// 150 ms initial offset).
	Clock clock.Config
	// Estimator selects the filter's trend estimator for the run
	// (empty means the paper's least squares). The bake-off runs every
	// scenario under each trend.Kinds() entry.
	Estimator trend.Kind
	// Tune, if non-nil, adjusts the base parameters.
	Tune func(*core.Params)
	// Script schedules the faults. It runs before the simulation
	// starts; use w.Sched.After/At/Every to act at virtual times, and
	// only touch w.Client/w.Fault inside those callbacks.
	Script func(w *World)
	// AllowLargeSteps are windows in which a step beyond the panic
	// threshold is legitimate (e.g. the cold recovery step after a
	// detected suspend). Everywhere else after warm-up, such a step
	// fails the run.
	AllowLargeSteps []Window
	// Verify returns scenario-specific violations (empty = pass). The
	// universal step invariant is checked by Report.Violations, not
	// here.
	Verify func(r *Report) []string
}

// TrajPoint is one sample of the clock's true offset.
type TrajPoint struct {
	At     time.Duration
	Offset time.Duration
}

// Report is the outcome of one scenario run.
type Report struct {
	Scenario Scenario
	Params   core.Params
	// Events is every client event in order.
	Events []core.Event
	// Counts indexes events by kind.
	Counts map[core.EventKind]int
	// Steps is every clock step the discipline applied.
	Steps []StepRec
	// Trajectory samples the true clock offset every 30 s.
	Trajectory []TrajPoint
	// Final is the true offset when the run ended.
	Final time.Duration
	// FinalState is the discipline state when the run ended.
	FinalState string
}

// Count returns how many events of the kind occurred.
func (r *Report) Count(k core.EventKind) int { return r.Counts[k] }

// FirstAt returns the virtual time of the first event of the kind.
func (r *Report) FirstAt(k core.EventKind) (time.Duration, bool) {
	for _, e := range r.Events {
		if e.Kind == k {
			return e.Elapsed, true
		}
	}
	return 0, false
}

// AcceptedAfter counts accepted samples at or after t.
func (r *Report) AcceptedAfter(t time.Duration) int {
	n := 0
	for _, e := range r.Events {
		if e.Kind == core.EventAccepted && e.Elapsed >= t {
			n++
		}
	}
	return n
}

// MaxAbsOffset returns the largest |true offset| sampled in [from, to).
func (r *Report) MaxAbsOffset(from, to time.Duration) time.Duration {
	var worst time.Duration
	for _, p := range r.Trajectory {
		if p.At < from || p.At >= to {
			continue
		}
		off := p.Offset
		if off < 0 {
			off = -off
		}
		if off > worst {
			worst = off
		}
	}
	return worst
}

// Violations checks the universal invariant — after the first
// warm-up, no applied step exceeds the panic threshold outside the
// scenario's allowed windows — and then appends the scenario's own
// checks.
func (r *Report) Violations() []string {
	var out []string
	warmupEnd := r.Params.WarmupPeriod
	limit := r.Params.PanicThreshold
	for _, s := range r.Steps {
		if s.At < warmupEnd {
			continue
		}
		amount := s.Amount
		if amount < 0 {
			amount = -amount
		}
		if amount <= limit {
			continue
		}
		allowed := false
		for _, w := range r.Scenario.AllowLargeSteps {
			if w.contains(s.At) {
				allowed = true
				break
			}
		}
		if !allowed {
			out = append(out, fmt.Sprintf(
				"step of %v at %v exceeds panic threshold %v outside any allowed window",
				s.Amount, s.At, limit))
		}
	}
	if r.Scenario.Verify != nil {
		out = append(out, r.Scenario.Verify(r)...)
	}
	return out
}

// Run executes the scenario and returns its report.
func Run(sc Scenario) *Report {
	if sc.Duration == 0 {
		sc.Duration = 75 * time.Minute
	}
	if (sc.Clock == clock.Config{}) {
		sc.Clock = clock.Config{SkewPPM: 30, InitialOffset: 150 * time.Millisecond, Seed: sc.Seed}
	}
	params := BaseParams()
	params.Estimator = sc.Estimator
	if sc.Tune != nil {
		sc.Tune(&params)
	}
	w := newWorld(sc.Seed, sc.Clock)
	rep := &Report{Scenario: sc, Params: params, Counts: make(map[core.EventKind]int)}

	w.Sched.Go(func(p *netsim.Proc) {
		inner := &netsim.Transport{Net: w.Net, Proc: p, Clock: w.Clk}
		w.Fault = &ntpnet.FaultTransport{Inner: inner, Clock: w.Clk, Sleeper: p, Seed: sc.Seed}
		w.Steps = &StepRecorder{Inner: sysclock.SimAdjuster{Clock: w.Clk}, Now: w.Sched.Now}
		cl := core.New(w.Clk, w.Steps, w.Fault, w.Channel, p, params)
		// Virtual scheduler time is the simulation's CLOCK_MONOTONIC:
		// it never jumps, while the sim wall clock can be stepped —
		// exactly the divergence the suspend detector watches.
		cl.Mono = w.Sched.Now
		cl.OnEvent = func(e core.Event) {
			rep.Events = append(rep.Events, e)
			rep.Counts[e.Kind]++
		}
		w.Client = cl
		cl.Run(sc.Duration)
	})
	w.Sched.Every(30*time.Second, 30*time.Second, func() bool {
		rep.Trajectory = append(rep.Trajectory, TrajPoint{At: w.Sched.Now(), Offset: w.Clk.TrueOffset()})
		return w.Sched.Now() < sc.Duration
	})
	if sc.Script != nil {
		sc.Script(w)
	}
	w.Sched.Run()

	rep.Steps = w.Steps.Steps()
	rep.Final = w.Clk.TrueOffset()
	rep.FinalState = w.Client.Discipline().State().String()
	return rep
}

var (
	_ netsim.PathModel  = (*Gate)(nil)
	_ clock.Clock       = (*LiarClock)(nil)
	_ sysclock.Adjuster = (*StepRecorder)(nil)
	_ hints.Provider    = (*wireless.Channel)(nil)
)
