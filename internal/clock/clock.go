// Package clock models the oscillator-driven clocks of the MNTP study:
// a simulated host clock with initial offset, constant skew, frequency
// wander and temperature sensitivity (the error sources §2 and §3.2 of
// the paper attribute to "crystal oscillator quality and environmental
// conditions"), plus the adjustment operations (step, slew, frequency
// trim) that synchronization protocols apply.
//
// Simulated clocks are functions of *true time*, which in this
// repository is the virtual time of the discrete-event scheduler
// (internal/netsim). The harness can therefore measure a clock's true
// offset exactly — the quantity the paper calls the offset "according
// to the national standards".
package clock

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Clock is the reading interface synchronization clients use.
type Clock interface {
	// Now returns the clock's current indication of time.
	Now() time.Time
}

// Adjustable extends Clock with the correction operations protocols
// apply: an immediate step, and a frequency trim that compensates
// estimated drift (the paper's correctSystemClock and
// correctSystemClockDrift steps of Algorithm 1).
type Adjustable interface {
	Clock
	// Step adds delta to the clock immediately.
	Step(delta time.Duration)
	// AdjustFreq sets the frequency correction in seconds per second
	// (e.g. −12e-6 to cancel a +12 ppm drift). The correction is
	// absolute, not cumulative.
	AdjustFreq(correction float64)
	// FreqCorrection returns the current frequency correction.
	FreqCorrection() float64
}

// Config parameterizes a simulated oscillator clock. The defaults (see
// DefaultConfig) correspond to a commodity laptop/phone crystal: tens
// of ppm constant skew, sub-ppm wander, and a small temperature
// coefficient.
type Config struct {
	// InitialOffset is the clock's error at true time zero.
	InitialOffset time.Duration
	// SkewPPM is the constant frequency error in parts per million.
	// Positive skew makes the clock run fast.
	SkewPPM float64
	// WanderPPMPerSqrtHour is the standard deviation of the frequency
	// random walk, in ppm accumulated per square-root hour.
	WanderPPMPerSqrtHour float64
	// TempCoeffPPMPerC is the frequency sensitivity to temperature in
	// ppm per degree Celsius away from the reference temperature.
	TempCoeffPPMPerC float64
	// TempAmplitudeC and TempPeriod shape a sinusoidal ambient
	// temperature excursion around the reference (e.g. HVAC cycles).
	TempAmplitudeC float64
	TempPeriod     time.Duration
	// Seed drives the wander process. Clocks with equal configs and
	// seeds are identical.
	Seed int64
}

// DefaultConfig returns a typical uncompensated crystal configuration:
// 18 ppm fast, mild wander and temperature sensitivity. 18 ppm ≈ 65 ms
// of accumulated error per hour, in line with the free-running drift
// visible in the paper's Figures 8 and 12.
func DefaultConfig(seed int64) Config {
	return Config{
		InitialOffset:        0,
		SkewPPM:              18,
		WanderPPMPerSqrtHour: 0.4,
		TempCoeffPPMPerC:     0.08,
		TempAmplitudeC:       3,
		TempPeriod:           45 * time.Minute,
		Seed:                 seed,
	}
}

// quantum is the integration step of the oscillator state. Wander is
// injected per quantum so the noise path is independent of the query
// pattern.
const quantum = time.Second

// Sim is a simulated oscillator clock. It is driven by a TrueTime
// source (typically the scheduler) and is safe for concurrent use.
type Sim struct {
	mu sync.Mutex

	cfg      Config
	trueNow  func() time.Duration // true elapsed time source
	epoch    time.Time            // wall-clock anchor for Now()
	rng      *rand.Rand
	lastTrue time.Duration // true time the state was integrated to
	offset   float64       // seconds of error at lastTrue
	wander   float64       // accumulated random-walk frequency (s/s)
	adjFreq  float64       // applied frequency correction (s/s)
}

// NewSim creates a simulated clock. trueNow must return monotonically
// non-decreasing true elapsed time (the scheduler's Now); epoch anchors
// the returned wall-clock times.
func NewSim(cfg Config, epoch time.Time, trueNow func() time.Duration) *Sim {
	return &Sim{
		cfg:     cfg,
		trueNow: trueNow,
		epoch:   epoch,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		offset:  cfg.InitialOffset.Seconds(),
	}
}

// advanceTo integrates the oscillator state forward to true time t.
// Must be called with mu held.
func (s *Sim) advanceTo(t time.Duration) {
	if t <= s.lastTrue {
		return
	}
	wanderPerSqrtSec := s.cfg.WanderPPMPerSqrtHour * 1e-6 / math.Sqrt(3600)
	for s.lastTrue < t {
		step := quantum
		if rem := t - s.lastTrue; rem < step {
			step = rem
		}
		dt := step.Seconds()
		// Frequency error during this step.
		freq := s.cfg.SkewPPM*1e-6 + s.wander + s.tempFreq(s.lastTrue) + s.adjFreq
		s.offset += freq * dt
		// Random-walk the wander once per full quantum.
		if step == quantum {
			s.wander += wanderPerSqrtSec * math.Sqrt(dt) * s.rng.NormFloat64()
		}
		s.lastTrue += step
	}
}

// tempFreq returns the temperature-induced frequency error at true
// time t.
func (s *Sim) tempFreq(t time.Duration) float64 {
	if s.cfg.TempAmplitudeC == 0 || s.cfg.TempPeriod <= 0 || s.cfg.TempCoeffPPMPerC == 0 {
		return 0
	}
	phase := 2 * math.Pi * float64(t) / float64(s.cfg.TempPeriod)
	tempDelta := s.cfg.TempAmplitudeC * math.Sin(phase)
	return s.cfg.TempCoeffPPMPerC * 1e-6 * tempDelta
}

// Now returns the clock's current indication: epoch + true elapsed +
// accumulated error.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.trueNow()
	s.advanceTo(t)
	return s.epoch.Add(t).Add(time.Duration(s.offset * float64(time.Second)))
}

// TrueOffset returns the clock's current error relative to true time:
// positive means the clock is ahead. This is the harness-only oracle
// used to score experiments; protocol code never calls it.
func (s *Sim) TrueOffset() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.trueNow()
	s.advanceTo(t)
	return time.Duration(s.offset * float64(time.Second))
}

// Step adds delta to the clock immediately.
func (s *Sim) Step(delta time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceTo(s.trueNow())
	s.offset += delta.Seconds()
}

// AdjustFreq sets the frequency correction (seconds per second).
func (s *Sim) AdjustFreq(correction float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.advanceTo(s.trueNow())
	s.adjFreq = correction
}

// FreqCorrection returns the applied frequency correction.
func (s *Sim) FreqCorrection() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adjFreq
}

// RawFreqError returns the clock's current uncorrected frequency error
// in seconds per second (skew + wander + temperature), an oracle for
// tests asserting drift estimation accuracy.
func (s *Sim) RawFreqError() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.trueNow()
	s.advanceTo(t)
	return s.cfg.SkewPPM*1e-6 + s.wander + s.tempFreq(t)
}

// True is a perfect reference clock: it indicates exactly epoch + true
// elapsed time. Stratum-1 servers in the simulated pool use (small
// perturbations of) it.
type True struct {
	epoch   time.Time
	trueNow func() time.Duration
}

// NewTrue creates a perfect clock over the given true time source.
func NewTrue(epoch time.Time, trueNow func() time.Duration) *True {
	return &True{epoch: epoch, trueNow: trueNow}
}

// Now returns the exact true time.
func (t *True) Now() time.Time { return t.epoch.Add(t.trueNow()) }

// Fixed is a clock with a constant error relative to true time; the
// simulated pool uses it for servers whose absolute error is part of
// the scenario (false tickers).
type Fixed struct {
	Base  Clock
	Error time.Duration
}

// Now returns the base clock's time shifted by the configured error.
func (f *Fixed) Now() time.Time { return f.Base.Now().Add(f.Error) }

// System is the host's real clock; it backs the real-UDP deployments.
type System struct{}

// Now returns time.Now().
func (System) Now() time.Time { return time.Now() }

var (
	_ Adjustable = (*Sim)(nil)
	_ Clock      = (*True)(nil)
	_ Clock      = (*Fixed)(nil)
	_ Clock      = System{}
)
