package clock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// manualTime is a controllable true-time source.
type manualTime struct{ t time.Duration }

func (m *manualTime) now() time.Duration { return m.t }

func TestTrueClockExact(t *testing.T) {
	mt := &manualTime{}
	c := NewTrue(epoch, mt.now)
	if !c.Now().Equal(epoch) {
		t.Error("true clock at t=0 should be epoch")
	}
	mt.t = 90 * time.Minute
	if !c.Now().Equal(epoch.Add(90 * time.Minute)) {
		t.Error("true clock should track exactly")
	}
}

func TestSimInitialOffset(t *testing.T) {
	mt := &manualTime{}
	cfg := Config{InitialOffset: 250 * time.Millisecond, Seed: 1}
	c := NewSim(cfg, epoch, mt.now)
	if got := c.TrueOffset(); got != 250*time.Millisecond {
		t.Errorf("initial offset = %v", got)
	}
}

func TestSimConstantSkew(t *testing.T) {
	mt := &manualTime{}
	cfg := Config{SkewPPM: 20, Seed: 1} // no wander, no temperature
	c := NewSim(cfg, epoch, mt.now)
	mt.t = time.Hour
	// 20 ppm over 1 h = 72 ms.
	got := c.TrueOffset()
	want := 72 * time.Millisecond
	if d := got - want; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("1h skew offset = %v, want ~%v", got, want)
	}
}

func TestSimStep(t *testing.T) {
	mt := &manualTime{}
	c := NewSim(Config{Seed: 1}, epoch, mt.now)
	c.Step(-30 * time.Millisecond)
	if got := c.TrueOffset(); got != -30*time.Millisecond {
		t.Errorf("after step, offset = %v", got)
	}
}

func TestSimFreqCorrectionCancelsSkew(t *testing.T) {
	mt := &manualTime{}
	cfg := Config{SkewPPM: 20, Seed: 1}
	c := NewSim(cfg, epoch, mt.now)
	c.AdjustFreq(-20e-6)
	if got := c.FreqCorrection(); got != -20e-6 {
		t.Errorf("FreqCorrection = %v", got)
	}
	mt.t = 4 * time.Hour
	got := c.TrueOffset()
	if got < -time.Millisecond || got > time.Millisecond {
		t.Errorf("corrected clock drifted %v over 4h", got)
	}
}

func TestSimWanderIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) time.Duration {
		mt := &manualTime{}
		c := NewSim(Config{WanderPPMPerSqrtHour: 5, Seed: seed}, epoch, mt.now)
		mt.t = 2 * time.Hour
		return c.TrueOffset()
	}
	if run(7) != run(7) {
		t.Error("same seed must give identical wander")
	}
	if run(7) == run(8) {
		t.Error("different seeds should give different wander")
	}
}

func TestSimWanderIndependentOfQueryPattern(t *testing.T) {
	// Querying every second vs once at the end must integrate the same
	// noise path (fixed-quantum integration).
	one := func() time.Duration {
		mt := &manualTime{}
		c := NewSim(Config{WanderPPMPerSqrtHour: 5, Seed: 3}, epoch, mt.now)
		mt.t = 10 * time.Minute
		return c.TrueOffset()
	}()
	many := func() time.Duration {
		mt := &manualTime{}
		c := NewSim(Config{WanderPPMPerSqrtHour: 5, Seed: 3}, epoch, mt.now)
		for s := time.Duration(1); s <= 600; s++ {
			mt.t = s * time.Second
			c.Now()
		}
		return c.TrueOffset()
	}()
	if one != many {
		t.Errorf("query-pattern dependence: %v vs %v", one, many)
	}
}

func TestSimTemperatureModulation(t *testing.T) {
	mt := &manualTime{}
	cfg := Config{
		TempCoeffPPMPerC: 1, TempAmplitudeC: 10, TempPeriod: time.Hour, Seed: 1,
	}
	c := NewSim(cfg, epoch, mt.now)
	// Over one full period the sinusoid integrates to ~zero; at the
	// quarter period the integral is maximal. Just assert the effect
	// exists and is bounded.
	mt.t = 15 * time.Minute
	quarter := c.TrueOffset()
	if quarter == 0 {
		t.Error("temperature term had no effect")
	}
	// Max possible: 10 ppm for 900 s = 9 ms.
	if d := quarter; d < -9*time.Millisecond || d > 9*time.Millisecond {
		t.Errorf("temperature effect out of bounds: %v", d)
	}
}

func TestFixedClock(t *testing.T) {
	mt := &manualTime{}
	f := &Fixed{Base: NewTrue(epoch, mt.now), Error: 100 * time.Millisecond}
	if got := f.Now().Sub(epoch); got != 100*time.Millisecond {
		t.Errorf("fixed error = %v", got)
	}
}

func TestNowMonotoneUnderForwardTrueTime(t *testing.T) {
	mt := &manualTime{}
	c := NewSim(DefaultConfig(9), epoch, mt.now)
	prev := c.Now()
	for s := 1; s <= 300; s++ {
		mt.t = time.Duration(s) * time.Second
		cur := c.Now()
		if cur.Before(prev) {
			t.Fatalf("clock went backwards at %ds: %v < %v", s, cur, prev)
		}
		prev = cur
	}
}

// Property: for a drift-free, noise-free clock, Now() == epoch+true for
// any query time.
func TestQuickPerfectClockIdentity(t *testing.T) {
	f := func(secs uint16) bool {
		mt := &manualTime{t: time.Duration(secs) * time.Second}
		c := NewSim(Config{Seed: 1}, epoch, mt.now)
		return c.Now().Equal(epoch.Add(mt.t))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: offset error grows linearly with skew: doubling elapsed
// time doubles the accumulated offset (no wander configured).
func TestQuickSkewLinearity(t *testing.T) {
	f := func(ppmRaw uint8, minutes uint8) bool {
		ppm := float64(ppmRaw%100) + 1
		m := time.Duration(minutes%120+1) * time.Minute
		mt := &manualTime{}
		c := NewSim(Config{SkewPPM: ppm, Seed: 1}, epoch, mt.now)
		mt.t = m
		first := c.TrueOffset().Seconds()
		mt.t = 2 * m
		second := c.TrueOffset().Seconds()
		return math.Abs(second-2*first) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
