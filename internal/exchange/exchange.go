// Package exchange defines the transport abstraction shared by every
// synchronization client in this repository (SNTP, full NTP and MNTP)
// and the four-timestamp offset/delay computation of RFC 5905 §8.
//
// The same client code runs over the simulated network
// (netsim.Transport) and real UDP (ntpnet.Client) because both satisfy
// Transport.
package exchange

import (
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// Transport performs one NTP request/response exchange with the named
// server. It returns the reply packet and the client-clock time at
// which the reply was received (T4). The caller stamps req.Transmit
// (T1) before the call.
type Transport interface {
	Exchange(server string, req *ntppkt.Packet) (resp *ntppkt.Packet, t4 time.Time, err error)
}

// TransportFunc adapts a function to Transport, the way
// http.HandlerFunc adapts handlers. Tests and transport decorators
// (counting, fault injection) use it to wrap an inner transport
// without declaring a type.
type TransportFunc func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error)

// Exchange implements Transport.
func (f TransportFunc) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	return f(server, req)
}

// Sample is one completed measurement: the four timestamps and the
// derived clock offset θ and round-trip delay δ.
//
//	θ = ((T2 − T1) + (T3 − T4)) / 2
//	δ = (T4 − T1) − (T3 − T2)
//
// Offset is how far the server's clock is ahead of the client's: a
// client that is fast measures a negative offset.
type Sample struct {
	Server string
	// T1 and T4 are client-clock times (request transmit, reply
	// receive); T2 and T3 are the server-clock wire timestamps.
	T1, T4 time.Time
	T2, T3 ntptime.Timestamp
	Offset time.Duration
	Delay  time.Duration
	// Stratum and RootDelay/RootDisp describe the server's quality,
	// used by the full NTP client's selection machinery.
	Stratum             uint8
	RootDelay, RootDisp time.Duration
	// When is the client-clock time the sample was completed (== T4);
	// kept separate for clarity in filter bookkeeping.
	When time.Time
}

// Measure performs one exchange with the server using the client's
// clock for T1/T4 and returns the computed Sample. If simple is true a
// minimal SNTP-shaped request is sent, otherwise a full NTP client
// request. The reply is validated per RFC 4330 before computation.
func Measure(clk clock.Clock, tr Transport, server string, version uint8, simple bool) (Sample, error) {
	t1 := clk.Now()
	t1ts := ntptime.FromTime(t1)
	var req *ntppkt.Packet
	if simple {
		req = ntppkt.NewSNTPClient(version, t1ts)
	} else {
		req = ntppkt.NewClient(version, t1ts)
	}
	resp, t4, err := tr.Exchange(server, req)
	if err != nil {
		return Sample{}, err
	}
	if err := resp.ValidateServerReply(t1ts); err != nil {
		return Sample{}, err
	}
	t4ts := ntptime.FromTime(t4)
	offset := (resp.Receive.Sub(t1ts) + resp.Transmit.Sub(t4ts)) / 2
	delay := t4ts.Sub(t1ts) - resp.Transmit.Sub(resp.Receive)
	if delay < 0 {
		// Guard against pathological asymmetry/rounding; RFC 4330
		// floors the delay at zero for subsequent arithmetic.
		delay = 0
	}
	return Sample{
		Server: server,
		T1:     t1, T4: t4,
		T2: resp.Receive, T3: resp.Transmit,
		Offset:    offset,
		Delay:     delay,
		Stratum:   resp.Stratum,
		RootDelay: resp.RootDelay.Duration(),
		RootDisp:  resp.RootDisp.Duration(),
		When:      t4,
	}, nil
}
