package exchange

import (
	"errors"
	"testing"
	"time"

	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// scriptedTransport replies with fixed server-side timestamps offset
// from the request by the configured deltas.
type scriptedTransport struct {
	upDelay, procDelay, downDelay time.Duration
	serverAhead                   time.Duration
	clk                           *manualClock
	fail                          error
	mutate                        func(*ntppkt.Packet)
	lastReq                       *ntppkt.Packet
}

type manualClock struct{ t time.Time }

func (m *manualClock) Now() time.Time { return m.t }

func (s *scriptedTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	s.lastReq = req
	if s.fail != nil {
		return nil, time.Time{}, s.fail
	}
	// True time == client clock here (client perfect); server is ahead
	// by serverAhead.
	t1 := s.clk.t
	recv := t1.Add(s.upDelay).Add(s.serverAhead)
	xmit := recv.Add(s.procDelay)
	t4 := t1.Add(s.upDelay + s.procDelay + s.downDelay)
	s.clk.t = t4
	resp := &ntppkt.Packet{
		Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
		Stratum: 2, Origin: req.Transmit,
		Receive: ntptime.FromTime(recv), Transmit: ntptime.FromTime(xmit),
	}
	if s.mutate != nil {
		s.mutate(resp)
	}
	return resp, t4, nil
}

func TestMeasureSymmetric(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{
		upDelay: 30 * time.Millisecond, downDelay: 30 * time.Millisecond,
		procDelay: 0, serverAhead: 200 * time.Millisecond, clk: clk,
	}
	s, err := Measure(clk, tr, "srv", ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Offset - 200*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset = %v, want ~200ms", s.Offset)
	}
	if d := s.Delay - 60*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("delay = %v, want ~60ms", s.Delay)
	}
	if !s.When.Equal(s.T4) {
		t.Error("When != T4")
	}
}

func TestMeasureExcludesProcessingFromDelay(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{
		upDelay: 10 * time.Millisecond, downDelay: 10 * time.Millisecond,
		procDelay: 500 * time.Millisecond, clk: clk,
	}
	s, err := Measure(clk, tr, "srv", ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	// δ subtracts the server hold time (T3−T2).
	if d := s.Delay - 20*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("delay = %v, want ~20ms", s.Delay)
	}
}

func TestMeasureSimpleVsFullRequestShape(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{clk: clk}
	if _, err := Measure(clk, tr, "srv", ntppkt.Version4, true); err != nil {
		t.Fatal(err)
	}
	if !tr.lastReq.IsSNTPRequest() {
		t.Error("simple=true should send an SNTP-shaped request")
	}
	clk.t = epoch
	if _, err := Measure(clk, tr, "srv", ntppkt.Version4, false); err != nil {
		t.Fatal(err)
	}
	if tr.lastReq.IsSNTPRequest() {
		t.Error("simple=false should send a full client request")
	}
}

func TestMeasureTransportError(t *testing.T) {
	clk := &manualClock{t: epoch}
	sentinel := errors.New("boom")
	tr := &scriptedTransport{clk: clk, fail: sentinel}
	if _, err := Measure(clk, tr, "srv", ntppkt.Version4, true); !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestMeasureRejectsInvalidReply(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{clk: clk, mutate: func(p *ntppkt.Packet) {
		p.Leap = ntppkt.LeapNotSync
	}}
	if _, err := Measure(clk, tr, "srv", ntppkt.Version4, true); !errors.Is(err, ntppkt.ErrUnsynchronized) {
		t.Errorf("err = %v, want ErrUnsynchronized", err)
	}
}

func TestMeasureRejectsBogusOrigin(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{clk: clk, mutate: func(p *ntppkt.Packet) {
		p.Origin++
	}}
	if _, err := Measure(clk, tr, "srv", ntppkt.Version4, true); !errors.Is(err, ntppkt.ErrBogusOrigin) {
		t.Errorf("err = %v, want ErrBogusOrigin", err)
	}
}

func TestMeasureClientFastSeesNegativeOffset(t *testing.T) {
	clk := &manualClock{t: epoch}
	tr := &scriptedTransport{
		upDelay: 5 * time.Millisecond, downDelay: 5 * time.Millisecond,
		serverAhead: -150 * time.Millisecond, clk: clk, // server behind = client fast
	}
	s, err := Measure(clk, tr, "srv", ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Offset + 150*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset = %v, want ~-150ms", s.Offset)
	}
}

func TestTransportFuncAdapts(t *testing.T) {
	clk := &manualClock{t: epoch}
	inner := &scriptedTransport{
		upDelay: 10 * time.Millisecond, downDelay: 10 * time.Millisecond,
		serverAhead: 50 * time.Millisecond, clk: clk,
	}
	var calls int
	tr := TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		calls++
		return inner.Exchange(server, req)
	})
	s, err := Measure(clk, tr, "srv", ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("calls = %d, want 1", calls)
	}
	if s.Offset != 50*time.Millisecond {
		t.Errorf("offset = %v, want 50ms", s.Offset)
	}
}
