package discipline

import (
	"errors"
	"testing"
	"time"
)

// recAdjuster records every Step/AdjustFreq and can be made to fail.
type recAdjuster struct {
	steps   []time.Duration
	freqs   []float64
	stepErr error
	freqErr error
}

func (r *recAdjuster) Step(d time.Duration) error {
	if r.stepErr != nil {
		return r.stepErr
	}
	r.steps = append(r.steps, d)
	return nil
}

func (r *recAdjuster) AdjustFreq(f float64) error {
	if r.freqErr != nil {
		return r.freqErr
	}
	r.freqs = append(r.freqs, f)
	return nil
}

func (r *recAdjuster) total() time.Duration {
	var t time.Duration
	for _, s := range r.steps {
		t += s
	}
	return t
}

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

func TestStepVsSlewThreshold(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{StepThreshold: 100 * time.Millisecond, SlewGain: 0.5})

	// Below threshold: slewed at half gain.
	res := d.Apply(80*time.Millisecond, epoch)
	if res.Action != ActionSlewed || res.Applied != 40*time.Millisecond || res.Err != nil {
		t.Fatalf("slew result = %+v, want slewed 40ms", res)
	}
	// Above threshold: stepped in full.
	res = d.Apply(-300*time.Millisecond, epoch)
	if res.Action != ActionStepped || res.Applied != -300*time.Millisecond {
		t.Fatalf("step result = %+v, want stepped -300ms", res)
	}
	if len(adj.steps) != 2 || adj.steps[0] != 40*time.Millisecond || adj.steps[1] != -300*time.Millisecond {
		t.Fatalf("adjuster saw %v", adj.steps)
	}
	if d.State() != StateSync {
		t.Fatalf("state = %v, want sync", d.State())
	}
}

func TestSlewGainDefaultAppliesFull(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{})
	res := d.Apply(50*time.Millisecond, epoch)
	if res.Action != ActionSlewed || res.Applied != 50*time.Millisecond {
		t.Fatalf("result = %+v, want full 50ms slew at default gain 1", res)
	}
}

func TestPanicGateArmsAfterFirstSync(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{PanicThreshold: time.Second})

	// Cold: a huge first correction is allowed (initial sync).
	res := d.Apply(90*time.Second, epoch)
	if res.Action != ActionStepped {
		t.Fatalf("cold big step result = %+v, want stepped", res)
	}
	// Synced: the same jump is now refused and the clock untouched.
	before := len(adj.steps)
	res = d.Apply(90*time.Second, epoch)
	if res.Action != ActionPanic || res.Applied != 0 {
		t.Fatalf("synced big step result = %+v, want panic", res)
	}
	if len(adj.steps) != before {
		t.Fatal("panic still touched the adjuster")
	}
	if d.ConsecutivePanics() != 1 {
		t.Fatalf("panics = %d, want 1", d.ConsecutivePanics())
	}
	// A sane correction clears the panic streak.
	if res := d.Apply(5*time.Millisecond, epoch); res.Action == ActionPanic {
		t.Fatalf("sane offset refused: %+v", res)
	}
	if d.ConsecutivePanics() != 0 {
		t.Fatalf("panics = %d after accepted sample, want 0", d.ConsecutivePanics())
	}
}

func TestPanicDisabledByNegativeThreshold(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{PanicThreshold: -1})
	d.Apply(time.Millisecond, epoch)
	if res := d.Apply(time.Hour, epoch); res.Action != ActionStepped {
		t.Fatalf("result = %+v, want stepped with panic disabled", res)
	}
}

func TestDesyncDisarmsPanicGate(t *testing.T) {
	d := New(&recAdjuster{}, Config{PanicThreshold: time.Second})
	d.Apply(time.Millisecond, epoch)
	d.Desync()
	if d.State() != StateCold {
		t.Fatalf("state = %v after Desync, want cold", d.State())
	}
	if res := d.Apply(time.Minute, epoch); res.Action != ActionStepped {
		t.Fatalf("post-desync big step = %+v, want stepped", res)
	}
}

func TestFreqClampShared(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{})
	applied, err := d.SetFreq(900e-6)
	if err != nil || applied != MaxFreq {
		t.Fatalf("SetFreq(900ppm) = %v, %v; want clamp to %v", applied, err, MaxFreq)
	}
	applied, _ = d.SetFreq(-900e-6)
	if applied != -MaxFreq {
		t.Fatalf("SetFreq(-900ppm) = %v, want -MaxFreq", applied)
	}
	applied, _ = d.SetFreq(42e-6)
	if applied != 42e-6 {
		t.Fatalf("SetFreq(42ppm) = %v, want passthrough", applied)
	}
	if f, ok := d.Freq(); !ok || f != 42e-6 {
		t.Fatalf("Freq() = %v, %v", f, ok)
	}
}

func TestSetFreqErrorLeavesState(t *testing.T) {
	adj := &recAdjuster{freqErr: errors.New("EPERM")}
	d := New(adj, Config{})
	if _, err := d.SetFreq(10e-6); err == nil {
		t.Fatal("want error surfaced")
	}
	if _, ok := d.Freq(); ok {
		t.Fatal("failed SetFreq recorded a frequency")
	}
}

func TestApplyErrorSurfacedAndStateUnchanged(t *testing.T) {
	adj := &recAdjuster{stepErr: errors.New("EPERM")}
	d := New(adj, Config{})
	res := d.Apply(10*time.Millisecond, epoch)
	if res.Err == nil || res.Applied != 0 {
		t.Fatalf("result = %+v, want error and nothing applied", res)
	}
	if d.State() != StateCold {
		t.Fatalf("state advanced to %v on a failed application", d.State())
	}
}

func TestHoldoverLifecycle(t *testing.T) {
	adj := &recAdjuster{}
	d := New(adj, Config{PanicThreshold: time.Second, HoldoverDispPPM: 100})

	// Cold disciplines have nothing to hold.
	if d.EnterHoldover(epoch) {
		t.Fatal("cold EnterHoldover succeeded")
	}
	d.Apply(time.Millisecond, epoch)
	if _, err := d.SetFreq(30e-6); err != nil {
		t.Fatal(err)
	}
	nFreqs := len(adj.freqs)
	if !d.EnterHoldover(epoch) {
		t.Fatal("EnterHoldover from sync failed")
	}
	if d.State() != StateHoldover {
		t.Fatalf("state = %v, want holdover", d.State())
	}
	// The last good frequency was re-asserted.
	if len(adj.freqs) != nFreqs+1 || adj.freqs[len(adj.freqs)-1] != 30e-6 {
		t.Fatalf("holdover did not re-assert freq: %v", adj.freqs)
	}
	// Re-entering keeps the original start.
	if d.EnterHoldover(epoch.Add(time.Minute)) {
		t.Fatal("re-entry restarted holdover")
	}

	// Uncertainty ages at 100 ppm: 1000 s → 100 ms.
	later := epoch.Add(1000 * time.Second)
	if u := d.Uncertainty(later); u < 99*time.Millisecond || u > 101*time.Millisecond {
		t.Fatalf("uncertainty after 1000s at 100ppm = %v, want ≈100ms", u)
	}

	// The panic gate widens by the uncertainty: 1s + 100ms.
	if res := d.Apply(1050*time.Millisecond, later); res.Action != ActionStepped {
		t.Fatalf("in-budget holdover step = %+v, want stepped", res)
	}
	if d.State() != StateSync {
		t.Fatalf("state after holdover exit = %v, want sync", d.State())
	}
}

func TestHoldoverExitFlag(t *testing.T) {
	d := New(&recAdjuster{}, Config{})
	d.Apply(time.Millisecond, epoch)
	d.EnterHoldover(epoch)
	r := d.Apply(2*time.Millisecond, epoch.Add(time.Minute))
	if !r.ExitedHoldover {
		t.Fatalf("result = %+v, want ExitedHoldover", r)
	}
	r = d.Apply(2*time.Millisecond, epoch.Add(2*time.Minute))
	if r.ExitedHoldover {
		t.Fatal("ExitedHoldover set outside holdover")
	}
}

func TestHoldoverPanicStillRefusesBeyondBudget(t *testing.T) {
	d := New(&recAdjuster{}, Config{PanicThreshold: time.Second, HoldoverDispPPM: 10})
	d.Apply(time.Millisecond, epoch)
	d.EnterHoldover(epoch)
	// 100 s at 10 ppm → 1 ms of budget; a 10 s offset is far outside.
	r := d.Apply(10*time.Second, epoch.Add(100*time.Second))
	if r.Action != ActionPanic {
		t.Fatalf("result = %+v, want panic in holdover", r)
	}
}

func TestHoldoverExpiresToCold(t *testing.T) {
	d := New(&recAdjuster{}, Config{PanicThreshold: time.Second, HoldoverMax: 10 * time.Minute})
	d.Apply(time.Millisecond, epoch)
	d.EnterHoldover(epoch)
	// Past HoldoverMax the state is cold, so a giant step is allowed
	// again (the clock may be anywhere after a long blackout).
	r := d.Apply(time.Hour, epoch.Add(11*time.Minute))
	if r.Action != ActionStepped {
		t.Fatalf("post-expiry result = %+v, want stepped (cold)", r)
	}
}

func TestObserveTimesDetectsSuspend(t *testing.T) {
	d := New(&recAdjuster{}, Config{SuspendThreshold: 2 * time.Second})
	d.Apply(time.Millisecond, epoch)

	if _, resumed := d.ObserveTimes(epoch, 0); resumed {
		t.Fatal("first observation flagged a resume")
	}
	// Wall and mono advance together: no divergence.
	if jump, resumed := d.ObserveTimes(epoch.Add(30*time.Second), 30*time.Second); resumed || jump != 0 {
		t.Fatalf("lockstep advance: jump=%v resumed=%v", jump, resumed)
	}
	// Suspend: wall advances 90 s, mono only 1 s.
	jump, resumed := d.ObserveTimes(epoch.Add(2*time.Minute), 31*time.Second)
	if !resumed || jump != 89*time.Second {
		t.Fatalf("suspend: jump=%v resumed=%v, want 89s resume", jump, resumed)
	}
	if d.State() != StateCold {
		t.Fatalf("state after resume = %v, want cold", d.State())
	}
}

func TestObserveTimesCompensatesOwnSteps(t *testing.T) {
	d := New(&recAdjuster{}, Config{SuspendThreshold: 2 * time.Second})
	d.ObserveTimes(epoch, 0)
	// The discipline steps the clock 10 s itself (cold, so allowed).
	r := d.Apply(10*time.Second, epoch)
	if r.Action != ActionStepped {
		t.Fatalf("setup step = %+v", r)
	}
	// Wall shows mono's advance plus our own step: not a suspend.
	jump, resumed := d.ObserveTimes(epoch.Add(40*time.Second), 30*time.Second)
	if resumed || jump != 0 {
		t.Fatalf("self-step read as suspend: jump=%v resumed=%v", jump, resumed)
	}
}

func TestObserveTimesNegativeJump(t *testing.T) {
	d := New(&recAdjuster{}, Config{SuspendThreshold: 2 * time.Second})
	d.Apply(time.Millisecond, epoch)
	d.ObserveTimes(epoch, 0)
	// An external actor stepped the wall clock backwards 30 s.
	jump, resumed := d.ObserveTimes(epoch.Add(-20*time.Second), 10*time.Second)
	if !resumed || jump != -30*time.Second {
		t.Fatalf("backward step: jump=%v resumed=%v, want -30s resume", jump, resumed)
	}
}

func TestZeroOffsetMarksSync(t *testing.T) {
	d := New(&recAdjuster{}, Config{})
	if res := d.Apply(0, epoch); res.Action != ActionNone {
		t.Fatalf("zero offset result = %+v", res)
	}
	if d.State() != StateSync {
		t.Fatalf("state = %v, want sync after perfect sample", d.State())
	}
}

func TestStatusString(t *testing.T) {
	d := New(&recAdjuster{}, Config{HoldoverDispPPM: 15})
	d.Apply(time.Millisecond, epoch)
	d.SetFreq(12e-6)
	d.EnterHoldover(epoch)
	st := d.Status(epoch.Add(time.Hour))
	if st.State != StateHoldover || st.HoldoverFor != time.Hour || !st.HaveFreq {
		t.Fatalf("status = %+v", st)
	}
	if s := st.String(); s == "" {
		t.Fatal("empty status string")
	}
}
