// Package discipline is the single gate through which every clock
// correction flows. Raw offsets from the measurement/filter pipeline
// are never applied to a sysclock.Adjuster directly; they pass through
// a Discipline, which decides between slewing (small offsets, applied
// gradually), stepping (offsets beyond the step threshold), and
// refusing (offsets beyond the panic threshold after the first
// synchronization — implausible jumps that more likely indicate a
// broken source, an asymmetric path, or a suspend we failed to detect
// than a genuinely wrong clock).
//
// The discipline also owns two mobility-critical behaviours:
//
//   - Holdover: when the caller reports total source blackout (every
//     upstream dark or selection persistently failing), the discipline
//     keeps the last good frequency correction applied and ages an
//     uncertainty bound at HoldoverDispPPM. The panic gate widens by
//     that bound, so a clock that legitimately drifted during a long
//     blackout can still be corrected on recovery. Past HoldoverMax
//     the state degrades to cold and the next sample may step freely.
//
//   - Suspend/resume detection: the wall clock advances during a
//     system suspend but CLOCK_MONOTONIC does not, so a resume shows
//     up as wall-vs-monotonic divergence. Callers feed periodic
//     (wall, monotonic) readings to ObserveTimes; a divergence beyond
//     SuspendThreshold invalidates the discipline's sync state so the
//     caller can re-warm-up instead of "correcting" a giant offset
//     produced by a stale in-flight sample. Steps applied through the
//     discipline itself are compensated, so a legitimate correction
//     does not read as a suspend.
//
// The ±MaxFreqPPM cumulative frequency clamp here is shared with
// internal/driftfile, so a persisted frequency estimate can never
// round-trip into an implausible kernel adjustment.
package discipline

import (
	"fmt"
	"sync"
	"time"

	"mntp/internal/sysclock"
)

// MaxFreqPPM is the largest cumulative frequency correction the
// discipline will apply, in parts per million. It matches ntpd's
// 500 ppm clamp and is shared with internal/driftfile's load-time
// clamp: no sane crystal needs more, and a drift file claiming more
// is corrupt.
const MaxFreqPPM = 500

// MaxFreq is MaxFreqPPM expressed in seconds per second.
const MaxFreq = MaxFreqPPM * 1e-6

// Config are the discipline's tunables. The zero value selects
// defaults comparable to ntpd's.
type Config struct {
	// StepThreshold separates slewing from stepping: offsets at or
	// below it are slewed (applied scaled by SlewGain), larger ones
	// are stepped at once. Default 128 ms (ntpd's STEPT).
	StepThreshold time.Duration
	// PanicThreshold refuses implausible corrections: once the
	// discipline has synchronized, an offset beyond it is rejected
	// with ActionPanic instead of being applied. Default 10 s;
	// negative disables the gate. (ntpd's PANICT is 1000 s and makes
	// the daemon exit; a mobile client must instead survive, report,
	// and wait for evidence — a re-warm-up — before believing a jump.)
	PanicThreshold time.Duration
	// SlewGain scales offsets below the step threshold before they
	// are applied, amortizing small corrections across successive
	// samples. Default 1 (apply in full). ntpclient uses 0.5.
	SlewGain float64
	// FreqClamp bounds the cumulative frequency correction, in
	// seconds per second. Default MaxFreq; values above MaxFreq are
	// themselves clamped to MaxFreq.
	FreqClamp float64
	// HoldoverMax bounds how long holdover keeps the sync state: past
	// it the discipline degrades to cold, dropping the panic gate so
	// that recovery after a very long blackout can step freely.
	// Default 1 h.
	HoldoverMax time.Duration
	// HoldoverDispPPM is the rate, in parts per million, at which the
	// holdover uncertainty bound grows: it models how fast the local
	// oscillator may wander from the last good frequency estimate.
	// Default 15 ppm (commodity crystal residual after correction).
	HoldoverDispPPM float64
	// SuspendThreshold is the wall-vs-monotonic divergence between
	// consecutive ObserveTimes calls that is read as a suspend/resume
	// (or an external clock step). Default 2 s.
	SuspendThreshold time.Duration
}

func (c *Config) applyDefaults() {
	if c.StepThreshold == 0 {
		c.StepThreshold = 128 * time.Millisecond
	}
	if c.PanicThreshold == 0 {
		c.PanicThreshold = 10 * time.Second
	}
	if c.SlewGain == 0 {
		c.SlewGain = 1
	}
	if c.FreqClamp == 0 || c.FreqClamp > MaxFreq {
		c.FreqClamp = MaxFreq
	}
	if c.FreqClamp < 0 {
		c.FreqClamp = -c.FreqClamp
	}
	if c.HoldoverMax == 0 {
		c.HoldoverMax = time.Hour
	}
	if c.HoldoverDispPPM == 0 {
		c.HoldoverDispPPM = 15
	}
	if c.SuspendThreshold == 0 {
		c.SuspendThreshold = 2 * time.Second
	}
}

// State is the discipline's synchronization state.
type State int

const (
	// StateCold: never synchronized (or desynchronized by a suspend,
	// a network change, or an expired holdover). The panic gate is
	// off — the first correction may be arbitrarily large.
	StateCold State = iota
	// StateSync: at least one correction has been applied since the
	// last desync; the panic gate is armed.
	StateSync
	// StateHoldover: sources are dark; the last good frequency keeps
	// the clock disciplined while an uncertainty bound ages.
	StateHoldover
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case StateCold:
		return "cold"
	case StateSync:
		return "sync"
	case StateHoldover:
		return "holdover"
	default:
		return "unknown"
	}
}

// Action says what Apply did with an offset.
type Action int

const (
	// ActionNone: nothing was applied (zero offset).
	ActionNone Action = iota
	// ActionSlewed: the offset was below the step threshold and was
	// applied scaled by SlewGain.
	ActionSlewed
	// ActionStepped: the offset exceeded the step threshold and was
	// applied in full at once.
	ActionStepped
	// ActionPanic: the offset exceeded the panic threshold and was
	// refused. The clock was not touched.
	ActionPanic
)

// String renders the action name.
func (a Action) String() string {
	switch a {
	case ActionNone:
		return "none"
	case ActionSlewed:
		return "slewed"
	case ActionStepped:
		return "stepped"
	case ActionPanic:
		return "panic"
	default:
		return "unknown"
	}
}

// Result reports what Apply decided and did.
type Result struct {
	// Action classifies the decision.
	Action Action
	// Applied is the correction actually given to the adjuster
	// (the full offset when stepped, the SlewGain fraction when
	// slewed, zero on panic or error).
	Applied time.Duration
	// ExitedHoldover is set when this application ended a holdover.
	ExitedHoldover bool
	// Err is the adjuster error, if the chosen correction failed.
	// The discipline state is unchanged on error.
	Err error
}

// Status is an observable snapshot of the discipline.
type Status struct {
	State State
	// Freq is the cumulative frequency correction (s/s) and HaveFreq
	// whether one has ever been applied.
	Freq     float64
	HaveFreq bool
	// HoldoverFor is how long the discipline has been in holdover
	// (zero otherwise), and Uncertainty the aged offset bound.
	HoldoverFor time.Duration
	Uncertainty time.Duration
	// ConsecutivePanics counts back-to-back refused corrections; any
	// applied correction resets it.
	ConsecutivePanics int
}

// String renders a one-line status.
func (s Status) String() string {
	base := fmt.Sprintf("discipline %s freq=%+.1fppm", s.State, s.Freq*1e6)
	if s.State == StateHoldover {
		base += fmt.Sprintf(" holdover=%v ±%v", s.HoldoverFor.Round(time.Second), s.Uncertainty.Round(time.Millisecond))
	}
	if s.ConsecutivePanics > 0 {
		base += fmt.Sprintf(" panics=%d", s.ConsecutivePanics)
	}
	return base
}

// Discipline gates clock corrections. Safe for concurrent use.
type Discipline struct {
	mu  sync.Mutex
	adj sysclock.Adjuster
	cfg Config

	state         State
	freq          float64
	haveFreq      bool
	holdoverSince time.Time
	panics        int

	// Suspend detection: last (wall, mono) observation, plus the sum
	// of steps we applied ourselves since then — self-inflicted
	// wall-clock jumps must not read as suspends.
	haveObs   bool
	lastWall  time.Time
	lastMono  time.Duration
	stepAccum time.Duration
}

// New creates a discipline gating the given adjuster. A nil adjuster
// is replaced by sysclock.Noop (measurement-only mode: decisions are
// still made and reported, nothing moves the clock).
func New(adj sysclock.Adjuster, cfg Config) *Discipline {
	cfg.applyDefaults()
	if adj == nil {
		adj = sysclock.Noop{}
	}
	return &Discipline{adj: adj, cfg: cfg}
}

// Config returns the discipline's effective (defaulted) config.
func (d *Discipline) Config() Config { return d.cfg }

// Apply offers an offset correction at the given time. It decides
// slew/step/panic, applies the chosen correction through the
// adjuster, and updates the sync state. now is the caller's clock
// reading, used only for holdover aging.
func (d *Discipline) Apply(offset time.Duration, now time.Time) Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.expireHoldoverLocked(now)

	if offset == 0 {
		// A perfect sample still proves synchronization.
		res := Result{Action: ActionNone}
		res.ExitedHoldover = d.markSyncLocked()
		return res
	}

	// Panic gate: armed once synchronized. In holdover the limit
	// widens by the aged uncertainty — the clock may legitimately
	// have wandered that far since the sources went dark.
	if d.state != StateCold && d.cfg.PanicThreshold > 0 {
		limit := d.cfg.PanicThreshold
		if d.state == StateHoldover {
			limit += d.uncertaintyLocked(now)
		}
		if offset > limit || offset < -limit {
			d.panics++
			return Result{Action: ActionPanic}
		}
	}

	action := ActionSlewed
	applied := offset
	if offset > d.cfg.StepThreshold || offset < -d.cfg.StepThreshold {
		action = ActionStepped
	} else if d.cfg.SlewGain != 1 {
		applied = time.Duration(float64(offset) * d.cfg.SlewGain)
		if applied == 0 {
			res := Result{Action: ActionNone}
			res.ExitedHoldover = d.markSyncLocked()
			return res
		}
	}
	if err := d.adj.Step(applied); err != nil {
		return Result{Action: action, Err: err}
	}
	d.stepAccum += applied
	res := Result{Action: action, Applied: applied}
	res.ExitedHoldover = d.markSyncLocked()
	return res
}

// markSyncLocked transitions to StateSync after a successful
// application, reporting whether that ended a holdover.
func (d *Discipline) markSyncLocked() (exitedHoldover bool) {
	exitedHoldover = d.state == StateHoldover
	d.state = StateSync
	d.holdoverSince = time.Time{}
	d.panics = 0
	return exitedHoldover
}

// expireHoldoverLocked degrades an over-aged holdover to cold.
func (d *Discipline) expireHoldoverLocked(now time.Time) {
	if d.state == StateHoldover && now.Sub(d.holdoverSince) > d.cfg.HoldoverMax {
		d.state = StateCold
		d.holdoverSince = time.Time{}
	}
}

// SetFreq sets the cumulative frequency correction, clamped to
// ±FreqClamp, and returns the value actually applied. On adjuster
// error the stored frequency is unchanged.
func (d *Discipline) SetFreq(f float64) (applied float64, err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if f > d.cfg.FreqClamp {
		f = d.cfg.FreqClamp
	} else if f < -d.cfg.FreqClamp {
		f = -d.cfg.FreqClamp
	}
	if err := d.adj.AdjustFreq(f); err != nil {
		return d.freq, err
	}
	d.freq = f
	d.haveFreq = true
	return f, nil
}

// Freq returns the cumulative frequency correction and whether one
// has been applied.
func (d *Discipline) Freq() (float64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.freq, d.haveFreq
}

// EnterHoldover moves a synchronized discipline into holdover,
// re-asserting the last good frequency correction so the clock keeps
// free-running on the best available estimate. It reports whether
// the transition happened: a cold discipline has no state worth
// holding and an existing holdover keeps its original start (so the
// uncertainty bound ages from the true beginning of the blackout).
func (d *Discipline) EnterHoldover(now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.state != StateSync {
		return false
	}
	d.state = StateHoldover
	d.holdoverSince = now
	if d.haveFreq {
		// Best effort: the frequency is normally still in effect, but
		// re-asserting it makes holdover self-healing after an
		// adjuster hiccup.
		_ = d.adj.AdjustFreq(d.freq)
	}
	return true
}

// Desync drops the discipline back to cold: the next correction may
// be arbitrarily large. Called after a detected suspend or any other
// event that invalidates the synchronization history. The frequency
// estimate survives — oscillator behaviour does not change because
// the device slept or roamed.
func (d *Discipline) Desync() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.state = StateCold
	d.holdoverSince = time.Time{}
	d.panics = 0
}

// ObserveTimes feeds one paired (wall, monotonic) reading for
// suspend/resume detection and returns the measured divergence since
// the previous reading. A divergence beyond SuspendThreshold — after
// compensating for steps the discipline itself applied — is reported
// as resumed=true and desynchronizes the discipline: wall time moved
// without monotonic time following (suspend, external step), so any
// in-flight sample and the panic gate's history are both invalid.
func (d *Discipline) ObserveTimes(wall time.Time, mono time.Duration) (jump time.Duration, resumed bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.haveObs {
		d.haveObs = true
		d.lastWall, d.lastMono = wall, mono
		d.stepAccum = 0
		return 0, false
	}
	dWall := wall.Sub(d.lastWall)
	dMono := mono - d.lastMono
	jump = dWall - dMono - d.stepAccum
	d.lastWall, d.lastMono = wall, mono
	d.stepAccum = 0
	if jump > d.cfg.SuspendThreshold || jump < -d.cfg.SuspendThreshold {
		d.state = StateCold
		d.holdoverSince = time.Time{}
		d.panics = 0
		return jump, true
	}
	return jump, false
}

// State returns the current synchronization state.
func (d *Discipline) State() State {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.state
}

// ConsecutivePanics returns how many corrections in a row were
// refused by the panic gate.
func (d *Discipline) ConsecutivePanics() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.panics
}

// Uncertainty returns the aged holdover offset bound: how far the
// clock may plausibly have wandered since sources went dark. Zero
// outside holdover.
func (d *Discipline) Uncertainty(now time.Time) time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.uncertaintyLocked(now)
}

func (d *Discipline) uncertaintyLocked(now time.Time) time.Duration {
	if d.state != StateHoldover {
		return 0
	}
	elapsed := now.Sub(d.holdoverSince)
	if elapsed < 0 {
		return 0
	}
	return time.Duration(elapsed.Seconds() * d.cfg.HoldoverDispPPM * 1e-6 * float64(time.Second))
}

// Status returns an observable snapshot.
func (d *Discipline) Status(now time.Time) Status {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := Status{
		State: d.state, Freq: d.freq, HaveFreq: d.haveFreq,
		ConsecutivePanics: d.panics,
	}
	if d.state == StateHoldover {
		st.HoldoverFor = now.Sub(d.holdoverSince)
		st.Uncertainty = d.uncertaintyLocked(now)
	}
	return st
}
