//go:build linux

package ntpnet

import "syscall"

// soReusePort is SO_REUSEPORT on Linux. The stdlib syscall package
// does not export the constant (it predates the option), so it is
// pinned here; the value is part of the kernel ABI.
const soReusePort = 0xf

// reusePortAvailable reports at build time whether the sharded listen
// path can bind several sockets to one address. Linux ≥3.9 load-
// balances UDP datagrams across SO_REUSEPORT sockets by flow hash,
// which is exactly the per-shard spread the server wants.
const reusePortAvailable = true

// reusePortControl is the net.ListenConfig.Control hook that sets
// SO_REUSEPORT before bind. It must be set on every socket of the
// group, the first included.
func reusePortControl(network, address string, c syscall.RawConn) error {
	var serr error
	err := c.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
	})
	if err != nil {
		return err
	}
	return serr
}
