package ntpnet

import (
	"crypto/tls"
	"crypto/x509"
	"net"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
	"mntp/internal/ntske"
	"mntp/internal/overload"
)

// startNTSStack brings up the full authenticated serving stack on
// loopback: a UDP NTP server verifying against a key ring, and an
// NTS-KE TLS server minting cookies from the same ring, advertising
// the UDP server's port.
func startNTSStack(t *testing.T, srv *Server) (ring *nts.KeyRing, keAddr string, clientTLS *tls.Config) {
	t.Helper()
	ring, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatalf("NewKeyRing: %v", err)
	}
	srv.NTS = ring
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	cert, certPEM, err := ntske.SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatalf("SelfSigned: %v", err)
	}
	ke := &ntske.Server{
		Ring:      ring,
		TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}},
		NTPHost:   "127.0.0.1",
		NTPPort:   addr.Port,
	}
	keBound, err := ke.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("KE Listen: %v", err)
	}
	t.Cleanup(func() { ke.Close() })

	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("AppendCertsFromPEM failed")
	}
	return ring, keBound.String(), &tls.Config{RootCAs: pool}
}

// TestNTSEndToEnd is the acceptance path: NTS-KE over TLS against the
// real UDP server on loopback, a run of authenticated exchanges with
// cookie re-supply holding the jar above low water, a tampered
// request refused with NTS NAK, and client recovery — a ring rotated
// past its depth kills every held cookie, and the next exchange
// succeeds by re-running KE. CI runs this under -race.
func TestNTSEndToEnd(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 2
	ring, keAddr, clientTLS := startNTSStack(t, srv)

	tr := &ntske.Transport{Inner: &Client{Timeout: 2 * time.Second}, TLSConfig: clientTLS}
	clk := clock.System{}

	const exchanges = 10
	const lowWater = nts.DefaultJarCapacity / 2
	for i := 0; i < exchanges; i++ {
		sample, err := exchange.Measure(clk, tr, keAddr, ntppkt.Version4, false)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if sample.Stratum != 2 {
			t.Fatalf("exchange %d: stratum %d, want 2", i, sample.Stratum)
		}
		if jar := tr.CookieCount(keAddr); jar < lowWater {
			t.Fatalf("exchange %d: jar at %d, below low water %d — re-supply is not keeping up", i, jar, lowWater)
		}
	}
	snap := srv.Snapshot()
	if snap.NTSServed < exchanges {
		t.Fatalf("NTSServed = %d, want >= %d", snap.NTSServed, exchanges)
	}
	if snap.Served != snap.NTSServed {
		t.Fatalf("Served=%d NTSServed=%d: unauthenticated replies on an all-NTS run", snap.Served, snap.NTSServed)
	}

	// Tampered extension field: flip one bit of the unique identifier
	// after protection. The server must answer NTS NAK, never time.
	sess, err := ntske.KeyExchange(keAddr, clientTLS, 2*time.Second)
	if err != nil {
		t.Fatalf("KeyExchange: %v", err)
	}
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.FromTime(time.Now()))
	if _, err := sess.ProtectRequest(req); err != nil {
		t.Fatalf("ProtectRequest: %v", err)
	}
	wire := req.Encode(nil)
	wire[ntppkt.HeaderLen+ntppkt.ExtHeaderLen] ^= 0x01

	ntpAddr, err := net.ResolveUDPAddr("udp", sess.NTPServer)
	if err != nil {
		t.Fatalf("resolve %s: %v", sess.NTPServer, err)
	}
	conn, err := net.DialUDP("udp", nil, ntpAddr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write(wire); err != nil {
		t.Fatalf("send tampered: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 2048)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatalf("no reply to tampered request — NAK must be explicit: %v", err)
	}
	var nak ntppkt.Packet
	if err := nak.DecodeInto(buf[:n]); err != nil {
		t.Fatalf("decode NAK: %v", err)
	}
	if code, kod := nak.KissCode(); !kod || code != "NTSN" {
		t.Fatalf("tampered request answered with stratum=%d code=%q, want NTSN kiss", nak.Stratum, code)
	}
	if got := srv.Snapshot().NTSNaks; got < 1 {
		t.Fatalf("NTSNaks = %d, want >= 1", got)
	}

	// Recovery: rotate the ring past its depth so every cookie the
	// transport holds is dead. The next exchange absorbs the NAK by
	// re-running KE inside the same call.
	for i := 0; i < 3; i++ {
		if err := ring.Rotate(); err != nil {
			t.Fatalf("Rotate: %v", err)
		}
	}
	sample, err := exchange.Measure(clk, tr, keAddr, ntppkt.Version4, false)
	if err != nil {
		t.Fatalf("exchange after rotation: %v", err)
	}
	if sample.Stratum != 2 {
		t.Fatalf("post-recovery stratum = %d, want 2", sample.Stratum)
	}
	if jar := tr.CookieCount(keAddr); jar < lowWater {
		t.Fatalf("post-recovery jar = %d, below low water %d", jar, lowWater)
	}
}

// TestNTSDegradedBypassesShed pins the shed-priority contract: with
// the server Degraded and every new plain flow losing the shed coin
// toss (ShedMin 1), authenticated requests are still answered with
// time — a valid authenticator is the one admission signal a spoofed
// source cannot forge — so their answered rate strictly exceeds plain
// traffic's.
func TestNTSDegradedBypassesShed(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 2
	srv.RateLimit = 100000
	srv.RateWindow = time.Minute
	srv.WatchdogInterval = -1 // state moves on Observe only
	srv.Overload = degradedConfig()
	_, keAddr, clientTLS := startNTSStack(t, srv)

	sess, err := ntske.KeyExchange(keAddr, clientTLS, 2*time.Second)
	if err != nil {
		t.Fatalf("KeyExchange: %v", err)
	}
	ntpAddr, err := net.ResolveUDPAddr("udp", sess.NTPServer)
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}

	// The NTS client and the plain flood must come from different
	// source IPs, or the flood would make the NTS flow "established".
	ntsConn, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 3)}, ntpAddr)
	if err != nil {
		t.Skipf("cannot bind 127.0.0.3 (needed for a distinct NTS source): %v", err)
	}
	defer ntsConn.Close()
	plainConn, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 2)}, ntpAddr)
	if err != nil {
		t.Skipf("cannot bind 127.0.0.2 (needed for a distinct plain source): %v", err)
	}
	defer plainConn.Close()
	drivingConn, err := net.DialUDP("udp", nil, ntpAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer drivingConn.Close()

	// Drive plain traffic until the sampled sojourn takes the server
	// Degraded.
	deadline := time.Now().Add(3 * time.Second)
	for srv.Health() != overload.Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached Degraded (health %v)", srv.Health())
		}
		sendRequest(t, drivingConn)
		readReply(t, drivingConn, 200*time.Millisecond)
	}

	// Plain spoofed traffic (new flow): shed with RATE, answered rate 0.
	plainAnswered := 0
	const attempts = 8
	for i := 0; i < attempts; i++ {
		sendRequest(t, plainConn)
		p, ok := readReply(t, plainConn, time.Second)
		if !ok {
			t.Fatalf("plain request %d: no reply — sheds must be explicit", i)
		}
		if _, kod := p.KissCode(); !kod {
			plainAnswered++
		}
	}

	// Authenticated traffic from an equally new flow: answered.
	ntsAnswered := 0
	for i := 0; i < attempts; i++ {
		req := ntppkt.NewClient(ntppkt.Version4, ntptime.FromTime(time.Now()))
		st, err := sess.ProtectRequest(req)
		if err != nil {
			t.Fatalf("ProtectRequest %d: %v", i, err)
		}
		if _, err := ntsConn.Write(req.Encode(nil)); err != nil {
			t.Fatalf("send NTS %d: %v", i, err)
		}
		ntsConn.SetReadDeadline(time.Now().Add(time.Second))
		buf := make([]byte, 2048)
		n, err := ntsConn.Read(buf)
		if err != nil {
			t.Fatalf("NTS request %d: no reply while Degraded: %v", i, err)
		}
		var p ntppkt.Packet
		if err := p.DecodeInto(buf[:n]); err != nil {
			t.Fatalf("decode NTS reply %d: %v", i, err)
		}
		if err := sess.VerifyReply(&p, st); err != nil {
			t.Fatalf("verify NTS reply %d: %v", i, err)
		}
		if _, kod := p.KissCode(); !kod && p.Stratum == 2 {
			ntsAnswered++
		}
	}

	if ntsAnswered <= plainAnswered {
		t.Fatalf("authenticated answered %d/%d, plain answered %d/%d: NTS must strictly win while Degraded",
			ntsAnswered, attempts, plainAnswered, attempts)
	}
	if ntsAnswered != attempts {
		t.Errorf("authenticated answered %d/%d, want all: the bypass must be deterministic", ntsAnswered, attempts)
	}
	if plainAnswered != 0 {
		t.Errorf("plain new-flow answered %d/%d, want 0 with ShedMin 1", plainAnswered, attempts)
	}

	// The crypto term must be visible in the controller's stats once
	// authenticated traffic has been sampled.
	if stats := srv.OverloadStats(); stats.Sojourn <= 0 {
		t.Errorf("overload stats show no sojourn signal: %+v", stats)
	}
}
