package ntpnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// TestShardedServerServesConcurrentLoad drives a 2-shard server with
// concurrent clients (the -race leg exercises the shard-local metrics
// and shared limiter under contention) and checks the aggregated
// accounting: Snapshot() must equal the sum of the shard-local views,
// and no request may be lost or double-counted.
func TestShardedServerServesConcurrentLoad(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.Workers = 2
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.NumShards(); got != 2 {
		t.Fatalf("NumShards = %d, want 2", got)
	}

	const clients, perClient = 12, 15
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c := &Client{Timeout: 5 * time.Second}
			for j := 0; j < perClient; j++ {
				s, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true)
				if err != nil {
					errs <- err
					return
				}
				if s.Offset < -time.Second || s.Offset > time.Second {
					errs <- fmt.Errorf("misattributed reply: offset %v", s.Offset)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}

	snap := srv.Snapshot()
	if snap.Served != clients*perClient {
		t.Errorf("aggregated served = %d, want %d", snap.Served, clients*perClient)
	}
	var sum Snapshot
	shards := srv.ShardSnapshots()
	if len(shards) != 2 {
		t.Fatalf("ShardSnapshots len = %d", len(shards))
	}
	for _, sh := range shards {
		sum.Merge(sh)
	}
	if sum != snap {
		t.Errorf("sum of shard snapshots %+v != aggregated snapshot %+v", sum, snap)
	}
	var latTotal uint64
	for _, c := range snap.Latency {
		latTotal += c
	}
	if latTotal != snap.Served {
		t.Errorf("merged latency histogram total = %d, want %d", latTotal, snap.Served)
	}
	if ReusePortAvailable() {
		// Ephemeral client ports hash across the REUSEPORT group; with
		// 12 distinct flows both queues should have seen traffic. (Not
		// guaranteed by the kernel, so only log the skew.)
		t.Logf("shard spread: %d / %d", shards[0].Served, shards[1].Served)
	}
}

// TestShardedServerSharesRateLimitTable: a client's budget is global
// across shards — whichever receive queue its packets hash to, the
// fourth request in the window must get RATE.
func TestShardedServerSharesRateLimitTable(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.RateLimit = 3
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Timeout: 2 * time.Second}
	var kod int
	for i := 0; i < 6; i++ {
		_, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true)
		if errors.Is(err, ntppkt.ErrKissOfDeath) {
			kod++
		} else if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if kod != 3 {
		t.Errorf("%d of 6 requests limited, want 3 (per-client budget must span shards)", kod)
	}
	if got := srv.RateLimited(); got != 3 {
		t.Errorf("RateLimited = %d, want 3", got)
	}
	if got := srv.RateTableSize(); got != 1 {
		t.Errorf("rate table tracks %d clients, want 1 (same source IP on both shards)", got)
	}
}

// TestShardFallbackStillServes pins the portable path: even where
// SO_REUSEPORT is unavailable the sharded configuration must serve
// (every shard on one socket); where it is available, oversubscribed
// shard counts must also just work.
func TestShardFallbackStillServes(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 4
	srv.Workers = 1
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.NumShards(); got != 4 {
		t.Fatalf("NumShards = %d, want 4", got)
	}
	c := &Client{Timeout: 2 * time.Second}
	for i := 0; i < 3; i++ {
		if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := srv.Served(); got != 3 {
		t.Errorf("served = %d, want 3", got)
	}
}
