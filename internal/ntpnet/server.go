package ntpnet

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
	"mntp/internal/overload"
)

// Server is a UDP NTP server. It answers client (mode 3) requests with
// timestamps from its clock; malformed packets are dropped. An
// optional per-client rate limit answers abusive clients with a
// RATE kiss-of-death packet, as pool servers do.
//
// The listen path is sharded: Shards sockets are bound to the same
// address with SO_REUSEPORT, so the kernel spreads inbound datagrams
// across independent receive queues and the shards never contend on
// one socket lock. Each shard runs its own pool of Workers goroutines
// and counts into its own shard-local Metrics; Snapshot() merges them
// into the aggregate view. On platforms without SO_REUSEPORT (or when
// the kernel refuses it) every shard serves one shared socket — the
// worker pools and per-shard counters remain, only the kernel-level
// queue spread is lost — unless RequireShards insists on the full
// group. The rate-limit table is shared across shards (a client's
// budget is global, whichever queue its packets hash to) and bounded
// (MaxClients) with window-stamped eviction plus periodic idle-entry
// sweeping.
//
// The server self-heals: every worker runs under a panic recovery
// that counts the fault and respawns the worker, and a watchdog
// restarts the worker pool of any shard holding work in flight
// without completing it while its siblings make progress. With
// Overload set, an admission controller sheds load before queueing
// delay can poison the served timestamps (see package overload).
type Server struct {
	Clock   clock.Clock
	Stratum uint8
	RefID   [4]byte
	// RateLimit, if positive, is the maximum requests per client
	// address per RateWindow before RATE KoD responses are sent.
	RateLimit  int
	RateWindow time.Duration
	// MaxClients bounds the rate-limit table (default
	// DefaultMaxClients). When full, expired buckets are evicted
	// first, then the oldest window.
	MaxClients int
	// Workers is the number of serve goroutines per shard (default
	// GOMAXPROCS/Shards, at least 1).
	Workers int
	// Shards is the number of listening sockets bound to the address
	// via SO_REUSEPORT (default 1). All fields must be set before
	// Listen.
	Shards int
	// RequireShards makes Listen fail when the full Shards-socket
	// SO_REUSEPORT group cannot be bound — closing any sockets that
	// did bind — instead of silently serving from fewer sockets than
	// requested.
	RequireShards bool
	// Overload, if non-nil, enables admission control (package
	// overload): in Degraded the server sheds new/unseen flows with
	// RATE kiss-of-death replies (flows already holding rate-limit
	// state keep their budget; with rate limiting off every flow
	// counts as new), in Overloaded it drops datagrams before parsing,
	// admitting 1-in-N probes. On Linux the sojourn signal uses kernel
	// receive timestamps, so it includes socket-queue wait.
	Overload *overload.Config
	// WatchdogInterval is the housekeeping period: the watchdog scans
	// for wedged shards, sweeps expired rate-limit entries and feeds
	// slow signals to the overload controller. 0 selects the default
	// (1s); negative disables housekeeping entirely.
	WatchdogInterval time.Duration
	// NTS, if non-nil, enables RFC 8915 authenticated serving:
	// requests carrying NTS extension fields are verified against
	// this key ring (shared with the NTS-KE server that minted the
	// cookies). Verified requests get protected replies with cookie
	// re-supply; failed verification gets an NTS NAK. Authenticated
	// requests bypass the Degraded shed ramp — they are exactly the
	// traffic the shed exists to protect, since a spoofed source
	// cannot produce a valid authenticator — but still pay the
	// per-client rate limit, and the Overloaded pre-parse drop
	// (which by design runs before anything is decoded) applies to
	// them like everyone else. Sampled AEAD cost is fed to the
	// overload controller so crypto work counts against the sojourn
	// target.
	NTS *nts.KeyRing
	// FaultHook, if non-nil, is called with the shard index for every
	// admitted datagram, before parsing. It exists for server-side
	// fault injection (ServerFaults): a hook that panics exercises
	// worker respawn, one that blocks exercises the watchdog. A
	// blocked hook must be released before Close, which waits for
	// every worker.
	FaultHook func(shard int)

	conns           []*net.UDPConn
	shards          []*shard
	workersPerShard int
	ctrl            *overload.Controller
	// stratum and limiter are the live-reloadable serving parameters:
	// the hot path reads them atomically so Reload can swap them under
	// full load without a lock or a socket drop.
	stratum  atomic.Uint32
	limiter  atomic.Pointer[rateLimiter]
	restarts atomic.Uint64
	stopHk   chan struct{}
	hkWG     sync.WaitGroup
	wg       sync.WaitGroup

	mu     sync.Mutex // guards closed vs. worker spawning
	closed bool
}

// shard is one slice of the serving fast path: a socket (exclusive
// under SO_REUSEPORT, shared in the fallback) and the metrics its
// workers count into. Shard-local counters keep the hot path free of
// cross-shard cache-line bouncing; readers merge them on demand.
type shard struct {
	idx  int
	conn *net.UDPConn
	// rxts: kernel receive timestamps enabled on conn (overload only).
	rxts bool
	// epoch versions the worker pool: the watchdog bumps it to tell
	// stuck workers (wherever they unblock) that a fresh complement
	// has replaced them and they should exit.
	epoch atomic.Uint64
	// inFlight counts datagrams currently mid-handling; completed
	// counts handled ones. Together they are the watchdog's progress
	// signal: in-flight work held across a whole interval with no
	// completions means the pool is wedged, not idle.
	inFlight  atomic.Int64
	completed atomic.Uint64
	sample    atomic.Uint64
	metrics   Metrics
}

// NewServer creates a server with the given clock and stratum.
func NewServer(clk clock.Clock, stratum uint8) *Server {
	return &Server{Clock: clk, Stratum: stratum, RefID: [4]byte{'L', 'O', 'C', 'L'}}
}

// ReusePortAvailable reports whether this platform supports the
// SO_REUSEPORT sharded listen path. When false, a Shards > 1 server
// still runs — every shard serves one shared socket — so callers
// (and benchmarks demonstrating shard scaling) can skip gracefully.
func ReusePortAvailable() bool { return reusePortAvailable }

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts the
// serve pools. It returns the bound address.
func (s *Server) Listen(addr string) (*net.UDPAddr, error) {
	nshards := s.Shards
	if nshards <= 0 {
		nshards = 1
	}
	conns, err := listenShards(addr, nshards, s.RequireShards)
	if err != nil {
		return nil, err
	}
	s.conns = conns
	s.stratum.Store(uint32(s.Stratum))
	if s.RateLimit > 0 {
		s.limiter.Store(newRateLimiter(s.RateLimit, s.RateWindow, s.MaxClients))
	}
	if s.Overload != nil {
		s.ctrl = overload.New(*s.Overload)
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / nshards
		if workers < 1 {
			workers = 1
		}
	}
	s.workersPerShard = workers
	s.shards = make([]*shard, nshards)
	for i := range s.shards {
		sh := &shard{idx: i, conn: conns[i%len(conns)]}
		if s.ctrl != nil {
			sh.rxts = enableRxTimestamps(sh.conn) == nil
		}
		s.shards[i] = sh
		for w := 0; w < workers; w++ {
			s.spawnWorker(sh, 0)
		}
	}
	wd := s.WatchdogInterval
	if wd == 0 {
		wd = time.Second
	}
	if wd > 0 {
		s.stopHk = make(chan struct{})
		s.hkWG.Add(1)
		go s.housekeep(wd)
	}
	return conns[0].LocalAddr().(*net.UDPAddr), nil
}

// listenShards binds n sockets to addr with SO_REUSEPORT. When the
// full group cannot be bound (n == 1, the platform lacks the option,
// or the kernel refuses it) the non-strict path falls back to a
// single plain socket shared by every shard; the strict path closes
// whatever partially bound and fails instead. With a wildcard port
// the first bind picks it and the rest join that port.
func listenShards(addr string, n int, strict bool) ([]*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: resolve %q: %w", addr, err)
	}
	if n > 1 {
		if reusePortAvailable {
			conns, err := listenReusePort(ua, n)
			if err == nil {
				return conns, nil
			}
			if strict {
				return nil, fmt.Errorf("ntpnet: bind %d-shard REUSEPORT group on %q: %w", n, addr, err)
			}
		} else if strict {
			return nil, fmt.Errorf("ntpnet: %d shards requested but SO_REUSEPORT is unavailable on this platform", n)
		}
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: listen %q: %w", addr, err)
	}
	return []*net.UDPConn{conn}, nil
}

func listenReusePort(ua *net.UDPAddr, n int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]*net.UDPConn, 0, n)
	laddr := ua.String()
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", laddr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			laddr = uc.LocalAddr().String() // pin the kernel-chosen port
		}
	}
	return conns, nil
}

// Shutdown gracefully drains the server: it stops admitting new
// datagrams, lets every in-flight handler finish and write its reply,
// waits for the housekeeping/watchdog loop, and only then closes the
// sockets — a restart under live load answers everything it had
// already accepted instead of abandoning requests mid-quantum.
//
// The mechanism: every socket gets an already-expired read deadline,
// so a worker blocked in a read wakes with a timeout and exits without
// admitting anything, while a worker mid-handle finishes the request,
// writes the reply, and exits on its next read (the deadline is
// sticky). Datagrams still queued in the kernel are never admitted.
//
// If ctx expires before the drain completes, Shutdown degrades to
// Close's behavior — the sockets are closed under whatever is still in
// flight — and returns ctx.Err(). Calling Shutdown on a closed server
// returns nil; Close after Shutdown is a no-op.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true // stops worker respawns; makes Close a no-op
	s.mu.Unlock()
	now := time.Now()
	for _, c := range s.conns {
		_ = c.SetReadDeadline(now)
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var drainErr error
	select {
	case <-drained:
	case <-ctx.Done():
		drainErr = ctx.Err()
	}
	if s.stopHk != nil {
		close(s.stopHk)
	}
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.hkWG.Wait()
	if drainErr != nil {
		return drainErr
	}
	return first
}

// ReloadConfig is a live configuration change applied by Reload: the
// parameters an operator may turn on a running server without a
// restart. Zero-valued fields keep the current setting.
type ReloadConfig struct {
	// Stratum, if in 1..15, replaces the advertised stratum.
	Stratum uint8
	// RateLimit: nil keeps the current setting. A pointer to a
	// non-positive value turns rate limiting off; a positive value
	// updates the limit in place — established clients keep their
	// window state and budgets — or installs a fresh table when rate
	// limiting was off.
	RateLimit *int
	// RateWindow and MaxClients refine a RateLimit change; zero keeps
	// the table's current window/bound.
	RateWindow time.Duration
	MaxClients int
	// Overload, if non-nil, reconfigures the admission controller in
	// place — health state, sojourn EWMA and transition counters are
	// preserved (see overload.Controller.Reconfigure). Ignored when
	// the server was started without overload control.
	Overload *overload.Config
}

// Reload applies a live configuration change while the server keeps
// serving: no socket is dropped, no worker stops, and in-flight
// requests are answered under whichever parameters they loaded. This
// is the SIGHUP path — cmd/ntpserver re-reads its config file and
// calls Reload, then Recycle.
func (s *Server) Reload(r ReloadConfig) {
	if r.Stratum >= 1 && r.Stratum <= 15 {
		s.stratum.Store(uint32(r.Stratum))
	}
	if r.RateLimit != nil {
		switch lim := s.limiter.Load(); {
		case *r.RateLimit <= 0:
			s.limiter.Store(nil)
		case lim != nil:
			lim.reconfigure(*r.RateLimit, r.RateWindow, r.MaxClients)
		default:
			w, mc := r.RateWindow, r.MaxClients
			if w <= 0 {
				w = s.RateWindow
			}
			if mc <= 0 {
				mc = s.MaxClients
			}
			s.limiter.Store(newRateLimiter(*r.RateLimit, w, mc))
		}
	}
	if r.Overload != nil && s.ctrl != nil {
		s.ctrl.Reconfigure(*r.Overload)
	}
}

// Recycle rotates every shard's worker pool, one shard at a time,
// reusing the watchdog's epoch-bump machinery: each shard's old
// complement is told to exit (wherever its workers next unblock) while
// a fresh complement starts against the same socket, so the sockets —
// and the SO_REUSEPORT group — never drop and the other shards keep
// serving throughout. The admission controller is paused for the
// duration so the recycle's transient churn is not mistaken for
// overload. Pool rotations are counted in Snapshot().Restarts, same
// as watchdog-initiated ones.
func (s *Server) Recycle() {
	if s.ctrl != nil {
		s.ctrl.Pause()
		defer s.ctrl.Resume()
	}
	for _, sh := range s.shards {
		s.restartShard(sh)
	}
}

// Close stops the server and waits for every serve goroutine to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	if s.stopHk != nil {
		close(s.stopHk)
	}
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.hkWG.Wait()
	s.wg.Wait()
	return first
}

// Snapshot merges the shard-local metrics into the aggregate view.
// Counters are read atomically per shard; the merge is not one atomic
// transaction, which is fine for monitoring.
func (s *Server) Snapshot() Snapshot {
	var out Snapshot
	for _, sh := range s.shards {
		out.Merge(sh.metrics.Snapshot())
	}
	out.Restarts = s.restarts.Load()
	if s.ctrl != nil {
		out.Health = s.ctrl.State()
	}
	return out
}

// ShardSnapshots returns one Snapshot per shard, for observing how
// the kernel spreads load across the REUSEPORT group.
func (s *Server) ShardSnapshots() []Snapshot {
	out := make([]Snapshot, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.metrics.Snapshot()
	}
	return out
}

// NumShards returns the number of serving shards (0 before Listen).
func (s *Server) NumShards() int { return len(s.shards) }

// Health returns the admission controller's state (Healthy when
// overload control is off).
func (s *Server) Health() overload.State {
	if s.ctrl == nil {
		return overload.Healthy
	}
	return s.ctrl.State()
}

// OverloadStats returns the admission controller's snapshot (state,
// effective sojourn, crypto-cost EWMA); the zero Stats when overload
// control is off.
func (s *Server) OverloadStats() overload.Stats {
	if s.ctrl == nil {
		return overload.Stats{}
	}
	return s.ctrl.Stats()
}

// Served returns the number of requests answered across all shards.
func (s *Server) Served() int {
	n := uint64(0)
	for _, sh := range s.shards {
		n += sh.metrics.Served.Load()
	}
	return int(n)
}

// RateLimited returns the number of requests answered with RATE KoD.
func (s *Server) RateLimited() int {
	n := uint64(0)
	for _, sh := range s.shards {
		n += sh.metrics.Limited.Load()
	}
	return int(n)
}

// RateTableSize returns the current rate-limit table population
// (0 when rate limiting is off).
func (s *Server) RateTableSize() int {
	lim := s.limiter.Load()
	if lim == nil {
		return 0
	}
	return lim.size()
}

// spawnWorker starts one serve goroutine for sh's epoch-th pool,
// unless the server has been closed (the check and the WaitGroup add
// share the mutex Close takes, so a respawn can never race past
// Close's final Wait).
func (s *Server) spawnWorker(sh *shard, epoch uint64) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.wg.Add(1)
	s.mu.Unlock()
	go s.serve(sh, epoch)
}

// serve is one worker of a shard's pool. Each worker owns its
// buffers; *net.UDPConn reads and writes are safe for concurrent use.
// A panic anywhere in handling is contained here: the fault is
// counted and the worker respawned, so one poisoned packet (or bug)
// costs a single request, never the server.
func (s *Server) serve(sh *shard, epoch uint64) {
	defer func() {
		if r := recover(); r != nil {
			sh.metrics.Panics.Add(1)
			// Respawn unless the watchdog has since rotated the pool —
			// the new epoch already runs a full complement.
			if sh.epoch.Load() == epoch {
				s.spawnWorker(sh, epoch)
			}
		}
		s.wg.Done()
	}()
	// 2048 covers the largest NTS request/reply (~1KB with a full
	// placeholder load) with headroom; plain 48-byte traffic is
	// unaffected by the larger read buffer.
	buf := make([]byte, 2048)
	out := make([]byte, 0, ntppkt.HeaderLen)
	var oob []byte
	if sh.rxts {
		oob = make([]byte, oobSpace)
	}
	var req ntppkt.Packet
	for sh.epoch.Load() == epoch {
		var (
			n       int
			peer    *net.UDPAddr
			err     error
			ingress time.Time
		)
		if sh.rxts {
			var oobn int
			n, oobn, _, peer, err = sh.conn.ReadMsgUDP(buf, oob)
			if err == nil {
				ingress, _ = rxTimestamp(oob[:oobn])
			}
		} else {
			n, peer, err = sh.conn.ReadFromUDP(buf)
		}
		if err != nil {
			return // closed
		}
		out = s.handle(sh, buf[:n], peer, ingress, &req, out)
	}
}

// sojournSampleMask: 1 in 8 handled datagrams feed the sojourn EWMA;
// the other seven pay one atomic add.
const sojournSampleMask = 7

// observeSojourn feeds a sampled ingress-to-now sojourn into the
// overload controller. crypto is the AEAD time this request spent; it
// is subtracted from the queue signal and fed to the controller's
// crypto EWMA instead, so the two components of the effective sojourn
// never double-count. Plain requests pass zero, which decays the
// crypto estimate as authenticated load recedes.
func (s *Server) observeSojourn(sh *shard, ingress time.Time, crypto time.Duration) {
	if sh.sample.Add(1)&sojournSampleMask != 0 {
		return
	}
	now := time.Now()
	s.ctrl.Observe(now.Sub(ingress)-crypto, now)
	if s.NTS != nil {
		s.ctrl.ObserveCrypto(crypto, now)
	}
}

// handle processes one datagram. The in-flight/completed bookkeeping
// brackets everything — including an injected panic, whose unwind
// still runs the deferred decrement before serve's recovery respawns
// the worker.
func (s *Server) handle(sh *shard, pkt []byte, peer *net.UDPAddr, ingress time.Time, req *ntppkt.Packet, out []byte) []byte {
	sh.inFlight.Add(1)
	defer func() {
		sh.inFlight.Add(-1)
		sh.completed.Add(1)
	}()
	if ingress.IsZero() {
		// No kernel stamp: ingress degrades to read time, measuring
		// handling latency but not socket-queue wait.
		ingress = time.Now()
	}
	ctrl := s.ctrl
	probe := false
	if ctrl != nil && ctrl.State() == overload.Overloaded {
		// Early drop before parsing: once the queue has collapsed the
		// reply would carry a stale timestamp — worse for the client
		// than silence — and dropping is the fastest way to drain the
		// backlog. 1-in-N probes are admitted so sojourn samples keep
		// flowing and recovery stays possible.
		if probe = ctrl.ProbeAdmit(); !probe {
			sh.metrics.ShedDropped.Add(1)
			s.observeSojourn(sh, ingress, 0)
			return out
		}
	}
	if s.FaultHook != nil {
		s.FaultHook(sh.idx)
	}
	recv := s.Clock.Now()
	if err := req.DecodeInto(pkt); err != nil {
		sh.metrics.Malformed.Add(1)
		return out
	}
	if req.Mode != ntppkt.ModeClient {
		sh.metrics.Dropped.Add(1)
		return out
	}
	version := req.Version
	if version < ntppkt.Version3 || version > ntppkt.Version4 {
		version = ntppkt.Version4
	}
	// NTS verification runs before admission decisions: a valid
	// authenticator is the one signal a spoofed source cannot forge,
	// so it both earns the bypass below and must be checked before
	// granting it. The AEAD time is kept apart from the queue signal
	// and fed to the controller's crypto EWMA.
	var ntsReq *nts.ServerRequest
	var cryptoDur time.Duration
	if s.NTS != nil && nts.IsNTSRequest(req) {
		cryptoStart := time.Now()
		var err error
		ntsReq, err = nts.VerifyRequest(s.NTS, req)
		cryptoDur = time.Since(cryptoStart)
		if err != nil {
			var ok bool
			if out, ok = s.writeNTSNak(sh, version, req, peer, out); ok {
				sh.metrics.NTSNaks.Add(1)
			}
			if ctrl != nil {
				s.observeSojourn(sh, ingress, cryptoDur)
			}
			return out
		}
	}
	limiter := s.limiter.Load()
	if ctrl != nil && !probe && ntsReq == nil && ctrl.State() == overload.Degraded {
		// Shed new/unseen flows first: clients already holding
		// rate-limit state keep their budget, so the population being
		// answered well stays stable while fresh arrivals are told
		// RATE — loudly, not by silent drop. Flows that win the coin
		// toss proceed, enter the table below, and become established.
		established := limiter != nil && limiter.known(keyFromIP(peer.IP), recv)
		if !established && rand.Float64() < ctrl.ShedProb() {
			var ok bool
			if out, ok = s.writeRate(sh, version, req, peer, out); ok {
				sh.metrics.Shed.Add(1)
			}
			s.observeSojourn(sh, ingress, 0)
			return out
		}
	}
	// The limiter runs on the server's clock, like every protocol
	// timestamp: under a simulated or offset clock the windows
	// must follow the clock that stamps the packets, not the
	// wall.
	if limiter != nil && limiter.over(keyFromIP(peer.IP), recv) {
		var ok bool
		if out, ok = s.writeRate(sh, version, req, peer, out); ok {
			sh.metrics.Limited.Add(1)
		}
		return out
	}
	resp := ntppkt.Packet{
		Leap:      ntppkt.LeapNone,
		Version:   version,
		Mode:      ntppkt.ModeServer,
		Stratum:   uint8(s.stratum.Load()),
		Poll:      req.Poll,
		Precision: -20,
		RefID:     s.RefID,
		RefTime:   ntptime.FromTime(recv.Add(-10 * time.Second)),
		Origin:    req.Transmit,
		Receive:   ntptime.FromTime(recv),
		Transmit:  ntptime.FromTime(s.Clock.Now()),
	}
	if ntsReq != nil {
		// Seal after the transmit stamp: the authenticator's
		// associated data covers the final header image.
		cryptoStart := time.Now()
		err := nts.ProtectResponse(s.NTS, ntsReq, &resp)
		cryptoDur += time.Since(cryptoStart)
		if err != nil {
			sh.metrics.Dropped.Add(1)
			return out
		}
	}
	out = resp.Encode(out[:0])
	if _, err := sh.conn.WriteToUDP(out, peer); err != nil {
		sh.metrics.WriteErrors.Add(1)
		return out
	}
	sh.metrics.observeLatency(s.Clock.Now().Sub(recv))
	sh.metrics.Served.Add(1)
	if ntsReq != nil {
		sh.metrics.NTSServed.Add(1)
	}
	if ctrl != nil {
		s.observeSojourn(sh, ingress, cryptoDur)
	}
	return out
}

// writeRate sends a RATE kiss-of-death echoing the request's origin,
// returning the reused buffer and whether the write succeeded (a
// failure is counted in WriteErrors, not in the caller's counter).
func (s *Server) writeRate(sh *shard, version uint8, req *ntppkt.Packet, peer *net.UDPAddr, out []byte) ([]byte, bool) {
	kod := ntppkt.Packet{
		Leap: ntppkt.LeapNotSync, Version: version, Mode: ntppkt.ModeServer,
		Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
		Origin: req.Transmit,
	}
	out = kod.Encode(out[:0])
	if _, err := sh.conn.WriteToUDP(out, peer); err != nil {
		sh.metrics.WriteErrors.Add(1)
		return out, false
	}
	return out, true
}

// writeNTSNak sends an NTS NAK kiss-of-death (RFC 8915 §5.7): the
// server saw NTS fields it could not authenticate — a cookie sealed
// under a rotated-out epoch, or a forged/corrupted authenticator —
// and the client must re-run key establishment. The request's unique
// identifier is echoed so the client can match the NAK; no
// authenticator is added since the server has no verified keys.
func (s *Server) writeNTSNak(sh *shard, version uint8, req *ntppkt.Packet, peer *net.UDPAddr, out []byte) ([]byte, bool) {
	nak := ntppkt.Packet{
		Leap: ntppkt.LeapNotSync, Version: version, Mode: ntppkt.ModeServer,
		Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissNTSN,
		Origin: req.Transmit,
	}
	if uid, _ := req.FindExt(ntppkt.ExtUniqueIdentifier); uid != nil {
		nts.ProtectNAK(uid.Value, &nak)
	}
	out = nak.Encode(out[:0])
	if _, err := sh.conn.WriteToUDP(out, peer); err != nil {
		sh.metrics.WriteErrors.Add(1)
		return out, false
	}
	return out, true
}

// housekeep is the watchdog/housekeeping loop: it restarts wedged
// shard pools, sweeps expired rate-limit entries, and feeds the slow
// signals (in-flight, write-error rate, table pressure) to the
// overload controller.
func (s *Server) housekeep(interval time.Duration) {
	defer s.hkWG.Done()
	tick := time.NewTicker(interval)
	defer tick.Stop()
	prev := make([]uint64, len(s.shards))
	for i, sh := range s.shards {
		prev[i] = sh.completed.Load()
	}
	cooldown := make([]int, len(s.shards))
	deltas := make([]uint64, len(s.shards))
	var prevServed, prevWriteErr uint64
	for {
		select {
		case <-s.stopHk:
			return
		case <-tick.C:
		}
		// Wedged-shard scan: a shard holding work in flight that
		// completed nothing over a whole interval is stuck mid-handle
		// (an idle shard holds nothing in flight). Only act when a
		// sibling did make progress, so a globally quiet server is
		// left alone; the cooldown stops a still-wedged shard from
		// accreting a fresh pool every tick.
		var maxDelta uint64
		for i, sh := range s.shards {
			cur := sh.completed.Load()
			deltas[i] = cur - prev[i]
			prev[i] = cur
			if deltas[i] > maxDelta {
				maxDelta = deltas[i]
			}
		}
		var maxInFlight int64
		for i, sh := range s.shards {
			inf := sh.inFlight.Load()
			if inf > maxInFlight {
				maxInFlight = inf
			}
			if cooldown[i] > 0 {
				cooldown[i]--
				continue
			}
			if deltas[i] == 0 && inf > 0 && maxDelta > 0 {
				s.restartShard(sh)
				cooldown[i] = 2
			}
		}
		if lim := s.limiter.Load(); lim != nil {
			lim.sweep(s.Clock.Now())
		}
		if s.ctrl != nil {
			var occ float64
			if lim := s.limiter.Load(); lim != nil {
				occ = lim.occupancy()
			}
			snap := s.Snapshot()
			dServed := snap.Served - prevServed
			dWE := snap.WriteErrors - prevWriteErr
			prevServed, prevWriteErr = snap.Served, snap.WriteErrors
			var weFrac float64
			if dServed+dWE > 0 {
				weFrac = float64(dWE) / float64(dServed+dWE)
			}
			s.ctrl.Evaluate(time.Now(), overload.Signals{
				MaxShardInFlight: int(maxInFlight),
				TableOccupancy:   occ,
				WriteErrorFrac:   weFrac,
			})
		}
	}
}

// restartShard rotates a wedged shard's worker pool: the epoch bump
// tells the old workers — wherever they are stuck — to exit when they
// next complete a datagram, and a fresh complement starts against the
// same socket immediately.
func (s *Server) restartShard(sh *shard) {
	epoch := sh.epoch.Add(1)
	s.restarts.Add(1)
	for w := 0; w < s.workersPerShard; w++ {
		s.spawnWorker(sh, epoch)
	}
}
