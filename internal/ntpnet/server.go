package ntpnet

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// Server is a UDP NTP server. It answers client (mode 3) requests with
// timestamps from its clock; malformed packets are dropped. An
// optional per-client rate limit answers abusive clients with a
// RATE kiss-of-death packet, as pool servers do.
//
// The listen path is sharded: Shards sockets are bound to the same
// address with SO_REUSEPORT, so the kernel spreads inbound datagrams
// across independent receive queues and the shards never contend on
// one socket lock. Each shard runs its own pool of Workers goroutines
// and counts into its own shard-local Metrics; Snapshot() merges them
// into the aggregate view. On platforms without SO_REUSEPORT (or when
// the kernel refuses it) every shard serves one shared socket — the
// worker pools and per-shard counters remain, only the kernel-level
// queue spread is lost. The rate-limit table is shared across shards
// (a client's budget is global, whichever queue its packets hash to)
// and bounded (MaxClients) with window-stamped eviction.
type Server struct {
	Clock   clock.Clock
	Stratum uint8
	RefID   [4]byte
	// RateLimit, if positive, is the maximum requests per client
	// address per RateWindow before RATE KoD responses are sent.
	RateLimit  int
	RateWindow time.Duration
	// MaxClients bounds the rate-limit table (default
	// DefaultMaxClients). When full, expired buckets are evicted
	// first, then the oldest window.
	MaxClients int
	// Workers is the number of serve goroutines per shard (default
	// GOMAXPROCS/Shards, at least 1).
	Workers int
	// Shards is the number of listening sockets bound to the address
	// via SO_REUSEPORT (default 1). All fields must be set before
	// Listen.
	Shards int

	conns   []*net.UDPConn
	shards  []*shard
	wg      sync.WaitGroup
	limiter *rateLimiter
}

// shard is one slice of the serving fast path: a socket (exclusive
// under SO_REUSEPORT, shared in the fallback) and the metrics its
// workers count into. Shard-local counters keep the hot path free of
// cross-shard cache-line bouncing; readers merge them on demand.
type shard struct {
	conn    *net.UDPConn
	metrics Metrics
}

// NewServer creates a server with the given clock and stratum.
func NewServer(clk clock.Clock, stratum uint8) *Server {
	return &Server{Clock: clk, Stratum: stratum, RefID: [4]byte{'L', 'O', 'C', 'L'}}
}

// ReusePortAvailable reports whether this platform supports the
// SO_REUSEPORT sharded listen path. When false, a Shards > 1 server
// still runs — every shard serves one shared socket — so callers
// (and benchmarks demonstrating shard scaling) can skip gracefully.
func ReusePortAvailable() bool { return reusePortAvailable }

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts the
// serve pools. It returns the bound address.
func (s *Server) Listen(addr string) (*net.UDPAddr, error) {
	nshards := s.Shards
	if nshards <= 0 {
		nshards = 1
	}
	conns, err := listenShards(addr, nshards)
	if err != nil {
		return nil, err
	}
	s.conns = conns
	if s.RateLimit > 0 {
		s.limiter = newRateLimiter(s.RateLimit, s.RateWindow, s.MaxClients)
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0) / nshards
		if workers < 1 {
			workers = 1
		}
	}
	s.shards = make([]*shard, nshards)
	for i := range s.shards {
		sh := &shard{conn: conns[i%len(conns)]}
		s.shards[i] = sh
		s.wg.Add(workers)
		for w := 0; w < workers; w++ {
			go s.serve(sh)
		}
	}
	return conns[0].LocalAddr().(*net.UDPAddr), nil
}

// listenShards binds n sockets to addr with SO_REUSEPORT, falling
// back to a single plain socket when n == 1, the platform lacks the
// option, or the kernel refuses it. With a wildcard port the first
// bind picks it and the rest join that port.
func listenShards(addr string, n int) ([]*net.UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: resolve %q: %w", addr, err)
	}
	if n > 1 && reusePortAvailable {
		if conns, err := listenReusePort(ua, n); err == nil {
			return conns, nil
		}
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: listen %q: %w", addr, err)
	}
	return []*net.UDPConn{conn}, nil
}

func listenReusePort(ua *net.UDPAddr, n int) ([]*net.UDPConn, error) {
	lc := net.ListenConfig{Control: reusePortControl}
	conns := make([]*net.UDPConn, 0, n)
	laddr := ua.String()
	for i := 0; i < n; i++ {
		pc, err := lc.ListenPacket(context.Background(), "udp", laddr)
		if err != nil {
			for _, c := range conns {
				c.Close()
			}
			return nil, err
		}
		uc := pc.(*net.UDPConn)
		conns = append(conns, uc)
		if i == 0 {
			laddr = uc.LocalAddr().String() // pin the kernel-chosen port
		}
	}
	return conns, nil
}

// Close stops the server and waits for every serve goroutine to exit.
func (s *Server) Close() error {
	var first error
	for _, c := range s.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.wg.Wait()
	return first
}

// Snapshot merges the shard-local metrics into the aggregate view.
// Counters are read atomically per shard; the merge is not one atomic
// transaction, which is fine for monitoring.
func (s *Server) Snapshot() Snapshot {
	var out Snapshot
	for _, sh := range s.shards {
		out.Merge(sh.metrics.Snapshot())
	}
	return out
}

// ShardSnapshots returns one Snapshot per shard, for observing how
// the kernel spreads load across the REUSEPORT group.
func (s *Server) ShardSnapshots() []Snapshot {
	out := make([]Snapshot, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.metrics.Snapshot()
	}
	return out
}

// NumShards returns the number of serving shards (0 before Listen).
func (s *Server) NumShards() int { return len(s.shards) }

// Served returns the number of requests answered across all shards.
func (s *Server) Served() int {
	n := uint64(0)
	for _, sh := range s.shards {
		n += sh.metrics.Served.Load()
	}
	return int(n)
}

// RateLimited returns the number of requests answered with RATE KoD.
func (s *Server) RateLimited() int {
	n := uint64(0)
	for _, sh := range s.shards {
		n += sh.metrics.Limited.Load()
	}
	return int(n)
}

// RateTableSize returns the current rate-limit table population
// (0 when rate limiting is off).
func (s *Server) RateTableSize() int {
	if s.limiter == nil {
		return 0
	}
	return s.limiter.size()
}

// serve is one worker of a shard's pool. Each worker owns its
// buffers; *net.UDPConn reads and writes are safe for concurrent use.
func (s *Server) serve(sh *shard) {
	defer s.wg.Done()
	buf := make([]byte, 512)
	out := make([]byte, 0, ntppkt.HeaderLen)
	var req ntppkt.Packet
	for {
		n, peer, err := sh.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		recv := s.Clock.Now()
		if err := req.DecodeInto(buf[:n]); err != nil {
			sh.metrics.Malformed.Add(1)
			continue
		}
		if req.Mode != ntppkt.ModeClient {
			sh.metrics.Dropped.Add(1)
			continue
		}
		version := req.Version
		if version < ntppkt.Version3 || version > ntppkt.Version4 {
			version = ntppkt.Version4
		}
		// The limiter runs on the server's clock, like every protocol
		// timestamp: under a simulated or offset clock the windows
		// must follow the clock that stamps the packets, not the
		// wall.
		if s.limiter != nil && s.limiter.over(keyFromIP(peer.IP), recv) {
			kod := ntppkt.Packet{
				Leap: ntppkt.LeapNotSync, Version: version, Mode: ntppkt.ModeServer,
				Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
				Origin: req.Transmit,
			}
			out = kod.Encode(out[:0])
			if _, err := sh.conn.WriteToUDP(out, peer); err != nil {
				sh.metrics.WriteErrors.Add(1)
				continue
			}
			sh.metrics.Limited.Add(1)
			continue
		}
		resp := ntppkt.Packet{
			Leap:      ntppkt.LeapNone,
			Version:   version,
			Mode:      ntppkt.ModeServer,
			Stratum:   s.Stratum,
			Poll:      req.Poll,
			Precision: -20,
			RefID:     s.RefID,
			RefTime:   ntptime.FromTime(recv.Add(-10 * time.Second)),
			Origin:    req.Transmit,
			Receive:   ntptime.FromTime(recv),
			Transmit:  ntptime.FromTime(s.Clock.Now()),
		}
		out = resp.Encode(out[:0])
		if _, err := sh.conn.WriteToUDP(out, peer); err != nil {
			sh.metrics.WriteErrors.Add(1)
			continue
		}
		sh.metrics.observeLatency(s.Clock.Now().Sub(recv))
		sh.metrics.Served.Add(1)
	}
}
