package ntpnet

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// Server is a UDP NTP server. It answers client (mode 3) requests with
// timestamps from its clock; malformed packets are dropped. An
// optional per-client rate limit answers abusive clients with a
// RATE kiss-of-death packet, as pool servers do.
//
// A pool of Workers goroutines shares the socket so the server scales
// with cores; each worker reuses its read and write buffers, so the
// steady-state serving path does not allocate per packet. The
// rate-limit table is bounded (MaxClients) with window-stamped
// eviction, and all outcomes are counted in Metrics.
type Server struct {
	Clock   clock.Clock
	Stratum uint8
	RefID   [4]byte
	// RateLimit, if positive, is the maximum requests per client
	// address per RateWindow before RATE KoD responses are sent.
	RateLimit  int
	RateWindow time.Duration
	// MaxClients bounds the rate-limit table (default
	// DefaultMaxClients). When full, expired buckets are evicted
	// first, then the oldest window.
	MaxClients int
	// Workers is the number of serve goroutines sharing the socket
	// (default GOMAXPROCS). All fields above must be set before
	// Listen.
	Workers int

	conn    *net.UDPConn
	wg      sync.WaitGroup
	limiter *rateLimiter
	metrics Metrics
}

// NewServer creates a server with the given clock and stratum.
func NewServer(clk clock.Clock, stratum uint8) *Server {
	return &Server{Clock: clk, Stratum: stratum, RefID: [4]byte{'L', 'O', 'C', 'L'}}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts the
// serve pool. It returns the bound address.
func (s *Server) Listen(addr string) (*net.UDPAddr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: listen %q: %w", addr, err)
	}
	s.conn = conn
	if s.RateLimit > 0 {
		s.limiter = newRateLimiter(s.RateLimit, s.RateWindow, s.MaxClients)
	}
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.serve()
	}
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// Close stops the server and waits for every serve goroutine to exit.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// Metrics returns the server's counters for monitoring. The pointer
// is valid for the server's lifetime; counters are atomic.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Served returns the number of requests answered.
func (s *Server) Served() int { return int(s.metrics.Served.Load()) }

// RateLimited returns the number of requests answered with RATE KoD.
func (s *Server) RateLimited() int { return int(s.metrics.Limited.Load()) }

// RateTableSize returns the current rate-limit table population
// (0 when rate limiting is off).
func (s *Server) RateTableSize() int {
	if s.limiter == nil {
		return 0
	}
	return s.limiter.size()
}

// serve is one worker of the pool. Each worker owns its buffers;
// *net.UDPConn reads and writes are safe for concurrent use.
func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	out := make([]byte, 0, ntppkt.HeaderLen)
	var req ntppkt.Packet
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		recv := s.Clock.Now()
		if err := req.DecodeInto(buf[:n]); err != nil {
			s.metrics.Malformed.Add(1)
			continue
		}
		if req.Mode != ntppkt.ModeClient {
			s.metrics.Dropped.Add(1)
			continue
		}
		version := req.Version
		if version < ntppkt.Version3 || version > ntppkt.Version4 {
			version = ntppkt.Version4
		}
		// The limiter runs on the server's clock, like every protocol
		// timestamp: under a simulated or offset clock the windows
		// must follow the clock that stamps the packets, not the
		// wall.
		if s.limiter != nil && s.limiter.over(keyFromIP(peer.IP), recv) {
			kod := ntppkt.Packet{
				Leap: ntppkt.LeapNotSync, Version: version, Mode: ntppkt.ModeServer,
				Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
				Origin: req.Transmit,
			}
			out = kod.Encode(out[:0])
			if _, err := s.conn.WriteToUDP(out, peer); err != nil {
				s.metrics.WriteErrors.Add(1)
				continue
			}
			s.metrics.Limited.Add(1)
			continue
		}
		resp := ntppkt.Packet{
			Leap:      ntppkt.LeapNone,
			Version:   version,
			Mode:      ntppkt.ModeServer,
			Stratum:   s.Stratum,
			Poll:      req.Poll,
			Precision: -20,
			RefID:     s.RefID,
			RefTime:   ntptime.FromTime(recv.Add(-10 * time.Second)),
			Origin:    req.Transmit,
			Receive:   ntptime.FromTime(recv),
			Transmit:  ntptime.FromTime(s.Clock.Now()),
		}
		out = resp.Encode(out[:0])
		if _, err := s.conn.WriteToUDP(out, peer); err != nil {
			s.metrics.WriteErrors.Add(1)
			continue
		}
		s.metrics.observeLatency(s.Clock.Now().Sub(recv))
		s.metrics.Served.Add(1)
	}
}
