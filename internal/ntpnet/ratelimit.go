package ntpnet

import (
	"net"
	"sync"
	"time"
)

// DefaultMaxClients bounds the rate-limit table when the server does
// not configure a limit: abusive-client tracking must never grow
// without bound, whatever traffic arrives.
const DefaultMaxClients = 1 << 14

// addrKey is a rate-limit table key: the 16-byte form of the client
// IP. Using a fixed-size array (not ip.String()) keeps the per-packet
// path allocation-free.
type addrKey [16]byte

// v4Prefix is the IPv4-in-IPv6 mapping prefix of an IPv4 key.
var v4Prefix = [12]byte{10: 0xff, 11: 0xff}

func keyFromIP(ip net.IP) addrKey {
	var k addrKey
	if ip4 := ip.To4(); ip4 != nil {
		copy(k[:12], v4Prefix[:])
		copy(k[12:], ip4)
		return k
	}
	copy(k[:], ip)
	return k
}

type rateBucket struct {
	windowStart time.Time
	count       int
}

// rateLimiter is a bounded per-client request counter over a sliding
// window. Buckets are window-stamped: when the table is full, expired
// buckets are evicted first and, failing that, the bucket with the
// oldest window start (closest to expiry) is displaced. The eviction
// scan is O(table) but runs only when the table is at capacity, so
// steady-state traffic from a bounded client population never pays
// for it.
type rateLimiter struct {
	limit   int
	window  time.Duration
	maxSize int

	mu      sync.Mutex
	buckets map[addrKey]*rateBucket
}

func newRateLimiter(limit int, window time.Duration, maxSize int) *rateLimiter {
	if window <= 0 {
		window = time.Minute
	}
	if maxSize <= 0 {
		maxSize = DefaultMaxClients
	}
	return &rateLimiter{
		limit: limit, window: window, maxSize: maxSize,
		buckets: make(map[addrKey]*rateBucket),
	}
}

// reconfigure changes the limiter's parameters in place, preserving
// every established client's bucket — a live reload must not reset the
// fleet's window budgets, or a reload under flood would readmit every
// abuser for a fresh burst. Non-positive window/maxSize keep the
// current values. Shrinking maxSize below the current population does
// not evict immediately; the next insertion's eviction scan and the
// housekeeping sweep converge the table to the new bound.
func (rl *rateLimiter) reconfigure(limit int, window time.Duration, maxSize int) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	rl.limit = limit
	if window > 0 {
		rl.window = window
	}
	if maxSize > 0 {
		rl.maxSize = maxSize
	}
}

// over reports whether the client has exceeded the rate limit,
// updating its bucket. now must come from the server's clock so that
// limiter windows agree with the clock serving the timestamps
// (simulated and offset clocks included).
func (rl *rateLimiter) over(key addrKey, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	if b == nil {
		if len(rl.buckets) >= rl.maxSize {
			rl.evictLocked(now)
		}
		rl.buckets[key] = &rateBucket{windowStart: now, count: 1}
		return false
	}
	if now.Sub(b.windowStart) >= rl.window {
		b.windowStart = now
		b.count = 1
		return false
	}
	b.count++
	return b.count > rl.limit
}

// evictLocked makes room for one insertion: every expired bucket is
// removed, and if none were, the oldest-windowed bucket is displaced.
func (rl *rateLimiter) evictLocked(now time.Time) {
	var oldestKey addrKey
	var oldest time.Time
	haveOldest := false
	evicted := false
	for k, b := range rl.buckets {
		if now.Sub(b.windowStart) >= rl.window {
			delete(rl.buckets, k)
			evicted = true
			continue
		}
		if !haveOldest || b.windowStart.Before(oldest) {
			oldestKey, oldest, haveOldest = k, b.windowStart, true
		}
	}
	if !evicted && haveOldest {
		delete(rl.buckets, oldestKey)
	}
}

// known reports whether the client currently holds per-IP state with
// an unexpired window — "established" for admission control — without
// mutating the table.
func (rl *rateLimiter) known(key addrKey, now time.Time) bool {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[key]
	return b != nil && now.Sub(b.windowStart) < rl.window
}

// sweep drops every bucket whose window has expired. The serve path
// only evicts when the table is full, so without sweeping a burst
// that fills the table — a spoofed-source flood — would pin it at
// MaxClients long after the flood ended, forcing the O(table)
// full-table eviction scan onto every later legitimate new client.
// The server's housekeeping loop calls this periodically.
func (rl *rateLimiter) sweep(now time.Time) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	for k, b := range rl.buckets {
		if now.Sub(b.windowStart) >= rl.window {
			delete(rl.buckets, k)
		}
	}
}

// occupancy returns the table fill fraction (0..1), the overload
// controller's table-pressure signal.
func (rl *rateLimiter) occupancy() float64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return float64(len(rl.buckets)) / float64(rl.maxSize)
}

// size returns the current table population.
func (rl *rateLimiter) size() int {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return len(rl.buckets)
}
