package ntpnet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/overload"
)

// TestShutdownDrainsInFlight pins the drain contract: requests the
// server has admitted when Shutdown is called are answered, not
// abandoned, even though their handlers are still running (a slow
// FaultHook holds them mid-handle across the Shutdown call).
func TestShutdownDrainsInFlight(t *testing.T) {
	const k = 8
	admitted := make(chan struct{}, k)
	release := make(chan struct{})
	srv := NewServer(clock.System{}, 2)
	srv.Workers = k
	srv.FaultHook = func(int) {
		admitted <- struct{}{}
		<-release
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var answered atomic.Int64
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := &Client{Timeout: 5 * time.Second}
			req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
			if _, _, err := c.Exchange(addr.String(), req); err == nil {
				answered.Add(1)
			}
		}()
	}
	for i := 0; i < k; i++ {
		<-admitted
	}

	// All k requests are mid-handle. Shutdown must wait for them;
	// release the hook once the drain has begun.
	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- srv.Shutdown(ctx)
	}()
	time.Sleep(50 * time.Millisecond) // let Shutdown set the deadlines
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if got := answered.Load(); got != k {
		t.Errorf("answered = %d, want %d (admitted requests abandoned)", got, k)
	}
	snap := srv.Snapshot()
	if snap.WriteErrors != 0 {
		t.Errorf("write errors = %d, want 0", snap.WriteErrors)
	}
	for i, sh := range srv.shards {
		if inf := sh.inFlight.Load(); inf != 0 {
			t.Errorf("shard %d: %d requests still in flight after drain", i, inf)
		}
	}
}

// TestShutdownDeadlineExpiry: when the drain deadline passes with a
// handler still wedged, Shutdown degrades to Close's behavior —
// sockets closed, ctx.Err() returned — without deadlocking on the
// stuck worker.
func TestShutdownDeadlineExpiry(t *testing.T) {
	admitted := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 1
	srv.Shards = 1
	srv.FaultHook = func(int) {
		select {
		case admitted <- struct{}{}:
		default:
		}
		<-release
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c := &Client{Timeout: 5 * time.Second}
		req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
		c.Exchange(addr.String(), req)
	}()
	<-admitted

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	// The wedged worker is released after the fact; the server must
	// still wind down cleanly (Close is a no-op, workers exit on the
	// closed socket).
	close(release)
	if err := srv.Close(); err != nil {
		t.Errorf("Close after expired Shutdown: %v", err)
	}
	srv.wg.Wait()
}

// TestShutdownUnderLiveLoad is the race-clean acceptance pin: a
// population of senders keeps the server busy while Shutdown drains
// it. Inside the deadline no admitted request may be abandoned —
// after Shutdown returns nil, nothing is in flight and every reply
// write succeeded.
func TestShutdownUnderLiveLoad(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 4
	srv.FaultHook = func(int) { time.Sleep(time.Millisecond) }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var senders sync.WaitGroup
	for i := 0; i < 8; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			c := &Client{Timeout: 200 * time.Millisecond}
			req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Exchange(addr.String(), req) // errors expected once drained
			}
		}()
	}
	time.Sleep(200 * time.Millisecond) // live load established

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown under load: %v", err)
	}
	close(stop)
	senders.Wait()

	snap := srv.Snapshot()
	if snap.Served == 0 {
		t.Fatal("no requests served before drain — load never arrived")
	}
	if snap.WriteErrors != 0 {
		t.Errorf("write errors = %d, want 0 (reply abandoned mid-drain)", snap.WriteErrors)
	}
	for i, sh := range srv.shards {
		if inf := sh.inFlight.Load(); inf != 0 {
			t.Errorf("shard %d: %d requests abandoned in flight", i, inf)
		}
	}
}

// TestReloadLiveParams: Reload changes the advertised stratum and the
// rate limit while the server keeps answering on the same socket — the
// SIGHUP path. The client observes the change with no gap in service.
func TestReloadLiveParams(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.RateLimit = 1000
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Timeout: 2 * time.Second}
	query := func() (*ntppkt.Packet, error) {
		req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
		resp, _, err := c.Exchange(addr.String(), req)
		return resp, err
	}

	resp, err := query()
	if err != nil {
		t.Fatal(err)
	}
	if resp.Stratum != 2 {
		t.Fatalf("stratum = %d, want 2", resp.Stratum)
	}

	srv.Reload(ReloadConfig{Stratum: 5})
	resp, err = query()
	if err != nil {
		t.Fatalf("query after stratum reload: %v", err)
	}
	if resp.Stratum != 5 {
		t.Errorf("stratum after reload = %d, want 5", resp.Stratum)
	}

	// Tighten the rate limit to 1/window live: the client has already
	// spent 2 requests this window, so the next is over budget and
	// gets RATE — proof the limiter change took effect in place (the
	// bucket survived the reload) without a socket drop.
	one := 1
	srv.Reload(ReloadConfig{RateLimit: &one})
	resp, err = query()
	if err != nil {
		t.Fatalf("query after ratelimit reload: %v", err)
	}
	if resp.Stratum != ntppkt.StratumKoD || resp.RefID != ntppkt.KissRate {
		t.Errorf("reply after tightened limit = stratum %d refid %v, want RATE KoD", resp.Stratum, resp.RefID)
	}

	// Turn rate limiting off live: service resumes for the same client.
	zero := 0
	srv.Reload(ReloadConfig{RateLimit: &zero})
	resp, err = query()
	if err != nil {
		t.Fatalf("query after ratelimit off: %v", err)
	}
	if resp.Stratum != 5 {
		t.Errorf("stratum with limiting off = %d, want 5", resp.Stratum)
	}
	if srv.RateTableSize() != 0 {
		t.Errorf("rate table size = %d, want 0 with limiting off", srv.RateTableSize())
	}
}

// TestReloadInstallsLimiterWhenOff: a server started without rate
// limiting can have it switched on by Reload.
func TestReloadInstallsLimiterWhenOff(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	one := 1
	srv.Reload(ReloadConfig{RateLimit: &one, RateWindow: time.Minute})
	c := &Client{Timeout: 2 * time.Second}
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	if _, _, err := c.Exchange(addr.String(), req); err != nil {
		t.Fatalf("first request: %v", err)
	}
	req = ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	resp, _, err := c.Exchange(addr.String(), req)
	if err != nil {
		t.Fatalf("second request: %v", err)
	}
	if resp.Stratum != ntppkt.StratumKoD || resp.RefID != ntppkt.KissRate {
		t.Errorf("second request not limited: stratum %d refid %v", resp.Stratum, resp.RefID)
	}
}

// TestRecycleUnderLoad: Recycle rotates every shard's pool while
// clients keep querying — service continues, the sockets never drop,
// and the rotations are visible in Snapshot().Restarts.
func TestRecycleUnderLoad(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.Workers = 2
	srv.Overload = &overload.Config{}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	stop := make(chan struct{})
	var senders sync.WaitGroup
	for i := 0; i < 4; i++ {
		senders.Add(1)
		go func() {
			defer senders.Done()
			c := &Client{Timeout: 200 * time.Millisecond}
			req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Exchange(addr.String(), req)
			}
		}()
	}
	time.Sleep(100 * time.Millisecond)

	before := srv.Snapshot().Restarts
	srv.Recycle()
	after := srv.Snapshot().Restarts
	if want := before + uint64(srv.NumShards()); after != want {
		t.Errorf("restarts = %d, want %d (one rotation per shard)", after, want)
	}

	// Service must continue on the recycled pools.
	c := &Client{Timeout: 2 * time.Second}
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	if _, _, err := c.Exchange(addr.String(), req); err != nil {
		t.Fatalf("request after recycle: %v", err)
	}
	close(stop)
	senders.Wait()
	if st := srv.Health(); st != overload.Healthy {
		t.Errorf("health after recycle = %v, want Healthy (controller resumed)", st)
	}
}

// TestRateLimiterReconfigurePreservesBuckets: a live reconfigure must
// not reset established clients' window budgets.
func TestRateLimiterReconfigurePreservesBuckets(t *testing.T) {
	now := time.Now()
	rl := newRateLimiter(10, time.Minute, 100)
	key := keyFromIP([]byte{127, 0, 0, 1})
	for i := 0; i < 5; i++ {
		if rl.over(key, now) {
			t.Fatalf("over at %d/10", i)
		}
	}
	rl.reconfigure(5, 0, 0)
	if rl.window != time.Minute || rl.maxSize != 100 {
		t.Errorf("zero window/maxSize must keep current values: %v %d", rl.window, rl.maxSize)
	}
	// The client already spent 5 of the new limit of 5: next is over.
	if !rl.over(key, now) {
		t.Error("budget reset by reconfigure — bucket not preserved")
	}
	rl.reconfigure(100, 30*time.Second, 50)
	if rl.limit != 100 || rl.window != 30*time.Second || rl.maxSize != 50 {
		t.Errorf("reconfigure did not apply: %d %v %d", rl.limit, rl.window, rl.maxSize)
	}
	if !rl.known(key, now) {
		t.Error("established client lost after reconfigure")
	}
}
