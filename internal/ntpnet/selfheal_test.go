package ntpnet

import (
	"net"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// sendRequest writes one mode-3 request on conn.
func sendRequest(t *testing.T, conn *net.UDPConn) {
	t.Helper()
	req := ntppkt.Packet{Version: ntppkt.Version4, Mode: ntppkt.ModeClient,
		Transmit: ntptime.FromTime(time.Now())}
	if _, err := conn.Write(req.Encode(nil)); err != nil {
		t.Fatalf("send: %v", err)
	}
}

// readReply reads one datagram with a deadline and decodes it;
// ok=false on timeout.
func readReply(t *testing.T, conn *net.UDPConn, timeout time.Duration) (ntppkt.Packet, bool) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(timeout))
	buf := make([]byte, 512)
	n, err := conn.Read(buf)
	if err != nil {
		return ntppkt.Packet{}, false
	}
	var p ntppkt.Packet
	if err := p.DecodeInto(buf[:n]); err != nil {
		t.Fatalf("decode reply: %v", err)
	}
	return p, true
}

// TestWorkerPanicRecovery: a panic inside a worker's handler must
// cost exactly the request that triggered it — counted, recovered,
// worker respawned — never the server. Runs under -race in CI.
func TestWorkerPanicRecovery(t *testing.T) {
	faults := NewServerFaults()
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 2
	srv.WatchdogInterval = -1 // isolate the respawn path from the watchdog
	srv.FaultHook = faults.Hook
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	faults.PanicAfter(0, 1)
	sendRequest(t, conn)
	if _, ok := readReply(t, conn, 300*time.Millisecond); ok {
		t.Fatal("poisoned request got a reply; the injected panic did not fire")
	}

	// The server must still answer: the surviving worker or the
	// respawned one picks the next request up.
	for i := 0; i < 3; i++ {
		sendRequest(t, conn)
		if p, ok := readReply(t, conn, time.Second); !ok {
			t.Fatalf("request %d after panic: no reply — server did not survive", i)
		} else if p.Mode != ntppkt.ModeServer {
			t.Fatalf("request %d: reply mode %d", i, p.Mode)
		}
	}

	snap := srv.Snapshot()
	if snap.Panics != 1 {
		t.Errorf("Panics = %d, want 1", snap.Panics)
	}
	if snap.Served != 3 {
		t.Errorf("Served = %d, want 3", snap.Served)
	}
}

// TestWatchdogRestartsWedgedShard: workers of one shard wedged
// mid-handle (holding in-flight work, completing nothing) while the
// sibling shard serves must be detected and their pool restarted
// within a watchdog interval; after release the shard serves again
// and Close drains cleanly. Runs under -race in CI.
func TestWatchdogRestartsWedgedShard(t *testing.T) {
	faults := NewServerFaults()
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.Workers = 1
	srv.WatchdogInterval = 25 * time.Millisecond
	srv.FaultHook = faults.Hook
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Many distinct flows so the kernel's REUSEPORT hash lands
	// traffic on both sockets (in the shared-socket fallback both
	// shards read one socket and any flow will do).
	conns := make([]*net.UDPConn, 32)
	for i := range conns {
		c, err := net.DialUDP("udp", nil, addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		conns[i] = c
	}

	faults.Wedge(0)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, c := range conns {
				req := ntppkt.Packet{Version: ntppkt.Version4, Mode: ntppkt.ModeClient,
					Transmit: ntptime.FromTime(time.Now())}
				c.Write(req.Encode(nil))
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// The wedged shard holds its datagram in flight without
	// completing while shard 1 makes progress: the watchdog must
	// restart shard 0's pool.
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) && srv.Snapshot().Restarts == 0 {
		time.Sleep(10 * time.Millisecond)
	}
	restarts := srv.Snapshot().Restarts
	if restarts == 0 {
		close(stop)
		<-done
		faults.Release(0)
		t.Fatal("watchdog never restarted the wedged shard")
	}

	faults.Release(0)
	servedAtRelease := srv.Served()
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && srv.Served() <= servedAtRelease {
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	<-done
	if got := srv.Served(); got <= servedAtRelease {
		t.Errorf("served stuck at %d after release", got)
	}
	t.Logf("restarts=%d served=%d", restarts, srv.Served())

	// Close must drain every worker, including the stale-epoch ones
	// that just unblocked.
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
}
