package ntpnet

import (
	"math/rand"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// FaultTransport wraps an exchange.Transport with seeded fault
// injection: exchange loss, added delay, reply duplication, wire
// corruption and kiss-of-death storms. It sits above the transport it
// wraps, so the faults it injects model what a client experiences
// after its own receive loop — a dropped exchange surfaces as
// ErrTimeout, a duplicated reply is replayed (with its stale origin)
// in place of a later genuine reply, a corrupted reply has a random
// wire bit flipped. Robustness tests drive the SNTP/MNTP clients
// through these faults without needing a lossy physical network.
//
// The zero value with only Inner set injects nothing. All decisions
// come from a rand.Rand seeded with Seed, so runs are reproducible.
// FaultTransport is safe for concurrent use.
type FaultTransport struct {
	Inner exchange.Transport
	// Clock stamps T4 on synthesized (KoD, duplicated) replies;
	// default the system clock.
	Clock clock.Clock
	// Sleeper performs injected delays; default wall-time sleep.
	Sleeper interface{ Sleep(time.Duration) }
	// Seed drives every probabilistic decision.
	Seed int64

	// DropFirst deterministically drops the first N exchanges —
	// convenient for exercising retry paths without probability.
	DropFirst int
	// DropProb drops an exchange (ErrTimeout) with this probability.
	DropProb float64
	// DupProb records a copy of a genuine reply with this
	// probability; the copy is replayed as the answer to the next
	// exchange, where its origin no longer matches.
	DupProb float64
	// CorruptProb flips one random bit of the reply's wire encoding.
	CorruptProb float64
	// KoDProb replaces the reply with a RATE kiss-of-death echoing
	// the request's origin, as a rate-limiting server would send.
	KoDProb float64
	// Delay (plus uniform Jitter) is added before each exchange.
	Delay  time.Duration
	Jitter time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	dropped int
	stale   *ntppkt.Packet
	stats   FaultStats
}

// FaultStats counts what the transport injected.
type FaultStats struct {
	Exchanges  int // total Exchange calls
	Dropped    int // exchanges lost (DropFirst + DropProb)
	Duplicated int // stale replies replayed
	Corrupted  int // replies with a flipped bit
	KoDs       int // kiss-of-death replies synthesized
}

// Stats returns a copy of the injection counters.
func (f *FaultTransport) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Exchange implements exchange.Transport.
func (f *FaultTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	f.mu.Lock()
	if f.rng == nil {
		f.rng = rand.New(rand.NewSource(f.Seed))
	}
	f.stats.Exchanges++
	delay := f.Delay
	if f.Jitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(f.Jitter)))
	}
	drop := false
	if f.dropped < f.DropFirst {
		f.dropped++
		drop = true
	} else if f.DropProb > 0 && f.rng.Float64() < f.DropProb {
		drop = true
	}
	kod := !drop && f.KoDProb > 0 && f.rng.Float64() < f.KoDProb
	var stale *ntppkt.Packet
	if !drop && !kod && f.stale != nil {
		stale, f.stale = f.stale, nil
		f.stats.Duplicated++
	}
	dup := f.DupProb > 0 && f.rng.Float64() < f.DupProb
	corrupt := f.CorruptProb > 0 && f.rng.Float64() < f.CorruptProb
	corruptBit := f.rng.Intn(ntppkt.HeaderLen * 8)
	if drop {
		f.stats.Dropped++
	}
	if kod {
		f.stats.KoDs++
	}
	f.mu.Unlock()

	if delay > 0 {
		f.sleep(delay)
	}
	clk := f.Clock
	if clk == nil {
		clk = clock.System{}
	}
	if drop {
		return nil, time.Time{}, ErrTimeout
	}
	if kod {
		resp := &ntppkt.Packet{
			Leap: ntppkt.LeapNotSync, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
			Origin: req.Transmit,
		}
		return resp, clk.Now(), nil
	}
	if stale != nil {
		// The duplicated datagram beat the genuine reply; its origin
		// echoes an earlier request, which validation must reject.
		return stale, clk.Now(), nil
	}
	resp, t4, err := f.Inner.Exchange(server, req)
	if err != nil {
		return resp, t4, err
	}
	if dup {
		cp := *resp
		f.mu.Lock()
		f.stale = &cp
		f.mu.Unlock()
	}
	if corrupt {
		f.mu.Lock()
		f.stats.Corrupted++
		f.mu.Unlock()
		resp = corruptPacket(resp, corruptBit)
	}
	return resp, t4, err
}

func (f *FaultTransport) sleep(d time.Duration) {
	if f.Sleeper != nil {
		f.Sleeper.Sleep(d)
		return
	}
	time.Sleep(d)
}

// ServerFaults injects server-side worker faults through
// Server.FaultHook for deterministic self-healing tests, the
// server-side sibling of FaultTransport: a scripted panic on the nth
// handled datagram of a shard exercises worker respawn, and a wedge
// blocks every worker of a shard mid-handle until released,
// exercising the watchdog. Safe for concurrent use.
//
// A wedged shard must be Released before Server.Close, which waits
// for every worker to exit.
type ServerFaults struct {
	mu      sync.Mutex
	panicAt map[int]int
	wedged  map[int]chan struct{}
}

// NewServerFaults creates an empty injector; assign its Hook to
// Server.FaultHook before Listen.
func NewServerFaults() *ServerFaults {
	return &ServerFaults{panicAt: make(map[int]int), wedged: make(map[int]chan struct{})}
}

// PanicAfter arms shard to panic on its nth admitted datagram from
// now (n = 1 panics on the very next one). One-shot: the trap
// disarms when it fires.
func (f *ServerFaults) PanicAfter(shard, n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.panicAt[shard] = n
}

// Wedge blocks shard's workers at the hook until Release: each worker
// that picks up a datagram for that shard hangs mid-handle, holding
// its in-flight count — the fault signature the watchdog detects.
func (f *ServerFaults) Wedge(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.wedged[shard]; !ok {
		f.wedged[shard] = make(chan struct{})
	}
}

// Release unblocks every worker wedged on shard.
func (f *ServerFaults) Release(shard int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch, ok := f.wedged[shard]; ok {
		close(ch)
		delete(f.wedged, shard)
	}
}

// Hook is the Server.FaultHook implementation.
func (f *ServerFaults) Hook(shard int) {
	f.mu.Lock()
	ch := f.wedged[shard]
	doPanic := false
	if n, ok := f.panicAt[shard]; ok {
		n--
		if n <= 0 {
			delete(f.panicAt, shard)
			doPanic = true
		} else {
			f.panicAt[shard] = n
		}
	}
	f.mu.Unlock()
	if ch != nil {
		<-ch
	}
	if doPanic {
		panic("ntpnet: injected worker fault")
	}
}

// corruptPacket flips the bit-th bit of p's wire encoding and decodes
// the result, modelling in-flight corruption that still passes the
// UDP checksum (or traverses a path without one).
func corruptPacket(p *ntppkt.Packet, bit int) *ntppkt.Packet {
	wire := p.Encode(make([]byte, 0, ntppkt.HeaderLen))
	wire[bit/8] ^= 1 << (bit % 8)
	var out ntppkt.Packet
	out.DecodeInto(wire) // 48 bytes always decode
	return &out
}
