// Package ntpnet provides the real-UDP deployments of the protocol
// stack: an NTP/SNTP server answering mode-3 queries from any
// clock.Clock, and a client transport satisfying exchange.Transport,
// so the same SNTP/NTP/MNTP client code that runs in simulation runs
// against real sockets.
package ntpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// Server is a UDP NTP server. It answers client (mode 3) requests with
// timestamps from its clock; malformed packets are dropped. An
// optional per-client rate limit answers abusive clients with a
// RATE kiss-of-death packet, as pool servers do.
type Server struct {
	Clock   clock.Clock
	Stratum uint8
	RefID   [4]byte
	// RateLimit, if positive, is the maximum requests per client
	// address per RateWindow before RATE KoD responses are sent.
	RateLimit  int
	RateWindow time.Duration

	conn *net.UDPConn
	wg   sync.WaitGroup

	mu      sync.Mutex
	served  int
	limited int
	buckets map[string]*rateBucket
}

type rateBucket struct {
	windowStart time.Time
	count       int
}

// NewServer creates a server with the given clock and stratum.
func NewServer(clk clock.Clock, stratum uint8) *Server {
	return &Server{Clock: clk, Stratum: stratum, RefID: [4]byte{'L', 'O', 'C', 'L'}}
}

// Listen binds the server to addr (e.g. "127.0.0.1:0") and starts the
// serve loop. It returns the bound address.
func (s *Server) Listen(addr string) (*net.UDPAddr, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: resolve %q: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, fmt.Errorf("ntpnet: listen %q: %w", addr, err)
	}
	s.conn = conn
	s.wg.Add(1)
	go s.serve()
	return conn.LocalAddr().(*net.UDPAddr), nil
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	if s.conn == nil {
		return nil
	}
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

// Served returns the number of requests answered.
func (s *Server) Served() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

// RateLimited returns the number of requests answered with RATE KoD.
func (s *Server) RateLimited() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limited
}

// overLimit reports whether the client address has exceeded the rate
// limit, updating its bucket.
func (s *Server) overLimit(addr string, now time.Time) bool {
	if s.RateLimit <= 0 {
		return false
	}
	window := s.RateWindow
	if window == 0 {
		window = time.Minute
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.buckets == nil {
		s.buckets = make(map[string]*rateBucket)
	}
	b := s.buckets[addr]
	if b == nil || now.Sub(b.windowStart) >= window {
		s.buckets[addr] = &rateBucket{windowStart: now, count: 1}
		return false
	}
	b.count++
	return b.count > s.RateLimit
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 512)
	out := make([]byte, 0, ntppkt.HeaderLen)
	var req ntppkt.Packet
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		recv := s.Clock.Now()
		if err := req.DecodeInto(buf[:n]); err != nil {
			continue
		}
		if req.Mode != ntppkt.ModeClient {
			continue
		}
		version := req.Version
		if version < ntppkt.Version3 || version > ntppkt.Version4 {
			version = ntppkt.Version4
		}
		if s.overLimit(peer.IP.String(), time.Now()) {
			kod := ntppkt.Packet{
				Leap: ntppkt.LeapNotSync, Version: version, Mode: ntppkt.ModeServer,
				Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
				Origin: req.Transmit,
			}
			out = kod.Encode(out[:0])
			s.conn.WriteToUDP(out, peer)
			s.mu.Lock()
			s.limited++
			s.mu.Unlock()
			continue
		}
		resp := ntppkt.Packet{
			Leap:      ntppkt.LeapNone,
			Version:   version,
			Mode:      ntppkt.ModeServer,
			Stratum:   s.Stratum,
			Poll:      req.Poll,
			Precision: -20,
			RefID:     s.RefID,
			RefTime:   ntptime.FromTime(recv.Add(-10 * time.Second)),
			Origin:    req.Transmit,
			Receive:   ntptime.FromTime(recv),
			Transmit:  ntptime.FromTime(s.Clock.Now()),
		}
		out = resp.Encode(out[:0])
		if _, err := s.conn.WriteToUDP(out, peer); err != nil {
			continue
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
	}
}

// Client is a UDP client transport implementing exchange.Transport.
// Each Exchange opens a fresh ephemeral socket, as one-shot SNTP
// clients do.
type Client struct {
	// Timeout bounds the wait for a reply (default 5 s).
	Timeout time.Duration
	// Clock stamps T4 at reply reception (default the system clock).
	Clock clock.Clock
}

// ErrTimeout is returned when no reply arrives within the timeout.
var ErrTimeout = errors.New("ntpnet: request timed out")

// Exchange implements exchange.Transport over UDP.
func (c *Client) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	clk := c.Clock
	if clk == nil {
		clk = clock.System{}
	}

	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("ntpnet: dial %q: %w", server, err)
	}
	defer conn.Close()

	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, time.Time{}, err
	}
	wire := req.Encode(make([]byte, 0, ntppkt.HeaderLen))
	if _, err := conn.Write(wire); err != nil {
		return nil, time.Time{}, fmt.Errorf("ntpnet: send: %w", err)
	}

	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, time.Time{}, ErrTimeout
			}
			return nil, time.Time{}, fmt.Errorf("ntpnet: recv: %w", err)
		}
		t4 := clk.Now()
		resp, err := ntppkt.Decode(buf[:n])
		if err != nil {
			continue // runt datagram from someone else; keep waiting
		}
		return resp, t4, nil
	}
}
