// Package ntpnet provides the real-UDP deployments of the protocol
// stack: an NTP/SNTP server answering mode-3 queries from any
// clock.Clock, and a client transport satisfying exchange.Transport,
// so the same SNTP/NTP/MNTP client code that runs in simulation runs
// against real sockets.
//
// The server side is built for production traffic: the listen path
// is sharded across SO_REUSEPORT sockets (single-socket fallback on
// platforms without it), each shard running a configurable pool of
// serve goroutines and counting into shard-local Metrics that
// Server.Snapshot merges; per-client rate limiting is tracked in a
// bounded table with window-stamped eviction, and every outcome
// (served, rate-limited, dropped, malformed, write errors) plus a
// request-handling latency histogram is counted. The client side validates replies in the
// receive loop — a stray, duplicated or spoofed datagram whose origin
// does not echo the request is skipped, not treated as the answer.
// FaultTransport wraps any transport with seeded loss, delay,
// duplication, corruption and kiss-of-death injection for robustness
// testing.
package ntpnet

import (
	"errors"
	"fmt"
	"net"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntppkt"
)

// Client is a UDP client transport implementing exchange.Transport.
// Each Exchange opens a fresh ephemeral socket, as one-shot SNTP
// clients do.
type Client struct {
	// Timeout bounds the wait for a reply (default 5 s).
	Timeout time.Duration
	// Clock stamps T4 at reply reception (default the system clock).
	Clock clock.Clock
}

// ErrTimeout is returned when no reply arrives within the timeout.
var ErrTimeout = errors.New("ntpnet: request timed out")

// Exchange implements exchange.Transport over UDP. The receive loop
// validates each datagram before accepting it as the reply: runts,
// non-server modes and packets whose origin timestamp does not echo
// req.Transmit (stray, duplicated or spoofed traffic) are skipped and
// the wait continues until the genuine reply or the deadline. A
// kiss-of-death reply echoing the origin is returned as-is — the
// caller's ValidateServerReply turns it into ErrKissOfDeath.
func (c *Client) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 5 * time.Second
	}
	clk := c.Clock
	if clk == nil {
		clk = clock.System{}
	}

	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, time.Time{}, fmt.Errorf("ntpnet: dial %q: %w", server, err)
	}
	defer conn.Close()

	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, time.Time{}, err
	}
	wire := req.Encode(make([]byte, 0, ntppkt.HeaderLen))
	if _, err := conn.Write(wire); err != nil {
		return nil, time.Time{}, fmt.Errorf("ntpnet: send: %w", err)
	}

	// Large enough for the biggest NTS reply (authenticator carrying
	// a full cookie re-supply), not just the 48-byte header.
	buf := make([]byte, 2048)
	var resp ntppkt.Packet
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				return nil, time.Time{}, ErrTimeout
			}
			return nil, time.Time{}, fmt.Errorf("ntpnet: recv: %w", err)
		}
		t4 := clk.Now()
		if err := resp.DecodeInto(buf[:n]); err != nil {
			continue // runt datagram from someone else; keep waiting
		}
		if resp.Mode != ntppkt.ModeServer && resp.Mode != ntppkt.ModeBroadcast {
			continue // not a reply at all
		}
		if resp.Origin != req.Transmit {
			continue // stray/spoofed reply to someone else's request
		}
		out := resp
		return &out, t4, nil
	}
}
