//go:build !linux

package ntpnet

import (
	"errors"
	"syscall"
)

// reusePortAvailable: without a port-sharing setsockopt the sharded
// listen path cannot bind several sockets to one address; Listen falls
// back to a single socket shared by every shard's worker pool.
const reusePortAvailable = false

var errReusePortUnsupported = errors.New("ntpnet: SO_REUSEPORT not supported on this platform")

func reusePortControl(network, address string, c syscall.RawConn) error {
	return errReusePortUnsupported
}
