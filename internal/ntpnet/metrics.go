package ntpnet

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"mntp/internal/overload"
)

// numLatencyBuckets is the bucket count of the latency histogram:
// len(latencyBounds) bounded buckets plus the overflow.
const numLatencyBuckets = len(latencyBounds) + 1

// latencyBounds are the upper bounds of the request-latency histogram
// buckets (receive timestamp to reply written). The last bucket is
// unbounded.
var latencyBounds = [...]time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
}

// Metrics counts server outcomes. All counters are atomic: the serve
// pool updates them concurrently without a lock, and readers may
// snapshot them at any time.
type Metrics struct {
	// Served counts valid client requests answered with time.
	Served atomic.Uint64
	// Limited counts requests answered with a RATE kiss-of-death.
	Limited atomic.Uint64
	// Dropped counts decodable packets ignored for not being mode-3
	// client requests.
	Dropped atomic.Uint64
	// Malformed counts datagrams that failed to decode.
	Malformed atomic.Uint64
	// WriteErrors counts replies the socket failed to send.
	WriteErrors atomic.Uint64
	// Shed counts new-flow requests refused with RATE by the
	// admission controller while Degraded.
	Shed atomic.Uint64
	// ShedDropped counts datagrams dropped before parsing while
	// Overloaded.
	ShedDropped atomic.Uint64
	// Panics counts worker goroutines that died to a handler panic
	// and were respawned.
	Panics atomic.Uint64
	// NTSServed counts authenticated NTS requests answered with a
	// protected reply (a subset of Served).
	NTSServed atomic.Uint64
	// NTSNaks counts NTS requests whose verification failed and were
	// answered with an NTS NAK kiss-of-death.
	NTSNaks atomic.Uint64

	latency [numLatencyBuckets]atomic.Uint64
}

// observeLatency records one request-handling latency.
func (m *Metrics) observeLatency(d time.Duration) {
	for i, b := range latencyBounds {
		if d <= b {
			m.latency[i].Add(1)
			return
		}
	}
	m.latency[len(latencyBounds)].Add(1)
}

// Snapshot is a consistent-enough copy of the counters for reporting
// (individual counters are read atomically; the set is not a single
// atomic transaction, which is fine for monitoring).
type Snapshot struct {
	Served, Limited, Dropped, Malformed, WriteErrors uint64
	// Shed / ShedDropped / Panics mirror the Metrics counters of the
	// same names. Restarts counts watchdog-initiated worker-pool
	// restarts (a server-level counter, set only on the aggregate
	// snapshot). Health is the admission controller's state at
	// snapshot time (Healthy when overload control is off or on
	// per-shard snapshots).
	Shed, ShedDropped, Panics, Restarts uint64
	// NTSServed / NTSNaks mirror the Metrics counters: authenticated
	// requests answered, and NTS verification failures NAKed.
	NTSServed, NTSNaks uint64
	Health             overload.State
	// Latency holds the histogram counts; Latency[i] counts requests
	// handled within LatencyBounds()[i], the last entry the overflow.
	Latency [numLatencyBuckets]uint64
}

// LatencyBounds returns the histogram bucket upper bounds, matching
// Snapshot.Latency[:len(bounds)]; the final Latency entry counts
// requests slower than the last bound.
func LatencyBounds() []time.Duration {
	out := make([]time.Duration, len(latencyBounds))
	copy(out, latencyBounds[:])
	return out
}

// Merge adds o's counts into s. A sharded server keeps one Metrics
// per shard so the fast path never bounces a cache line between
// shards; Merge folds the shard-local views into the aggregate.
func (s *Snapshot) Merge(o Snapshot) {
	s.Served += o.Served
	s.Limited += o.Limited
	s.Dropped += o.Dropped
	s.Malformed += o.Malformed
	s.WriteErrors += o.WriteErrors
	s.Shed += o.Shed
	s.ShedDropped += o.ShedDropped
	s.Panics += o.Panics
	s.Restarts += o.Restarts
	s.NTSServed += o.NTSServed
	s.NTSNaks += o.NTSNaks
	if o.Health > s.Health {
		s.Health = o.Health // the merged view reports the worst state
	}
	for i := range s.Latency {
		s.Latency[i] += o.Latency[i]
	}
}

// Snapshot reads all counters.
func (m *Metrics) Snapshot() Snapshot {
	var s Snapshot
	s.Served = m.Served.Load()
	s.Limited = m.Limited.Load()
	s.Dropped = m.Dropped.Load()
	s.Malformed = m.Malformed.Load()
	s.WriteErrors = m.WriteErrors.Load()
	s.Shed = m.Shed.Load()
	s.ShedDropped = m.ShedDropped.Load()
	s.Panics = m.Panics.Load()
	s.NTSServed = m.NTSServed.Load()
	s.NTSNaks = m.NTSNaks.Load()
	for i := range m.latency {
		s.Latency[i] = m.latency[i].Load()
	}
	return s
}

// LatencyQuantile returns the histogram bucket bound at or above the
// q-th quantile (0 < q ≤ 1) of handled requests, and false when
// nothing has been observed. The overflow bucket reports the largest
// finite bound (the true value is "greater than" it).
func (s Snapshot) LatencyQuantile(q float64) (time.Duration, bool) {
	var total uint64
	for _, c := range s.Latency {
		total += c
	}
	if total == 0 {
		return 0, false
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range s.Latency {
		cum += c
		if cum >= target {
			if i < len(latencyBounds) {
				return latencyBounds[i], true
			}
			return latencyBounds[len(latencyBounds)-1], true
		}
	}
	return latencyBounds[len(latencyBounds)-1], true
}

// String renders a one-line summary for periodic logging.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "served=%d limited=%d shed=%d shed-dropped=%d dropped=%d malformed=%d write-errors=%d panics=%d restarts=%d health=%s",
		s.Served, s.Limited, s.Shed, s.ShedDropped, s.Dropped, s.Malformed,
		s.WriteErrors, s.Panics, s.Restarts, s.Health)
	if s.NTSServed > 0 || s.NTSNaks > 0 {
		fmt.Fprintf(&b, " nts-served=%d nts-naks=%d", s.NTSServed, s.NTSNaks)
	}
	if p50, ok := s.LatencyQuantile(0.50); ok {
		p99, _ := s.LatencyQuantile(0.99)
		fmt.Fprintf(&b, " latency p50≤%v p99≤%v", p50, p99)
	}
	return b.String()
}
