package ntpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/sntp"
)

func startServer(t *testing.T, clk clock.Clock) (*Server, string) {
	t.Helper()
	srv := NewServer(clk, 2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestLoopbackExchange(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	c := &Client{Timeout: 2 * time.Second}
	s, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Loopback to a same-clock server: offset within a few ms, delay
	// sub-second.
	if s.Offset < -5*time.Millisecond || s.Offset > 5*time.Millisecond {
		t.Errorf("loopback offset = %v", s.Offset)
	}
	if s.Delay < 0 || s.Delay > time.Second {
		t.Errorf("loopback delay = %v", s.Delay)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestOffsetClockServerMeasured(t *testing.T) {
	// A server clock 750 ms ahead must be measured as ~+750 ms.
	ahead := &clock.Fixed{Base: clock.System{}, Error: 750 * time.Millisecond}
	_, addr := startServer(t, ahead)
	c := &Client{Timeout: 2 * time.Second}
	s, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Offset - 750*time.Millisecond; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~750ms", s.Offset)
	}
}

func TestSNTPClientOverUDP(t *testing.T) {
	_, addr := startServer(t, clock.System{})
	cl := sntp.New(clock.System{}, &Client{Timeout: 2 * time.Second}, sntp.WallSleeper{},
		sntp.Config{Server: addr})
	s, err := cl.Query()
	if err != nil {
		t.Fatal(err)
	}
	if s.Offset < -5*time.Millisecond || s.Offset > 5*time.Millisecond {
		t.Errorf("offset = %v", s.Offset)
	}
}

func TestTimeoutAgainstDeadPort(t *testing.T) {
	c := &Client{Timeout: 200 * time.Millisecond}
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	_, _, err := c.Exchange("127.0.0.1:9", req) // discard port, nothing listening
	if err == nil {
		t.Fatal("expected error")
	}
	// Either a timeout or an ICMP-driven connection refused is
	// acceptable; both surface as errors.
	if !errors.Is(err, ErrTimeout) && err == nil {
		t.Errorf("err = %v", err)
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	// Send garbage, then a valid request: the server must survive and
	// answer the valid one.
	c := &Client{Timeout: 2 * time.Second}
	d, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true); err != nil {
		t.Fatalf("valid request after garbage failed: %v", err)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d, want 1 (garbage dropped)", srv.Served())
	}
}

func TestServerIgnoresNonClientModes(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	req.Mode = ntppkt.ModeServer // not a client request
	c := &Client{Timeout: 300 * time.Millisecond}
	if _, _, err := c.Exchange(addr, req); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout (request ignored)", err)
	}
	if srv.Served() != 0 {
		t.Errorf("served = %d, want 0", srv.Served())
	}
}

func TestCloseIdempotentAndUnblocks(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// Second close on a closed server: no panic, error acceptable.
	srv.Close()
}

func TestRateLimitSendsKoD(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.RateLimit = 3
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Timeout: 2 * time.Second}
	for i := 0; i < 3; i++ {
		if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
			t.Fatalf("request %d within limit failed: %v", i, err)
		}
	}
	// Fourth request in the window: RATE kiss-of-death.
	_, err = exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true)
	if !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("err = %v, want kiss-of-death", err)
	}
	if srv.RateLimited() != 1 {
		t.Errorf("rate-limited = %d", srv.RateLimited())
	}
}

func TestSNTPClientDoesNotRetryKoD(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.RateLimit = 1
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := sntp.New(clock.System{}, &Client{Timeout: 2 * time.Second}, sntp.WallSleeper{},
		sntp.Config{Server: addr.String(), Retries: 5, RetryWait: time.Millisecond})
	if _, err := cl.Query(); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, err := cl.Query(); !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("second query err = %v, want KoD", err)
	}
	// Retries=5 but KoD must abort: exactly 1 served + limited count,
	// not 6 more requests hammering the server.
	if total := srv.Served() + srv.RateLimited(); total > 3 {
		t.Errorf("server saw %d requests; client retried into the rate limit", total)
	}
}

// fakeServer runs a scripted one-shot UDP endpoint: it reads one
// request and hands it to reply to send whatever datagrams it wants.
func fakeServer(t *testing.T, reply func(pc *net.UDPConn, peer *net.UDPAddr, req ntppkt.Packet)) string {
	t.Helper()
	pc, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { pc.Close() })
	go func() {
		buf := make([]byte, 512)
		n, peer, err := pc.ReadFromUDP(buf)
		if err != nil {
			return
		}
		var req ntppkt.Packet
		if err := req.DecodeInto(buf[:n]); err != nil {
			return
		}
		reply(pc, peer, req)
	}()
	return pc.LocalAddr().String()
}

func TestExchangeSkipsSpoofedAndStrayReplies(t *testing.T) {
	// The server sends two decodable non-answers before the genuine
	// reply: a mode-1 packet echoing the origin, and a mode-4 reply
	// whose origin does not echo the request (spoofed / someone
	// else's). The client's receive loop must skip both and accept
	// only the genuine reply; treating either as the answer fails the
	// whole exchange with ErrBogusOrigin or ErrBadMode.
	addr := fakeServer(t, func(pc *net.UDPConn, peer *net.UDPAddr, req ntppkt.Packet) {
		now := time.Now()
		stray := ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeSymActive,
			Stratum: 2, Origin: req.Transmit,
			Receive: ntptime.FromTime(now), Transmit: ntptime.FromTime(now),
		}
		pc.WriteToUDP(stray.Encode(nil), peer)
		spoof := ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 1, Origin: ntptime.FromTime(now.Add(time.Hour)), // wrong echo
			Receive:  ntptime.FromTime(now.Add(time.Hour)),
			Transmit: ntptime.FromTime(now.Add(time.Hour)),
		}
		pc.WriteToUDP(spoof.Encode(nil), peer)
		genuine := ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 2, Origin: req.Transmit,
			Receive: ntptime.FromTime(now), Transmit: ntptime.FromTime(now),
		}
		pc.WriteToUDP(genuine.Encode(nil), peer)
	})

	c := &Client{Timeout: 2 * time.Second}
	s, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true)
	if err != nil {
		t.Fatalf("exchange failed on stray traffic: %v", err)
	}
	if s.Offset < -time.Second || s.Offset > time.Second {
		t.Errorf("offset = %v: accepted the spoofed reply?", s.Offset)
	}
}

// manualClock is a thread-safe settable clock (the serve pool reads
// it concurrently with the test advancing it).
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func (m *manualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

func (m *manualClock) Advance(d time.Duration) {
	m.mu.Lock()
	m.t = m.t.Add(d)
	m.mu.Unlock()
}

func TestRateLimiterFollowsServerClock(t *testing.T) {
	// The limiter must run on the server's clock, like every protocol
	// timestamp: when the clock jumps past the window, the bucket is
	// expired even though almost no wall time passed. A limiter
	// stamped with time.Now() keeps limiting here.
	mc := &manualClock{t: time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)}
	srv := NewServer(mc, 2)
	srv.RateLimit = 1
	srv.RateWindow = time.Minute
	srv.Workers = 1
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Timeout: 2 * time.Second}
	if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
		t.Fatalf("first request: %v", err)
	}
	if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("second request in window: err = %v, want KoD", err)
	}
	mc.Advance(2 * time.Minute) // server clock leaves the window
	if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
		t.Fatalf("request after server-clock window expiry: %v (limiter not on server clock?)", err)
	}
}

func TestRateTableBoundedUnderManyClients(t *testing.T) {
	const maxEntries = 1024
	rl := newRateLimiter(10, time.Minute, maxEntries)
	now := time.Unix(1479081600, 0)
	var key addrKey
	for i := 0; i < 10000; i++ {
		key[12] = byte(i >> 16)
		key[13] = byte(i >> 8)
		key[14] = byte(i)
		rl.over(key, now.Add(time.Duration(i)*time.Millisecond))
		if s := rl.size(); s > maxEntries {
			t.Fatalf("table grew to %d entries (cap %d) after %d clients", s, maxEntries, i+1)
		}
	}
	if s := rl.size(); s != maxEntries {
		t.Errorf("table size = %d, want %d (full)", s, maxEntries)
	}
	// A new client past the window expires every stale bucket at once.
	key[11] = 0xfe
	rl.over(key, now.Add(time.Hour))
	if s := rl.size(); s > 2 {
		t.Errorf("expired buckets survived eviction: size = %d", s)
	}
}

func TestServePoolConcurrentClients(t *testing.T) {
	// Many concurrent clients against a multi-worker server: every
	// exchange must complete with its own (sane) reply — no lost or
	// misattributed responses.
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 8
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const clients, perClient = 24, 20
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		go func() {
			c := &Client{Timeout: 5 * time.Second}
			for j := 0; j < perClient; j++ {
				s, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true)
				if err != nil {
					errs <- err
					return
				}
				if s.Offset < -time.Second || s.Offset > time.Second {
					errs <- fmt.Errorf("misattributed reply: offset %v", s.Offset)
					return
				}
			}
			errs <- nil
		}()
	}
	for i := 0; i < clients; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if got := srv.Served(); got != clients*perClient {
		t.Errorf("served = %d, want %d", got, clients*perClient)
	}
}

func TestServerMetricsCounters(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	d, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Write(make([]byte, 10)) // malformed (runt)
	nonClient := ntppkt.Packet{Version: ntppkt.Version4, Mode: ntppkt.ModeServer}
	d.Write(nonClient.Encode(nil)) // dropped (not mode 3)

	c := &Client{Timeout: 2 * time.Second}
	if _, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	var snap Snapshot
	for time.Now().Before(deadline) {
		snap = srv.Snapshot()
		if snap.Malformed >= 1 && snap.Dropped >= 1 && snap.Served >= 1 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if snap.Malformed != 1 || snap.Dropped != 1 || snap.Served != 1 {
		t.Fatalf("snapshot = %+v, want malformed=1 dropped=1 served=1", snap)
	}
	var latTotal uint64
	for _, c := range snap.Latency {
		latTotal += c
	}
	if latTotal != 1 {
		t.Errorf("latency histogram total = %d, want 1", latTotal)
	}
	if q, ok := snap.LatencyQuantile(0.99); !ok || q <= 0 {
		t.Errorf("LatencyQuantile = %v, %v", q, ok)
	}
	if s := snap.String(); s == "" {
		t.Error("empty snapshot string")
	}
}

func BenchmarkServePool(b *testing.B) {
	srv := NewServer(clock.System{}, 2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	b.RunParallel(func(pb *testing.PB) {
		c := &Client{Timeout: 5 * time.Second}
		for pb.Next() {
			if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
