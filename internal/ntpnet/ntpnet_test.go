package ntpnet

import (
	"errors"
	"net"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/sntp"
)

func startServer(t *testing.T, clk clock.Clock) (*Server, string) {
	t.Helper()
	srv := NewServer(clk, 2)
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr.String()
}

func TestLoopbackExchange(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	c := &Client{Timeout: 2 * time.Second}
	s, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	// Loopback to a same-clock server: offset within a few ms, delay
	// sub-second.
	if s.Offset < -5*time.Millisecond || s.Offset > 5*time.Millisecond {
		t.Errorf("loopback offset = %v", s.Offset)
	}
	if s.Delay < 0 || s.Delay > time.Second {
		t.Errorf("loopback delay = %v", s.Delay)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d", srv.Served())
	}
}

func TestOffsetClockServerMeasured(t *testing.T) {
	// A server clock 750 ms ahead must be measured as ~+750 ms.
	ahead := &clock.Fixed{Base: clock.System{}, Error: 750 * time.Millisecond}
	_, addr := startServer(t, ahead)
	c := &Client{Timeout: 2 * time.Second}
	s, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true)
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Offset - 750*time.Millisecond; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~750ms", s.Offset)
	}
}

func TestSNTPClientOverUDP(t *testing.T) {
	_, addr := startServer(t, clock.System{})
	cl := sntp.New(clock.System{}, &Client{Timeout: 2 * time.Second}, sntp.WallSleeper{},
		sntp.Config{Server: addr})
	s, err := cl.Query()
	if err != nil {
		t.Fatal(err)
	}
	if s.Offset < -5*time.Millisecond || s.Offset > 5*time.Millisecond {
		t.Errorf("offset = %v", s.Offset)
	}
}

func TestTimeoutAgainstDeadPort(t *testing.T) {
	c := &Client{Timeout: 200 * time.Millisecond}
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	_, _, err := c.Exchange("127.0.0.1:9", req) // discard port, nothing listening
	if err == nil {
		t.Fatal("expected error")
	}
	// Either a timeout or an ICMP-driven connection refused is
	// acceptable; both surface as errors.
	if !errors.Is(err, ErrTimeout) && err == nil {
		t.Errorf("err = %v", err)
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	// Send garbage, then a valid request: the server must survive and
	// answer the valid one.
	c := &Client{Timeout: 2 * time.Second}
	d, err := net.Dial("udp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(make([]byte, 10)); err != nil {
		t.Fatal(err)
	}
	d.Close()
	if _, err := exchange.Measure(clock.System{}, c, addr, ntppkt.Version4, true); err != nil {
		t.Fatalf("valid request after garbage failed: %v", err)
	}
	if srv.Served() != 1 {
		t.Errorf("served = %d, want 1 (garbage dropped)", srv.Served())
	}
}

func TestServerIgnoresNonClientModes(t *testing.T) {
	srv, addr := startServer(t, clock.System{})
	req := ntppkt.NewSNTPClient(ntppkt.Version4, 0)
	req.Mode = ntppkt.ModeServer // not a client request
	c := &Client{Timeout: 300 * time.Millisecond}
	if _, _, err := c.Exchange(addr, req); !errors.Is(err, ErrTimeout) {
		t.Errorf("err = %v, want timeout (request ignored)", err)
	}
	if srv.Served() != 0 {
		t.Errorf("served = %d, want 0", srv.Served())
	}
}

func TestCloseIdempotentAndUnblocks(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	// Second close on a closed server: no panic, error acceptable.
	srv.Close()
}

func TestRateLimitSendsKoD(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.RateLimit = 3
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := &Client{Timeout: 2 * time.Second}
	for i := 0; i < 3; i++ {
		if _, err := exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true); err != nil {
			t.Fatalf("request %d within limit failed: %v", i, err)
		}
	}
	// Fourth request in the window: RATE kiss-of-death.
	_, err = exchange.Measure(clock.System{}, c, addr.String(), ntppkt.Version4, true)
	if !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("err = %v, want kiss-of-death", err)
	}
	if srv.RateLimited() != 1 {
		t.Errorf("rate-limited = %d", srv.RateLimited())
	}
}

func TestSNTPClientDoesNotRetryKoD(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.RateLimit = 1
	srv.RateWindow = time.Minute
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl := sntp.New(clock.System{}, &Client{Timeout: 2 * time.Second}, sntp.WallSleeper{},
		sntp.Config{Server: addr.String(), Retries: 5, RetryWait: time.Millisecond})
	if _, err := cl.Query(); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, err := cl.Query(); !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("second query err = %v, want KoD", err)
	}
	// Retries=5 but KoD must abort: exactly 1 served + limited count,
	// not 6 more requests hammering the server.
	if total := srv.Served() + srv.RateLimited(); total > 3 {
		t.Errorf("server saw %d requests; client retried into the rate limit", total)
	}
}
