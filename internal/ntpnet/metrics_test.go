package ntpnet

import (
	"testing"
	"time"
)

func TestLatencyQuantileEdgeCases(t *testing.T) {
	bounds := LatencyBounds()

	// Empty histogram: no quantile.
	var empty Snapshot
	if q, ok := empty.LatencyQuantile(0.5); ok || q != 0 {
		t.Errorf("empty histogram: got (%v, %v), want (0, false)", q, ok)
	}

	// q=0 degenerates to the first non-empty bucket (target is
	// clamped to at least one observation).
	var s Snapshot
	s.Latency[3] = 10
	if q, ok := s.LatencyQuantile(0); !ok || q != bounds[3] {
		t.Errorf("q=0: got (%v, %v), want (%v, true)", q, ok, bounds[3])
	}

	// q=1 lands in the highest non-empty bucket.
	s.Latency[5] = 1
	if q, ok := s.LatencyQuantile(1); !ok || q != bounds[5] {
		t.Errorf("q=1: got (%v, %v), want (%v, true)", q, ok, bounds[5])
	}

	// All mass in the overflow bucket: the histogram can only say
	// "slower than the largest finite bound", and reports that bound.
	var over Snapshot
	over.Latency[len(over.Latency)-1] = 7
	want := bounds[len(bounds)-1]
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got, ok := over.LatencyQuantile(q); !ok || got != want {
			t.Errorf("overflow-only q=%v: got (%v, %v), want (%v, true)", q, got, ok, want)
		}
	}
}

func TestObserveLatencyOverflowBucket(t *testing.T) {
	var m Metrics
	m.observeLatency(time.Hour) // beyond every finite bound
	m.observeLatency(time.Microsecond)
	s := m.Snapshot()
	if s.Latency[len(s.Latency)-1] != 1 {
		t.Errorf("overflow bucket = %d, want 1", s.Latency[len(s.Latency)-1])
	}
	if s.Latency[0] != 1 {
		t.Errorf("first bucket = %d, want 1", s.Latency[0])
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Metrics
	a.Served.Store(3)
	a.Limited.Store(1)
	a.observeLatency(10 * time.Microsecond)
	a.observeLatency(time.Second) // overflow
	b.Served.Store(5)
	b.Malformed.Store(2)
	b.WriteErrors.Store(4)
	b.Dropped.Store(6)
	b.observeLatency(10 * time.Microsecond)

	m := a.Snapshot()
	m.Merge(b.Snapshot())
	if m.Served != 8 || m.Limited != 1 || m.Malformed != 2 || m.WriteErrors != 4 || m.Dropped != 6 {
		t.Errorf("merged counters wrong: %+v", m)
	}
	if m.Latency[0] != 2 {
		t.Errorf("merged first bucket = %d, want 2", m.Latency[0])
	}
	if m.Latency[len(m.Latency)-1] != 1 {
		t.Errorf("merged overflow bucket = %d, want 1", m.Latency[len(m.Latency)-1])
	}
	// Quantiles over the merged histogram see all shards' mass.
	if q, ok := m.LatencyQuantile(0.5); !ok || q != LatencyBounds()[0] {
		t.Errorf("merged p50 = (%v, %v)", q, ok)
	}
}
