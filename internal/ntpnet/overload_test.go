package ntpnet

import (
	"net"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/loadgen"
	"mntp/internal/overload"
)

// degradedConfig is tuned so any measurable sojourn (target 1ns)
// sustained for 1ms enters Degraded, the Overloaded threshold is
// unreachably high, recovery never fires, and every shed coin toss
// loses (ShedMin 1) — making the Degraded policy deterministic.
func degradedConfig() *overload.Config {
	return &overload.Config{
		Target:           1,
		Interval:         time.Millisecond,
		RecoveryInterval: time.Hour,
		OverloadFactor:   1e9, // Overloaded threshold ~1s: unreachable
		ShedMin:          1,
		Alpha:            1,
		TablePressure:    2, // occupancy floor off
	}
}

// TestOverloadDegradedShedsNewFlowsKeepsEstablished pins the Degraded
// policy: flows already holding rate-limit state keep being answered,
// new flows are told RATE — explicitly, not by silent drop — and
// never enter the table.
func TestOverloadDegradedShedsNewFlowsKeepsEstablished(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 2
	srv.RateLimit = 100000
	srv.RateWindow = time.Minute
	srv.WatchdogInterval = -1 // no Evaluate: state moves on Observe only
	srv.Overload = degradedConfig()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Client B needs a source address distinct from A's: established-ness
	// is keyed by IP, and both would otherwise share 127.0.0.1.
	connB, err := net.DialUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 2)}, addr)
	if err != nil {
		t.Skipf("cannot bind 127.0.0.2 (needed for a second client IP): %v", err)
	}
	defer connB.Close()

	connA, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer connA.Close()

	// A talks until the sampled sojourn EWMA drives the state to
	// Degraded; A is in the rate-limit table from its first request.
	deadline := time.Now().Add(3 * time.Second)
	for srv.Health() != overload.Degraded {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached Degraded (health %v)", srv.Health())
		}
		sendRequest(t, connA)
		readReply(t, connA, 200*time.Millisecond)
	}

	// Established flow: still answered with time.
	for i := 0; i < 5; i++ {
		sendRequest(t, connA)
		p, ok := readReply(t, connA, time.Second)
		if !ok {
			t.Fatalf("established client request %d: no reply while Degraded", i)
		}
		if code, kod := p.KissCode(); kod {
			t.Fatalf("established client request %d shed with %q while Degraded", i, code)
		}
	}

	// New flow: every request shed with a RATE kiss (ShedMin 1).
	for i := 0; i < 10; i++ {
		sendRequest(t, connB)
		p, ok := readReply(t, connB, time.Second)
		if !ok {
			t.Fatalf("new-flow request %d: no reply — sheds must be explicit, not drops", i)
		}
		code, kod := p.KissCode()
		if !kod || code != "RATE" {
			t.Fatalf("new-flow request %d: got mode=%d stratum=%d code=%q, want RATE KoD", i, p.Mode, p.Stratum, code)
		}
	}

	snap := srv.Snapshot()
	if snap.Shed < 10 {
		t.Errorf("Shed = %d, want >= 10", snap.Shed)
	}
	if snap.Health != overload.Degraded {
		t.Errorf("snapshot health = %v, want degraded", snap.Health)
	}
}

// TestOverloadOverloadedEarlyDropsWithProbes pins the Overloaded
// policy: datagrams are dropped before parsing except the 1-in-N
// probes that keep sojourn samples (and recovery) possible.
func TestOverloadOverloadedEarlyDropsWithProbes(t *testing.T) {
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 2
	srv.WatchdogInterval = -1
	srv.Overload = &overload.Config{
		Target:           1,
		Interval:         time.Millisecond,
		RecoveryInterval: time.Hour,
		OverloadFactor:   1.01, // overload threshold == target: any sojourn
		ProbeEvery:       4,
		Alpha:            1,
		TablePressure:    2,
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	deadline := time.Now().Add(3 * time.Second)
	for srv.Health() != overload.Overloaded {
		if time.Now().After(deadline) {
			t.Fatalf("server never reached Overloaded (health %v)", srv.Health())
		}
		sendRequest(t, conn)
		readReply(t, conn, 100*time.Millisecond)
	}

	const burst = 32
	for i := 0; i < burst; i++ {
		sendRequest(t, conn)
	}
	answered := 0
	for {
		p, ok := readReply(t, conn, 300*time.Millisecond)
		if !ok {
			break
		}
		if _, kod := p.KissCode(); kod {
			t.Fatalf("probe reply is a KoD: probes must be served, drops silent")
		}
		answered++
	}
	if answered == 0 {
		t.Error("no probe admitted in burst: recovery would be impossible")
	}
	if answered >= burst {
		t.Errorf("all %d burst requests answered while Overloaded", burst)
	}
	if snap := srv.Snapshot(); snap.ShedDropped == 0 {
		t.Error("ShedDropped = 0, want early drops while Overloaded")
	}
	t.Logf("burst=%d answered=%d shed-dropped=%d", burst, answered, srv.Snapshot().ShedDropped)
}

// TestListenRequireShardsOccupiedPortFailsCleanly: a strict
// multi-shard listen on a port someone else holds must fail — not
// fall back to fewer sockets — and a strict listen on a free port
// must bind the full group.
func TestListenRequireShardsOccupiedPortFailsCleanly(t *testing.T) {
	// Occupy a port with a plain (non-REUSEPORT) socket: the group
	// bind cannot join it on any platform.
	plain, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()

	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.RequireShards = true
	if _, err := srv.Listen(plain.LocalAddr().String()); err == nil {
		srv.Close()
		t.Fatal("strict 2-shard Listen on an occupied port succeeded")
	}
	if srv.NumShards() != 0 {
		t.Errorf("failed Listen left %d shards", srv.NumShards())
	}

	srv2 := NewServer(clock.System{}, 2)
	srv2.Shards = 2
	srv2.RequireShards = true
	addr, err := srv2.Listen("127.0.0.1:0")
	if !ReusePortAvailable() {
		if err == nil {
			srv2.Close()
			t.Fatal("strict 2-shard Listen succeeded without SO_REUSEPORT support")
		}
		return
	}
	if err != nil {
		t.Fatalf("strict 2-shard Listen on a free port: %v", err)
	}
	defer srv2.Close()
	if got := srv2.NumShards(); got != 2 {
		t.Errorf("NumShards = %d, want 2", got)
	}
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sendRequest(t, conn)
	if _, ok := readReply(t, conn, time.Second); !ok {
		t.Error("strict-bound group did not serve")
	}
}

// TestOverloadAcceptanceStorm is the acceptance drill for the whole
// graceful-degradation path: offered load at ~3× a deterministic
// capacity (the fault hook charges ~1ms of service per admitted
// request, so capacity ≈ shards×workers×1000/s regardless of host
// speed), with a worker panic and a wedged shard injected mid-storm.
// The server must shed rather than queue (bounded answered p99, shed
// counters moving) and must keep answering through both faults.
func TestOverloadAcceptanceStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("storm test skipped in -short")
	}
	if !rxTimestampsAvailable {
		t.Skip("kernel receive timestamps unavailable: sojourn cannot see socket-queue wait")
	}

	faults := NewServerFaults()
	srv := NewServer(clock.System{}, 2)
	srv.Shards = 2
	srv.Workers = 2
	srv.WatchdogInterval = 100 * time.Millisecond
	srv.Overload = &overload.Config{
		Target:           3 * time.Millisecond,
		Interval:         100 * time.Millisecond,
		RecoveryInterval: 200 * time.Millisecond,
		OverloadFactor:   4,
		ProbeEvery:       16,
	}
	srv.FaultHook = func(shard int) {
		faults.Hook(shard)
		// Deterministic service cost: ~1ms per admitted request caps
		// capacity at ~4k/s with 2 shards × 2 workers, independent of
		// host CPU (and of the -race slowdown).
		time.Sleep(time.Millisecond)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Fault script: a worker panic early in the storm, then a wedged
	// shard held long enough for the watchdog to notice (it needs one
	// full quiet interval after both of the shard's workers block).
	scriptDone := make(chan struct{})
	go func() {
		defer close(scriptDone)
		time.Sleep(700 * time.Millisecond)
		faults.PanicAfter(0, 3)
		time.Sleep(300 * time.Millisecond)
		faults.Wedge(1)
		time.Sleep(400 * time.Millisecond)
		faults.Release(1)
	}()

	rep, err := loadgen.Run(loadgen.Config{
		Target:        addr.String(),
		Rate:          12000, // ~3× the hook-capped capacity
		Duration:      2500 * time.Millisecond,
		Senders:       8, // distinct flows so both REUSEPORT shards see traffic
		Timeout:       500 * time.Millisecond,
		SnapshotEvery: 500 * time.Millisecond,
		Seed:          1,
	})
	<-scriptDone
	if err != nil {
		t.Fatal(err)
	}

	snap := srv.Snapshot()
	t.Logf("storm: %v", rep)
	t.Logf("server: %v", snap)

	if rep.Received == 0 {
		t.Fatal("no request served at all during the storm")
	}
	if snap.Shed+snap.ShedDropped == 0 {
		t.Error("no load shed at 3× capacity: admission control never engaged")
	}
	if snap.Panics == 0 {
		t.Error("injected worker panic never fired (or was not counted)")
	}
	if snap.Restarts == 0 {
		t.Error("watchdog never restarted the wedged shard")
	}

	// Tail-latency discipline: answered requests must not ride an
	// ever-growing queue. Only send-phase intervals count — after the
	// send phase the generator's drain window sees nothing but the
	// stale backlog trickling out, which measures the queue's corpse,
	// not the serving policy.
	var storm []loadgen.Interval
	for _, iv := range rep.Intervals {
		if iv.Sent > 0 {
			storm = append(storm, iv)
		}
	}
	if len(storm) < 3 {
		t.Fatalf("got %d send-phase intervals, want >= 3", len(storm))
	}
	growing := 0
	for i := range storm {
		t.Logf("interval %d: sent=%d received=%d kod=%d p99=%.0fµs",
			i, storm[i].Sent, storm[i].Received, storm[i].KoD, storm[i].P99Us)
		if storm[i].Received == 0 {
			t.Errorf("interval %d served nothing: server went dark mid-storm", i)
		}
		if i > 0 && storm[i].P99Us > storm[i-1].P99Us {
			growing++
		}
	}
	if growing == len(storm)-1 {
		t.Error("answered p99 grew monotonically across every interval: queueing, not shedding")
	}
	// Bounded, recovered tail: the last interval — well past the wedge
	// release — must sit far below the 500ms reply deadline a
	// queueing collapse would push answered requests toward. (The
	// loose bound owes to the test's own physics: the injected 1ms
	// service cost against the kernel's default receive buffer puts
	// the worst legitimate wait near 140ms.)
	if last := storm[len(storm)-1]; last.P99Us >= 250000 {
		t.Errorf("final storm interval answered p99 = %.0fµs, want < 250ms", last.P99Us)
	}
	// The typical answered request must be fresh — that is the whole
	// point of shedding: answer fewer clients, answer them well.
	if rep.Latency.P50Us >= 25000 {
		t.Errorf("answered p50 = %.0fµs, want < 25ms", rep.Latency.P50Us)
	}
}
