package ntpnet

import (
	"encoding/binary"
	"net"
	"testing"
	"time"
)

// TestKeyFromIPMappedEquivalence pins the key normalization: the same
// IPv4 client must hit the same bucket whether the socket layer hands
// its address over as 4 raw bytes, as the 16-byte IPv4-in-IPv6 mapped
// form (::ffff:a.b.c.d — what ReadFromUDP yields on a dual-stack
// socket), or parsed from text. Native IPv6 addresses must not
// collide with any v4 key.
func TestKeyFromIPMappedEquivalence(t *testing.T) {
	raw4 := net.IP{192, 0, 2, 7}
	v4in16 := net.IPv4(192, 0, 2, 7) // 16-byte representation
	parsed := net.ParseIP("192.0.2.7")
	mapped := net.ParseIP("::ffff:192.0.2.7")

	want := keyFromIP(raw4)
	for name, ip := range map[string]net.IP{
		"16-byte v4": v4in16, "parsed dotted": parsed, "explicit mapped": mapped,
	} {
		if got := keyFromIP(ip); got != want {
			t.Errorf("keyFromIP(%s %v) = %x, want %x", name, ip, got, want)
		}
	}
	// The key bytes are exactly the RFC 4291 mapped form.
	wantBytes := addrKey{10: 0xff, 11: 0xff, 12: 192, 13: 0, 14: 2, 15: 7}
	if want != wantBytes {
		t.Errorf("v4 key = %x, want RFC 4291 mapped %x", want, wantBytes)
	}

	ip6 := net.ParseIP("2001:db8::c000:207") // low bytes equal 192.0.2.7
	if got := keyFromIP(ip6); got == want {
		t.Errorf("native IPv6 %v collides with v4 key %x", ip6, want)
	}
	if a, b := keyFromIP(net.ParseIP("2001:db8::1")), keyFromIP(net.ParseIP("2001:db8::2")); a == b {
		t.Error("distinct IPv6 clients share a key")
	}
}

// TestRateLimiterSweepExpiresIdleEntries pins the idle-entry sweep: a
// burst that fills the table (a spoofed-source flood) must not leave
// it pinned at capacity after the window passes — later legitimate
// clients would pay the full-table eviction scan on every insert and
// the flood's ghosts would hold all the per-IP state.
func TestRateLimiterSweepExpiresIdleEntries(t *testing.T) {
	const n = 64
	window := time.Minute
	rl := newRateLimiter(10, window, n)
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		rl.over(fillKey(i), t0)
	}
	if got := rl.size(); got != n {
		t.Fatalf("table size after flood = %d, want %d", got, n)
	}
	if got := rl.occupancy(); got != 1.0 {
		t.Fatalf("occupancy = %v, want 1.0", got)
	}
	if !rl.known(fillKey(3), t0.Add(window/2)) {
		t.Error("entry not known inside its window")
	}

	// Mid-window sweep: nothing has expired, nothing may go.
	rl.sweep(t0.Add(window / 2))
	if got := rl.size(); got != n {
		t.Errorf("size after mid-window sweep = %d, want %d", got, n)
	}

	// Past the window every entry is idle garbage: one sweep clears it.
	rl.sweep(t0.Add(window))
	if got := rl.size(); got != 0 {
		t.Errorf("size after expiry sweep = %d, want 0", got)
	}
	if got := rl.occupancy(); got != 0 {
		t.Errorf("occupancy after sweep = %v, want 0", got)
	}
	if rl.known(fillKey(3), t0.Add(window)) {
		t.Error("expired entry still known")
	}
}

// TestRateLimiterKnownRespectsWindow: an entry whose window has
// lapsed no longer counts as established, even before a sweep runs.
func TestRateLimiterKnownRespectsWindow(t *testing.T) {
	rl := newRateLimiter(10, time.Minute, 16)
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	rl.over(fillKey(1), t0)
	if !rl.known(fillKey(1), t0.Add(30*time.Second)) {
		t.Error("fresh entry not known")
	}
	if rl.known(fillKey(1), t0.Add(2*time.Minute)) {
		t.Error("lapsed entry still known")
	}
	if rl.known(fillKey(2), t0) {
		t.Error("never-seen key reported known")
	}
}

// TestRateLimiterSharedSourceIPBudget pins the per-IP budget
// semantics a NAT'd population lives under: many distinct clients
// behind one address share a single 16-byte key, so they share ONE
// bucket — the first `limit` requests in a window pass no matter
// which client sent them, every later one is limited, and the whole
// shared budget refreshes at the window boundary. This is the
// documented baseline the population engine's NAT-collision scenario
// asserts against.
func TestRateLimiterSharedSourceIPBudget(t *testing.T) {
	const (
		limit   = 8
		clients = 40 // distinct devices, one NAT address
	)
	window := time.Minute
	rl := newRateLimiter(limit, window, 16)
	nat := keyFromIP(net.ParseIP("203.0.113.9"))
	other := keyFromIP(net.ParseIP("198.51.100.1"))
	t0 := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

	// One poll from each of 40 devices arrives within the window: the
	// first `limit` pass, the rest are limited — per-IP, not per-client.
	passed, limited := 0, 0
	for i := 0; i < clients; i++ {
		if rl.over(nat, t0.Add(time.Duration(i)*time.Second/2)) {
			limited++
		} else {
			passed++
		}
	}
	if passed != limit {
		t.Errorf("shared-IP window passed %d requests, want exactly limit=%d", passed, limit)
	}
	if limited != clients-limit {
		t.Errorf("shared-IP window limited %d requests, want %d", limited, clients-limit)
	}
	// The NAT's exhaustion is scoped to its key: a different source IP
	// still has its full budget.
	if rl.over(other, t0.Add(19*time.Second)) {
		t.Error("an unrelated source IP was limited by the NAT's exhausted budget")
	}
	// All 40 devices hold exactly one table entry between them.
	if got := rl.size(); got != 2 {
		t.Errorf("table size = %d, want 2 (one NAT bucket + one other)", got)
	}

	// The next window refreshes the shared budget: the first request
	// at t0+window resets the bucket and passes.
	if rl.over(nat, t0.Add(window)) {
		t.Error("first request of the fresh window was limited")
	}
	for i := 1; i < limit; i++ {
		if rl.over(nat, t0.Add(window).Add(time.Duration(i)*time.Second)) {
			t.Errorf("request %d of the fresh window was limited inside the budget", i)
		}
	}
	if !rl.over(nat, t0.Add(window).Add(30*time.Second)) {
		t.Error("budget overrun in the fresh window was not limited")
	}
}

func fillKey(i int) addrKey {
	var k addrKey
	k[0] = 0x20 // native v6 space, disjoint from the mapped prefix
	binary.BigEndian.PutUint32(k[12:], uint32(i))
	return k
}

// BenchmarkRateLimiterFullTableInsert measures the worst case of the
// bounded table: every insertion arrives at capacity with nothing
// expired, so each one pays the full O(table) eviction scan for the
// oldest window. This is the hot path under a spoofed-source flood
// that cycles addresses faster than the window expires them.
func BenchmarkRateLimiterFullTableInsert(b *testing.B) {
	for _, size := range []int{1 << 10, 1 << 12, 1 << 14} {
		b.Run("size="+itoa(size), func(b *testing.B) {
			rl := newRateLimiter(10, time.Minute, size)
			now := time.Unix(1479081600, 0)
			for i := 0; i < size; i++ {
				rl.over(fillKey(i), now)
			}
			if rl.size() != size {
				b.Fatalf("table size %d, want %d", rl.size(), size)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// A never-seen key at a time inside every window: full
				// scan, oldest displaced, table stays at capacity.
				rl.over(fillKey(size+i), now.Add(time.Duration(i)))
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
