package ntpnet

import (
	"errors"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/core"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/sntp"
)

// goodTransport returns a TransportFunc that always answers like a
// well-behaved server whose clock is ahead of clk's by ahead.
func goodTransport(clk clock.Clock, ahead time.Duration, calls *int) exchange.TransportFunc {
	return func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		*calls++
		now := clk.Now()
		srv := ntptime.FromTime(now.Add(ahead))
		return &ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 2, Origin: req.Transmit,
			Receive: srv, Transmit: srv,
		}, now, nil
	}
}

func TestSNTPKoDStormAbortsRetries(t *testing.T) {
	// A kiss-of-death storm: every reply is RATE. The SNTP retry loop
	// must stop after the first KoD instead of hammering the server.
	var calls int
	ft := &FaultTransport{
		Inner:   goodTransport(clock.System{}, 0, &calls),
		KoDProb: 1, Seed: 1,
	}
	cl := sntp.New(clock.System{}, ft, sntp.WallSleeper{},
		sntp.Config{Server: "s", Retries: 5, RetryWait: time.Millisecond})
	if _, err := cl.Query(); !errors.Is(err, ntppkt.ErrKissOfDeath) {
		t.Fatalf("err = %v, want kiss-of-death", err)
	}
	if st := ft.Stats(); st.Exchanges != 1 || st.KoDs != 1 {
		t.Errorf("stats = %+v: client retried into the KoD storm", st)
	}
	if calls != 0 {
		t.Errorf("inner transport reached %d times through a total KoD storm", calls)
	}
}

func TestSNTPRetriesThroughLoss(t *testing.T) {
	var calls int
	ft := &FaultTransport{
		Inner:     goodTransport(clock.System{}, 80*time.Millisecond, &calls),
		DropFirst: 2,
	}
	cl := sntp.New(clock.System{}, ft, sntp.WallSleeper{},
		sntp.Config{Server: "s", Retries: 3, RetryWait: time.Millisecond})
	s, err := cl.Query()
	if err != nil {
		t.Fatalf("query through 2 losses: %v", err)
	}
	if d := s.Offset - 80*time.Millisecond; d < -10*time.Millisecond || d > 10*time.Millisecond {
		t.Errorf("offset = %v, want ~80ms", s.Offset)
	}
	if st := ft.Stats(); st.Exchanges != 3 || st.Dropped != 2 {
		t.Errorf("stats = %+v, want 3 exchanges / 2 drops", st)
	}
}

func TestDuplicateReplyRejectedThenRecovered(t *testing.T) {
	// DupProb=1: each genuine reply is recorded and replayed as the
	// answer to the next exchange, where its origin no longer echoes
	// the request — validation must reject it, and the retry must
	// then receive the genuine reply.
	var calls int
	ft := &FaultTransport{
		Inner:   goodTransport(clock.System{}, 0, &calls),
		DupProb: 1, Seed: 7,
	}
	cl := sntp.New(clock.System{}, ft, sntp.WallSleeper{},
		sntp.Config{Server: "s", Retries: 2, RetryWait: time.Millisecond})
	if _, err := cl.Query(); err != nil {
		t.Fatalf("first query: %v", err)
	}
	if _, err := cl.Query(); err != nil {
		t.Fatalf("second query (stale duplicate first): %v", err)
	}
	st := ft.Stats()
	if st.Duplicated == 0 {
		t.Error("no duplicate was replayed")
	}
	// First query: 1 exchange. Second: stale replayed (rejected by
	// validation) + 1 genuine retry = 3 total.
	if st.Exchanges != 3 {
		t.Errorf("exchanges = %d, want 3", st.Exchanges)
	}
}

func TestCorruptedReplyFailsExchange(t *testing.T) {
	var calls int
	ft := &FaultTransport{
		Inner:       goodTransport(clock.System{}, 0, &calls),
		CorruptProb: 1, Seed: 3,
	}
	// With every reply corrupted, repeated queries must keep erroring
	// or — when the flipped bit lands in a field validation ignores —
	// still return a decodable sample; either way nothing panics and
	// the corruption counter advances.
	cl := sntp.New(clock.System{}, ft, sntp.WallSleeper{},
		sntp.Config{Server: "s", Retries: 0})
	var failures int
	for i := 0; i < 32; i++ {
		if _, err := cl.Query(); err != nil {
			failures++
		}
	}
	st := ft.Stats()
	if st.Corrupted != 32 {
		t.Errorf("corrupted = %d, want 32", st.Corrupted)
	}
	if failures == 0 {
		t.Error("32 corrupted replies and no exchange failed (bit flips never hit a validated field?)")
	}
}

func staticFavorable() hints.Provider {
	return hints.ProviderFunc(func() hints.Hints {
		return hints.Hints{RSSI: -50, Noise: -95}
	})
}

func TestMNTPThroughFaultStormOverUDP(t *testing.T) {
	// The full MNTP client over real loopback UDP behind a storm of
	// loss, duplication and corruption: the run must complete, accept
	// samples, and never treat a stray reply as the answer.
	srv := NewServer(clock.System{}, 2)
	srv.Workers = 4
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ft := &FaultTransport{
		Inner:    &Client{Timeout: 300 * time.Millisecond},
		DropProb: 0.2, DupProb: 0.2, CorruptProb: 0.1, Seed: 42,
	}
	params := core.DefaultParams(addr.String())
	params.WarmupServers = []string{addr.String(), addr.String(), addr.String()}
	params.RegularServer = addr.String()
	params.WarmupPeriod = 500 * time.Millisecond
	params.WarmupWaitTime = 30 * time.Millisecond
	params.RegularWaitTime = 30 * time.Millisecond
	params.ResetPeriod = 2 * time.Second
	params.HintPollInterval = 10 * time.Millisecond

	var accepted, failed int
	c := core.New(clock.System{}, nil, ft, staticFavorable(), sntp.WallSleeper{}, params)
	c.OnEvent = func(e core.Event) {
		switch e.Kind {
		case core.EventAccepted:
			accepted++
		case core.EventQueryFailed:
			failed++
		}
	}
	c.Run(1200 * time.Millisecond)

	if accepted == 0 {
		t.Error("no samples accepted through the fault storm")
	}
	st := ft.Stats()
	if st.Dropped == 0 {
		t.Errorf("storm injected nothing: %+v", st)
	}
	snap := srv.Snapshot()
	if snap.Served == 0 {
		t.Error("server served nothing")
	}
}

func TestMNTPKoDStormMakesNoProgress(t *testing.T) {
	// Under a total KoD storm every query draws a kiss-of-death: MNTP
	// must surface the distinct KoD event, hold the source down (no
	// retry hammering), and accept nothing — without panicking or
	// looping faster than its configured cadence.
	var calls int
	ft := &FaultTransport{
		Inner:   goodTransport(clock.System{}, 0, &calls),
		KoDProb: 1, Seed: 5,
	}
	params := core.DefaultParams("s")
	params.WarmupPeriod = 100 * time.Millisecond
	params.WarmupWaitTime = 10 * time.Millisecond
	params.RegularWaitTime = 10 * time.Millisecond
	params.ResetPeriod = 300 * time.Millisecond
	params.HintPollInterval = 5 * time.Millisecond

	var accepted, kod int
	c := core.New(clock.System{}, nil, ft, staticFavorable(), sntp.WallSleeper{}, params)
	c.OnEvent = func(e core.Event) {
		switch e.Kind {
		case core.EventAccepted:
			accepted++
		case core.EventKoD:
			kod++
		}
	}
	c.Run(250 * time.Millisecond)

	if accepted != 0 {
		t.Errorf("%d samples accepted from a pure KoD storm", accepted)
	}
	if kod == 0 {
		t.Error("no KoD events surfaced")
	}
	if calls != 0 {
		t.Errorf("inner transport reached %d times", calls)
	}
}
