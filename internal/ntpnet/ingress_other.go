//go:build !linux

package ntpnet

import (
	"errors"
	"net"
	"time"
)

const oobSpace = 0

const rxTimestampsAvailable = false

var errNoRxTimestamps = errors.New("ntpnet: kernel receive timestamps unsupported on this platform")

// enableRxTimestamps always fails here: without SCM_TIMESTAMPNS the
// server falls back to stamping ingress at read time, which measures
// handling latency but not kernel queue wait.
func enableRxTimestamps(conn *net.UDPConn) error { return errNoRxTimestamps }

func rxTimestamp(oob []byte) (time.Time, bool) { return time.Time{}, false }
