//go:build linux

package ntpnet

import (
	"net"
	"syscall"
	"time"
	"unsafe"
)

// oobSpace sizes the per-worker ancillary buffer: one cmsg header
// plus a Timespec, rounded up generously.
const oobSpace = 64

// rxTimestampsAvailable reports at build time whether the kernel can
// attach receive timestamps to datagrams.
const rxTimestampsAvailable = true

// enableRxTimestamps asks the kernel to attach a nanosecond receive
// timestamp (SCM_TIMESTAMPNS) to every datagram on conn. The stamp is
// taken when the packet enters the socket queue, so a sojourn
// measured against it includes the kernel queueing delay — exactly
// the signal CoDel-style shedding needs. A userspace read-time stamp
// cannot see the queue at all: under collapse the reads still take
// microseconds each while the datagrams they drain are seconds old.
func enableRxTimestamps(conn *net.UDPConn) error {
	rc, err := conn.SyscallConn()
	if err != nil {
		return err
	}
	var serr error
	if cerr := rc.Control(func(fd uintptr) {
		serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, syscall.SO_TIMESTAMPNS, 1)
	}); cerr != nil {
		return cerr
	}
	return serr
}

// rxTimestamp extracts the kernel receive timestamp from the
// ancillary data of one ReadMsgUDP.
func rxTimestamp(oob []byte) (time.Time, bool) {
	msgs, err := syscall.ParseSocketControlMessage(oob)
	if err != nil {
		return time.Time{}, false
	}
	for _, m := range msgs {
		if m.Header.Level == syscall.SOL_SOCKET && m.Header.Type == syscall.SCM_TIMESTAMPNS &&
			len(m.Data) >= int(unsafe.Sizeof(syscall.Timespec{})) {
			ts := (*syscall.Timespec)(unsafe.Pointer(&m.Data[0]))
			return time.Unix(ts.Sec, ts.Nsec), true
		}
	}
	return time.Time{}, false
}
