package sources

import (
	"errors"
	"math"
	"testing"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// TestTotalBlackout drives a warmed-up pool through rounds where every
// source drops 100% of packets: reach must decay to zero, no score may
// go NaN/Inf, and MeasureBest must surface a typed error while still
// billing the attempts it made.
func TestTotalBlackout(t *testing.T) {
	clk := newManualClock()
	up := true
	tr := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		if !up {
			return nil, time.Time{}, errors.New("network unreachable")
		}
		return memServer(clk, clk, 0, 4*time.Millisecond)(server, req)
	})
	p := New(clk, tr, Config{Servers: []string{"a", "b", "c"}, FailoverTries: 2})

	// Warm the pool up on a healthy network.
	for i := 0; i < 4; i++ {
		p.Round()
		clk.Advance(15 * time.Second)
	}
	for _, st := range p.Status() {
		if st.Reach == 0 {
			t.Fatalf("source %s unreached during warm-up", st.Name)
		}
	}

	// Total blackout: every exchange fails for 10 rounds.
	up = false
	for i := 0; i < 10; i++ {
		s, outs, err := p.MeasureBest()
		if err == nil {
			t.Fatalf("round %d: MeasureBest succeeded during blackout: %+v", i, s)
		}
		if !errors.Is(err, ErrAllSourcesFailed) {
			t.Fatalf("round %d: err = %v, want ErrAllSourcesFailed", i, err)
		}
		if errors.Is(err, ErrNoEligibleSource) {
			t.Fatalf("round %d: blackout misreported as hold-down", i)
		}
		if len(outs) != 3 {
			t.Fatalf("round %d: attempts = %d, want 3 (1 + FailoverTries 2)", i, len(outs))
		}
		clk.Advance(15 * time.Second)
	}

	for _, st := range p.Status() {
		if st.Reach != 0 {
			t.Errorf("source %s reach = %08b after 10 dark rounds, want 0", st.Name, st.Reach)
		}
		if math.IsNaN(st.Score) || math.IsInf(st.Score, 0) {
			t.Errorf("source %s score = %v, want finite", st.Name, st.Score)
		}
		if st.Score < 0 {
			t.Errorf("source %s score = %v, want ≥ 0", st.Name, st.Score)
		}
		if st.Failures == 0 {
			t.Errorf("source %s recorded no failures", st.Name)
		}
	}

	// Recovery: the pool climbs back without intervention.
	up = true
	if _, _, err := p.MeasureBest(); err != nil {
		t.Fatalf("MeasureBest after recovery: %v", err)
	}
}

// TestResetHealth checks the NetworkChanged path: reach and smoothed
// delay/jitter reset (they describe the old path) while lifetime
// counters, falseticker demotion and KoD hold-downs survive.
func TestResetHealth(t *testing.T) {
	clk := newManualClock()
	tr := memServer(clk, clk, 0, 50*time.Millisecond)
	p := New(clk, tr, Config{Servers: []string{"a", "b"}, KoDBaseHold: time.Hour})
	for i := 0; i < 5; i++ {
		p.Round()
		clk.Advance(15 * time.Second)
	}
	p.MarkResult(nil, []string{"b"})
	p.ReportError("b", ntppkt.ErrKissOfDeath)

	before := statusOf(t, p, "a")
	if before.Reach == 0 || before.Delay == 0 {
		t.Fatalf("setup failed: %+v", before)
	}

	p.ResetHealth()

	a := statusOf(t, p, "a")
	if a.Reach != 0 || a.Delay != 0 || a.Jitter != 0 {
		t.Errorf("path state survived reset: %+v", a)
	}
	if a.Exchanges != before.Exchanges {
		t.Errorf("lifetime exchanges reset: %d → %d", before.Exchanges, a.Exchanges)
	}
	b := statusOf(t, p, "b")
	if b.Falseticker == 0 {
		t.Error("falseticker demotion dropped by path reset")
	}
	if !b.KoD {
		t.Error("KoD hold-down dropped by path reset")
	}
	// An unpolled-looking source scores the neutral prior, not NaN.
	if math.IsNaN(a.Score) {
		t.Errorf("score after reset = NaN")
	}
}
