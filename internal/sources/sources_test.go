package sources

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// manualClock is an advanceable test clock, safe for concurrent use.
type manualClock struct {
	mu sync.Mutex
	t  time.Time
}

func newManualClock() *manualClock {
	return &manualClock{t: time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)}
}

func (c *manualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *manualClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func mkSample(offset, delay time.Duration) exchange.Sample {
	return exchange.Sample{Offset: offset, Delay: delay}
}

func statusOf(t *testing.T, p *Pool, name string) SourceStatus {
	t.Helper()
	for _, st := range p.Status() {
		if st.Name == name {
			return st
		}
	}
	t.Fatalf("no status for source %q", name)
	return SourceStatus{}
}

func TestReachRegisterAndSmoothing(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"a"}})

	for i := 0; i < 3; i++ {
		p.ReportSample("a", mkSample(time.Millisecond, 10*time.Millisecond))
	}
	st := statusOf(t, p, "a")
	if st.Reach != 0b111 {
		t.Errorf("reach after 3 successes = %08b, want 00000111", st.Reach)
	}
	if st.Delay != 10*time.Millisecond {
		t.Errorf("smoothed delay = %v, want 10ms (constant input)", st.Delay)
	}
	if st.Jitter != 0 {
		t.Errorf("jitter = %v with constant delay, want 0", st.Jitter)
	}

	p.ReportError("a", errors.New("timeout"))
	st = statusOf(t, p, "a")
	if st.Reach != 0b1110 {
		t.Errorf("reach after failure = %08b, want 00001110", st.Reach)
	}
	if st.Failures != 1 {
		t.Errorf("failures = %d, want 1", st.Failures)
	}

	// A varying delay moves the EWMA and raises jitter.
	p.ReportSample("a", mkSample(time.Millisecond, 50*time.Millisecond))
	st = statusOf(t, p, "a")
	if st.Delay <= 10*time.Millisecond || st.Delay >= 50*time.Millisecond {
		t.Errorf("smoothed delay = %v, want between 10ms and 50ms", st.Delay)
	}
	if st.Jitter == 0 {
		t.Error("jitter stayed 0 after a 40ms delay excursion")
	}
}

func TestScoreRankingPrefersHealthy(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"good", "flaky", "unpolled"}})

	for i := 0; i < 8; i++ {
		p.ReportSample("good", mkSample(0, 5*time.Millisecond))
		// flaky answers once in four attempts, with worse delay.
		if i%4 == 0 {
			p.ReportSample("flaky", mkSample(0, 80*time.Millisecond))
		} else {
			p.ReportError("flaky", errors.New("timeout"))
		}
	}

	good := statusOf(t, p, "good")
	flaky := statusOf(t, p, "flaky")
	unpolled := statusOf(t, p, "unpolled")
	if !(good.Score > unpolled.Score && unpolled.Score > flaky.Score) {
		t.Errorf("score order: good=%.3f unpolled=%.3f flaky=%.3f, want good > unpolled > flaky",
			good.Score, unpolled.Score, flaky.Score)
	}
	if unpolled.Score != unpolledScore {
		t.Errorf("unpolled score = %.3f, want the neutral prior %.3f", unpolled.Score, unpolledScore)
	}
	if best, ok := p.Best(); !ok || best != "good" {
		t.Errorf("Best() = %q, %v, want \"good\", true", best, ok)
	}
}

func TestKoDExponentialHoldDown(t *testing.T) {
	clk := newManualClock()
	base := time.Minute
	p := New(clk, nil, Config{Servers: []string{"a", "b"}, KoDBaseHold: base})

	p.ReportError("a", ntppkt.ErrKissOfDeath)
	st := statusOf(t, p, "a")
	if !st.KoD || st.KoDStreak != 1 || st.KoDs != 1 {
		t.Fatalf("after first KoD: KoD=%v streak=%d kods=%d, want true/1/1", st.KoD, st.KoDStreak, st.KoDs)
	}
	if got := st.KoDUntil.Sub(clk.Now()); got != base {
		t.Errorf("first hold-down = %v, want %v", got, base)
	}
	if names := p.EligibleNames(); len(names) != 1 || names[0] != "b" {
		t.Errorf("eligible during hold-down = %v, want [b]", names)
	}
	if statusOf(t, p, "a").Score != 0 {
		t.Error("held-down source must score 0")
	}

	// Hold-down expires: eligible again; a repeat KoD doubles the hold.
	clk.Advance(base + time.Second)
	if names := p.EligibleNames(); len(names) != 2 {
		t.Fatalf("eligible after expiry = %v, want both", names)
	}
	p.ReportError("a", ntppkt.ErrKissOfDeath)
	st = statusOf(t, p, "a")
	if got := st.KoDUntil.Sub(clk.Now()); got != 2*base {
		t.Errorf("second hold-down = %v, want %v (exponential)", got, 2*base)
	}
	if st.KoDStreak != 2 {
		t.Errorf("streak = %d, want 2", st.KoDStreak)
	}

	// The exponential back-off caps at KoDMaxHold.
	for i := 0; i < 12; i++ {
		clk.Advance(9 * time.Hour)
		p.ReportError("a", ntppkt.ErrKissOfDeath)
	}
	st = statusOf(t, p, "a")
	if got := st.KoDUntil.Sub(clk.Now()); got != 8*time.Hour {
		t.Errorf("capped hold-down = %v, want the default 8h cap", got)
	}

	// A clean reply clears the streak and the hold-down.
	clk.Advance(9 * time.Hour)
	p.ReportSample("a", mkSample(0, time.Millisecond))
	st = statusOf(t, p, "a")
	if st.KoD || st.KoDStreak != 0 {
		t.Errorf("after clean reply: KoD=%v streak=%d, want cleared", st.KoD, st.KoDStreak)
	}
	p.ReportError("a", ntppkt.ErrKissOfDeath)
	if got := statusOf(t, p, "a").KoDUntil.Sub(clk.Now()); got != base {
		t.Errorf("hold-down after streak reset = %v, want %v (back to base)", got, base)
	}
}

func TestFalsetickerDemotionAndDecay(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"a", "b"}})
	p.ReportSample("a", mkSample(0, time.Millisecond))
	p.ReportSample("b", mkSample(0, time.Millisecond))
	before := statusOf(t, p, "b").Score

	p.MarkResult([]string{"a"}, []string{"b"})
	st := statusOf(t, p, "b")
	if st.Falseticker != 1 {
		t.Fatalf("falseticker weight = %v, want 1", st.Falseticker)
	}
	if st.Score >= before/2+1e-12 {
		t.Errorf("score after demotion = %.4f, want halved from %.4f", st.Score, before)
	}

	// Weight accumulates up to the cap…
	for i := 0; i < 10; i++ {
		p.MarkResult(nil, []string{"b"})
	}
	if w := statusOf(t, p, "b").Falseticker; w != maxFalsetickerWeight {
		t.Errorf("weight = %v, want capped at %v", w, maxFalsetickerWeight)
	}
	// …and decays by half per survived round.
	p.MarkResult([]string{"b"}, nil)
	if w := statusOf(t, p, "b").Falseticker; w != maxFalsetickerWeight/2.0 {
		t.Errorf("weight after survival = %v, want %v", w, maxFalsetickerWeight/2.0)
	}
}

func TestFormatStatus(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"alpha", "beta"}})
	p.ReportSample("alpha", mkSample(0, time.Millisecond))
	p.ReportError("beta", ntppkt.ErrKissOfDeath)

	out := FormatStatus(p.Status())
	for _, want := range []string{"alpha", "beta", "kod-holddown(x1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatStatus output missing %q:\n%s", want, out)
		}
	}
}
