package sources

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// ErrAllSourcesFailed is returned (wrapped around the last per-source
// error) when MeasureBest sent requests but every attempt failed —
// distinct from ErrNoEligibleSource, where nothing was sent at all.
// Callers watching for total blackout match it with errors.Is.
var ErrAllSourcesFailed = errors.New("sources: every attempted source failed")

// Outcome is the result of querying (or skipping) one source slot
// during a fan-out round or a MeasureBest attempt.
type Outcome struct {
	Source string
	Index  int // slot index into the pool
	// Skipped: the source was inside its KoD hold-down and no request
	// was sent.
	Skipped bool
	// OK: a valid reply arrived; Sample holds the measurement.
	OK     bool
	Sample exchange.Sample
	// KoD: the reply was a kiss-of-death; the source entered (or
	// extended) its hold-down.
	KoD bool
	Err error
}

// RoundResult is the outcome of one fan-out round.
type RoundResult struct {
	// Outcomes has one entry per source slot, in slot order,
	// regardless of the concurrent completion order.
	Outcomes []Outcome
	// Exchanges is the number of requests actually sent this round
	// (skipped slots send nothing) — the billing unit for clients
	// that track message counts.
	Exchanges int
}

// Round queries every eligible source, fanning out with the
// configured parallelism, and updates per-source health from each
// outcome. With Parallelism 1 (the default) the round runs inline and
// serially in slot order, which keeps it usable on virtual-time
// transports that are bound to a single simulated process.
func (p *Pool) Round() RoundResult {
	now := p.now()
	p.mu.Lock()
	elig := p.eligibleIdx(now)
	p.mu.Unlock()

	res := RoundResult{Outcomes: make([]Outcome, len(p.srcs))}
	for i, s := range p.srcs {
		res.Outcomes[i] = Outcome{Source: s.name, Index: i, Skipped: true}
	}
	if p.cfg.Parallelism <= 1 || len(elig) <= 1 {
		for _, i := range elig {
			res.Outcomes[i] = p.query(i)
		}
	} else {
		sem := make(chan struct{}, p.cfg.Parallelism)
		var wg sync.WaitGroup
		for _, i := range elig {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				res.Outcomes[i] = p.query(i)
				<-sem
			}(i)
		}
		wg.Wait()
	}
	res.Exchanges = len(elig)
	return res
}

// MeasureBest queries the top-ranked eligible source and, on failure,
// fails over to the next-ranked for up to FailoverTries additional
// attempts. It returns the first successful sample together with the
// outcome of every attempt (for event emission and message-count
// billing: each non-skipped outcome consumed one request). When every
// source is held down it returns ErrNoEligibleSource with no
// outcomes — no request was sent.
func (p *Pool) MeasureBest() (exchange.Sample, []Outcome, error) {
	now := p.now()
	p.mu.Lock()
	ranked := p.rankedLocked(now)
	p.mu.Unlock()
	if len(ranked) == 0 {
		return exchange.Sample{}, nil, ErrNoEligibleSource
	}
	tries := p.cfg.FailoverTries + 1
	if tries > len(ranked) {
		tries = len(ranked)
	}
	var outs []Outcome
	var lastErr error
	for _, i := range ranked[:tries] {
		o := p.query(i)
		outs = append(outs, o)
		if o.OK {
			return o.Sample, outs, nil
		}
		lastErr = o.Err
	}
	return exchange.Sample{}, outs, fmt.Errorf("%w: %w", ErrAllSourcesFailed, lastErr)
}

// query performs one exchange with slot i and updates its health.
func (p *Pool) query(i int) Outcome {
	name := p.srcs[i].name
	o := Outcome{Source: name, Index: i}
	s, err := p.measure(name)
	if err != nil {
		o.Err = err
		if errors.Is(err, ntppkt.ErrKissOfDeath) {
			o.KoD = true
			p.reportKoD(i, p.now(), err)
		} else {
			p.reportFailure(i, err)
		}
		return o
	}
	p.reportSuccess(i, s)
	o.OK = true
	o.Sample = s
	return o
}

// measure runs one exchange, racing it against the pool's wall-clock
// deadline when one is configured. A timed-out exchange's goroutine
// is abandoned to the transport's own timeout; its late result is
// discarded.
func (p *Pool) measure(server string) (exchange.Sample, error) {
	if p.cfg.ExchangeTimeout <= 0 {
		return exchange.Measure(p.clk, p.tr, server, p.cfg.Version, !p.cfg.FullNTP)
	}
	type result struct {
		s   exchange.Sample
		err error
	}
	ch := make(chan result, 1)
	go func() {
		s, err := exchange.Measure(p.clk, p.tr, server, p.cfg.Version, !p.cfg.FullNTP)
		ch <- result{s, err}
	}()
	timer := time.NewTimer(p.cfg.ExchangeTimeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.s, r.err
	case <-timer.C:
		return exchange.Sample{}, ErrDeadline
	}
}
