// Package sources implements the multi-source upstream pool shared by
// every synchronization client in this repository. A Pool owns a set
// of upstream servers and keeps per-source health state — an 8-bit
// reachability shift register (the NTP "reach" register of RFC 5905
// §9.2), exponentially smoothed delay and jitter, a kiss-of-death
// backoff flag with exponential hold-down, and a score that ranks the
// sources. Queries fan out concurrently with bounded parallelism and
// optional per-exchange deadlines; combined results go through
// Marzullo's intersection algorithm plus cluster pruning (select.go)
// to drop falsetickers before an offset is offered to a filter.
//
// The pool replaces the single-server assumption of the original
// MNTP Algorithm 1 reproduction: the warm-up phase fans out through
// Round, the regular phase takes the top-ranked healthy source via
// MeasureBest and fails over when it degrades, and the full NTP
// client drives the same health state through the Report methods
// while keeping its own per-peer sample filters.
package sources

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// Config parameterizes a Pool.
type Config struct {
	// Servers are the upstream references. Duplicate names are kept as
	// distinct slots (querying a pool name twice reaches two random
	// members), each with its own health state.
	Servers []string
	// Parallelism bounds the concurrent exchanges of a fan-out round.
	// The default 1 runs the round inline and serially, which is
	// required when the transport is bound to a virtual-time process
	// (netsim); real-UDP deployments raise it.
	Parallelism int
	// ExchangeTimeout is a wall-clock deadline per exchange, enforced
	// by the pool on top of whatever timeout the transport itself
	// applies. Zero relies on the transport alone. Leave zero in
	// virtual-time simulations: the deadline timer runs in wall time.
	ExchangeTimeout time.Duration
	// Version is the NTP version in requests (default 4).
	Version uint8
	// FullNTP sends full client-shaped requests instead of minimal
	// SNTP-shaped ones.
	FullNTP bool
	// KoDBaseHold is the hold-down applied to a source after its first
	// kiss-of-death reply (default 1 h, ntpd-style demobilization).
	// Repeated KoDs double the hold-down up to KoDMaxHold.
	KoDBaseHold time.Duration
	// KoDMaxHold caps the exponential hold-down (default 8 h).
	KoDMaxHold time.Duration
	// FailoverTries is how many additional ranked sources MeasureBest
	// may try after a failed exchange within one call (default 0:
	// failover then happens across rounds through re-ranking).
	FailoverTries int
	// MinHalfwidth floors the correctness-interval halfwidth used by
	// selection (default 1 ms), so zero-delay in-memory exchanges
	// still form intervals that can intersect.
	MinHalfwidth time.Duration
}

func (c *Config) applyDefaults() {
	if c.Parallelism < 1 {
		c.Parallelism = 1
	}
	if c.Version == 0 {
		c.Version = ntppkt.Version4
	}
	if c.KoDBaseHold == 0 {
		c.KoDBaseHold = time.Hour
	}
	if c.KoDMaxHold == 0 {
		c.KoDMaxHold = 8 * time.Hour
	}
	if c.MinHalfwidth == 0 {
		c.MinHalfwidth = time.Millisecond
	}
}

// Scoring constants. The score of a healthy source is its recency-
// weighted reachability divided by a quality term that grows with
// smoothed delay and jitter, then halved per accumulated falseticker
// demotion; a source inside its KoD hold-down scores zero. See
// DESIGN.md for the formula and its rationale.
const (
	// delayScale and jitterScale normalize the quality denominator: a
	// source at 100 ms smoothed delay or 25 ms jitter loses half its
	// reach-score relative to an instantaneous one.
	delayScale  = 0.100 // seconds
	jitterScale = 0.025 // seconds
	// unpolledScore is the neutral prior of a source that has never
	// been queried: below a proven-good source, above a flaky one.
	unpolledScore = 0.4
	// maxFalsetickerWeight caps the exponential demotion so a
	// rehabilitated source can climb back within a few clean rounds.
	maxFalsetickerWeight = 6
	// fallbackMargin is the score ratio the top-ranked source must
	// hold over the runner-up before a no-consensus round is resolved
	// in its favor (SelectCombine fallback).
	fallbackMargin = 1.5
)

// source is the health state of one upstream slot. All fields are
// guarded by the pool mutex.
type source struct {
	name string
	// reach is the reachability shift register: bit 0 is the most
	// recent exchange, 1 = a valid reply arrived.
	reach uint8
	// delay and jitter are RFC 5905-style exponential averages
	// (gain 1/8) of the round-trip delay and its variation, seconds.
	delay, jitter float64
	haveDelay     bool
	// kodUntil is the end of the current KoD hold-down; kodStreak
	// counts consecutive KoDs and drives the exponential back-off.
	kodUntil  time.Time
	kodStreak int
	// falseticker is the decaying demotion weight: +1 per round the
	// source was flagged a falseticker, halved per round it survived.
	falseticker float64
	// Lifetime counters for observability.
	exchanges, kods, failures int
	lastOffset                time.Duration
	lastErr                   string
}

func (s *source) score(now time.Time) float64 {
	if !s.kodUntil.IsZero() && now.Before(s.kodUntil) {
		return 0
	}
	if s.exchanges == 0 {
		return unpolledScore
	}
	q := 1 + s.delay/delayScale + s.jitter/jitterScale
	return weightedReach(s.reach) / q / math.Pow(2, s.falseticker)
}

// weightedReach collapses the shift register into [0, 1], weighting
// recent exchanges geometrically (bit i counts 2^-i) so one fresh
// failure hurts more than an old one.
func weightedReach(reach uint8) float64 {
	var sum, norm float64
	for i := 0; i < 8; i++ {
		w := math.Pow(2, -float64(i))
		norm += w
		if reach&(1<<uint(i)) != 0 {
			sum += w
		}
	}
	return sum / norm
}

// Pool owns the upstream sources and their health state. All methods
// are safe for concurrent use.
type Pool struct {
	cfg Config
	clk clock.Clock
	tr  exchange.Transport

	mu   sync.Mutex
	srcs []*source
}

// New creates a pool over the given clock and transport. Both may be
// nil for pools that never query on their own behalf (the full NTP
// client measures itself and feeds the pool through the Report
// methods) — but then Round and MeasureBest must not be called.
func New(clk clock.Clock, tr exchange.Transport, cfg Config) *Pool {
	cfg.applyDefaults()
	p := &Pool{cfg: cfg, clk: clk, tr: tr}
	for _, name := range cfg.Servers {
		p.srcs = append(p.srcs, &source{name: name})
	}
	return p
}

// Len returns the number of source slots.
func (p *Pool) Len() int { return len(p.srcs) }

// now reads the pool clock, tolerating a nil clock for pools that are
// driven externally through the Report methods.
func (p *Pool) now() time.Time {
	if p.clk == nil {
		return time.Time{}
	}
	return p.clk.Now()
}

// ErrNoEligibleSource is returned when every source is inside its KoD
// hold-down.
var ErrNoEligibleSource = errors.New("sources: no eligible source (all held down)")

// ErrDeadline is returned when an exchange exceeded the pool's
// per-exchange wall-clock deadline.
var ErrDeadline = errors.New("sources: exchange deadline exceeded")

// eligibleIdx returns the slots not currently in KoD hold-down, in
// slot order. Caller must hold p.mu.
func (p *Pool) eligibleIdx(now time.Time) []int {
	var out []int
	for i, s := range p.srcs {
		if s.kodUntil.IsZero() || !now.Before(s.kodUntil) {
			out = append(out, i)
		}
	}
	return out
}

// EligibleNames returns the names of the sources not currently held
// down, in configuration order. External drivers iterate this and
// report outcomes back through ReportSample/ReportError.
func (p *Pool) EligibleNames() []string {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, i := range p.eligibleIdx(now) {
		out = append(out, p.srcs[i].name)
	}
	return out
}

// Ranked returns the eligible slot indexes ordered by descending
// score (ties broken by slot order).
func (p *Pool) Ranked() []int {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rankedLocked(now)
}

func (p *Pool) rankedLocked(now time.Time) []int {
	elig := p.eligibleIdx(now)
	sort.SliceStable(elig, func(a, b int) bool {
		return p.srcs[elig[a]].score(now) > p.srcs[elig[b]].score(now)
	})
	return elig
}

// Best returns the name of the top-ranked eligible source.
func (p *Pool) Best() (string, bool) {
	r := p.Ranked()
	if len(r) == 0 {
		return "", false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.srcs[r[0]].name, true
}

// ---- health accounting ----

func (p *Pool) reportSuccess(i int, s exchange.Sample) {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.srcs[i]
	src.exchanges++
	src.reach = src.reach<<1 | 1
	src.kodStreak = 0
	src.kodUntil = time.Time{}
	d := s.Delay.Seconds()
	if !src.haveDelay {
		src.delay, src.haveDelay = d, true
	} else {
		diff := math.Abs(d - src.delay)
		src.delay += (d - src.delay) / 8
		src.jitter += (diff - src.jitter) / 8
	}
	src.lastOffset = s.Offset
	src.lastErr = ""
}

func (p *Pool) reportKoD(i int, now time.Time, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.srcs[i]
	src.exchanges++
	src.kods++
	src.reach <<= 1
	src.kodStreak++
	hold := p.cfg.KoDBaseHold << uint(src.kodStreak-1)
	if hold > p.cfg.KoDMaxHold || hold <= 0 {
		hold = p.cfg.KoDMaxHold
	}
	src.kodUntil = now.Add(hold)
	src.lastErr = err.Error()
}

func (p *Pool) reportFailure(i int, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.srcs[i]
	src.exchanges++
	src.failures++
	src.reach <<= 1
	src.lastErr = err.Error()
}

func (p *Pool) markFalseticker(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	src := p.srcs[i]
	src.falseticker++
	if src.falseticker > maxFalsetickerWeight {
		src.falseticker = maxFalsetickerWeight
	}
}

func (p *Pool) markSurvivor(i int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.srcs[i].falseticker /= 2
}

// indexOf returns the first slot with the given name. Caller must
// hold p.mu.
func (p *Pool) indexOf(name string) int {
	for i, s := range p.srcs {
		if s.name == name {
			return i
		}
	}
	return -1
}

// ReportSample records a successful exchange for the named source
// (first slot with that name): reach, delay and jitter are updated
// and any KoD streak is cleared. External drivers that perform their
// own exchanges use this.
func (p *Pool) ReportSample(name string, s exchange.Sample) {
	p.mu.Lock()
	i := p.indexOf(name)
	p.mu.Unlock()
	if i >= 0 {
		p.reportSuccess(i, s)
	}
}

// ReportError records a failed exchange for the named source. A
// kiss-of-death error puts the source into exponential hold-down;
// anything else just clears the reach bit.
func (p *Pool) ReportError(name string, err error) {
	now := p.now()
	p.mu.Lock()
	i := p.indexOf(name)
	p.mu.Unlock()
	if i < 0 {
		return
	}
	if errors.Is(err, ntppkt.ErrKissOfDeath) {
		p.reportKoD(i, now, err)
	} else {
		p.reportFailure(i, err)
	}
}

// ResetHealth clears the path-dependent health state of every source:
// the reach register and the smoothed delay/jitter, all of which
// describe the network path that just changed, are dropped; lifetime
// counters, falseticker demotion (a property of the server's truth,
// not of the path) and KoD hold-downs (rate-limiting abuse protection
// owed to the server regardless of where we roam) survive. Clients
// call this from their NetworkChanged hook so the pool re-learns the
// new path instead of ranking sources by stale measurements.
func (p *Pool) ResetHealth() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.srcs {
		s.reach = 0
		s.delay, s.jitter = 0, 0
		s.haveDelay = false
		s.lastErr = ""
	}
}

// MarkResult records a selection outcome computed outside the pool:
// survivors have their falseticker weight decayed, flagged sources
// accumulate demotion.
func (p *Pool) MarkResult(survivors, falsetickers []string) {
	for _, n := range survivors {
		p.mu.Lock()
		i := p.indexOf(n)
		p.mu.Unlock()
		if i >= 0 {
			p.markSurvivor(i)
		}
	}
	for _, n := range falsetickers {
		p.mu.Lock()
		i := p.indexOf(n)
		p.mu.Unlock()
		if i >= 0 {
			p.markFalseticker(i)
		}
	}
}

// ---- status ----

// SourceStatus is an observable snapshot of one source slot.
type SourceStatus struct {
	Name        string
	Reach       uint8
	Score       float64
	Delay       time.Duration
	Jitter      time.Duration
	KoD         bool // currently inside the hold-down
	KoDUntil    time.Time
	KoDStreak   int
	Falseticker float64 // demotion weight (0 = trusted)
	Exchanges   int
	KoDs        int
	Failures    int
	LastOffset  time.Duration
	LastErr     string
}

// Status returns a snapshot of every source slot, in slot order.
func (p *Pool) Status() []SourceStatus {
	now := p.now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]SourceStatus, len(p.srcs))
	for i, s := range p.srcs {
		out[i] = SourceStatus{
			Name:        s.name,
			Reach:       s.reach,
			Score:       s.score(now),
			Delay:       time.Duration(s.delay * float64(time.Second)),
			Jitter:      time.Duration(s.jitter * float64(time.Second)),
			KoD:         !s.kodUntil.IsZero() && now.Before(s.kodUntil),
			KoDUntil:    s.kodUntil,
			KoDStreak:   s.kodStreak,
			Falseticker: s.falseticker,
			Exchanges:   s.exchanges,
			KoDs:        s.kods,
			Failures:    s.failures,
			LastOffset:  s.lastOffset,
			LastErr:     s.lastErr,
		}
	}
	return out
}

// FormatStatus renders a status snapshot as an aligned table for CLI
// dumps.
func FormatStatus(sts []SourceStatus) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %-8s %6s %9s %9s %5s %4s %5s %5s %s\n",
		"source", "reach", "score", "delay", "jitter", "ftick", "kods", "fails", "exch", "state")
	for _, st := range sts {
		state := "ok"
		switch {
		case st.KoD:
			state = fmt.Sprintf("kod-holddown(x%d)", st.KoDStreak)
		case st.Falseticker >= 1:
			state = "falseticker"
		case st.Exchanges == 0:
			state = "unpolled"
		}
		fmt.Fprintf(&b, "%-24s %08b %6.3f %8.2fms %8.2fms %5.1f %4d %5d %5d %s\n",
			st.Name, st.Reach, st.Score,
			st.Delay.Seconds()*1000, st.Jitter.Seconds()*1000,
			st.Falseticker, st.KoDs, st.Failures, st.Exchanges, state)
	}
	return b.String()
}
