package sources

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// memServer is an in-memory NTP server transport: it answers with the
// server clock's time, shifted by offset and reporting wireDelay of
// symmetric path delay (T2/T3 are skewed apart so the four-timestamp
// delay comes out as wireDelay without biasing the offset). t4 is read
// from clientClk.
func memServer(srvClk, clientClk clock.Clock, offset, wireDelay time.Duration) exchange.TransportFunc {
	return func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		now := srvClk.Now().Add(offset)
		return &ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 2, RefID: [4]byte{'M', 'E', 'M', 0},
			RefTime: ntptime.FromTime(now.Add(-30 * time.Second)),
			Origin:  req.Transmit,
			Receive: ntptime.FromTime(now.Add(wireDelay / 2)),
			// Transmit must echo a time not before Receive on the wire;
			// the skew below models path delay, not server processing.
			Transmit: ntptime.FromTime(now.Add(-wireDelay / 2)),
		}, clientClk.Now(), nil
	}
}

// router dispatches exchanges to per-server transports by name.
type router struct {
	routes map[string]exchange.Transport
}

func (r *router) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	tr, ok := r.routes[server]
	if !ok {
		return nil, time.Time{}, errors.New("router: unknown server " + server)
	}
	return tr.Exchange(server, req)
}

// TestRoundFaultInjection drives a 4-source pool through per-source
// faults — loss, delay skew, a constant-offset falseticker and a KoD
// storm — and checks that health scoring, hold-down and selection each
// demote the right source.
func TestRoundFaultInjection(t *testing.T) {
	clk := newManualClock()
	truth := clk // servers and client share the reference; offsets are explicit
	rt := &router{routes: map[string]exchange.Transport{
		"good": memServer(truth, clk, 0, 4*time.Millisecond),
		"slow": memServer(truth, clk, 0, 200*time.Millisecond),
		"false": &ntpnet.FaultTransport{
			Inner: memServer(truth, clk, 500*time.Millisecond, 4*time.Millisecond),
			Clock: clk, Seed: 3,
		},
		"kod": &ntpnet.FaultTransport{
			Inner: memServer(truth, clk, 0, 4*time.Millisecond),
			Clock: clk, Seed: 5, KoDProb: 1,
		},
	}}
	// "good" additionally loses 30% of its exchanges — reach dips but
	// it must stay the best source.
	rt.routes["good"] = &ntpnet.FaultTransport{
		Inner: rt.routes["good"], Clock: clk, Seed: 7, DropProb: 0.3,
	}

	p := New(clk, rt, Config{
		Servers:     []string{"good", "slow", "false", "kod"},
		Parallelism: 1,
		KoDBaseHold: time.Hour,
	})

	var combined []time.Duration
	for round := 0; round < 12; round++ {
		res := p.Round()
		var samples []exchange.Sample
		var idxs []int
		for _, o := range res.Outcomes {
			if o.OK {
				samples = append(samples, o.Sample)
				idxs = append(idxs, o.Index)
			}
		}
		if sel := p.SelectCombine(samples, idxs); sel.OK {
			combined = append(combined, sel.Offset)
		}
		clk.Advance(15 * time.Second)
	}

	good := statusOf(t, p, "good")
	slow := statusOf(t, p, "slow")
	falseSt := statusOf(t, p, "false")
	kod := statusOf(t, p, "kod")

	if kod.KoDs == 0 || !kod.KoD {
		t.Errorf("kod source: kods=%d holddown=%v, want storm detected", kod.KoDs, kod.KoD)
	}
	if kod.Exchanges != 1 {
		t.Errorf("kod source queried %d times, want 1 (held down after the first)", kod.Exchanges)
	}
	if falseSt.Falseticker < 1 {
		t.Errorf("falseticker weight = %v, want ≥ 1 after repeated flagging", falseSt.Falseticker)
	}
	if good.Failures == 0 {
		t.Error("lossy good source recorded no failures: loss not injected")
	}
	if slow.Delay < 150*time.Millisecond {
		t.Errorf("slow source smoothed delay = %v, want ≈200ms", slow.Delay)
	}
	if best, _ := p.Best(); best != "good" {
		t.Errorf("Best() = %q, want \"good\" (loss hurts less than 200ms delay or lying)", best)
	}
	if good.Score <= slow.Score || good.Score <= falseSt.Score || kod.Score != 0 {
		t.Errorf("score order wrong: good=%.3f slow=%.3f false=%.3f kod=%.3f",
			good.Score, slow.Score, falseSt.Score, kod.Score)
	}
	if len(combined) == 0 {
		t.Fatal("no round produced a combined offset")
	}
	for _, off := range combined {
		if off > 20*time.Millisecond || off < -20*time.Millisecond {
			t.Errorf("combined offset %v dragged off truth (falseticker leak?)", off)
		}
	}
}

// TestRoundBoundedParallelism checks the fan-out semaphore: with
// parallelism 3 over 8 sources, at most 3 exchanges are ever in
// flight, and more than one actually runs concurrently.
func TestRoundBoundedParallelism(t *testing.T) {
	clk := clock.System{}
	var active, peak int32
	slowTr := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		n := atomic.AddInt32(&active, 1)
		for {
			p := atomic.LoadInt32(&peak)
			if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		atomic.AddInt32(&active, -1)
		return memServer(clk, clk, 0, time.Millisecond)(server, req)
	})

	servers := []string{"s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"}
	p := New(clk, slowTr, Config{Servers: servers, Parallelism: 3})
	res := p.Round()

	if res.Exchanges != len(servers) {
		t.Errorf("exchanges = %d, want %d", res.Exchanges, len(servers))
	}
	for _, o := range res.Outcomes {
		if !o.OK {
			t.Errorf("source %s failed: %v", o.Source, o.Err)
		}
	}
	if got := atomic.LoadInt32(&peak); got > 3 {
		t.Errorf("peak concurrency = %d, want ≤ 3 (the semaphore bound)", got)
	} else if got < 2 {
		t.Errorf("peak concurrency = %d, want ≥ 2 (fan-out never overlapped)", got)
	}
}

// TestExchangeDeadline checks the per-exchange wall-clock deadline: a
// transport that hangs past the deadline surfaces ErrDeadline and is
// billed as a failure.
func TestExchangeDeadline(t *testing.T) {
	clk := clock.System{}
	var mu sync.Mutex
	hung := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		mu.Lock() // serialize so abandoned goroutines don't pile up racily
		defer mu.Unlock()
		time.Sleep(150 * time.Millisecond)
		return memServer(clk, clk, 0, time.Millisecond)(server, req)
	})
	p := New(clk, hung, Config{
		Servers:         []string{"hung"},
		ExchangeTimeout: 10 * time.Millisecond,
	})
	res := p.Round()
	if res.Exchanges != 1 {
		t.Fatalf("exchanges = %d, want 1", res.Exchanges)
	}
	o := res.Outcomes[0]
	if o.OK || !errors.Is(o.Err, ErrDeadline) {
		t.Errorf("outcome = OK=%v err=%v, want ErrDeadline", o.OK, o.Err)
	}
	if st := statusOf(t, p, "hung"); st.Failures != 1 || st.Reach != 0 {
		t.Errorf("deadline failure not recorded: failures=%d reach=%08b", st.Failures, st.Reach)
	}
}

// TestMeasureBestFailover checks ranked failover: when the top-ranked
// source starts failing, MeasureBest falls through to the runner-up
// within the same call and bills both attempts.
func TestMeasureBestFailover(t *testing.T) {
	clk := newManualClock()
	var aDown bool
	var mu sync.Mutex
	rt := &router{routes: map[string]exchange.Transport{
		"b": memServer(clk, clk, 0, 10*time.Millisecond),
	}}
	rt.routes["a"] = exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		mu.Lock()
		down := aDown
		mu.Unlock()
		if down {
			return nil, time.Time{}, errors.New("unreachable")
		}
		return memServer(clk, clk, 0, 2*time.Millisecond)(server, req)
	})

	p := New(clk, rt, Config{Servers: []string{"a", "b"}, FailoverTries: 1})
	// Establish a as the better source (lower delay, same reach).
	for i := 0; i < 4; i++ {
		p.Round()
		clk.Advance(15 * time.Second)
	}
	if best, _ := p.Best(); best != "a" {
		t.Fatalf("Best() = %q before failover, want \"a\"", best)
	}

	mu.Lock()
	aDown = true
	mu.Unlock()
	s, outs, err := p.MeasureBest()
	if err != nil {
		t.Fatalf("MeasureBest failed despite a healthy runner-up: %v", err)
	}
	if s.Server != "b" {
		t.Errorf("failover sample came from %q, want \"b\"", s.Server)
	}
	if len(outs) != 2 {
		t.Errorf("attempts = %d, want 2 (a failed, b answered)", len(outs))
	}
	if outs[0].Source != "a" || outs[0].OK || outs[1].Source != "b" || !outs[1].OK {
		t.Errorf("attempt order/outcomes wrong: %+v", outs)
	}

	// After the failure, a's score drops; continued rounds re-rank b
	// on top, so cross-round failover converges too.
	for i := 0; i < 3; i++ {
		p.Round()
		clk.Advance(15 * time.Second)
	}
	if best, _ := p.Best(); best != "b" {
		t.Errorf("Best() = %q after a went dark, want \"b\"", best)
	}
}

// TestMeasureBestAllHeldDown: when every source is in KoD hold-down,
// MeasureBest sends nothing and says so.
func TestMeasureBestAllHeldDown(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"a", "b"}, KoDBaseHold: time.Hour})
	p.ReportError("a", ntppkt.ErrKissOfDeath)
	p.ReportError("b", ntppkt.ErrKissOfDeath)
	_, outs, err := p.MeasureBest()
	if !errors.Is(err, ErrNoEligibleSource) {
		t.Errorf("err = %v, want ErrNoEligibleSource", err)
	}
	if len(outs) != 0 {
		t.Errorf("outcomes = %v, want none (no request sent)", outs)
	}
}
