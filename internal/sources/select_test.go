package sources

import (
	"math/rand"
	"testing"
	"time"

	"mntp/internal/exchange"
)

// ivalAround builds an interval centered on mid with the given
// halfwidth (seconds).
func ivalAround(mid, half float64) Interval {
	return Interval{Lo: mid - half, Mid: mid, Hi: mid + half}
}

func contains(idxs []int, i int) bool {
	for _, v := range idxs {
		if v == i {
			return true
		}
	}
	return false
}

// Property: whenever a strict majority of intervals mutually overlap
// around the truth, every member of that majority survives and every
// far-away minority interval is flagged, regardless of how many
// falsetickers there are or where they sit.
func TestMarzulloMajoritySurvivesMinorityNever(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6) // 3..8 sources
		maj := n/2 + 1       // strict majority agree
		var ivals []Interval
		for i := 0; i < maj; i++ {
			// Agreeing cluster: mids within ±10 ms, halfwidth 50 ms, so
			// every pair of correctness intervals overlaps.
			ivals = append(ivals, ivalAround(rng.Float64()*0.020-0.010, 0.050))
		}
		for i := maj; i < n; i++ {
			// Falsetickers: at least 1 s away with tight intervals —
			// disjoint from the cluster and from each other.
			sign := 1.0
			if rng.Intn(2) == 0 {
				sign = -1
			}
			ivals = append(ivals, ivalAround(sign*(1.0+float64(i)), 0.020))
		}
		surv := Marzullo(ivals)
		if surv == nil {
			t.Fatalf("seed %d: majority of %d/%d agreeing sources found no clique", seed, maj, n)
		}
		for i := 0; i < maj; i++ {
			if !contains(surv, i) {
				t.Errorf("seed %d: agreeing source %d not among survivors %v", seed, i, surv)
			}
		}
		for i := maj; i < n; i++ {
			if contains(surv, i) {
				t.Errorf("seed %d: falseticker %d survived (%v)", seed, i, surv)
			}
		}
	}
}

func TestMarzulloSingleSource(t *testing.T) {
	surv := Marzullo([]Interval{ivalAround(0.5, 0.001)})
	if len(surv) != 1 || surv[0] != 0 {
		t.Errorf("single source: survivors = %v, want [0]", surv)
	}
}

func TestMarzulloEmptyInput(t *testing.T) {
	if surv := Marzullo(nil); surv != nil {
		t.Errorf("no input: survivors = %v, want nil", surv)
	}
}

// Property: mutually disjoint intervals never produce a majority
// clique — selection must give up rather than invent consensus.
func TestMarzulloAllDisagree(t *testing.T) {
	for n := 2; n <= 6; n++ {
		var ivals []Interval
		for i := 0; i < n; i++ {
			ivals = append(ivals, ivalAround(float64(i), 0.1))
		}
		if surv := Marzullo(ivals); surv != nil {
			t.Errorf("n=%d disjoint intervals: survivors = %v, want nil", n, surv)
		}
	}
}

// Touching intervals count as overlapping (the edge sort breaks the
// tie with lower bounds first).
func TestMarzulloTouchingIntervals(t *testing.T) {
	ivals := []Interval{
		{Lo: 0, Mid: 0.005, Hi: 0.010},
		{Lo: 0.010, Mid: 0.015, Hi: 0.020},
		{Lo: 0.005, Mid: 0.010, Hi: 0.015},
	}
	surv := Marzullo(ivals)
	if len(surv) != 3 {
		t.Errorf("touching chain: survivors = %v, want all three", surv)
	}
}

func TestClusterPrunePrunesOutlierKeepsNmin(t *testing.T) {
	// Four tight mids plus one distant, all with tiny source jitter:
	// the outlier is pruned first and pruning stops at nmin.
	mids := []float64{0, 0.001, 0.002, 0.003, 0.100}
	jits := []float64{1e-4, 1e-4, 1e-4, 1e-4, 1e-4}
	kept := ClusterPrune(mids, jits, 3)
	if len(kept) < 3 {
		t.Fatalf("kept %d < nmin 3", len(kept))
	}
	if contains(kept, 4) {
		t.Errorf("outlier mid survived pruning: kept = %v", kept)
	}
}

func TestClusterPruneStopsWithinNoise(t *testing.T) {
	// A spread smaller than every source's own jitter must not be
	// pruned at all.
	mids := []float64{0, 0.0001, 0.0002, 0.00015}
	jits := []float64{0.01, 0.01, 0.01, 0.01}
	if kept := ClusterPrune(mids, jits, 3); len(kept) != 4 {
		t.Errorf("kept = %v, want all 4 (spread within noise)", kept)
	}
}

func TestClusterPruneFewerThanNmin(t *testing.T) {
	if kept := ClusterPrune([]float64{0, 1}, []float64{0, 0}, 3); len(kept) != 2 {
		t.Errorf("kept = %v, want both (below nmin)", kept)
	}
}

func TestSelectCombineFlagsFalsetickerAndCombines(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"a", "b", "bad"}})
	offsets := []time.Duration{0, 2 * time.Millisecond, 500 * time.Millisecond}

	var sel Selection
	for round := 0; round < 3; round++ {
		samples := make([]exchange.Sample, len(offsets))
		idxs := make([]int, len(offsets))
		for i, off := range offsets {
			// 20 ms of delay gives a 10 ms correctness halfwidth: a and
			// b overlap, bad (at +500 ms) is disjoint from both.
			samples[i] = mkSample(off, 20*time.Millisecond)
			idxs[i] = i
			p.ReportSample(p.Status()[i].Name, samples[i])
		}
		sel = p.SelectCombine(samples, idxs)
		if !sel.OK || sel.NoConsensus {
			t.Fatalf("round %d: OK=%v NoConsensus=%v, want a clean majority", round, sel.OK, sel.NoConsensus)
		}
		if len(sel.Falsetickers) != 1 || sel.Falsetickers[0] != 2 {
			t.Fatalf("round %d: falsetickers = %v, want [2]", round, sel.Falsetickers)
		}
	}
	// Combined offset is the (equal-weight) average of the survivors,
	// untouched by the falseticker's +500 ms.
	if got, want := sel.Offset, time.Millisecond; got < want-100*time.Microsecond || got > want+100*time.Microsecond {
		t.Errorf("combined offset = %v, want ≈%v", got, want)
	}
	// Repeated flagging accumulated demotion on bad; survivors decayed.
	if w := statusOf(t, p, "bad").Falseticker; w < 1.5 {
		t.Errorf("bad's falseticker weight = %v after 3 flagged rounds, want ≥ 1.5", w)
	}
	if w := statusOf(t, p, "a").Falseticker; w != 0 {
		t.Errorf("a's falseticker weight = %v, want 0", w)
	}
}

func TestSelectCombineFallbackToDominantScore(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"trusted", "suspect"}})
	// History: trusted has clean rounds; suspect has been flagged a
	// falseticker twice (earned in earlier majority rounds).
	for i := 0; i < 4; i++ {
		p.ReportSample("trusted", mkSample(0, 5*time.Millisecond))
		p.ReportSample("suspect", mkSample(0, 5*time.Millisecond))
	}
	p.MarkResult(nil, []string{"suspect"})
	p.MarkResult(nil, []string{"suspect"})

	// Two disjoint samples: no majority is possible with m=2.
	samples := []exchange.Sample{
		mkSample(time.Millisecond, 2*time.Millisecond),
		mkSample(400*time.Millisecond, 2*time.Millisecond),
	}
	sel := p.SelectCombine(samples, []int{0, 1})
	if !sel.NoConsensus {
		t.Fatal("disjoint pair should report NoConsensus")
	}
	if !sel.OK {
		t.Fatal("fallback should resolve in favor of the dominant-score source")
	}
	if len(sel.Survivors) != 1 || sel.Survivors[0] != 0 {
		t.Errorf("survivors = %v, want [0] (trusted)", sel.Survivors)
	}
	if sel.Offset != time.Millisecond {
		t.Errorf("fallback offset = %v, want trusted's 1ms", sel.Offset)
	}
	// Fallback rounds must not mark falsetickers: no majority evidence.
	if w := statusOf(t, p, "suspect").Falseticker; w != 2 {
		t.Errorf("suspect weight changed to %v during fallback, want 2", w)
	}
}

func TestSelectCombineAmbiguousWithoutScoreMemory(t *testing.T) {
	clk := newManualClock()
	p := New(clk, nil, Config{Servers: []string{"a", "b"}})
	p.ReportSample("a", mkSample(0, 2*time.Millisecond))
	p.ReportSample("b", mkSample(0, 2*time.Millisecond))

	// Equal scores, disjoint samples: the round is ambiguous and no
	// offset may be offered.
	samples := []exchange.Sample{
		mkSample(0, 2*time.Millisecond),
		mkSample(400*time.Millisecond, 2*time.Millisecond),
	}
	sel := p.SelectCombine(samples, []int{0, 1})
	if sel.OK || !sel.NoConsensus {
		t.Errorf("OK=%v NoConsensus=%v, want false/true (ambiguous)", sel.OK, sel.NoConsensus)
	}
}

func TestSelectCombineEmpty(t *testing.T) {
	p := New(newManualClock(), nil, Config{Servers: []string{"a"}})
	if sel := p.SelectCombine(nil, nil); sel.OK {
		t.Error("empty sample set must not produce an offset")
	}
}
