package sources

import (
	"math"
	"sort"
	"time"

	"mntp/internal/exchange"
)

// Interval is one source's correctness interval entering selection:
// the true offset is believed to lie in [Lo, Hi], with Mid the point
// estimate. Units are seconds.
type Interval struct {
	Lo, Mid, Hi float64
}

// Marzullo runs the intersection (Marzullo-derived) algorithm of RFC
// 5905 §11.2.1 over the intervals: it finds the largest set whose
// correctness intervals share an intersection containing a majority
// of midpoints and returns the indexes of those truechimers, in input
// order. Indexes outside the result are falsetickers. A nil result
// means no majority clique exists.
func Marzullo(ivals []Interval) []int {
	m := len(ivals)
	if m == 0 {
		return nil
	}
	if m == 1 {
		return []int{0}
	}

	type edge struct {
		val float64
		typ int // +1 = lower bound, 0 = midpoint, -1 = upper bound
	}
	edges := make([]edge, 0, 3*m)
	for _, iv := range ivals {
		edges = append(edges,
			edge{iv.Lo, +1}, edge{iv.Mid, 0}, edge{iv.Hi, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].val != edges[j].val {
			return edges[i].val < edges[j].val
		}
		// Lower bounds first, then midpoints, then upper bounds, so
		// touching intervals count as overlapping.
		return edges[i].typ > edges[j].typ
	})

	var low, high float64
	found := false
	for allow := 0; 2*allow < m; allow++ {
		// Scan up for the low endpoint: the point where at least
		// m−allow intervals are simultaneously active.
		chime := 0
		low, high = math.Inf(1), math.Inf(-1)
		for _, e := range edges {
			chime += e.typ
			if chime >= m-allow {
				low = e.val
				break
			}
		}
		// Scan down for the high endpoint.
		chime = 0
		for i := len(edges) - 1; i >= 0; i-- {
			chime -= edges[i].typ
			if chime >= m-allow {
				high = edges[i].val
				break
			}
		}
		if low <= high {
			// Require that no more than allow midpoints fall outside
			// [low, high] (the falseticker budget).
			outside := 0
			for _, iv := range ivals {
				if iv.Mid < low || iv.Mid > high {
					outside++
				}
			}
			if outside <= allow {
				found = true
				break
			}
		}
	}
	if !found {
		return nil
	}

	var survivors []int
	for i, iv := range ivals {
		if iv.Hi >= low && iv.Lo <= high {
			survivors = append(survivors, i)
		}
	}
	return survivors
}

// ClusterPrune prunes a survivor set by select jitter per RFC 5905
// §11.2.2: while more than nmin survive, the entry whose midpoint is
// most distant from the others (largest RMS distance) is discarded if
// its select jitter exceeds the smallest per-source jitter — pruning
// stops once the spread between survivors is within the noise of the
// best source. mids and jitters are parallel slices (seconds); the
// returned kept indexes index into them, in input order.
func ClusterPrune(mids, jitters []float64, nmin int) []int {
	kept := make([]int, len(mids))
	for i := range kept {
		kept[i] = i
	}
	for len(kept) > nmin {
		worst, worstJit := -1, -1.0
		minSrcJit := math.Inf(1)
		for a, i := range kept {
			var sum float64
			for b, j := range kept {
				if a == b {
					continue
				}
				diff := mids[i] - mids[j]
				sum += diff * diff
			}
			selJit := math.Sqrt(sum / float64(len(kept)-1))
			if selJit > worstJit {
				worstJit, worst = selJit, a
			}
			if jitters[i] < minSrcJit {
				minSrcJit = jitters[i]
			}
		}
		if worstJit <= minSrcJit {
			break
		}
		kept = append(kept[:worst], kept[worst+1:]...)
	}
	return kept
}

// minClusterSurvivors is NMIN: cluster pruning stops at this many
// survivors.
const minClusterSurvivors = 3

// Selection is the outcome of SelectCombine.
type Selection struct {
	// Offset is the combined offset estimate, valid when OK.
	Offset time.Duration
	OK     bool
	// Survivors and Falsetickers index into the samples passed to
	// SelectCombine. Sources pruned by clustering appear in neither.
	Survivors    []int
	Falsetickers []int
	// NoConsensus reports that Marzullo found no majority clique; the
	// result then either fell back to the dominant-score source
	// (OK true, one survivor) or gave up (OK false).
	NoConsensus bool
}

// halfwidth is the correctness-interval halfwidth of a sample: half
// the round-trip delay (the four-timestamp offset error bound) plus
// the server's root distance contribution, floored at MinHalfwidth.
func (p *Pool) halfwidth(s exchange.Sample) float64 {
	h := s.Delay.Seconds()/2 + s.RootDelay.Seconds()/2 + s.RootDisp.Seconds()
	if min := p.cfg.MinHalfwidth.Seconds(); h < min {
		h = min
	}
	return h
}

// SelectCombine runs Marzullo intersection plus cluster pruning over
// the samples (sample i came from pool slot srcIdx[i]) and combines
// the surviving offsets into one estimate, weighted by inverse
// interval halfwidth. Flagged falsetickers accumulate score demotion
// in the pool; survivors decay theirs.
//
// When no majority clique exists the result depends on the pool's
// memory: if the top-scoring sampled source dominates the runner-up
// by fallbackMargin (earned in earlier majority rounds), its sample
// alone is used — this is what lets a client keep synchronizing when
// a pool degrades to one good source plus one falseticker. Otherwise
// the round is ambiguous and OK is false: no offset is offered rather
// than a poisoned average. Fallback rounds never mark falsetickers —
// there is no majority evidence.
func (p *Pool) SelectCombine(samples []exchange.Sample, srcIdx []int) Selection {
	if len(samples) == 0 {
		return Selection{}
	}
	ivals := make([]Interval, len(samples))
	for i, s := range samples {
		h := p.halfwidth(s)
		mid := s.Offset.Seconds()
		ivals[i] = Interval{Lo: mid - h, Mid: mid, Hi: mid + h}
	}
	surv := Marzullo(ivals)
	if surv == nil {
		return p.fallbackSelection(samples, srcIdx)
	}

	sel := Selection{OK: true, Survivors: surv}
	inSurv := make(map[int]bool, len(surv))
	for _, i := range surv {
		inSurv[i] = true
	}
	for i := range samples {
		if !inSurv[i] {
			sel.Falsetickers = append(sel.Falsetickers, i)
			p.markFalseticker(srcIdx[i])
		}
	}
	for _, i := range surv {
		p.markSurvivor(srcIdx[i])
	}

	// Cluster pruning over the survivors, using each source's smoothed
	// jitter (falling back to the interval halfwidth for sources
	// without history).
	mids := make([]float64, len(surv))
	jits := make([]float64, len(surv))
	p.mu.Lock()
	for k, i := range surv {
		mids[k] = ivals[i].Mid
		jits[k] = p.srcs[srcIdx[i]].jitter
		if jits[k] == 0 {
			jits[k] = p.halfwidth(samples[i])
		}
	}
	p.mu.Unlock()
	keptK := ClusterPrune(mids, jits, minClusterSurvivors)
	kept := make([]int, len(keptK))
	for a, k := range keptK {
		kept[a] = surv[k]
	}
	sel.Survivors = kept

	// Combine: weighted average by inverse halfwidth (the tighter the
	// correctness interval, the more the sample counts).
	var num, den float64
	for _, i := range kept {
		w := 1 / p.halfwidth(samples[i])
		num += w * ivals[i].Mid
		den += w
	}
	sel.Offset = time.Duration(num / den * float64(time.Second))
	return sel
}

// fallbackSelection resolves a no-majority round using accumulated
// source scores.
func (p *Pool) fallbackSelection(samples []exchange.Sample, srcIdx []int) Selection {
	now := p.now()
	p.mu.Lock()
	best, bestScore, runnerUp := -1, 0.0, 0.0
	for i := range samples {
		sc := p.srcs[srcIdx[i]].score(now)
		if best < 0 || sc > bestScore {
			if best >= 0 && bestScore > runnerUp {
				runnerUp = bestScore
			}
			best, bestScore = i, sc
		} else if sc > runnerUp {
			runnerUp = sc
		}
	}
	p.mu.Unlock()
	if best < 0 || bestScore < runnerUp*fallbackMargin || bestScore == 0 {
		return Selection{NoConsensus: true}
	}
	return Selection{
		OK:          true,
		NoConsensus: true,
		Offset:      samples[best].Offset,
		Survivors:   []int{best},
	}
}
