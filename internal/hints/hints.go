// Package hints defines the wireless link-layer hints MNTP consumes —
// Received Signal Strength Indication (RSSI), noise level, and the SNR
// margin derived from them (§4.1 of the paper) — together with the
// favorable-channel thresholds of §4.2 and parsers for the host
// utilities the paper names as hint sources (`airport` on macOS,
// `iwconfig` on Linux).
package hints

import (
	"fmt"
	"strconv"
	"strings"
)

// Hints is one reading of the wireless channel.
type Hints struct {
	// RSSI is the received signal strength in dBm.
	RSSI float64
	// Noise is the noise level in dBm.
	Noise float64
}

// SNRMargin returns the signal-to-noise margin in dB, defined by the
// paper as RSSI − Noise.
func (h Hints) SNRMargin() float64 { return h.RSSI - h.Noise }

// Provider supplies current channel hints. The simulated channel
// (internal/wireless) and the host-utility parsers both satisfy it.
// The paper notes that the only support MNTP needs from a host is
// permission to measure these hints.
type Provider interface {
	Hints() Hints
}

// ProviderFunc adapts a function to Provider.
type ProviderFunc func() Hints

// Hints implements Provider.
func (f ProviderFunc) Hints() Hints { return f() }

// Static is a Provider that always reports the same hints; wired
// scenarios use a permanently favorable Static provider so the same
// MNTP code runs unchanged.
type Static struct{ H Hints }

// Hints implements Provider.
func (s Static) Hints() Hints { return s.H }

// Thresholds are the favorable-channel gates: a reading is favorable
// when RSSI exceeds MinRSSI, noise is below MaxNoise and the SNR
// margin is at least MinSNR.
type Thresholds struct {
	MinRSSI  float64 // dBm, exclusive lower bound on RSSI
	MaxNoise float64 // dBm, exclusive upper bound on noise
	MinSNR   float64 // dB, inclusive lower bound on SNR margin
}

// Default returns the paper's baseline thresholds (§4.2): RSSI greater
// than −75 dBm, noise less than −70 dBm, SNR margin at least 20 dB.
func Default() Thresholds {
	return Thresholds{MinRSSI: -75, MaxNoise: -70, MinSNR: 20}
}

// Favorable reports whether h satisfies all three gates.
func (t Thresholds) Favorable(h Hints) bool {
	return h.RSSI > t.MinRSSI && h.Noise < t.MaxNoise && h.SNRMargin() >= t.MinSNR
}

// AlwaysFavorable is a Static provider comfortably inside the default
// thresholds, for wired scenarios and tests.
var AlwaysFavorable = Static{H: Hints{RSSI: -50, Noise: -95}}

// ParseAirport extracts hints from `airport -I` output on macOS. The
// relevant lines look like:
//
//	agrCtlRSSI: -54
//	agrCtlNoise: -92
func ParseAirport(out string) (Hints, error) {
	var h Hints
	var haveRSSI, haveNoise bool
	for _, line := range strings.Split(out, "\n") {
		key, val, ok := strings.Cut(strings.TrimSpace(line), ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		switch strings.TrimSpace(key) {
		case "agrCtlRSSI":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Hints{}, fmt.Errorf("hints: bad airport RSSI %q: %v", val, err)
			}
			h.RSSI, haveRSSI = v, true
		case "agrCtlNoise":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Hints{}, fmt.Errorf("hints: bad airport noise %q: %v", val, err)
			}
			h.Noise, haveNoise = v, true
		}
	}
	if !haveRSSI || !haveNoise {
		return Hints{}, fmt.Errorf("hints: airport output missing RSSI/noise")
	}
	return h, nil
}

// ParseIwconfig extracts hints from `iwconfig <if>` output on Linux.
// The relevant fragment looks like:
//
//	Link Quality=58/70  Signal level=-52 dBm  Noise level=-95 dBm
//
// Some drivers omit the noise level; those interfaces cannot supply
// MNTP hints and an error is returned.
func ParseIwconfig(out string) (Hints, error) {
	var h Hints
	var haveRSSI, haveNoise bool
	fields := strings.FieldsFunc(out, func(r rune) bool { return r == ' ' || r == '\n' || r == '\t' })
	for i := 0; i < len(fields); i++ {
		f := fields[i]
		// Patterns appear as "level=-52" following "Signal"/"Noise".
		if eq := strings.Index(f, "level="); eq >= 0 && i > 0 {
			v, err := strconv.ParseFloat(f[eq+len("level="):], 64)
			if err != nil {
				continue
			}
			switch fields[i-1] {
			case "Signal":
				h.RSSI, haveRSSI = v, true
			case "Noise":
				h.Noise, haveNoise = v, true
			}
		}
	}
	if !haveRSSI {
		return Hints{}, fmt.Errorf("hints: iwconfig output missing signal level")
	}
	if !haveNoise {
		return Hints{}, fmt.Errorf("hints: iwconfig output missing noise level")
	}
	return h, nil
}
