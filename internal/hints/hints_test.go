package hints

import (
	"testing"
	"testing/quick"
)

func TestSNRMargin(t *testing.T) {
	h := Hints{RSSI: -55, Noise: -92}
	if got := h.SNRMargin(); got != 37 {
		t.Errorf("SNR = %v, want 37", got)
	}
}

func TestDefaultThresholds(t *testing.T) {
	th := Default()
	cases := []struct {
		name string
		h    Hints
		want bool
	}{
		{"comfortably good", Hints{RSSI: -50, Noise: -95}, true},
		{"rssi too low", Hints{RSSI: -80, Noise: -95}, false},
		{"rssi exactly at bound", Hints{RSSI: -75, Noise: -95}, false}, // exclusive
		{"noise too high", Hints{RSSI: -50, Noise: -65}, false},
		{"noise exactly at bound", Hints{RSSI: -50, Noise: -70}, false}, // exclusive
		{"snr margin below 20", Hints{RSSI: -72, Noise: -89}, false},    // SNR 17
		{"snr margin exactly 20", Hints{RSSI: -71, Noise: -91}, true},   // inclusive
	}
	for _, c := range cases {
		if got := th.Favorable(c.h); got != c.want {
			t.Errorf("%s: Favorable(%+v) = %v, want %v", c.name, c.h, got, c.want)
		}
	}
}

func TestAlwaysFavorable(t *testing.T) {
	if !Default().Favorable(AlwaysFavorable.Hints()) {
		t.Error("AlwaysFavorable must pass the default thresholds")
	}
}

func TestProviderFunc(t *testing.T) {
	p := ProviderFunc(func() Hints { return Hints{RSSI: -60, Noise: -90} })
	if got := p.Hints().RSSI; got != -60 {
		t.Errorf("ProviderFunc RSSI = %v", got)
	}
}

const airportSample = `     agrCtlRSSI: -54
     agrExtRSSI: 0
    agrCtlNoise: -92
    agrExtNoise: 0
          state: running
        op mode: station
     lastTxRate: 867
        maxRate: 867
           SSID: lab-net
            MCS: 9
        channel: 153,80`

func TestParseAirport(t *testing.T) {
	h, err := ParseAirport(airportSample)
	if err != nil {
		t.Fatal(err)
	}
	if h.RSSI != -54 || h.Noise != -92 {
		t.Errorf("parsed %+v", h)
	}
	if !Default().Favorable(h) {
		t.Error("sample reading should be favorable")
	}
}

func TestParseAirportMissing(t *testing.T) {
	if _, err := ParseAirport("state: running\n"); err == nil {
		t.Error("missing fields accepted")
	}
	if _, err := ParseAirport("agrCtlRSSI: x\nagrCtlNoise: -90\n"); err == nil {
		t.Error("garbage RSSI accepted")
	}
}

const iwconfigSample = `wlan0     IEEE 802.11  ESSID:"lab-net"
          Mode:Managed  Frequency:5.745 GHz  Access Point: AA:BB:CC:DD:EE:FF
          Bit Rate=866.7 Mb/s   Tx-Power=22 dBm
          Link Quality=58/70  Signal level=-52 dBm  Noise level=-95 dBm
          Rx invalid nwid:0  Rx invalid crypt:0  Rx invalid frag:0`

func TestParseIwconfig(t *testing.T) {
	h, err := ParseIwconfig(iwconfigSample)
	if err != nil {
		t.Fatal(err)
	}
	if h.RSSI != -52 || h.Noise != -95 {
		t.Errorf("parsed %+v", h)
	}
}

func TestParseIwconfigMissingNoise(t *testing.T) {
	out := `wlan0  Link Quality=58/70  Signal level=-52 dBm`
	if _, err := ParseIwconfig(out); err == nil {
		t.Error("missing noise accepted")
	}
}

// Property: Favorable implies each individual gate holds.
func TestQuickFavorableImpliesGates(t *testing.T) {
	th := Default()
	f := func(rssiRaw, noiseRaw int16) bool {
		h := Hints{RSSI: float64(rssiRaw % 120), Noise: float64(noiseRaw % 120)}
		if !th.Favorable(h) {
			return true
		}
		return h.RSSI > th.MinRSSI && h.Noise < th.MaxNoise && h.SNRMargin() >= th.MinSNR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
