package sntp

import (
	"errors"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/netsim"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// flakyTransport fails the first n exchanges, then answers with a
// fixed server offset.
type flakyTransport struct {
	failures    int
	serverAhead time.Duration
	clk         clock.Clock
	calls       int
}

func (f *flakyTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	f.calls++
	if f.calls <= f.failures {
		return nil, time.Time{}, errors.New("lost")
	}
	now := f.clk.Now()
	srvNow := now.Add(f.serverAhead)
	resp := &ntppkt.Packet{
		Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
		Stratum: 2, Origin: req.Transmit,
		Receive: ntptime.FromTime(srvNow), Transmit: ntptime.FromTime(srvNow),
	}
	return resp, now, nil
}

type countingSleeper struct {
	slept []time.Duration
}

func (c *countingSleeper) Sleep(d time.Duration) { c.slept = append(c.slept, d) }

type fixedClock struct{ t time.Time }

func (f *fixedClock) Now() time.Time { return f.t }

func TestQueryRetriesThenSucceeds(t *testing.T) {
	clk := &fixedClock{t: epoch}
	tr := &flakyTransport{failures: 2, serverAhead: 80 * time.Millisecond, clk: clk}
	sl := &countingSleeper{}
	c := New(clk, tr, sl, Config{Server: "s", Retries: 3, RetryWait: time.Second})
	s, err := c.Query()
	if err != nil {
		t.Fatal(err)
	}
	if tr.calls != 3 {
		t.Errorf("calls = %d, want 3", tr.calls)
	}
	if len(sl.slept) != 2 {
		t.Errorf("retry sleeps = %d, want 2", len(sl.slept))
	}
	if d := s.Offset - 80*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("offset = %v", s.Offset)
	}
}

func TestQueryExhaustsRetries(t *testing.T) {
	clk := &fixedClock{t: epoch}
	tr := &flakyTransport{failures: 100, clk: clk}
	c := New(clk, tr, &countingSleeper{}, Config{Server: "s", Retries: 3})
	if _, err := c.Query(); err == nil {
		t.Fatal("expected failure")
	}
	if tr.calls != 4 { // initial + 3 retries
		t.Errorf("calls = %d, want 4", tr.calls)
	}
}

func TestWindowsMobileNoRetries(t *testing.T) {
	clk := &fixedClock{t: epoch}
	tr := &flakyTransport{failures: 1, clk: clk}
	c := New(clk, tr, &countingSleeper{}, WindowsMobileConfig("s"))
	if _, err := c.Query(); err == nil {
		t.Fatal("expected failure with zero retries")
	}
	if tr.calls != 1 {
		t.Errorf("calls = %d, want 1", tr.calls)
	}
}

func TestSyncOnceStepsAdjustableClock(t *testing.T) {
	mt := time.Duration(0)
	sim := clock.NewSim(clock.Config{InitialOffset: -300 * time.Millisecond, Seed: 1},
		epoch, func() time.Duration { return mt })
	tr := &flakyTransport{serverAhead: 0, clk: clock.NewTrue(epoch, func() time.Duration { return mt })}
	// The transport answers relative to true time, so the fast/slow
	// client measures its own error. Use the sim clock for T1/T4.
	tr.clk = clock.NewTrue(epoch, func() time.Duration { return mt })
	c := New(sim, &trueServerTransport{truth: tr.clk, client: sim}, nil, Config{Server: "s"})
	s, updated, err := c.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !updated {
		t.Fatal("clock not updated")
	}
	if d := s.Offset - 300*time.Millisecond; d < -time.Millisecond || d > time.Millisecond {
		t.Errorf("measured offset = %v, want ~300ms", s.Offset)
	}
	if got := sim.TrueOffset(); got < -time.Millisecond || got > time.Millisecond {
		t.Errorf("clock error after sync = %v, want ~0", got)
	}
}

// trueServerTransport serves true time instantly (zero path delay).
type trueServerTransport struct {
	truth  clock.Clock
	client clock.Clock
}

func (tr *trueServerTransport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	now := tr.truth.Now()
	resp := &ntppkt.Packet{
		Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
		Stratum: 1, Origin: req.Transmit,
		Receive: ntptime.FromTime(now), Transmit: ntptime.FromTime(now),
	}
	return resp, tr.client.Now(), nil
}

func TestAndroidUpdateThreshold(t *testing.T) {
	mt := time.Duration(0)
	trueNow := func() time.Duration { return mt }
	// 2 s fast: below Android's 5000 ms threshold → no update.
	sim := clock.NewSim(clock.Config{InitialOffset: 2 * time.Second, Seed: 1}, epoch, trueNow)
	tr := &trueServerTransport{truth: clock.NewTrue(epoch, trueNow), client: sim}
	c := New(sim, tr, nil, AndroidConfig("s"))
	_, updated, err := c.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Error("sub-threshold offset applied")
	}
	if got := sim.TrueOffset(); got != 2*time.Second {
		t.Errorf("clock changed to %v", got)
	}

	// 8 s fast: above threshold → update.
	sim2 := clock.NewSim(clock.Config{InitialOffset: 8 * time.Second, Seed: 1}, epoch, trueNow)
	tr2 := &trueServerTransport{truth: clock.NewTrue(epoch, trueNow), client: sim2}
	c2 := New(sim2, tr2, nil, AndroidConfig("s"))
	_, updated2, err := c2.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if !updated2 {
		t.Error("above-threshold offset not applied")
	}
	if got := sim2.TrueOffset(); got < -time.Millisecond || got > time.Millisecond {
		t.Errorf("clock error after update = %v", got)
	}
}

func TestSyncOnceNonAdjustableClock(t *testing.T) {
	clk := &fixedClock{t: epoch}
	tr := &flakyTransport{clk: clk}
	c := New(clk, tr, nil, Config{Server: "s"})
	_, updated, err := c.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if updated {
		t.Error("non-adjustable clock reported as updated")
	}
}

// End-to-end through the simulated network: an SNTP client over a
// wired path tracks the reference within a few ms (the paper's wired
// baseline).
func TestSNTPOverSimulatedWiredNetwork(t *testing.T) {
	sched := netsim.NewScheduler(epoch)
	truth := clock.NewTrue(epoch, sched.Now)
	srv := netsim.NewServer("ref", truth, 1, 1)
	net := netsim.NewNetwork(sched)
	net.AddServer(srv, netsim.NewWiredPath(15*time.Millisecond, 2*time.Millisecond, 0, 0, 2))
	sim := clock.NewSim(clock.Config{InitialOffset: 400 * time.Millisecond, SkewPPM: 20, Seed: 3},
		epoch, sched.Now)

	var finalErr time.Duration
	sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: net, Proc: p, Clock: sim}
		c := New(sim, tr, p, Config{Server: "ref"})
		for i := 0; i < 120; i++ { // 10 min at 5 s cadence
			if _, _, err := c.SyncOnce(); err != nil {
				t.Errorf("sync %d: %v", i, err)
				return
			}
			p.Sleep(5 * time.Second)
		}
		finalErr = sim.TrueOffset()
	})
	sched.Run()
	if finalErr < -10*time.Millisecond || finalErr > 10*time.Millisecond {
		t.Errorf("final clock error = %v, want within 10ms", finalErr)
	}
}
