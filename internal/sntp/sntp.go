// Package sntp implements a Simple Network Time Protocol client per
// RFC 4330 semantics: one exchange yields one offset which is applied
// to the local clock directly, with none of NTP's filtering machinery
// ("SNTP uses clock offset to update the local clock directly and none
// of the time-tested filtering algorithms", §3.4 of the paper).
//
// The package also encodes the vendor-specific client behaviours the
// paper documents in §2: Android's daily poll with three retries and a
// 5000 ms update threshold, and Windows Mobile's weekly poll with no
// retries.
package sntp

import (
	"errors"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
)

// Config parameterizes a Client.
type Config struct {
	// Server is the reference to query (a pool name resolves to a
	// random member per request, as mobile clients using
	// 0.pool.ntp.org experience).
	Server string
	// Version is the NTP protocol version in requests (default 4).
	Version uint8
	// Retries is how many additional attempts follow a failed
	// exchange within one Query call (Android uses 3; Windows Mobile
	// 0).
	Retries int
	// RetryWait is the sleeper-provided pause between retries.
	RetryWait time.Duration
	// UpdateThreshold suppresses clock updates smaller than this
	// magnitude (Android: 5000 ms — "updates the system time only if
	// the estimate differs by more than 5000ms", §2). Zero applies
	// every accepted offset.
	UpdateThreshold time.Duration
}

// Sleeper abstracts waiting so the client runs in both virtual and
// wall time. netsim.Proc satisfies it; wall-time deployments use
// WallSleeper.
type Sleeper interface {
	Sleep(d time.Duration)
}

// WallSleeper sleeps in real time.
type WallSleeper struct{}

// Sleep implements Sleeper.
func (WallSleeper) Sleep(d time.Duration) { time.Sleep(d) }

// Client is an SNTP client.
type Client struct {
	Clock     clock.Clock
	Transport exchange.Transport
	Sleeper   Sleeper
	Config    Config
}

// New creates an SNTP client with defaults applied.
func New(clk clock.Clock, tr exchange.Transport, sl Sleeper, cfg Config) *Client {
	if cfg.Version == 0 {
		cfg.Version = ntppkt.Version4
	}
	if cfg.RetryWait == 0 {
		cfg.RetryWait = 2 * time.Second
	}
	return &Client{Clock: clk, Transport: tr, Sleeper: sl, Config: cfg}
}

// AndroidConfig returns the Android SNTP behaviour the paper extracted
// from the platform codebase (§2): three retries, 5 s update
// threshold. The daily poll cadence is the caller's loop interval.
func AndroidConfig(server string) Config {
	return Config{Server: server, Retries: 3, UpdateThreshold: 5000 * time.Millisecond}
}

// WindowsMobileConfig returns the Windows Mobile behaviour (§2): no
// retries; the weekly cadence is the caller's loop interval.
func WindowsMobileConfig(server string) Config {
	return Config{Server: server, Retries: 0}
}

// Query performs one measurement, retrying per the configuration. It
// returns the first successful sample. A kiss-of-death reply aborts
// the retry loop immediately: retrying into a rate limit is exactly
// what the RATE code forbids (RFC 4330 §8).
func (c *Client) Query() (exchange.Sample, error) {
	var lastErr error
	for attempt := 0; attempt <= c.Config.Retries; attempt++ {
		if attempt > 0 && c.Sleeper != nil && c.Config.RetryWait > 0 {
			c.Sleeper.Sleep(c.Config.RetryWait)
		}
		s, err := exchange.Measure(c.Clock, c.Transport, c.Config.Server, c.Config.Version, true)
		if err == nil {
			return s, nil
		}
		lastErr = err
		if errors.Is(err, ntppkt.ErrKissOfDeath) {
			break
		}
	}
	return exchange.Sample{}, lastErr
}

// SyncOnce queries and, if the clock is adjustable and the offset
// magnitude passes the update threshold, steps the clock by the
// measured offset — SNTP's direct update. It returns the sample and
// whether the clock was updated.
func (c *Client) SyncOnce() (exchange.Sample, bool, error) {
	s, err := c.Query()
	if err != nil {
		return exchange.Sample{}, false, err
	}
	adj, ok := c.Clock.(clock.Adjustable)
	if !ok {
		return s, false, nil
	}
	if thr := c.Config.UpdateThreshold; thr > 0 {
		if s.Offset > -thr && s.Offset < thr {
			return s, false, nil
		}
	}
	adj.Step(s.Offset)
	return s, true, nil
}
