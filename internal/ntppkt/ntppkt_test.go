package ntppkt

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"mntp/internal/ntptime"
)

func samplePacket() *Packet {
	return &Packet{
		Leap:      LeapNone,
		Version:   Version4,
		Mode:      ModeServer,
		Stratum:   2,
		Poll:      6,
		Precision: -23,
		RootDelay: ntptime.DurationToShort(30 * time.Millisecond),
		RootDisp:  ntptime.DurationToShort(5 * time.Millisecond),
		RefID:     [4]byte{192, 0, 2, 1},
		RefTime:   ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC)),
		Origin:    ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 0, time.UTC)),
		Receive:   ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 50000000, time.UTC)),
		Transmit:  ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 50100000, time.UTC)),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := samplePacket()
	wire := want.Encode(nil)
	if len(wire) != HeaderLen {
		t.Fatalf("encoded length = %d, want %d", len(wire), HeaderLen)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeFirstOctet(t *testing.T) {
	p := &Packet{Leap: LeapNotSync, Version: Version4, Mode: ModeClient}
	wire := p.Encode(nil)
	// LI=3 (11), VN=4 (100), mode=3 (011) -> 0b11100011 = 0xe3.
	if wire[0] != 0xe3 {
		t.Errorf("first octet = %#x, want 0xe3", wire[0])
	}
}

func TestDecodeShortPacket(t *testing.T) {
	if _, err := Decode(make([]byte, 47)); err != ErrShortPacket {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

// Regression for the silent-trailer bug: Decode used to ignore all
// bytes past the header, so truncated extension fields and arbitrary
// forged trailers decoded as clean packets. Strict parsing rejects
// anything that is neither a well-formed extension field nor a legacy
// MAC.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	base := samplePacket().Encode(nil)
	cases := []struct {
		name    string
		trailer []byte
		want    error
	}{
		{"8 garbage bytes", []byte{1, 2, 3, 4, 5, 6, 7, 8}, ErrTrailingBytes},
		{"truncated EF header", []byte{0x01, 0x04, 0x00}, ErrTrailingBytes},
		{"EF length past end", append([]byte{0x01, 0x04, 0x00, 0x40}, make([]byte, 28)...), ErrExtTruncated},
		{"EF length below minimum", append([]byte{0x01, 0x04, 0x00, 0x08}, make([]byte, 28)...), ErrExtLength},
		{"EF length unaligned", append([]byte{0x01, 0x04, 0x00, 0x12}, make([]byte, 28)...), ErrExtLength},
		{"16-byte trailer is not a MAC", make([]byte, 16), ErrTrailingBytes},
	}
	for _, c := range cases {
		if _, err := Decode(append(append([]byte{}, base...), c.trailer...)); !errors.Is(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func TestDecodeExtensionFields(t *testing.T) {
	p := samplePacket()
	p.Ext = []ExtField{
		{Type: ExtUniqueIdentifier, Value: bytes.Repeat([]byte{0xAB}, 32)},
		{Type: ExtNTSCookie, Value: bytes.Repeat([]byte{0xCD}, 104)},
	}
	wire := p.Encode(nil)
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ext) != 2 ||
		got.Ext[0].Type != ExtUniqueIdentifier || !bytes.Equal(got.Ext[0].Value, p.Ext[0].Value) ||
		got.Ext[1].Type != ExtNTSCookie || !bytes.Equal(got.Ext[1].Value, p.Ext[1].Value) {
		t.Fatalf("extension fields did not round-trip: %+v", got.Ext)
	}
	if out := got.Encode(nil); !bytes.Equal(out, wire) {
		t.Fatalf("re-encode differs:\n in  %x\n out %x", wire, out)
	}
	if ef, i := got.FindExt(ExtNTSCookie); i != 1 || ef == nil {
		t.Fatalf("FindExt(cookie) = %v, %d", ef, i)
	}
	if ef, i := got.FindExt(ExtNTSAuthenticator); i != -1 || ef != nil {
		t.Fatalf("FindExt(absent) = %v, %d", ef, i)
	}
}

// A short extension-field body is padded up to the RFC 7822 minimum
// of 16 octets on encode, and the padding survives a round trip
// inside Value so the re-encode is byte-identical.
func TestEncodePadsShortExtension(t *testing.T) {
	p := samplePacket()
	// 28-byte minimum trailer rule means a lone 16-byte EF cannot be
	// parsed back (it reads as a MAC-sized trailer), so a second,
	// large field keeps the packet parseable.
	p.Ext = []ExtField{
		{Type: 0x0042, Value: []byte{1, 2, 3}},
		{Type: 0x0043, Value: make([]byte, 28)},
	}
	wire := p.Encode(nil)
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ext[0].Value) != MinExtLen-ExtHeaderLen {
		t.Fatalf("padded body length = %d, want %d", len(got.Ext[0].Value), MinExtLen-ExtHeaderLen)
	}
	if out := got.Encode(nil); !bytes.Equal(out, wire) {
		t.Fatalf("re-encode differs after padding round trip")
	}
}

func TestDecodeLegacyMAC(t *testing.T) {
	for _, n := range []int{4, 20, 24} {
		wire := samplePacket().Encode(nil)
		mac := bytes.Repeat([]byte{0x5A}, n)
		wire = append(wire, mac...)
		got, err := Decode(wire)
		if err != nil {
			t.Fatalf("MAC length %d rejected: %v", n, err)
		}
		if !bytes.Equal(got.LegacyMAC, mac) {
			t.Fatalf("MAC length %d not captured", n)
		}
		if out := got.Encode(nil); !bytes.Equal(out, wire) {
			t.Fatalf("MAC length %d: re-encode differs", n)
		}
	}
}

func TestDecodeExtensionThenMAC(t *testing.T) {
	p := samplePacket()
	p.Ext = []ExtField{{Type: 0x0042, Value: make([]byte, 28)}}
	wire := p.Encode(nil)
	wire = append(wire, bytes.Repeat([]byte{9}, 20)...)
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Ext) != 1 || len(got.LegacyMAC) != 20 {
		t.Fatalf("ext=%d mac=%d, want 1 and 20", len(got.Ext), len(got.LegacyMAC))
	}
}

func TestDecodeTooManyExtensions(t *testing.T) {
	p := samplePacket()
	for i := 0; i <= MaxExtFields; i++ {
		p.Ext = append(p.Ext, ExtField{Type: 0x0042, Value: make([]byte, 28)})
	}
	if _, err := Decode(p.Encode(nil)); !errors.Is(err, ErrExtCount) {
		t.Fatalf("err = %v, want ErrExtCount", err)
	}
}

func TestSNTPClientShape(t *testing.T) {
	tx := ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC))
	p := NewSNTPClient(Version4, tx)
	wire := p.Encode(nil)
	// Everything except the first octet and the transmit timestamp must
	// be zero (the paper's description of SNTP packets, §2).
	if !bytes.Equal(wire[1:40], make([]byte, 39)) {
		t.Errorf("SNTP client packet has non-zero middle bytes: %x", wire[1:40])
	}
	dec, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsSNTPRequest() {
		t.Error("minimal SNTP request not classified as SNTP")
	}
	if dec.Transmit != tx {
		t.Error("transmit timestamp lost")
	}
}

func TestFullClientNotClassifiedSNTP(t *testing.T) {
	p := NewClient(Version4, ntptime.FromTime(time.Now()))
	p.Poll = 6
	if p.IsSNTPRequest() {
		t.Error("full NTP client misclassified as SNTP")
	}
}

func TestValidateServerReply(t *testing.T) {
	origin := ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC))
	good := func() *Packet {
		p := samplePacket()
		p.Origin = origin
		return p
	}

	if err := good().ValidateServerReply(origin); err != nil {
		t.Errorf("valid reply rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Packet)
		want   error
	}{
		{"bad version", func(p *Packet) { p.Version = 2 }, ErrBadVersion},
		{"bad mode", func(p *Packet) { p.Mode = ModeClient }, ErrBadMode},
		{"kiss of death", func(p *Packet) { p.Stratum = 0; p.RefID = KissRate }, ErrKissOfDeath},
		{"high stratum", func(p *Packet) { p.Stratum = 16 }, ErrUnsynchronized},
		{"leap not sync", func(p *Packet) { p.Leap = LeapNotSync }, ErrUnsynchronized},
		{"zero transmit", func(p *Packet) { p.Transmit = 0 }, ErrZeroTransmit},
		{"bogus origin", func(p *Packet) { p.Origin = origin + 1 }, ErrBogusOrigin},
	}
	for _, c := range cases {
		p := good()
		c.mutate(p)
		err := p.ValidateServerReply(origin)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errorsIs(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Property: any 48-byte buffer decodes, re-encodes to the same bytes
// except the reserved high version bit patterns, and field extraction
// is consistent.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(raw [HeaderLen]byte) bool {
		p, err := Decode(raw[:])
		if err != nil {
			return false
		}
		out := p.Encode(nil)
		return bytes.Equal(out, raw[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct -> wire -> struct is the identity for all field
// values representable on the wire.
func TestQuickStructRoundTrip(t *testing.T) {
	f := func(leap, mode uint8, stratum uint8, poll, prec int8,
		rd, rdisp uint32, refid [4]byte, rt, or, rx, tx uint64) bool {
		want := Packet{
			Leap: Leap(leap % 4), Version: Version4, Mode: Mode(mode % 8),
			Stratum: stratum, Poll: poll, Precision: prec,
			RootDelay: ntptime.Short(rd), RootDisp: ntptime.Short(rdisp),
			RefID:   refid,
			RefTime: ntptime.Timestamp(rt), Origin: ntptime.Timestamp(or),
			Receive: ntptime.Timestamp(rx), Transmit: ntptime.Timestamp(tx),
		}
		var got Packet
		if err := got.DecodeInto(want.Encode(nil)); err != nil {
			return false
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, HeaderLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Encode(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	wire := samplePacket().Encode(nil)
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeInto(wire); err != nil {
			b.Fatal(err)
		}
	}
}
