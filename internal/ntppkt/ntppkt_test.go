package ntppkt

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mntp/internal/ntptime"
)

func samplePacket() *Packet {
	return &Packet{
		Leap:      LeapNone,
		Version:   Version4,
		Mode:      ModeServer,
		Stratum:   2,
		Poll:      6,
		Precision: -23,
		RootDelay: ntptime.DurationToShort(30 * time.Millisecond),
		RootDisp:  ntptime.DurationToShort(5 * time.Millisecond),
		RefID:     [4]byte{192, 0, 2, 1},
		RefTime:   ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC)),
		Origin:    ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 0, time.UTC)),
		Receive:   ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 50000000, time.UTC)),
		Transmit:  ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 1, 50100000, time.UTC)),
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := samplePacket()
	wire := want.Encode(nil)
	if len(wire) != HeaderLen {
		t.Fatalf("encoded length = %d, want %d", len(wire), HeaderLen)
	}
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestEncodeFirstOctet(t *testing.T) {
	p := &Packet{Leap: LeapNotSync, Version: Version4, Mode: ModeClient}
	wire := p.Encode(nil)
	// LI=3 (11), VN=4 (100), mode=3 (011) -> 0b11100011 = 0xe3.
	if wire[0] != 0xe3 {
		t.Errorf("first octet = %#x, want 0xe3", wire[0])
	}
}

func TestDecodeShortPacket(t *testing.T) {
	if _, err := Decode(make([]byte, 47)); err != ErrShortPacket {
		t.Errorf("err = %v, want ErrShortPacket", err)
	}
}

func TestDecodeIgnoresTrailingBytes(t *testing.T) {
	want := samplePacket()
	wire := want.Encode(nil)
	wire = append(wire, 1, 2, 3, 4, 5, 6, 7, 8) // extension/MAC bytes
	got, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *want {
		t.Error("trailing bytes changed decode result")
	}
}

func TestSNTPClientShape(t *testing.T) {
	tx := ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC))
	p := NewSNTPClient(Version4, tx)
	wire := p.Encode(nil)
	// Everything except the first octet and the transmit timestamp must
	// be zero (the paper's description of SNTP packets, §2).
	if !bytes.Equal(wire[1:40], make([]byte, 39)) {
		t.Errorf("SNTP client packet has non-zero middle bytes: %x", wire[1:40])
	}
	dec, err := Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.IsSNTPRequest() {
		t.Error("minimal SNTP request not classified as SNTP")
	}
	if dec.Transmit != tx {
		t.Error("transmit timestamp lost")
	}
}

func TestFullClientNotClassifiedSNTP(t *testing.T) {
	p := NewClient(Version4, ntptime.FromTime(time.Now()))
	p.Poll = 6
	if p.IsSNTPRequest() {
		t.Error("full NTP client misclassified as SNTP")
	}
}

func TestValidateServerReply(t *testing.T) {
	origin := ntptime.FromTime(time.Date(2016, 11, 14, 9, 0, 0, 0, time.UTC))
	good := func() *Packet {
		p := samplePacket()
		p.Origin = origin
		return p
	}

	if err := good().ValidateServerReply(origin); err != nil {
		t.Errorf("valid reply rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Packet)
		want   error
	}{
		{"bad version", func(p *Packet) { p.Version = 2 }, ErrBadVersion},
		{"bad mode", func(p *Packet) { p.Mode = ModeClient }, ErrBadMode},
		{"kiss of death", func(p *Packet) { p.Stratum = 0; p.RefID = KissRate }, ErrKissOfDeath},
		{"high stratum", func(p *Packet) { p.Stratum = 16 }, ErrUnsynchronized},
		{"leap not sync", func(p *Packet) { p.Leap = LeapNotSync }, ErrUnsynchronized},
		{"zero transmit", func(p *Packet) { p.Transmit = 0 }, ErrZeroTransmit},
		{"bogus origin", func(p *Packet) { p.Origin = origin + 1 }, ErrBogusOrigin},
	}
	for _, c := range cases {
		p := good()
		c.mutate(p)
		err := p.ValidateServerReply(origin)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if !errorsIs(err, c.want) {
			t.Errorf("%s: err = %v, want %v", c.name, err, c.want)
		}
	}
}

func errorsIs(err, target error) bool {
	for err != nil {
		if err == target {
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// Property: any 48-byte buffer decodes, re-encodes to the same bytes
// except the reserved high version bit patterns, and field extraction
// is consistent.
func TestQuickWireRoundTrip(t *testing.T) {
	f := func(raw [HeaderLen]byte) bool {
		p, err := Decode(raw[:])
		if err != nil {
			return false
		}
		out := p.Encode(nil)
		return bytes.Equal(out, raw[:])
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: struct -> wire -> struct is the identity for all field
// values representable on the wire.
func TestQuickStructRoundTrip(t *testing.T) {
	f := func(leap, mode uint8, stratum uint8, poll, prec int8,
		rd, rdisp uint32, refid [4]byte, rt, or, rx, tx uint64) bool {
		want := Packet{
			Leap: Leap(leap % 4), Version: Version4, Mode: Mode(mode % 8),
			Stratum: stratum, Poll: poll, Precision: prec,
			RootDelay: ntptime.Short(rd), RootDisp: ntptime.Short(rdisp),
			RefID:   refid,
			RefTime: ntptime.Timestamp(rt), Origin: ntptime.Timestamp(or),
			Receive: ntptime.Timestamp(rx), Transmit: ntptime.Timestamp(tx),
		}
		var got Packet
		if err := got.DecodeInto(want.Encode(nil)); err != nil {
			return false
		}
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncode(b *testing.B) {
	p := samplePacket()
	buf := make([]byte, 0, HeaderLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf = p.Encode(buf[:0])
	}
}

func BenchmarkDecode(b *testing.B) {
	wire := samplePacket().Encode(nil)
	var p Packet
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := p.DecodeInto(wire); err != nil {
			b.Fatal(err)
		}
	}
}
