package ntppkt

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that arbitrary byte strings never panic the
// decoder and that anything that decodes re-encodes to the same first
// 48 bytes (the wire format has no don't-care bits).
func FuzzDecode(f *testing.F) {
	f.Add(make([]byte, HeaderLen))
	f.Add(samplePacket().Encode(nil))
	f.Add([]byte{0xe3})
	f.Add(append(samplePacket().Encode(nil), 0xde, 0xad))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if len(data) >= HeaderLen {
				t.Fatalf("48+ bytes failed to decode: %v", err)
			}
			return
		}
		out := p.Encode(nil)
		if !bytes.Equal(out, data[:HeaderLen]) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data[:HeaderLen], out)
		}
	})
}
