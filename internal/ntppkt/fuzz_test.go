package ntppkt

import (
	"bytes"
	"testing"
)

// FuzzDecode checks that arbitrary byte strings never panic the
// decoder and that anything that decodes — header, extension fields
// and legacy MAC included — re-encodes to the identical byte string.
// The seeds cover the existing wire-format corpus (bare headers,
// runts, garbage trailers) plus extension-field and MAC shapes.
func FuzzDecode(f *testing.F) {
	f.Add(make([]byte, HeaderLen))
	f.Add(samplePacket().Encode(nil))
	f.Add([]byte{0xe3})
	f.Add(append(samplePacket().Encode(nil), 0xde, 0xad))
	ext := samplePacket()
	ext.Ext = []ExtField{
		{Type: ExtUniqueIdentifier, Value: bytes.Repeat([]byte{0x11}, 32)},
		{Type: ExtNTSCookie, Value: bytes.Repeat([]byte{0x22}, 104)},
		{Type: ExtNTSAuthenticator, Value: bytes.Repeat([]byte{0x33}, 36)},
	}
	f.Add(ext.Encode(nil))
	f.Add(append(samplePacket().Encode(nil), bytes.Repeat([]byte{0x44}, 20)...)) // legacy MAC
	f.Add(append(samplePacket().Encode(nil), 0x01, 0x04, 0x00, 0x08))            // undersized EF length
	f.Add(append(samplePacket().Encode(nil), 0x01, 0x04, 0xff, 0xfc))            // overlength EF
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			if len(data) == HeaderLen {
				t.Fatalf("bare 48-byte header failed to decode: %v", err)
			}
			return
		}
		out := p.Encode(nil)
		if !bytes.Equal(out, data) {
			t.Fatalf("re-encode mismatch:\n in  %x\n out %x", data, out)
		}
		// Decoding the re-encode must be stable (no don't-care bits
		// anywhere in the accepted wire image).
		q, err := Decode(out)
		if err != nil {
			t.Fatalf("re-encoded packet failed to decode: %v", err)
		}
		if again := q.Encode(nil); !bytes.Equal(again, out) {
			t.Fatalf("second re-encode differs")
		}
	})
}
