// Package ntppkt implements the NTP packet wire format of RFC 5905 §7.3
// (shared by SNTP, RFC 4330). It provides encoding, decoding, field
// validation and the SNTP-style minimal client packet described in the
// MNTP paper (§2): "SNTP sets all fields in an NTP packet to zero except
// the first octet".
package ntppkt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mntp/internal/ntptime"
)

// HeaderLen is the length in bytes of an NTP packet without extensions
// or authentication.
const HeaderLen = 48

// Leap indicator values (RFC 5905 figure 9).
type Leap uint8

const (
	LeapNone    Leap = 0 // no warning
	LeapAddSec  Leap = 1 // last minute of the day has 61 seconds
	LeapDelSec  Leap = 2 // last minute of the day has 59 seconds
	LeapNotSync Leap = 3 // unknown (clock unsynchronized)
)

// Mode values (RFC 5905 figure 10).
type Mode uint8

const (
	ModeReserved  Mode = 0
	ModeSymActive Mode = 1
	ModeSymPassiv Mode = 2
	ModeClient    Mode = 3
	ModeServer    Mode = 4
	ModeBroadcast Mode = 5
	ModeControl   Mode = 6
	ModePrivate   Mode = 7
)

// Version numbers in current use.
const (
	Version3 = 3
	Version4 = 4
)

// Stratum values of note (RFC 5905 figure 11).
const (
	StratumKoD        = 0  // kiss-of-death / unspecified
	StratumPrimary    = 1  // primary server (e.g. GPS, atomic)
	StratumMaxSecond  = 15 // maximum valid secondary stratum
	StratumUnsynchron = 16 // unsynchronized
)

// Common kiss-of-death codes carried in the reference ID when stratum=0.
var (
	KissDeny = [4]byte{'D', 'E', 'N', 'Y'}
	KissRate = [4]byte{'R', 'A', 'T', 'E'}
	KissRstr = [4]byte{'R', 'S', 'T', 'R'}
	// KissNTSN is the NTS NAK (RFC 8915 §5.7): the server could not
	// authenticate an NTS-protected request and the client must
	// re-run NTS-KE.
	KissNTSN = [4]byte{'N', 'T', 'S', 'N'}
)

// Extension-field framing constants (RFC 7822).
const (
	// ExtHeaderLen is the 4-byte type+length header of every
	// extension field.
	ExtHeaderLen = 4
	// MinExtLen is the smallest legal extension-field length
	// (header included): RFC 7822 §3 requires at least 16 octets so
	// a field can never be confused with a legacy MAC.
	MinExtLen = 16
	// minLastExtLen is the smallest trailer that is parsed as an
	// extension field rather than a legacy MAC: RFC 7822 resolves
	// the ambiguity by requiring the last extension field to be at
	// least 28 octets, since a MAC is at most 24.
	minLastExtLen = 28
	// MaxExtFields bounds the parser: more fields than this in one
	// packet is rejected as malformed rather than looped over.
	MaxExtFields = 32
)

// NTS extension-field types (RFC 8915 §7.6).
const (
	ExtUniqueIdentifier     uint16 = 0x0104
	ExtNTSCookie            uint16 = 0x0204
	ExtNTSCookiePlaceholder uint16 = 0x0304
	ExtNTSAuthenticator     uint16 = 0x0404
)

// ExtField is one extension field: the 16-bit type and the body bytes
// after the 4-byte header, exactly as they appear on the wire
// (including any padding the sender added). Keeping the body verbatim
// makes Encode∘Decode the identity, which the NTS authenticator
// depends on: its associated data is the wire image of the header and
// every preceding field, reconstructed by re-encoding.
//
// Decoded Value slices alias the buffer passed to DecodeInto; callers
// that retain a Packet beyond the buffer's lifetime must copy.
type ExtField struct {
	Type  uint16
	Value []byte
}

// Packet is a decoded NTP packet header.
type Packet struct {
	Leap      Leap
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8 // log2 seconds
	Precision int8 // log2 seconds
	RootDelay ntptime.Short
	RootDisp  ntptime.Short
	RefID     [4]byte
	RefTime   ntptime.Timestamp // time the system clock was last set
	Origin    ntptime.Timestamp // T1: client transmit time, echoed
	Receive   ntptime.Timestamp // T2: server receive time
	Transmit  ntptime.Timestamp // T3: server transmit time

	// Ext holds the extension fields after the 48-byte header, in
	// wire order. Nil for a bare header.
	Ext []ExtField
	// LegacyMAC holds a trailing RFC 7822 legacy MAC verbatim: a
	// 4-byte crypto-NAK or a 20/24-byte keyid+digest. Nil when
	// absent. It is re-emitted unchanged by Encode.
	LegacyMAC []byte
}

// Errors returned by Decode and Validate.
var (
	ErrShortPacket = errors.New("ntppkt: packet shorter than 48 bytes")
	// ErrExtTruncated: an extension field's declared length runs past
	// the end of the packet.
	ErrExtTruncated = errors.New("ntppkt: truncated extension field")
	// ErrExtLength: an extension field's declared length is below the
	// RFC 7822 minimum or not a multiple of 4.
	ErrExtLength = errors.New("ntppkt: bad extension-field length")
	// ErrExtCount: more than MaxExtFields extension fields.
	ErrExtCount = errors.New("ntppkt: too many extension fields")
	// ErrTrailingBytes: bytes after the header that are neither valid
	// extension fields nor a legacy MAC. Before strict parsing these
	// were silently ignored, which let truncated or forged trailers
	// pass as clean packets.
	ErrTrailingBytes  = errors.New("ntppkt: trailing bytes are neither extension fields nor a MAC")
	ErrBadVersion     = errors.New("ntppkt: unsupported protocol version")
	ErrBadMode        = errors.New("ntppkt: unexpected mode")
	ErrKissOfDeath    = errors.New("ntppkt: kiss-of-death packet")
	ErrUnsynchronized = errors.New("ntppkt: server unsynchronized")
	ErrBogusOrigin    = errors.New("ntppkt: origin timestamp does not match request")
	ErrZeroTransmit   = errors.New("ntppkt: zero transmit timestamp")
)

// NewClient returns a full NTP client (mode 3) request packet with the
// given version and transmit timestamp. The remaining fields carry the
// client's notion of its own quality, as ntpd would populate them.
func NewClient(version uint8, transmit ntptime.Timestamp) *Packet {
	return &Packet{
		Leap:      LeapNone,
		Version:   version,
		Mode:      ModeClient,
		Precision: -20, // ~1 µs, typical for a software clock
		Transmit:  transmit,
	}
}

// NewSNTPClient returns a minimal SNTP client request: all fields zero
// except the first octet (LI=0/unknown, VN, mode 3) and the transmit
// timestamp, which the client needs echoed back as the origin for T1.
// RFC 4330 permits (and common mobile implementations use) exactly this
// shape; the zeroed stratum/poll/precision/root fields are what the log
// analyzer in internal/ntplog keys on to classify a client as SNTP.
func NewSNTPClient(version uint8, transmit ntptime.Timestamp) *Packet {
	return &Packet{
		Leap:     LeapNotSync,
		Version:  version,
		Mode:     ModeClient,
		Transmit: transmit,
	}
}

// Encode appends the wire representation of p — the 48-byte header,
// any extension fields and any legacy MAC — to dst and returns the
// extended slice. Pass nil to allocate. Extension-field bodies are
// zero-padded up to 4-byte alignment and to the RFC 7822 minimum
// length; a Packet produced by Decode re-encodes byte-identically
// because Decode keeps the padding inside Value.
func (p *Packet) Encode(dst []byte) []byte {
	var b [HeaderLen]byte
	b[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:], uint32(p.RootDelay))
	binary.BigEndian.PutUint32(b[8:], uint32(p.RootDisp))
	copy(b[12:16], p.RefID[:])
	binary.BigEndian.PutUint64(b[16:], uint64(p.RefTime))
	binary.BigEndian.PutUint64(b[24:], uint64(p.Origin))
	binary.BigEndian.PutUint64(b[32:], uint64(p.Receive))
	binary.BigEndian.PutUint64(b[40:], uint64(p.Transmit))
	dst = append(dst, b[:]...)
	for i := range p.Ext {
		dst = appendExt(dst, &p.Ext[i])
	}
	return append(dst, p.LegacyMAC...)
}

// appendExt appends one extension field with RFC 7822 framing: the
// declared length covers the 4-byte header, the body and the zero
// padding that brings the field to 4-byte alignment and MinExtLen.
func appendExt(dst []byte, ef *ExtField) []byte {
	l := ExtHeaderLen + len(ef.Value)
	if l < MinExtLen {
		l = MinExtLen
	}
	if rem := l % 4; rem != 0 {
		l += 4 - rem
	}
	var hdr [ExtHeaderLen]byte
	binary.BigEndian.PutUint16(hdr[0:], ef.Type)
	binary.BigEndian.PutUint16(hdr[2:], uint16(l))
	dst = append(dst, hdr[:]...)
	dst = append(dst, ef.Value...)
	for pad := l - ExtHeaderLen - len(ef.Value); pad > 0; pad-- {
		dst = append(dst, 0)
	}
	return dst
}

// Decode parses src — header, extension fields and legacy MAC — into
// a Packet. Trailing bytes that are neither well-formed extension
// fields nor a MAC are an error: the old behaviour of silently
// ignoring everything past byte 48 let truncated and forged trailers
// masquerade as clean packets.
func Decode(src []byte) (*Packet, error) {
	var p Packet
	if err := p.DecodeInto(src); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeInto parses src into p, reusing p's extension-field slice.
// Extension-field bodies alias src — copy them if src is reused.
// Validation is strict per RFC 7822: a declared field length below
// MinExtLen, unaligned, or running past the end of the packet is
// rejected, as is any unparseable trailer.
func (p *Packet) DecodeInto(src []byte) error {
	if len(src) < HeaderLen {
		return ErrShortPacket
	}
	p.Leap = Leap(src[0] >> 6)
	p.Version = (src[0] >> 3) & 0x7
	p.Mode = Mode(src[0] & 0x7)
	p.Stratum = src[1]
	p.Poll = int8(src[2])
	p.Precision = int8(src[3])
	p.RootDelay = ntptime.Short(binary.BigEndian.Uint32(src[4:]))
	p.RootDisp = ntptime.Short(binary.BigEndian.Uint32(src[8:]))
	copy(p.RefID[:], src[12:16])
	p.RefTime = ntptime.Timestamp(binary.BigEndian.Uint64(src[16:]))
	p.Origin = ntptime.Timestamp(binary.BigEndian.Uint64(src[24:]))
	p.Receive = ntptime.Timestamp(binary.BigEndian.Uint64(src[32:]))
	p.Transmit = ntptime.Timestamp(binary.BigEndian.Uint64(src[40:]))
	p.Ext = p.Ext[:0]
	p.LegacyMAC = nil
	rest := src[HeaderLen:]
	// A trailer shorter than minLastExtLen can only be a MAC
	// (RFC 7822 §3's disambiguation rule), so the loop parses
	// extension fields only while at least that much remains.
	for len(rest) >= minLastExtLen {
		l := int(binary.BigEndian.Uint16(rest[2:]))
		if l < MinExtLen || l%4 != 0 {
			return ErrExtLength
		}
		if l > len(rest) {
			return ErrExtTruncated
		}
		if len(p.Ext) == MaxExtFields {
			return ErrExtCount
		}
		p.Ext = append(p.Ext, ExtField{
			Type:  binary.BigEndian.Uint16(rest[0:]),
			Value: rest[ExtHeaderLen:l],
		})
		rest = rest[l:]
	}
	switch len(rest) {
	case 0:
	case 4, 20, 24: // crypto-NAK, MD5 or SHA-1 keyid+digest
		p.LegacyMAC = rest
	default:
		return ErrTrailingBytes
	}
	return nil
}

// FindExt returns the first extension field of the given type and its
// index in p.Ext, or a nil field and -1.
func (p *Packet) FindExt(typ uint16) (*ExtField, int) {
	for i := range p.Ext {
		if p.Ext[i].Type == typ {
			return &p.Ext[i], i
		}
	}
	return nil, -1
}

// ValidateServerReply applies the sanity checks an SNTP client must run
// on a server reply (RFC 4330 §5): version, mode, kiss-of-death,
// synchronization state, non-zero transmit time and origin echo.
// origin is the transmit timestamp the client sent (T1).
func (p *Packet) ValidateServerReply(origin ntptime.Timestamp) error {
	if p.Version != Version3 && p.Version != Version4 {
		return fmt.Errorf("%w: %d", ErrBadVersion, p.Version)
	}
	if p.Mode != ModeServer && p.Mode != ModeBroadcast {
		return fmt.Errorf("%w: %d", ErrBadMode, p.Mode)
	}
	if p.Stratum == StratumKoD {
		return fmt.Errorf("%w: %q", ErrKissOfDeath, string(p.RefID[:]))
	}
	if p.Stratum > StratumMaxSecond {
		return ErrUnsynchronized
	}
	if p.Leap == LeapNotSync {
		return ErrUnsynchronized
	}
	if p.Transmit.IsZero() {
		return ErrZeroTransmit
	}
	if p.Origin != origin {
		return ErrBogusOrigin
	}
	return nil
}

// KissCode returns the ASCII kiss code carried in the reference ID
// when the packet is a server-mode kiss-of-death reply (stratum 0),
// and false otherwise. Load generators and monitoring use it to
// classify RATE/DENY replies without running the full client
// validation path.
func (p *Packet) KissCode() (string, bool) {
	if p.Mode != ModeServer || p.Stratum != StratumKoD {
		return "", false
	}
	return string(p.RefID[:]), true
}

// IsSNTPRequest reports whether a mode-3 request exhibits the minimal
// SNTP shape: zeroed stratum, poll, precision, root delay/dispersion
// and reference fields. Full ntpd clients populate poll and precision.
// This is the wire-observable heuristic the §3.1 log study uses to
// separate SNTP from NTP clients.
func (p *Packet) IsSNTPRequest() bool {
	return p.Mode == ModeClient &&
		p.Stratum == 0 && p.Poll == 0 && p.Precision == 0 &&
		p.RootDelay == 0 && p.RootDisp == 0 &&
		p.RefID == [4]byte{} && p.RefTime.IsZero()
}

// String renders a compact one-line summary for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("ntp{v%d mode=%d stratum=%d leap=%d poll=%d prec=%d}",
		p.Version, p.Mode, p.Stratum, p.Leap, p.Poll, p.Precision)
}
