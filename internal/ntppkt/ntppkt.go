// Package ntppkt implements the NTP packet wire format of RFC 5905 §7.3
// (shared by SNTP, RFC 4330). It provides encoding, decoding, field
// validation and the SNTP-style minimal client packet described in the
// MNTP paper (§2): "SNTP sets all fields in an NTP packet to zero except
// the first octet".
package ntppkt

import (
	"encoding/binary"
	"errors"
	"fmt"

	"mntp/internal/ntptime"
)

// HeaderLen is the length in bytes of an NTP packet without extensions
// or authentication.
const HeaderLen = 48

// Leap indicator values (RFC 5905 figure 9).
type Leap uint8

const (
	LeapNone    Leap = 0 // no warning
	LeapAddSec  Leap = 1 // last minute of the day has 61 seconds
	LeapDelSec  Leap = 2 // last minute of the day has 59 seconds
	LeapNotSync Leap = 3 // unknown (clock unsynchronized)
)

// Mode values (RFC 5905 figure 10).
type Mode uint8

const (
	ModeReserved  Mode = 0
	ModeSymActive Mode = 1
	ModeSymPassiv Mode = 2
	ModeClient    Mode = 3
	ModeServer    Mode = 4
	ModeBroadcast Mode = 5
	ModeControl   Mode = 6
	ModePrivate   Mode = 7
)

// Version numbers in current use.
const (
	Version3 = 3
	Version4 = 4
)

// Stratum values of note (RFC 5905 figure 11).
const (
	StratumKoD        = 0  // kiss-of-death / unspecified
	StratumPrimary    = 1  // primary server (e.g. GPS, atomic)
	StratumMaxSecond  = 15 // maximum valid secondary stratum
	StratumUnsynchron = 16 // unsynchronized
)

// Common kiss-of-death codes carried in the reference ID when stratum=0.
var (
	KissDeny = [4]byte{'D', 'E', 'N', 'Y'}
	KissRate = [4]byte{'R', 'A', 'T', 'E'}
	KissRstr = [4]byte{'R', 'S', 'T', 'R'}
)

// Packet is a decoded NTP packet header.
type Packet struct {
	Leap      Leap
	Version   uint8
	Mode      Mode
	Stratum   uint8
	Poll      int8 // log2 seconds
	Precision int8 // log2 seconds
	RootDelay ntptime.Short
	RootDisp  ntptime.Short
	RefID     [4]byte
	RefTime   ntptime.Timestamp // time the system clock was last set
	Origin    ntptime.Timestamp // T1: client transmit time, echoed
	Receive   ntptime.Timestamp // T2: server receive time
	Transmit  ntptime.Timestamp // T3: server transmit time
}

// Errors returned by Decode and Validate.
var (
	ErrShortPacket    = errors.New("ntppkt: packet shorter than 48 bytes")
	ErrBadVersion     = errors.New("ntppkt: unsupported protocol version")
	ErrBadMode        = errors.New("ntppkt: unexpected mode")
	ErrKissOfDeath    = errors.New("ntppkt: kiss-of-death packet")
	ErrUnsynchronized = errors.New("ntppkt: server unsynchronized")
	ErrBogusOrigin    = errors.New("ntppkt: origin timestamp does not match request")
	ErrZeroTransmit   = errors.New("ntppkt: zero transmit timestamp")
)

// NewClient returns a full NTP client (mode 3) request packet with the
// given version and transmit timestamp. The remaining fields carry the
// client's notion of its own quality, as ntpd would populate them.
func NewClient(version uint8, transmit ntptime.Timestamp) *Packet {
	return &Packet{
		Leap:      LeapNone,
		Version:   version,
		Mode:      ModeClient,
		Precision: -20, // ~1 µs, typical for a software clock
		Transmit:  transmit,
	}
}

// NewSNTPClient returns a minimal SNTP client request: all fields zero
// except the first octet (LI=0/unknown, VN, mode 3) and the transmit
// timestamp, which the client needs echoed back as the origin for T1.
// RFC 4330 permits (and common mobile implementations use) exactly this
// shape; the zeroed stratum/poll/precision/root fields are what the log
// analyzer in internal/ntplog keys on to classify a client as SNTP.
func NewSNTPClient(version uint8, transmit ntptime.Timestamp) *Packet {
	return &Packet{
		Leap:     LeapNotSync,
		Version:  version,
		Mode:     ModeClient,
		Transmit: transmit,
	}
}

// Encode appends the 48-byte wire representation of p to dst and
// returns the extended slice. Pass nil to allocate.
func (p *Packet) Encode(dst []byte) []byte {
	var b [HeaderLen]byte
	b[0] = byte(p.Leap)<<6 | (p.Version&0x7)<<3 | byte(p.Mode)&0x7
	b[1] = p.Stratum
	b[2] = byte(p.Poll)
	b[3] = byte(p.Precision)
	binary.BigEndian.PutUint32(b[4:], uint32(p.RootDelay))
	binary.BigEndian.PutUint32(b[8:], uint32(p.RootDisp))
	copy(b[12:16], p.RefID[:])
	binary.BigEndian.PutUint64(b[16:], uint64(p.RefTime))
	binary.BigEndian.PutUint64(b[24:], uint64(p.Origin))
	binary.BigEndian.PutUint64(b[32:], uint64(p.Receive))
	binary.BigEndian.PutUint64(b[40:], uint64(p.Transmit))
	return append(dst, b[:]...)
}

// Decode parses the first 48 bytes of src into a Packet. Extension
// fields and MACs after the header are ignored, as SNTP clients do.
func Decode(src []byte) (*Packet, error) {
	var p Packet
	if err := p.DecodeInto(src); err != nil {
		return nil, err
	}
	return &p, nil
}

// DecodeInto parses src into p without allocating.
func (p *Packet) DecodeInto(src []byte) error {
	if len(src) < HeaderLen {
		return ErrShortPacket
	}
	p.Leap = Leap(src[0] >> 6)
	p.Version = (src[0] >> 3) & 0x7
	p.Mode = Mode(src[0] & 0x7)
	p.Stratum = src[1]
	p.Poll = int8(src[2])
	p.Precision = int8(src[3])
	p.RootDelay = ntptime.Short(binary.BigEndian.Uint32(src[4:]))
	p.RootDisp = ntptime.Short(binary.BigEndian.Uint32(src[8:]))
	copy(p.RefID[:], src[12:16])
	p.RefTime = ntptime.Timestamp(binary.BigEndian.Uint64(src[16:]))
	p.Origin = ntptime.Timestamp(binary.BigEndian.Uint64(src[24:]))
	p.Receive = ntptime.Timestamp(binary.BigEndian.Uint64(src[32:]))
	p.Transmit = ntptime.Timestamp(binary.BigEndian.Uint64(src[40:]))
	return nil
}

// ValidateServerReply applies the sanity checks an SNTP client must run
// on a server reply (RFC 4330 §5): version, mode, kiss-of-death,
// synchronization state, non-zero transmit time and origin echo.
// origin is the transmit timestamp the client sent (T1).
func (p *Packet) ValidateServerReply(origin ntptime.Timestamp) error {
	if p.Version != Version3 && p.Version != Version4 {
		return fmt.Errorf("%w: %d", ErrBadVersion, p.Version)
	}
	if p.Mode != ModeServer && p.Mode != ModeBroadcast {
		return fmt.Errorf("%w: %d", ErrBadMode, p.Mode)
	}
	if p.Stratum == StratumKoD {
		return fmt.Errorf("%w: %q", ErrKissOfDeath, string(p.RefID[:]))
	}
	if p.Stratum > StratumMaxSecond {
		return ErrUnsynchronized
	}
	if p.Leap == LeapNotSync {
		return ErrUnsynchronized
	}
	if p.Transmit.IsZero() {
		return ErrZeroTransmit
	}
	if p.Origin != origin {
		return ErrBogusOrigin
	}
	return nil
}

// KissCode returns the ASCII kiss code carried in the reference ID
// when the packet is a server-mode kiss-of-death reply (stratum 0),
// and false otherwise. Load generators and monitoring use it to
// classify RATE/DENY replies without running the full client
// validation path.
func (p *Packet) KissCode() (string, bool) {
	if p.Mode != ModeServer || p.Stratum != StratumKoD {
		return "", false
	}
	return string(p.RefID[:]), true
}

// IsSNTPRequest reports whether a mode-3 request exhibits the minimal
// SNTP shape: zeroed stratum, poll, precision, root delay/dispersion
// and reference fields. Full ntpd clients populate poll and precision.
// This is the wire-observable heuristic the §3.1 log study uses to
// separate SNTP from NTP clients.
func (p *Packet) IsSNTPRequest() bool {
	return p.Mode == ModeClient &&
		p.Stratum == 0 && p.Poll == 0 && p.Precision == 0 &&
		p.RootDelay == 0 && p.RootDisp == 0 &&
		p.RefID == [4]byte{} && p.RefTime.IsZero()
}

// String renders a compact one-line summary for logs.
func (p *Packet) String() string {
	return fmt.Sprintf("ntp{v%d mode=%d stratum=%d leap=%d poll=%d prec=%d}",
		p.Version, p.Mode, p.Stratum, p.Leap, p.Poll, p.Precision)
}
