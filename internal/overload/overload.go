// Package overload implements admission control for a heavily loaded
// NTP serving path: a per-server health state machine (Healthy →
// Degraded → Overloaded, with hysteresis) driven by cheap signals
// sampled near the hot path.
//
// The primary signal is a sampled ingress-to-reply sojourn EWMA held
// against a configurable target, CoDel-style: the server reacts only
// when sojourn exceeds the target for a sustained interval, never to
// an instantaneous spike, and recovers only after a sustained quiet
// period. The rationale is specific to time service: queueing delay
// is uniquely poisonous to clock synchronization — a reply that sat
// in the socket queue carries a stale transmit timestamp and corrupts
// the client's offset estimate, so a late answer is worse than no
// answer. The correct overload response is therefore to shed early
// and answer fewer clients well, not to queue (Deshpande et al.,
// "Improving Network Clock Synchronization by Marking Congestion").
//
// Slow auxiliary signals — per-shard in-flight counts, write-error
// rate and rate-limit-table pressure — are folded in periodically via
// Evaluate, typically from a housekeeping goroutine.
//
// In Degraded the caller should shed probabilistically (ShedProb),
// new/unseen flows first, answering sheds with a RATE kiss-of-death
// so refusal is explicit. In Overloaded the caller should drop before
// parsing, admitting only ProbeAdmit's 1-in-N probes so sojourn
// samples keep flowing and recovery stays possible.
package overload

import (
	"sync"
	"sync/atomic"
	"time"
)

// State is the server health state. Ordering matters: higher states
// are more degraded, and comparisons (st >= Degraded) are meaningful.
type State int32

const (
	// Healthy: every well-formed request is admitted.
	Healthy State = iota
	// Degraded: sojourn has exceeded the target for a sustained
	// interval (or a slow signal forced the floor); new flows are
	// shed probabilistically with RATE.
	Degraded
	// Overloaded: sojourn has exceeded OverloadFactor×Target for a
	// sustained interval (or in-flight work hit MaxInFlight);
	// requests are dropped before parsing, except probes.
	Overloaded
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Overloaded:
		return "overloaded"
	}
	return "unknown"
}

// Config parameterizes a Controller. The zero value of any field
// selects its default.
type Config struct {
	// Target is the sojourn EWMA the server tries to stay under
	// (default 5ms). Sojourn is measured ingress (kernel receive
	// timestamp where available) to reply.
	Target time.Duration
	// Interval is how long the EWMA must stay above Target (or the
	// overload threshold) before the state escalates — the CoDel-style
	// guard against reacting to spikes. Default 100ms.
	Interval time.Duration
	// RecoveryInterval is how long the EWMA must stay at or below
	// Target before the state steps down one level. Default
	// 2×Interval, the hysteresis that stops flapping.
	RecoveryInterval time.Duration
	// OverloadFactor scales Target into the Overloaded threshold:
	// sustained sojourn above OverloadFactor×Target escalates past
	// Degraded. Default 8; values ≤ 1 select the default.
	OverloadFactor float64
	// ShedMin floors the Degraded shed probability so shedding is
	// never cosmetic once entered (default 0.05). Values > 1 clamp
	// to 1 (shed every new flow).
	ShedMin float64
	// ProbeEvery admits 1 in this many requests while Overloaded so
	// sojourn samples keep flowing (default 16).
	ProbeEvery int
	// MaxInFlight, if positive, forces Overloaded the moment any
	// shard holds this many requests mid-handling — an instantaneous
	// saturation signal that skips the sustained-interval wait.
	MaxInFlight int
	// TablePressure is the rate-limit-table occupancy fraction that
	// floors the state at Degraded (default 0.9): a table pinned near
	// capacity means per-client state is being churned, usually by a
	// spoofed flood. Set above 1 to disable.
	TablePressure float64
	// Alpha is the sojourn EWMA weight of each new sample (default
	// 0.125).
	Alpha float64
}

func (c Config) withDefaults() Config {
	if c.Target <= 0 {
		c.Target = 5 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.RecoveryInterval <= 0 {
		c.RecoveryInterval = 2 * c.Interval
	}
	if c.OverloadFactor <= 1 {
		c.OverloadFactor = 8
	}
	if c.ShedMin <= 0 {
		c.ShedMin = 0.05
	} else if c.ShedMin > 1 {
		c.ShedMin = 1
	}
	if c.ProbeEvery <= 0 {
		c.ProbeEvery = 16
	}
	if c.TablePressure <= 0 {
		c.TablePressure = 0.9
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.125
	}
	return c
}

// Signals are the slow auxiliary inputs folded in by Evaluate.
type Signals struct {
	// MaxShardInFlight is the largest per-shard count of requests
	// currently mid-handling.
	MaxShardInFlight int
	// TableOccupancy is the rate-limit table fill fraction (0..1);
	// 0 when rate limiting is off.
	TableOccupancy float64
	// WriteErrorFrac is the fraction of reply attempts that failed
	// at the socket since the last Evaluate (0..1).
	WriteErrorFrac float64
}

// Stats is an observable snapshot of the controller.
type Stats struct {
	State   State
	Sojourn time.Duration // current effective EWMA (queue + crypto)
	// CryptoCost is the per-request cryptographic-work EWMA folded
	// into Sojourn: with NTS enabled, AEAD verification spends server
	// time exactly like queueing does, so it must count against the
	// same target.
	CryptoCost time.Duration
	// DegradedEntries / OverloadedEntries count upward transitions
	// into each state.
	DegradedEntries   uint64
	OverloadedEntries uint64
}

// Controller is the health state machine. State() and ShedProb() are
// single atomic loads, safe on the hot path; Observe is intended to
// be called on a sample of requests (it takes a short mutex).
type Controller struct {
	cfg    Config
	state  atomic.Int32
	ewma   atomic.Int64 // queue-sojourn EWMA, nanoseconds
	cryewa atomic.Int64 // per-request crypto-cost EWMA, nanoseconds
	probe  atomic.Uint64

	mu           sync.Mutex
	aboveSince   time.Time // EWMA continuously above Target since
	aboveHiSince time.Time // EWMA continuously above the overload threshold since
	belowSince   time.Time // EWMA continuously at/below Target since
	lastSample   time.Time
	cryptoSeeded bool
	paused       bool  // a shard recycle is in progress: hold state steady
	floor        State // minimum state forced by slow signals
	degradedN    uint64
	overloadedN  uint64
}

// New creates a controller; zero Config fields take defaults.
func New(cfg Config) *Controller {
	return &Controller{cfg: cfg.withDefaults()}
}

// State returns the current health state (one atomic load).
func (c *Controller) State() State { return State(c.state.Load()) }

// Reconfigure swaps the controller's parameters in place — a live
// reload, not a restart. Everything learned survives: the health
// state, the sojourn and crypto EWMAs, the transition counters and the
// sustained-interval timers all carry over, so a SIGHUP that tightens
// the target mid-incident does not reset an Overloaded server to
// Healthy and re-admit the flood while the machine re-learns what it
// already knew. Zero cfg fields take their defaults, exactly as in
// New.
func (c *Controller) Reconfigure(cfg Config) {
	c.mu.Lock()
	c.cfg = cfg.withDefaults()
	c.mu.Unlock()
}

// Pause freezes the state machine for the duration of a deliberate
// disturbance — a one-shard-at-a-time worker-pool recycle, a config
// reload swap. Sojourn observed while paused is the transient's
// signature, not offered load, so samples are discarded and no
// escalation or recovery transition can fire. The current state keeps
// answering State()/ShedProb() queries unchanged: admission policy
// holds steady instead of flapping through the recycle.
func (c *Controller) Pause() {
	c.mu.Lock()
	c.paused = true
	c.mu.Unlock()
}

// Resume unfreezes the state machine after Pause. The
// sustained-interval timers are restarted from scratch so the paused
// stretch neither counts toward an escalation nor toward a recovery:
// the machine re-earns its next transition on post-recycle evidence
// only.
func (c *Controller) Resume() {
	c.mu.Lock()
	c.paused = false
	c.aboveSince, c.aboveHiSince, c.belowSince = time.Time{}, time.Time{}, time.Time{}
	c.lastSample = time.Time{}
	c.mu.Unlock()
}

// Sojourn returns the effective sojourn EWMA the state machine holds
// against Target: measured queue sojourn plus the per-request crypto
// cost. With NTS off the crypto term is zero and this is the plain
// queue EWMA.
func (c *Controller) Sojourn() time.Duration {
	return time.Duration(c.ewma.Load() + c.cryewa.Load())
}

// Observe feeds one sampled ingress-to-reply sojourn measurement and
// advances the state machine. now must be monotonic-ish wall time
// from the caller's clock; all sustained-interval arithmetic uses it.
func (c *Controller) Observe(sojourn time.Duration, now time.Time) {
	if sojourn < 0 {
		sojourn = 0
	}
	c.mu.Lock()
	if c.paused {
		c.mu.Unlock()
		return
	}
	e := time.Duration(c.ewma.Load())
	if c.lastSample.IsZero() {
		e = sojourn // seed: the first sample is the estimate
	} else {
		e += time.Duration(c.cfg.Alpha * float64(sojourn-e))
	}
	c.ewma.Store(int64(e))
	c.lastSample = now
	c.stepLocked(now)
	c.mu.Unlock()
}

// ObserveCrypto feeds the cryptographic-work duration of one sampled
// request into the crypto-cost EWMA. Callers serving mixed traffic
// must feed zero for sampled plain requests so the estimate tracks
// the real per-request average and decays when authenticated load
// recedes. The cost is folded into the effective sojourn the state
// machine sheds on: AEAD work consumes serving capacity exactly like
// queueing delay, and admission must see it before the queue builds.
func (c *Controller) ObserveCrypto(d time.Duration, now time.Time) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	if c.paused {
		c.mu.Unlock()
		return
	}
	e := time.Duration(c.cryewa.Load())
	if !c.cryptoSeeded {
		e = d
		c.cryptoSeeded = true
	} else {
		e += time.Duration(c.cfg.Alpha * float64(d-e))
	}
	c.cryewa.Store(int64(e))
	c.stepLocked(now)
	c.mu.Unlock()
}

// Evaluate folds the slow signals in and advances the state machine;
// call it periodically (the server's housekeeping loop does).
func (c *Controller) Evaluate(now time.Time, sig Signals) State {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.paused {
		return State(c.state.Load())
	}
	c.floor = Healthy
	if sig.TableOccupancy >= c.cfg.TablePressure || sig.WriteErrorFrac >= 0.5 {
		c.floor = Degraded
	}
	if c.cfg.MaxInFlight > 0 && sig.MaxShardInFlight >= c.cfg.MaxInFlight {
		// Instantaneous saturation: every worker slot is pinned, so
		// waiting out a sustained interval would just build queue.
		c.belowSince = time.Time{}
		c.setStateLocked(Overloaded)
	}
	// Idle decay: when no sojourn sample has arrived for a whole
	// interval there is no measured queue left (traffic stopped, or
	// everything is being dropped and even probes dried up); halve
	// the EWMA so the machine can walk back down instead of freezing
	// at its last overloaded estimate.
	if !c.lastSample.IsZero() && now.Sub(c.lastSample) >= c.cfg.Interval {
		c.ewma.Store(c.ewma.Load() / 2)
		c.cryewa.Store(c.cryewa.Load() / 2)
		c.lastSample = now
	}
	c.stepLocked(now)
	return State(c.state.Load())
}

// stepLocked advances the sustained-interval timers and the state.
// The signal held against Target is the effective sojourn: queue EWMA
// plus crypto-cost EWMA.
func (c *Controller) stepLocked(now time.Time) {
	e := time.Duration(c.ewma.Load() + c.cryewa.Load())
	hi := time.Duration(c.cfg.OverloadFactor * float64(c.cfg.Target))
	st := State(c.state.Load())
	if e > c.cfg.Target {
		c.belowSince = time.Time{}
		if c.aboveSince.IsZero() {
			c.aboveSince = now
		}
		if e > hi {
			if c.aboveHiSince.IsZero() {
				c.aboveHiSince = now
			}
		} else {
			c.aboveHiSince = time.Time{}
		}
		if st < Overloaded && !c.aboveHiSince.IsZero() && now.Sub(c.aboveHiSince) >= c.cfg.Interval {
			c.setStateLocked(Overloaded)
		} else if st < Degraded && now.Sub(c.aboveSince) >= c.cfg.Interval {
			c.setStateLocked(Degraded)
		}
	} else {
		c.aboveSince, c.aboveHiSince = time.Time{}, time.Time{}
		if c.belowSince.IsZero() {
			c.belowSince = now
		}
		if st > c.floor && now.Sub(c.belowSince) >= c.cfg.RecoveryInterval {
			// One level per recovery interval: Overloaded walks through
			// Degraded on the way back, re-arming the timer each step.
			c.setStateLocked(st - 1)
			c.belowSince = now
		}
	}
	if State(c.state.Load()) < c.floor {
		c.setStateLocked(c.floor)
	}
}

func (c *Controller) setStateLocked(s State) {
	old := State(c.state.Load())
	if s == old {
		return
	}
	c.state.Store(int32(s))
	if s > old {
		switch s {
		case Degraded:
			c.degradedN++
		case Overloaded:
			c.overloadedN++
		}
	}
}

// ShedProb is the probability with which a new/unseen flow should be
// shed while Degraded: a linear ramp from ShedMin at the target to 1
// at the overload threshold, so shedding deepens with the excess.
func (c *Controller) ShedProb() float64 {
	e := float64(c.ewma.Load() + c.cryewa.Load())
	t := float64(c.cfg.Target)
	hi := c.cfg.OverloadFactor * t
	p := (e - t) / (hi - t)
	if p < c.cfg.ShedMin {
		p = c.cfg.ShedMin
	}
	if p > 1 {
		p = 1
	}
	return p
}

// ProbeAdmit reports whether this request should be admitted as a
// probe while Overloaded: exactly 1 in ProbeEvery calls.
func (c *Controller) ProbeAdmit() bool {
	return c.probe.Add(1)%uint64(c.cfg.ProbeEvery) == 0
}

// Stats returns an observable snapshot.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		State:             State(c.state.Load()),
		Sojourn:           time.Duration(c.ewma.Load() + c.cryewa.Load()),
		CryptoCost:        time.Duration(c.cryewa.Load()),
		DegradedEntries:   c.degradedN,
		OverloadedEntries: c.overloadedN,
	}
}
