package overload

import (
	"testing"
	"time"
)

// base is an arbitrary synthetic epoch; every test advances from it
// explicitly so no state transition depends on the wall clock.
var base = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func cfg() Config {
	return Config{
		Target:           5 * time.Millisecond,
		Interval:         100 * time.Millisecond,
		RecoveryInterval: 200 * time.Millisecond,
		OverloadFactor:   8,
		Alpha:            1, // EWMA = last sample: tests control it exactly
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		Healthy: "healthy", Degraded: "degraded", Overloaded: "overloaded", State(9): "unknown",
	} {
		if got := st.String(); got != want {
			t.Errorf("State(%d).String() = %q, want %q", st, got, want)
		}
	}
}

func TestSpikeDoesNotDegrade(t *testing.T) {
	c := New(cfg())
	c.Observe(time.Second, base) // huge instantaneous spike
	c.Observe(time.Second, base.Add(50*time.Millisecond))
	if got := c.State(); got != Healthy {
		t.Fatalf("state after 50ms of excess = %v, want healthy (interval is 100ms)", got)
	}
	// Back under target before the interval elapses: timer must reset.
	c.Observe(time.Millisecond, base.Add(60*time.Millisecond))
	c.Observe(time.Second, base.Add(70*time.Millisecond))
	c.Observe(time.Second, base.Add(160*time.Millisecond)) // only 90ms of new excess
	if got := c.State(); got != Healthy {
		t.Fatalf("state = %v, want healthy after excess timer reset", got)
	}
}

func TestSustainedExcessDegrades(t *testing.T) {
	c := New(cfg())
	c.Observe(10*time.Millisecond, base) // above target, below 8×target
	c.Observe(10*time.Millisecond, base.Add(100*time.Millisecond))
	if got := c.State(); got != Degraded {
		t.Fatalf("state after sustained excess = %v, want degraded", got)
	}
	st := c.Stats()
	if st.DegradedEntries != 1 || st.OverloadedEntries != 0 {
		t.Errorf("entries = %d/%d, want 1/0", st.DegradedEntries, st.OverloadedEntries)
	}
	if st.Sojourn != 10*time.Millisecond {
		t.Errorf("sojourn EWMA = %v, want 10ms (alpha 1)", st.Sojourn)
	}
}

func TestSustainedCollapseOverloadsAndRecoversStepwise(t *testing.T) {
	c := New(cfg())
	c.Observe(100*time.Millisecond, base) // above 8×5ms
	c.Observe(100*time.Millisecond, base.Add(100*time.Millisecond))
	if got := c.State(); got != Overloaded {
		t.Fatalf("state after sustained collapse = %v, want overloaded", got)
	}
	// Recovery: below target sustained for RecoveryInterval steps down
	// one level at a time.
	t0 := base.Add(200 * time.Millisecond)
	c.Observe(time.Millisecond, t0)
	c.Observe(time.Millisecond, t0.Add(100*time.Millisecond))
	if got := c.State(); got != Overloaded {
		t.Fatalf("state after 100ms quiet = %v, want still overloaded (recovery is 200ms)", got)
	}
	c.Observe(time.Millisecond, t0.Add(200*time.Millisecond))
	if got := c.State(); got != Degraded {
		t.Fatalf("state after one recovery interval = %v, want degraded (one step)", got)
	}
	c.Observe(time.Millisecond, t0.Add(400*time.Millisecond))
	if got := c.State(); got != Healthy {
		t.Fatalf("state after two recovery intervals = %v, want healthy", got)
	}
}

func TestEvaluateInFlightForcesOverload(t *testing.T) {
	cf := cfg()
	cf.MaxInFlight = 64
	c := New(cf)
	c.Evaluate(base, Signals{MaxShardInFlight: 63})
	if got := c.State(); got != Healthy {
		t.Fatalf("state below MaxInFlight = %v, want healthy", got)
	}
	c.Evaluate(base.Add(time.Millisecond), Signals{MaxShardInFlight: 64})
	if got := c.State(); got != Overloaded {
		t.Fatalf("state at MaxInFlight = %v, want overloaded immediately", got)
	}
	if n := c.Stats().OverloadedEntries; n != 1 {
		t.Errorf("OverloadedEntries = %d, want 1", n)
	}
}

func TestEvaluateTablePressureFloorsDegraded(t *testing.T) {
	c := New(cfg())
	c.Evaluate(base, Signals{TableOccupancy: 0.95})
	if got := c.State(); got != Degraded {
		t.Fatalf("state under table pressure = %v, want degraded", got)
	}
	// While pressure persists, quiet sojourn must not walk it back.
	c.Observe(time.Millisecond, base.Add(100*time.Millisecond))
	c.Evaluate(base.Add(300*time.Millisecond), Signals{TableOccupancy: 0.95})
	if got := c.State(); got != Degraded {
		t.Fatalf("state = %v, want degraded held by the floor", got)
	}
	// Pressure gone: normal hysteresis applies from here.
	c.Evaluate(base.Add(600*time.Millisecond), Signals{TableOccupancy: 0.1})
	if got := c.State(); got != Healthy {
		t.Fatalf("state after pressure cleared + quiet period = %v, want healthy", got)
	}
}

func TestEvaluateWriteErrorsFloorDegraded(t *testing.T) {
	c := New(cfg())
	c.Evaluate(base, Signals{WriteErrorFrac: 0.6})
	if got := c.State(); got != Degraded {
		t.Fatalf("state with 60%% write errors = %v, want degraded", got)
	}
}

func TestIdleDecayRecoversWithoutSamples(t *testing.T) {
	c := New(cfg())
	c.Observe(400*time.Millisecond, base)
	c.Observe(400*time.Millisecond, base.Add(100*time.Millisecond))
	if got := c.State(); got != Overloaded {
		t.Fatalf("state = %v, want overloaded", got)
	}
	// No further samples: Evaluate halves the EWMA each interval and
	// the machine must walk back to healthy on its own.
	now := base.Add(100 * time.Millisecond)
	for i := 0; i < 40 && c.State() != Healthy; i++ {
		now = now.Add(100 * time.Millisecond)
		c.Evaluate(now, Signals{})
	}
	if got := c.State(); got != Healthy {
		t.Fatalf("state after idle decay = %v (EWMA %v), want healthy", got, c.Sojourn())
	}
}

func TestShedProbRamp(t *testing.T) {
	c := New(cfg()) // target 5ms, hi 40ms, min 0.05
	c.Observe(time.Millisecond, base)
	if p := c.ShedProb(); p != 0.05 {
		t.Errorf("ShedProb below target = %v, want floor 0.05", p)
	}
	c.Observe(22500*time.Microsecond, base) // halfway up the ramp
	if p := c.ShedProb(); p < 0.45 || p > 0.55 {
		t.Errorf("ShedProb mid-ramp = %v, want ≈0.5", p)
	}
	c.Observe(time.Second, base)
	if p := c.ShedProb(); p != 1 {
		t.Errorf("ShedProb above overload threshold = %v, want 1", p)
	}
}

func TestProbeAdmitCadence(t *testing.T) {
	cf := cfg()
	cf.ProbeEvery = 8
	c := New(cf)
	admitted := 0
	for i := 0; i < 64; i++ {
		if c.ProbeAdmit() {
			admitted++
		}
	}
	if admitted != 8 {
		t.Errorf("admitted %d of 64 probes, want exactly 8 (1 in 8)", admitted)
	}
}

func TestDefaults(t *testing.T) {
	c := New(Config{})
	if c.cfg.Target != 5*time.Millisecond || c.cfg.Interval != 100*time.Millisecond ||
		c.cfg.RecoveryInterval != 200*time.Millisecond || c.cfg.OverloadFactor != 8 ||
		c.cfg.ShedMin != 0.05 || c.cfg.ProbeEvery != 16 || c.cfg.TablePressure != 0.9 ||
		c.cfg.Alpha != 0.125 {
		t.Errorf("defaults = %+v", c.cfg)
	}
	if cf := (Config{ShedMin: 3}).withDefaults(); cf.ShedMin != 1 {
		t.Errorf("ShedMin 3 clamps to %v, want 1", cf.ShedMin)
	}
}

// TestCryptoCostFoldsIntoSojourn pins the NTS capacity contract:
// per-request AEAD cost counts against the same target as queueing
// delay. Queue sojourn alone stays under target, crypto cost pushes
// the effective signal over it, and the controller degrades; when the
// crypto load recedes (zeros fed for plain traffic) it recovers.
func TestCryptoCostFoldsIntoSojourn(t *testing.T) {
	c := New(cfg()) // Target 5ms, Alpha 1: EWMAs track the last sample
	c.Observe(2*time.Millisecond, base)
	c.ObserveCrypto(4*time.Millisecond, base)
	if got := c.Sojourn(); got != 6*time.Millisecond {
		t.Fatalf("effective sojourn = %v, want 6ms (2ms queue + 4ms crypto)", got)
	}
	st := c.Stats()
	if st.CryptoCost != 4*time.Millisecond {
		t.Fatalf("Stats.CryptoCost = %v, want 4ms", st.CryptoCost)
	}
	if st.Sojourn != 6*time.Millisecond {
		t.Fatalf("Stats.Sojourn = %v, want 6ms", st.Sojourn)
	}

	// Neither component alone exceeds the 5ms target, but their sum
	// does: sustained for a full interval, the state must escalate.
	now := base
	for i := 0; i < 4; i++ {
		now = now.Add(50 * time.Millisecond)
		c.Observe(2*time.Millisecond, now)
		c.ObserveCrypto(4*time.Millisecond, now)
	}
	if got := c.State(); got != Degraded {
		t.Fatalf("state with sustained queue+crypto excess = %v, want degraded", got)
	}

	// Authenticated load stops: sampled plain requests feed zero
	// crypto cost, the effective signal falls under target, and the
	// controller walks back to healthy.
	for i := 0; i < 6; i++ {
		now = now.Add(50 * time.Millisecond)
		c.Observe(2*time.Millisecond, now)
		c.ObserveCrypto(0, now)
	}
	if got := c.Stats().CryptoCost; got != 0 {
		t.Fatalf("crypto EWMA after zero-cost samples = %v, want 0", got)
	}
	if got := c.State(); got != Healthy {
		t.Fatalf("state after crypto load receded = %v, want healthy", got)
	}
}

// TestIdleDecayHalvesCryptoCost: the idle decay that lets the queue
// estimate walk down must drain the crypto estimate too, or a burst
// of authenticated traffic would pin the server degraded after the
// burst ends.
func TestIdleDecayHalvesCryptoCost(t *testing.T) {
	c := New(cfg())
	c.Observe(time.Millisecond, base)
	c.ObserveCrypto(8*time.Millisecond, base)
	now := base
	for i := 0; i < 40 && c.Stats().CryptoCost > 0; i++ {
		now = now.Add(150 * time.Millisecond)
		c.Evaluate(now, Signals{})
	}
	if got := c.Stats().CryptoCost; got != 0 {
		t.Fatalf("crypto EWMA never decayed to 0, stuck at %v", got)
	}
}

// TestReconfigurePreservesState: a live parameter reload must not
// reset what the controller has learned — a Degraded server that gets
// its target tightened mid-incident stays Degraded, with its EWMA and
// transition counters intact, and the new target is effective
// immediately.
func TestReconfigurePreservesState(t *testing.T) {
	c := New(cfg())
	c.Observe(10*time.Millisecond, base)
	c.Observe(10*time.Millisecond, base.Add(100*time.Millisecond))
	if got := c.State(); got != Degraded {
		t.Fatalf("setup: state = %v, want degraded", got)
	}

	nc := cfg()
	nc.Target = 20 * time.Millisecond // 10ms EWMA is now under target
	c.Reconfigure(nc)
	if got := c.State(); got != Degraded {
		t.Fatalf("state after Reconfigure = %v, want degraded (reload must not reset)", got)
	}
	st := c.Stats()
	if st.DegradedEntries != 1 {
		t.Errorf("DegradedEntries = %d after reload, want 1", st.DegradedEntries)
	}
	if st.Sojourn != 10*time.Millisecond {
		t.Errorf("sojourn EWMA = %v after reload, want 10ms carried over", st.Sojourn)
	}

	// The new, looser target governs from here: the same 10ms sojourn
	// now reads as quiet, and a sustained quiet period recovers.
	t0 := base.Add(200 * time.Millisecond)
	c.Observe(10*time.Millisecond, t0)
	c.Observe(10*time.Millisecond, t0.Add(200*time.Millisecond))
	if got := c.State(); got != Healthy {
		t.Fatalf("state = %v, want healthy under the reloaded 20ms target", got)
	}
}

// TestReconfigureZeroFieldsTakeDefaults pins that Reconfigure runs the
// same defaulting as New, so a partially filled reload config cannot
// leave the controller with a zero target or interval.
func TestReconfigureZeroFieldsTakeDefaults(t *testing.T) {
	c := New(cfg())
	c.Reconfigure(Config{})
	c.mu.Lock()
	got := c.cfg
	c.mu.Unlock()
	if got.Target != 5*time.Millisecond || got.Interval != 100*time.Millisecond || got.ProbeEvery != 16 {
		t.Fatalf("reconfigured zero config = %+v, want defaults applied", got)
	}
}

// TestPauseHoldsStateThroughDisturbance: while paused — a shard
// recycle in progress — enormous sojourn samples and Evaluate calls
// must neither escalate nor recover the state; Resume restarts the
// sustained-interval timers so the paused stretch counts for nothing.
func TestPauseHoldsStateThroughDisturbance(t *testing.T) {
	c := New(cfg())
	c.Pause()
	c.Observe(time.Second, base)
	c.Observe(time.Second, base.Add(150*time.Millisecond))
	c.Evaluate(base.Add(200*time.Millisecond), Signals{TableOccupancy: 1})
	if got := c.State(); got != Healthy {
		t.Fatalf("state while paused = %v, want healthy (recycle transient must not escalate)", got)
	}
	if st := c.Stats(); st.Sojourn != 0 {
		t.Fatalf("sojourn EWMA = %v while paused, want 0 (samples discarded)", st.Sojourn)
	}

	c.Resume()
	// Post-resume, escalation must be re-earned over a full interval
	// from fresh timers, not inherited from the paused stretch.
	t0 := base.Add(300 * time.Millisecond)
	c.Observe(time.Second, t0)
	if got := c.State(); got != Healthy {
		t.Fatalf("state right after resume = %v, want healthy until a fresh sustained interval", got)
	}
	c.Observe(time.Second, t0.Add(100*time.Millisecond))
	if got := c.State(); got != Overloaded {
		t.Fatalf("state after post-resume sustained collapse = %v, want overloaded", got)
	}
}

// TestPausePreservesDegradedPolicy: pausing in Degraded keeps the
// admission policy — State and ShedProb — steady for the recycle's
// duration instead of flapping to Healthy.
func TestPausePreservesDegradedPolicy(t *testing.T) {
	c := New(cfg())
	c.Observe(10*time.Millisecond, base)
	c.Observe(10*time.Millisecond, base.Add(100*time.Millisecond))
	if got := c.State(); got != Degraded {
		t.Fatalf("setup: state = %v, want degraded", got)
	}
	p := c.ShedProb()
	c.Pause()
	// A long quiet stretch arrives during the recycle; it must not
	// recover the state while paused.
	c.Observe(time.Microsecond, base.Add(400*time.Millisecond))
	c.Evaluate(base.Add(500*time.Millisecond), Signals{})
	if got := c.State(); got != Degraded {
		t.Fatalf("state while paused = %v, want degraded held", got)
	}
	if got := c.ShedProb(); got != p {
		t.Fatalf("ShedProb changed while paused: %v -> %v", p, got)
	}
	c.Resume()
}
