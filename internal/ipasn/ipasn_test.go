package ipasn

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestRegistryStructure(t *testing.T) {
	r := NewRegistry()
	ps := r.Providers()
	if len(ps) != 25 {
		t.Fatalf("providers = %d, want 25", len(ps))
	}
	counts := map[Category]int{}
	for _, p := range ps {
		counts[p.Category]++
	}
	if counts[Cloud] != 3 || counts[ISP] != 6 || counts[Broadband] != 12 || counts[Mobile] != 4 {
		t.Errorf("category counts = %v, want 3/6/12/4", counts)
	}
}

func TestCategoryOfRankBoundaries(t *testing.T) {
	cases := map[int]Category{
		1: Cloud, 3: Cloud, 4: ISP, 9: ISP,
		10: Broadband, 21: Broadband, 22: Mobile, 25: Mobile,
	}
	for rank, want := range cases {
		if got := categoryOfRank(rank); got != want {
			t.Errorf("rank %d = %v, want %v", rank, got, want)
		}
	}
}

func TestLookupRoundTrip(t *testing.T) {
	r := NewRegistry()
	for _, p := range r.Providers() {
		for _, i := range []int{0, 1, 5000} {
			addr := p.ClientAddr(i, false)
			got, ok := r.Lookup(addr)
			if !ok || got.Rank != p.Rank {
				t.Errorf("lookup %v -> %v (ok=%v), want %s", addr, got.Name, ok, p.Name)
			}
		}
		addr6 := p.ClientAddr(3, true)
		got, ok := r.Lookup(addr6)
		if !ok || got.Rank != p.Rank {
			t.Errorf("v6 lookup %v -> %v, want %s", addr6, got.Name, p.Name)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	r := NewRegistry()
	if _, ok := r.Lookup(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("unowned address resolved")
	}
}

func TestByRank(t *testing.T) {
	r := NewRegistry()
	p, ok := r.ByRank(22)
	if !ok || p.Category != Mobile {
		t.Errorf("rank 22 = %+v", p)
	}
	if _, ok := r.ByRank(0); ok {
		t.Error("rank 0 resolved")
	}
	if _, ok := r.ByRank(26); ok {
		t.Error("rank 26 resolved")
	}
}

func TestClassifyHostname(t *testing.T) {
	cases := map[string]Category{
		"device-1.mobile22.example":      Mobile,
		"lte-device.carrier.example":     Mobile,
		"ip-10-1-2-3.cloud1.example":     Cloud,
		"ec2.aws.example":                Cloud,
		"cpe-5.dsl.broadband14.example":  Broadband,
		"c-73-1.cable-modem.example":     Broadband,
		"core1.isp5.example":             ISP,
		"something.unrelated.example":    Unknown,
		"HOST.MOBILE2.EXAMPLE":           Mobile, // case-insensitive
		"wireless-ap.university.example": Mobile,
	}
	for host, want := range cases {
		if got := ClassifyHostname(host); got != want {
			t.Errorf("ClassifyHostname(%q) = %v, want %v", host, got, want)
		}
	}
}

func TestProviderHostnamesClassifyToOwnCategory(t *testing.T) {
	// The generator's hostnames must round-trip through the heuristic.
	r := NewRegistry()
	for _, p := range r.Providers() {
		host := p.ClientHostname(p.ClientAddr(7, false))
		if got := ClassifyHostname(host); got != p.Category {
			t.Errorf("%s hostname %q classified as %v", p.Name, host, got)
		}
	}
}

func TestCategoryString(t *testing.T) {
	if Cloud.String() != "cloud" || Mobile.String() != "mobile" || Unknown.String() != "unknown" {
		t.Error("category names wrong")
	}
}

// Property: distinct client indices within one provider yield
// distinct IPv4 addresses (up to the block capacity).
func TestQuickClientAddrInjective(t *testing.T) {
	r := NewRegistry()
	p, _ := r.ByRank(12)
	f := func(a, b uint16) bool {
		ia, ib := int(a%60000), int(b%60000)
		if ia == ib {
			return true
		}
		return p.ClientAddr(ia, false) != p.ClientAddr(ib, false)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
