// Package ipasn is the IP-to-provider mapping substrate of the §3.1
// log study. The paper used Team Cymru's IP-to-ASN service plus a
// keyword heuristic over reverse-DNS hostnames to group NTP clients
// into service-provider categories; this package provides (a) a
// synthetic registry of 25 providers in the paper's four latency
// categories, with deterministic prefix assignments, and (b) the
// keyword classification heuristic itself, applicable to any
// hostname.
package ipasn

import (
	"fmt"
	"net/netip"
	"strings"
)

// Category is the §3.1 provider taxonomy.
type Category int

const (
	// Cloud covers cloud and hosting providers (SP 1–3, median min
	// OWD ≈ 40 ms).
	Cloud Category = iota
	// ISP covers Internet service providers (SP 4–9, ≈ 50 ms).
	ISP
	// Broadband covers residential broadband (SP 10–21, ≈ 250 ms).
	Broadband
	// Mobile covers mobile carriers (SP 22–25, ≈ 550 ms, wide IQR).
	Mobile
	// Unknown marks unclassifiable clients.
	Unknown
)

// String renders the category name.
func (c Category) String() string {
	switch c {
	case Cloud:
		return "cloud"
	case ISP:
		return "isp"
	case Broadband:
		return "broadband"
	case Mobile:
		return "mobile"
	default:
		return "unknown"
	}
}

// Provider is one service provider in the registry.
type Provider struct {
	// Name is the anonymized label (SP 1 … SP 25), matching the
	// paper's convention of withholding provider names.
	Name string
	// Rank is the 1-based index in the paper's SP numbering.
	Rank     int
	Category Category
	ASN      uint32
	// Prefix4 is the provider's IPv4 block; Prefix6 the IPv6 block.
	Prefix4 netip.Prefix
	Prefix6 netip.Prefix
	// HostSuffix is the reverse-DNS suffix of the provider's clients,
	// carrying the category keyword the heuristic keys on.
	HostSuffix string
}

// categoryKeywords drive the hostname heuristic, mirroring the
// paper's examples ("mobile, cloud, Amazon, Sprint, etc.").
var categoryKeywords = map[Category][]string{
	Cloud:     {"cloud", "hosting", "aws", "compute", "datacenter", "vps"},
	ISP:       {"isp", "net", "transit", "backbone"},
	Broadband: {"dsl", "cable", "fiber", "broadband", "res", "pool-addr", "dynamic"},
	Mobile:    {"mobile", "wireless", "cell", "lte", "3g", "4g", "wap", "pcs"},
}

// ClassifyHostname applies the keyword heuristic to a hostname and
// returns the inferred category (Unknown when nothing matches). More
// specific categories win: mobile keywords are checked before
// broadband because carrier hostnames often also contain generic
// tokens.
func ClassifyHostname(host string) Category {
	h := strings.ToLower(host)
	for _, c := range []Category{Mobile, Cloud, Broadband, ISP} {
		for _, kw := range categoryKeywords[c] {
			if strings.Contains(h, kw) {
				return c
			}
		}
	}
	return Unknown
}

// Registry maps addresses and hostnames to providers.
type Registry struct {
	providers []Provider
}

// categoryOfRank maps the paper's SP rank to its category: SP 1–3
// cloud, 4–9 ISP, 10–21 broadband, 22–25 mobile.
func categoryOfRank(rank int) Category {
	switch {
	case rank <= 3:
		return Cloud
	case rank <= 9:
		return ISP
	case rank <= 21:
		return Broadband
	default:
		return Mobile
	}
}

// keywordOfCategory picks the hostname token embedded in a provider's
// client hostnames.
func keywordOfCategory(c Category) string {
	return categoryKeywords[c][0]
}

// NewRegistry builds the synthetic 25-provider registry. Provider
// SP n owns 10.n.0.0/16 and 2001:db8:n::/48, with hostnames
// host-<x>.<keyword><n>.example.
func NewRegistry() *Registry {
	r := &Registry{}
	for rank := 1; rank <= 25; rank++ {
		cat := categoryOfRank(rank)
		p4 := netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(rank), 0, 0}), 16)
		var a16 [16]byte
		copy(a16[:], []byte{0x20, 0x01, 0x0d, 0xb8, 0, byte(rank)})
		p6 := netip.PrefixFrom(netip.AddrFrom16(a16), 48)
		r.providers = append(r.providers, Provider{
			Name:       fmt.Sprintf("SP %d", rank),
			Rank:       rank,
			Category:   cat,
			ASN:        64500 + uint32(rank),
			Prefix4:    p4,
			Prefix6:    p6,
			HostSuffix: fmt.Sprintf("%s%d.example", keywordOfCategory(cat), rank),
		})
	}
	return r
}

// Providers returns all providers in rank order.
func (r *Registry) Providers() []Provider { return r.providers }

// ByRank returns the provider with the given SP rank (1-based).
func (r *Registry) ByRank(rank int) (Provider, bool) {
	if rank < 1 || rank > len(r.providers) {
		return Provider{}, false
	}
	return r.providers[rank-1], true
}

// Lookup maps an address to its provider (the Team Cymru substitute).
func (r *Registry) Lookup(addr netip.Addr) (Provider, bool) {
	for _, p := range r.providers {
		if p.Prefix4.Contains(addr) || p.Prefix6.Contains(addr) {
			return p, true
		}
	}
	return Provider{}, false
}

// ClientAddr returns the i-th client address of a provider,
// deterministically spread across the provider's IPv4 block (or IPv6
// when v6 is true).
func (p Provider) ClientAddr(i int, v6 bool) netip.Addr {
	if v6 {
		a := p.Prefix6.Addr().As16()
		a[13] = byte(i >> 16)
		a[14] = byte(i >> 8)
		a[15] = byte(i)
		return netip.AddrFrom16(a)
	}
	a := p.Prefix4.Addr().As4()
	// Skip .0.0 and network-ish addresses.
	n := i + 257
	a[2] = byte(n >> 8)
	a[3] = byte(n)
	return netip.AddrFrom4(a)
}

// ClientHostname returns the reverse-DNS name of a client address
// within the provider, embedding the category keyword.
func (p Provider) ClientHostname(addr netip.Addr) string {
	return fmt.Sprintf("host-%s.%s", strings.ReplaceAll(addr.String(), ":", "-"), p.HostSuffix)
}
