package ntplog

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"mntp/internal/ipasn"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/pcap"
)

// GenConfig parameterizes trace generation.
type GenConfig struct {
	// Scale multiplies the Table 1 client counts (default 1/2000).
	// Per-client request counts stay at their full-scale ratios, so
	// the per-server totals scale by the same factor.
	Scale float64
	// MaxRequestsPerClient caps the per-client request count for
	// tractability (default 120; only SU1's very chatty population is
	// affected).
	MaxRequestsPerClient int
	// Day is the capture day (default 2016-11-14, 24 h).
	Day time.Time
	// UnsyncFraction is the share of clients with badly wrong clocks
	// that the analyzer's filtering heuristic must exclude
	// (default 0.05).
	UnsyncFraction float64
	// Seed drives everything.
	Seed int64
}

func (c *GenConfig) applyDefaults() {
	if c.Scale == 0 {
		c.Scale = 1.0 / 2000
	}
	if c.MaxRequestsPerClient == 0 {
		c.MaxRequestsPerClient = 120
	}
	if c.Day.IsZero() {
		c.Day = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)
	}
	if c.UnsyncFraction == 0 {
		c.UnsyncFraction = 0.05
	}
}

// serverAddr4/serverAddr6 are the capture host's own addresses.
var (
	serverAddr4 = netip.MustParseAddr("192.0.2.123")
	serverAddr6 = netip.MustParseAddr("2001:db8:ffff::123")
)

// providerWeights gives the relative client population per provider
// rank. Mobile carriers carry large client populations on public
// servers (the paper finds mobile hosts dominate); cloud providers a
// moderate share; broadband the long tail.
func providerWeight(p ipasn.Provider) float64 {
	switch p.Category {
	case ipasn.Cloud:
		return 0.055
	case ipasn.ISP:
		return 0.045
	case ipasn.Broadband:
		return 0.030
	case ipasn.Mobile:
		return 0.075
	default:
		return 0.01
	}
}

// minOWD draws a client's base one-way delay from its provider
// category's distribution, calibrated to the paper's Figure 1
// medians: cloud ≈ 40 ms, ISP ≈ 50 ms, broadband ≈ 250 ms, mobile
// 400–600 ms with wide IQR (and the near-linear CDF the paper notes
// for mobile providers, approximated by a high-variance lognormal).
func minOWD(p ipasn.Provider, rng *rand.Rand) time.Duration {
	var medianMs, sigma float64
	switch p.Category {
	case ipasn.Cloud:
		medianMs, sigma = 40, 0.30
	case ipasn.ISP:
		medianMs, sigma = 50, 0.35
	case ipasn.Broadband:
		medianMs, sigma = 250, 0.45
	case ipasn.Mobile:
		// Rank 22 → ~420 ms … rank 25 → ~600 ms median.
		medianMs, sigma = 420+60*float64(p.Rank-22), 0.60
	}
	ms := math.Exp(math.Log(medianMs) + sigma*rng.NormFloat64())
	if ms < 1 {
		ms = 1
	}
	if ms > 997 { // the paper's observed OWD ceiling
		ms = 997
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// sntpProbability returns the chance a client of the provider uses
// SNTP rather than full NTP, per Figure 2: ≥95 % for mobile
// providers, a clear majority elsewhere on public servers, but a
// minority on ISP-specific servers.
func sntpProbability(p ipasn.Provider, ispSpecific bool) float64 {
	if ispSpecific {
		return 0.18
	}
	switch p.Category {
	case ipasn.Mobile:
		return 0.965
	case ipasn.Cloud:
		return 0.45
	default:
		return 0.70
	}
}

// event is one packet to be captured.
type event struct {
	ts   time.Time
	data []byte
}

// Generate writes the synthetic capture of one server to w and
// returns the number of clients and request packets generated.
func Generate(w io.Writer, prof ServerProfile, reg *ipasn.Registry, cfg GenConfig) (clients, requests int, err error) {
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(hashID(prof.ID))))

	nClients := int(float64(prof.UniqueClients) * cfg.Scale)
	if nClients < 30 {
		nClients = 30
	}
	perClient := prof.Measurements / prof.UniqueClients
	if perClient < 1 {
		perClient = 1
	}
	if perClient > cfg.MaxRequestsPerClient {
		perClient = cfg.MaxRequestsPerClient
	}

	// Provider sampling distribution.
	providers := reg.Providers()
	cum := make([]float64, len(providers))
	var total float64
	for i, p := range providers {
		weight := providerWeight(p)
		if prof.ISPSpecific {
			// ISP-specific servers serve overwhelmingly their own
			// ISP's clients; pin to one ISP-category provider per
			// server.
			if p.Category == ipasn.ISP && p.Rank == 4+int(hashID(prof.ID))%6 {
				weight = 8
			} else {
				weight *= 0.05
			}
		}
		total += weight
		cum[i] = total
	}
	pickProvider := func() ipasn.Provider {
		x := rng.Float64() * total
		i := sort.SearchFloat64s(cum, x)
		if i >= len(providers) {
			i = len(providers) - 1
		}
		return providers[i]
	}

	var events []event
	day := cfg.Day
	perProviderIdx := make(map[int]int)

	for ci := 0; ci < nClients; ci++ {
		p := pickProvider()
		idx := perProviderIdx[p.Rank]
		perProviderIdx[p.Rank]++
		useV6 := prof.DualStack && rng.Float64() < 0.2
		addr := p.ClientAddr(idx, useV6)
		srvAddr := serverAddr4
		if useV6 {
			srvAddr = serverAddr6
		}

		isSNTP := rng.Float64() < sntpProbability(p, prof.ISPSpecific)
		// Client clock state: synchronized clients are within ±25 ms;
		// unsynchronized ones are seconds-to-hours wrong and must be
		// excluded by the analyzer's filtering heuristic.
		var clockErr time.Duration
		if rng.Float64() < cfg.UnsyncFraction {
			mag := 2 + rng.Float64()*3598 // 2 s … 1 h
			clockErr = time.Duration(mag * float64(time.Second))
			if rng.Intn(2) == 0 {
				clockErr = -clockErr
			}
		} else {
			clockErr = time.Duration((rng.Float64()*50 - 25) * float64(time.Millisecond))
		}

		base := minOWD(p, rng)
		// Jitter above the base delay; heavier for mobile.
		jitterScale := 0.15 * float64(base)
		reqs := 1 + rng.Intn(2*perClient) // mean ≈ perClient
		srcPort := uint16(1024 + rng.Intn(60000))

		// Temporal pattern: full NTP clients poll periodically at a
		// power-of-two interval with small jitter (ntpd's behaviour);
		// SNTP clients ask on demand — bursts at irregular times (app
		// launches, wake-ups), the pattern the paper attributes to
		// mobile devices.
		sendTimes := make([]time.Time, 0, reqs)
		if !isSNTP {
			pollIv := time.Duration(64<<rng.Intn(5)) * time.Second // 64s … 1024s
			start := day.Add(time.Duration(rng.Float64() * float64(pollIv)))
			for ts := start; ts.Before(day.Add(24*time.Hour)) && len(sendTimes) < reqs; ts = ts.Add(pollIv) {
				jitter := time.Duration(rng.Float64() * 0.02 * float64(pollIv))
				sendTimes = append(sendTimes, ts.Add(jitter))
			}
		} else {
			for len(sendTimes) < reqs {
				burstStart := day.Add(time.Duration(rng.Float64() * float64(24*time.Hour)))
				burstLen := 1 + rng.Intn(3)
				for b := 0; b < burstLen && len(sendTimes) < reqs; b++ {
					sendTimes = append(sendTimes,
						burstStart.Add(time.Duration(b)*time.Duration(5+rng.Intn(20))*time.Second))
				}
			}
		}

		for _, trueSend := range sendTimes {
			owdUp := base + time.Duration(rng.ExpFloat64()*jitterScale)
			captureTS := trueSend.Add(owdUp)

			clientTime := trueSend.Add(clockErr)
			var req *ntppkt.Packet
			if isSNTP {
				req = ntppkt.NewSNTPClient(pickVersion(rng, true), ntptime.FromTime(clientTime))
			} else {
				req = ntppkt.NewClient(pickVersion(rng, false), ntptime.FromTime(clientTime))
				req.Poll = int8(6 + rng.Intn(5))
				req.Stratum = uint8(2 + rng.Intn(3))
				req.RootDelay = ntptime.DurationToShort(time.Duration(rng.Intn(80)) * time.Millisecond)
				req.RootDisp = ntptime.DurationToShort(time.Duration(1+rng.Intn(30)) * time.Millisecond)
				req.RefID = [4]byte{10, byte(rng.Intn(256)), 0, 1}
				req.RefTime = ntptime.FromTime(clientTime.Add(-time.Duration(rng.Intn(1024)) * time.Second))
			}
			reqRaw, err := pcap.EncodeUDP(pcap.UDPDatagram{
				Src: addr, Dst: srvAddr, SrcPort: srcPort, DstPort: 123,
				Payload: req.Encode(nil),
			})
			if err != nil {
				return 0, 0, fmt.Errorf("ntplog: encode request: %w", err)
			}
			events = append(events, event{ts: captureTS, data: reqRaw})
			requests++

			// Server response, captured on transmit.
			respTS := captureTS.Add(time.Duration(50+rng.Intn(400)) * time.Microsecond)
			resp := &ntppkt.Packet{
				Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
				Stratum: prof.Stratum, Poll: req.Poll, Precision: -23,
				RootDelay: ntptime.DurationToShort(12 * time.Millisecond),
				RootDisp:  ntptime.DurationToShort(4 * time.Millisecond),
				RefID:     [4]byte{'G', 'P', 'S', 0},
				RefTime:   ntptime.FromTime(respTS.Add(-16 * time.Second)),
				Origin:    req.Transmit,
				Receive:   ntptime.FromTime(captureTS),
				Transmit:  ntptime.FromTime(respTS),
			}
			respRaw, err := pcap.EncodeUDP(pcap.UDPDatagram{
				Src: srvAddr, Dst: addr, SrcPort: 123, DstPort: srcPort,
				Payload: resp.Encode(nil),
			})
			if err != nil {
				return 0, 0, fmt.Errorf("ntplog: encode response: %w", err)
			}
			events = append(events, event{ts: respTS, data: respRaw})
		}
		clients++
	}

	sort.Slice(events, func(i, j int) bool { return events[i].ts.Before(events[j].ts) })
	pw, err := pcap.NewWriter(w)
	if err != nil {
		return 0, 0, err
	}
	for _, e := range events {
		if err := pw.WritePacket(e.ts, e.data); err != nil {
			return 0, 0, err
		}
	}
	return clients, requests, nil
}

// pickVersion draws a protocol version: SNTP clients are mostly v3
// with some v4; full clients mostly v4.
func pickVersion(rng *rand.Rand, sntp bool) uint8 {
	if sntp {
		if rng.Float64() < 0.6 {
			return ntppkt.Version3
		}
		return ntppkt.Version4
	}
	if rng.Float64() < 0.9 {
		return ntppkt.Version4
	}
	return ntppkt.Version3
}

// hashID folds a server ID into a small deterministic integer.
func hashID(id string) uint32 {
	var h uint32 = 2166136261
	for i := 0; i < len(id); i++ {
		h = (h ^ uint32(id[i])) * 16777619
	}
	return h
}
