package ntplog

import (
	"bytes"
	"testing"

	"mntp/internal/ipasn"
	"mntp/internal/stats"
)

func TestTable1ProfilesComplete(t *testing.T) {
	profs := Table1Profiles()
	if len(profs) != 19 {
		t.Fatalf("profiles = %d, want 19", len(profs))
	}
	var clients, meas int
	stratum1 := 0
	for _, p := range profs {
		clients += p.UniqueClients
		meas += p.Measurements
		if p.Stratum == 1 {
			stratum1++
		}
	}
	// The paper's text claims 17,823,505 unique clients and
	// 209,447,922 measurements over 5 stratum-1 servers. The
	// measurement total matches the Table 1 rows exactly; the client
	// total does not (the rows sum to 15,303,436 — the text figure is
	// inconsistent with the paper's own table by ~2.52 M). We encode
	// the table rows, which are the per-server ground truth.
	if clients != 15303436 {
		t.Errorf("total clients = %d, want 15303436 (Table 1 row sum)", clients)
	}
	if meas != 209447922 {
		t.Errorf("total measurements = %d, want 209447922", meas)
	}
	if stratum1 != 5 {
		t.Errorf("stratum-1 servers = %d, want 5", stratum1)
	}
	if _, ok := ProfileByID("SU1"); !ok {
		t.Error("SU1 missing")
	}
	if _, ok := ProfileByID("XX9"); ok {
		t.Error("bogus ID resolved")
	}
}

// generateAnalyze produces and re-analyzes one server at small scale.
func generateAnalyze(t *testing.T, id string, seed int64) (*Report, ServerProfile) {
	t.Helper()
	prof, ok := ProfileByID(id)
	if !ok {
		t.Fatalf("unknown profile %s", id)
	}
	reg := ipasn.NewRegistry()
	var buf bytes.Buffer
	clients, requests, err := Generate(&buf, prof, reg, GenConfig{
		Scale: 1.0 / 20000, Seed: seed, MaxRequestsPerClient: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if clients == 0 || requests == 0 {
		t.Fatal("nothing generated")
	}
	rep, err := Analyze(&buf, reg, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return rep, prof
}

func TestAnalyzeRecoversTable1Fields(t *testing.T) {
	rep, prof := generateAnalyze(t, "SU1", 1)
	if rep.ServerStratum != prof.Stratum {
		t.Errorf("stratum = %d, want %d", rep.ServerStratum, prof.Stratum)
	}
	if got := rep.IPVersion(); got != "v4/v6" {
		t.Errorf("ip version = %s, want v4/v6 (dual stack)", got)
	}
	if rep.UniqueClients() < 25 {
		t.Errorf("unique clients = %d", rep.UniqueClients())
	}
	if rep.TotalMeasurements < rep.UniqueClients() {
		t.Error("measurements < clients")
	}
	row := rep.Table1Row("SU1")
	if row.ServerID != "SU1" || row.UniqueClients != rep.UniqueClients() {
		t.Errorf("row = %+v", row)
	}
}

func TestAnalyzeV4OnlyServer(t *testing.T) {
	rep, _ := generateAnalyze(t, "JW2", 2)
	if got := rep.IPVersion(); got != "v4" {
		t.Errorf("ip version = %s, want v4", got)
	}
}

func TestFilteringExcludesUnsynchronizedClients(t *testing.T) {
	prof, _ := ProfileByID("UI1")
	reg := ipasn.NewRegistry()
	var buf bytes.Buffer
	// Half the clients unsynchronized: the heuristic must drop them.
	if _, _, err := Generate(&buf, prof, reg, GenConfig{
		Scale: 1.0 / 2000, Seed: 3, UnsyncFraction: 0.5, MaxRequestsPerClient: 20,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(&buf, reg, AnalyzeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	valid := len(rep.ValidClients())
	total := rep.UniqueClients()
	frac := float64(valid) / float64(total)
	if frac < 0.35 || frac > 0.65 {
		t.Errorf("valid fraction = %.2f with 50%% unsync population", frac)
	}
	// All surviving OWDs must be within the plausible window.
	for _, c := range rep.ValidClients() {
		for _, o := range c.OWDs {
			if o <= 0 || o >= 1200 {
				t.Fatalf("valid client retains implausible OWD %.1fms", o)
			}
		}
	}
}

func TestProviderLatencyOrdering(t *testing.T) {
	// Figure 1's four latency classes must be recoverable from the
	// analyzed min-OWDs: cloud < isp < broadband < mobile medians.
	rep, _ := generateAnalyze(t, "AG1", 4)
	med := map[ipasn.Category][]float64{}
	for _, agg := range rep.ByProvider() {
		if len(agg.MinOWDs) < 5 {
			continue
		}
		med[agg.Provider.Category] = append(med[agg.Provider.Category], stats.Median(agg.MinOWDs))
	}
	avg := func(c ipasn.Category) float64 { return stats.Mean(med[c]) }
	if len(med[ipasn.Cloud]) == 0 || len(med[ipasn.Mobile]) == 0 {
		t.Skip("too few clients per category at this scale")
	}
	if !(avg(ipasn.Cloud) < avg(ipasn.ISP) && avg(ipasn.ISP) < avg(ipasn.Broadband) &&
		avg(ipasn.Broadband) < avg(ipasn.Mobile)) {
		t.Errorf("category medians not ordered: cloud %.0f isp %.0f bb %.0f mobile %.0f",
			avg(ipasn.Cloud), avg(ipasn.ISP), avg(ipasn.Broadband), avg(ipasn.Mobile))
	}
	if m := avg(ipasn.Mobile); m < 300 {
		t.Errorf("mobile median %.0fms, want ≳ 400ms (paper: ~550)", m)
	}
}

func TestMobileProvidersMostlySNTP(t *testing.T) {
	rep, _ := generateAnalyze(t, "MW2", 5)
	for _, agg := range rep.ByProvider() {
		if agg.Provider.Category != ipasn.Mobile || agg.Clients < 20 {
			continue
		}
		if share := agg.SNTPShare(); share < 0.90 {
			t.Errorf("%s SNTP share = %.2f, want ≥ 0.90 (paper: >95%%)",
				agg.Provider.Name, share)
		}
	}
	// Server-wide, the majority of a public server's clients are SNTP.
	if share := rep.ProtocolShare(); share < 0.55 {
		t.Errorf("server SNTP share = %.2f, want majority", share)
	}
}

func TestISPSpecificServersMostlyNTP(t *testing.T) {
	rep, _ := generateAnalyze(t, "CI1", 6)
	if share := rep.ProtocolShare(); share > 0.45 {
		t.Errorf("ISP-specific server SNTP share = %.2f, want minority", share)
	}
}

func TestGenerateDeterministicPerSeed(t *testing.T) {
	prof, _ := ProfileByID("EN1")
	reg := ipasn.NewRegistry()
	gen := func(seed int64) []byte {
		var buf bytes.Buffer
		if _, _, err := Generate(&buf, prof, reg, GenConfig{Scale: 1.0 / 10, Seed: seed}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(gen(7), gen(7)) {
		t.Error("same seed produced different traces")
	}
	if bytes.Equal(gen(7), gen(8)) {
		t.Error("different seeds produced identical traces")
	}
}

func TestPeriodicityHeuristicAgreesWithWireShape(t *testing.T) {
	// The generator gives full NTP clients ntpd-like periodic polling
	// and SNTP clients bursty on-demand patterns; the inter-arrival
	// heuristic must agree with the wire-shape classification for the
	// overwhelming majority of clients with enough samples.
	rep, _ := generateAnalyze(t, "UI1", 9)
	agree, disagree := 0, 0
	for _, cs := range rep.Clients {
		periodic, ok := cs.PollsPeriodically()
		if !ok {
			continue
		}
		// Wire-shape says NTP ⇔ periodicity says periodic.
		if periodic == !cs.IsSNTP() {
			agree++
		} else {
			disagree++
		}
	}
	if agree+disagree < 20 {
		t.Skipf("too few classifiable clients (%d)", agree+disagree)
	}
	if frac := float64(agree) / float64(agree+disagree); frac < 0.8 {
		t.Errorf("heuristics agree on %.0f%%, want ≥ 80%%", frac*100)
	}
}

func TestPollsPeriodicallyNeedsSamples(t *testing.T) {
	cs := &ClientStats{}
	if _, ok := cs.PollsPeriodically(); ok {
		t.Error("empty client judged")
	}
}
