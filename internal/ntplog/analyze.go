package ntplog

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"mntp/internal/ipasn"
	"mntp/internal/ntppkt"
	"mntp/internal/pcap"
	"mntp/internal/stats"
)

// AnalyzeConfig tunes the filtering heuristic.
type AnalyzeConfig struct {
	// MaxOWD is the sanity ceiling on a one-way delay; samples beyond
	// it indicate an unsynchronized client clock (default 1.2 s,
	// comfortably above the paper's 997 ms observed maximum).
	MaxOWD time.Duration
	// MinOWD is the floor; non-positive OWDs indicate a client clock
	// ahead of true time (default 100 µs).
	MinOWD time.Duration
	// MinValidFraction is the share of a client's samples that must
	// pass the bounds for the client to be considered synchronized
	// (default 0.9) — the filtering heuristic of Durairajan et al.
	// that §3.1 applies "to eliminate invalid latency measurements".
	MinValidFraction float64
}

func (c *AnalyzeConfig) applyDefaults() {
	if c.MaxOWD == 0 {
		c.MaxOWD = 1200 * time.Millisecond
	}
	if c.MinOWD == 0 {
		c.MinOWD = 100 * time.Microsecond
	}
	if c.MinValidFraction == 0 {
		c.MinValidFraction = 0.9
	}
}

// ClientStats aggregates one client's traffic.
type ClientStats struct {
	Addr     netip.Addr
	Requests int
	// SNTP counts requests with the minimal SNTP wire shape; the
	// client is classified SNTP when the majority of its requests
	// are.
	SNTP int
	// OWDs are the per-request uplink one-way delays in milliseconds
	// (capture time − client transmit timestamp).
	OWDs []float64
	// arrivals are the capture times of the client's requests, used
	// by the periodicity heuristic.
	arrivals []time.Time
	// Valid is set by the filtering heuristic.
	Valid bool
	// Provider is the IP-to-provider mapping result (nil rank 0 when
	// unmapped).
	Provider ipasn.Provider
	Mapped   bool
}

// IsSNTP reports the client's majority protocol classification.
func (c *ClientStats) IsSNTP() bool { return c.SNTP*2 > c.Requests }

// PollsPeriodically is a second, payload-independent protocol signal:
// full NTP clients poll at a stable power-of-two cadence, so the
// coefficient of variation of their request inter-arrivals is small.
// SNTP clients ask on demand and look bursty. Returns false when the
// client has too few requests to judge.
//
// This cross-checks the wire-shape heuristic: a client whose packets
// look like SNTP but which polls with ntpd-like regularity (or vice
// versa) is worth flagging in a real study.
func (c *ClientStats) PollsPeriodically() (periodic, ok bool) {
	if len(c.arrivals) < 5 {
		return false, false
	}
	gaps := make([]float64, 0, len(c.arrivals)-1)
	for i := 1; i < len(c.arrivals); i++ {
		gaps = append(gaps, c.arrivals[i].Sub(c.arrivals[i-1]).Seconds())
	}
	mean, std := stats.MeanStd(gaps)
	if mean <= 0 {
		return false, false
	}
	// ntpd jitters its poll by a few percent; allow up to 20% CoV.
	return std/mean < 0.20, true
}

// MinOWD returns the client's minimum valid OWD in milliseconds.
func (c *ClientStats) MinOWD() float64 {
	if len(c.OWDs) == 0 {
		return 0
	}
	return stats.Min(c.OWDs)
}

// Report is the analysis of one server's capture.
type Report struct {
	// ServerStratum is learned from the server's own responses.
	ServerStratum uint8
	// SawV4 and SawV6 record the address families observed.
	SawV4, SawV6 bool
	// TotalMeasurements counts client requests (one OWD measurement
	// each), matching Table 1's accounting.
	TotalMeasurements int
	// Clients holds per-client aggregates, keyed by address.
	Clients map[netip.Addr]*ClientStats
}

// IPVersion renders the Table 1 "IP Version" cell.
func (r *Report) IPVersion() string {
	switch {
	case r.SawV4 && r.SawV6:
		return "v4/v6"
	case r.SawV6:
		return "v6"
	default:
		return "v4"
	}
}

// UniqueClients returns the number of distinct client addresses.
func (r *Report) UniqueClients() int { return len(r.Clients) }

// ValidClients returns the clients that passed the filtering
// heuristic.
func (r *Report) ValidClients() []*ClientStats {
	var out []*ClientStats
	for _, c := range r.Clients {
		if c.Valid {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr.Less(out[j].Addr) })
	return out
}

// ProtocolShare returns the fraction of clients classified as SNTP
// (over all clients with at least one request).
func (r *Report) ProtocolShare() (sntpFrac float64) {
	var sntp, total int
	for _, c := range r.Clients {
		total++
		if c.IsSNTP() {
			sntp++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(sntp) / float64(total)
}

// Analyze parses one server capture and applies the §3.1 pipeline.
func Analyze(rd io.Reader, reg *ipasn.Registry, cfg AnalyzeConfig) (*Report, error) {
	cfg.applyDefaults()
	pr, err := pcap.NewReader(rd)
	if err != nil {
		return nil, err
	}
	rep := &Report{Clients: make(map[netip.Addr]*ClientStats)}
	var pkt ntppkt.Packet
	for {
		rec, err := pr.ReadPacket()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		dg, err := pcap.DecodeUDP(rec.Data)
		if err != nil {
			continue // non-UDP noise
		}
		if err := pkt.DecodeInto(dg.Payload); err != nil {
			continue // runt
		}

		switch {
		case dg.DstPort == 123 && pkt.Mode == ntppkt.ModeClient:
			if dg.Src.Is4() {
				rep.SawV4 = true
			} else {
				rep.SawV6 = true
			}
			cs := rep.Clients[dg.Src]
			if cs == nil {
				cs = &ClientStats{Addr: dg.Src}
				if p, ok := reg.Lookup(dg.Src); ok {
					cs.Provider, cs.Mapped = p, true
				}
				rep.Clients[dg.Src] = cs
			}
			cs.Requests++
			rep.TotalMeasurements++
			cs.arrivals = append(cs.arrivals, rec.Timestamp)
			if pkt.IsSNTPRequest() {
				cs.SNTP++
			}
			// Uplink OWD: capture time minus the client's transmit
			// timestamp. Era resolution pivots on the capture time.
			if !pkt.Transmit.IsZero() {
				t1 := pkt.Transmit.Time(rec.Timestamp)
				owd := rec.Timestamp.Sub(t1)
				cs.OWDs = append(cs.OWDs, float64(owd)/float64(time.Millisecond))
			}
		case dg.SrcPort == 123 && pkt.Mode == ntppkt.ModeServer:
			rep.ServerStratum = pkt.Stratum
		}
	}

	// Filtering heuristic: a client is valid when ≥ MinValidFraction
	// of its OWD samples are plausible; its OWD list is then pruned
	// to the plausible samples.
	minMs := float64(cfg.MinOWD) / float64(time.Millisecond)
	maxMs := float64(cfg.MaxOWD) / float64(time.Millisecond)
	for _, cs := range rep.Clients {
		if len(cs.OWDs) == 0 {
			continue
		}
		valid := cs.OWDs[:0:0]
		for _, o := range cs.OWDs {
			if o > minMs && o < maxMs {
				valid = append(valid, o)
			}
		}
		if float64(len(valid)) >= cfg.MinValidFraction*float64(len(cs.OWDs)) && len(valid) > 0 {
			cs.Valid = true
			cs.OWDs = valid
		}
	}
	return rep, nil
}

// ProviderAggregate is the per-provider view used by Figures 1 and 2.
type ProviderAggregate struct {
	Provider ipasn.Provider
	Clients  int
	SNTP     int
	// MinOWDs is one minimum-OWD value per valid client, in ms.
	MinOWDs []float64
}

// SNTPShare returns the provider's SNTP client fraction.
func (a *ProviderAggregate) SNTPShare() float64 {
	if a.Clients == 0 {
		return 0
	}
	return float64(a.SNTP) / float64(a.Clients)
}

// Summary returns the distribution summary of the provider's
// min-OWDs.
func (a *ProviderAggregate) Summary() stats.Summary { return stats.Summarize(a.MinOWDs) }

// ByProvider groups a report's valid clients per provider rank,
// yielding the raw material of Figure 1 (min-OWD distributions) and
// Figure 2-right (per-provider protocol shares). Results are sorted
// by rank.
func (r *Report) ByProvider() []*ProviderAggregate {
	byRank := make(map[int]*ProviderAggregate)
	for _, cs := range r.Clients {
		if !cs.Mapped {
			continue
		}
		agg := byRank[cs.Provider.Rank]
		if agg == nil {
			agg = &ProviderAggregate{Provider: cs.Provider}
			byRank[cs.Provider.Rank] = agg
		}
		agg.Clients++
		if cs.IsSNTP() {
			agg.SNTP++
		}
		if cs.Valid {
			agg.MinOWDs = append(agg.MinOWDs, cs.MinOWD())
		}
	}
	out := make([]*ProviderAggregate, 0, len(byRank))
	for _, a := range byRank {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider.Rank < out[j].Provider.Rank })
	return out
}

// Table1Row is one row of the reproduced Table 1.
type Table1Row struct {
	ServerID          string
	UniqueClients     int
	Stratum           uint8
	IPVersion         string
	TotalMeasurements int
}

// Table1Row renders the report as its Table 1 row.
func (r *Report) Table1Row(serverID string) Table1Row {
	return Table1Row{
		ServerID:          serverID,
		UniqueClients:     r.UniqueClients(),
		Stratum:           r.ServerStratum,
		IPVersion:         r.IPVersion(),
		TotalMeasurements: r.TotalMeasurements,
	}
}

// String renders a row compactly.
func (t Table1Row) String() string {
	return fmt.Sprintf("%s: clients=%d stratum=%d ip=%s measurements=%d",
		t.ServerID, t.UniqueClients, t.Stratum, t.IPVersion, t.TotalMeasurements)
}
