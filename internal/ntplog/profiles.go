// Package ntplog reproduces the §3.1 NTP-server log study: a
// synthetic trace generator that writes pcap files with the
// client-population structure of the paper's 19 donated server logs
// (Table 1), and an analyzer that parses the traces back — extracting
// one-way delays with the filtering heuristic of Durairajan et al.,
// classifying clients into wired/wireless provider categories and
// SNTP/NTP protocol use — to regenerate Table 1 and Figures 1 and 2.
package ntplog

// ServerProfile describes one of the 19 NTP servers of Table 1. The
// counts are the paper's full-scale numbers; the generator scales
// them down by a configurable factor.
type ServerProfile struct {
	ID            string
	Stratum       uint8
	DualStack     bool // v4/v6 in Table 1
	UniqueClients int
	Measurements  int
	// ISPSpecific marks the CI1–4 and EN1–2 servers, which serve one
	// ISP's own (mostly full-NTP) clients rather than the public pool.
	ISPSpecific bool
}

// Table1Profiles are the 19 servers exactly as reported in Table 1 of
// the paper.
func Table1Profiles() []ServerProfile {
	return []ServerProfile{
		{ID: "AG1", Stratum: 2, DualStack: false, UniqueClients: 639704, Measurements: 9988576},
		{ID: "CI1", Stratum: 2, DualStack: true, UniqueClients: 606, Measurements: 1480571, ISPSpecific: true},
		{ID: "CI2", Stratum: 2, DualStack: true, UniqueClients: 359, Measurements: 1268928, ISPSpecific: true},
		{ID: "CI3", Stratum: 2, DualStack: true, UniqueClients: 335, Measurements: 812104, ISPSpecific: true},
		{ID: "CI4", Stratum: 2, DualStack: true, UniqueClients: 262, Measurements: 763847, ISPSpecific: true},
		{ID: "EN1", Stratum: 2, DualStack: true, UniqueClients: 228, Measurements: 411253, ISPSpecific: true},
		{ID: "EN2", Stratum: 2, DualStack: true, UniqueClients: 232, Measurements: 437440, ISPSpecific: true},
		{ID: "JW1", Stratum: 1, DualStack: false, UniqueClients: 12769, Measurements: 354530},
		{ID: "JW2", Stratum: 1, DualStack: false, UniqueClients: 35548, Measurements: 869721},
		{ID: "MW1", Stratum: 1, DualStack: false, UniqueClients: 2746, Measurements: 197900},
		{ID: "MW2", Stratum: 2, DualStack: false, UniqueClients: 9482918, Measurements: 46232069},
		{ID: "MW3", Stratum: 2, DualStack: false, UniqueClients: 1141163, Measurements: 10948402},
		{ID: "MW4", Stratum: 2, DualStack: false, UniqueClients: 2525072, Measurements: 11126121},
		{ID: "MI1", Stratum: 1, DualStack: false, UniqueClients: 1078308, Measurements: 63907095},
		{ID: "SU1", Stratum: 1, DualStack: true, UniqueClients: 21101, Measurements: 16404882},
		{ID: "UI1", Stratum: 2, DualStack: false, UniqueClients: 36559, Measurements: 18426282},
		{ID: "UI2", Stratum: 2, DualStack: false, UniqueClients: 18925, Measurements: 14194081},
		{ID: "UI3", Stratum: 2, DualStack: false, UniqueClients: 177957, Measurements: 9254843},
		{ID: "PP1", Stratum: 2, DualStack: false, UniqueClients: 128644, Measurements: 2369277},
	}
}

// ProfileByID returns the named profile.
func ProfileByID(id string) (ServerProfile, bool) {
	for _, p := range Table1Profiles() {
		if p.ID == id {
			return p, true
		}
	}
	return ServerProfile{}, false
}
