// Package tuner implements the MNTP tuner of §5.3: a trace-driven
// harness for exploring MNTP's four timing parameters. It has the
// paper's three components — a logger that records SNTP offsets from
// multiple reference clocks every few seconds together with the
// wireless hints; an emulator that replays the MNTP algorithm over a
// recorded trace under a given parameter configuration; and a
// searcher that sweeps parameter combinations, scoring each by the
// RMSE of the emulated MNTP offsets against a perfectly synchronized
// clock (offset 0) and by the number of requests generated.
package tuner

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"mntp/internal/core"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/sntp"
	"mntp/internal/stats"
	"mntp/internal/testbed"
	"mntp/internal/trend"
)

// OffsetObs is one source's response within a logging round.
type OffsetObs struct {
	OK     bool          `json:"ok"`
	Offset time.Duration `json:"offset"`
	// Delay is the measured round-trip delay; the emulator applies
	// the same delay sanity gate as the live client. Zero (old
	// traces) disables the gate for that observation.
	Delay time.Duration `json:"delay,omitempty"`
}

// Record is one logging round: hints plus the offsets reported by
// each reference clock.
type Record struct {
	Elapsed time.Duration `json:"elapsed"`
	Hints   hints.Hints   `json:"hints"`
	Offsets []OffsetObs   `json:"offsets"`
}

// Trace is a recorded log suitable for emulation.
type Trace struct {
	// Interval is the logging cadence (the paper logs every 5 s).
	Interval time.Duration `json:"interval"`
	Records  []Record      `json:"records"`
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// ReadTrace deserializes a trace.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("tuner: decode trace: %w", err)
	}
	if t.Interval <= 0 {
		return nil, fmt.Errorf("tuner: trace has non-positive interval")
	}
	return &t, nil
}

// Collect runs the logger on a testbed: every interval it reads the
// channel hints and queries each source once, for the given duration.
// The TN clock is left free-running (the §5.2 long-experiment
// setting). The testbed's monitor loop is started if configured.
func Collect(tb *testbed.Testbed, sources []string, interval, duration time.Duration) *Trace {
	tr := &Trace{Interval: interval}
	tb.Sched.Go(func(p *netsim.Proc) {
		xp := &netsim.Transport{Net: tb.Net, Proc: p, Clock: tb.TNClock}
		cl := sntp.New(tb.TNClock, xp, p, sntp.Config{})
		for p.Now() < duration {
			rec := Record{Elapsed: p.Now(), Hints: tb.Hints.Hints()}
			for _, src := range sources {
				cl.Config.Server = src
				s, err := cl.Query()
				if err != nil {
					rec.Offsets = append(rec.Offsets, OffsetObs{})
				} else {
					rec.Offsets = append(rec.Offsets, OffsetObs{OK: true, Offset: s.Offset, Delay: s.Delay})
				}
			}
			tr.Records = append(tr.Records, rec)
			// Align to the cadence even though queries consumed time.
			next := rec.Elapsed + interval
			if now := p.Now(); next > now {
				p.Sleep(next - now)
			}
		}
	})
	// Drive the monitor if the testbed has one configured.
	tb.Sched.Run()
	return tr
}

// Result is one emulated configuration's outcome.
type Result struct {
	Params core.Params
	// RMSE is the root mean squared error (ms) of the emulated MNTP
	// offsets — drift-corrected against the trend line — relative to
	// a perfectly synchronized clock.
	RMSE float64
	// Requests is the number of SNTP requests MNTP emitted.
	Requests int
	// Accepted and Rejected count filter decisions; Deferred counts
	// gating deferrals.
	Accepted, Rejected, Deferred int
}

// Emulate replays MNTP (Algorithm 1) over the trace under the given
// parameters. Warm-up rounds consume all sources of a record (with
// false-ticker rejection); regular rounds consume the first
// responsive source. Clock corrections are emulated analytically: the
// reported value scored against zero is the trend-corrected offset.
func Emulate(tr *Trace, p core.Params) Result {
	res := Result{Params: p}
	if len(tr.Records) == 0 {
		return res
	}
	th := p.Thresholds
	if (th == hints.Thresholds{}) {
		th = hints.Default()
	}
	floor := p.ResidualFloor
	if floor == 0 {
		floor = 3 * time.Millisecond
	}
	minSamples := p.MinTrendSamples
	if minSamples == 0 {
		minSamples = 3
	}
	// Delay sanity gate, mirroring the live client: fixed when
	// configured, otherwise adaptive to the smallest delay seen in
	// the cycle. minDelay is reset per cycle below.
	var minDelay time.Duration
	delayOK := func(o OffsetObs) bool {
		if o.Delay == 0 {
			return true // old trace without delays
		}
		if minDelay == 0 || o.Delay < minDelay {
			minDelay = o.Delay
			return true
		}
		gate := p.MaxSampleDelay
		if gate == 0 {
			gate = 3*minDelay + 30*time.Millisecond
		}
		return o.Delay <= gate
	}

	var corrected []float64
	i := 0
	n := len(tr.Records)
	advance := func(d time.Duration) {
		steps := int(d / tr.Interval)
		if steps < 1 {
			steps = 1
		}
		i += steps
	}

	for i < n {
		cycleStart := tr.Records[i].Elapsed
		filter := core.NewFilterKind(p.Estimator, p.EstimatorWindow, floor, minSamples)
		minDelay = 0

		// Warm-up phase.
		for i < n && tr.Records[i].Elapsed-cycleStart < p.WarmupPeriod {
			rec := tr.Records[i]
			if !p.DisableGating && !th.Favorable(rec.Hints) {
				res.Deferred++
				i++ // re-check at the next logging instant
				continue
			}
			var samples []exchange.Sample
			for _, o := range rec.Offsets {
				res.Requests++
				if o.OK && delayOK(o) {
					samples = append(samples, exchange.Sample{Offset: o.Offset})
				} else if o.OK {
					res.Rejected++
				}
			}
			if len(samples) > 0 {
				kept := samples
				if !p.DisableFalseTickerRejection {
					kept, _ = core.RejectFalseTickers(samples)
				}
				offset := core.CombineOffsets(kept)
				acc, pred, predOK := filter.Offer(rec.Elapsed-cycleStart, offset)
				if acc {
					res.Accepted++
					if predOK {
						corrected = append(corrected, (offset-pred).Seconds()*1000)
					} else {
						corrected = append(corrected, offset.Seconds()*1000)
					}
				} else {
					res.Rejected++
				}
			}
			advance(p.WarmupWaitTime)
		}

		// Regular phase.
		for i < n && tr.Records[i].Elapsed-cycleStart < p.ResetPeriod {
			rec := tr.Records[i]
			if !p.DisableGating && !th.Favorable(rec.Hints) {
				res.Deferred++
				i++
				continue
			}
			res.Requests++
			var got *OffsetObs
			for k := range rec.Offsets {
				if rec.Offsets[k].OK && delayOK(rec.Offsets[k]) {
					got = &rec.Offsets[k]
					break
				}
			}
			if got != nil {
				acc, pred, predOK := filter.Offer(rec.Elapsed-cycleStart, got.Offset)
				if acc {
					res.Accepted++
					if predOK {
						corrected = append(corrected, (got.Offset-pred).Seconds()*1000)
					} else {
						corrected = append(corrected, got.Offset.Seconds()*1000)
					}
				} else {
					res.Rejected++
				}
			}
			advance(p.RegularWaitTime)
		}
	}

	res.RMSE = stats.RMSE(corrected, 0)
	return res
}

// Config is a named parameter combination, in the paper's Table 2
// units (minutes), plus the trend estimator choice the search can
// sweep alongside the timing parameters.
type Config struct {
	Name                     string
	WarmupMin, WarmupWaitMin float64
	RegularWaitMin, ResetMin float64
	// Estimator selects the filter's trend estimator; empty means the
	// paper's least squares.
	Estimator trend.Kind
}

// Params converts the minute-based configuration to core.Params.
func (c Config) Params() core.Params {
	toDur := func(min float64) time.Duration {
		return time.Duration(min * float64(time.Minute))
	}
	return core.Params{
		WarmupPeriod:    toDur(c.WarmupMin),
		WarmupWaitTime:  toDur(c.WarmupWaitMin),
		RegularWaitTime: toDur(c.RegularWaitMin),
		ResetPeriod:     toDur(c.ResetMin),
		Estimator:       c.Estimator,
	}
}

// Table2Configs are the six sample configurations of Table 2.
func Table2Configs() []Config {
	return []Config{
		{Name: "1", WarmupMin: 30, WarmupWaitMin: 0.25, RegularWaitMin: 15, ResetMin: 240},
		{Name: "2", WarmupMin: 40, WarmupWaitMin: 0.25, RegularWaitMin: 15, ResetMin: 240},
		{Name: "3", WarmupMin: 50, WarmupWaitMin: 0.25, RegularWaitMin: 15, ResetMin: 240},
		{Name: "4", WarmupMin: 70, WarmupWaitMin: 0.25, RegularWaitMin: 30, ResetMin: 240},
		{Name: "5", WarmupMin: 90, WarmupWaitMin: 0.084, RegularWaitMin: 15, ResetMin: 240},
		{Name: "6", WarmupMin: 240, WarmupWaitMin: 0.084, RegularWaitMin: 15, ResetMin: 240},
	}
}

// SearchSpace bounds the searcher's grid. An empty Estimators slice
// searches only the paper's least squares.
type SearchSpace struct {
	WarmupMin      []float64
	WarmupWaitMin  []float64
	RegularWaitMin []float64
	ResetMin       []float64
	Estimators     []trend.Kind
}

// Search evaluates every combination in the space against the trace
// and returns results sorted by ascending RMSE (ties broken by fewer
// requests).
func Search(tr *Trace, space SearchSpace) []Result {
	ests := space.Estimators
	if len(ests) == 0 {
		ests = []trend.Kind{trend.KindLeastSquares}
	}
	var out []Result
	for _, w := range space.WarmupMin {
		for _, ww := range space.WarmupWaitMin {
			for _, rw := range space.RegularWaitMin {
				for _, rp := range space.ResetMin {
					for _, est := range ests {
						cfg := Config{
							WarmupMin: w, WarmupWaitMin: ww,
							RegularWaitMin: rw, ResetMin: rp,
							Estimator: est,
						}
						out = append(out, Emulate(tr, cfg.Params()))
					}
				}
			}
		}
	}
	sortResults(out)
	return out
}

func sortResults(rs []Result) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && less(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func less(a, b Result) bool {
	if a.RMSE != b.RMSE {
		return a.RMSE < b.RMSE
	}
	return a.Requests < b.Requests
}
