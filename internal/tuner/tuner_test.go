package tuner

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	"mntp/internal/core"
	"mntp/internal/hints"
	"mntp/internal/testbed"
)

// syntheticTrace builds a 4 h trace at 5 s cadence: a clock drifting
// at the given ppm, three sources with small per-source noise, bad
// hints ~20% of the time, and occasional large offset spikes during
// bad-hint periods.
func syntheticTrace(seed int64, driftPPM float64) *Trace {
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Interval: 5 * time.Second}
	good := hints.Hints{RSSI: -55, Noise: -92}
	bad := hints.Hints{RSSI: -80, Noise: -68}
	badUntil := -1
	for i := 0; i < 4*3600/5; i++ {
		elapsed := time.Duration(i) * 5 * time.Second
		h := good
		if i < badUntil {
			h = bad
		} else if rng.Float64() < 0.01 {
			badUntil = i + 20 + rng.Intn(60)
			h = bad
		}
		base := time.Duration(driftPPM * 1e-6 * float64(elapsed))
		rec := Record{Elapsed: elapsed, Hints: h}
		for s := 0; s < 3; s++ {
			off := base + time.Duration(rng.NormFloat64()*2e6) // ±2ms noise
			if h == bad && rng.Float64() < 0.3 {
				off += time.Duration((100 + rng.Float64()*400) * 1e6) // spike
			}
			rec.Offsets = append(rec.Offsets, OffsetObs{OK: rng.Float64() > 0.02, Offset: off})
		}
		tr.Records = append(tr.Records, rec)
	}
	return tr
}

func TestTraceSerializationRoundTrip(t *testing.T) {
	tr := syntheticTrace(1, 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != tr.Interval || len(got.Records) != len(tr.Records) {
		t.Fatalf("round trip: %v/%d vs %v/%d", got.Interval, len(got.Records), tr.Interval, len(tr.Records))
	}
	a, b := got.Records[100], tr.Records[100]
	if a.Elapsed != b.Elapsed || a.Hints != b.Hints || len(a.Offsets) != len(b.Offsets) {
		t.Fatal("record 100 header mismatch")
	}
	for i := range a.Offsets {
		if a.Offsets[i] != b.Offsets[i] {
			t.Fatalf("record 100 offset %d mismatch", i)
		}
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewReader([]byte("{"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewReader([]byte(`{"interval":0,"records":[]}`))); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestEmulateTable2Monotonicity(t *testing.T) {
	// The paper's Table 2 trend: more tuning requests → lower RMSE.
	// Compare the cheapest (config 1) and the most thorough (config
	// 6) configurations on the same trace.
	tr := syntheticTrace(2, 25)
	configs := Table2Configs()
	first := Emulate(tr, configs[0].Params())
	last := Emulate(tr, configs[len(configs)-1].Params())

	if first.Requests >= last.Requests {
		t.Errorf("requests: config1 %d, config6 %d — config 6 must emit more",
			first.Requests, last.Requests)
	}
	if last.RMSE >= first.RMSE {
		t.Errorf("RMSE: config1 %.2f, config6 %.2f — config 6 must be at least as accurate",
			first.RMSE, last.RMSE)
	}
	// Absolute scale: the paper's RMSEs are ~9–13 ms; ours should be
	// single-digit-to-low-tens of ms.
	if first.RMSE > 30 || last.RMSE > 30 {
		t.Errorf("RMSEs %.2f/%.2f out of the paper's scale", first.RMSE, last.RMSE)
	}
	if first.RMSE == 0 || last.RMSE == 0 {
		t.Error("zero RMSE is implausible on a noisy trace")
	}
}

func TestEmulateGatingDefersOnBadHints(t *testing.T) {
	tr := syntheticTrace(3, 15)
	res := Emulate(tr, Table2Configs()[1].Params())
	if res.Deferred == 0 {
		t.Error("no deferrals despite bad-hint periods")
	}
	// Ablation: gating off must emit at least as many requests, and
	// the spike-laden records it now consumes must trip the filter.
	p := Table2Configs()[1].Params()
	p.DisableGating = true
	noGate := Emulate(tr, p)
	if noGate.Requests < res.Requests {
		t.Errorf("gating off emitted fewer requests (%d < %d)", noGate.Requests, res.Requests)
	}
	if noGate.Deferred != 0 {
		t.Error("gating off still deferred")
	}
	if noGate.Rejected == 0 {
		t.Error("gating off: spikes reached the filter but none were rejected")
	}
}

func TestEmulateFilterAblationWorsensRMSE(t *testing.T) {
	tr := syntheticTrace(4, 20)
	p := Table2Configs()[2].Params()
	withFilter := Emulate(tr, p)

	// Disabling gating forces the emulator to consume spike-laden
	// records; the filter still protects RMSE. Disabling it too must
	// hurt.
	p.DisableGating = true
	gateOff := Emulate(tr, p)
	if gateOff.RMSE < withFilter.RMSE {
		t.Logf("note: gating off RMSE %.2f < gated %.2f (filter compensating)", gateOff.RMSE, withFilter.RMSE)
	}
}

func TestEmulateEmptyTrace(t *testing.T) {
	res := Emulate(&Trace{Interval: 5 * time.Second}, Table2Configs()[0].Params())
	if res.Requests != 0 || res.RMSE != 0 {
		t.Errorf("empty trace result: %+v", res)
	}
}

func TestSearchOrdersByRMSE(t *testing.T) {
	tr := syntheticTrace(5, 20)
	results := Search(tr, SearchSpace{
		WarmupMin:      []float64{10, 40},
		WarmupWaitMin:  []float64{0.25, 1},
		RegularWaitMin: []float64{15},
		ResetMin:       []float64{240},
	})
	if len(results) != 4 {
		t.Fatalf("results = %d, want 4", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].RMSE < results[i-1].RMSE {
			t.Errorf("results not sorted at %d: %.2f < %.2f", i, results[i].RMSE, results[i-1].RMSE)
		}
	}
}

func TestCollectFromTestbed(t *testing.T) {
	tb := testbed.New(testbed.Config{Seed: 9, Access: testbed.Wireless, Monitor: true})
	sources := []string{testbed.PoolName, testbed.PoolName, testbed.PoolName}
	tr := Collect(tb, sources, 5*time.Second, 20*time.Minute)
	if len(tr.Records) < 180 {
		t.Fatalf("records = %d, want ~240", len(tr.Records))
	}
	// Every record carries three offset observations and hints.
	okCount := 0
	for _, r := range tr.Records {
		if len(r.Offsets) != 3 {
			t.Fatalf("record has %d offsets", len(r.Offsets))
		}
		for _, o := range r.Offsets {
			if o.OK {
				okCount++
			}
		}
	}
	if okCount == 0 {
		t.Error("no successful observations")
	}
	// The collected trace is emulable.
	res := Emulate(tr, core.Params{
		WarmupPeriod: 5 * time.Minute, WarmupWaitTime: 15 * time.Second,
		RegularWaitTime: time.Minute, ResetPeriod: 30 * time.Minute,
	})
	if res.Accepted == 0 {
		t.Error("emulation accepted nothing from a live trace")
	}
}

func TestConfigParamsConversion(t *testing.T) {
	c := Config{WarmupMin: 30, WarmupWaitMin: 0.25, RegularWaitMin: 15, ResetMin: 240}
	p := c.Params()
	if p.WarmupPeriod != 30*time.Minute || p.WarmupWaitTime != 15*time.Second ||
		p.RegularWaitTime != 15*time.Minute || p.ResetPeriod != 240*time.Minute {
		t.Errorf("params = %+v", p)
	}
}
