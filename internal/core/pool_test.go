package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/sysclock"
)

// simTime is a manually advanced true-time source, safe for concurrent
// reads from fan-out goroutines.
type simTime struct {
	mu      sync.Mutex
	elapsed time.Duration
}

func (s *simTime) Now() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.elapsed
}

func (s *simTime) Advance(d time.Duration) {
	s.mu.Lock()
	s.elapsed += d
	s.mu.Unlock()
}

// simSleeper advances the true-time source instead of blocking.
type simSleeper struct{ t *simTime }

func (s simSleeper) Sleep(d time.Duration) { s.t.Advance(d) }

// memServer answers in-memory with the server clock's time shifted by
// offset, reporting wireDelay of symmetric path delay; t4 is read from
// the client clock.
func memServer(srvClk, clientClk clock.Clock, offset, wireDelay time.Duration) exchange.TransportFunc {
	return func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		now := srvClk.Now().Add(offset)
		return &ntppkt.Packet{
			Leap: ntppkt.LeapNone, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: 2, RefID: [4]byte{'M', 'E', 'M', 0},
			RefTime:  ntptime.FromTime(now.Add(-30 * time.Second)),
			Origin:   req.Transmit,
			Receive:  ntptime.FromTime(now.Add(wireDelay / 2)),
			Transmit: ntptime.FromTime(now.Add(-wireDelay / 2)),
		}, clientClk.Now(), nil
	}
}

// nameRouter dispatches exchanges to per-server transports.
type nameRouter struct {
	routes map[string]exchange.Transport
}

func (r *nameRouter) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	return r.routes[server].Exchange(server, req)
}

// TestWarmupKoDDistinctEventAndHoldDown is the regression test for
// the KoD-handling bug: core used to treat a kiss-of-death like any
// query failure and kept re-querying the rate-limiting server every
// round. A KoD source must be queried exactly once, surface as the
// distinct EventKoD (not EventQueryFailed), and sit out the rest of
// the run in hold-down — mirroring internal/sntp's immediate retry
// abort on ErrKissOfDeath.
func TestWarmupKoDDistinctEventAndHoldDown(t *testing.T) {
	st := &simTime{}
	truth := clock.NewTrue(epoch, st.Now)

	var kodQueries int32
	kodTr := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		atomic.AddInt32(&kodQueries, 1)
		return &ntppkt.Packet{
			Leap: ntppkt.LeapNotSync, Version: req.Version, Mode: ntppkt.ModeServer,
			Stratum: ntppkt.StratumKoD, RefID: ntppkt.KissRate,
			Origin: req.Transmit,
		}, truth.Now(), nil
	})
	rt := &nameRouter{routes: map[string]exchange.Transport{
		"ref0":   memServer(truth, truth, 0, 4*time.Millisecond),
		"kodref": kodTr,
		"ref2":   memServer(truth, truth, 0, 6*time.Millisecond),
	}}

	params := DefaultParams("ref0")
	params.WarmupServers = []string{"ref0", "kodref", "ref2"}
	params.RegularServer = "ref0"
	params.WarmupPeriod = 3 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = 10 * time.Minute
	params.KoDHoldDown = time.Hour

	var kodEvents, kodFailures, accepted int
	c := New(truth, nil, rt, hints.AlwaysFavorable, simSleeper{st}, params)
	c.OnEvent = func(e Event) {
		switch e.Kind {
		case EventKoD:
			kodEvents++
			if e.Source != "kodref" {
				t.Errorf("EventKoD from %q, want kodref", e.Source)
			}
		case EventQueryFailed:
			if e.Source == "kodref" {
				kodFailures++
			}
		case EventAccepted:
			accepted++
		}
	}
	c.Run(6 * time.Minute)

	if got := atomic.LoadInt32(&kodQueries); got != 1 {
		t.Errorf("KoD server queried %d times, want exactly 1 (hold-down)", got)
	}
	if kodEvents != 1 {
		t.Errorf("EventKoD emitted %d times, want 1", kodEvents)
	}
	if kodFailures != 0 {
		t.Errorf("KoD surfaced as EventQueryFailed %d times, want 0 (distinct kind)", kodFailures)
	}
	if accepted == 0 {
		t.Error("warm-up accepted nothing: the two healthy sources should carry the round")
	}
	for _, sst := range c.PoolStatus() {
		if sst.Name == "kodref" {
			if !sst.KoD || sst.KoDs != 1 {
				t.Errorf("kodref pool state: holddown=%v kods=%d, want true/1", sst.KoD, sst.KoDs)
			}
		}
	}
}

// flappyHints scripts the channel: per five readings, reading 1 and 2
// are unfavorable. With the warm-up call pattern (one gate check
// before the round, one re-check after), this produces dropped rounds
// (favorable gate, unfavorable re-check), deferred attempts and clean
// rounds in a repeating mix.
type flappyHints struct{ n int }

func (f *flappyHints) Hints() hints.Hints {
	i := f.n
	f.n++
	if i%5 == 1 || i%5 == 2 {
		return hints.Hints{RSSI: -80, Noise: -60} // unfavorable on every gate
	}
	return hints.Hints{RSSI: -50, Noise: -95}
}

// TestRequestAccountingMatchesWire pins the request-accounting audit:
// Requests() must equal the number of exchanges that actually reached
// the transport — deferred attempts (no send) bill nothing, dropped
// samples (channel degraded mid-exchange) still bill theirs, and
// sources inside KoD hold-down are not billed for skipped slots.
func TestRequestAccountingMatchesWire(t *testing.T) {
	st := &simTime{}
	truth := clock.NewTrue(epoch, st.Now)

	var wire int32
	inner := &nameRouter{routes: map[string]exchange.Transport{
		"ref0": memServer(truth, truth, 0, 4*time.Millisecond),
		"ref1": memServer(truth, truth, 0, 6*time.Millisecond),
		"kodref": &ntpnet.FaultTransport{
			Inner: memServer(truth, truth, 0, 4*time.Millisecond),
			Clock: truth, Seed: 11, KoDProb: 1,
		},
	}}
	counting := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		atomic.AddInt32(&wire, 1)
		return inner.Exchange(server, req)
	})

	params := DefaultParams("ref0")
	params.WarmupServers = []string{"ref0", "ref1", "kodref"}
	params.RegularServer = "ref0"
	params.WarmupPeriod = 3 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 20 * time.Second
	params.ResetPeriod = 20 * time.Minute
	params.KoDHoldDown = time.Hour

	var deferred, dropped int
	var lastRequests int
	c := New(truth, nil, counting, &flappyHints{}, simSleeper{st}, params)
	c.OnEvent = func(e Event) {
		switch e.Kind {
		case EventDeferred:
			deferred++
		case EventDropped:
			dropped++
		}
		lastRequests = e.Requests
	}
	c.Run(10 * time.Minute)

	if got, want := c.Requests(), int(atomic.LoadInt32(&wire)); got != want {
		t.Errorf("Requests() = %d, wire exchanges = %d — accounting out of sync", got, want)
	}
	if deferred == 0 {
		t.Error("flappy channel never deferred: the no-send path was not exercised")
	}
	if dropped == 0 {
		t.Error("flappy channel never dropped a mid-exchange sample: the billed-drop path was not exercised")
	}
	if lastRequests != c.Requests() {
		t.Errorf("last event carried Requests=%d, client says %d", lastRequests, c.Requests())
	}
}

// TestMNTPPoolFaultInjectionFullCycle is the acceptance scenario: a
// full warm-up plus regular cycle with the clock being corrected,
// while one of the three sources is a 500 ms falseticker and another
// serves kiss-of-death storms. The client must converge its clock on
// the one good source, and the pool status must reflect both
// demotions.
func TestMNTPPoolFaultInjectionFullCycle(t *testing.T) {
	st := &simTime{}
	truth := clock.NewTrue(epoch, st.Now)
	clk := clock.NewSim(clock.Config{
		InitialOffset: 80 * time.Millisecond, SkewPPM: 30, Seed: 13,
	}, epoch, st.Now)

	rt := &nameRouter{routes: map[string]exchange.Transport{
		"good":  memServer(truth, clk, 0, 4*time.Millisecond),
		"false": memServer(truth, clk, 500*time.Millisecond, 4*time.Millisecond),
		"kod": &ntpnet.FaultTransport{
			Inner: memServer(truth, clk, 0, 4*time.Millisecond),
			Clock: clk, Seed: 5, KoDProb: 0.7,
		},
	}}

	params := DefaultParams("good")
	params.WarmupServers = []string{"good", "false", "kod"}
	params.RegularServer = "good"
	params.Parallelism = 3 // genuine concurrent fan-out (exercised under -race)
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 15 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = time.Hour
	params.KoDHoldDown = 2 * time.Minute

	var kodEvents, falseTickerEvents, regularAccepted int
	var sawDriftCorrection bool
	c := New(clk, sysclock.SimAdjuster{Clock: clk}, rt, hints.AlwaysFavorable, simSleeper{st}, params)
	c.OnEvent = func(e Event) {
		switch e.Kind {
		case EventKoD:
			kodEvents++
			if e.Source != "kod" {
				t.Errorf("EventKoD from %q, want the kod source", e.Source)
			}
		case EventFalseTicker:
			falseTickerEvents++
			if e.Source != "false" {
				t.Errorf("EventFalseTicker names %q, want the falseticker", e.Source)
			}
		case EventDriftCorrected:
			sawDriftCorrection = true
		case EventAccepted:
			if e.Phase == PhaseRegular {
				regularAccepted++
			}
		}
	}
	c.Run(25 * time.Minute)

	if kodEvents == 0 {
		t.Error("KoD storm never surfaced as EventKoD")
	}
	if falseTickerEvents == 0 {
		t.Error("500ms falseticker never flagged")
	}
	if !sawDriftCorrection {
		t.Error("warm-up trend never produced a drift correction")
	}
	if regularAccepted == 0 {
		t.Fatal("regular phase accepted nothing: no clock corrections happened")
	}

	// The clock started 80 ms off with 30 ppm of skew; after a full
	// warm-up + regular cycle it must be corrected.
	off := clk.TrueOffset()
	if off < 0 {
		off = -off
	}
	if off > 25*time.Millisecond {
		t.Errorf("clock true offset after full cycle = %v, want ≤ 25ms", clk.TrueOffset())
	}

	// Pool status reflects both demotions, and the good source won.
	var goodScore, falseScore, kodScore float64
	for _, sst := range c.PoolStatus() {
		switch sst.Name {
		case "good":
			goodScore = sst.Score
		case "false":
			falseScore = sst.Score
			if sst.Falseticker < 1 {
				t.Errorf("falseticker demotion weight = %v, want ≥ 1", sst.Falseticker)
			}
		case "kod":
			kodScore = sst.Score
			if sst.KoDs == 0 {
				t.Error("kod source shows no KoDs in pool status")
			}
		}
	}
	if goodScore <= falseScore || goodScore <= kodScore {
		t.Errorf("good must out-rank both demoted sources: good=%.3f false=%.3f kod=%.3f",
			goodScore, falseScore, kodScore)
	}
	if best, ok := c.Pool().Best(); !ok || best != "good" {
		t.Errorf("pool Best() = %q, want the good source", best)
	}
}
