package core

import (
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/hints"
	"mntp/internal/netsim"
)

func TestSelfTunerSpeedsUpWhenMissingTarget(t *testing.T) {
	s := NewSelfTuner(10)
	p := Params{RegularWaitTime: 8 * time.Minute, WarmupWaitTime: time.Minute}
	out := s.Adjust(CycleStats{Accepted: 50, ResidRMSE: 25}, p)
	if out.RegularWaitTime != 4*time.Minute {
		t.Errorf("regular wait = %v, want halved", out.RegularWaitTime)
	}
	if out.WarmupWaitTime != 30*time.Second {
		t.Errorf("warmup wait = %v, want halved", out.WarmupWaitTime)
	}
	if s.Adjustments != 1 {
		t.Errorf("adjustments = %d", s.Adjustments)
	}
}

func TestSelfTunerBacksOffWhenComfortable(t *testing.T) {
	s := NewSelfTuner(10)
	p := Params{RegularWaitTime: 2 * time.Minute, WarmupWaitTime: 10 * time.Second}
	out := s.Adjust(CycleStats{Accepted: 50, ResidRMSE: 2}, p)
	if out.RegularWaitTime != 4*time.Minute {
		t.Errorf("regular wait = %v, want doubled", out.RegularWaitTime)
	}
}

func TestSelfTunerHoldsInBand(t *testing.T) {
	s := NewSelfTuner(10)
	p := Params{RegularWaitTime: 2 * time.Minute, WarmupWaitTime: 10 * time.Second}
	out := s.Adjust(CycleStats{Accepted: 50, ResidRMSE: 10}, p)
	if out.RegularWaitTime != p.RegularWaitTime || s.Adjustments != 0 {
		t.Error("in-band cycle should not adjust")
	}
}

func TestSelfTunerClamps(t *testing.T) {
	s := NewSelfTuner(10)
	p := Params{RegularWaitTime: s.MinRegularWait, WarmupWaitTime: s.MinWarmupWait}
	out := s.Adjust(CycleStats{Accepted: 50, ResidRMSE: 100}, p)
	if out.RegularWaitTime != s.MinRegularWait {
		t.Errorf("regular wait went below clamp: %v", out.RegularWaitTime)
	}
	p2 := Params{RegularWaitTime: s.MaxRegularWait, WarmupWaitTime: s.MaxWarmupWait}
	out2 := s.Adjust(CycleStats{Accepted: 50, ResidRMSE: 0.1}, p2)
	if out2.RegularWaitTime != s.MaxRegularWait {
		t.Errorf("regular wait exceeded clamp: %v", out2.RegularWaitTime)
	}
}

func TestSelfTunerStarvedCycleSamplesMore(t *testing.T) {
	s := NewSelfTuner(10)
	p := Params{RegularWaitTime: 16 * time.Minute, WarmupWaitTime: time.Minute}
	out := s.Adjust(CycleStats{Accepted: 0}, p)
	if out.RegularWaitTime >= p.RegularWaitTime {
		t.Error("starved cycle did not speed up sampling")
	}
}

// Integration: a client with an absurdly sparse initial configuration
// self-tunes toward denser sampling across cycles on a quiet channel
// with a noisy trend (high RMSE).
func TestClientSelfTunesAcrossCycles(t *testing.T) {
	l := newLab(61, 0, clock.Config{SkewPPM: 18, Seed: 5})
	params := DefaultParams("pool")
	params.WarmupPeriod = 4 * time.Minute
	params.WarmupWaitTime = 2 * time.Minute // sparse: few samples per cycle
	params.RegularWaitTime = 30 * time.Minute
	params.ResetPeriod = 10 * time.Minute
	params.DisableClockUpdates = true
	params.DisableDriftCorrection = true

	tuner := NewSelfTuner(0.5) // aggressive target: forces speed-ups
	var waits []time.Duration
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, nil, tr, hints.AlwaysFavorable, p, params)
		c.Tuner = tuner
		c.OnEvent = func(e Event) {
			if e.Kind == EventAccepted {
				waits = append(waits, c.Params.WarmupWaitTime)
			}
		}
		c.Run(50 * time.Minute)
	})
	l.sched.Run()

	if tuner.Adjustments == 0 {
		t.Fatal("self-tuner never adjusted")
	}
	if len(waits) == 0 {
		t.Fatal("no accepted samples")
	}
	first, last := waits[0], waits[len(waits)-1]
	if last >= first {
		t.Errorf("warmup wait did not shrink: first %v, last %v", first, last)
	}
}
