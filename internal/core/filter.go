// Package core implements MNTP — Mobile NTP — the contribution of the
// paper (§4): a lightweight modification of SNTP for mobile devices
// that (1) paces synchronization requests using wireless link-layer
// hints, emitting them only when the channel is favorable, and (2)
// filters reported clock offsets against a least-squares drift trend
// line, rejecting outliers whose squared prediction error exceeds the
// running mean by more than one standard deviation.
//
// The package separates the pure filtering pipeline (Filter), which
// the trace-driven tuner replays offline, from the live client
// (Client), which runs Algorithm 1 over any transport and hint
// provider.
package core

import (
	"math"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/stats"
	"mntp/internal/trend"
)

// Filter is MNTP's offset-filtering state: a trend line over accepted
// (elapsed, offset) samples and the residual gate. Per the paper's
// §5.3 refinement, the drift estimate is refit with every accepted
// sample. The trend estimator is pluggable (Params.Estimator): the
// paper's least-squares fit, or the robust Theil-Sen/LAD alternatives
// the chaos harness bakes off (see internal/trend and DESIGN.md).
type Filter struct {
	est       trend.Estimator
	residuals *trend.ResidualTracker
	// minSamples is how many samples are accepted unconditionally
	// before the gate engages (a line needs ≥ 2 points; the paper
	// records 10 warm-up offsets before trusting the trend).
	minSamples int
	// floor is the minimum tolerated absolute prediction error in
	// seconds.
	floor float64
	// varFallbacks counts gate decisions taken under the bounded
	// default gate because the estimator could not produce a
	// prediction variance (persistent trend.ErrInsufficient, e.g.
	// all-identical elapsed times after a suspend). Previously that
	// failure was swallowed and the residual gate ran unguarded.
	varFallbacks int
}

// fallbackGateMult sizes the bounded default gate used when the
// estimator cannot produce a prediction variance: |error| ≤ 3·floor,
// mirroring the 3σ+floor bound of the variance-informed second-chance
// gate with σ collapsed to the floor.
const fallbackGateMult = 3

// NewFilter creates a filter around the paper's least-squares
// estimator. floor is the minimum tolerated prediction error (the
// gate never rejects samples within ±floor of the trend line);
// minSamples is the number of initial samples accepted
// unconditionally (default 3 when ≤ 0).
func NewFilter(floor time.Duration, minSamples int) *Filter {
	return NewFilterKind(trend.KindLeastSquares, 0, floor, minSamples)
}

// NewFilterKind creates a filter around the given trend estimator.
// window bounds the robust estimators' sample history (≤ 0 selects
// trend.DefaultWindow; least squares ignores it). The floor doubles
// as the robust estimators' residual scale floor.
func NewFilterKind(kind trend.Kind, window int, floor time.Duration, minSamples int) *Filter {
	if minSamples <= 0 {
		minSamples = 3
	}
	f := floor.Seconds()
	return &Filter{
		est:        trend.NewEstimator(kind, window, f),
		residuals:  trend.NewResidualTracker(f*f, 0),
		minSamples: minSamples,
		floor:      f,
	}
}

// N returns the number of samples contributing to the trend (for
// windowed estimators, the window occupancy).
func (f *Filter) N() int { return f.est.N() }

// VarianceFallbacks returns how many gate decisions were taken under
// the bounded default gate because the estimator had no prediction
// variance to offer.
func (f *Filter) VarianceFallbacks() int { return f.varFallbacks }

// Offer presents a sample at the given elapsed time. It returns
// whether the sample was accepted (and absorbed into the trend) and
// the trend line's prediction for that instant (valid only when
// predOK).
func (f *Filter) Offer(elapsed time.Duration, offset time.Duration) (accepted bool, predicted time.Duration, predOK bool) {
	x := elapsed.Seconds()
	y := offset.Seconds()

	line, err := f.est.Line()
	if err != nil || f.est.N() < f.minSamples {
		// Not enough history to predict: accept unconditionally.
		f.est.Add(x, y)
		if err == nil {
			pred := line.At(x)
			e := y - pred
			f.residuals.Accept(e * e)
			return true, secToDur(pred), true
		}
		return true, 0, false
	}

	pred := line.At(x)
	e := y - pred
	sq := e * e
	admit := f.residuals.Admits(sq)
	if !admit {
		// Second chance via the regression prediction interval: the
		// gate widens with the fit's own uncertainty at x, so a
		// sparse regular phase extrapolating far beyond the warm-up
		// data does not reject everything — the over-conservative
		// failure mode the paper diagnosed in §5.3.
		var bound float64
		if pv, err := f.est.PredictVariance(x); err == nil {
			bound = 3*math.Sqrt(pv) + f.floor
		} else {
			// The estimator has no variance to offer (persistent
			// trend.ErrInsufficient — e.g. every sample at the same
			// elapsed time after a suspend). Fall back to an explicit
			// bounded default gate instead of silently skipping the
			// second chance, and count the fallback so the condition
			// is observable (CycleStats.GateFallbacks).
			bound = fallbackGateMult * f.floor
			f.varFallbacks++
		}
		if e <= bound && e >= -bound {
			admit = true
		}
	}
	if !admit {
		return false, secToDur(pred), true
	}
	f.est.Add(x, y)
	f.residuals.Accept(sq)
	return true, secToDur(pred), true
}

// Drift returns the current drift estimate (the trend line slope, in
// seconds of offset per second of elapsed time) and whether enough
// samples exist to estimate it.
func (f *Filter) Drift() (float64, bool) {
	line, err := f.est.Line()
	if err != nil {
		return 0, false
	}
	return line.Slope, true
}

// DriftWithError returns the drift estimate together with its
// standard error (both in seconds per second).
func (f *Filter) DriftWithError() (drift, stdErr float64, ok bool) {
	line, err := f.est.Line()
	if err != nil {
		return 0, 0, false
	}
	v, err := f.est.SlopeVariance()
	if err != nil {
		return 0, 0, false
	}
	return line.Slope, math.Sqrt(v), true
}

// Predict returns the trend line's offset prediction at the given
// elapsed time.
func (f *Filter) Predict(elapsed time.Duration) (time.Duration, bool) {
	line, err := f.est.Line()
	if err != nil {
		return 0, false
	}
	return secToDur(line.At(elapsed.Seconds())), true
}

// ApplyStep re-expresses the accepted history against a clock that
// was just stepped by step: all recorded offsets shrink by step.
func (f *Filter) ApplyStep(step time.Duration) {
	f.est.SubtractLine(step.Seconds(), 0)
}

// ApplyFreq re-expresses the history against a clock whose frequency
// was just trimmed by df (seconds per second) at elapsed time x0: the
// recorded trend loses the component df·(x − x0).
func (f *Filter) ApplyFreq(df float64, x0 time.Duration) {
	x := x0.Seconds()
	f.est.SubtractLine(-df*x, df)
}

func secToDur(s float64) time.Duration {
	return time.Duration(s * float64(time.Second))
}

// RejectFalseTickers implements the warm-up multi-source screen of
// §4.2: sources whose offsets deviate from the sample mean by more
// than one standard deviation are classified as false tickers and
// dropped. (The paper states "exceed the mean plus one standard
// deviation"; the symmetric form is used so a false ticker that is
// *behind* the truth is rejected too — see DESIGN.md.) With fewer than
// three samples there is no meaningful majority and all are kept.
func RejectFalseTickers(samples []exchange.Sample) (kept, rejected []exchange.Sample) {
	if len(samples) < 3 {
		return samples, nil
	}
	offs := make([]float64, len(samples))
	for i, s := range samples {
		offs[i] = s.Offset.Seconds()
	}
	mean, std := stats.MeanStd(offs)
	for i, s := range samples {
		d := offs[i] - mean
		if d < 0 {
			d = -d
		}
		if std > 0 && d > std {
			rejected = append(rejected, s)
		} else {
			kept = append(kept, s)
		}
	}
	if len(kept) == 0 {
		// Degenerate spread: fall back to keeping everything rather
		// than discarding the whole round.
		return samples, nil
	}
	return kept, rejected
}

// CombineOffsets averages the offsets of the kept samples — the
// warm-up phase's getOffsetUsingMultipleSources result.
func CombineOffsets(samples []exchange.Sample) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range samples {
		sum += s.Offset
	}
	return sum / time.Duration(len(samples))
}
