package core

import (
	"math"
	"math/rand"
	"sync/atomic"
	"time"

	"mntp/internal/clock"
	"mntp/internal/discipline"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/ntppkt"
	"mntp/internal/sources"
	"mntp/internal/sysclock"
	"mntp/internal/trend"
)

// Params are MNTP's tunables: the four timing parameters of
// Algorithm 1 (the subject of the §5.3 tuner study), the channel
// thresholds, and the ablation switches used by the evaluation.
type Params struct {
	// WarmupPeriod is the duration of the warm-up phase.
	WarmupPeriod time.Duration
	// WarmupWaitTime is the interval between warm-up requests.
	WarmupWaitTime time.Duration
	// RegularWaitTime is the interval between regular-phase requests.
	RegularWaitTime time.Duration
	// ResetPeriod is the total duration of warm-up plus regular
	// phases; when it elapses the algorithm restarts at step 1.
	ResetPeriod time.Duration

	// Thresholds gate request emission (§4.2 baselines by default).
	Thresholds hints.Thresholds
	// WarmupServers are the multiple references of the warm-up phase
	// (the paper uses 0/1/3.pool.ntp.org).
	WarmupServers []string
	// RegularServer is the single reference of the regular phase.
	RegularServer string
	// HintPollInterval is how long to wait before re-checking an
	// unfavorable channel (default 1 s).
	HintPollInterval time.Duration
	// ResidualFloor is the filter's minimum tolerated prediction
	// error (default 3 ms).
	ResidualFloor time.Duration
	// MinTrendSamples is how many samples the filter accepts
	// unconditionally before gating (default 3; the paper records 10
	// warm-up offsets before trusting the trend).
	MinTrendSamples int
	// Estimator selects the trend estimator the filter fits offsets
	// against: trend.KindLeastSquares (the paper's §4.2 fit, the
	// default), trend.KindTheilSen or trend.KindLAD (the robust
	// alternatives — see internal/trend and the DESIGN.md bake-off).
	Estimator trend.Kind
	// EstimatorWindow bounds the robust estimators' sample history
	// (default trend.DefaultWindow; least squares is unbounded and
	// ignores it).
	EstimatorWindow int
	// Parallelism bounds the warm-up fan-out concurrency through the
	// source pool. The default 1 queries serially in slot order,
	// which is required when the transport is bound to a virtual-time
	// process (netsim); real-UDP deployments raise it.
	Parallelism int
	// ExchangeTimeout is a wall-clock per-exchange deadline enforced
	// by the source pool on top of the transport's own timeout (0 =
	// rely on the transport). Leave 0 in virtual-time simulations.
	ExchangeTimeout time.Duration
	// KoDHoldDown is the base hold-down applied to a source that
	// answers with kiss-of-death (default 1 h, doubling per repeat).
	KoDHoldDown time.Duration
	// FailoverTries is how many additional ranked sources a regular
	// round may try after a failed exchange (default 0: failover then
	// happens across rounds, as the failed source's score drops).
	FailoverTries int
	// PollJitter randomizes every phase cadence by ± this fraction
	// (default DefaultPollJitter). A fleet of clients polling a shared
	// pool on identical fixed intervals phase-locks after any
	// synchronizing event (a regional outage, a common cold start) and
	// then hits the servers in lockstep forever — the thundering-herd
	// failure mode the population engine (internal/population)
	// reproduces. Per-client random jitter diffuses the phases.
	PollJitter float64
	// DisablePollJitter pins the exact cadence, for
	// determinism-sensitive tests and paper-figure reproductions.
	DisablePollJitter bool
	// JitterSeed seeds the poll-jitter randomness (0 selects a fixed
	// default, so simulations stay reproducible; real deployments
	// should seed per device — see cmd/mntp).
	JitterSeed int64
	// MaxSampleDelay rejects samples whose round-trip delay exceeds
	// it. The four-timestamp algebra bounds a sample's offset error
	// by δ/2, so a high-delay sample is untrustworthy regardless of
	// the trend — this guards the trend-less start of each cycle,
	// where the least-squares filter cannot yet reject anything.
	// Zero (the default) selects an adaptive gate of
	// 3·minDelay + 30 ms relative to the smallest delay seen this
	// cycle, which tracks the path's floor on WiFi and cellular alike
	// — the same philosophy as NTP's delay-based sample selection
	// (which §4.2 invokes).
	MaxSampleDelay time.Duration
	// Version is the NTP version in requests (default 4).
	Version uint8

	// StepThreshold separates slewed from stepped corrections in the
	// clock discipline (default 128 ms, ntpd's STEPT). See
	// internal/discipline.
	StepThreshold time.Duration
	// PanicThreshold refuses implausible corrections once
	// synchronized, emitting EventPanicStep instead of applying them
	// (default 10 s; negative disables the gate).
	PanicThreshold time.Duration
	// HoldoverMax bounds how long holdover retains the sync state
	// before degrading to cold (default 1 h).
	HoldoverMax time.Duration
	// HoldoverAfter is how many consecutive sample-less rounds (total
	// blackout or persistent selection failure) put the discipline
	// into holdover (default 3).
	HoldoverAfter int

	// DisableDriftCorrection skips correctSystemClockDrift — the
	// paper's head-to-head baseline experiments (§5.1) switch drift
	// correction off.
	DisableDriftCorrection bool
	// DisableClockUpdates makes MNTP measurement-only: accepted
	// offsets are reported but never applied to the clock (the mode
	// the paper's §5.1 comparisons run in). Forced on when the client
	// is constructed without an adjuster.
	DisableClockUpdates bool
	// DisableGating sends requests regardless of channel state
	// (ablation: isolates the filter's contribution).
	DisableGating bool
	// DisableFilter accepts every offset (ablation: isolates the
	// gating's contribution).
	DisableFilter bool
	// DisableFalseTickerRejection keeps every warm-up source
	// (ablation).
	DisableFalseTickerRejection bool
}

// DefaultParams returns the configuration of the paper's baseline
// evaluation (§5.1): requests every 5 s for head-to-head comparison,
// with configuration 2 of Table 2 providing the phase structure.
func DefaultParams(pool string) Params {
	return Params{
		WarmupPeriod:    40 * time.Minute,
		WarmupWaitTime:  15 * time.Second,
		RegularWaitTime: 15 * time.Minute,
		ResetPeriod:     240 * time.Minute,
		Thresholds:      hints.Default(),
		WarmupServers:   []string{pool, pool, pool},
		RegularServer:   pool,
	}
}

func (p *Params) applyDefaults() {
	if p.HintPollInterval == 0 {
		p.HintPollInterval = time.Second
	}
	if p.ResidualFloor == 0 {
		p.ResidualFloor = 3 * time.Millisecond
	}
	if p.Version == 0 {
		p.Version = ntppkt.Version4
	}
	if p.MinTrendSamples == 0 {
		p.MinTrendSamples = 3
	}
	if p.Estimator == "" {
		p.Estimator = trend.KindLeastSquares
	}
	if p.EstimatorWindow == 0 {
		p.EstimatorWindow = trend.DefaultWindow
	}
	if (p.Thresholds == hints.Thresholds{}) {
		p.Thresholds = hints.Default()
	}
	if p.HoldoverAfter == 0 {
		p.HoldoverAfter = 3
	}
	if p.PollJitter == 0 {
		p.PollJitter = DefaultPollJitter
	}
	if p.PollJitter > maxPollJitter {
		p.PollJitter = maxPollJitter
	}
}

// DefaultPollJitter is the default ± cadence randomization fraction.
// 10% is enough to diffuse a phase-locked fleet within a handful of
// rounds while leaving the mean request budget unchanged.
const DefaultPollJitter = 0.1

// maxPollJitter caps the randomization so a jittered wait can never
// collapse to zero (busy-polling the pool) or double the cadence.
const maxPollJitter = 0.5

// Phase identifies which part of Algorithm 1 produced an event.
type Phase int

const (
	// PhaseWarmup is steps 4–14 (multi-source, no clock updates).
	PhaseWarmup Phase = iota
	// PhaseRegular is steps 16–26 (single source, clock updates).
	PhaseRegular
)

// String renders the phase name.
func (p Phase) String() string {
	if p == PhaseWarmup {
		return "warmup"
	}
	return "regular"
}

// EventKind classifies what happened to one synchronization attempt.
type EventKind int

const (
	// EventAccepted: the offset passed the filter (and, in the
	// regular phase, was applied to the clock).
	EventAccepted EventKind = iota
	// EventRejected: the filter discarded the offset as an outlier.
	EventRejected
	// EventDeferred: the channel was unfavorable; no request was sent.
	EventDeferred
	// EventQueryFailed: the request was sent but no valid reply
	// arrived (loss/timeout/KoD).
	EventQueryFailed
	// EventFalseTicker: a warm-up source was rejected as a false
	// ticker (one event per rejected source).
	EventFalseTicker
	// EventDriftCorrected: the regular phase applied a frequency
	// correction from the estimated drift.
	EventDriftCorrected
	// EventKoD: the source answered with a kiss-of-death code; the
	// pool put it into exponential hold-down and it will not be
	// queried again until the hold-down expires. Distinct from
	// EventQueryFailed so rate-limited sources are never retried as
	// if the loss were transient (mirroring internal/sntp's
	// immediate retry abort).
	EventKoD
	// EventDropped: a reply arrived but the sample was discarded
	// because the channel degraded while the exchange was in flight.
	// Unlike EventDeferred, the request was already spent — the two
	// kinds keep the emitted events consistent with the message
	// counts of the §5.1 comparisons.
	EventDropped
	// EventAdjustError: the system-clock adjuster refused a step or
	// frequency correction (EPERM on an unprivileged host, a kernel
	// rejecting an out-of-range adjtimex). The offset survives in the
	// filter but the clock was not moved — previously this failure
	// was silently discarded.
	EventAdjustError
	// EventHoldover: the source pool went dark (or selection failed)
	// for HoldoverAfter consecutive rounds; the discipline entered
	// holdover, free-running on the last good frequency estimate.
	EventHoldover
	// EventPanicStep: an accepted offset exceeded the panic threshold
	// and the discipline refused to apply it. Offset carries the
	// refused correction.
	EventPanicStep
	// EventResumed: wall-vs-monotonic divergence revealed a
	// suspend/resume (or an external clock step); in-flight samples
	// were invalidated and the client restarts with a fresh warm-up.
	// Offset carries the detected jump.
	EventResumed
	// EventNetworkChanged: the NetworkChanged hook fired; per-source
	// path health was reset and the client re-probes on a jittered
	// exponential backoff.
	EventNetworkChanged
)

// String renders the event kind.
func (k EventKind) String() string {
	switch k {
	case EventAccepted:
		return "accepted"
	case EventRejected:
		return "rejected"
	case EventDeferred:
		return "deferred"
	case EventQueryFailed:
		return "query-failed"
	case EventFalseTicker:
		return "false-ticker"
	case EventDriftCorrected:
		return "drift-corrected"
	case EventKoD:
		return "kod"
	case EventDropped:
		return "dropped"
	case EventAdjustError:
		return "adjust-error"
	case EventHoldover:
		return "holdover"
	case EventPanicStep:
		return "panic-step"
	case EventResumed:
		return "resumed"
	case EventNetworkChanged:
		return "network-changed"
	default:
		return "unknown"
	}
}

// Event is one observable step of the algorithm; experiments record
// these to draw the paper's figures.
type Event struct {
	Elapsed   time.Duration // client-clock time since Run started
	Phase     Phase
	Kind      EventKind
	Offset    time.Duration // reported offset (Accepted/Rejected/FalseTicker)
	Predicted time.Duration // trend-line prediction, if available
	PredOK    bool
	Hints     hints.Hints // channel reading at the attempt
	Requests  int         // cumulative requests emitted
	Drift     float64     // current drift estimate (s/s), if any
	// Source names the upstream that produced the event, when one
	// source is attributable (per-source query outcomes; empty for
	// combined and channel-level events).
	Source string
}

// Sleeper abstracts waiting (netsim.Proc in simulation,
// sntp.WallSleeper in deployments).
type Sleeper interface {
	Sleep(d time.Duration)
}

// Client runs MNTP (Algorithm 1) over a transport, clock, hint
// provider and adjuster.
type Client struct {
	Clock     clock.Clock
	Adjuster  sysclock.Adjuster // Noop for measurement-only runs
	Transport exchange.Transport
	Hints     hints.Provider
	Sleeper   Sleeper
	Params    Params
	// OnEvent observes every step (may be nil).
	OnEvent func(Event)
	// Tuner, when non-nil, adjusts Params between reset cycles
	// (self-tuning, the paper's §7 future work).
	Tuner Tuner
	// Mono, when non-nil, reads a monotonic clock that pauses during
	// system suspend (CLOCK_MONOTONIC). Each sample then feeds
	// wall-vs-monotonic suspend detection: a resume invalidates the
	// in-flight sample and forces a re-warm-up instead of a spurious
	// giant step. Nil disables detection (simulated runs whose clocks
	// have no suspend semantics).
	Mono func() time.Duration

	filter *Filter
	// pool owns the upstream sources: health state, concurrent
	// fan-out, Marzullo selection and ranked failover. It persists
	// across reset cycles — source health is a property of the
	// upstreams, not of the filter state Algorithm 1 resets.
	pool *sources.Pool
	// minDelay is the smallest delay seen this cycle; haveMinDelay
	// distinguishes "no sample yet" from a genuine zero-delay anchor
	// (exchange.Measure floors pathological delays to exactly 0, so 0
	// cannot double as the sentinel).
	minDelay     time.Duration
	haveMinDelay bool
	start        time.Time
	requests     int
	freqCorr     float64
	cycle        CycleStats
	cycleSq      float64 // sum of squared corrected residuals (ms²)
	cycleN       int

	// disc is the clock discipline every correction flows through:
	// step/slew/panic decisions, the frequency clamp, holdover and
	// suspend detection all live there.
	disc *discipline.Discipline
	// dryRounds counts consecutive rounds that produced no sample
	// (blackout or persistent selection failure); at HoldoverAfter
	// the discipline enters holdover.
	dryRounds int
	// restart asks the current cycle to end so Run re-enters warm-up
	// (set after a detected resume or a panic streak).
	restart bool
	// backoff, when positive, overrides the next sleep with a
	// jittered exponential re-probe delay (activated by
	// NetworkChanged; deactivated by any obtained sample or once it
	// reaches the normal cadence). rng drives the jitter, seeded
	// deterministically so simulations stay reproducible.
	backoff time.Duration
	rng     *rand.Rand
	// netGen is bumped by NetworkChanged (any goroutine); seenGen is
	// the run loop's last observed value.
	netGen  atomic.Uint32
	seenGen uint32
}

// New creates an MNTP client with defaults applied.
func New(clk clock.Clock, adj sysclock.Adjuster, tr exchange.Transport,
	hp hints.Provider, sl Sleeper, params Params) *Client {
	params.applyDefaults()
	if adj == nil {
		adj = sysclock.Noop{}
		// Without a real adjuster nothing actually moves the clock;
		// treating a no-op step as applied would silently corrupt the
		// filter history.
		params.DisableClockUpdates = true
		params.DisableDriftCorrection = true
	}
	jseed := params.JitterSeed
	if jseed == 0 {
		jseed = 0x6d6e7470 // fixed default: determinism matters more than entropy
	}
	c := &Client{
		Clock: clk, Adjuster: adj, Transport: tr, Hints: hp, Sleeper: sl,
		Params: params,
		rng:    rand.New(rand.NewSource(jseed)), // backoff + poll jitter only
	}
	c.disc = discipline.New(adj, discipline.Config{
		StepThreshold:  params.StepThreshold,
		PanicThreshold: params.PanicThreshold,
		HoldoverMax:    params.HoldoverMax,
	})
	// The pool's slots are the warm-up references plus the regular
	// reference when it is a distinct name. Duplicate warm-up entries
	// (the paper queries one pool name several times) stay distinct
	// slots, each reaching a different pool member per exchange.
	servers := append([]string(nil), params.WarmupServers...)
	if params.RegularServer != "" {
		found := false
		for _, s := range servers {
			if s == params.RegularServer {
				found = true
				break
			}
		}
		if !found {
			servers = append(servers, params.RegularServer)
		}
	}
	c.pool = sources.New(clk, tr, sources.Config{
		Servers:         servers,
		Parallelism:     params.Parallelism,
		ExchangeTimeout: params.ExchangeTimeout,
		Version:         params.Version,
		KoDBaseHold:     params.KoDHoldDown,
		FailoverTries:   params.FailoverTries,
	})
	return c
}

// Requests returns the number of SNTP requests emitted so far.
func (c *Client) Requests() int { return c.requests }

// Pool exposes the client's source pool (for status dumps and tests).
func (c *Client) Pool() *sources.Pool { return c.pool }

// Discipline exposes the clock discipline (for status dumps and
// tests).
func (c *Client) Discipline() *discipline.Discipline { return c.disc }

// NetworkChanged tells the client the underlying network attachment
// changed (new access point, interface handover, cellular roam). Safe
// from any goroutine. The run loop reacts at its next round: it
// resets the pool's path-dependent health state (reach, smoothed
// delay/jitter — all measured on the old path) and re-probes
// immediately with a jittered exponential backoff instead of waiting
// out the regular cadence.
func (c *Client) NetworkChanged() { c.netGen.Add(1) }

// PoolStatus returns a health snapshot of every upstream source.
func (c *Client) PoolStatus() []sources.SourceStatus { return c.pool.Status() }

// DriftEstimate returns the current drift estimate.
func (c *Client) DriftEstimate() (float64, bool) {
	if c.filter == nil {
		return 0, false
	}
	return c.filter.Drift()
}

// Run executes Algorithm 1 for the given total duration (measured on
// the client clock), cycling warm-up → regular → reset as the reset
// period elapses.
func (c *Client) Run(total time.Duration) {
	c.start = c.Clock.Now()
	for c.elapsed() < total {
		c.runCycle(total)
	}
}

func (c *Client) elapsed() time.Duration { return c.Clock.Now().Sub(c.start) }

// runCycle is one reset period: a warm-up phase followed by a regular
// phase (steps 1–26 of Algorithm 1).
func (c *Client) runCycle(total time.Duration) {
	cycleStart := c.elapsed()
	p := &c.Params

	// Step 1–3: fresh state.
	c.filter = NewFilterKind(p.Estimator, p.EstimatorWindow, p.ResidualFloor, p.MinTrendSamples)
	c.minDelay, c.haveMinDelay = 0, false
	startRequests := c.requests
	c.cycle = CycleStats{}
	c.cycleSq, c.cycleN = 0, 0

	// Warm-up phase (steps 4–14).
	for c.elapsed()-cycleStart < p.WarmupPeriod && c.elapsed() < total {
		c.preflight()
		h, ok := c.waitFavorable(PhaseWarmup, total)
		if !ok {
			return // ran out of experiment time while deferred
		}
		c.warmupRound(h)
		if c.restart {
			c.restart = false
			return // re-enter warm-up with fresh state
		}
		c.Sleeper.Sleep(c.nextWait(p.WarmupWaitTime))
	}

	// Step 16: correct the system clock drift from the estimate. A
	// positive trend slope means the measured offset grows — the
	// local clock runs slow relative to the references — so the
	// frequency correction is +slope. The estimate is applied only
	// when it is statistically meaningful (slope standard error below
	// the tolerance) and physically plausible (cumulative correction
	// within oscillator bounds); a warm-up that accepted too few
	// samples can otherwise fit a wildly wrong slope and send the
	// clock careening.
	if est, se, ok := c.filter.DriftWithError(); ok &&
		!p.DisableDriftCorrection && !p.DisableClockUpdates &&
		se <= maxDriftStdErr && plausibleFreq(c.freqCorr+est) {
		applied, err := c.disc.SetFreq(c.freqCorr + est)
		if err != nil {
			// A refused kernel adjust used to vanish here; make it
			// visible and leave freqCorr at the value actually in
			// effect.
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseRegular,
				Kind: EventAdjustError, Drift: est, Requests: c.requests,
			})
		} else {
			c.freqCorr = applied
			c.filter.ApplyFreq(est, c.elapsed())
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseRegular,
				Kind: EventDriftCorrected, Drift: est, Requests: c.requests,
			})
		}
	}

	// Regular phase (steps 17–26).
	for c.elapsed()-cycleStart < p.ResetPeriod && c.elapsed() < total {
		c.preflight()
		h, ok := c.waitFavorable(PhaseRegular, total)
		if !ok {
			return
		}
		c.regularRound(h)
		if c.restart {
			c.restart = false
			return // re-enter warm-up with fresh state
		}
		c.Sleeper.Sleep(c.nextWait(p.RegularWaitTime))
	}
	// Step 23–24: reset period elapsed → restart at step 1.
	if c.Tuner != nil {
		st := c.cycle
		st.Requests = c.requests - startRequests
		st.CycleLength = c.elapsed() - cycleStart
		if c.cycleN > 0 {
			st.ResidRMSE = sqrtMs(c.cycleSq / float64(c.cycleN))
		}
		st.GateFallbacks = c.filter.VarianceFallbacks()
		c.Params = c.Tuner.Adjust(st, c.Params)
		c.Params.applyDefaults()
	}
}

// maxDriftStdErr is the largest slope standard error (s/s) accepted
// for a drift correction: 25 ppm of uncertainty on commodity crystals
// whose total error is tens of ppm.
const maxDriftStdErr = 25e-6

// plausibleFreq gates a drift estimate before it is even offered to
// the discipline: a cumulative correction beyond the shared ±500 ppm
// clamp means the trend fit is wrong, not the oscillator.
func plausibleFreq(f float64) bool {
	return f >= -discipline.MaxFreq && f <= discipline.MaxFreq
}

// preflight reacts to NetworkChanged notifications at a round
// boundary: the pool forgets the old path's health and the client
// switches its next sleeps to a jittered exponential backoff so the
// new path is probed immediately rather than after a full cadence
// interval.
func (c *Client) preflight() {
	gen := c.netGen.Load()
	if gen == c.seenGen {
		return
	}
	c.seenGen = gen
	c.pool.ResetHealth()
	c.backoff = reprobeBase
	c.emit(Event{
		Elapsed: c.elapsed(), Kind: EventNetworkChanged, Requests: c.requests,
	})
}

// reprobeBase is the first re-probe delay after a network change; it
// doubles per empty-handed round until it reaches the phase's normal
// cadence.
const reprobeBase = time.Second

// nextWait returns the sleep before the next round: the jittered
// phase cadence, or — while a post-network-change backoff is active —
// a jittered exponential delay in [b/2, b] that doubles each round and
// retires once it catches up with the cadence.
func (c *Client) nextWait(normal time.Duration) time.Duration {
	if c.backoff <= 0 || c.backoff >= normal {
		c.backoff = 0
		return c.jittered(normal)
	}
	b := c.backoff
	c.backoff *= 2
	half := b / 2
	return half + time.Duration(c.rng.Int63n(int64(half)+1))
}

// jittered randomizes a cadence to uniform [normal·(1−j), normal·(1+j)]
// so a fleet sharing a cold-start instant cannot stay phase-locked.
func (c *Client) jittered(normal time.Duration) time.Duration {
	j := c.Params.PollJitter
	if c.Params.DisablePollJitter || j <= 0 || normal <= 0 {
		return normal
	}
	span := time.Duration(float64(normal) * j)
	if span <= 0 {
		return normal
	}
	return normal - span + time.Duration(c.rng.Int63n(int64(2*span)+1))
}

// roundDry records a round that obtained no usable sample. After
// HoldoverAfter consecutive dry rounds a synchronized discipline
// enters holdover: the clock free-runs on the last good frequency
// while an uncertainty bound ages (EventHoldover marks the entry).
func (c *Client) roundDry(phase Phase, h hints.Hints) {
	c.dryRounds++
	if c.dryRounds >= c.Params.HoldoverAfter && c.disc.EnterHoldover(c.Clock.Now()) {
		drift, _ := c.filter.Drift()
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: phase, Kind: EventHoldover,
			Hints: h, Requests: c.requests, Drift: drift,
		})
	}
}

// roundWet records that a round produced a sample: the blackout
// counter and any re-probe backoff reset. Holdover, if entered, exits
// through the discipline when the sample is applied.
func (c *Client) roundWet() {
	c.dryRounds = 0
	c.backoff = 0
}

func sqrtMs(v float64) float64 {
	if v <= 0 {
		return 0
	}
	// v is in ms²; return ms.
	return math.Sqrt(v)
}

// waitFavorable blocks until the channel satisfies the thresholds
// (step 5/17), emitting a Deferred event per unfavorable reading. It
// returns false if the total experiment time expired while waiting.
func (c *Client) waitFavorable(phase Phase, total time.Duration) (hints.Hints, bool) {
	for {
		h := c.Hints.Hints()
		if c.Params.DisableGating || c.Params.Thresholds.Favorable(h) {
			return h, true
		}
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: phase, Kind: EventDeferred,
			Hints: h, Requests: c.requests,
		})
		if c.elapsed() >= total {
			return h, false
		}
		c.Sleeper.Sleep(c.Params.HintPollInterval)
	}
}

// favorableNow re-reads the hints and reports whether the channel
// still satisfies the thresholds. The gate is checked before every
// individual request and re-checked after each response: a sample
// whose exchange straddled a channel degradation is discarded, since
// its delay (and hence offset) may already reflect the degraded
// channel the thresholds exist to avoid.
func (c *Client) favorableNow() (hints.Hints, bool) {
	h := c.Hints.Hints()
	return h, c.Params.DisableGating || c.Params.Thresholds.Favorable(h)
}

// warmupRound fans out through the source pool with bounded
// parallelism, screens falsetickers with Marzullo intersection plus
// cluster pruning, and offers the combined offset to the filter
// (steps 6–9). No clock update happens during warm-up. Requests are
// billed per exchange actually sent: sources inside their KoD
// hold-down are skipped without consuming a request.
func (c *Client) warmupRound(h hints.Hints) {
	res := c.pool.Round()
	c.requests += res.Exchanges

	var samples []exchange.Sample
	var idxs []int
	for _, o := range res.Outcomes {
		switch {
		case o.Skipped:
			// In KoD hold-down: no request sent, nothing to report.
		case o.KoD:
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseWarmup, Kind: EventKoD,
				Hints: h, Requests: c.requests, Source: o.Source,
			})
		case o.Err != nil:
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseWarmup, Kind: EventQueryFailed,
				Hints: h, Requests: c.requests, Source: o.Source,
			})
		case !c.delayAcceptable(o.Sample.Delay):
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseWarmup, Kind: EventRejected,
				Offset: o.Sample.Offset, Hints: h, Requests: c.requests,
				Source: o.Source,
			})
		default:
			samples = append(samples, o.Sample)
			idxs = append(idxs, o.Index)
		}
	}
	if len(samples) == 0 {
		// Nothing usable came back: a blackout round.
		c.roundDry(PhaseWarmup, h)
		return
	}
	if hh, ok := c.favorableNow(); !ok {
		// The channel degraded while the round's exchanges were in
		// flight: every sample is suspect; drop them. The requests
		// were already spent, hence Dropped rather than Deferred.
		// Neither dry nor wet for holdover accounting — the sources
		// answered, the channel vetoed.
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: PhaseWarmup, Kind: EventDropped,
			Hints: hh, Requests: c.requests,
		})
		return
	}

	var offset time.Duration
	if c.Params.DisableFalseTickerRejection {
		offset = CombineOffsets(samples)
	} else {
		sel := c.pool.SelectCombine(samples, idxs)
		for _, fi := range sel.Falsetickers {
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseWarmup, Kind: EventFalseTicker,
				Offset: samples[fi].Offset, Hints: h, Requests: c.requests,
				Source: samples[fi].Server,
			})
		}
		if !sel.OK {
			// No majority and no dominant-score source: the round is
			// ambiguous; offering an average would poison the filter.
			// Persistently ambiguous rounds count toward holdover.
			c.roundDry(PhaseWarmup, h)
			return
		}
		offset = sel.Offset
	}
	c.roundWet()
	c.offer(PhaseWarmup, offset, h, false)
}

// regularRound queries the pool's top-ranked healthy source and, on
// acceptance, corrects the system clock (steps 18–21). When the
// source degrades — loss, KoD, rising delay — its score drops and
// the next round fails over to the new top-ranked source (plus
// optional in-round failover via Params.FailoverTries).
func (c *Client) regularRound(h hints.Hints) {
	s, outs, err := c.pool.MeasureBest()
	c.requests += len(outs)
	for _, o := range outs {
		if o.OK {
			continue
		}
		kind := EventQueryFailed
		if o.KoD {
			kind = EventKoD
		}
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: PhaseRegular, Kind: kind,
			Hints: h, Requests: c.requests, Source: o.Source,
		})
	}
	if err != nil {
		if len(outs) == 0 {
			// Every source is held down: nothing was sent, which is a
			// deferral in the message-accounting sense.
			c.emit(Event{
				Elapsed: c.elapsed(), Phase: PhaseRegular, Kind: EventDeferred,
				Hints: h, Requests: c.requests,
			})
		}
		// Both total failure and total hold-down are blackout rounds.
		c.roundDry(PhaseRegular, h)
		return
	}
	c.roundWet()
	if !c.delayAcceptable(s.Delay) {
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: PhaseRegular, Kind: EventRejected,
			Offset: s.Offset, Hints: h, Requests: c.requests, Source: s.Server,
		})
		return
	}
	if hh, ok := c.favorableNow(); !ok {
		c.emit(Event{
			Elapsed: c.elapsed(), Phase: PhaseRegular, Kind: EventDropped,
			Hints: hh, Requests: c.requests, Source: s.Server,
		})
		return
	}
	c.offer(PhaseRegular, s.Offset, h, true)
}

// panicRestartAfter is how many consecutive panic-refused corrections
// force a re-warm-up: persistent huge offsets mean either the clock
// or the sources really are that wrong, and only a fresh multi-source
// warm-up can tell which.
const panicRestartAfter = 3

// offer pushes an offset through the filter, emits the event, and in
// the regular phase applies accepted offsets to the clock through the
// discipline gate (slew/step/panic, holdover exit).
func (c *Client) offer(phase Phase, offset time.Duration, h hints.Hints, update bool) {
	elapsed := c.elapsed()
	// Suspend/resume check first: if the device slept while this
	// sample was in flight, the sample's timestamps straddle the gap
	// and its offset is garbage. Discard it, desynchronize, and
	// restart with a fresh warm-up.
	if c.Mono != nil {
		if jump, resumed := c.disc.ObserveTimes(c.Clock.Now(), c.Mono()); resumed {
			c.emit(Event{
				Elapsed: elapsed, Phase: phase, Kind: EventResumed,
				Offset: jump, Hints: h, Requests: c.requests,
			})
			c.restart = true
			return
		}
	}
	var accepted bool
	var pred time.Duration
	var predOK bool
	if c.Params.DisableFilter {
		accepted = true
		// Still feed the trend so drift estimation works.
		c.filter.est.Add(elapsed.Seconds(), offset.Seconds())
	} else {
		accepted, pred, predOK = c.filter.Offer(elapsed, offset)
	}

	kind := EventAccepted
	if !accepted {
		kind = EventRejected
	}
	if accepted && predOK {
		d := (offset - pred).Seconds() * 1000
		c.cycleSq += d * d
		c.cycleN++
	}
	drift, _ := c.filter.Drift()
	c.emit(Event{
		Elapsed: elapsed, Phase: phase, Kind: kind,
		Offset: offset, Predicted: pred, PredOK: predOK,
		Hints: h, Requests: c.requests, Drift: drift,
	})

	if accepted && update && !c.Params.DisableClockUpdates {
		res := c.disc.Apply(offset, c.Clock.Now())
		switch {
		case res.Err != nil:
			// The adjuster refused the correction (satellite of this
			// PR: this error used to vanish in an `if err == nil`).
			c.emit(Event{
				Elapsed: elapsed, Phase: phase, Kind: EventAdjustError,
				Offset: offset, Hints: h, Requests: c.requests,
			})
		case res.Action == discipline.ActionPanic:
			c.emit(Event{
				Elapsed: elapsed, Phase: phase, Kind: EventPanicStep,
				Offset: offset, Hints: h, Requests: c.requests,
			})
			if c.disc.ConsecutivePanics() >= panicRestartAfter {
				c.restart = true
			}
		default:
			if res.Applied != 0 {
				c.filter.ApplyStep(res.Applied)
			}
		}
	}
}

// delayAcceptable applies the delay sanity gate and updates the
// per-cycle minimum. The first sample of a cycle always passes and
// anchors the gate.
func (c *Client) delayAcceptable(d time.Duration) bool {
	if !c.haveMinDelay || d < c.minDelay {
		c.minDelay = d
		c.haveMinDelay = true
		return true
	}
	gate := c.Params.MaxSampleDelay
	if gate == 0 {
		gate = 3*c.minDelay + 30*time.Millisecond
	}
	return d <= gate
}

func (c *Client) emit(e Event) {
	switch e.Kind {
	case EventAccepted:
		c.cycle.Accepted++
	case EventRejected:
		c.cycle.Rejected++
	case EventDeferred:
		c.cycle.Deferred++
	case EventQueryFailed, EventKoD:
		c.cycle.Failed++
	case EventDropped:
		// A dropped sample consumed a request without yielding an
		// offset; for the tuner's purposes that is a failed attempt.
		c.cycle.Failed++
	case EventAdjustError:
		c.cycle.AdjustErrors++
	case EventPanicStep:
		c.cycle.PanicSteps++
	}
	if c.OnEvent != nil {
		c.OnEvent(e)
	}
}
