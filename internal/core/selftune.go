package core

import (
	"math"
	"time"
)

// CycleStats summarizes one completed warm-up + regular cycle, the
// feedback a between-cycle tuner adjusts parameters on.
type CycleStats struct {
	// Accepted/Rejected/Deferred/Failed count this cycle's events.
	Accepted, Rejected, Deferred, Failed int
	// AdjustErrors counts corrections the system-clock adjuster
	// refused (EventAdjustError); PanicSteps counts corrections the
	// discipline's panic gate refused (EventPanicStep).
	AdjustErrors, PanicSteps int
	// GateFallbacks counts filter decisions taken under the bounded
	// default gate because the trend estimator could not produce a
	// prediction variance (Filter.VarianceFallbacks at cycle end).
	GateFallbacks int
	// Requests is the number of SNTP requests emitted this cycle.
	Requests int
	// ResidRMSE is the RMSE (ms) of accepted offsets' deviations from
	// the trend line — the cycle's achieved synchronization quality,
	// the same score the §5.3 tuner optimizes.
	ResidRMSE float64
	// CycleLength is how long the cycle ran.
	CycleLength time.Duration
}

// Tuner adjusts MNTP parameters between reset cycles. §7 of the paper
// names "self-tuning of parameter settings" as future work; attaching
// a Tuner to the Client provides it.
type Tuner interface {
	Adjust(stats CycleStats, p Params) Params
}

// SelfTuner is a feedback controller over MNTP's two cadence
// parameters: it shortens the regular wait when achieved quality
// misses the target (more samples → tighter trend) and lengthens it
// when quality is comfortably met (fewer requests → less energy,
// trading along the Table 2 RMSE/requests curve automatically).
type SelfTuner struct {
	// TargetRMSE is the quality goal in ms (default 10, the middle of
	// Table 2's range).
	TargetRMSE float64
	// MinRegularWait/MaxRegularWait clamp the adaptation
	// (defaults 30 s and 30 min).
	MinRegularWait, MaxRegularWait time.Duration
	// MinWarmupWait/MaxWarmupWait clamp the warm-up cadence
	// (defaults 5 s and 2 min).
	MinWarmupWait, MaxWarmupWait time.Duration
	// Adjustments counts applied changes (observability).
	Adjustments int
}

// NewSelfTuner returns a tuner with defaults applied.
func NewSelfTuner(targetRMSE float64) *SelfTuner {
	if targetRMSE <= 0 {
		targetRMSE = 10
	}
	return &SelfTuner{
		TargetRMSE:     targetRMSE,
		MinRegularWait: 30 * time.Second, MaxRegularWait: 30 * time.Minute,
		MinWarmupWait: 5 * time.Second, MaxWarmupWait: 2 * time.Minute,
	}
}

// Adjust implements Tuner.
func (s *SelfTuner) Adjust(st CycleStats, p Params) Params {
	if st.Accepted < 2 || math.IsNaN(st.ResidRMSE) {
		// Starved cycle: sample more aggressively.
		p.RegularWaitTime = clampDur(p.RegularWaitTime/2, s.MinRegularWait, s.MaxRegularWait)
		p.WarmupWaitTime = clampDur(p.WarmupWaitTime/2, s.MinWarmupWait, s.MaxWarmupWait)
		s.Adjustments++
		return p
	}
	switch {
	case st.ResidRMSE > 1.25*s.TargetRMSE:
		// Missing the goal: halve the waits (denser sampling).
		p.RegularWaitTime = clampDur(p.RegularWaitTime/2, s.MinRegularWait, s.MaxRegularWait)
		p.WarmupWaitTime = clampDur(p.WarmupWaitTime/2, s.MinWarmupWait, s.MaxWarmupWait)
		s.Adjustments++
	case st.ResidRMSE < 0.5*s.TargetRMSE:
		// Comfortably ahead: back off to save requests.
		p.RegularWaitTime = clampDur(p.RegularWaitTime*2, s.MinRegularWait, s.MaxRegularWait)
		p.WarmupWaitTime = clampDur(p.WarmupWaitTime*2, s.MinWarmupWait, s.MaxWarmupWait)
		s.Adjustments++
	}
	return p
}

func clampDur(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}
