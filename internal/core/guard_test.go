package core

import (
	"errors"
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/discipline"
	"mntp/internal/exchange"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/ntppkt"
	"mntp/internal/sysclock"
)

// failingAdjuster refuses every correction, like an unprivileged
// process on a real host (adjtimex EPERM).
type failingAdjuster struct{}

func (failingAdjuster) Step(time.Duration) error { return errors.New("step: EPERM") }
func (failingAdjuster) AdjustFreq(float64) error { return errors.New("adjtimex: EPERM") }

// TestAdjustErrorsSurface checks the satellite bugfix: a failing
// adjuster used to be silently discarded at both call sites; now each
// refusal emits EventAdjustError and is counted in the cycle stats.
func TestAdjustErrorsSurface(t *testing.T) {
	l := newLab(61, 0, clock.Config{SkewPPM: 30, Seed: 6})
	params := DefaultParams("pool")
	params.WarmupPeriod = 5 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = time.Hour

	var adjustErrors, accepted int
	var statErrors int
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, failingAdjuster{}, tr, hints.AlwaysFavorable, p, params)
		c.Tuner = tunerFunc(func(st CycleStats, pp Params) Params {
			statErrors += st.AdjustErrors
			return pp
		})
		c.OnEvent = func(e Event) {
			switch e.Kind {
			case EventAdjustError:
				adjustErrors++
			case EventAccepted:
				accepted++
			}
		}
		c.Run(time.Hour + time.Minute)
	})
	l.sched.Run()

	if adjustErrors == 0 {
		t.Fatal("failing adjuster produced no EventAdjustError")
	}
	if accepted == 0 {
		t.Fatal("no accepted samples (test setup broken)")
	}
	if statErrors == 0 {
		t.Error("cycle stats never counted an adjust error")
	}
}

// tunerFunc adapts a function to the Tuner interface.
type tunerFunc func(CycleStats, Params) Params

func (f tunerFunc) Adjust(st CycleStats, p Params) Params { return f(st, p) }

// TestHoldoverOnBlackoutAndRecovery drives the full client into a
// total blackout mid-regular-phase: after HoldoverAfter dry rounds it
// must emit EventHoldover (discipline in holdover, last frequency
// still applied), and when the network returns it must re-converge
// and exit holdover on the first accepted sample.
func TestHoldoverOnBlackoutAndRecovery(t *testing.T) {
	l := newLab(62, 0, clock.Config{SkewPPM: 30, InitialOffset: 80 * time.Millisecond, Seed: 8})
	params := DefaultParams("pool")
	params.WarmupPeriod = 5 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = 2 * time.Hour

	down := false
	var sawHoldover, recoveredAfterHoldover bool
	var cl *Client
	l.sched.Go(func(p *netsim.Proc) {
		inner := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		tr := exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
			if down {
				return nil, time.Time{}, errors.New("network unreachable")
			}
			return inner.Exchange(server, req)
		})
		cl = New(l.clk, sysclock.SimAdjuster{Clock: l.clk}, tr, hints.AlwaysFavorable, p, params)
		cl.OnEvent = func(e Event) {
			switch e.Kind {
			case EventHoldover:
				sawHoldover = true
			case EventAccepted:
				if sawHoldover {
					recoveredAfterHoldover = true
				}
			}
		}
		cl.Run(time.Hour)
	})
	l.sched.After(20*time.Minute, func() { down = true })
	l.sched.After(40*time.Minute, func() { down = false })

	var stateDuringBlackout discipline.State
	l.sched.After(35*time.Minute, func() {
		stateDuringBlackout = cl.Discipline().State()
	})
	l.sched.Run()

	if !sawHoldover {
		t.Fatal("blackout never produced EventHoldover")
	}
	if stateDuringBlackout != discipline.StateHoldover {
		t.Errorf("discipline state during blackout = %v, want holdover", stateDuringBlackout)
	}
	if !recoveredAfterHoldover {
		t.Fatal("no sample accepted after the network returned")
	}
	if st := cl.Discipline().State(); st != discipline.StateSync {
		t.Errorf("final discipline state = %v, want sync", st)
	}
	if off := l.clk.TrueOffset(); off > 25*time.Millisecond || off < -25*time.Millisecond {
		t.Errorf("clock error after recovery = %v, want ≤ 25ms", off)
	}
}

// TestSuspendForcesRewarmup models a suspend/resume: the wall clock
// jumps 90 s while the monotonic clock does not. The client must
// detect the divergence, emit EventResumed, discard the poisoned
// sample, and re-enter warm-up — after which it may legitimately step
// the clock back (cold state) and re-converge.
func TestSuspendForcesRewarmup(t *testing.T) {
	l := newLab(63, 0, clock.Config{SkewPPM: 30, Seed: 10})
	params := DefaultParams("pool")
	params.WarmupPeriod = 5 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = 2 * time.Hour

	var sawResumed, warmupAfterResume, panicAfterResume bool
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, sysclock.SimAdjuster{Clock: l.clk}, tr, hints.AlwaysFavorable, p, params)
		// Virtual scheduler time is the simulation's CLOCK_MONOTONIC:
		// it never jumps, while the sim wall clock can be stepped.
		c.Mono = func() time.Duration { return l.sched.Now() }
		c.OnEvent = func(e Event) {
			switch e.Kind {
			case EventResumed:
				sawResumed = true
			case EventAccepted:
				if sawResumed && e.Phase == PhaseWarmup {
					warmupAfterResume = true
				}
			case EventPanicStep:
				if sawResumed {
					panicAfterResume = true
				}
			}
		}
		c.Run(time.Hour)
	})
	// The "suspend": wall time leaps 90 s at t=20min, mono does not.
	l.sched.After(20*time.Minute, func() { l.clk.Step(90 * time.Second) })
	l.sched.Run()

	if !sawResumed {
		t.Fatal("90s wall-vs-mono divergence never detected")
	}
	if !warmupAfterResume {
		t.Fatal("no fresh warm-up after the detected resume")
	}
	if panicAfterResume {
		t.Error("recovery step after resume was panic-refused (desync not applied)")
	}
	if off := l.clk.TrueOffset(); off > 25*time.Millisecond || off < -25*time.Millisecond {
		t.Errorf("clock error after resume recovery = %v, want ≤ 25ms", off)
	}
}

// TestNetworkChangedResetsAndReprobes checks the roaming hook: the
// pool's path health resets, EventNetworkChanged is emitted, and the
// client keeps accepting samples on the new path.
func TestNetworkChangedResetsAndReprobes(t *testing.T) {
	l := newLab(64, 0, clock.Config{SkewPPM: 18, Seed: 12})
	params := DefaultParams("pool")
	params.WarmupPeriod = 5 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 2 * time.Minute
	params.ResetPeriod = 2 * time.Hour
	params.DisableClockUpdates = true

	var sawChange bool
	var acceptedAfterChange int
	var changeAt time.Duration
	var cl *Client
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		cl = New(l.clk, nil, tr, hints.AlwaysFavorable, p, params)
		cl.OnEvent = func(e Event) {
			switch e.Kind {
			case EventNetworkChanged:
				sawChange = true
			case EventAccepted:
				if sawChange {
					acceptedAfterChange++
				}
			}
		}
		cl.Run(40 * time.Minute)
	})
	l.sched.After(20*time.Minute, func() {
		changeAt = l.sched.Now()
		cl.NetworkChanged()
	})
	l.sched.Run()

	if !sawChange {
		t.Fatal("NetworkChanged never surfaced as an event")
	}
	if acceptedAfterChange == 0 {
		t.Fatal("no samples accepted after the network change")
	}
	_ = changeAt
}

// TestNextWaitBackoff pins the jittered exponential re-probe: delays
// start near reprobeBase, stay within [b/2, b], double, and retire at
// the normal cadence.
func TestNextWaitBackoff(t *testing.T) {
	params := DefaultParams("pool")
	params.DisablePollJitter = true // pin the exact cadence for the retirement check
	c := New(nil, nil, nil, nil, nil, params)
	c.backoff = reprobeBase
	normal := time.Minute
	prevCeil := reprobeBase
	for i := 0; i < 5; i++ {
		w := c.nextWait(normal)
		if w < prevCeil/2 || w > prevCeil {
			t.Fatalf("step %d: wait %v outside [%v, %v]", i, w, prevCeil/2, prevCeil)
		}
		prevCeil *= 2
	}
	// 32s ceiling next doubles past 1 min: backoff retires.
	c.backoff = 2 * time.Minute
	if w := c.nextWait(normal); w != normal {
		t.Fatalf("retired backoff returned %v, want normal %v", w, normal)
	}
	if c.backoff != 0 {
		t.Fatal("backoff not cleared after retiring")
	}
}

// TestNextWaitPollJitter pins the poll-interval randomization: with
// the default jitter every wait falls in [0.9·normal, 1.1·normal] and
// the waits are not all identical (the fleet de-phasing property);
// with DisablePollJitter the cadence is exact.
func TestNextWaitPollJitter(t *testing.T) {
	c := New(nil, nil, nil, nil, nil, DefaultParams("pool"))
	normal := time.Minute
	lo := time.Duration(float64(normal) * (1 - DefaultPollJitter))
	hi := time.Duration(float64(normal) * (1 + DefaultPollJitter))
	distinct := map[time.Duration]bool{}
	for i := 0; i < 50; i++ {
		w := c.nextWait(normal)
		if w < lo || w > hi {
			t.Fatalf("wait %d: %v outside [%v, %v]", i, w, lo, hi)
		}
		distinct[w] = true
	}
	if len(distinct) < 10 {
		t.Fatalf("only %d distinct jittered waits in 50 draws", len(distinct))
	}

	params := DefaultParams("pool")
	params.DisablePollJitter = true
	c2 := New(nil, nil, nil, nil, nil, params)
	for i := 0; i < 5; i++ {
		if w := c2.nextWait(normal); w != normal {
			t.Fatalf("disabled jitter returned %v, want exact %v", w, normal)
		}
	}

	// Two clients with different jitter seeds must diverge — identical
	// sequences would keep a fleet phase-locked even with jitter on.
	pa, pb := DefaultParams("pool"), DefaultParams("pool")
	pa.JitterSeed, pb.JitterSeed = 1, 2
	ca := New(nil, nil, nil, nil, nil, pa)
	cb := New(nil, nil, nil, nil, nil, pb)
	same := 0
	for i := 0; i < 20; i++ {
		if ca.nextWait(normal) == cb.nextWait(normal) {
			same++
		}
	}
	if same == 20 {
		t.Fatal("differently seeded clients drew identical jitter sequences")
	}
}
