package core

import (
	"testing"
	"time"

	"mntp/internal/clock"
	"mntp/internal/hints"
	"mntp/internal/netsim"
	"mntp/internal/sntp"
	"mntp/internal/stats"
	"mntp/internal/sysclock"
	"mntp/internal/wireless"
)

var epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// lab bundles a simulated wireless testbed: scheduler, channel, pool
// of three true-time servers plus an optional false ticker, and a
// drifting client clock.
type lab struct {
	sched   *netsim.Scheduler
	channel *wireless.Channel
	net     *netsim.Network
	clk     *clock.Sim
}

func newLab(seed int64, falseTicker time.Duration, clkCfg clock.Config) *lab {
	sched := netsim.NewScheduler(epoch)
	truth := clock.NewTrue(epoch, sched.Now)
	ch := wireless.NewChannel(wireless.Params{Seed: seed}, sched.Now)
	net := netsim.NewNetwork(sched)

	var members []*netsim.Server
	for i := 0; i < 3; i++ {
		srv := netsim.NewServer("ref"+string(rune('0'+i)), truth, 2, seed*10+int64(i))
		members = append(members, srv)
		// Path: wireless hop + a wired backbone segment.
		net.AddServer(srv, &netsim.CompositePath{Segments: []netsim.PathModel{
			ch,
			netsim.NewWiredPath(time.Duration(8+4*i)*time.Millisecond, time.Millisecond, 0, 0, seed*100+int64(i)),
		}})
	}
	if falseTicker != 0 {
		bad := netsim.NewServer("badref", &clock.Fixed{Base: truth, Error: falseTicker}, 2, seed*10+9)
		members = append(members, bad)
		net.AddServer(bad, &netsim.CompositePath{Segments: []netsim.PathModel{
			ch, netsim.NewWiredPath(8*time.Millisecond, time.Millisecond, 0, 0, seed*100+9),
		}})
	}
	net.AddPool(netsim.NewPool("pool", members, seed+1000))
	clk := clock.NewSim(clkCfg, epoch, sched.Now)
	return &lab{sched: sched, channel: ch, net: net, clk: clk}
}

// stress drives the channel like the monitor node for the given
// duration: periodic load and power swings.
func (l *lab) stress(until time.Duration) {
	l.sched.Every(2*time.Minute, 4*time.Minute, func() bool {
		l.channel.AddLoad(0.55)
		l.channel.SetTxPower(4)
		l.sched.After(90*time.Second, func() {
			l.channel.AddLoad(-0.55)
			l.channel.SetTxPower(20)
		})
		return l.sched.Now() < until
	})
}

func TestMNTPRunGatesAndFilters(t *testing.T) {
	l := newLab(42, 0, clock.Config{SkewPPM: 18, Seed: 7})
	l.stress(time.Hour)

	params := DefaultParams("pool")
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = time.Hour
	params.DisableClockUpdates = true
	params.DisableDriftCorrection = true

	var events []Event
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, nil, tr, l.channel, p, params)
		c.OnEvent = func(e Event) { events = append(events, e) }
		c.Run(time.Hour)
	})
	l.sched.Run()

	var accepted, rejected, deferred int
	var acceptedErr stats.Online
	for _, e := range events {
		switch e.Kind {
		case EventAccepted:
			accepted++
			// Error of the reported offset against the true clock
			// error at that moment is bounded by path asymmetry; the
			// raw offset equals −trueOffset ± error, so compare the
			// corrected residual instead: accepted offsets minus
			// prediction stay small.
			if e.PredOK {
				resid := (e.Offset - e.Predicted).Seconds() * 1000
				acceptedErr.Add(resid)
			}
		case EventRejected:
			rejected++
		case EventDeferred:
			deferred++
		}
	}
	if accepted < 50 {
		t.Fatalf("accepted = %d, want a healthy sample count", accepted)
	}
	if deferred == 0 {
		t.Error("stressed channel never deferred a request: gating inert")
	}
	if rejected == 0 {
		t.Error("no offsets rejected: filter inert")
	}
	// Accepted-sample residuals must be small (tight trend tracking).
	if acceptedErr.Max() > 30 || acceptedErr.Min() < -30 {
		t.Errorf("accepted residual range [%.1f, %.1f]ms exceeds 30ms",
			acceptedErr.Min(), acceptedErr.Max())
	}
}

func TestMNTPBeatsSNTPOnStressedChannel(t *testing.T) {
	// Run SNTP and MNTP side by side (separate identical labs so the
	// channel realization is shared per-protocol) and compare the
	// worst |error| of reported offsets relative to the true clock
	// offset. This is the paper's headline claim (Figures 6/8):
	// MNTP's reported offsets stay within ~25 ms while SNTP's reach
	// hundreds of ms.
	const seed = 77
	clkCfg := clock.Config{SkewPPM: 18, Seed: 9}

	// SNTP leg.
	lS := newLab(seed, 0, clkCfg)
	lS.stress(time.Hour)
	var sntpWorst float64
	lS.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: lS.net, Proc: p, Clock: lS.clk}
		cl := sntp.New(lS.clk, tr, p, sntp.Config{Server: "pool"})
		for p.Now() < time.Hour {
			if s, err := cl.Query(); err == nil {
				trueOff := lS.clk.TrueOffset()
				errMs := (s.Offset + trueOff).Seconds() * 1000 // measurement error
				if errMs < 0 {
					errMs = -errMs
				}
				if errMs > sntpWorst {
					sntpWorst = errMs
				}
			}
			p.Sleep(5 * time.Second)
		}
	})
	lS.sched.Run()

	// MNTP leg (measurement-only, like the paper's §5.1 comparison).
	lM := newLab(seed, 0, clkCfg)
	lM.stress(time.Hour)
	params := DefaultParams("pool")
	params.WarmupPeriod = 10 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.RegularWaitTime = 5 * time.Second
	params.ResetPeriod = 2 * time.Hour
	params.DisableClockUpdates = true
	params.DisableDriftCorrection = true

	var mntpWorst float64
	lM.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: lM.net, Proc: p, Clock: lM.clk}
		c := New(lM.clk, nil, tr, lM.channel, p, params)
		c.OnEvent = func(e Event) {
			if e.Kind != EventAccepted {
				return
			}
			trueOff := lM.clk.TrueOffset()
			errMs := (e.Offset + trueOff).Seconds() * 1000
			if errMs < 0 {
				errMs = -errMs
			}
			if errMs > mntpWorst {
				mntpWorst = errMs
			}
		}
		c.Run(time.Hour)
	})
	lM.sched.Run()

	if sntpWorst < 50 {
		t.Errorf("SNTP worst error = %.1fms; channel not stressful enough", sntpWorst)
	}
	if mntpWorst > 30 {
		t.Errorf("MNTP worst accepted error = %.1fms, want ≤ 30ms", mntpWorst)
	}
	if mntpWorst*3 > sntpWorst {
		t.Errorf("MNTP (%.1fms) not ≥3x better than SNTP (%.1fms)", mntpWorst, sntpWorst)
	}
}

func TestMNTPWarmupRejectsFalseTicker(t *testing.T) {
	l := newLab(5, 600*time.Millisecond, clock.Config{Seed: 3})
	params := DefaultParams("pool")
	// Query the distinct members explicitly so the false ticker is
	// hit deterministically each round.
	params.WarmupServers = []string{"ref0", "ref1", "badref"}
	params.WarmupPeriod = 5 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.ResetPeriod = 10 * time.Minute
	params.DisableClockUpdates = true

	var falseTickers int
	var acceptedOffsets []float64
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, nil, tr, l.channel, p, params)
		c.OnEvent = func(e Event) {
			switch e.Kind {
			case EventFalseTicker:
				falseTickers++
			case EventAccepted:
				acceptedOffsets = append(acceptedOffsets, e.Offset.Seconds()*1000)
			}
		}
		c.Run(5 * time.Minute)
	})
	l.sched.Run()

	if falseTickers == 0 {
		t.Fatal("600ms false ticker never rejected")
	}
	// Accepted combined offsets must not be dragged toward +600 ms;
	// with rejection they stay within tens of ms.
	if m := stats.MaxAbs(acceptedOffsets); m > 100 {
		t.Errorf("max accepted offset %.1fms: false ticker leaked into combination", m)
	}
}

func TestMNTPDriftCorrectionConvergesClock(t *testing.T) {
	// Full algorithm with clock updates on a quiet channel: after
	// warm-up + drift correction, the client clock must track true
	// time within ~25 ms (the paper's headline bound).
	l := newLab(11, 0, clock.Config{SkewPPM: 30, InitialOffset: 120 * time.Millisecond, Seed: 13})
	params := DefaultParams("pool")
	params.WarmupPeriod = 15 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = time.Minute
	params.ResetPeriod = 4 * time.Hour

	var worstRegular time.Duration
	var sawDriftCorrection bool
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, sysclock.SimAdjuster{Clock: l.clk}, tr, l.channel, p, params)
		c.OnEvent = func(e Event) {
			if e.Kind == EventDriftCorrected {
				sawDriftCorrection = true
			}
		}
		c.Run(2 * time.Hour)
	})
	// Sample the true clock error during the regular phase.
	l.sched.Every(30*time.Minute, time.Minute, func() bool {
		off := l.clk.TrueOffset()
		if off < 0 {
			off = -off
		}
		if off > worstRegular {
			worstRegular = off
		}
		return l.sched.Now() < 2*time.Hour
	})
	l.sched.Run()

	if !sawDriftCorrection {
		t.Error("drift correction never applied")
	}
	if worstRegular > 25*time.Millisecond {
		t.Errorf("worst clock error in regular phase = %v, want ≤ 25ms", worstRegular)
	}
}

func TestMNTPWiredStaticHintsNeverDefer(t *testing.T) {
	// With an always-favorable provider (wired host), gating never
	// defers and MNTP degenerates to filtered SNTP.
	l := newLab(21, 0, clock.Config{Seed: 2})
	params := DefaultParams("pool")
	params.WarmupPeriod = 2 * time.Minute
	params.WarmupWaitTime = 5 * time.Second
	params.ResetPeriod = 10 * time.Minute
	params.DisableClockUpdates = true

	deferred := 0
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, nil, tr, hints.AlwaysFavorable, p, params)
		c.OnEvent = func(e Event) {
			if e.Kind == EventDeferred {
				deferred++
			}
		}
		c.Run(10 * time.Minute)
	})
	l.sched.Run()
	if deferred != 0 {
		t.Errorf("deferred = %d with always-favorable hints", deferred)
	}
}

func TestMNTPResetCycles(t *testing.T) {
	// A short reset period forces multiple warm-up cycles within the
	// run; requests keep flowing after each reset.
	l := newLab(31, 0, clock.Config{Seed: 4})
	params := DefaultParams("pool")
	params.WarmupPeriod = 2 * time.Minute
	params.WarmupWaitTime = 10 * time.Second
	params.RegularWaitTime = 30 * time.Second
	params.ResetPeriod = 5 * time.Minute
	params.DisableClockUpdates = true

	var driftCorrections, accepted int
	l.sched.Go(func(p *netsim.Proc) {
		tr := &netsim.Transport{Net: l.net, Proc: p, Clock: l.clk}
		c := New(l.clk, sysclock.SimAdjuster{Clock: l.clk}, tr, hints.AlwaysFavorable, p, params)
		c.Params.DisableClockUpdates = true
		c.Params.DisableDriftCorrection = true
		c.OnEvent = func(e Event) {
			switch e.Kind {
			case EventDriftCorrected:
				driftCorrections++
			case EventAccepted:
				accepted++
			}
		}
		c.Run(21 * time.Minute)
	})
	l.sched.Run()
	// 21 min / 5 min reset ≈ 4 cycles; at least 3 full cycles' worth
	// of samples must have been accepted.
	if accepted < 30 {
		t.Errorf("accepted = %d across cycles", accepted)
	}
}

func TestDelayGateAdaptive(t *testing.T) {
	c := New(nil, nil, nil, nil, nil, DefaultParams("pool"))
	// First sample anchors the gate.
	if !c.delayAcceptable(40 * time.Millisecond) {
		t.Fatal("first sample rejected")
	}
	// Within 3*min+30ms = 150ms: accepted.
	if !c.delayAcceptable(140 * time.Millisecond) {
		t.Error("in-gate delay rejected")
	}
	// Beyond the gate: rejected.
	if c.delayAcceptable(200 * time.Millisecond) {
		t.Error("out-of-gate delay accepted")
	}
	// A new smaller minimum re-anchors.
	if !c.delayAcceptable(20 * time.Millisecond) {
		t.Error("new minimum rejected")
	}
	if c.delayAcceptable(120 * time.Millisecond) {
		t.Error("gate did not tighten after new minimum (3*20+30=90ms)")
	}
}

func TestDelayGateFixedOverride(t *testing.T) {
	params := DefaultParams("pool")
	params.MaxSampleDelay = 500 * time.Millisecond
	c := New(nil, nil, nil, nil, nil, params)
	c.delayAcceptable(40 * time.Millisecond) // anchor
	if !c.delayAcceptable(450 * time.Millisecond) {
		t.Error("fixed gate should admit 450ms")
	}
	if c.delayAcceptable(600 * time.Millisecond) {
		t.Error("fixed gate should reject 600ms")
	}
}

func TestDelayGateWorksOnCellularScaleDelays(t *testing.T) {
	// A 4G path with ~450ms RTTs must not be starved by the gate (the
	// adaptive form tracks the path's own floor).
	c := New(nil, nil, nil, nil, nil, DefaultParams("pool"))
	for _, d := range []time.Duration{420, 460, 440, 500, 480} {
		if !c.delayAcceptable(d * time.Millisecond) {
			t.Fatalf("cellular-scale delay %vms rejected", d)
		}
	}
}

func TestDelayGateSurvivesZeroDelayAnchor(t *testing.T) {
	// exchange.Measure floors pathological delays to exactly 0, so a
	// zero-delay sample is a legitimate anchor — the gate must not
	// treat it as the "no sample yet" state, or the next sample
	// (however slow) re-anchors the gate and passes.
	c := New(nil, nil, nil, nil, nil, DefaultParams("pool"))
	if !c.delayAcceptable(0) {
		t.Fatal("first (anchoring) zero-delay sample rejected")
	}
	// The gate is now 3·0 + 30 ms.
	if c.delayAcceptable(400 * time.Millisecond) {
		t.Error("400ms sample passed a 30ms gate: zero anchor treated as unset")
	}
	if !c.delayAcceptable(20 * time.Millisecond) {
		t.Error("20ms sample within the 30ms gate rejected")
	}
	if c.delayAcceptable(400 * time.Millisecond) {
		t.Error("rejected sample re-anchored the gate")
	}
}
