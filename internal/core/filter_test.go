package core

import (
	"math/rand"
	"testing"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/trend"
)

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func TestFilterAcceptsInitialSamples(t *testing.T) {
	f := NewFilter(ms(3), 3)
	for i := 0; i < 3; i++ {
		acc, _, _ := f.Offer(time.Duration(i)*5*time.Second, ms(float64(i)))
		if !acc {
			t.Fatalf("initial sample %d rejected", i)
		}
	}
	if f.N() != 3 {
		t.Errorf("N = %d", f.N())
	}
}

func TestFilterRejectsOutlierAcceptsOnTrend(t *testing.T) {
	// Clock drifting at 10 ppm with small noise; one 200 ms spike.
	f := NewFilter(ms(3), 3)
	rng := rand.New(rand.NewSource(1))
	const drift = 10e-6
	for i := 0; i < 30; i++ {
		x := time.Duration(i) * 5 * time.Second
		y := time.Duration(drift*float64(x)) + ms(rng.NormFloat64()*0.8)
		if acc, _, _ := f.Offer(x, y); !acc {
			t.Fatalf("on-trend sample %d rejected", i)
		}
	}
	// Spike far off the trend.
	x := 31 * 5 * time.Second
	spike := time.Duration(drift*float64(x)) + ms(200)
	if acc, _, _ := f.Offer(x, spike); acc {
		t.Error("200ms outlier accepted")
	}
	// Next on-trend sample still accepted (outlier did not poison the
	// trend).
	x = 32 * 5 * time.Second
	good := time.Duration(drift * float64(x))
	if acc, _, _ := f.Offer(x, good); !acc {
		t.Error("post-outlier on-trend sample rejected")
	}
}

func TestFilterRecoversDrift(t *testing.T) {
	f := NewFilter(ms(3), 3)
	const drift = 25e-6
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := time.Duration(i) * 15 * time.Second
		y := time.Duration(drift*float64(x)) + ms(rng.NormFloat64()*1.2)
		f.Offer(x, y)
	}
	got, ok := f.Drift()
	if !ok {
		t.Fatal("no drift estimate")
	}
	if got < 20e-6 || got > 30e-6 {
		t.Errorf("drift = %v, want ~25ppm", got)
	}
}

func TestFilterFloorKeepsGateOpenAtStart(t *testing.T) {
	// Perfectly linear start (zero residual variance): without the
	// floor, any nonzero deviation would be rejected. The floor must
	// admit small noise.
	f := NewFilter(ms(3), 3)
	for i := 0; i < 5; i++ {
		f.Offer(time.Duration(i)*5*time.Second, ms(float64(i))) // exact line
	}
	x := 5 * 5 * time.Second
	if acc, _, _ := f.Offer(x, ms(5.0+2.0)); !acc { // 2 ms off a perfect line
		t.Error("2ms deviation rejected despite 3ms floor")
	}
	if acc, _, _ := f.Offer(6*5*time.Second, ms(6.0+80)); acc {
		t.Error("80ms deviation admitted")
	}
}

func TestFilterApplyStepKeepsPredictionsConsistent(t *testing.T) {
	f := NewFilter(ms(3), 3)
	// History along offset = 100ms (no drift).
	for i := 0; i < 10; i++ {
		f.Offer(time.Duration(i)*time.Minute, ms(100))
	}
	// Clock stepped by +100 ms: future offsets become ~0.
	f.ApplyStep(ms(100))
	pred, ok := f.Predict(11 * time.Minute)
	if !ok {
		t.Fatal("no prediction")
	}
	if pred < ms(-3) || pred > ms(3) {
		t.Errorf("post-step prediction = %v, want ~0", pred)
	}
	if acc, _, _ := f.Offer(11*time.Minute, ms(0.5)); !acc {
		t.Error("post-step on-trend sample rejected")
	}
}

func TestFilterApplyFreqFlattensTrend(t *testing.T) {
	f := NewFilter(ms(3), 3)
	const drift = 50e-6
	for i := 0; i < 20; i++ {
		x := time.Duration(i) * 30 * time.Second
		f.Offer(x, time.Duration(drift*float64(x)))
	}
	now := 19 * 30 * time.Second
	est, _ := f.Drift()
	f.ApplyFreq(est, now)
	// After the frequency trim, the trend should be flat at the
	// prediction for `now`.
	d, _ := f.Drift()
	if d > 5e-6 || d < -5e-6 {
		t.Errorf("post-trim drift = %v, want ~0", d)
	}
	pred, _ := f.Predict(now)
	want := time.Duration(drift * float64(now))
	if diff := pred - want; diff < -ms(2) || diff > ms(2) {
		t.Errorf("post-trim prediction at now = %v, want %v", pred, want)
	}
}

func sampleWithOffset(server string, off time.Duration) exchange.Sample {
	return exchange.Sample{Server: server, Offset: off}
}

func TestRejectFalseTickersPositive(t *testing.T) {
	samples := []exchange.Sample{
		sampleWithOffset("a", ms(1)),
		sampleWithOffset("b", ms(-2)),
		sampleWithOffset("c", ms(480)),
	}
	kept, rejected := RejectFalseTickers(samples)
	if len(rejected) != 1 || rejected[0].Server != "c" {
		t.Errorf("rejected = %v", rejected)
	}
	if len(kept) != 2 {
		t.Errorf("kept = %v", kept)
	}
}

func TestRejectFalseTickersNegative(t *testing.T) {
	samples := []exchange.Sample{
		sampleWithOffset("a", ms(1)),
		sampleWithOffset("b", ms(-2)),
		sampleWithOffset("c", ms(-480)),
	}
	_, rejected := RejectFalseTickers(samples)
	if len(rejected) != 1 || rejected[0].Server != "c" {
		t.Errorf("negative false ticker not rejected: %v", rejected)
	}
}

func TestRejectFalseTickersFewSamples(t *testing.T) {
	samples := []exchange.Sample{
		sampleWithOffset("a", ms(1)),
		sampleWithOffset("b", ms(900)),
	}
	kept, rejected := RejectFalseTickers(samples)
	if len(kept) != 2 || rejected != nil {
		t.Error("pairs have no majority; both must be kept")
	}
}

func TestRejectFalseTickersAllEqual(t *testing.T) {
	samples := []exchange.Sample{
		sampleWithOffset("a", ms(5)),
		sampleWithOffset("b", ms(5)),
		sampleWithOffset("c", ms(5)),
	}
	kept, rejected := RejectFalseTickers(samples)
	if len(kept) != 3 || len(rejected) != 0 {
		t.Error("identical offsets must all be kept")
	}
}

func TestCombineOffsets(t *testing.T) {
	if got := CombineOffsets(nil); got != 0 {
		t.Errorf("empty combine = %v", got)
	}
	samples := []exchange.Sample{
		sampleWithOffset("a", ms(10)),
		sampleWithOffset("b", ms(20)),
	}
	if got := CombineOffsets(samples); got != ms(15) {
		t.Errorf("combine = %v, want 15ms", got)
	}
}

func TestDriftWithError(t *testing.T) {
	f := NewFilter(ms(3), 3)
	if _, _, ok := f.DriftWithError(); ok {
		t.Error("empty filter returned a drift estimate")
	}
	// Exact line: slope recovered, standard error ~0.
	for i := 0; i < 20; i++ {
		x := time.Duration(i) * 10 * time.Second
		f.Offer(x, time.Duration(20e-6*float64(x)))
	}
	drift, se, ok := f.DriftWithError()
	if !ok {
		t.Fatal("no estimate")
	}
	if drift < 15e-6 || drift > 25e-6 {
		t.Errorf("drift = %v, want ~20ppm", drift)
	}
	if se > 1e-6 {
		t.Errorf("stderr = %v, want ~0 for an exact line", se)
	}
}

func TestDriftErrorLargeForScatteredFewSamples(t *testing.T) {
	// Three scattered points: the slope is meaningless and the
	// standard error must say so (this is what prevents the runaway
	// drift corrections the paper's §5.3 tuning uncovered).
	f := NewFilter(ms(3), 3)
	f.Offer(0, ms(0))
	f.Offer(10*time.Second, ms(300))
	f.Offer(20*time.Second, ms(-200))
	_, se, ok := f.DriftWithError()
	if !ok {
		t.Fatal("no estimate")
	}
	if se < 25e-6 {
		t.Errorf("stderr = %v ppm, want large for scattered points", se*1e6)
	}
}

func TestFilterFallbackGateWhenVarianceUnavailable(t *testing.T) {
	// Two samples at distinct elapsed times define a line but give the
	// estimator no residual degrees of freedom, so PredictVariance
	// returns trend.ErrInsufficient. The second-chance gate must then
	// use the explicit bounded default (|error| ≤ 3·floor) and count
	// the fallback, rather than silently skipping the second chance.
	f := NewFilter(ms(3), 2)
	f.Offer(0, 0)
	f.Offer(5*time.Second, 0)

	// 5 ms error: squared 25e-6 exceeds the residual gate's floored
	// mean (9e-6), but |5 ms| ≤ 3·3 ms, so the fallback admits it.
	acc, _, _ := f.Offer(10*time.Second, ms(5))
	if !acc {
		t.Fatalf("5 ms offer should pass the 3·floor fallback gate")
	}
	if got := f.VarianceFallbacks(); got != 1 {
		t.Errorf("VarianceFallbacks = %d, want 1", got)
	}

	// A fresh filter in the same state must still reject an offer far
	// outside the bounded default: the fallback is a gate, not a pass.
	g := NewFilter(ms(3), 2)
	g.Offer(0, 0)
	g.Offer(5*time.Second, 0)
	acc, _, _ = g.Offer(10*time.Second, ms(80))
	if acc {
		t.Fatalf("80 ms offer must stay rejected under the fallback gate")
	}
	if got := g.VarianceFallbacks(); got != 1 {
		t.Errorf("VarianceFallbacks = %d, want 1", got)
	}
}

func TestFilterKindRobustRejectsSpike(t *testing.T) {
	// The Theil-Sen and LAD-backed filters must behave like the
	// least-squares one on the basic contract: track a drifting clock,
	// reject a gross spike, keep predicting.
	for _, kind := range []trend.Kind{trend.KindTheilSen, trend.KindLAD} {
		f := NewFilterKind(kind, 32, ms(3), 3)
		const drift = 10e-6
		for i := 0; i < 20; i++ {
			el := time.Duration(i) * 10 * time.Second
			off := time.Duration(drift * float64(el))
			if acc, _, _ := f.Offer(el, off); !acc {
				t.Fatalf("%s: on-trend sample %d rejected", kind, i)
			}
		}
		if acc, _, _ := f.Offer(200*time.Second, ms(200)); acc {
			t.Errorf("%s: 200 ms spike accepted", kind)
		}
		d, ok := f.Drift()
		if !ok || d < 5e-6 || d > 15e-6 {
			t.Errorf("%s: drift = %v ok=%v, want ≈10 ppm", kind, d, ok)
		}
	}
}
