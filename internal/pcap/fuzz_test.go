package pcap

import (
	"bytes"
	"net/netip"
	"testing"
	"time"
)

// FuzzDecodeUDP checks the IP/UDP parser never panics and that
// everything it accepts round-trips through the encoder.
func FuzzDecodeUDP(f *testing.F) {
	good, _ := EncodeUDP(UDPDatagram{
		Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("10.4.5.6"),
		SrcPort: 123, DstPort: 45678, Payload: []byte("payload"),
	})
	f.Add(good)
	good6, _ := EncodeUDP(UDPDatagram{
		Src: netip.MustParseAddr("2001:db8::1"), Dst: netip.MustParseAddr("2001:db8::2"),
		SrcPort: 1, DstPort: 2, Payload: nil,
	})
	f.Add(good6)
	f.Add([]byte{0x45})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeUDP(data)
		if err != nil {
			return
		}
		re, err := EncodeUDP(d)
		if err != nil {
			t.Fatalf("decoded datagram fails to encode: %v", err)
		}
		d2, err := DecodeUDP(re)
		if err != nil {
			t.Fatalf("re-encoded datagram fails to decode: %v", err)
		}
		if d2.Src != d.Src || d2.Dst != d.Dst ||
			d2.SrcPort != d.SrcPort || d2.DstPort != d.DstPort ||
			!bytes.Equal(d2.Payload, d.Payload) {
			t.Fatal("round trip through encode/decode not stable")
		}
	})
}

// FuzzReader checks the pcap file reader never panics on corrupt
// files.
func FuzzReader(f *testing.F) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.WritePacket(time.Unix(1479081600, 0), []byte{0x45, 1, 2, 3})
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:30])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 100; i++ {
			if _, err := r.ReadPacket(); err != nil {
				return
			}
		}
	})
}
