package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	base := time.Date(2016, 11, 14, 12, 0, 0, 123456000, time.UTC)
	packets := [][]byte{
		{0x45, 1, 2, 3},
		{0x60, 9, 8},
		make([]byte, 300),
	}
	for i, p := range packets {
		if err := w.WritePacket(base.Add(time.Duration(i)*time.Second), p); err != nil {
			t.Fatal(err)
		}
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.LinkType != LinkTypeRaw {
		t.Errorf("link type = %d", r.LinkType)
	}
	for i := range packets {
		pkt, err := r.ReadPacket()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		want := base.Add(time.Duration(i) * time.Second)
		if !pkt.Timestamp.Equal(want) {
			t.Errorf("packet %d ts = %v, want %v", i, pkt.Timestamp, want)
		}
		if !bytes.Equal(pkt.Data, packets[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		if pkt.OrigLen != len(packets[i]) {
			t.Errorf("packet %d origlen = %d", i, pkt.OrigLen)
		}
	}
	if _, err := r.ReadPacket(); err != io.EOF {
		t.Errorf("end err = %v, want EOF", err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	bad := make([]byte, 24)
	if _, err := NewReader(bytes.NewReader(bad)); err != ErrBadMagic {
		t.Errorf("err = %v", err)
	}
}

func TestReaderRejectsShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header accepted")
	}
}

func TestReaderRejectsWrongLinkType(t *testing.T) {
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint32(hdr[0:], 0xa1b2c3d4)
	binary.LittleEndian.PutUint32(hdr[20:], 1) // EN10MB
	if _, err := NewReader(bytes.NewReader(hdr)); err == nil {
		t.Error("wrong link type accepted")
	}
}

func TestUDPRoundTripIPv4(t *testing.T) {
	d := UDPDatagram{
		Src:     netip.MustParseAddr("10.3.7.9"),
		Dst:     netip.MustParseAddr("192.0.2.1"),
		SrcPort: 45000, DstPort: 123,
		Payload: []byte("ntp-payload-here"),
	}
	raw, err := EncodeUDP(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUDP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != d.Src || got.Dst != d.Dst ||
		got.SrcPort != d.SrcPort || got.DstPort != d.DstPort ||
		!bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestUDPRoundTripIPv6(t *testing.T) {
	d := UDPDatagram{
		Src:     netip.MustParseAddr("2001:db8::1"),
		Dst:     netip.MustParseAddr("2001:db8::123"),
		SrcPort: 50123, DstPort: 123,
		Payload: make([]byte, 48),
	}
	raw, err := EncodeUDP(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeUDP(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Src != d.Src || got.Dst != d.Dst || len(got.Payload) != 48 {
		t.Errorf("v6 round trip mismatch: %+v", got)
	}
}

func TestEncodeRejectsMixedFamilies(t *testing.T) {
	d := UDPDatagram{
		Src: netip.MustParseAddr("10.0.0.1"),
		Dst: netip.MustParseAddr("2001:db8::1"),
	}
	if _, err := EncodeUDP(d); err == nil {
		t.Error("mixed families accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{0x45},          // truncated v4
		{0x60, 0, 0, 0}, // truncated v6
		{0x15, 0, 0, 0}, // version 1
		append([]byte{0x45, 0, 0, 20, 0, 0, 0, 0, 64, 6}, make([]byte, 10)...), // TCP
	}
	for i, c := range cases {
		if _, err := DecodeUDP(c); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestIPv4ChecksumValid(t *testing.T) {
	d := UDPDatagram{
		Src:     netip.MustParseAddr("10.1.2.3"),
		Dst:     netip.MustParseAddr("10.4.5.6"),
		SrcPort: 1, DstPort: 2, Payload: []byte{1},
	}
	raw, err := EncodeUDP(d)
	if err != nil {
		t.Fatal(err)
	}
	// Verify: summing the full header including the stored checksum
	// must produce 0xffff.
	var sum uint32
	for i := 0; i+1 < ipv4HeaderLen; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(raw[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if sum != 0xffff {
		t.Errorf("header checksum invalid: folded sum %#x", sum)
	}
}

// Property: Encode→Decode is the identity for random payloads/ports.
func TestQuickUDPRoundTrip(t *testing.T) {
	f := func(a, b [4]byte, sp, dp uint16, payload []byte) bool {
		d := UDPDatagram{
			Src: netip.AddrFrom4(a), Dst: netip.AddrFrom4(b),
			SrcPort: sp, DstPort: dp, Payload: payload,
		}
		if len(payload) > 60000 {
			return true
		}
		raw, err := EncodeUDP(d)
		if err != nil {
			return false
		}
		got, err := DecodeUDP(raw)
		if err != nil {
			return false
		}
		return got.Src == d.Src && got.Dst == d.Dst &&
			got.SrcPort == sp && got.DstPort == dp &&
			bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
