package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// Header sizes and protocol numbers.
const (
	ipv4HeaderLen = 20
	ipv6HeaderLen = 40
	udpHeaderLen  = 8
	protoUDP      = 17
)

// UDPDatagram is a decoded IP/UDP packet.
type UDPDatagram struct {
	Src, Dst         netip.Addr
	SrcPort, DstPort uint16
	Payload          []byte
}

// EncodeUDP builds a raw IP/UDP packet (IPv4 or IPv6 chosen by the
// address family). The result starts at the IP header, matching
// LinkTypeRaw captures. The IPv4 header checksum is computed; the UDP
// checksum is zero for IPv4 (permitted) and left zero for IPv6 (our
// reader does not verify it, like tcpdump with -K).
func EncodeUDP(d UDPDatagram) ([]byte, error) {
	if d.Src.Is4() != d.Dst.Is4() {
		return nil, errors.New("pcap: mixed address families")
	}
	udpLen := udpHeaderLen + len(d.Payload)
	if d.Src.Is4() {
		total := ipv4HeaderLen + udpLen
		buf := make([]byte, total)
		buf[0] = 0x45 // version 4, IHL 5
		binary.BigEndian.PutUint16(buf[2:], uint16(total))
		buf[8] = 64 // TTL
		buf[9] = protoUDP
		src4, dst4 := d.Src.As4(), d.Dst.As4()
		copy(buf[12:16], src4[:])
		copy(buf[16:20], dst4[:])
		binary.BigEndian.PutUint16(buf[10:], ipv4Checksum(buf[:ipv4HeaderLen]))
		encodeUDPHeader(buf[ipv4HeaderLen:], d, udpLen)
		copy(buf[ipv4HeaderLen+udpHeaderLen:], d.Payload)
		return buf, nil
	}
	total := ipv6HeaderLen + udpLen
	buf := make([]byte, total)
	buf[0] = 0x60 // version 6
	binary.BigEndian.PutUint16(buf[4:], uint16(udpLen))
	buf[6] = protoUDP // next header
	buf[7] = 64       // hop limit
	src16, dst16 := d.Src.As16(), d.Dst.As16()
	copy(buf[8:24], src16[:])
	copy(buf[24:40], dst16[:])
	encodeUDPHeader(buf[ipv6HeaderLen:], d, udpLen)
	copy(buf[ipv6HeaderLen+udpHeaderLen:], d.Payload)
	return buf, nil
}

func encodeUDPHeader(b []byte, d UDPDatagram, udpLen int) {
	binary.BigEndian.PutUint16(b[0:], d.SrcPort)
	binary.BigEndian.PutUint16(b[2:], d.DstPort)
	binary.BigEndian.PutUint16(b[4:], uint16(udpLen))
}

// DecodeUDP parses a raw IP packet and extracts the UDP datagram. It
// returns an error for non-UDP packets, truncation, or unsupported IP
// versions.
func DecodeUDP(raw []byte) (UDPDatagram, error) {
	if len(raw) < 1 {
		return UDPDatagram{}, errors.New("pcap: empty packet")
	}
	switch raw[0] >> 4 {
	case 4:
		if len(raw) < ipv4HeaderLen {
			return UDPDatagram{}, errors.New("pcap: truncated IPv4 header")
		}
		ihl := int(raw[0]&0x0f) * 4
		if ihl < ipv4HeaderLen || len(raw) < ihl {
			return UDPDatagram{}, errors.New("pcap: bad IPv4 IHL")
		}
		if raw[9] != protoUDP {
			return UDPDatagram{}, fmt.Errorf("pcap: not UDP (proto %d)", raw[9])
		}
		src := netip.AddrFrom4([4]byte(raw[12:16]))
		dst := netip.AddrFrom4([4]byte(raw[16:20]))
		return decodeUDPHeader(raw[ihl:], src, dst)
	case 6:
		if len(raw) < ipv6HeaderLen {
			return UDPDatagram{}, errors.New("pcap: truncated IPv6 header")
		}
		if raw[6] != protoUDP {
			return UDPDatagram{}, fmt.Errorf("pcap: not UDP (next header %d)", raw[6])
		}
		src := netip.AddrFrom16([16]byte(raw[8:24]))
		dst := netip.AddrFrom16([16]byte(raw[24:40]))
		return decodeUDPHeader(raw[ipv6HeaderLen:], src, dst)
	default:
		return UDPDatagram{}, fmt.Errorf("pcap: unsupported IP version %d", raw[0]>>4)
	}
}

func decodeUDPHeader(b []byte, src, dst netip.Addr) (UDPDatagram, error) {
	if len(b) < udpHeaderLen {
		return UDPDatagram{}, errors.New("pcap: truncated UDP header")
	}
	udpLen := int(binary.BigEndian.Uint16(b[4:]))
	if udpLen < udpHeaderLen || udpLen > len(b) {
		return UDPDatagram{}, errors.New("pcap: bad UDP length")
	}
	return UDPDatagram{
		Src: src, Dst: dst,
		SrcPort: binary.BigEndian.Uint16(b[0:]),
		DstPort: binary.BigEndian.Uint16(b[2:]),
		Payload: b[udpHeaderLen:udpLen],
	}, nil
}

// ipv4Checksum computes the standard Internet checksum over the IPv4
// header (checksum field treated as zero).
func ipv4Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		if i == 10 {
			continue // checksum field itself
		}
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}
