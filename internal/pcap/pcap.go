// Package pcap implements the classic libpcap capture file format
// (the format of the tcpdump traces the §3.1 NTP server operators
// donated to the paper) plus the minimal IPv4/IPv6/UDP codecs needed
// to carry NTP packets. The synthetic trace generator writes real
// pcap files and the analyzer reads them back, so the §3.1 pipeline
// operates on byte-identical input formats to the original study.
package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Magic numbers of the classic format (microsecond resolution).
const (
	magicLE = 0xa1b2c3d4
	// LinkTypeRaw means packets begin directly with the IP header
	// (DLT_RAW, linktype 101).
	LinkTypeRaw = 101
)

// fileHeaderLen and recordHeaderLen are the fixed header sizes.
const (
	fileHeaderLen   = 24
	recordHeaderLen = 16
)

// Packet is one captured record.
type Packet struct {
	// Timestamp is the capture time (microsecond resolution survives
	// the round trip).
	Timestamp time.Time
	// Data is the captured bytes, starting at the IP header.
	Data []byte
	// OrigLen is the original wire length (== len(Data) for our
	// generator, which never truncates).
	OrigLen int
}

// Writer writes a classic pcap file.
type Writer struct {
	w   io.Writer
	buf [recordHeaderLen]byte
}

// NewWriter writes the file header (linktype raw, snaplen 65535) and
// returns a packet writer.
func NewWriter(w io.Writer) (*Writer, error) {
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], magicLE)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone (8:12) and sigfigs (12:16) are zero.
	binary.LittleEndian.PutUint32(hdr[16:], 65535) // snaplen
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeRaw)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: write header: %w", err)
	}
	return &Writer{w: w}, nil
}

// WritePacket appends one record.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	usec := ts.UnixMicro()
	binary.LittleEndian.PutUint32(w.buf[0:], uint32(usec/1e6))
	binary.LittleEndian.PutUint32(w.buf[4:], uint32(usec%1e6))
	binary.LittleEndian.PutUint32(w.buf[8:], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.buf[12:], uint32(len(data)))
	if _, err := w.w.Write(w.buf[:]); err != nil {
		return fmt.Errorf("pcap: write record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: write record data: %w", err)
	}
	return nil
}

// Errors returned by the reader.
var (
	ErrBadMagic = errors.New("pcap: unrecognized magic number")
	ErrBadLink  = errors.New("pcap: unsupported link type")
)

// Reader reads a classic pcap file.
type Reader struct {
	r        io.Reader
	LinkType uint32
}

// NewReader validates the file header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fileHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pcap: read header: %w", err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magicLE {
		return nil, ErrBadMagic
	}
	lt := binary.LittleEndian.Uint32(hdr[20:])
	if lt != LinkTypeRaw {
		return nil, fmt.Errorf("%w: %d", ErrBadLink, lt)
	}
	return &Reader{r: r, LinkType: lt}, nil
}

// ReadPacket reads the next record; io.EOF marks a clean end.
func (r *Reader) ReadPacket() (Packet, error) {
	var hdr [recordHeaderLen]byte
	if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
		if err == io.EOF {
			return Packet{}, io.EOF
		}
		return Packet{}, fmt.Errorf("pcap: read record header: %w", err)
	}
	sec := binary.LittleEndian.Uint32(hdr[0:])
	usec := binary.LittleEndian.Uint32(hdr[4:])
	incl := binary.LittleEndian.Uint32(hdr[8:])
	orig := binary.LittleEndian.Uint32(hdr[12:])
	if incl > 1<<20 {
		return Packet{}, fmt.Errorf("pcap: implausible record length %d", incl)
	}
	data := make([]byte, incl)
	if _, err := io.ReadFull(r.r, data); err != nil {
		return Packet{}, fmt.Errorf("pcap: read record data: %w", err)
	}
	return Packet{
		Timestamp: time.Unix(int64(sec), int64(usec)*1000).UTC(),
		Data:      data,
		OrigLen:   int(orig),
	}, nil
}
