package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Server", "Clients", "RMSE")
	tb.AddRow("AG1", 639704, 13.081)
	tb.AddRow("SU1", 21101, 9.2)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Server") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "13.08") {
		t.Errorf("float not formatted to 2 decimals: %q", lines[2])
	}
	// All lines equal width (aligned columns).
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("separator width %d != header width %d", len(lines[1]), len(lines[0]))
	}
}

func TestPlotRendersMarkersAndAxis(t *testing.T) {
	p := NewPlot("offsets", "time (s)", "offset (ms)")
	p.Width, p.Height = 40, 10
	p.Add(Series{Name: "sntp", Marker: '+', X: []float64{0, 10, 20}, Y: []float64{-50, 0, 120}})
	p.Add(Series{Name: "mntp", Marker: 'o', X: []float64{0, 10, 20}, Y: []float64{5, 6, 7}})
	out := p.String()
	if !strings.Contains(out, "offsets") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "+") || !strings.Contains(out, "o") {
		t.Error("markers missing")
	}
	if !strings.Contains(out, "+=sntp") || !strings.Contains(out, "o=mntp") {
		t.Error("legend missing")
	}
	// y=0 axis line should appear since range spans zero.
	if !strings.Contains(out, "----") {
		t.Error("zero axis missing")
	}
}

func TestPlotEmptyData(t *testing.T) {
	p := NewPlot("empty", "x", "y")
	if out := p.String(); !strings.Contains(out, "(no data)") {
		t.Errorf("empty plot = %q", out)
	}
}

func TestPlotHandlesNaN(t *testing.T) {
	p := NewPlot("nan", "x", "y")
	p.Add(Series{Name: "s", Marker: '*', X: []float64{0, math.NaN(), 2}, Y: []float64{1, 2, math.NaN()}})
	out := p.String()
	if !strings.Contains(out, "*") {
		t.Error("valid point not plotted")
	}
}

func TestPlotConstantSeries(t *testing.T) {
	p := NewPlot("const", "x", "y")
	p.Add(Series{Name: "c", Marker: '#', X: []float64{1, 2, 3}, Y: []float64{5, 5, 5}})
	out := p.String()
	if !strings.Contains(out, "#") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}

func TestCDFPlot(t *testing.T) {
	out := CDFPlot("min OWD", "ms", []Series{
		{Name: "SP22", Marker: 'm', X: []float64{100, 300, 500}, Y: []float64{0.25, 0.5, 1}},
	})
	if !strings.Contains(out, "P[X <= x]") || !strings.Contains(out, "m=SP22") {
		t.Errorf("cdf plot:\n%s", out)
	}
}

func TestBoxPlot(t *testing.T) {
	rows := []BoxRow{
		{Label: "SP 1", Min: 10, P25: 30, Median: 40, P75: 55, Max: 90},
		{Label: "SP 22", Min: 100, P25: 300, Median: 550, P75: 700, Max: 950},
	}
	out := BoxPlot("min OWDs", "ms", rows, 60)
	if !strings.Contains(out, "SP 1") || !strings.Contains(out, "SP 22") {
		t.Fatalf("labels missing:\n%s", out)
	}
	if !strings.Contains(out, "M") || !strings.Contains(out, "=") {
		t.Errorf("median/box markers missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Mobile row's median marker must sit right of the cloud row's.
	var cloudM, mobileM int
	for _, l := range lines {
		if strings.HasPrefix(l, "SP 1 ") {
			cloudM = strings.IndexRune(l, 'M')
		}
		if strings.HasPrefix(l, "SP 22") {
			mobileM = strings.IndexRune(l, 'M')
		}
	}
	if mobileM <= cloudM {
		t.Errorf("mobile median column %d not right of cloud %d:\n%s", mobileM, cloudM, out)
	}
}

func TestBoxPlotEmpty(t *testing.T) {
	if out := BoxPlot("t", "x", nil, 40); !strings.Contains(out, "(no data)") {
		t.Errorf("empty box plot = %q", out)
	}
}

func TestBoxPlotDegenerateRange(t *testing.T) {
	rows := []BoxRow{{Label: "a", Min: 5, P25: 5, Median: 5, P75: 5, Max: 5}}
	out := BoxPlot("t", "x", rows, 40)
	if !strings.Contains(out, "M") {
		t.Errorf("degenerate row missing marker:\n%s", out)
	}
}
