// Package report renders the reproduction's tables and figures as
// text: aligned tables for Table 1/2-style output and ASCII scatter
// and CDF plots for the figures, suitable for terminals and for
// inclusion in EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(row []string) {
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(row) {
				cell = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is one plotted dataset.
type Series struct {
	Name   string
	Marker rune
	X, Y   []float64
}

// Plot renders scatter series on a shared grid. X and Y ranges span
// all series; a y=0 axis line is drawn when zero is in range.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Width  int // plot area columns (default 72)
	Height int // plot area rows (default 20)
	series []Series
}

// NewPlot creates a plot.
func NewPlot(title, xlabel, ylabel string) *Plot {
	return &Plot{Title: title, XLabel: xlabel, YLabel: ylabel, Width: 72, Height: 20}
}

// Add appends a series.
func (p *Plot) Add(s Series) { p.series = append(p.series, s) }

// String renders the plot.
func (p *Plot) String() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	n := 0
	for _, s := range p.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
			n++
		}
	}
	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	if n == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]rune, h)
	for i := range grid {
		grid[i] = make([]rune, w)
		for j := range grid[i] {
			grid[i][j] = ' '
		}
	}
	// y=0 axis.
	if minY < 0 && maxY > 0 {
		row := rowOf(0, minY, maxY, h)
		for j := 0; j < w; j++ {
			grid[row][j] = '-'
		}
	}
	for _, s := range p.series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(w-1))
			row := rowOf(s.Y[i], minY, maxY, h)
			grid[row][col] = s.Marker
		}
	}

	yFmt := func(v float64) string { return fmt.Sprintf("%9.1f", v) }
	for i, row := range grid {
		label := strings.Repeat(" ", 9)
		switch i {
		case 0:
			label = yFmt(maxY)
		case h - 1:
			label = yFmt(minY)
		case h / 2:
			label = yFmt((maxY + minY) / 2)
		}
		fmt.Fprintf(&b, "%s |%s|\n", label, string(row))
	}
	fmt.Fprintf(&b, "%s %s -> %s  (%s)\n",
		strings.Repeat(" ", 9), fmtNum(minX), fmtNum(maxX), p.XLabel)
	if p.YLabel != "" {
		fmt.Fprintf(&b, "%s y: %s\n", strings.Repeat(" ", 9), p.YLabel)
	}
	var legend []string
	for _, s := range p.series {
		legend = append(legend, fmt.Sprintf("%c=%s", s.Marker, s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", 9), strings.Join(legend, "  "))
	}
	return b.String()
}

func rowOf(y, minY, maxY float64, h int) int {
	r := int((maxY - y) / (maxY - minY) * float64(h-1))
	if r < 0 {
		r = 0
	}
	if r >= h {
		r = h - 1
	}
	return r
}

func fmtNum(v float64) string {
	if math.Abs(v) >= 1000 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.2f", v)
}

// CDFPlot renders one or more empirical CDFs (x vs cumulative
// probability 0..1).
func CDFPlot(title, xlabel string, series []Series) string {
	p := NewPlot(title, xlabel, "P[X <= x]")
	p.Height = 16
	for _, s := range series {
		p.Add(s)
	}
	return p.String()
}

// BoxRow is one category of a box plot: the five-number summary of a
// distribution.
type BoxRow struct {
	Label                      string
	Min, P25, Median, P75, Max float64
}

// BoxPlot renders horizontal ASCII box-and-whisker rows on a shared
// scale — the form of the paper's Figure 1 (left): one row per
// service provider, whiskers at min/max, box from P25 to P75, median
// marked. Returns "(no data)" under the title when rows are empty.
func BoxPlot(title, xlabel string, rows []BoxRow, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(rows) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if width <= 10 {
		width = 60
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	labelW := 0
	for _, r := range rows {
		lo = math.Min(lo, r.Min)
		hi = math.Max(hi, r.Max)
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	col := func(v float64) int {
		c := int((v - lo) / (hi - lo) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	for _, r := range rows {
		line := make([]rune, width)
		for i := range line {
			line[i] = ' '
		}
		// Whiskers.
		for i := col(r.Min); i <= col(r.Max); i++ {
			line[i] = '-'
		}
		// Box.
		for i := col(r.P25); i <= col(r.P75); i++ {
			line[i] = '='
		}
		line[col(r.Min)] = '|'
		line[col(r.Max)] = '|'
		line[col(r.Median)] = 'M'
		fmt.Fprintf(&b, "%-*s |%s|\n", labelW, r.Label, string(line))
	}
	fmt.Fprintf(&b, "%-*s  %s -> %s  (%s)\n", labelW, "",
		fmtNum(lo), fmtNum(hi), xlabel)
	return b.String()
}
