package ntske

import (
	"context"
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mntp/internal/nts"
)

// connDeadline bounds one KE conversation; NTS-KE is a single
// request/response, so a slow peer is a stuck or hostile one.
const connDeadline = 10 * time.Second

// Server is an NTS-KE server: it terminates TLS with ALPN ntske/1,
// negotiates NTPv4 + AES-SIV-CMAC-256, exports the association keys
// from each connection's TLS secrets and hands out cookies minted by
// the shared key ring — the same ring the UDP serving path verifies
// against. All fields must be set before Listen.
type Server struct {
	// Ring seals the cookies; it must be the ring the NTP server
	// verifies with.
	Ring *nts.KeyRing
	// TLSConfig must carry the server certificate. ALPN and the TLS
	// 1.3 floor (required for key export) are enforced on a clone.
	TLSConfig *tls.Config
	// NTPHost, if non-empty, is advertised in a Server Negotiation
	// record; otherwise clients use the KE host.
	NTPHost string
	// NTPPort, if non-zero, is advertised in a Port Negotiation
	// record; otherwise clients use the default NTP port.
	NTPPort int
	// Cookies is the number handed out per exchange (default
	// nts.DefaultJarCapacity).
	Cookies int
	// RotateEvery, if positive, rotates the key ring on a timer for
	// the lifetime of the server.
	RotateEvery time.Duration
	// StatePath and StateKey, if both set, checkpoint the key ring to
	// StatePath (sealed under StateKey, see nts.KeyRing.Save) after
	// every timed rotation, so a restarted server can restore the ring
	// and keep decrypting the fleet's outstanding cookies. Checkpoint
	// failures never stop serving; they are counted in
	// CheckpointErrors.
	StatePath string
	StateKey  []byte
	// CertRotateEvery, if positive, regenerates the serving
	// certificate on a timer: a fresh self-signed cert (lifetime
	// CertLifetime, hosts CertHosts) is swapped in atomically — new
	// handshakes pick it up, in-flight ones finish under the old one,
	// and the listener never drops. Requires the TLSConfig to have
	// carried static Certificates (the swap path); a caller-provided
	// GetCertificate wins over rotation.
	CertRotateEvery time.Duration
	// CertLifetime is the rotated certificates' validity (default
	// 2×CertRotateEvery, so a client that pinned the previous cert
	// has a full rotation period of overlap).
	CertLifetime time.Duration
	// CertHosts are the rotated certificates' SANs (default the
	// SelfSigned loopback set).
	CertHosts []string
	// OnCertRotate, if non-nil, is called with the PEM of each newly
	// rotated certificate — cmd/ntpserver rewrites its -nts-cert-out
	// file here so late-joining clients can pin the current cert.
	OnCertRotate func(certPEM []byte)

	ln       net.Listener
	wg       sync.WaitGroup
	stopCh   chan struct{}
	cert     atomic.Pointer[tls.Certificate]
	ckptErrs atomic.Uint64

	mu     sync.Mutex
	closed bool
}

// Listen binds addr (":4460" style; empty selects the default port on
// all interfaces) and starts accepting KE connections in the
// background. It returns the bound address, useful with port 0.
func (s *Server) Listen(addr string) (net.Addr, error) {
	if s.Ring == nil {
		return nil, errors.New("ntske: Server.Ring is required")
	}
	if s.TLSConfig == nil || len(s.TLSConfig.Certificates) == 0 && s.TLSConfig.GetCertificate == nil {
		return nil, errors.New("ntske: Server.TLSConfig must carry a certificate")
	}
	if addr == "" {
		addr = ":" + strconv.Itoa(DefaultPort)
	}
	cfg := s.TLSConfig.Clone()
	cfg.NextProtos = []string{ALPN}
	if cfg.MinVersion < tls.VersionTLS13 {
		cfg.MinVersion = tls.VersionTLS13
	}
	if cfg.GetCertificate == nil && len(cfg.Certificates) > 0 {
		// Route certificate selection through the atomic holder so
		// SetCertificate (and the rotate loop) can swap the serving
		// cert under live handshakes without touching the listener.
		first := cfg.Certificates[0]
		s.cert.Store(&first)
		cfg.Certificates = nil
		cfg.GetCertificate = func(*tls.ClientHelloInfo) (*tls.Certificate, error) {
			return s.cert.Load(), nil
		}
	}
	tcp, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = tls.NewListener(tcp, cfg)
	s.stopCh = make(chan struct{})
	s.wg.Add(1)
	go s.acceptLoop()
	if s.RotateEvery > 0 {
		s.wg.Add(1)
		go s.rotateLoop()
	}
	if s.CertRotateEvery > 0 && s.cert.Load() != nil {
		s.wg.Add(1)
		go s.certRotateLoop()
	}
	return tcp.Addr(), nil
}

// SetCertificate atomically replaces the serving certificate: new
// handshakes use it immediately, connections mid-handshake finish
// under the certificate they started with, and the listener never
// drops. It is a no-op on a server whose TLSConfig supplied its own
// GetCertificate callback.
func (s *Server) SetCertificate(cert tls.Certificate) {
	if s.cert.Load() == nil {
		return
	}
	s.cert.Store(&cert)
}

// Checkpoint persists the key ring to StatePath now (see
// nts.KeyRing.Save); it is the explicit flush for shutdown paths,
// complementing the rotate loop's automatic checkpoints.
func (s *Server) Checkpoint() error {
	if s.StatePath == "" || s.StateKey == nil {
		return nil
	}
	return s.Ring.Save(s.StatePath, s.StateKey)
}

// CheckpointErrors returns the number of failed automatic ring
// checkpoints since Listen.
func (s *Server) CheckpointErrors() uint64 { return s.ckptErrs.Load() }

// Shutdown stops accepting new KE connections and waits for in-flight
// exchanges (each already bounded by the per-connection deadline) to
// finish. If ctx expires first it returns ctx.Err() without waiting
// further; the stragglers still terminate on their own deadlines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	err := s.ln.Close()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// Close stops accepting and waits for in-flight exchanges.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stopCh)
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			// Transient accept errors (per-connection TLS failures
			// surface from the handshake, not here): back off briefly.
			time.Sleep(10 * time.Millisecond)
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(conn)
		}()
	}
}

func (s *Server) rotateLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.RotateEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			_ = s.Ring.Rotate()
			// Checkpoint after every rotation: the persisted state is
			// at most one epoch stale, and a restart from it still
			// decrypts every cookie within the retention window.
			if err := s.Checkpoint(); err != nil {
				s.ckptErrs.Add(1)
			}
		}
	}
}

// certRotateLoop regenerates the self-signed serving certificate on a
// timer. Each rotation mints a fresh key pair with lifetime
// CertLifetime (default 2×CertRotateEvery — a rotation period of
// validity overlap for clients pinning the previous cert) and swaps
// it into the holder; generation failures keep the current cert.
func (s *Server) certRotateLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.CertRotateEvery)
	defer t.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-t.C:
			lifetime := s.CertLifetime
			if lifetime <= 0 {
				lifetime = 2 * s.CertRotateEvery
			}
			cert, certPEM, err := SelfSignedFor(time.Now(), lifetime, s.CertHosts...)
			if err != nil {
				continue
			}
			s.SetCertificate(cert)
			if s.OnCertRotate != nil {
				s.OnCertRotate(certPEM)
			}
		}
	}
}

func (s *Server) handleConn(conn net.Conn) {
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(connDeadline))
	tlsConn, ok := conn.(*tls.Conn)
	if !ok {
		return
	}
	if err := tlsConn.Handshake(); err != nil {
		return
	}
	recs, err := readMessage(tlsConn)
	if err != nil {
		s.writeError(tlsConn, errBadRequest)
		return
	}
	if code, ok := validateRequest(recs); !ok {
		s.writeError(tlsConn, code)
		return
	}

	c2s, s2c, err := exportKeys(tlsConn.ConnectionState(), nts.AEADAESSIVCMAC256)
	if err != nil {
		s.writeError(tlsConn, errInternalServer)
		return
	}

	n := s.Cookies
	if n <= 0 {
		n = nts.DefaultJarCapacity
	}
	var msg []byte
	msg = appendUint16Record(msg, recNextProtocol, true, protocolNTPv4)
	msg = appendUint16Record(msg, recAEADAlgorithm, true, nts.AEADAESSIVCMAC256)
	if s.NTPHost != "" {
		msg = appendRecord(msg, recServerNegotiat, true, []byte(s.NTPHost))
	}
	if s.NTPPort != 0 {
		msg = appendUint16Record(msg, recPortNegotiat, true, uint16(s.NTPPort))
	}
	for i := 0; i < n; i++ {
		cookie, err := s.Ring.SealCookie(nts.AEADAESSIVCMAC256, c2s, s2c)
		if err != nil {
			s.writeError(tlsConn, errInternalServer)
			return
		}
		msg = appendRecord(msg, recNewCookie, false, cookie)
	}
	msg = appendRecord(msg, recEndOfMessage, true, nil)
	_, _ = tlsConn.Write(msg)
}

func (s *Server) writeError(conn net.Conn, code uint16) {
	var msg []byte
	msg = appendUint16Record(msg, recError, true, code)
	msg = appendRecord(msg, recEndOfMessage, true, nil)
	_, _ = conn.Write(msg)
}

// validateRequest checks the client's records: NTPv4 must be offered,
// AES-SIV-CMAC-256 must be among the offered AEADs, and any
// unrecognized critical record aborts.
func validateRequest(recs []record) (errCode uint16, ok bool) {
	sawProto, sawAEAD := false, false
	for _, r := range recs {
		switch r.Type {
		case recNextProtocol:
			for b := r.Body; len(b) >= 2; b = b[2:] {
				if binary.BigEndian.Uint16(b) == protocolNTPv4 {
					sawProto = true
				}
			}
		case recAEADAlgorithm:
			for b := r.Body; len(b) >= 2; b = b[2:] {
				if binary.BigEndian.Uint16(b) == nts.AEADAESSIVCMAC256 {
					sawAEAD = true
				}
			}
		case recWarning, recServerNegotiat, recPortNegotiat:
			// Tolerated in requests; we ignore them.
		default:
			if r.Critical {
				return errUnrecognizedCritical, false
			}
		}
	}
	if !sawProto || !sawAEAD {
		return errBadRequest, false
	}
	return 0, true
}

// exportKeys derives the c2s and s2c association keys from the TLS
// exporter interface (RFC 8915 §4.3): label
// "EXPORTER-network-time-security", context protocol(2) || aead(2) ||
// direction(1).
func exportKeys(cs tls.ConnectionState, aeadID uint16) (c2s, s2c []byte, err error) {
	ctx := make([]byte, 5)
	binary.BigEndian.PutUint16(ctx[0:2], protocolNTPv4)
	binary.BigEndian.PutUint16(ctx[2:4], aeadID)
	ctx[4] = 0x00
	c2s, err = cs.ExportKeyingMaterial("EXPORTER-network-time-security", ctx, nts.SIVKeyLen)
	if err != nil {
		return nil, nil, fmt.Errorf("ntske: exporting c2s key: %w", err)
	}
	ctx[4] = 0x01
	s2c, err = cs.ExportKeyingMaterial("EXPORTER-network-time-security", ctx, nts.SIVKeyLen)
	if err != nil {
		return nil, nil, fmt.Errorf("ntske: exporting s2c key: %w", err)
	}
	return c2s, s2c, nil
}
