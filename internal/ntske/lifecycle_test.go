package ntske

import (
	"context"
	"crypto/tls"
	"crypto/x509"
	"errors"
	"net"
	"path/filepath"
	"testing"
	"time"

	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
)

// peekCert fetches the certificate a live KE server presents, without
// completing a KE exchange: one TLS handshake, no records.
func peekCert(t *testing.T, addr string) *x509.Certificate {
	t.Helper()
	conn, err := tls.Dial("tcp", addr, &tls.Config{
		InsecureSkipVerify: true,
		NextProtos:         []string{ALPN},
	})
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	defer conn.Close()
	certs := conn.ConnectionState().PeerCertificates
	if len(certs) == 0 {
		t.Fatal("no peer certificate")
	}
	return certs[0]
}

// TestCertRotateLoop covers the self-signed rotation path: the served
// certificate changes across a rotation period, its expiry rolls
// forward, and a client key-exchanges successfully both before and
// after the swap — the listener never drops.
func TestCertRotateLoop(t *testing.T) {
	ring, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	cert, _, err := SelfSignedFor(time.Now(), 30*time.Minute, "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	rotated := make(chan []byte, 16)
	srv := &Server{
		Ring:            ring,
		TLSConfig:       &tls.Config{Certificates: []tls.Certificate{cert}},
		CertRotateEvery: 100 * time.Millisecond,
		CertLifetime:    time.Hour,
		CertHosts:       []string{"127.0.0.1"},
		OnCertRotate:    func(pem []byte) { rotated <- pem },
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := bound.String()

	// A rotation-agnostic client (no pinning — rotation regenerates
	// the key pair, so a pinned old PEM cannot verify the new cert;
	// real deployments re-read the published PEM, which is what
	// OnCertRotate exists for).
	clientCfg := &tls.Config{InsecureSkipVerify: true}

	if _, err := KeyExchange(addr, clientCfg, 5*time.Second); err != nil {
		t.Fatalf("KE before rotation: %v", err)
	}
	before := peekCert(t, addr)

	var pem []byte
	select {
	case pem = <-rotated:
	case <-time.After(5 * time.Second):
		t.Fatal("no cert rotation within 5s")
	}
	if len(pem) == 0 {
		t.Fatal("OnCertRotate got empty PEM")
	}

	after := peekCert(t, addr)
	if after.SerialNumber.Cmp(before.SerialNumber) == 0 {
		t.Error("certificate serial unchanged across rotation")
	}
	if !after.NotAfter.After(before.NotAfter) {
		// CertLifetime (1h) from a later notBefore vs the initial
		// 30-minute cert: expiry must roll forward.
		t.Errorf("expiry did not roll forward: %v -> %v", before.NotAfter, after.NotAfter)
	}
	// The published PEM pins the current cert.
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pem) {
		t.Fatal("rotated PEM does not parse")
	}
	if _, err := KeyExchange(addr, &tls.Config{RootCAs: pool}, 5*time.Second); err != nil {
		t.Fatalf("KE pinning the rotated cert: %v", err)
	}
	// Cookies minted across the cert rotation still come from the
	// same ring: the client continues, no re-KE storm.
	sess, err := KeyExchange(addr, clientCfg, 5*time.Second)
	if err != nil {
		t.Fatalf("KE after rotation: %v", err)
	}
	if sess.CookieCount() == 0 {
		t.Fatal("no cookies after rotation")
	}
}

// TestSetCertificateSwapsLive: an explicit SetCertificate (the SIGHUP
// cert-reload path) changes what new handshakes see without a listen
// restart.
func TestSetCertificateSwapsLive(t *testing.T) {
	ring, err := nts.NewKeyRing(1)
	if err != nil {
		t.Fatal(err)
	}
	cert, _, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Ring: ring, TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}}}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	before := peekCert(t, bound.String())
	next, _, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv.SetCertificate(next)
	after := peekCert(t, bound.String())
	if after.SerialNumber.Cmp(before.SerialNumber) == 0 {
		t.Error("SetCertificate did not change the served certificate")
	}
}

// TestRotateLoopCheckpointsRing: with StatePath/StateKey set, every
// timed ring rotation leaves a state file a fresh server can restore
// — the cookies minted by this server remain decryptable after a
// restart from that checkpoint.
func TestRotateLoopCheckpointsRing(t *testing.T) {
	ring, err := nts.NewKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	cert, certPEM, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	stateKey := make([]byte, nts.SIVKeyLen)
	for i := range stateKey {
		stateKey[i] = byte(i)
	}
	statePath := filepath.Join(t.TempDir(), "ring.state")
	srv := &Server{
		Ring:        ring,
		TLSConfig:   &tls.Config{Certificates: []tls.Certificate{cert}},
		RotateEvery: 50 * time.Millisecond,
		StatePath:   statePath,
		StateKey:    stateKey,
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	pool := x509.NewCertPool()
	pool.AppendCertsFromPEM(certPEM)
	sess, err := KeyExchange(bound.String(), &tls.Config{RootCAs: pool}, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	start := ring.Epoch()
	deadline := time.Now().Add(5 * time.Second)
	for ring.Epoch() == start && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if ring.Epoch() == start {
		t.Fatal("ring never rotated")
	}
	// Give the checkpoint following the rotation a moment to land.
	var restored *nts.KeyRing
	for time.Now().Before(deadline) {
		restored, err = nts.LoadKeyRing(statePath, stateKey)
		if err == nil && restored.Epoch() >= start {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("no restorable checkpoint: %v", err)
	}
	if srv.CheckpointErrors() != 0 {
		t.Errorf("checkpoint errors = %d", srv.CheckpointErrors())
	}
	// The restored ring verifies a request protected with a cookie the
	// live server handed out — the restart would not NAK this client.
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(7<<32))
	if _, err := sess.ProtectRequest(req); err != nil {
		t.Fatal(err)
	}
	p, err := ntppkt.Decode(req.Encode(nil))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nts.VerifyRequest(restored, p); err != nil {
		t.Fatalf("restored ring rejects live cookie: %v", err)
	}
}

// TestKEShutdownDrainsHandshake: Shutdown waits for an accepted
// exchange to finish before returning, and refuses new connections
// once called.
func TestKEShutdownDrainsHandshake(t *testing.T) {
	ring, err := nts.NewKeyRing(1)
	if err != nil {
		t.Fatal(err)
	}
	cert, certPEM, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Ring: ring, TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}}}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := bound.String()
	pool := x509.NewCertPool()
	pool.AppendCertsFromPEM(certPEM)

	// Hold a raw TCP connection open (accepted, handshake not started)
	// so the drain has something in flight, then complete a KE while
	// Shutdown is pending.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	keDone := make(chan error, 1)
	go func() {
		_, kerr := KeyExchange(addr, &tls.Config{RootCAs: pool}, 5*time.Second)
		keDone <- kerr
	}()
	time.Sleep(50 * time.Millisecond)

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutDone <- srv.Shutdown(ctx)
	}()
	if err := <-keDone; err != nil {
		t.Fatalf("in-flight KE failed during drain: %v", err)
	}
	raw.Close() // release the held connection; the drain completes
	if err := <-shutDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// New connections are refused after Shutdown.
	if _, err := KeyExchange(addr, &tls.Config{RootCAs: pool}, time.Second); err == nil {
		t.Fatal("KE succeeded after Shutdown")
	}
	if err := srv.Close(); err != nil {
		t.Errorf("Close after Shutdown: %v", err)
	}
}

// TestKEShutdownDeadline: a connection that never finishes its
// exchange forces the deadline path — Shutdown returns ctx.Err()
// instead of hanging.
func TestKEShutdownDeadline(t *testing.T) {
	ring, err := nts.NewKeyRing(1)
	if err != nil {
		t.Fatal(err)
	}
	cert, _, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Ring: ring, TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}}}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := net.Dial("tcp", bound.String())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	time.Sleep(50 * time.Millisecond) // let the accept land

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}
