package ntske

import (
	"crypto/tls"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strconv"
	"time"

	"mntp/internal/nts"
)

// DefaultNTPPort is used when the server sends no Port Negotiation
// record.
const DefaultNTPPort = 123

// KeyExchange runs one NTS-KE exchange against keAddr (host or
// host:port; the port defaults to 4460) and returns a ready client
// session: negotiated AEAD, exported keys, initial cookie jar, and
// the NTP endpoint to use. tlsCfg may be nil for system roots; ALPN
// and the TLS 1.3 floor are set on a clone.
func KeyExchange(keAddr string, tlsCfg *tls.Config, timeout time.Duration) (*nts.Session, error) {
	host, port, err := net.SplitHostPort(keAddr)
	if err != nil {
		host, port = keAddr, strconv.Itoa(DefaultPort)
	}
	if timeout <= 0 {
		timeout = connDeadline
	}
	if tlsCfg == nil {
		tlsCfg = &tls.Config{}
	}
	cfg := tlsCfg.Clone()
	cfg.NextProtos = []string{ALPN}
	if cfg.MinVersion < tls.VersionTLS13 {
		cfg.MinVersion = tls.VersionTLS13
	}
	if cfg.ServerName == "" {
		cfg.ServerName = host
	}

	dialer := &net.Dialer{Timeout: timeout}
	conn, err := tls.DialWithDialer(dialer, "tcp", net.JoinHostPort(host, port), cfg)
	if err != nil {
		return nil, fmt.Errorf("ntske: dialing %s: %w", keAddr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(timeout))
	if proto := conn.ConnectionState().NegotiatedProtocol; proto != ALPN {
		return nil, fmt.Errorf("ntske: server negotiated ALPN %q, want %q", proto, ALPN)
	}

	var msg []byte
	msg = appendUint16Record(msg, recNextProtocol, true, protocolNTPv4)
	msg = appendUint16Record(msg, recAEADAlgorithm, true, nts.AEADAESSIVCMAC256)
	msg = appendRecord(msg, recEndOfMessage, true, nil)
	if _, err := conn.Write(msg); err != nil {
		return nil, fmt.Errorf("ntske: writing request: %w", err)
	}

	recs, err := readMessage(conn)
	if err != nil {
		return nil, err
	}
	ntpHost, ntpPort := host, DefaultNTPPort
	var cookies [][]byte
	protoOK, aeadOK := false, false
	for _, r := range recs {
		switch r.Type {
		case recError:
			if len(r.Body) >= 2 {
				return nil, fmt.Errorf("ntske: server error code %d", binary.BigEndian.Uint16(r.Body))
			}
			return nil, errors.New("ntske: server error")
		case recWarning:
			// Non-fatal by definition; ignore.
		case recNextProtocol:
			protoOK = len(r.Body) >= 2 && binary.BigEndian.Uint16(r.Body) == protocolNTPv4
		case recAEADAlgorithm:
			aeadOK = len(r.Body) >= 2 && binary.BigEndian.Uint16(r.Body) == nts.AEADAESSIVCMAC256
		case recNewCookie:
			cookies = append(cookies, r.Body)
		case recServerNegotiat:
			if len(r.Body) > 0 {
				ntpHost = string(r.Body)
			}
		case recPortNegotiat:
			if len(r.Body) >= 2 {
				ntpPort = int(binary.BigEndian.Uint16(r.Body))
			}
		default:
			if r.Critical {
				return nil, fmt.Errorf("ntske: unrecognized critical record type %d", r.Type)
			}
		}
	}
	if !protoOK || !aeadOK {
		return nil, errors.New("ntske: server did not confirm NTPv4 + AES-SIV-CMAC-256")
	}
	if len(cookies) == 0 {
		return nil, errors.New("ntske: server sent no cookies")
	}

	c2s, s2c, err := exportKeys(conn.ConnectionState(), nts.AEADAESSIVCMAC256)
	if err != nil {
		return nil, err
	}
	sess := &nts.Session{
		NTPServer: net.JoinHostPort(ntpHost, strconv.Itoa(ntpPort)),
		AEAD:      nts.AEADAESSIVCMAC256,
		C2S:       c2s,
		S2C:       s2c,
	}
	sess.AddCookies(cookies)
	return sess, nil
}
