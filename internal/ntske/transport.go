package ntske

import (
	"crypto/tls"
	"errors"
	"fmt"
	"sync"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/nts"
)

// Transport decorates an exchange.Transport with NTS protection, the
// same way FaultTransport decorates one with fault injection. The
// server string passed to Exchange is the NTS-KE address; the first
// exchange per server runs key establishment, caches the session, and
// routes the NTP traffic to the endpoint KE negotiated. Every request
// is protected (unique ID, cookie, placeholders, authenticator) and
// every reply verified before it reaches the synchronization logic.
//
// Recovery is built in: an NTS NAK (or an exhausted cookie jar) drops
// the session and re-runs KE once within the same call, so a key
// rotation beyond the server's ring depth costs one extra round trip
// rather than a failed measurement.
type Transport struct {
	// Inner performs the UDP exchange (typically *ntpnet.Client).
	Inner exchange.Transport
	// TLSConfig is used for KE dials; nil means system roots.
	TLSConfig *tls.Config
	// KETimeout bounds each key-establishment exchange.
	KETimeout time.Duration

	mu       sync.Mutex
	sessions map[string]*nts.Session
}

// Exchange implements exchange.Transport.
func (t *Transport) Exchange(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
	resp, t4, err := t.exchangeOnce(server, req, false)
	if errors.Is(err, nts.ErrNTSNak) || errors.Is(err, nts.ErrJarEmpty) {
		// The session is stale (server rotated past its ring or the
		// jar ran dry): re-establish and retry once.
		resp, t4, err = t.exchangeOnce(server, req, true)
	}
	return resp, t4, err
}

func (t *Transport) exchangeOnce(server string, req *ntppkt.Packet, fresh bool) (*ntppkt.Packet, time.Time, error) {
	sess, err := t.session(server, fresh)
	if err != nil {
		return nil, time.Time{}, err
	}
	// Strip any NTS fields from a previous attempt before
	// re-protecting the same request packet.
	req.Ext = req.Ext[:0]
	st, err := sess.ProtectRequest(req)
	if err != nil {
		if errors.Is(err, nts.ErrJarEmpty) {
			t.drop(server, sess)
		}
		return nil, time.Time{}, err
	}
	resp, t4, err := t.Inner.Exchange(sess.NTPServer, req)
	if err != nil {
		return nil, time.Time{}, err
	}
	if err := sess.VerifyReply(resp, st); err != nil {
		if errors.Is(err, nts.ErrNTSNak) {
			t.drop(server, sess)
			return nil, time.Time{}, err
		}
		return nil, time.Time{}, fmt.Errorf("nts: rejecting reply from %s: %w", sess.NTPServer, err)
	}
	return resp, t4, nil
}

// session returns the cached session for server, running KE when none
// exists or fresh forces a new one.
func (t *Transport) session(server string, fresh bool) (*nts.Session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sessions == nil {
		t.sessions = make(map[string]*nts.Session)
	}
	if sess, ok := t.sessions[server]; ok && !fresh {
		return sess, nil
	}
	sess, err := KeyExchange(server, t.TLSConfig, t.KETimeout)
	if err != nil {
		return nil, err
	}
	t.sessions[server] = sess
	return sess, nil
}

// drop forgets a session, but only if it is still the cached one — a
// concurrent caller may already have re-established.
func (t *Transport) drop(server string, sess *nts.Session) {
	t.mu.Lock()
	if t.sessions[server] == sess {
		delete(t.sessions, server)
	}
	t.mu.Unlock()
}

// CookieCount reports the jar level of the cached session for server,
// 0 when none. Used by tests and diagnostics.
func (t *Transport) CookieCount(server string) int {
	t.mu.Lock()
	sess := t.sessions[server]
	t.mu.Unlock()
	if sess == nil {
		return 0
	}
	return sess.CookieCount()
}
