package ntske

import (
	"bytes"
	"crypto/tls"
	"crypto/x509"
	"testing"
	"time"

	"mntp/internal/exchange"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
)

// testKE starts a loopback KE server over a fresh ring and returns
// its address plus a client TLS config trusting its self-signed cert.
func testKE(t *testing.T, ring *nts.KeyRing, ntpPort int) (addr string, clientCfg *tls.Config) {
	t.Helper()
	cert, certPEM, err := SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		t.Fatalf("SelfSigned: %v", err)
	}
	srv := &Server{
		Ring:      ring,
		TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}},
		NTPPort:   ntpPort,
	}
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	t.Cleanup(func() { srv.Close() })

	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		t.Fatal("AppendCertsFromPEM failed")
	}
	return bound.String(), &tls.Config{RootCAs: pool}
}

func TestKeyExchangeLoopback(t *testing.T) {
	ring, err := nts.NewKeyRing(2)
	if err != nil {
		t.Fatalf("NewKeyRing: %v", err)
	}
	addr, cfg := testKE(t, ring, 11123)

	sess, err := KeyExchange(addr, cfg, 5*time.Second)
	if err != nil {
		t.Fatalf("KeyExchange: %v", err)
	}
	if sess.AEAD != nts.AEADAESSIVCMAC256 {
		t.Fatalf("AEAD = %d, want %d", sess.AEAD, nts.AEADAESSIVCMAC256)
	}
	if len(sess.C2S) != nts.SIVKeyLen || len(sess.S2C) != nts.SIVKeyLen {
		t.Fatalf("key lengths %d/%d, want %d", len(sess.C2S), len(sess.S2C), nts.SIVKeyLen)
	}
	if bytes.Equal(sess.C2S, sess.S2C) {
		t.Fatal("c2s and s2c keys are identical")
	}
	if got := sess.CookieCount(); got != nts.DefaultJarCapacity {
		t.Fatalf("cookie count = %d, want %d", got, nts.DefaultJarCapacity)
	}
	if sess.NTPServer != "127.0.0.1:11123" {
		t.Fatalf("NTPServer = %q, want 127.0.0.1:11123", sess.NTPServer)
	}

	// The cookies the client holds must verify against the server's
	// ring and carry the very keys the TLS exporter produced.
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(7<<32))
	if _, err := sess.ProtectRequest(req); err != nil {
		t.Fatalf("ProtectRequest: %v", err)
	}
	p, err := ntppkt.Decode(req.Encode(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sreq, err := nts.VerifyRequest(ring, p)
	if err != nil {
		t.Fatalf("VerifyRequest: %v", err)
	}
	if !bytes.Equal(sreq.C2S, sess.C2S) || !bytes.Equal(sreq.S2C, sess.S2C) {
		t.Fatal("cookie keys do not match exported keys")
	}
}

func TestKeyExchangeUntrustedCert(t *testing.T) {
	ring, _ := nts.NewKeyRing(1)
	addr, _ := testKE(t, ring, 123)
	if _, err := KeyExchange(addr, &tls.Config{RootCAs: x509.NewCertPool()}, 5*time.Second); err == nil {
		t.Fatal("KeyExchange succeeded against an untrusted certificate")
	}
}

// fakeNTPServer answers protected requests with the server-side nts
// path, standing in for the UDP server so the transport decorator can
// be tested without sockets.
func fakeNTPServer(ring *nts.KeyRing) exchange.Transport {
	return exchange.TransportFunc(func(server string, req *ntppkt.Packet) (*ntppkt.Packet, time.Time, error) {
		wire := req.Encode(nil)
		p, err := ntppkt.Decode(wire)
		if err != nil {
			return nil, time.Time{}, err
		}
		resp := &ntppkt.Packet{
			Version:  ntppkt.Version4,
			Mode:     ntppkt.ModeServer,
			Origin:   p.Transmit,
			Receive:  p.Transmit + 1,
			Transmit: p.Transmit + 2,
		}
		sreq, err := nts.VerifyRequest(ring, p)
		if err != nil {
			resp.Stratum = ntppkt.StratumKoD
			resp.RefID = ntppkt.KissNTSN
			if uid, _ := p.FindExt(ntppkt.ExtUniqueIdentifier); uid != nil {
				nts.ProtectNAK(uid.Value, resp)
			}
			return resp, time.Now(), nil
		}
		resp.Stratum = 2
		if err := nts.ProtectResponse(ring, sreq, resp); err != nil {
			return nil, time.Time{}, err
		}
		return resp, time.Now(), nil
	})
}

// TestTransportRecoversFromNAK drives the decorator through normal
// exchanges, then rotates the server's ring past its depth so every
// held cookie dies. The next Exchange must absorb the NTS NAK by
// re-running KE within the same call.
func TestTransportRecoversFromNAK(t *testing.T) {
	ring, err := nts.NewKeyRing(1)
	if err != nil {
		t.Fatalf("NewKeyRing: %v", err)
	}
	addr, cfg := testKE(t, ring, 123)
	tr := &Transport{Inner: fakeNTPServer(ring), TLSConfig: cfg}

	for i := 0; i < 3; i++ {
		req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(uint64(i+1)<<32))
		resp, _, err := tr.Exchange(addr, req)
		if err != nil {
			t.Fatalf("exchange %d: %v", i, err)
		}
		if resp.Stratum != 2 {
			t.Fatalf("exchange %d: stratum %d", i, resp.Stratum)
		}
	}
	if got := tr.CookieCount(addr); got != nts.DefaultJarCapacity {
		t.Fatalf("jar = %d before rotation, want %d", got, nts.DefaultJarCapacity)
	}

	// Rotate past ring depth: all outstanding cookies now NAK.
	for i := 0; i < 2; i++ {
		if err := ring.Rotate(); err != nil {
			t.Fatalf("Rotate: %v", err)
		}
	}
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(9<<32))
	resp, _, err := tr.Exchange(addr, req)
	if err != nil {
		t.Fatalf("exchange after rotation: %v", err)
	}
	if resp.Stratum != 2 {
		t.Fatalf("stratum after recovery = %d, want 2", resp.Stratum)
	}
	if got := tr.CookieCount(addr); got == 0 {
		t.Fatal("no fresh session after NAK recovery")
	}
}
