package ntske

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"math/big"
	"net"
	"os"
	"time"
)

// SelfSigned generates an ECDSA P-256 certificate for localhost
// serving (hosts defaults to localhost plus the loopback addresses)
// and returns it ready for a tls.Config along with the PEM-encoded
// certificate, which clients can load as their trust root. The
// certificate is valid for a year; SelfSignedFor controls the
// lifetime (the cert rotate loop uses short ones).
func SelfSigned(notBefore time.Time, hosts ...string) (tls.Certificate, []byte, error) {
	return SelfSignedFor(notBefore, 365*24*time.Hour, hosts...)
}

// SelfSignedFor is SelfSigned with an explicit validity lifetime,
// measured from notBefore (with an hour of backdating for clock skew).
func SelfSignedFor(notBefore time.Time, lifetime time.Duration, hosts ...string) (tls.Certificate, []byte, error) {
	if len(hosts) == 0 {
		hosts = []string{"localhost", "127.0.0.1", "::1"}
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "mntp self-signed"},
		NotBefore:             notBefore.Add(-time.Hour),
		NotAfter:              notBefore.Add(lifetime),
		KeyUsage:              x509.KeyUsageDigitalSignature,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		BasicConstraintsValid: true,
	}
	for _, h := range hosts {
		if ip := net.ParseIP(h); ip != nil {
			tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
		} else {
			tmpl.DNSNames = append(tmpl.DNSNames, h)
		}
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	cert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return tls.Certificate{}, nil, err
	}
	return cert, certPEM, nil
}

// RootPool builds a certificate pool from a PEM file, for clients
// pinning a self-signed server certificate via -nts-ca.
func RootPool(pemPath string) (*x509.CertPool, error) {
	pemBytes, err := os.ReadFile(pemPath)
	if err != nil {
		return nil, err
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(pemBytes) {
		return nil, os.ErrInvalid
	}
	return pool, nil
}
