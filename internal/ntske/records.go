// Package ntske implements the NTS Key Establishment protocol of
// RFC 8915 §4: a TLS 1.3 session with ALPN "ntske/1" over which
// client and server negotiate the AEAD algorithm, export the
// association keys from the TLS master secret, and transfer the
// initial supply of cookies. The output of one exchange is an
// nts.Session ready to protect NTP packets.
//
// The package also provides the client-side exchange.Transport
// decorator that makes any existing transport NTS-authenticated, and
// a self-signed certificate helper for tests and loopback serving.
package ntske

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// NTS-KE record types (RFC 8915 §4.1). The high bit of the type word
// marks the record critical: an unrecognized critical record aborts
// the exchange.
const (
	recEndOfMessage   uint16 = 0
	recNextProtocol   uint16 = 1
	recError          uint16 = 2
	recWarning        uint16 = 3
	recAEADAlgorithm  uint16 = 4
	recNewCookie      uint16 = 5
	recServerNegotiat uint16 = 6
	recPortNegotiat   uint16 = 7

	criticalBit uint16 = 0x8000
)

// NTS-KE error codes (RFC 8915 §4.1.3).
const (
	errUnrecognizedCritical uint16 = 0
	errBadRequest           uint16 = 1
	errInternalServer       uint16 = 2
)

// protocolNTPv4 is the only Next Protocol value defined (RFC 8915).
const protocolNTPv4 uint16 = 0

// DefaultPort is the IANA-assigned NTS-KE port.
const DefaultPort = 4460

// ALPN is the application protocol identifier NTS-KE requires.
const ALPN = "ntske/1"

// maxRecordBody bounds a single record; cookies are ~100 bytes and
// server names are short, so anything larger is an attack or a bug.
const maxRecordBody = 4096

// maxRecords bounds one message.
const maxRecords = 128

var errRecordTooLong = errors.New("ntske: record body exceeds limit")

// record is one NTS-KE type-length-value record, critical bit
// stripped from Type.
type record struct {
	Type     uint16
	Critical bool
	Body     []byte
}

func appendRecord(dst []byte, typ uint16, critical bool, body []byte) []byte {
	if critical {
		typ |= criticalBit
	}
	dst = binary.BigEndian.AppendUint16(dst, typ)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(body)))
	return append(dst, body...)
}

func appendUint16Record(dst []byte, typ uint16, critical bool, v uint16) []byte {
	var body [2]byte
	binary.BigEndian.PutUint16(body[:], v)
	return appendRecord(dst, typ, critical, body[:])
}

// readMessage reads records from r until End of Message. It enforces
// the size bounds but leaves semantic validation to the caller.
func readMessage(r io.Reader) ([]record, error) {
	var out []record
	var hdr [4]byte
	for {
		if len(out) == maxRecords {
			return nil, errors.New("ntske: too many records in message")
		}
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("ntske: reading record header: %w", err)
		}
		typ := binary.BigEndian.Uint16(hdr[0:2])
		bodyLen := int(binary.BigEndian.Uint16(hdr[2:4]))
		if bodyLen > maxRecordBody {
			return nil, errRecordTooLong
		}
		rec := record{
			Type:     typ &^ criticalBit,
			Critical: typ&criticalBit != 0,
			Body:     make([]byte, bodyLen),
		}
		if _, err := io.ReadFull(r, rec.Body); err != nil {
			return nil, fmt.Errorf("ntske: reading record body: %w", err)
		}
		if rec.Type == recEndOfMessage {
			if bodyLen != 0 || !rec.Critical {
				return nil, errors.New("ntske: malformed end-of-message record")
			}
			return out, nil
		}
		out = append(out, rec)
	}
}
