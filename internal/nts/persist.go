package nts

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Keyring state file layout (all integers big-endian):
//
//	magic   (8)  "MNTPNTSR"
//	version (2)  stateVersion
//	sealed       sivSeal(stateKey, payload, magic||version):
//	    siv tag (16)
//	    ct of payload:
//	        next  (4)  — the ring's next epoch counter
//	        depth (2)
//	        count (2)
//	        count × (epoch (4) || master key (SIVKeyLen))
//
// The payload — every cookie-sealing master key the server holds — is
// sealed under a separate long-lived state key with the plaintext
// header as associated data, so the file on disk is useless without
// the state key and any header tampering fails authentication. A
// server that persists its ring across a restart keeps decrypting the
// fleet's outstanding cookies, which is the whole point: no restart
// may convert itself into a fleet-wide NTS NAK storm and TLS re-KE
// flash crowd.
const (
	stateMagic   = "MNTPNTSR"
	stateVersion = 1
)

var (
	// ErrStateFormat is returned for state files that are truncated,
	// corrupted, or fail authentication under the given state key.
	ErrStateFormat = errors.New("nts: malformed or corrupted keyring state")
	// ErrStateVersion is returned for state files written by an
	// incompatible format version.
	ErrStateVersion = errors.New("nts: unsupported keyring state version")
)

// Save atomically persists the ring's full epoch→key map, sealed
// under stateKey, using the driftfile idiom: unique temp file in the
// target directory, fsync before rename, rename over the target. The
// file is created 0600 — it holds key material (sealed, but defense
// in depth). Safe to call concurrently with Rotate and cookie
// traffic; it snapshots the ring under its read lock.
func (r *KeyRing) Save(path string, stateKey []byte) error {
	if len(stateKey) != SIVKeyLen {
		return fmt.Errorf("nts: state key must be %d bytes", SIVKeyLen)
	}
	r.mu.RLock()
	next, depth := r.next, r.depth
	type entry struct {
		epoch uint32
		key   []byte
	}
	entries := make([]entry, 0, len(r.keys))
	for e, k := range r.keys {
		entries = append(entries, entry{e, append([]byte(nil), k...)})
	}
	r.mu.RUnlock()

	payload := make([]byte, 0, 8+len(entries)*(4+SIVKeyLen))
	payload = binary.BigEndian.AppendUint32(payload, next)
	payload = binary.BigEndian.AppendUint16(payload, uint16(depth))
	payload = binary.BigEndian.AppendUint16(payload, uint16(len(entries)))
	for _, e := range entries {
		payload = binary.BigEndian.AppendUint32(payload, e.epoch)
		payload = append(payload, e.key...)
	}

	header := make([]byte, 0, len(stateMagic)+2)
	header = append(header, stateMagic...)
	header = binary.BigEndian.AppendUint16(header, stateVersion)
	sealed, err := sivSeal(stateKey, payload, header)
	if err != nil {
		return fmt.Errorf("nts: seal keyring state: %w", err)
	}

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("nts: create temp in %s: %w", dir, err)
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(append(header, sealed...)); err != nil {
		return cleanup(fmt.Errorf("nts: write %s: %w", tmp, err))
	}
	if err := f.Chmod(0o600); err != nil {
		return cleanup(fmt.Errorf("nts: chmod %s: %w", tmp, err))
	}
	if err := f.Sync(); err != nil {
		return cleanup(fmt.Errorf("nts: fsync %s: %w", tmp, err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nts: close %s: %w", tmp, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("nts: rename: %w", err)
	}
	return nil
}

// LoadKeyRing reads a keyring state file written by Save. A missing
// file returns (nil, os.ErrNotExist); a truncated, corrupted,
// tampered or wrong-version file returns ErrStateFormat or
// ErrStateVersion — callers that want restart resilience should fall
// back to a fresh ring (see LoadOrNewKeyRing), never serve without
// one.
func LoadKeyRing(path string, stateKey []byte) (*KeyRing, error) {
	if len(stateKey) != SIVKeyLen {
		return nil, fmt.Errorf("nts: state key must be %d bytes", SIVKeyLen)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	headerLen := len(stateMagic) + 2
	if len(data) < headerLen {
		return nil, ErrStateFormat
	}
	if string(data[:len(stateMagic)]) != stateMagic {
		return nil, ErrStateFormat
	}
	if v := binary.BigEndian.Uint16(data[len(stateMagic):headerLen]); v != stateVersion {
		return nil, fmt.Errorf("%w: %d", ErrStateVersion, v)
	}
	payload, err := sivOpen(stateKey, data[headerLen:], data[:headerLen])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrStateFormat, err)
	}
	if len(payload) < 8 {
		return nil, ErrStateFormat
	}
	next := binary.BigEndian.Uint32(payload[0:4])
	depth := int(binary.BigEndian.Uint16(payload[4:6]))
	count := int(binary.BigEndian.Uint16(payload[6:8]))
	if depth < 1 || count < 1 || len(payload) != 8+count*(4+SIVKeyLen) {
		return nil, ErrStateFormat
	}
	r := &KeyRing{depth: depth, next: next, keys: make(map[uint32][]byte, count)}
	off := 8
	for i := 0; i < count; i++ {
		epoch := binary.BigEndian.Uint32(payload[off : off+4])
		if epoch >= next {
			return nil, ErrStateFormat
		}
		r.keys[epoch] = append([]byte(nil), payload[off+4:off+4+SIVKeyLen]...)
		off += 4 + SIVKeyLen
	}
	if _, ok := r.keys[next-1]; !ok {
		// The current epoch's key must be present or SealCookie would
		// seal under a nil master.
		return nil, ErrStateFormat
	}
	return r, nil
}

// LoadOrNewKeyRing restores a persisted ring, falling back to a fresh
// one when the file is missing, unreadable, corrupted or of the wrong
// version — a bad state file must degrade to cold-start behavior (the
// fleet re-KEs), never stop the server. loaded reports whether the
// persisted state was actually used; err carries the fallback's
// reason when loaded is false and a state file existed.
func LoadOrNewKeyRing(path string, stateKey []byte, depth int) (r *KeyRing, loaded bool, err error) {
	r, lerr := LoadKeyRing(path, stateKey)
	if lerr == nil {
		return r, true, nil
	}
	r, nerr := NewKeyRing(depth)
	if nerr != nil {
		return nil, false, nerr
	}
	if errors.Is(lerr, os.ErrNotExist) {
		lerr = nil // first run: silent fresh start
	}
	return r, false, lerr
}

// LoadOrCreateMasterKey reads the state-sealing key from path (a
// single hex line), generating and persisting a fresh one on first
// run. The key file is 0600: unlike the sealed ring state, this key
// is the actual secret.
func LoadOrCreateMasterKey(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err == nil {
		key, derr := hex.DecodeString(strings.TrimSpace(string(data)))
		if derr != nil || len(key) != SIVKeyLen {
			return nil, fmt.Errorf("nts: state key file %s: want %d hex bytes", path, SIVKeyLen)
		}
		return key, nil
	}
	if !os.IsNotExist(err) {
		return nil, fmt.Errorf("nts: read state key %s: %w", path, err)
	}
	key := make([]byte, SIVKeyLen)
	if _, err := rand.Read(key); err != nil {
		return nil, err
	}
	if err := os.WriteFile(path, []byte(hex.EncodeToString(key)+"\n"), 0o600); err != nil {
		return nil, fmt.Errorf("nts: write state key %s: %w", path, err)
	}
	return key, nil
}
