package nts

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"sync"
)

// Cookie wire layout (server-opaque to clients, defined here because
// both minting and opening happen server-side):
//
//	epoch   (4, big-endian)  — selects the master key that sealed it
//	sealed  (100)            — sivSeal(master, plaintext, epoch):
//	    siv tag (16)
//	    ct      (84) of: aeadID(2) || keyLen(2) || c2s(32) || s2c(32) || pad(16)
//
// The 16 bytes of random pad make every cookie ciphertext distinct
// even for identical association keys, so re-supplied cookies are
// unlinkable on the wire. Total 104 bytes — a multiple of 4, so
// cookie extension fields never need implicit padding and packets
// re-encode byte-identically (which the authenticator's AD
// computation relies on).
const (
	CookieLen      = 104
	cookiePlainLen = 2 + 2 + SIVKeyLen + SIVKeyLen + cookiePadLen
	cookiePadLen   = 16
	cookieEpochLen = 4
)

var (
	// ErrCookieEpoch is returned when a cookie references a key epoch
	// that has rotated out of the ring (or never existed).
	ErrCookieEpoch = errors.New("nts: cookie key epoch not in ring")
	// ErrCookieFormat is returned for cookies of the wrong shape.
	ErrCookieFormat = errors.New("nts: malformed cookie")
)

// KeyRing holds the server's cookie-sealing master keys, indexed by a
// monotonically increasing epoch. Rotate mints a fresh master key and
// retires the oldest once more than Depth past epochs are held, so a
// cookie stays decryptable for Depth rotations after it was minted.
type KeyRing struct {
	mu    sync.RWMutex
	depth int
	next  uint32
	keys  map[uint32][]byte
}

// NewKeyRing creates a ring that keeps the current master key plus
// depth retired ones. depth < 1 is clamped to 1.
func NewKeyRing(depth int) (*KeyRing, error) {
	if depth < 1 {
		depth = 1
	}
	r := &KeyRing{depth: depth, keys: make(map[uint32][]byte)}
	if err := r.Rotate(); err != nil {
		return nil, err
	}
	return r, nil
}

// Rotate introduces a new current epoch with a fresh random master
// key and drops epochs older than the retention window.
func (r *KeyRing) Rotate() error {
	key := make([]byte, SIVKeyLen)
	if _, err := rand.Read(key); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	epoch := r.next
	r.next++
	r.keys[epoch] = key
	for e := range r.keys {
		if epoch-e > uint32(r.depth) {
			delete(r.keys, e)
		}
	}
	return nil
}

// Epoch returns the current (most recently rotated) epoch.
func (r *KeyRing) Epoch() uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.next - 1
}

// SealCookie mints a cookie binding the association keys under the
// current epoch's master key.
func (r *KeyRing) SealCookie(aeadID uint16, c2s, s2c []byte) ([]byte, error) {
	if len(c2s) != SIVKeyLen || len(s2c) != SIVKeyLen {
		return nil, errors.New("nts: association keys must be 32 bytes")
	}
	r.mu.RLock()
	epoch := r.next - 1
	master := r.keys[epoch]
	r.mu.RUnlock()

	plain := make([]byte, 0, cookiePlainLen)
	plain = binary.BigEndian.AppendUint16(plain, aeadID)
	plain = binary.BigEndian.AppendUint16(plain, SIVKeyLen)
	plain = append(plain, c2s...)
	plain = append(plain, s2c...)
	pad := make([]byte, cookiePadLen)
	if _, err := rand.Read(pad); err != nil {
		return nil, err
	}
	plain = append(plain, pad...)

	var epochAD [cookieEpochLen]byte
	binary.BigEndian.PutUint32(epochAD[:], epoch)
	sealed, err := sivSeal(master, plain, epochAD[:])
	if err != nil {
		return nil, err
	}
	return append(epochAD[:], sealed...), nil
}

// OpenCookie authenticates and decrypts a cookie, returning the AEAD
// algorithm and association keys it carries. Cookies sealed under an
// epoch that has rotated out fail with ErrCookieEpoch.
func (r *KeyRing) OpenCookie(cookie []byte) (aeadID uint16, c2s, s2c []byte, err error) {
	if len(cookie) != CookieLen {
		return 0, nil, nil, ErrCookieFormat
	}
	epoch := binary.BigEndian.Uint32(cookie[:cookieEpochLen])
	r.mu.RLock()
	master, ok := r.keys[epoch]
	r.mu.RUnlock()
	if !ok {
		return 0, nil, nil, ErrCookieEpoch
	}
	plain, err := sivOpen(master, cookie[cookieEpochLen:], cookie[:cookieEpochLen])
	if err != nil {
		return 0, nil, nil, err
	}
	if len(plain) != cookiePlainLen {
		return 0, nil, nil, ErrCookieFormat
	}
	aeadID = binary.BigEndian.Uint16(plain[0:2])
	if binary.BigEndian.Uint16(plain[2:4]) != SIVKeyLen {
		return 0, nil, nil, ErrCookieFormat
	}
	c2s = plain[4 : 4+SIVKeyLen]
	s2c = plain[4+SIVKeyLen : 4+2*SIVKeyLen]
	return aeadID, c2s, s2c, nil
}
