package nts

import (
	"errors"

	"mntp/internal/ntppkt"
)

// MaxCookiesPerReply caps re-supply so a flood of placeholders cannot
// inflate replies into an amplification vector (RFC 8915 §5.7 requires
// replies to stay no larger than requests; each placeholder in the
// request pays for the cookie it buys back).
const MaxCookiesPerReply = 8

// ErrNotNTS is returned by VerifyRequest for packets that carry no
// NTS fields at all.
var ErrNotNTS = errors.New("nts: not an NTS-protected request")

// ServerRequest is a verified NTS request: everything the serving
// path needs to build the authenticated response.
type ServerRequest struct {
	// UID is the client's unique identifier, echoed in the reply.
	UID []byte
	// AEAD, C2S, S2C are the association parameters recovered from
	// the request's cookie.
	AEAD uint16
	C2S  []byte
	S2C  []byte
	// NumCookies is how many fresh cookies the reply must carry: one
	// for the cookie consumed plus one per placeholder, capped at
	// MaxCookiesPerReply.
	NumCookies int
}

// IsNTSRequest reports whether the packet claims NTS protection —
// i.e. carries an NTS authenticator field. Packets for which this is
// true but VerifyRequest fails warrant an NTS NAK.
func IsNTSRequest(p *ntppkt.Packet) bool {
	_, idx := p.FindExt(ntppkt.ExtNTSAuthenticator)
	return idx >= 0
}

// VerifyRequest authenticates an NTS client request against the
// server's cookie key ring: decrypt the cookie to recover the
// association keys, then verify the authenticator over the packet
// image with the c2s key. Errors of any kind mean the request must
// not be answered with time; if IsNTSRequest holds, answer with an
// NTS NAK so the client re-runs key exchange.
func VerifyRequest(ring *KeyRing, p *ntppkt.Packet) (*ServerRequest, error) {
	_, authIdx := p.FindExt(ntppkt.ExtNTSAuthenticator)
	if authIdx < 0 {
		return nil, ErrNotNTS
	}
	uidEF, uidIdx := p.FindExt(ntppkt.ExtUniqueIdentifier)
	if uidEF == nil || uidIdx > authIdx || len(uidEF.Value) < UniqueIDLen {
		return nil, ErrBadExtField
	}
	cookieEF, cookieIdx := p.FindExt(ntppkt.ExtNTSCookie)
	if cookieEF == nil || cookieIdx > authIdx {
		return nil, ErrBadExtField
	}
	aeadID, c2s, s2c, err := ring.OpenCookie(cookieEF.Value)
	if err != nil {
		return nil, err
	}
	if aeadID != AEADAESSIVCMAC256 {
		return nil, ErrBadExtField
	}
	if _, err := openAuthenticator(c2s, p, authIdx); err != nil {
		return nil, err
	}

	numCookies := 1
	for i := 0; i < authIdx; i++ {
		if p.Ext[i].Type == ntppkt.ExtNTSCookiePlaceholder &&
			len(p.Ext[i].Value) >= CookieLen {
			numCookies++
		}
	}
	if numCookies > MaxCookiesPerReply {
		numCookies = MaxCookiesPerReply
	}
	return &ServerRequest{
		UID:        append([]byte(nil), uidEF.Value...),
		AEAD:       aeadID,
		C2S:        append([]byte(nil), c2s...),
		S2C:        append([]byte(nil), s2c...),
		NumCookies: numCookies,
	}, nil
}

// ProtectResponse turns a bare server reply into an authenticated NTS
// one: echo the unique identifier, then seal NumCookies freshly
// minted cookies (encrypted, so re-supply is unlinkable on the wire)
// under the s2c key. Must run after the header fields are final.
func ProtectResponse(ring *KeyRing, req *ServerRequest, resp *ntppkt.Packet) error {
	resp.Ext = append(resp.Ext, ntppkt.ExtField{
		Type:  ntppkt.ExtUniqueIdentifier,
		Value: req.UID,
	})
	var inner []byte
	for i := 0; i < req.NumCookies; i++ {
		cookie, err := ring.SealCookie(req.AEAD, req.C2S, req.S2C)
		if err != nil {
			return err
		}
		inner = appendInnerExt(inner, ntppkt.ExtNTSCookie, cookie)
	}
	return sealAuthenticator(req.S2C, resp, inner)
}

// ProtectNAK decorates an NTS NAK reply (stratum 0, kiss code NTSN,
// already set by the caller) with the request's unique identifier so
// the client can match it, per RFC 8915 §5.7. NAKs carry no
// authenticator — the server may not know valid keys.
func ProtectNAK(uid []byte, resp *ntppkt.Packet) {
	if len(uid) > 0 {
		resp.Ext = append(resp.Ext, ntppkt.ExtField{
			Type:  ntppkt.ExtUniqueIdentifier,
			Value: uid,
		})
	}
}
