package nts

import (
	"crypto/rand"
	"encoding/binary"
	"errors"

	"mntp/internal/ntppkt"
)

// UniqueIDLen is the body length of the Unique Identifier extension
// field: RFC 8915 §5.3 requires at least 32 octets of fresh
// randomness per request.
const UniqueIDLen = 32

// nonceLen is the AEAD nonce carried in the authenticator body. SIV
// tolerates any length; 16 keeps the body 4-aligned.
const nonceLen = 16

var (
	// ErrNoAuth is returned when a packet lacks the NTS authenticator
	// extension field (i.e. is not NTS-protected).
	ErrNoAuth = errors.New("nts: packet has no NTS authenticator field")
	// ErrBadExtField is returned for structurally invalid NTS
	// extension-field bodies.
	ErrBadExtField = errors.New("nts: malformed NTS extension field")
)

// newUniqueID returns a fresh 32-byte unique identifier.
func newUniqueID() ([]byte, error) {
	uid := make([]byte, UniqueIDLen)
	_, err := rand.Read(uid)
	return uid, err
}

// sealAuthenticator appends the NTS Authenticator and Encrypted
// Extension Fields EF to p, sealing plaintext with key. The
// associated data is the wire image of everything already in p — the
// 48-byte header plus every extension field appended so far — which
// is why the authenticator must always be added last.
//
// Body layout (RFC 8915 §5.6): nonceLen(2) || ctLen(2) || nonce || ct.
// With a 16-byte nonce and SIV's 16-byte tag the body stays 4-aligned
// whenever the plaintext is, so re-encoding is byte-exact.
func sealAuthenticator(key []byte, p *ntppkt.Packet, plaintext []byte) error {
	ad := p.Encode(nil)
	nonce := make([]byte, nonceLen)
	if _, err := rand.Read(nonce); err != nil {
		return err
	}
	ct, err := sivSeal(key, plaintext, ad, nonce)
	if err != nil {
		return err
	}
	body := make([]byte, 0, 4+nonceLen+len(ct))
	body = binary.BigEndian.AppendUint16(body, nonceLen)
	body = binary.BigEndian.AppendUint16(body, uint16(len(ct)))
	body = append(body, nonce...)
	body = append(body, ct...)
	p.Ext = append(p.Ext, ntppkt.ExtField{Type: ntppkt.ExtNTSAuthenticator, Value: body})
	return nil
}

// openAuthenticator verifies the authenticator at index authIdx of
// p.Ext against key and returns the decrypted inner plaintext. The
// associated data is reconstructed by re-encoding the header and the
// fields preceding the authenticator — exact because decode keeps
// field bodies verbatim.
func openAuthenticator(key []byte, p *ntppkt.Packet, authIdx int) ([]byte, error) {
	if authIdx < 0 || authIdx >= len(p.Ext) {
		return nil, ErrNoAuth
	}
	body := p.Ext[authIdx].Value
	if len(body) < 4 {
		return nil, ErrBadExtField
	}
	nl := int(binary.BigEndian.Uint16(body[0:2]))
	cl := int(binary.BigEndian.Uint16(body[2:4]))
	if nl == 0 || 4+nl+cl > len(body) {
		return nil, ErrBadExtField
	}
	nonce := body[4 : 4+nl]
	ct := body[4+nl : 4+nl+cl]

	prefix := *p
	prefix.Ext = p.Ext[:authIdx]
	prefix.LegacyMAC = nil
	ad := prefix.Encode(nil)
	return sivOpen(key, ct, ad, nonce)
}

// appendInnerExt appends one extension field in wire framing to dst.
// Inner (encrypted) fields use the same type+length header but are
// exempt from the outer 16-byte minimum; bodies here are always
// 4-aligned so no padding is emitted.
func appendInnerExt(dst []byte, typ uint16, body []byte) []byte {
	dst = binary.BigEndian.AppendUint16(dst, typ)
	dst = binary.BigEndian.AppendUint16(dst, uint16(ntppkt.ExtHeaderLen+len(body)))
	return append(dst, body...)
}

// parseInnerExts parses the decrypted contents of an authenticator:
// a sequence of extension fields framed like the outer ones but
// without the RFC 7822 minimum-length rule.
func parseInnerExts(plain []byte) ([]ntppkt.ExtField, error) {
	var out []ntppkt.ExtField
	for len(plain) > 0 {
		if len(plain) < ntppkt.ExtHeaderLen {
			return nil, ErrBadExtField
		}
		l := int(binary.BigEndian.Uint16(plain[2:4]))
		if l < ntppkt.ExtHeaderLen || l%4 != 0 || l > len(plain) {
			return nil, ErrBadExtField
		}
		out = append(out, ntppkt.ExtField{
			Type:  binary.BigEndian.Uint16(plain[0:2]),
			Value: plain[ntppkt.ExtHeaderLen:l],
		})
		plain = plain[l:]
	}
	return out, nil
}
