package nts

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func testStateKey(t *testing.T) []byte {
	t.Helper()
	key := make([]byte, SIVKeyLen)
	if _, err := rand.Read(key); err != nil {
		t.Fatal(err)
	}
	return key
}

// TestKeyRingSaveLoadRoundTrip is the persistence property: a cookie
// minted by the original ring opens identically under the restored
// one — epoch counter, depth and every retained master key survive.
func TestKeyRingSaveLoadRoundTrip(t *testing.T) {
	ring, err := NewKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := ring.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	c2s := bytes.Repeat([]byte{0xc2}, SIVKeyLen)
	s2c := bytes.Repeat([]byte{0x5c}, SIVKeyLen)
	cookie, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	if err != nil {
		t.Fatal(err)
	}

	key := testStateKey(t)
	path := filepath.Join(t.TempDir(), "ring.state")
	if err := ring.Save(path, key); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o600 {
		t.Fatalf("state file mode = %v, err %v; want 0600", fi.Mode(), err)
	}

	restored, err := LoadKeyRing(path, key)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != ring.Epoch() {
		t.Fatalf("epoch = %d, want %d", restored.Epoch(), ring.Epoch())
	}
	aead, rc2s, rs2c, err := restored.OpenCookie(cookie)
	if err != nil {
		t.Fatalf("restored ring cannot open pre-restart cookie: %v", err)
	}
	if aead != AEADAESSIVCMAC256 || !bytes.Equal(rc2s, c2s) || !bytes.Equal(rs2c, s2c) {
		t.Error("cookie contents differ after restore")
	}
	// Rotation continues monotonically from the restored counter: a
	// cookie minted before the save stays decryptable through depth
	// more rotations.
	for i := 0; i < 3; i++ {
		if err := restored.Rotate(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, _, err := restored.OpenCookie(cookie); err != nil {
		t.Fatalf("cookie within retention window rejected: %v", err)
	}
	if err := restored.Rotate(); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := restored.OpenCookie(cookie); !errors.Is(err, ErrCookieEpoch) {
		t.Fatalf("cookie past retention = %v, want ErrCookieEpoch", err)
	}
}

// TestLoadKeyRingRejectsBadFiles: truncation, corruption, tampering,
// wrong version, wrong key — all must fail loudly, never yield a ring
// with garbage keys.
func TestLoadKeyRingRejectsBadFiles(t *testing.T) {
	ring, err := NewKeyRing(2)
	if err != nil {
		t.Fatal(err)
	}
	key := testStateKey(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.state")
	if err := ring.Save(path, key); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, data []byte, wantErr error) {
		t.Helper()
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Fatal(err)
		}
		_, err := LoadKeyRing(p, key)
		if !errors.Is(err, wantErr) {
			t.Errorf("%s: err = %v, want %v", name, err, wantErr)
		}
	}

	check("empty", nil, ErrStateFormat)
	check("truncated-header", good[:5], ErrStateFormat)
	check("truncated-body", good[:len(good)-10], ErrStateFormat)
	check("bad-magic", append([]byte("XXXXXXXX"), good[8:]...), ErrStateFormat)

	badVer := append([]byte(nil), good...)
	binary.BigEndian.PutUint16(badVer[8:10], 99)
	check("wrong-version", badVer, ErrStateVersion)

	flipped := append([]byte(nil), good...)
	flipped[len(flipped)-1] ^= 0x01
	check("bitflip", flipped, ErrStateFormat)

	if _, err := LoadKeyRing(path, testStateKey(t)); !errors.Is(err, ErrStateFormat) {
		t.Errorf("wrong state key: err = %v, want ErrStateFormat", err)
	}
	if _, err := LoadKeyRing(filepath.Join(dir, "missing"), key); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing file: err = %v, want ErrNotExist", err)
	}
}

// TestLoadOrNewKeyRingFallback: every failure mode degrades to a
// fresh working ring (cold start) instead of stopping the server.
func TestLoadOrNewKeyRingFallback(t *testing.T) {
	key := testStateKey(t)
	dir := t.TempDir()

	// Missing file: fresh ring, no error (first run).
	r, loaded, err := LoadOrNewKeyRing(filepath.Join(dir, "none"), key, 3)
	if err != nil || loaded || r == nil {
		t.Fatalf("missing file: ring %v loaded %v err %v", r, loaded, err)
	}
	if _, err := r.SealCookie(AEADAESSIVCMAC256, make([]byte, SIVKeyLen), make([]byte, SIVKeyLen)); err != nil {
		t.Fatalf("fresh ring unusable: %v", err)
	}

	// Corrupt file: fresh ring, the corruption reported.
	bad := filepath.Join(dir, "corrupt")
	if err := os.WriteFile(bad, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}
	r, loaded, err = LoadOrNewKeyRing(bad, key, 3)
	if r == nil || loaded {
		t.Fatalf("corrupt file: ring %v loaded %v", r, loaded)
	}
	if !errors.Is(err, ErrStateFormat) {
		t.Errorf("corrupt file err = %v, want ErrStateFormat", err)
	}

	// Intact file: the persisted ring.
	orig, _ := NewKeyRing(3)
	goodPath := filepath.Join(dir, "good")
	if err := orig.Save(goodPath, key); err != nil {
		t.Fatal(err)
	}
	r, loaded, err = LoadOrNewKeyRing(goodPath, key, 3)
	if err != nil || !loaded {
		t.Fatalf("good file: loaded %v err %v", loaded, err)
	}
	if r.Epoch() != orig.Epoch() {
		t.Errorf("epoch = %d, want %d", r.Epoch(), orig.Epoch())
	}
}

// TestSaveDuringRotation: Save snapshots the ring under its read lock
// while rotations and cookie traffic run concurrently — the -race leg
// pins this. Every saved state must itself restore to a usable ring.
func TestSaveDuringRotation(t *testing.T) {
	ring, err := NewKeyRing(3)
	if err != nil {
		t.Fatal(err)
	}
	key := testStateKey(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "ring.state")

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := ring.Rotate(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		c2s := make([]byte, SIVKeyLen)
		s2c := make([]byte, SIVKeyLen)
		for {
			select {
			case <-stop:
				return
			default:
			}
			cookie, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
			if err != nil {
				t.Error(err)
				return
			}
			// Concurrent rotation may retire the epoch before the
			// open; only format/auth errors are bugs.
			if _, _, _, err := ring.OpenCookie(cookie); err != nil && !errors.Is(err, ErrCookieEpoch) {
				t.Errorf("open during rotation: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 50; i++ {
		if err := ring.Save(path, key); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	restored, err := LoadKeyRing(path, key)
	if err != nil {
		t.Fatalf("checkpoint written during rotation does not restore: %v", err)
	}
	if _, err := restored.SealCookie(AEADAESSIVCMAC256, make([]byte, SIVKeyLen), make([]byte, SIVKeyLen)); err != nil {
		t.Fatalf("restored ring unusable: %v", err)
	}
}
