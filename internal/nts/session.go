package nts

import (
	"bytes"
	"errors"
	"sync"

	"mntp/internal/ntppkt"
)

// DefaultJarCapacity is the cookie-jar size a client aims to hold:
// RFC 8915 §5.7 recommends eight so one cookie per poll survives
// seven consecutive losses before the jar runs dry.
const DefaultJarCapacity = 8

var (
	// ErrNTSNak is returned by VerifyReply when the server answered
	// with an NTS NAK kiss code: it could not authenticate the
	// request (rotated-out cookie, corrupted field) and the client
	// must re-run NTS-KE to obtain fresh keys and cookies.
	ErrNTSNak = errors.New("nts: server sent NTS NAK, key exchange must be re-run")
	// ErrJarEmpty is returned by ProtectRequest when no cookies
	// remain and reuse is not permitted.
	ErrJarEmpty = errors.New("nts: cookie jar empty")
	// ErrUniqueIDMismatch is returned when a reply's unique
	// identifier does not echo the request's.
	ErrUniqueIDMismatch = errors.New("nts: reply unique identifier does not match request")
	// ErrReplyUnauthenticated is returned for replies lacking a valid
	// authenticator over the s2c key.
	ErrReplyUnauthenticated = errors.New("nts: reply not authenticated")
)

// Session holds the client half of an NTS association: the keys and
// cookie jar produced by one NTS-KE run. Safe for concurrent use.
type Session struct {
	// NTPServer is the NTP (not KE) endpoint negotiated for this
	// association, in host:port form.
	NTPServer string
	// AEAD is the negotiated algorithm (AEADAESSIVCMAC256).
	AEAD uint16
	// C2S and S2C are the exported association keys.
	C2S, S2C []byte
	// Capacity is the jar's target size; 0 means DefaultJarCapacity.
	Capacity int
	// ReuseWhenDry lets ProtectRequest reuse the last cookie instead
	// of failing when the jar empties. Cookie reuse links requests
	// observably, so this is only for load generation — never for a
	// real client, which should re-run KE instead.
	ReuseWhenDry bool

	mu      sync.Mutex
	cookies [][]byte
	last    []byte
}

// RequestState carries what VerifyReply needs to match and verify the
// reply to one protected request.
type RequestState struct {
	UID []byte
}

// AddCookies appends cookies to the jar, discarding overflow beyond
// capacity.
func (s *Session) AddCookies(cookies [][]byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	limit := s.capacity()
	for _, c := range cookies {
		if len(s.cookies) >= limit {
			break
		}
		s.cookies = append(s.cookies, append([]byte(nil), c...))
	}
}

// CookieCount reports how many cookies remain in the jar.
func (s *Session) CookieCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cookies)
}

func (s *Session) capacity() int {
	if s.Capacity > 0 {
		return s.Capacity
	}
	return DefaultJarCapacity
}

// ProtectRequest turns a bare client packet into an NTS-protected one:
// unique identifier, one cookie from the jar, enough placeholders
// that the server's re-supply refills the jar to capacity, and the
// authenticator over all of it. Must be called after the header
// fields (including Transmit) are final.
func (s *Session) ProtectRequest(p *ntppkt.Packet) (*RequestState, error) {
	uid, err := newUniqueID()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	var cookie []byte
	if len(s.cookies) > 0 {
		cookie = s.cookies[0]
		s.cookies = s.cookies[:copy(s.cookies, s.cookies[1:])]
		s.last = cookie
	} else if s.ReuseWhenDry && s.last != nil {
		cookie = s.last
	}
	placeholders := s.capacity() - 1 - len(s.cookies)
	s.mu.Unlock()
	if cookie == nil {
		return nil, ErrJarEmpty
	}
	if placeholders < 0 {
		placeholders = 0
	}

	p.Ext = append(p.Ext, ntppkt.ExtField{Type: ntppkt.ExtUniqueIdentifier, Value: uid})
	p.Ext = append(p.Ext, ntppkt.ExtField{Type: ntppkt.ExtNTSCookie, Value: cookie})
	for i := 0; i < placeholders; i++ {
		p.Ext = append(p.Ext, ntppkt.ExtField{
			Type:  ntppkt.ExtNTSCookiePlaceholder,
			Value: make([]byte, len(cookie)),
		})
	}
	if err := sealAuthenticator(s.C2S, p, nil); err != nil {
		return nil, err
	}
	return &RequestState{UID: uid}, nil
}

// VerifyReply authenticates a server reply against the request state:
// the unique identifier must echo the request's, the authenticator
// must verify under the s2c key, and any encrypted cookies inside are
// harvested into the jar. An NTS NAK kiss code maps to ErrNTSNak.
func (s *Session) VerifyReply(p *ntppkt.Packet, st *RequestState) error {
	if code, ok := p.KissCode(); ok && code == string(ntppkt.KissNTSN[:]) {
		return ErrNTSNak
	}
	uidEF, _ := p.FindExt(ntppkt.ExtUniqueIdentifier)
	if uidEF == nil || !bytes.Equal(uidEF.Value, st.UID) {
		return ErrUniqueIDMismatch
	}
	_, authIdx := p.FindExt(ntppkt.ExtNTSAuthenticator)
	if authIdx < 0 {
		return ErrReplyUnauthenticated
	}
	plain, err := openAuthenticator(s.S2C, p, authIdx)
	if err != nil {
		return ErrReplyUnauthenticated
	}
	inner, err := parseInnerExts(plain)
	if err != nil {
		return err
	}
	var fresh [][]byte
	for i := range inner {
		if inner[i].Type == ntppkt.ExtNTSCookie && len(inner[i].Value) > 0 {
			fresh = append(fresh, inner[i].Value)
		}
	}
	s.AddCookies(fresh)
	return nil
}
