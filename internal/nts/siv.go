// Package nts implements the Network Time Security protection of NTP
// packets (RFC 8915): the AES-SIV-CMAC-256 AEAD (RFC 5297, built from
// the standard library's AES primitive — no external dependencies),
// server cookies minted under a rotating key-epoch ring, the NTS
// extension fields on the NTP wire format, the client session with
// its unlinkable cookie jar, and the server-side request
// verification/response construction used by internal/ntpnet.
//
// The division of labour with internal/ntske: this package is
// everything after key establishment — given the per-association keys
// (c2s/s2c) and cookies, it protects and verifies packets. Package
// ntske produces those keys and cookies over TLS.
package nts

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"errors"
)

// AEADAESSIVCMAC256 is the IANA AEAD algorithm identifier of
// AES-SIV-CMAC-256, the mandatory-to-implement algorithm of RFC 8915.
const AEADAESSIVCMAC256 uint16 = 15

// SIVKeyLen is the AES-SIV-CMAC-256 key length: two AES-128 keys,
// one for S2V/CMAC and one for CTR.
const SIVKeyLen = 32

// SIVOverhead is the length added to a plaintext by sivSeal: the
// 16-byte synthetic IV prepended to the ciphertext.
const SIVOverhead = 16

// ErrAuthFailed is returned when an AES-SIV tag does not verify:
// the packet (or cookie) was forged, corrupted or keyed differently.
var ErrAuthFailed = errors.New("nts: AEAD authentication failed")

// dbl doubles a block in GF(2^128) per RFC 5297 §2.3: left shift by
// one, conditionally XORing the primitive polynomial constant 0x87
// into the last byte when the shifted-out bit was set.
func dbl(b *[16]byte) {
	msb := b[0] >> 7
	for i := 0; i < 15; i++ {
		b[i] = b[i]<<1 | b[i+1]>>7
	}
	b[15] <<= 1
	if msb == 1 {
		b[15] ^= 0x87
	}
}

func xorBlock(dst *[16]byte, src [16]byte) {
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// cmacKeys derives the two CMAC subkeys (RFC 4493 §2.3).
func cmacKeys(c cipher.Block) (k1, k2 [16]byte) {
	var l [16]byte
	c.Encrypt(l[:], l[:])
	k1 = l
	dbl(&k1)
	k2 = k1
	dbl(&k2)
	return
}

// cmacSum computes AES-CMAC (RFC 4493) of msg.
func cmacSum(c cipher.Block, k1, k2 [16]byte, msg []byte) [16]byte {
	var x [16]byte
	n := len(msg)
	for n > 16 {
		var m [16]byte
		copy(m[:], msg[:16])
		xorBlock(&x, m)
		c.Encrypt(x[:], x[:])
		msg = msg[16:]
		n -= 16
	}
	var last [16]byte
	if n == 16 {
		copy(last[:], msg)
		xorBlock(&last, k1)
	} else {
		copy(last[:], msg)
		last[n] = 0x80
		xorBlock(&last, k2)
	}
	xorBlock(&x, last)
	c.Encrypt(x[:], x[:])
	return x
}

// s2v computes the S2V function of RFC 5297 §2.4 over the given
// strings (associated data components, the nonce if any, and the
// plaintext last).
func s2v(c cipher.Block, k1, k2 [16]byte, strings ...[]byte) [16]byte {
	if len(strings) == 0 {
		var one [16]byte
		one[15] = 0x01
		return cmacSum(c, k1, k2, one[:])
	}
	var zero [16]byte
	d := cmacSum(c, k1, k2, zero[:])
	for _, s := range strings[:len(strings)-1] {
		dbl(&d)
		xorBlock(&d, cmacSum(c, k1, k2, s))
	}
	sn := strings[len(strings)-1]
	var t []byte
	if len(sn) >= 16 {
		// xorend: XOR D into the last 16 bytes of Sn.
		t = make([]byte, len(sn))
		copy(t, sn)
		off := len(t) - 16
		for i := 0; i < 16; i++ {
			t[off+i] ^= d[i]
		}
	} else {
		dbl(&d)
		var padded [16]byte
		copy(padded[:], sn)
		padded[len(sn)] = 0x80
		xorBlock(&d, padded)
		t = d[:]
	}
	return cmacSum(c, k1, k2, t)
}

// sivCiphers splits a 32-byte AES-SIV-CMAC-256 key into the S2V
// (first half) and CTR (second half) AES blocks.
func sivCiphers(key []byte) (s2vBlock, ctrBlock cipher.Block, err error) {
	if len(key) != SIVKeyLen {
		return nil, nil, errors.New("nts: AES-SIV-CMAC-256 key must be 32 bytes")
	}
	if s2vBlock, err = aes.NewCipher(key[:16]); err != nil {
		return nil, nil, err
	}
	if ctrBlock, err = aes.NewCipher(key[16:]); err != nil {
		return nil, nil, err
	}
	return s2vBlock, ctrBlock, nil
}

// sivCTR runs AES-CTR keyed with ctrBlock over src using the
// synthetic IV with the two reserved bits cleared (RFC 5297 §2.6).
func sivCTR(ctrBlock cipher.Block, iv [16]byte, dst, src []byte) {
	iv[8] &= 0x7f
	iv[12] &= 0x7f
	cipher.NewCTR(ctrBlock, iv[:]).XORKeyStream(dst, src)
}

// sivSeal encrypts and authenticates plaintext with AES-SIV-CMAC-256
// under key, binding the associated-data components (for the RFC 5116
// nonce-based interface: the AD first, the nonce last). The result is
// the 16-byte synthetic IV followed by the ciphertext.
func sivSeal(key, plaintext []byte, ad ...[]byte) ([]byte, error) {
	s2vBlock, ctrBlock, err := sivCiphers(key)
	if err != nil {
		return nil, err
	}
	k1, k2 := cmacKeys(s2vBlock)
	comps := append(append([][]byte(nil), ad...), plaintext)
	v := s2v(s2vBlock, k1, k2, comps...)
	out := make([]byte, 16+len(plaintext))
	copy(out, v[:])
	sivCTR(ctrBlock, v, out[16:], plaintext)
	return out, nil
}

// sivOpen verifies and decrypts a sivSeal output. It returns
// ErrAuthFailed when the tag does not match.
func sivOpen(key, sealed []byte, ad ...[]byte) ([]byte, error) {
	if len(sealed) < 16 {
		return nil, ErrAuthFailed
	}
	s2vBlock, ctrBlock, err := sivCiphers(key)
	if err != nil {
		return nil, err
	}
	var v [16]byte
	copy(v[:], sealed[:16])
	plaintext := make([]byte, len(sealed)-16)
	sivCTR(ctrBlock, v, plaintext, sealed[16:])
	k1, k2 := cmacKeys(s2vBlock)
	comps := append(append([][]byte(nil), ad...), plaintext)
	t := s2v(s2vBlock, k1, k2, comps...)
	if subtle.ConstantTimeCompare(t[:], v[:]) != 1 {
		return nil, ErrAuthFailed
	}
	return plaintext, nil
}
