package nts

import (
	"bytes"
	"encoding/hex"
	"testing"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// TestSIVDeterministicVector is the RFC 5297 appendix A.1
// deterministic-authenticated-encryption example: one associated-data
// string, no nonce.
func TestSIVDeterministicVector(t *testing.T) {
	key := unhex(t, "fffefdfcfbfaf9f8f7f6f5f4f3f2f1f0f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff")
	ad := unhex(t, "101112131415161718191a1b1c1d1e1f2021222324252627")
	pt := unhex(t, "112233445566778899aabbccddee")
	want := unhex(t, "85632d07c6e8f37f950acd320a2ecc9340c02b9690c4dc04daef7f6afe5c")

	got, err := sivSeal(key, pt, ad)
	if err != nil {
		t.Fatalf("sivSeal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("A.1 seal mismatch:\n got  %x\n want %x", got, want)
	}
	back, err := sivOpen(key, got, ad)
	if err != nil {
		t.Fatalf("sivOpen: %v", err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatalf("A.1 open mismatch: got %x want %x", back, pt)
	}
}

// TestSIVNonceBasedVector is the RFC 5297 appendix A.2 nonce-based
// authenticated-encryption example: two associated-data strings plus
// a nonce, which in SIV's S2V construction is simply the last
// component before the plaintext.
func TestSIVNonceBasedVector(t *testing.T) {
	key := unhex(t, "7f7e7d7c7b7a79787776757473727170404142434445464748494a4b4c4d4e4f")
	ad1 := unhex(t, "00112233445566778899aabbccddeeffdeaddadadeaddadaffeeddccbbaa99887766554433221100")
	ad2 := unhex(t, "102030405060708090a0")
	nonce := unhex(t, "09f911029d74e35bd84156c5635688c0")
	pt := unhex(t, "7468697320697320736f6d6520706c61696e7465787420746f20656e6372797074207573696e67205349562d414553")
	want := unhex(t, "7bdb6e3b432667eb06f4d14bff2fbd0fcb900f2fddbe404326601965c889bf17dba77ceb094fa663b7a3f748ba8af829ea64ad544a272e9c485b62a3fd5c0d")

	got, err := sivSeal(key, pt, ad1, ad2, nonce)
	if err != nil {
		t.Fatalf("sivSeal: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("A.2 seal mismatch:\n got  %x\n want %x", got, want)
	}
	back, err := sivOpen(key, got, ad1, ad2, nonce)
	if err != nil {
		t.Fatalf("sivOpen: %v", err)
	}
	if !bytes.Equal(back, pt) {
		t.Fatalf("A.2 open mismatch: got %x want %x", back, pt)
	}
}

func TestSIVTamperRejected(t *testing.T) {
	key := bytes.Repeat([]byte{0x42}, SIVKeyLen)
	ad := []byte("associated data")
	sealed, err := sivSeal(key, []byte("the plaintext"), ad)
	if err != nil {
		t.Fatalf("sivSeal: %v", err)
	}
	for i := range sealed {
		mut := append([]byte(nil), sealed...)
		mut[i] ^= 0x01
		if _, err := sivOpen(key, mut, ad); err != ErrAuthFailed {
			t.Fatalf("flip byte %d: want ErrAuthFailed, got %v", i, err)
		}
	}
	if _, err := sivOpen(key, sealed, []byte("other ad")); err != ErrAuthFailed {
		t.Fatalf("wrong AD: want ErrAuthFailed, got %v", err)
	}
	if _, err := sivOpen(key, sealed[:10]); err != ErrAuthFailed {
		t.Fatalf("short input: want ErrAuthFailed, got %v", err)
	}
}

func TestSIVEmptyPlaintext(t *testing.T) {
	key := bytes.Repeat([]byte{0x07}, SIVKeyLen)
	nonce := bytes.Repeat([]byte{0x0a}, 16)
	sealed, err := sivSeal(key, nil, []byte("header image"), nonce)
	if err != nil {
		t.Fatalf("sivSeal: %v", err)
	}
	if len(sealed) != SIVOverhead {
		t.Fatalf("empty-plaintext ciphertext length = %d, want %d", len(sealed), SIVOverhead)
	}
	pt, err := sivOpen(key, sealed, []byte("header image"), nonce)
	if err != nil {
		t.Fatalf("sivOpen: %v", err)
	}
	if len(pt) != 0 {
		t.Fatalf("want empty plaintext, got %x", pt)
	}
}

func TestSIVKeyLength(t *testing.T) {
	if _, err := sivSeal(make([]byte, 16), []byte("x")); err == nil {
		t.Fatal("16-byte key accepted")
	}
	if _, err := sivOpen(make([]byte, 64), make([]byte, 32)); err == nil {
		t.Fatal("64-byte key accepted")
	}
}
