package nts

import (
	"bytes"
	"errors"
	"testing"

	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

func testRing(t *testing.T, depth int) *KeyRing {
	t.Helper()
	ring, err := NewKeyRing(depth)
	if err != nil {
		t.Fatalf("NewKeyRing: %v", err)
	}
	return ring
}

func testKeys(fill byte) (c2s, s2c []byte) {
	c2s = bytes.Repeat([]byte{fill}, SIVKeyLen)
	s2c = bytes.Repeat([]byte{fill ^ 0xff}, SIVKeyLen)
	return
}

func TestCookieRoundTrip(t *testing.T) {
	ring := testRing(t, 2)
	c2s, s2c := testKeys(0x11)
	cookie, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	if err != nil {
		t.Fatalf("SealCookie: %v", err)
	}
	if len(cookie) != CookieLen {
		t.Fatalf("cookie length = %d, want %d", len(cookie), CookieLen)
	}
	aead, gotC2S, gotS2C, err := ring.OpenCookie(cookie)
	if err != nil {
		t.Fatalf("OpenCookie: %v", err)
	}
	if aead != AEADAESSIVCMAC256 || !bytes.Equal(gotC2S, c2s) || !bytes.Equal(gotS2C, s2c) {
		t.Fatal("cookie did not round-trip the association parameters")
	}
}

// TestCookieSurvivesRotation pins the key-epoch ring contract: a
// cookie minted under epoch k verifies for depth rotations and fails
// with ErrCookieEpoch once its epoch leaves the ring.
func TestCookieSurvivesRotation(t *testing.T) {
	const depth = 2
	ring := testRing(t, depth)
	c2s, s2c := testKeys(0x22)
	cookie, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	if err != nil {
		t.Fatalf("SealCookie: %v", err)
	}
	for i := 0; i < depth; i++ {
		if err := ring.Rotate(); err != nil {
			t.Fatalf("Rotate %d: %v", i, err)
		}
		if _, _, _, err := ring.OpenCookie(cookie); err != nil {
			t.Fatalf("cookie failed after %d rotations (depth %d): %v", i+1, depth, err)
		}
	}
	if err := ring.Rotate(); err != nil {
		t.Fatalf("final Rotate: %v", err)
	}
	if _, _, _, err := ring.OpenCookie(cookie); !errors.Is(err, ErrCookieEpoch) {
		t.Fatalf("cookie after ring exhaustion: want ErrCookieEpoch, got %v", err)
	}
}

// TestCookieUnlinkable: two cookies for the same association must
// share no ciphertext, or an on-path observer could link the requests
// that spend them.
func TestCookieUnlinkable(t *testing.T) {
	ring := testRing(t, 1)
	c2s, s2c := testKeys(0x33)
	a, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	if err != nil {
		t.Fatalf("SealCookie: %v", err)
	}
	b, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	if err != nil {
		t.Fatalf("SealCookie: %v", err)
	}
	if bytes.Equal(a[cookieEpochLen:], b[cookieEpochLen:]) {
		t.Fatal("two cookies for the same keys have identical ciphertext")
	}
}

func TestCookieGarbageRejected(t *testing.T) {
	ring := testRing(t, 1)
	if _, _, _, err := ring.OpenCookie(make([]byte, 10)); !errors.Is(err, ErrCookieFormat) {
		t.Fatalf("short cookie: want ErrCookieFormat, got %v", err)
	}
	c2s, s2c := testKeys(0x44)
	cookie, _ := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
	cookie[CookieLen-1] ^= 0x01
	if _, _, _, err := ring.OpenCookie(cookie); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tampered cookie: want ErrAuthFailed, got %v", err)
	}
}

// newTestSession builds a client session whose jar was filled by the
// given ring, as NTS-KE would.
func newTestSession(t *testing.T, ring *KeyRing, n int) *Session {
	t.Helper()
	c2s, s2c := testKeys(0x55)
	s := &Session{AEAD: AEADAESSIVCMAC256, C2S: c2s, S2C: s2c}
	var cookies [][]byte
	for i := 0; i < n; i++ {
		c, err := ring.SealCookie(AEADAESSIVCMAC256, c2s, s2c)
		if err != nil {
			t.Fatalf("SealCookie: %v", err)
		}
		cookies = append(cookies, c)
	}
	s.AddCookies(cookies)
	return s
}

// exchangeOnce runs one protected request/verified reply round trip
// through encode/decode, as the UDP path would, and returns the
// decoded wire images for further inspection.
func exchangeOnce(t *testing.T, ring *KeyRing, s *Session) (reqWire, respWire []byte) {
	t.Helper()
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(0x123456789abc0000))
	st, err := s.ProtectRequest(req)
	if err != nil {
		t.Fatalf("ProtectRequest: %v", err)
	}
	reqWire = req.Encode(nil)

	onWire, err := ntppkt.Decode(reqWire)
	if err != nil {
		t.Fatalf("server decode: %v", err)
	}
	sreq, err := VerifyRequest(ring, onWire)
	if err != nil {
		t.Fatalf("VerifyRequest: %v", err)
	}
	resp := &ntppkt.Packet{
		Version:  ntppkt.Version4,
		Mode:     ntppkt.ModeServer,
		Stratum:  2,
		Origin:   onWire.Transmit,
		Transmit: ntptime.Timestamp(0x1234567900000000),
	}
	if err := ProtectResponse(ring, sreq, resp); err != nil {
		t.Fatalf("ProtectResponse: %v", err)
	}
	respWire = resp.Encode(nil)

	back, err := ntppkt.Decode(respWire)
	if err != nil {
		t.Fatalf("client decode: %v", err)
	}
	if err := s.VerifyReply(back, st); err != nil {
		t.Fatalf("VerifyReply: %v", err)
	}
	return reqWire, respWire
}

// TestProtectVerifyRoundTrip drives the full client↔server crypto
// path with a jar below capacity and checks that placeholder-driven
// re-supply refills it to capacity in one exchange.
func TestProtectVerifyRoundTrip(t *testing.T) {
	ring := testRing(t, 1)
	s := newTestSession(t, ring, 3)
	exchangeOnce(t, ring, s)
	if got := s.CookieCount(); got != DefaultJarCapacity {
		t.Fatalf("jar after exchange = %d, want %d", got, DefaultJarCapacity)
	}
	// A full jar asks for exactly one replacement.
	exchangeOnce(t, ring, s)
	if got := s.CookieCount(); got != DefaultJarCapacity {
		t.Fatalf("jar after steady-state exchange = %d, want %d", got, DefaultJarCapacity)
	}
}

// TestReplyCookiesUnlinkable: consecutive replies must never repeat
// cookie ciphertext, and the re-supply must ride inside the encrypted
// authenticator rather than as plaintext cookie fields.
func TestReplyCookiesUnlinkable(t *testing.T) {
	ring := testRing(t, 1)
	s := newTestSession(t, ring, DefaultJarCapacity)
	_, wire1 := exchangeOnce(t, ring, s)
	_, wire2 := exchangeOnce(t, ring, s)
	if bytes.Equal(wire1[ntppkt.HeaderLen:], wire2[ntppkt.HeaderLen:]) {
		t.Fatal("two replies carried identical extension bytes")
	}
	for i, w := range [][]byte{wire1, wire2} {
		p, err := ntppkt.Decode(w)
		if err != nil {
			t.Fatalf("decode reply %d: %v", i, err)
		}
		if ef, _ := p.FindExt(ntppkt.ExtNTSCookie); ef != nil {
			t.Fatalf("reply %d carries a plaintext cookie field", i)
		}
	}
}

func TestVerifyRequestTamper(t *testing.T) {
	ring := testRing(t, 1)
	s := newTestSession(t, ring, DefaultJarCapacity)
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(1<<32))
	if _, err := s.ProtectRequest(req); err != nil {
		t.Fatalf("ProtectRequest: %v", err)
	}
	wire := req.Encode(nil)

	// Flip one bit in the unique identifier: the authenticator's AD
	// covers it, so verification must fail.
	mut := append([]byte(nil), wire...)
	mut[ntppkt.HeaderLen+ntppkt.ExtHeaderLen] ^= 0x01
	p, err := ntppkt.Decode(mut)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !IsNTSRequest(p) {
		t.Fatal("tampered request no longer looks like NTS")
	}
	if _, err := VerifyRequest(ring, p); !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("tampered UID: want ErrAuthFailed, got %v", err)
	}

	// A cookie from a foreign ring must fail too (wrong master key).
	other := testRing(t, 1)
	p2, _ := ntppkt.Decode(wire)
	if _, err := VerifyRequest(other, p2); err == nil {
		t.Fatal("foreign ring accepted the cookie")
	}
}

func TestVerifyReplyRejections(t *testing.T) {
	ring := testRing(t, 1)
	s := newTestSession(t, ring, DefaultJarCapacity)
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(2<<32))
	st, err := s.ProtectRequest(req)
	if err != nil {
		t.Fatalf("ProtectRequest: %v", err)
	}

	nak := &ntppkt.Packet{
		Version: ntppkt.Version4,
		Mode:    ntppkt.ModeServer,
		Stratum: ntppkt.StratumKoD,
		RefID:   ntppkt.KissNTSN,
		Origin:  req.Transmit,
	}
	ProtectNAK(st.UID, nak)
	if err := s.VerifyReply(nak, st); !errors.Is(err, ErrNTSNak) {
		t.Fatalf("NTS NAK: want ErrNTSNak, got %v", err)
	}

	plain := &ntppkt.Packet{Version: ntppkt.Version4, Mode: ntppkt.ModeServer, Stratum: 2}
	if err := s.VerifyReply(plain, st); !errors.Is(err, ErrUniqueIDMismatch) {
		t.Fatalf("reply without UID: want ErrUniqueIDMismatch, got %v", err)
	}
}

func TestProtectRequestJarEmpty(t *testing.T) {
	ring := testRing(t, 1)
	s := newTestSession(t, ring, 1)
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(3<<32))
	if _, err := s.ProtectRequest(req); err != nil {
		t.Fatalf("first ProtectRequest: %v", err)
	}
	req2 := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(4<<32))
	if _, err := s.ProtectRequest(req2); !errors.Is(err, ErrJarEmpty) {
		t.Fatalf("empty jar: want ErrJarEmpty, got %v", err)
	}

	s.ReuseWhenDry = true
	req3 := ntppkt.NewClient(ntppkt.Version4, ntptime.Timestamp(5<<32))
	st, err := s.ProtectRequest(req3)
	if err != nil {
		t.Fatalf("ReuseWhenDry ProtectRequest: %v", err)
	}
	wire := req3.Encode(nil)
	p, err := ntppkt.Decode(wire)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if _, err := VerifyRequest(ring, p); err != nil {
		t.Fatalf("reused cookie rejected: %v", err)
	}
	_ = st
}
