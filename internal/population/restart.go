// Restart-storm scenario: a fleet of NTS clients polling a real UDP
// server whose process "restarts" mid-run — graceful drain, a short
// dark gap, then a relaunch on the same ports. Run twice: with the
// keyring persisted across the restart (nts.KeyRing.Save/Load, the
// zero-downtime path) and cold (fresh ring, the pre-persistence
// baseline). The persisted pass must show zero NTS NAKs and no dark
// interval beyond the drain budget; the cold pass must reproduce the
// NAK/re-KE herd — every outstanding cookie invalidated at once, the
// whole fleet stampeding back through NTS-KE — and then recover.
//
// Unlike the engine scenarios, the harness here is real-time with
// long-lived per-client NTS sessions: the whole point is state that
// survives (or does not survive) a server restart, which the engine's
// per-poll clients cannot express.
package population

import (
	"context"
	"crypto/tls"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/nts"
	"mntp/internal/ntske"
)

// Restart-storm timeline. One pass: clients poll every restartPoll;
// after restartPreRun the servers drain (restartDrain budget) and the
// replacement comes up restartGap later on the same ports; the pass
// then runs restartPostRun more to observe recovery. Serving is
// binned into restartBin wall slices for the dark-interval check.
const (
	restartPreRun  = 1 * time.Second
	restartDrain   = 500 * time.Millisecond
	restartGap     = 200 * time.Millisecond
	restartPostRun = 1500 * time.Millisecond
	restartPoll    = 100 * time.Millisecond
	restartBin     = 100 * time.Millisecond
	restartTimeout = 150 * time.Millisecond
	// restartDarkBound is the dark-streak budget for the persisted
	// pass in restartBin slices: drain (5) + gap (2) + rebind and
	// scheduler slack. Beyond it the restart was not zero-downtime.
	restartDarkBound = 12
)

// restartOutcome is one pass's raw counters.
type restartOutcome struct {
	sent, served, fails uint64
	naks, reKEs         uint64
	servedAfter         uint64
	darkStreak          int
}

// restartHarness drives n long-lived NTS sessions against the pinned
// server addresses, classifying every poll.
type restartHarness struct {
	udpAddr, keAddr string
	keTLS           *tls.Config
	stop            chan struct{}
	wg              sync.WaitGroup
	start           time.Time

	sent, served, fails atomic.Uint64
	naks, reKEs         atomic.Uint64
	servedAfter         atomic.Uint64
	restarted           atomic.Bool
	bins                []atomic.Uint64
}

func (h *restartHarness) worker(sess *nts.Session, stagger time.Duration) {
	defer h.wg.Done()
	cli := &ntpnet.Client{Timeout: restartTimeout}
	timer := time.NewTimer(stagger)
	defer timer.Stop()
	for {
		select {
		case <-h.stop:
			return
		case <-timer.C:
		}
		sess = h.pollOnce(cli, sess)
		timer.Reset(restartPoll)
	}
}

// pollOnce runs one synchronous authenticated exchange and returns
// the session to use next poll — a fresh one if an NTS NAK forced a
// re-run of NTS-KE (the client contract of RFC 8915 §5.7).
func (h *restartHarness) pollOnce(cli *ntpnet.Client, sess *nts.Session) *nts.Session {
	req := ntppkt.NewClient(ntppkt.Version4, ntptime.FromTime(time.Now()))
	st, err := sess.ProtectRequest(req)
	if err != nil {
		h.fails.Add(1)
		return sess
	}
	h.sent.Add(1)
	resp, _, err := cli.Exchange(h.udpAddr, req)
	if err != nil {
		// Timeout or ICMP-refused: the dark window while the server
		// is down, or drops under load. Not a NAK.
		h.fails.Add(1)
		return sess
	}
	switch verr := sess.VerifyReply(resp, st); {
	case verr == nil:
		h.served.Add(1)
		if h.restarted.Load() {
			h.servedAfter.Add(1)
		}
		if i := int(time.Since(h.start) / restartBin); i >= 0 && i < len(h.bins) {
			h.bins[i].Add(1)
		}
	case errors.Is(verr, nts.ErrNTSNak):
		h.naks.Add(1)
		// Re-run key exchange; on failure keep the old session —
		// ReuseWhenDry resends the last cookie, drawing another NAK
		// next poll, and the re-KE is retried then.
		if fresh, kerr := ntske.KeyExchange(h.keAddr, h.keTLS, 2*time.Second); kerr == nil {
			fresh.ReuseWhenDry = true
			h.reKEs.Add(1)
			return fresh
		}
	default:
		h.fails.Add(1)
	}
	return sess
}

// startRestartServers brings up the UDP serving path and the NTS-KE
// listener sharing one key ring. Pinned (non-:0) addresses are
// retried briefly: the replacement races the dying process's socket
// teardown exactly as a process manager's restart does.
func startRestartServers(ring *nts.KeyRing, udpAddr, keAddr string, cert tls.Certificate) (*ntpnet.Server, *ntske.Server, string, string, error) {
	deadline := time.Now().Add(2 * time.Second)
	var (
		srv     *ntpnet.Server
		boundNT string
	)
	for {
		srv = ntpnet.NewServer(clock.System{}, 2)
		srv.Workers = 2
		srv.NTS = ring
		a, err := srv.Listen(udpAddr)
		if err == nil {
			boundNT = a.String()
			break
		}
		if time.Now().After(deadline) {
			return nil, nil, "", "", fmt.Errorf("population: rebinding NTP %s: %w", udpAddr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	var (
		ke      *ntske.Server
		boundKE string
	)
	for {
		ke = &ntske.Server{
			Ring:      ring,
			TLSConfig: &tls.Config{Certificates: []tls.Certificate{cert}},
		}
		a, err := ke.Listen(keAddr)
		if err == nil {
			boundKE = a.String()
			break
		}
		if time.Now().After(deadline) {
			srv.Close()
			return nil, nil, "", "", fmt.Errorf("population: rebinding KE %s: %w", keAddr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
	return srv, ke, boundNT, boundKE, nil
}

// restartPass runs one full storm: serve, drain, gap, relaunch on the
// same ports (restored ring when persisted, fresh when cold), recover.
func restartPass(n int, persisted bool) (*restartOutcome, error) {
	dir, err := os.MkdirTemp("", "mntp-restart-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	statePath := filepath.Join(dir, "ring.state")
	stateKey, err := nts.LoadOrCreateMasterKey(filepath.Join(dir, "ring.key"))
	if err != nil {
		return nil, err
	}
	cert, _, err := ntske.SelfSigned(time.Now(), "127.0.0.1")
	if err != nil {
		return nil, err
	}
	ringA, err := nts.NewKeyRing(3)
	if err != nil {
		return nil, err
	}
	srvA, keA, udpAddr, keAddr, err := startRestartServers(ringA, "127.0.0.1:0", "127.0.0.1:0", cert)
	if err != nil {
		return nil, err
	}

	h := &restartHarness{
		udpAddr: udpAddr,
		keAddr:  keAddr,
		keTLS:   &tls.Config{InsecureSkipVerify: true},
		stop:    make(chan struct{}),
		start:   time.Now(),
		bins:    make([]atomic.Uint64, 64),
	}
	for i := 0; i < n; i++ {
		sess, kerr := ntske.KeyExchange(keAddr, h.keTLS, 5*time.Second)
		if kerr != nil {
			close(h.stop)
			h.wg.Wait()
			keA.Close()
			srvA.Close()
			return nil, fmt.Errorf("population: establishing session %d: %w", i, kerr)
		}
		sess.ReuseWhenDry = true
		h.wg.Add(1)
		// De-phase polls across one poll period so the fleet's load is
		// flat rather than a synthetic herd of its own.
		go h.worker(sess, time.Duration(i)*restartPoll/time.Duration(n))
	}

	time.Sleep(restartPreRun)

	// The restart: checkpoint (persisted path only), drain both
	// listeners under one deadline, go dark for the gap, relaunch on
	// the same ports.
	if persisted {
		if serr := ringA.Save(statePath, stateKey); serr != nil {
			close(h.stop)
			h.wg.Wait()
			keA.Close()
			srvA.Close()
			return nil, serr
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), restartDrain)
	_ = keA.Shutdown(ctx)
	_ = srvA.Shutdown(ctx)
	cancel()
	time.Sleep(restartGap)

	var ringB *nts.KeyRing
	if persisted {
		ringB, err = nts.LoadKeyRing(statePath, stateKey)
	} else {
		ringB, err = nts.NewKeyRing(3)
	}
	if err == nil {
		var srvB *ntpnet.Server
		var keB *ntske.Server
		srvB, keB, _, _, err = startRestartServers(ringB, udpAddr, keAddr, cert)
		if err == nil {
			h.restarted.Store(true)
			time.Sleep(restartPostRun)
			close(h.stop)
			h.wg.Wait()
			keB.Close()
			srvB.Close()
		}
	}
	if err != nil {
		close(h.stop)
		h.wg.Wait()
		return nil, err
	}

	bins := make([]uint64, len(h.bins))
	for i := range h.bins {
		bins[i] = h.bins[i].Load()
	}
	return &restartOutcome{
		sent:        h.sent.Load(),
		served:      h.served.Load(),
		fails:       h.fails.Load(),
		naks:        h.naks.Load(),
		reKEs:       h.reKEs.Load(),
		servedAfter: h.servedAfter.Load(),
		darkStreak:  darkStreakOf(bins),
	}, nil
}

// darkStreakOf is the longest run of zero-served bins strictly between
// the first and last bins that served anything — leading dead air
// (session establishment) and the trailing unused tail don't count.
func darkStreakOf(bins []uint64) int {
	first, last := -1, -1
	for i, b := range bins {
		if b > 0 {
			if first < 0 {
				first = i
			}
			last = i
		}
	}
	if first < 0 {
		return len(bins)
	}
	maxRun, run := 0, 0
	for i := first; i <= last; i++ {
		if bins[i] == 0 {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	return maxRun
}

// RestartStorm runs the restart twice — persisted keyring, then cold —
// and asserts both contracts: persistence makes the restart invisible
// to the NTS fleet (zero NAKs, zero re-KEs, dark interval within the
// drain budget), while the cold baseline reproduces the re-KE herd
// the persistence work exists to prevent, and still recovers.
func RestartStorm(n int, seed int64) (*Report, error) {
	warm, err := restartPass(n, true)
	if err != nil {
		return nil, fmt.Errorf("population: persisted pass: %w", err)
	}
	cold, err := restartPass(n, false)
	if err != nil {
		return nil, fmt.Errorf("population: cold pass: %w", err)
	}

	r := &Report{Scenario: ScenarioRestart, N: n, Seed: seed, Mode: "udp"}
	r.Sent, r.Served, r.Fails = warm.sent, warm.served, warm.fails
	r.DarkStreakReal = warm.darkStreak
	r.NTSNaks, r.ReKEs = warm.naks, warm.reKEs
	r.ColdNTSNaks, r.ColdReKEs = cold.naks, cold.reKEs
	r.ColdDarkStreakReal = cold.darkStreak
	r.VirtualSeconds = (restartPreRun + restartDrain + restartGap + restartPostRun).Seconds()

	if warm.served == 0 {
		r.Violate("persisted pass served nothing (harness broken)")
	}
	if warm.naks > 0 {
		r.Violate("persisted restart drew %d NTS NAKs (want 0: the restored ring must open every outstanding cookie)", warm.naks)
	}
	if warm.reKEs > 0 {
		r.Violate("persisted restart forced %d re-KEs (want 0)", warm.reKEs)
	}
	if warm.darkStreak > restartDarkBound {
		r.Violate("persisted restart dark interval %d×%v bins > %d (drain %v + gap %v budget)",
			warm.darkStreak, restartBin, restartDarkBound, restartDrain, restartGap)
	}
	if warm.servedAfter == 0 {
		r.Violate("no requests served after the persisted restart")
	}
	if cold.naks < uint64(n)/2 {
		r.Violate("cold restart drew only %d NAKs for %d clients (< n/2): the herd never formed (harness broken)", cold.naks, n)
	}
	if cold.reKEs < uint64(n)/2 {
		r.Violate("cold restart forced only %d re-KEs for %d clients (< n/2): clients did not re-run KE", cold.reKEs, n)
	}
	if cold.servedAfter == 0 {
		r.Violate("service never resumed after the cold restart's re-KE herd")
	}

	r.Pass = len(r.Violations) == 0
	if r.Violations == nil {
		r.Violations = []string{}
	}
	return r, nil
}
