//go:build race

package population

// raceEnabled gates the heaviest population tests: under the race
// detector a million-client warm-up round and the real-UDP storm
// scenarios cost an order of magnitude more, so only the NAT leg —
// the one CI runs under -race on purpose — stays on.
const raceEnabled = true
