// Population-scale scenarios: first-class, seeded, assertable
// programs over the engine. Each returns a Report whose Violations
// list is empty iff the scenario's invariants held — the same
// contract as the chaos harness, so CI and cmd/ntppop consume them
// uniformly.
package population

import (
	"fmt"
	"time"

	"mntp/internal/clock"
	"mntp/internal/ntpnet"
	"mntp/internal/overload"
)

// Report is one scenario's JSON-serializable outcome.
type Report struct {
	Scenario       string  `json:"scenario"`
	N              int     `json:"n"`
	Seed           int64   `json:"seed"`
	Mode           string  `json:"mode"`
	VirtualSeconds float64 `json:"virtual_seconds"`

	Sent     uint64 `json:"sent"`
	Served   uint64 `json:"served"`
	Rated    uint64 `json:"rated"`
	Fails    uint64 `json:"fails"`
	Suspends uint64 `json:"suspends,omitempty"`

	ServedClients int `json:"served_clients"`
	RatedClients  int `json:"rated_clients,omitempty"`
	MaxDryStreak  int `json:"max_dry_streak"`

	PeakToMeanLocked   float64 `json:"peak_to_mean_locked,omitempty"`
	PeakToMeanJittered float64 `json:"peak_to_mean_jittered,omitempty"`

	MedianOffsetMS float64 `json:"median_offset_ms,omitempty"`
	P99OffsetMS    float64 `json:"p99_offset_ms,omitempty"`
	FracAbove100MS float64 `json:"frac_above_100ms,omitempty"`

	DarkStreakBins int    `json:"dark_streak_bins,omitempty"`
	DarkStreakReal int    `json:"dark_streak_real,omitempty"`
	Shed           uint64 `json:"shed,omitempty"`
	ShedDropped    uint64 `json:"shed_dropped,omitempty"`

	// Restart-storm fields: the persisted-keyring pass's NTS NAK and
	// re-KE counts (both must be zero) and the cold baseline's, which
	// must show the herd. Cold's dark interval is reported beside the
	// persisted pass's DarkStreakReal for comparison.
	NTSNaks            uint64 `json:"nts_naks,omitempty"`
	ReKEs              uint64 `json:"re_kes,omitempty"`
	ColdNTSNaks        uint64 `json:"cold_nts_naks,omitempty"`
	ColdReKEs          uint64 `json:"cold_re_kes,omitempty"`
	ColdDarkStreakReal int    `json:"cold_dark_streak_real,omitempty"`

	RTTP50MS float64 `json:"rtt_p50_ms,omitempty"`
	RTTP99MS float64 `json:"rtt_p99_ms,omitempty"`

	Violations []string `json:"violations"`
	Pass       bool     `json:"pass"`
}

func (r *Report) Violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

func (r *Report) Finish(e *Engine, horizon time.Duration) {
	t := e.Totals()
	r.Sent, r.Served, r.Rated, r.Fails, r.Suspends = t.Sent, t.OK, t.Rated, t.Fails, t.Suspends
	r.ServedClients = e.ServedClients()
	r.RatedClients = e.RatedClients()
	r.MaxDryStreak = e.MaxDryStreak()
	r.VirtualSeconds = horizon.Seconds()
	if q, ok := e.RTT().Quantile(0.5); ok {
		r.RTTP50MS = float64(q) / 1e6
	}
	if q, ok := e.RTT().Quantile(0.99); ok {
		r.RTTP99MS = float64(q) / 1e6
	}
	r.Pass = len(r.Violations) == 0
	if r.Violations == nil {
		r.Violations = []string{}
	}
}

// Scenario names accepted by Run and cmd/ntppop.
const (
	ScenarioFlashCrowd  = "flashcrowd"
	ScenarioHerd        = "herd"
	ScenarioNAT         = "nat"
	ScenarioFalseticker = "falseticker"
	ScenarioRestart     = "restart"
)

// Scenarios lists the catalog in presentation order.
func Scenarios() []string {
	return []string{ScenarioFlashCrowd, ScenarioHerd, ScenarioNAT, ScenarioFalseticker, ScenarioRestart}
}

// Run dispatches a scenario by name with its default population size
// when n is 0.
func Run(name string, n int, seed int64) (*Report, error) {
	switch name {
	case ScenarioFlashCrowd:
		if n == 0 {
			n = 2500
		}
		return FlashCrowd(n, seed)
	case ScenarioHerd:
		if n == 0 {
			n = 5000
		}
		return ThunderingHerd(n, seed)
	case ScenarioNAT:
		if n == 0 {
			n = 10000
		}
		return NATCollision(n, seed)
	case ScenarioFalseticker:
		if n == 0 {
			n = 20000
		}
		return PartialFalseticker(n, seed)
	case ScenarioRestart:
		if n == 0 {
			n = 48
		}
		return RestartStorm(n, seed)
	default:
		return nil, fmt.Errorf("population: unknown scenario %q (have %v)", name, Scenarios())
	}
}

// goodPool is the default honest four-server pool for sim scenarios.
func goodPool() []Upstream {
	return []Upstream{
		{Name: "s0", Err: 1 * time.Millisecond, Stratum: 2},
		{Name: "s1", Err: -2 * time.Millisecond, Stratum: 2},
		{Name: "s2", Err: 2 * time.Millisecond, Stratum: 2},
		{Name: "s3", Err: -1 * time.Millisecond, Stratum: 3},
	}
}

// ThunderingHerd runs the same synchronized cold start twice — once
// with poll jitter disabled (the phase-locked fleet) and once with
// the default 10% jitter — and compares arrival burstiness. The
// assertion is the satellite fix's contract: jitter breaks the lock.
func ThunderingHerd(n int, seed int64) (*Report, error) {
	const (
		poll    = 64 * time.Second
		rounds  = 16
		horizon = time.Duration(rounds) * poll
	)
	run := func(jitter float64) (*Engine, error) {
		e, err := New(Config{
			N:         n,
			Seed:      seed,
			Mode:      ModeSim,
			Upstreams: goodPool(),
			PollBase:  poll,
			// StartSpread 0: every device wakes at the same instant —
			// the post-outage regional power-restore shape.
			PollJitter: jitter,
		})
		if err != nil {
			return nil, err
		}
		return e, e.Run(horizon)
	}

	locked, err := run(0)
	if err != nil {
		return nil, err
	}
	jittered, err := run(0.1)
	if err != nil {
		return nil, err
	}

	r := &Report{Scenario: ScenarioHerd, N: n, Seed: seed, Mode: "sim"}
	// Skip the synchronized cold-start bin — identical for both
	// fleets by construction; the herd is about every round after.
	r.PeakToMeanLocked = locked.Bins().PeakToMean(1)
	r.PeakToMeanJittered = jittered.Bins().PeakToMean(1)
	if r.PeakToMeanLocked < 20 {
		r.Violate("locked fleet peak/mean %.1f < 20: the herd never formed (harness broken)", r.PeakToMeanLocked)
	}
	if r.PeakToMeanJittered > 15 {
		r.Violate("jittered fleet peak/mean %.1f > 15: jitter failed to break the phase lock", r.PeakToMeanJittered)
	}
	if r.PeakToMeanLocked < 3*r.PeakToMeanJittered {
		r.Violate("locked/jittered burstiness ratio %.1f < 3", r.PeakToMeanLocked/r.PeakToMeanJittered)
	}
	r.Finish(jittered, horizon)
	return r, nil
}

// PartialFalseticker puts a 400ms liar in the pool that only a
// fraction of the population can see — and the affected clients can
// see just one honest server beside it, so the warm-up median has no
// rejection power for them (two samples average instead of vote).
// The assertion is the population-scale contract: a partial liar may
// wreck its captives' tails, but the population median stays sane.
func PartialFalseticker(n int, seed int64) (*Report, error) {
	const (
		liarErr        = 400 * time.Millisecond
		affectedFrac   = 0.2
		poll           = 64 * time.Second
		horizon        = 8 * poll
		liarIdx        = 4
		goodVisibility = 0b1111
	)
	ups := append(goodPool(), Upstream{Name: "liar", Err: liarErr, Stratum: 2})
	e, err := New(Config{
		N:         n,
		Seed:      seed,
		Mode:      ModeSim,
		Upstreams: ups,
		PollBase:  poll,
		// De-phase starts so warm-ups don't collide in one instant.
		StartSpread: poll,
		PollJitter:  0.1,
		VisibilityFn: func(id int, rng *uint64) uint64 {
			if RandFloat(rng) < affectedFrac {
				// Captive client: the liar plus one honest server.
				return 1<<liarIdx | 1<<(Rand(rng)%4)
			}
			return goodVisibility
		},
	})
	if err != nil {
		return nil, err
	}
	if err := e.Run(horizon); err != nil {
		return nil, err
	}

	r := &Report{Scenario: ScenarioFalseticker, N: n, Seed: seed, Mode: "sim"}
	st := e.Stats(100 * time.Millisecond)
	r.MedianOffsetMS = float64(st.Median) / 1e6
	r.P99OffsetMS = float64(st.P99) / 1e6
	r.FracAbove100MS = st.FracAbove
	if st.Median > 25*time.Millisecond {
		r.Violate("population median offset %v > 25ms: the liar moved the median", st.Median)
	}
	if st.FracAbove > 0.18 {
		r.Violate("%.1f%% of clients beyond 100ms > 18%%: liar captured more than its visibility share", 100*st.FracAbove)
	}
	if st.FracAbove < 0.02 {
		r.Violate("only %.1f%% of clients beyond 100ms < 2%%: the liar did no damage (harness broken)", 100*st.FracAbove)
	}
	r.Finish(e, horizon)
	return r, nil
}

// NATCollision drives n clients that all share one source IP (every
// pool worker dials from 127.0.0.1) into the real server's per-IP
// rate-limit table. The first synchronized window blows the budget —
// thousands of RATE kisses — and the assertion is the starvation
// bound: backoff plus jitter must get every single client served
// within the horizon, with a small worst dry streak.
func NATCollision(n int, seed int64) (*Report, error) {
	const (
		poll       = 60 * time.Second
		horizon    = 300 * time.Second
		rateWindow = 10 * time.Second
		rateLimit  = 5000
	)
	e, err := New(Config{
		N:           n,
		Seed:        seed,
		Mode:        ModeUDP,
		Addr:        "127.0.0.1:0", // replaced below once the server binds
		PollBase:    poll,
		PollJitter:  0.1,
		StartSpread: 5 * time.Second,
		// Cap KoD backoff at 2× the base poll: with half the
		// population RATE'd in the first shared window, a deeper
		// exponential would push twice-kissed clients past any
		// reasonable horizon — the starvation the scenario polices.
		MaxBackoffShift: 1,
		Workers:         32,
		Timeout:         250 * time.Millisecond,
		Quantum:         500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	srv := ntpnet.NewServer(e.VClock(), 2)
	srv.RateLimit = rateLimit
	srv.RateWindow = rateWindow
	srv.Workers = 2
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	e.cfg.Addr = addr.String()

	if err := e.Run(horizon); err != nil {
		return nil, err
	}

	r := &Report{Scenario: ScenarioNAT, N: n, Seed: seed, Mode: "udp"}
	snap := srv.Snapshot()
	if e.ServedClients() < n {
		r.Violate("%d of %d clients never served: the rate limiter starved the NAT population", n-e.ServedClients(), n)
	}
	if e.RatedClients() < n/4 {
		r.Violate("only %d clients saw RATE (< n/4): the collision never happened (harness broken)", e.RatedClients())
	}
	if d := e.MaxDryStreak(); d > 3 {
		r.Violate("worst dry streak %d > 3 polls", d)
	}
	if snap.Limited == 0 {
		r.Violate("server counted no rate-limited requests")
	}
	r.Finish(e, horizon)
	return r, nil
}

// FlashCrowd is the synchronized cold start after a regional outage,
// aimed at a deliberately under-provisioned real server (a per-request
// FaultHook sleep pins its capacity below the offered storm). The
// overload controller must shed — RATE kisses or pre-parse drops —
// while never going dark: some requests are answered in every 100ms
// of wall time while the storm drains.
func FlashCrowd(n int, seed int64) (*Report, error) {
	const (
		horizon = 60 * time.Second
		// serviceTime pins server capacity at ~workers/serviceTime
		// ≈ 1000 req/s — far below the cold-start burst.
		serviceTime = 2 * time.Millisecond
	)
	e, err := New(Config{
		N:    n,
		Seed: seed,
		Mode: ModeUDP,
		Addr: "127.0.0.1:0",
		// The whole region restores within 2s; clients re-poll every
		// 10s (backoff-shifted) until they get through.
		PollBase:    10 * time.Second,
		PollJitter:  0.1,
		StartSpread: 2 * time.Second,
		Workers:     48,
		Timeout:     100 * time.Millisecond,
		Quantum:     500 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}

	srv := ntpnet.NewServer(e.VClock(), 2)
	srv.Workers = 2
	srv.Overload = &overload.Config{}
	srv.FaultHook = func(int) { time.Sleep(serviceTime) }
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	e.cfg.Addr = addr.String()

	if err := e.Run(horizon); err != nil {
		return nil, err
	}

	r := &Report{Scenario: ScenarioFlashCrowd, N: n, Seed: seed, Mode: "udp"}
	snap := srv.Snapshot()
	r.Shed = snap.Shed
	r.ShedDropped = snap.ShedDropped
	r.DarkStreakReal = e.DarkStreakReal()
	if snap.Shed+snap.ShedDropped == 0 {
		r.Violate("overload controller never shed: the crowd did not overload the server (harness broken)")
	}
	if r.DarkStreakReal > 5 {
		r.Violate("dark interval: %d consecutive 100ms wall bins with zero answers (> 5)", r.DarkStreakReal)
	}
	t := e.Totals()
	if t.OK < uint64(n)/4 {
		r.Violate("only %d successes for %d clients: the server collapsed instead of shedding", t.OK, n)
	}
	r.Finish(e, horizon)
	return r, nil
}

var _ clock.Clock = (*VClock)(nil)
