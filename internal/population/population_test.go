package population

import (
	"runtime"
	"testing"
	"time"
)

func simConfig(n int, seed int64) Config {
	return Config{
		N:           n,
		Seed:        seed,
		Mode:        ModeSim,
		Upstreams:   goodPool(),
		PollBase:    64 * time.Second,
		PollJitter:  0.1,
		StartSpread: 30 * time.Second,
	}
}

// TestEngineConvergence: a cold population with seconds of initial
// clock error must converge to the honest pool's few-ms error band
// after a handful of rounds.
func TestEngineConvergence(t *testing.T) {
	e, err := New(simConfig(2000, 11))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(8 * 64 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := e.Stats(100 * time.Millisecond)
	if st.Median > 20*time.Millisecond {
		t.Fatalf("population median offset %v after 8 rounds, want ≤ 20ms", st.Median)
	}
	if e.ServedClients() < 1990 {
		t.Fatalf("only %d/2000 clients ever served", e.ServedClients())
	}
	tot := e.Totals()
	if tot.OK == 0 || tot.Sent == 0 {
		t.Fatalf("no traffic: %+v", tot)
	}
	if e.RTT().Count() == 0 {
		t.Fatal("RTT recorder empty")
	}
}

// TestEngineDeterminism: same seed → identical counters and stats;
// different seed → different traffic trace.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) (Totals, OffsetStats) {
		e, err := New(simConfig(500, seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Run(5 * 64 * time.Second); err != nil {
			t.Fatal(err)
		}
		return e.Totals(), e.Stats(0)
	}
	t1, s1 := run(7)
	t2, s2 := run(7)
	if t1 != t2 || s1 != s2 {
		t.Fatalf("same seed diverged:\n%+v %+v\n%+v %+v", t1, s1, t2, s2)
	}
	t3, _ := run(8)
	if t1 == t3 {
		t.Fatalf("different seeds produced identical totals %+v", t1)
	}
}

// TestEngineSuspend: a heavy suspend schedule must register suspends
// and reduce traffic versus an always-on fleet.
func TestEngineSuspend(t *testing.T) {
	base := simConfig(1000, 3)
	e1, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	withSusp := base
	withSusp.SuspendProb = 0.5
	withSusp.SuspendMean = 4 * base.PollBase
	e2, err := New(withSusp)
	if err != nil {
		t.Fatal(err)
	}
	h := 10 * 64 * time.Second
	if err := e1.Run(h); err != nil {
		t.Fatal(err)
	}
	if err := e2.Run(h); err != nil {
		t.Fatal(err)
	}
	if e2.Totals().Suspends == 0 {
		t.Fatal("suspending fleet recorded no suspends")
	}
	if e2.Totals().Sent >= e1.Totals().Sent {
		t.Fatalf("suspending fleet sent %d ≥ always-on %d", e2.Totals().Sent, e1.Totals().Sent)
	}
}

// TestEngineOutageHook: SetOutage via At must fail all polls during
// the window and the fleet must recover afterwards.
func TestEngineOutageHook(t *testing.T) {
	cfg := simConfig(800, 5)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.At(3*64*time.Second, func() { e.SetOutage(true) })
	e.At(6*64*time.Second, func() { e.SetOutage(false) })
	if err := e.Run(12 * 64 * time.Second); err != nil {
		t.Fatal(err)
	}
	tot := e.Totals()
	if tot.Fails == 0 {
		t.Fatal("outage window produced no failures")
	}
	if d := e.MaxDryStreak(); d < 2 {
		t.Fatalf("outage never built a dry streak (max %d)", d)
	}
	// Recovery: the final state must still be a converged population.
	if st := e.Stats(0); st.Median > 20*time.Millisecond {
		t.Fatalf("median %v after recovery, want ≤ 20ms", st.Median)
	}
}

// TestReservoir pins the bounded-sample contract: capacity respected,
// count exact, quantiles of a known stream in range.
func TestReservoir(t *testing.T) {
	r := NewReservoir(128, 42)
	for i := 0; i < 100000; i++ {
		r.Add(float64(i%1000) / 1000)
	}
	if r.Count() != 100000 {
		t.Fatalf("count %d", r.Count())
	}
	if len(r.vals) != 128 {
		t.Fatalf("reservoir grew to %d > 128", len(r.vals))
	}
	med, ok := r.Quantile(0.5)
	if !ok {
		t.Fatal("empty quantile")
	}
	// Uniform [0,1): the sampled median should land well inside.
	if med < 300*time.Millisecond || med > 700*time.Millisecond {
		t.Fatalf("sampled median %v outside [0.3s, 0.7s]", med)
	}
}

// TestEvHeapOrder pins the hand-rolled heap: pops come out sorted.
func TestEvHeapOrder(t *testing.T) {
	var h evHeap
	st := uint64(9)
	for i := 0; i < 5000; i++ {
		h.push(ev{at: int64(Rand(&st) % 1000000), id: int32(i)})
	}
	prev := int64(-1)
	for len(h) > 0 {
		e := h.pop()
		if e.at < prev {
			t.Fatalf("heap order violated: %d after %d", e.at, prev)
		}
		prev = e.at
	}
}

// heapInUse runs a full GC and returns live heap bytes.
func heapInUse() uint64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// warmupHeap builds an n-client engine, completes one warm-up round,
// and returns the live heap while the engine is still reachable.
func warmupHeap(t *testing.T, n int) uint64 {
	t.Helper()
	before := heapInUse()
	cfg := simConfig(n, 21)
	cfg.StartSpread = 10 * time.Second
	cfg.PollBase = time.Hour // one round only
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(11 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := e.ServedClients(); got < n*9/10 {
		t.Fatalf("warm-up round served only %d/%d clients", got, n)
	}
	after := heapInUse()
	runtime.KeepAlive(e)
	if after <= before {
		return 1
	}
	return after - before
}

// TestMillionClientMemory is the flat-memory acceptance test: one
// million simulated clients complete a warm-up round with a bounded,
// struct-of-arrays heap — ≤ 160 bytes per client, and ≤ ~linear
// growth from the 100k baseline (fixed costs — channel pool, bins,
// reservoirs — must not scale with N).
func TestMillionClientMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-client memory test skipped in -short")
	}
	if raceEnabled {
		t.Skip("1M-client memory test skipped under -race (shadow memory)")
	}
	base := warmupHeap(t, 100_000)
	big := warmupHeap(t, 1_000_000)
	t.Logf("heap: 100k=%dKB 1M=%dKB (%.1fB/client)", base/1024, big/1024, float64(big)/1e6)
	if per := float64(big) / 1e6; per > 160 {
		t.Fatalf("1M clients use %.1f B/client, want ≤ 160 (SoA regressed)", per)
	}
	if big > 10*base+(8<<20) {
		t.Fatalf("heap grew superlinearly: 100k→%dB, 1M→%dB", base, big)
	}
}
