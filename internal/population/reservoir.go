package population

import (
	"math"
	"sort"
	"time"
)

// Reservoir is a seeded fixed-size uniform sample (algorithm R) over
// an unbounded stream: the population engine records millions of
// per-exchange corrections through it at O(k) memory. Deterministic
// given its seed and the call sequence. Not safe for concurrent use —
// the sim loop is single-threaded; UDP-mode workers record into
// per-client slots instead.
type Reservoir struct {
	k    int
	n    uint64
	rng  uint64
	vals []float64
}

// NewReservoir returns a reservoir keeping at most k samples.
func NewReservoir(k int, seed uint64) *Reservoir {
	if k <= 0 {
		k = 1
	}
	return &Reservoir{k: k, rng: seed, vals: make([]float64, 0, k)}
}

// Add offers one observation to the reservoir.
func (r *Reservoir) Add(v float64) {
	r.n++
	if len(r.vals) < r.k {
		r.vals = append(r.vals, v)
		return
	}
	// Replace a random slot with probability k/n.
	j := Rand(&r.rng) % r.n
	if j < uint64(r.k) {
		r.vals[j] = v
	}
}

// Count returns how many observations were offered (not kept).
func (r *Reservoir) Count() uint64 { return r.n }

// Quantile returns the q-th quantile of |sample| as a duration
// (observations are seconds), and false when empty.
func (r *Reservoir) Quantile(q float64) (time.Duration, bool) {
	if len(r.vals) == 0 {
		return 0, false
	}
	abs := make([]float64, len(r.vals))
	for i, v := range r.vals {
		abs[i] = math.Abs(v)
	}
	sort.Float64s(abs)
	i := int(q * float64(len(abs)-1))
	if i < 0 {
		i = 0
	}
	if i >= len(abs) {
		i = len(abs) - 1
	}
	return time.Duration(abs[i] * 1e9), true
}
