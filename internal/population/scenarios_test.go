package population

import (
	"testing"
)

func requirePass(t *testing.T, r *Report, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: n=%d sent=%d served=%d rated=%d fails=%d servedClients=%d maxDry=%d "+
		"peakLocked=%.1f peakJit=%.1f median=%.2fms p99=%.2fms frac>100ms=%.3f darkReal=%d shed=%d+%d",
		r.Scenario, r.N, r.Sent, r.Served, r.Rated, r.Fails, r.ServedClients, r.MaxDryStreak,
		r.PeakToMeanLocked, r.PeakToMeanJittered, r.MedianOffsetMS, r.P99OffsetMS,
		r.FracAbove100MS, r.DarkStreakReal, r.Shed, r.ShedDropped)
	if !r.Pass {
		t.Fatalf("scenario %s violations: %v", r.Scenario, r.Violations)
	}
}

// TestHerdScenario: poll-interval phase-locking forms a thundering
// herd; the seeded jitter satellite breaks it.
func TestHerdScenario(t *testing.T) {
	if raceEnabled {
		t.Skip("herd scenario skipped under -race (CI race leg runs the NAT scenario)")
	}
	r, err := Run(ScenarioHerd, 0, 1)
	requirePass(t, r, err)
}

// TestFalsetickerScenario: a 400ms liar visible to 20% of the
// population (with only one honest peer beside it) wrecks its
// captives but cannot move the population median.
func TestFalsetickerScenario(t *testing.T) {
	if raceEnabled {
		t.Skip("falseticker scenario skipped under -race (CI race leg runs the NAT scenario)")
	}
	r, err := Run(ScenarioFalseticker, 0, 1)
	requirePass(t, r, err)
}

// TestNATScenario is the CI race leg: 10k clients behind one source
// IP colliding with the per-IP rate-limit table; nobody may starve.
func TestNATScenario(t *testing.T) {
	r, err := Run(ScenarioNAT, 0, 1)
	requirePass(t, r, err)
}

// TestRestartStormScenario: a mid-run server restart on pinned ports
// must be invisible to the NTS fleet when the keyring is persisted
// (zero NAKs, dark interval within the drain budget), while the cold
// baseline reproduces the NAK/re-KE herd and recovers.
func TestRestartStormScenario(t *testing.T) {
	if raceEnabled {
		t.Skip("restart-storm scenario skipped under -race (CI race leg runs the NAT scenario)")
	}
	r, err := Run(ScenarioRestart, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("%s: n=%d sent=%d served=%d fails=%d darkReal=%d naks=%d reKEs=%d coldNaks=%d coldReKEs=%d coldDark=%d",
		r.Scenario, r.N, r.Sent, r.Served, r.Fails, r.DarkStreakReal,
		r.NTSNaks, r.ReKEs, r.ColdNTSNaks, r.ColdReKEs, r.ColdDarkStreakReal)
	if !r.Pass {
		t.Fatalf("scenario %s violations: %v", r.Scenario, r.Violations)
	}
}

// TestFlashCrowdScenario: a synchronized cold start at ~5× server
// capacity; the overload controller must shed without a dark interval.
func TestFlashCrowdScenario(t *testing.T) {
	if raceEnabled {
		t.Skip("flash-crowd scenario skipped under -race (CI race leg runs the NAT scenario)")
	}
	r, err := Run(ScenarioFlashCrowd, 0, 1)
	requirePass(t, r, err)
}
