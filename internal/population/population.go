// Package population is a discrete-event fleet simulator: N mobile
// NTP clients — each with a seeded wireless channel, an oscillator
// clock (offset + skew, the internal/clock model), a mobility/suspend
// schedule and a randomized poll interval — driven in virtual time
// against either the simulated internal/netsim server pool or the
// real sharded internal/ntpnet server over loopback UDP.
//
// The engine is built for a million clients on one box, so the design
// is struct-of-arrays and pooled throughout:
//
//   - no per-client goroutine: clients are rows in flat slices
//     (~60 bytes each) advanced by a sharded binary event heap keyed
//     on virtual nanoseconds;
//   - no per-client rng or channel object: each client carries one
//     8-byte splitmix64 state, and wireless channels (≈ KBs each,
//     mutex + rand.Rand inside) come from a small shared pool indexed
//     per client — heterogeneous conditions without per-client cost;
//   - client clocks are integrated lazily: a row's offset advances by
//     skew·dt only when its event fires, so idle clients cost nothing.
//
// Aggregate recording reuses the loadgen HDR recorder for exchange
// RTTs plus memory-bounded reservoirs for the population offset
// stream and fixed-width traffic bins for arrival shaping — all O(1)
// in N.
//
// Real-UDP mode keeps the same event heap but batches due clients
// into virtual-time quanta served by a bounded worker pool of
// connected sockets; the server's clock is the engine's VClock, so
// its rate-limit windows follow virtual time while its overload
// sojourn signal stays real. All workers share the loopback source
// address, which is exactly the NAT-collision population the rate
// limiter must not starve.
package population

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mntp/internal/clock"
	"mntp/internal/loadgen"
	"mntp/internal/netsim"
	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
	"mntp/internal/wireless"
)

// Epoch anchors virtual time, matching the chaos harness' testbed
// epoch so traces line up across harnesses.
var Epoch = time.Date(2016, 11, 14, 0, 0, 0, 0, time.UTC)

// Mode selects what the population polls.
type Mode int

const (
	// ModeSim exchanges with simulated netsim servers in pure virtual
	// time (single-threaded, fully deterministic).
	ModeSim Mode = iota
	// ModeUDP exchanges with a real server over loopback UDP through
	// a bounded worker pool, quantizing virtual time into batches.
	ModeUDP
)

// Upstream describes one simulated server of the pool (ModeSim).
type Upstream struct {
	Name string
	// Err is the server clock's error versus true time: a few ms for
	// an honest stratum server, hundreds of ms for a falseticker.
	Err     time.Duration
	Stratum uint8
	// Visibility is the fraction of the population that can see this
	// server (default 1). Partial visibility is the falseticker
	// scenario's key ingredient.
	Visibility float64
}

// Config parameterizes an Engine. Zero values select the defaults
// noted per field.
type Config struct {
	N    int
	Seed int64
	Mode Mode

	// Upstreams is the simulated server pool (ModeSim; required there).
	Upstreams []Upstream
	// VisibilityFn, if non-nil, overrides per-Upstream Visibility:
	// it returns the visibility bitmask (bit i = Upstreams[i]) for
	// one client, drawing any randomness from rng via Rand/RandFloat.
	VisibilityFn func(id int, rng *uint64) uint64

	// PollBase is the regular poll interval (default 64s).
	PollBase time.Duration
	// PollJitter is the poll randomization fraction (uniform in
	// ±PollJitter·PollBase; 0 keeps the fleet phase-locked — the
	// thundering-herd failure mode; negative also disables).
	PollJitter float64
	// StartSpread spreads first polls uniformly over [0, StartSpread)
	// (default 0: a synchronized cold start).
	StartSpread time.Duration
	// WarmupProbes is how many distinct visible servers a cold client
	// samples before applying the median (default 3, the MNTP
	// warm-up's falseticker defense; clamped to the visible count).
	WarmupProbes int
	// MaxBackoffShift caps the poll backoff after RATE/timeouts at
	// PollBase << shift (default 2).
	MaxBackoffShift uint8

	// SuspendProb is the per-poll probability the device is asleep
	// and skips the poll, drifting for an exponential gap of mean
	// SuspendMean (default 10·PollBase when SuspendProb > 0).
	SuspendProb float64
	SuspendMean time.Duration

	// SkewPPM bounds the per-client oscillator skew, drawn uniformly
	// in ±SkewPPM (default 18, the clock package's default part).
	SkewPPM float64
	// InitialOffsetMax bounds the per-client cold-start clock error,
	// uniform in ± (default 2s).
	InitialOffsetMax time.Duration

	// Channels is the wireless channel pool size (default 256,
	// clamped to N). ChannelParams seeds the pool; its Seed field is
	// re-derived per pooled channel.
	Channels      int
	ChannelParams wireless.Params

	// BinWidth is the traffic-bin width for arrival shaping
	// (default 1s).
	BinWidth time.Duration
	// ReservoirSize bounds the offset/θ sample reservoirs
	// (default 4096).
	ReservoirSize int

	// Addr is the real server address (ModeUDP; required there).
	Addr string
	// Workers bounds the UDP worker pool (default 16).
	Workers int
	// Timeout is the real per-exchange reply deadline (default 250ms).
	Timeout time.Duration
	// Quantum is the virtual-time batch width in ModeUDP
	// (default 250ms).
	Quantum time.Duration
}

func (c *Config) applyDefaults() error {
	if c.N <= 0 {
		return fmt.Errorf("population: N must be positive, got %d", c.N)
	}
	if c.PollBase <= 0 {
		c.PollBase = 64 * time.Second
	}
	if c.WarmupProbes <= 0 {
		c.WarmupProbes = 3
	}
	if c.MaxBackoffShift == 0 {
		c.MaxBackoffShift = 2
	}
	if c.SuspendProb > 0 && c.SuspendMean <= 0 {
		c.SuspendMean = 10 * c.PollBase
	}
	if c.SkewPPM == 0 {
		c.SkewPPM = 18
	}
	if c.InitialOffsetMax == 0 {
		c.InitialOffsetMax = 2 * time.Second
	}
	if c.Channels <= 0 {
		c.Channels = 256
	}
	if c.Channels > c.N {
		c.Channels = c.N
	}
	if c.BinWidth <= 0 {
		c.BinWidth = time.Second
	}
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 4096
	}
	switch c.Mode {
	case ModeSim:
		if len(c.Upstreams) == 0 {
			return fmt.Errorf("population: ModeSim needs at least one upstream")
		}
		if len(c.Upstreams) > 64 {
			return fmt.Errorf("population: at most 64 upstreams (visibility bitmask), got %d", len(c.Upstreams))
		}
	case ModeUDP:
		if c.Addr == "" {
			return fmt.Errorf("population: ModeUDP needs Addr")
		}
		if c.Workers <= 0 {
			c.Workers = 16
		}
		if c.Timeout <= 0 {
			c.Timeout = 250 * time.Millisecond
		}
		if c.Quantum <= 0 {
			c.Quantum = 250 * time.Millisecond
		}
	default:
		return fmt.Errorf("population: unknown mode %d", c.Mode)
	}
	return nil
}

// fleet is the struct-of-arrays client state: one row per client,
// ~60 bytes, no pointers, so a million clients are a handful of flat
// allocations the GC never walks.
type fleet struct {
	offset  []float64 // clock error vs true time, seconds
	skew    []float64 // oscillator skew, s/s
	last    []int64   // virtual ns of the last offset integration
	rng     []uint64  // per-client splitmix64 state
	chanIdx []uint32  // pooled wireless channel index
	srvIdx  []int16   // regular server (ModeSim); -1 while cold
	visMask []uint64  // visible-upstream bitmask (ModeSim)
	served  []uint32  // successful exchanges
	rated   []uint32  // RATE kiss-of-death replies (ModeUDP)
	dry     []uint8   // consecutive polls without success (sat. 255)
	maxDry  []uint8   // worst dry streak
	boff    []uint8   // current backoff shift
	res     []uint8   // last UDP exchange result (worker → engine)
}

func newFleet(n int) fleet {
	return fleet{
		offset:  make([]float64, n),
		skew:    make([]float64, n),
		last:    make([]int64, n),
		rng:     make([]uint64, n),
		chanIdx: make([]uint32, n),
		srvIdx:  make([]int16, n),
		visMask: make([]uint64, n),
		served:  make([]uint32, n),
		rated:   make([]uint32, n),
		dry:     make([]uint8, n),
		maxDry:  make([]uint8, n),
		boff:    make([]uint8, n),
		res:     make([]uint8, n),
	}
}

// Rand advances a splitmix64 state and returns 64 fresh bits. It is
// the engine's only rng primitive: 8 bytes per client instead of the
// ~5KB of a math/rand.Rand.
func Rand(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// RandFloat returns a uniform float64 in [0, 1).
func RandFloat(s *uint64) float64 { return float64(Rand(s)>>11) / (1 << 53) }

func randInt(s *uint64, n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(Rand(s) % uint64(n))
}

// ev is one scheduled client poll. Value-typed and 16 bytes so heap
// shards are flat []ev slices.
type ev struct {
	at int64 // virtual ns
	id int32
}

// evHeap is a binary min-heap on at. Hand-rolled instead of
// container/heap to keep entries value-typed (no interface boxing on
// a million pushes).
type evHeap []ev

func (h *evHeap) push(e ev) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if (*h)[p].at <= (*h)[i].at {
			break
		}
		(*h)[p], (*h)[i] = (*h)[i], (*h)[p]
		i = p
	}
}

func (h *evHeap) pop() ev {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && old[l].at < old[m].at {
			m = l
		}
		if r < n && old[r].at < old[m].at {
			m = r
		}
		if m == i {
			break
		}
		old[i], old[m] = old[m], old[i]
		i = m
	}
	return top
}

// nShards splits the event heap so no single slice holds N entries:
// pushes touch a 1/nShards-sized heap (shorter sift chains, better
// locality) and the next-event scan is a 16-way head comparison.
const nShards = 16

// ctrlEv is a scheduled control action (outage toggles, liar flips —
// the scenario/chaos hook side of the engine).
type ctrlEv struct {
	at int64
	fn func()
}

type simServer struct {
	srv *netsim.Server
	err time.Duration
}

// Engine drives one population. Construct with New, schedule control
// actions with At, then Run. Not safe for concurrent use; ModeUDP
// manages its internal worker pool itself.
type Engine struct {
	cfg      Config
	f        fleet
	heaps    [nShards]evHeap
	ctrl     []ctrlEv // sorted ascending by at
	channels []*wireless.Channel
	servers  []simServer
	vt       int64 // current virtual ns
	down     bool  // regional outage: every exchange fails

	bins    *bins
	rtt     *loadgen.Recorder
	thetas  *Reservoir // per-exchange correction stream, seconds
	sent    uint64
	ok      uint64
	rated   uint64
	fails   uint64
	susp    uint64
	darkMax int

	vc  *VClock
	udp *udpPool
}

// New builds the fleet, channel pool and event heaps. Memory is
// O(N·~60B + Channels·channel + bins + reservoirs).
func New(cfg Config) (*Engine, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    cfg,
		f:      newFleet(cfg.N),
		bins:   newBins(int64(cfg.BinWidth)),
		rtt:    &loadgen.Recorder{},
		thetas: NewReservoir(cfg.ReservoirSize, uint64(cfg.Seed)*0x9e3779b9+1),
	}

	// Pooled heterogeneous wireless channels: distinct seeds, shared
	// by N/Channels clients each.
	e.channels = make([]*wireless.Channel, cfg.Channels)
	now := func() time.Duration { return time.Duration(e.vt) }
	for i := range e.channels {
		p := cfg.ChannelParams
		p.Seed = cfg.Seed*1_000_003 + int64(i)
		e.channels[i] = wireless.NewChannel(p, now)
	}

	if cfg.Mode == ModeSim {
		e.servers = make([]simServer, len(cfg.Upstreams))
		ec := &engineClock{e: e}
		for i, u := range cfg.Upstreams {
			s := netsim.NewServer(u.Name, &clock.Fixed{Base: ec, Error: u.Err}, u.Stratum, cfg.Seed*31+int64(i))
			if u.Stratum == 0 {
				s.Stratum = 2
			}
			e.servers[i] = simServer{srv: s, err: u.Err}
		}
	} else {
		e.vc = NewVClock(Epoch)
	}

	seed := uint64(cfg.Seed)
	if seed == 0 {
		seed = 0x6d6e7470 // "mntp"
	}
	for i := 0; i < cfg.N; i++ {
		st := seed + uint64(i)*0x9e3779b97f4a7c15
		Rand(&st) // decorrelate adjacent ids
		e.f.rng[i] = st
		e.f.offset[i] = (2*RandFloat(&e.f.rng[i]) - 1) * cfg.InitialOffsetMax.Seconds()
		e.f.skew[i] = (2*RandFloat(&e.f.rng[i]) - 1) * cfg.SkewPPM * 1e-6
		e.f.chanIdx[i] = uint32(i % cfg.Channels)
		e.f.srvIdx[i] = -1
		if cfg.Mode == ModeSim {
			e.f.visMask[i] = e.visibility(i)
		}
		first := int64(0)
		if cfg.StartSpread > 0 {
			first = randInt(&e.f.rng[i], int64(cfg.StartSpread))
		}
		e.heaps[i&(nShards-1)].push(ev{at: first, id: int32(i)})
	}
	return e, nil
}

func (e *Engine) visibility(id int) uint64 {
	if e.cfg.VisibilityFn != nil {
		m := e.cfg.VisibilityFn(id, &e.f.rng[id])
		if m == 0 {
			m = 1
		}
		return m
	}
	var m uint64
	for i, u := range e.cfg.Upstreams {
		v := u.Visibility
		if v == 0 {
			v = 1
		}
		if v >= 1 || RandFloat(&e.f.rng[id]) < v {
			m |= 1 << uint(i)
		}
	}
	if m == 0 {
		m = 1 // a client must see something or it never syncs
	}
	return m
}

// engineClock exposes the engine's virtual true time as a
// clock.Clock, so simulated upstreams are ordinary netsim servers
// with clock.Fixed error clocks.
type engineClock struct{ e *Engine }

func (c *engineClock) Now() time.Time { return Epoch.Add(time.Duration(c.e.vt)) }

// At schedules fn to run at virtual time d — the scenario/chaos hook
// for outages, liar flips, visibility changes. Must be called before
// Run or from within a prior control action.
func (e *Engine) At(d time.Duration, fn func()) {
	e.ctrl = append(e.ctrl, ctrlEv{at: int64(d), fn: fn})
	sort.Slice(e.ctrl, func(i, j int) bool { return e.ctrl[i].at < e.ctrl[j].at })
}

// SetOutage toggles a regional outage: while down, every exchange
// fails (ModeSim) or no batches are dispatched (ModeUDP).
func (e *Engine) SetOutage(down bool) { e.down = down }

// SetUpstreamErr retargets a simulated upstream's clock error mid-run
// — the falseticker-flip hook (ModeSim).
func (e *Engine) SetUpstreamErr(idx int, err time.Duration) {
	s := &e.servers[idx]
	s.err = err
	s.srv.Clock = &clock.Fixed{Base: &engineClock{e: e}, Error: err}
}

// VClock returns the virtual clock a real ntpnet server should use in
// ModeUDP so its rate-limit windows follow population virtual time.
func (e *Engine) VClock() *VClock { return e.vc }

// Run advances the population to the virtual horizon.
func (e *Engine) Run(horizon time.Duration) error {
	if e.cfg.Mode == ModeUDP {
		return e.runUDP(horizon)
	}
	h := int64(horizon)
	for {
		at, shard, ok := e.nextClient()
		// Control actions run before any client event at the same or
		// later instant.
		for len(e.ctrl) > 0 && e.ctrl[0].at <= h && (!ok || e.ctrl[0].at <= at) {
			c := e.ctrl[0]
			e.ctrl = e.ctrl[1:]
			if c.at > e.vt {
				e.vt = c.at
			}
			c.fn()
		}
		if !ok || at > h {
			break
		}
		evt := e.heaps[shard].pop()
		e.vt = evt.at
		e.stepSim(int(evt.id))
	}
	if e.vt < h {
		e.vt = h
	}
	return nil
}

// nextClient scans the shard heap heads for the earliest pending poll.
func (e *Engine) nextClient() (at int64, shard int, ok bool) {
	at = math.MaxInt64
	shard = -1
	for s := range e.heaps {
		if len(e.heaps[s]) > 0 && e.heaps[s][0].at < at {
			at = e.heaps[s][0].at
			shard = s
		}
	}
	return at, shard, shard >= 0
}

// integrate advances client id's oscillator to the current instant:
// the lazy form of clock.Sim's skew model.
func (e *Engine) integrate(id int) {
	dt := e.vt - e.f.last[id]
	if dt > 0 {
		e.f.offset[id] += e.f.skew[id] * float64(dt) * 1e-9
		e.f.last[id] = e.vt
	}
}

// stepSim runs one poll round for one client in ModeSim.
func (e *Engine) stepSim(id int) {
	e.integrate(id)

	// Mobility/suspend: the device sleeps through this poll and
	// drifts for an exponential gap.
	if e.cfg.SuspendProb > 0 && RandFloat(&e.f.rng[id]) < e.cfg.SuspendProb {
		e.susp++
		gap := time.Duration(expDraw(&e.f.rng[id]) * float64(e.cfg.SuspendMean))
		if gap < e.cfg.PollBase {
			gap = e.cfg.PollBase
		}
		e.schedule(id, gap)
		return
	}

	e.sent++
	e.bins.sentAt(e.vt)

	success := false
	if !e.down {
		if e.f.srvIdx[id] < 0 {
			success = e.warmup(id)
		} else {
			if th, _, ok := e.exchange(id, int(e.f.srvIdx[id])); ok {
				e.f.offset[id] += th
				e.thetas.Add(th)
				success = true
			}
		}
	}

	if success {
		e.ok++
		e.bins.okAt(e.vt)
		e.f.served[id]++
		e.f.dry[id] = 0
		e.f.boff[id] = 0
	} else {
		e.fails++
		e.bump(id)
	}
	e.schedule(id, e.pollDelay(id))
}

// warmup samples up to WarmupProbes distinct visible servers and
// applies the median correction — MNTP's warm-up median, which a lone
// falseticker cannot move once three sources are visible. The regular
// server is the median sample's source when ≥3 samples exist;
// with fewer there is no rejection power, so it falls back to a
// random visible server (pool semantics), which is precisely why
// partial visibility hurts.
func (e *Engine) warmup(id int) bool {
	var vis [64]int16
	nv := 0
	m := e.f.visMask[id]
	for i := 0; i < len(e.servers) && m != 0; i++ {
		if m&1 != 0 {
			vis[nv] = int16(i)
			nv++
		}
		m >>= 1
	}
	if nv == 0 {
		return false
	}
	// Partial Fisher-Yates: pick k distinct visible servers.
	k := e.cfg.WarmupProbes
	if k > nv {
		k = nv
	}
	for i := 0; i < k; i++ {
		j := i + int(randInt(&e.f.rng[id], int64(nv-i)))
		vis[i], vis[j] = vis[j], vis[i]
	}

	type sample struct {
		th  float64
		srv int16
	}
	var samples [8]sample
	ns := 0
	for i := 0; i < k; i++ {
		if th, _, ok := e.exchange(id, int(vis[i])); ok {
			samples[ns] = sample{th, vis[i]}
			ns++
		}
	}
	if ns == 0 {
		return false
	}
	sub := samples[:ns]
	sort.Slice(sub, func(a, b int) bool { return sub[a].th < sub[b].th })
	var med float64
	if ns%2 == 1 {
		med = sub[ns/2].th
	} else {
		med = (sub[ns/2-1].th + sub[ns/2].th) / 2
	}
	e.f.offset[id] += med
	e.thetas.Add(med)
	if ns >= 3 {
		e.f.srvIdx[id] = sub[ns/2].srv
	} else {
		e.f.srvIdx[id] = vis[int(randInt(&e.f.rng[id], int64(nv)))]
	}
	return true
}

// exchange performs one simulated client↔server exchange through the
// client's pooled wireless channel, full packet semantics included:
// the returned θ is computed from the reply's NTP timestamps, so the
// engine inherits ntppkt/ntptime rounding behavior for free.
func (e *Engine) exchange(id, sidx int) (theta float64, rtt time.Duration, ok bool) {
	ch := e.channels[e.f.chanIdx[id]]
	now := time.Duration(e.vt)
	up, lost := ch.SampleOneWay(now, netsim.Uplink)
	if lost {
		return 0, 0, false
	}
	srv := e.servers[sidx]
	proc := srv.srv.ProcessingDelay()
	down, lost := ch.SampleOneWay(now+up+proc, netsim.Downlink)
	if lost {
		return 0, 0, false
	}

	base := Epoch.Add(now)
	off := time.Duration(e.f.offset[id] * 1e9)
	t1 := base.Add(off)
	recv := base.Add(up).Add(srv.err)
	xmit := recv.Add(proc)
	t4 := base.Add(up + proc + down).Add(off)

	req := ntppkt.NewClient(4, ntptime.FromTime(t1))
	rep := srv.srv.Respond(req, recv, xmit)
	if err := rep.ValidateServerReply(req.Transmit); err != nil {
		return 0, 0, false
	}
	d := rep.Receive.Sub(req.Transmit) + rep.Transmit.Sub(ntptime.FromTime(t4))
	rtt = up + proc + down
	e.rtt.Record(rtt)
	return (time.Duration(d) / 2).Seconds(), rtt, true
}

// bump records a failed poll: dry-streak accounting plus poll backoff.
func (e *Engine) bump(id int) {
	if e.f.dry[id] < 255 {
		e.f.dry[id]++
	}
	if e.f.dry[id] > e.f.maxDry[id] {
		e.f.maxDry[id] = e.f.dry[id]
	}
	if e.f.boff[id] < e.cfg.MaxBackoffShift {
		e.f.boff[id]++
	}
}

// pollDelay is the next poll interval: backoff-shifted base with the
// fleet-de-phasing jitter (the satellite fix the herd scenario
// exercises).
func (e *Engine) pollDelay(id int) time.Duration {
	d := e.cfg.PollBase << e.f.boff[id]
	j := e.cfg.PollJitter
	if j > 0 {
		span := float64(d) * j
		d += time.Duration((2*RandFloat(&e.f.rng[id]) - 1) * span)
	}
	if d <= 0 {
		d = time.Millisecond
	}
	return d
}

func (e *Engine) schedule(id int, after time.Duration) {
	e.heaps[id&(nShards-1)].push(ev{at: e.vt + int64(after), id: int32(id)})
}

// expDraw samples a unit exponential from a client rng.
func expDraw(s *uint64) float64 {
	u := RandFloat(s)
	if u <= 0 {
		u = 1e-12
	}
	return -math.Log(u)
}

// Totals are the engine-wide exchange counters.
type Totals struct {
	Sent, OK, Rated, Fails, Suspends uint64
}

// Totals returns the aggregate exchange counters.
func (e *Engine) Totals() Totals {
	return Totals{Sent: e.sent, OK: e.ok, Rated: e.rated, Fails: e.fails, Suspends: e.susp}
}

// RTT returns the exchange round-trip recorder (loadgen HDR recorder).
func (e *Engine) RTT() *loadgen.Recorder { return e.rtt }

// Thetas returns the bounded reservoir over applied corrections.
func (e *Engine) Thetas() *Reservoir { return e.thetas }

// Bins returns the traffic bins (arrival shaping).
func (e *Engine) Bins() *bins { return e.bins }

// ServedClients counts clients with at least one successful exchange.
func (e *Engine) ServedClients() int {
	n := 0
	for _, s := range e.f.served {
		if s > 0 {
			n++
		}
	}
	return n
}

// MaxDryStreak is the worst consecutive-failure streak any client hit.
func (e *Engine) MaxDryStreak() int {
	worst := uint8(0)
	for _, d := range e.f.maxDry {
		if d > worst {
			worst = d
		}
	}
	return int(worst)
}

// RatedClients counts clients that received at least one RATE kiss.
func (e *Engine) RatedClients() int {
	n := 0
	for _, r := range e.f.rated {
		if r > 0 {
			n++
		}
	}
	return n
}

// OffsetStats summarizes the population clock error at the current
// virtual instant.
type OffsetStats struct {
	Median, P90, P99, MaxAbs time.Duration
	// FracAbove is the fraction of (sampled) clients whose |offset|
	// exceeds the threshold passed to Stats.
	FracAbove float64
}

// Stats integrates every client to the current instant and summarizes
// |offset| quantiles over the population (an exact pass below 128k
// clients, a seeded 65536-sample otherwise — O(1) extra memory either
// way relative to N).
func (e *Engine) Stats(absThresh time.Duration) OffsetStats {
	n := e.cfg.N
	sampleN := n
	const sampleCap = 1 << 16
	stride := 1
	if n > sampleCap {
		sampleN = sampleCap
		stride = n / sampleCap
	}
	abs := make([]float64, 0, sampleN)
	above := 0
	th := absThresh.Seconds()
	for i := 0; i < n; i += stride {
		o := e.f.offset[i] + e.f.skew[i]*float64(e.vt-e.f.last[i])*1e-9
		a := math.Abs(o)
		abs = append(abs, a)
		if th > 0 && a > th {
			above++
		}
	}
	sort.Float64s(abs)
	q := func(p float64) time.Duration {
		if len(abs) == 0 {
			return 0
		}
		i := int(p * float64(len(abs)-1))
		return time.Duration(abs[i] * 1e9)
	}
	st := OffsetStats{Median: q(0.5), P90: q(0.9), P99: q(0.99)}
	if len(abs) > 0 {
		st.MaxAbs = time.Duration(abs[len(abs)-1] * 1e9)
		st.FracAbove = float64(above) / float64(len(abs))
	}
	return st
}

// bins are fixed-width virtual-time traffic counters — the arrival
// shape the herd and flash-crowd scenarios assert on. Memory is
// bounded by maxBins; later traffic folds into the last bin.
type bins struct {
	width    int64
	sent, ok []uint64
}

const maxBins = 1 << 20

func newBins(width int64) *bins { return &bins{width: width} }

func (b *bins) idx(vt int64) int {
	i := int(vt / b.width)
	if i >= maxBins {
		i = maxBins - 1
	}
	return i
}

func (b *bins) grow(i int) {
	for len(b.sent) <= i {
		b.sent = append(b.sent, 0)
		b.ok = append(b.ok, 0)
	}
}

func (b *bins) sentAt(vt int64) {
	i := b.idx(vt)
	b.grow(i)
	b.sent[i]++
}

func (b *bins) okAt(vt int64) {
	i := b.idx(vt)
	b.grow(i)
	b.ok[i]++
}

// PeakToMean is the arrival burstiness: max bin over mean bin of
// sent requests, ignoring the first skipBins bins (a synchronized
// cold start spikes bin 0 identically for any fleet; burstiness is
// about what the schedule does afterwards). A phase-locked fleet
// pins this at ~horizon/rounds; jitter pulls it toward 1.
func (b *bins) PeakToMean(skipBins int) float64 {
	if len(b.sent) <= skipBins {
		return 0
	}
	var peak, total uint64
	for _, s := range b.sent[skipBins:] {
		total += s
		if s > peak {
			peak = s
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(b.sent)-skipBins)
	return float64(peak) / mean
}

// DarkStreak is the longest run of bins with traffic sent but nothing
// answered — the outage signature the flash-crowd scenario asserts
// the overload controller avoids.
func (b *bins) DarkStreak() int {
	worst, run := 0, 0
	for i := range b.sent {
		if b.sent[i] > 0 && b.ok[i] == 0 {
			run++
			if run > worst {
				worst = run
			}
		} else if b.sent[i] > 0 {
			run = 0
		}
	}
	return worst
}

// Sent returns a copy of the per-bin sent counts.
func (b *bins) Sent() []uint64 { return append([]uint64(nil), b.sent...) }
