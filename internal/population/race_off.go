//go:build !race

package population

const raceEnabled = false
