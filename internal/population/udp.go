package population

import (
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mntp/internal/ntppkt"
	"mntp/internal/ntptime"
)

// VClock is an atomically advanced virtual clock implementing
// clock.Clock. In ModeUDP the real server runs with a VClock as its
// Clock, so its rate-limit windows follow population virtual time (a
// 10k-client day compresses into seconds of wall time) while its
// overload sojourn signal — kernel receive timestamps — stays real.
type VClock struct {
	epoch time.Time
	ns    atomic.Int64
}

// NewVClock returns a virtual clock anchored at epoch.
func NewVClock(epoch time.Time) *VClock { return &VClock{epoch: epoch} }

// Now returns the current virtual instant.
func (v *VClock) Now() time.Time { return v.epoch.Add(time.Duration(v.ns.Load())) }

// Advance moves the clock to d past the epoch. The engine only moves
// it forward.
func (v *VClock) Advance(d time.Duration) { v.ns.Store(int64(d)) }

// UDP exchange results, written by workers into fleet.res (one slot
// per client; the batch WaitGroup publishes them to the engine).
const (
	resNone = iota
	resOK
	resRate
	resFail
)

// realBinWidth buckets real (wall) time for the dark-interval metric:
// the flash-crowd scenario asserts the server never goes a run of
// these bins without answering anyone while traffic is in flight.
const realBinWidth = 100 * time.Millisecond

const numRealBins = 4096

// udpPool is the bounded worker side of ModeUDP: one connected
// loopback socket per worker (so every worker shares the 127.0.0.1
// source IP — one rate-limit key for the whole population), one
// outstanding request per worker at a time.
type udpPool struct {
	conns   []*net.UDPConn
	timeout time.Duration
	started bool
	start   time.Time
	realOk  [numRealBins]uint64 // atomic
	lastBin int64               // atomic: last active real bin
}

func newUDPPool(addr string, workers int, timeout time.Duration) (*udpPool, error) {
	ra, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	p := &udpPool{timeout: timeout}
	for i := 0; i < workers; i++ {
		c, err := net.DialUDP("udp", nil, ra)
		if err != nil {
			p.close()
			return nil, err
		}
		p.conns = append(p.conns, c)
	}
	return p, nil
}

func (p *udpPool) close() {
	for _, c := range p.conns {
		c.Close()
	}
}

func (p *udpPool) realBin() int64 {
	b := int64(time.Since(p.start) / realBinWidth)
	if b >= numRealBins {
		b = numRealBins - 1
	}
	return b
}

// exchange sends one request and classifies the reply. The transmit
// timestamp doubles as the origin nonce; with one outstanding request
// per socket, matching it is enough to pair replies.
func (p *udpPool) exchange(conn *net.UDPConn, e *Engine, id int) uint8 {
	req := ntppkt.NewClient(4, ntptime.FromTime(time.Now()))
	buf := make([]byte, 0, ntppkt.HeaderLen)
	buf = req.Encode(buf)
	t0 := time.Now()
	if err := conn.SetReadDeadline(t0.Add(p.timeout)); err != nil {
		return resFail
	}
	if _, err := conn.Write(buf); err != nil {
		return resFail
	}
	var rep ntppkt.Packet
	in := make([]byte, 512)
	for {
		n, err := conn.Read(in)
		if err != nil {
			return resFail
		}
		if rep.DecodeInto(in[:n]) != nil || rep.Origin != req.Transmit {
			continue // stray or stale datagram: keep waiting
		}
		e.rtt.Record(time.Since(t0))
		if code, ok := rep.KissCode(); ok {
			if code == "RATE" {
				return resRate
			}
			return resFail
		}
		if rep.ValidateServerReply(req.Transmit) != nil {
			return resFail
		}
		bin := p.realBin()
		atomic.AddUint64(&p.realOk[bin], 1)
		return resOK
	}
}

// runUDP advances the population against the real server: virtual
// time is quantized, each quantum's due clients form one batch served
// by the worker pool in real time, then virtual time jumps to the
// next quantum.
func (e *Engine) runUDP(horizon time.Duration) error {
	pool, err := newUDPPool(e.cfg.Addr, e.cfg.Workers, e.cfg.Timeout)
	if err != nil {
		return err
	}
	defer pool.close()
	e.udp = pool

	h := int64(horizon)
	q := int64(e.cfg.Quantum)
	batch := make([]ev, 0, 4096)
	for {
		at, _, ok := e.nextClient()
		for len(e.ctrl) > 0 && e.ctrl[0].at <= h && (!ok || e.ctrl[0].at <= at) {
			c := e.ctrl[0]
			e.ctrl = e.ctrl[1:]
			if c.at > e.vt {
				e.vt = c.at
			}
			c.fn()
			at, _, ok = e.nextClient()
		}
		if !ok || at > h {
			break
		}
		qStart := (at / q) * q
		qEnd := qStart + q
		if e.vt < qStart {
			e.vt = qStart
		}
		e.vc.Advance(time.Duration(qStart))

		batch = batch[:0]
		for {
			a2, s2, ok2 := e.nextClient()
			if !ok2 || a2 >= qEnd || a2 > h {
				break
			}
			batch = append(batch, e.heaps[s2].pop())
		}
		e.dispatch(pool, batch)
		e.vt = qEnd
	}
	if e.vt < h {
		e.vt = h
	}
	return nil
}

// dispatch serves one quantum's batch through the worker pool and
// folds the results back into the fleet on the engine thread.
func (e *Engine) dispatch(pool *udpPool, batch []ev) {
	if len(batch) == 0 {
		return
	}
	if !pool.started {
		pool.started = true
		pool.start = time.Now()
	}
	e.sent += uint64(len(batch))
	for _, evt := range batch {
		e.bins.sentAt(evt.at)
		e.f.res[evt.id] = resFail
	}

	if !e.down {
		nw := len(pool.conns)
		if nw > len(batch) {
			nw = len(batch)
		}
		var wg sync.WaitGroup
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				conn := pool.conns[w]
				for i := w; i < len(batch); i += nw {
					id := int(batch[i].id)
					e.f.res[id] = pool.exchange(conn, e, id)
				}
			}(w)
		}
		wg.Wait()
	}
	atomic.StoreInt64(&pool.lastBin, pool.realBin())

	for _, evt := range batch {
		id := int(evt.id)
		switch e.f.res[id] {
		case resOK:
			e.ok++
			e.bins.okAt(evt.at)
			e.f.served[id]++
			e.f.dry[id] = 0
			e.f.boff[id] = 0
		case resRate:
			e.rated++
			e.f.rated[id]++
			e.bump(id)
		default:
			e.fails++
			e.bump(id)
		}
		e.heaps[id&(nShards-1)].push(ev{at: evt.at + int64(e.pollDelay(id)), id: evt.id})
	}
}

// DarkStreakReal is the longest run of real-time bins (100ms) with no
// request answered between the first dispatch and the last batch
// completion — the wall-clock outage signature for ModeUDP, where
// batches run back-to-back in real time.
func (e *Engine) DarkStreakReal() int {
	if e.udp == nil || !e.udp.started {
		return 0
	}
	last := atomic.LoadInt64(&e.udp.lastBin)
	worst, run := 0, 0
	for i := int64(0); i <= last && i < numRealBins; i++ {
		if atomic.LoadUint64(&e.udp.realOk[i]) == 0 {
			run++
			if run > worst {
				worst = run
			}
		} else {
			run = 0
		}
	}
	return worst
}
