// Package energy models mobile radio energy consumption, the concern
// that motivates MNTP's request pacing (§3.4 of the paper): periodic
// small transfers keep the cellular radio in high-power states far
// longer than the transfers themselves (the "tail energy" findings of
// Balasubramanian et al., which the paper cites), so synchronization
// protocols are compared not just on accuracy but on how often they
// wake the radio. §7 names "benchmarking of MNTP against SNTP and NTP
// in terms of metrics like processor and battery performance" as
// future work; this package provides the battery half.
//
// The model is a radio state machine: a transfer promotes the radio
// (paying promotion energy), keeps it active for the transfer
// duration, and leaves it in a high-power tail state until the tail
// timer expires or another transfer arrives. Transfers closer
// together than the tail share one promotion and one tail.
package energy

import (
	"fmt"
	"sort"
	"time"
)

// Joules is an energy amount.
type Joules float64

// RadioModel parameterizes one radio technology.
type RadioModel struct {
	Name string
	// PromotionTime/PromotionPower: idle→active transition.
	PromotionTime  time.Duration
	PromotionPower float64 // watts
	// ActivePower during a transfer.
	ActivePower float64
	// Tail is the high-power dwell after the last activity;
	// TailPower its draw.
	Tail      time.Duration
	TailPower float64
}

// ThreeG returns a 3G/WCDMA model with the magnitudes of
// Balasubramanian et al. (IMC 2009): ~2 s promotion, ~12.5 s
// high-power tail — the regime where "a few 100B transfers
// periodically ... consume more energy than bulk one-shot transfers".
func ThreeG() RadioModel {
	return RadioModel{
		Name:          "3g",
		PromotionTime: 2 * time.Second, PromotionPower: 0.53,
		ActivePower: 0.68,
		Tail:        12500 * time.Millisecond, TailPower: 0.46,
	}
}

// LTE returns a 4G/LTE model (shorter promotion, comparable tail at
// higher power).
func LTE() RadioModel {
	return RadioModel{
		Name:          "lte",
		PromotionTime: 260 * time.Millisecond, PromotionPower: 1.2,
		ActivePower: 1.3,
		Tail:        11600 * time.Millisecond, TailPower: 1.0,
	}
}

// WiFi returns an 802.11 PSM model: cheap promotions and a very short
// tail, which is why the same polling schedule costs far less on WiFi.
func WiFi() RadioModel {
	return RadioModel{
		Name:          "wifi",
		PromotionTime: 80 * time.Millisecond, PromotionPower: 0.9,
		ActivePower: 0.7,
		Tail:        240 * time.Millisecond, TailPower: 0.25,
	}
}

// Meter accumulates network activity windows and computes the radio
// energy they imply under a model.
type Meter struct {
	Model RadioModel
	spans []span
}

type span struct{ start, end time.Duration }

// NewMeter creates a meter for the model.
func NewMeter(m RadioModel) *Meter { return &Meter{Model: m} }

// Activity records a transfer starting at the given virtual time and
// lasting dur (e.g. one request/response exchange of duration RTT).
func (m *Meter) Activity(at, dur time.Duration) {
	if dur < time.Millisecond {
		dur = time.Millisecond // a datagram still wakes the radio
	}
	m.spans = append(m.spans, span{start: at, end: at + dur})
}

// Events returns the number of recorded transfers.
func (m *Meter) Events() int { return len(m.spans) }

// Span is one recorded activity window.
type Span struct{ Start, End time.Duration }

// Spans returns the recorded activity windows (insertion order),
// allowing the same activity to be re-scored under another model.
func (m *Meter) Spans() []Span {
	out := make([]Span, len(m.spans))
	for i, s := range m.spans {
		out[i] = Span{Start: s.start, End: s.end}
	}
	return out
}

// Energy computes the total radio energy of the recorded activity.
func (m *Meter) Energy() Joules {
	if len(m.spans) == 0 {
		return 0
	}
	spans := make([]span, len(m.spans))
	copy(spans, m.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })

	// Merge transfers whose gaps fall within the tail: they share one
	// radio burst.
	var bursts []span
	cur := spans[0]
	for _, s := range spans[1:] {
		if s.start <= cur.end+m.Model.Tail {
			if s.end > cur.end {
				cur.end = s.end
			}
			continue
		}
		bursts = append(bursts, cur)
		cur = s
	}
	bursts = append(bursts, cur)

	var total float64
	for _, b := range bursts {
		total += m.Model.PromotionTime.Seconds() * m.Model.PromotionPower
		total += (b.end - b.start).Seconds() * m.Model.ActivePower
		total += m.Model.Tail.Seconds() * m.Model.TailPower
	}
	return Joules(total)
}

// Bursts returns the number of radio wake-ups (promotions) implied by
// the recorded activity.
func (m *Meter) Bursts() int {
	if len(m.spans) == 0 {
		return 0
	}
	spans := make([]span, len(m.spans))
	copy(spans, m.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	bursts := 1
	end := spans[0].end
	for _, s := range spans[1:] {
		if s.start > end+m.Model.Tail {
			bursts++
		}
		if s.end > end {
			end = s.end
		}
	}
	return bursts
}

// PerDay scales an energy measured over the given duration to a
// 24-hour figure.
func PerDay(e Joules, over time.Duration) Joules {
	if over <= 0 {
		return 0
	}
	return e * Joules(24*time.Hour) / Joules(over)
}

// String renders joules compactly.
func (j Joules) String() string { return fmt.Sprintf("%.1fJ", float64(j)) }
